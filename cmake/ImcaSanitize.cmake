# imca_sanitized_tree(<name> ...) — one definition for every "configure a
# sibling build tree with sanitizers, build a few targets, run them" gate
# (previously each target spelled the configure/build/run dance by hand).
#
#   imca_sanitized_tree(imca_buffer_asan
#     SANITIZE address,undefined
#     COMMENT  "Buffer suites under ASan/UBSan"
#     BUILD    buffer_test common_test
#     RUN      "tests/buffer_test" "tests/common_test")
#
# SANITIZE feeds the sibling tree's -DIMCA_SANITIZE=… verbatim; BUILD is the
# target list; each RUN entry is a command line relative to the sibling tree.
function(imca_sanitized_tree name)
  cmake_parse_arguments(ARG "" "SANITIZE;COMMENT" "BUILD;RUN" ${ARGN})
  set(tree "${CMAKE_BINARY_DIR}/${name}")
  set(cmds
      COMMAND ${CMAKE_COMMAND} -B "${tree}" -S "${CMAKE_SOURCE_DIR}"
              -DIMCA_SANITIZE=${ARG_SANITIZE}
      COMMAND ${CMAKE_COMMAND} --build "${tree}" --target ${ARG_BUILD}
              --parallel)
  foreach(run IN LISTS ARG_RUN)
    separate_arguments(run_args UNIX_COMMAND "${run}")
    list(POP_FRONT run_args exe)
    list(APPEND cmds COMMAND "${tree}/${exe}" ${run_args})
  endforeach()
  add_custom_target(${name} ${cmds} COMMENT "${ARG_COMMENT}" VERBATIM)
endfunction()
