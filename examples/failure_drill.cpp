// Failure drill — the paper's §4.4 operational claims, exercised end to end:
//
//   "MCDs are self-managing ... IMCa can transparently account for failures
//    in MCDs. Failures in MCDs do not impact correctness: Writes are always
//    persistent in IMCa and are written successfully to the server
//    filesystem before updating the MCDs."
//
// The drill writes a dataset through IMCa, kills cache daemons one at a time
// (finally the whole bank), and verifies after every failure that reads
// still return byte-exact data — degrading to the file server when the bank
// can no longer help.
#include <cstdio>
#include <vector>

#include "cluster/testbed.h"
#include "common/stats.h"
#include "common/rng.h"

using namespace imca;

namespace {

constexpr std::size_t kMcds = 3;
constexpr std::uint64_t kFileBytes = 64 * kKiB;

Buffer make_payload() {
  Rng rng(2008);
  std::vector<std::byte> data(kFileBytes);
  for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
  return Buffer::take(std::move(data));
}

}  // namespace

int main() {
  cluster::GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = kMcds;
  cluster::GlusterTestbed tb(cfg);

  const auto payload = make_payload();
  bool all_correct = true;

  tb.run([](cluster::GlusterTestbed& t, Buffer data,
            bool& ok_flag) -> sim::Task<void> {
    auto& fs = t.client(0);
    auto file = co_await fs.create("/critical/dataset.bin");
    (void)co_await fs.write(*file, 0, data);
    std::printf("wrote %llu bytes through IMCa (%zu MCDs up)\n\n",
                static_cast<unsigned long long>(data.size()), kMcds);

    // verify lives in the enclosing coroutine frame, which outlives it.
    // NOLINTNEXTLINE(imca-coro-lambda): every call co_awaited to completion.
    const auto verify = [&](const char* situation) -> sim::Task<void> {
      const SimTime t0 = t.loop().now();
      auto back = co_await fs.read(*file, 0, data.size());
      const SimDuration took = t.loop().now() - t0;
      const bool correct = back.has_value() && *back == data;
      ok_flag = ok_flag && correct;
      std::printf("%-34s read=%s integrity=%s latency=%s\n", situation,
                  back ? "ok" : "FAILED", correct ? "intact" : "CORRUPT",
                  format_duration(static_cast<double>(took)).c_str());
    };

    co_await verify("all daemons healthy");

    t.mcd(1).stop();
    co_await verify("mcd1 killed");

    t.mcd(0).stop();
    co_await verify("mcd0 also killed");

    t.mcd(2).stop();
    co_await verify("entire cache bank down");

    // Writes remain possible and durable with zero daemons alive.
    (void)co_await fs.write(*file, 0, to_buffer("overwritten-after-outage"));
    auto head = co_await fs.read(*file, 0, 24);
    const bool post_ok =
        head.has_value() && to_string(*head) == "overwritten-after-outage";
    ok_flag = ok_flag && post_ok;
    std::printf("%-34s read=%s integrity=%s\n", "write+read during outage",
                head ? "ok" : "FAILED", post_ok ? "intact" : "CORRUPT");

    // Ops the client had routed at dead daemons were swallowed locally.
    std::printf("\nclient ops absorbed by dead daemons: %llu\n",
                static_cast<unsigned long long>(
                    t.cmcache(0).mcds().stats().dead_server_ops));
  }(tb, payload, all_correct));

  std::printf("\n%s\n", all_correct
                            ? "DRILL PASSED: no failure affected correctness."
                            : "DRILL FAILED: data diverged!");
  return all_correct ? 0 : 1;
}
