// A data-center small-file workload — the environment the paper motivates in
// §3: "In data-center environments a large number of small files are used"
// and striping doesn't help them.
//
// A fleet of web-server nodes serves a catalog of small files (4 KB pages,
// thumbnails) with a Zipf-ish popularity skew off a shared GlusterFS volume.
// The example compares request latency and file-server load with and without
// the IMCa tier, and prints the MCD hit rate. Run it, then try changing
// kMcds or the skew.
#include <algorithm>
#include <map>
#include <cstdio>
#include <vector>

#include "cluster/testbed.h"
#include "common/rng.h"
#include "common/stats.h"

using namespace imca;

namespace {

constexpr std::size_t kServers = 8;      // web-server nodes (clients of the FS)
constexpr std::size_t kCatalog = 2000;   // distinct small files
constexpr std::size_t kRequests = 400;   // HTTP requests per web server
constexpr std::uint64_t kPageBytes = 4 * kKiB;

std::string path_of(std::size_t doc) {
  return "/site/static/page" + std::to_string(doc) + ".html";
}

// Zipf-ish skew: a few pages are hot, most are cold.
std::size_t pick_doc(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.5) return rng.below(20);           // 50% of hits on 20 pages
  if (u < 0.8) return 20 + rng.below(200);     // 30% on the next 200
  return 220 + rng.below(kCatalog - 220);      // tail
}

struct Outcome {
  LatencyHistogram request_latency;
  std::uint64_t server_fops = 0;
  double mcd_hit_rate = 0;
  SimDuration makespan = 0;
};

Outcome run(std::size_t n_mcds) {
  cluster::GlusterTestbedConfig cfg;
  cfg.n_clients = kServers;
  cfg.n_mcds = n_mcds;
  cluster::GlusterTestbed tb(cfg);

  Outcome out;

  // Populate the catalog (one admin pass, untimed in the report).
  tb.run([](cluster::GlusterTestbed& t) -> sim::Task<void> {
    auto& fs = t.client(0);
    const Buffer page =
        Buffer::take(std::vector<std::byte>(kPageBytes, std::byte{'x'}));
    for (std::size_t d = 0; d < kCatalog; ++d) {
      auto f = co_await fs.create(path_of(d));
      (void)co_await fs.write(*f, 0, page);
      (void)co_await fs.close(*f);
    }
  }(tb));
  const std::uint64_t fops_after_populate = tb.server().fops_served();
  const SimTime serve_start = tb.loop().now();

  // The serving phase: every web server handles its request stream.
  for (std::size_t s = 0; s < kServers; ++s) {
    tb.loop().spawn([](cluster::GlusterTestbed& t, std::size_t server_id,
                       LatencyHistogram& hist) -> sim::Task<void> {
      auto& fs = t.client(server_id);
      Rng rng(0x5EED + server_id);
      // fd cache: a real web server keeps hot files open. This matters with
      // IMCa because the *open* fop purges the file's cached blocks (paper
      // §4.2) — re-opening per request would defeat the tier.
      std::map<std::size_t, fsapi::OpenFile> fd_cache;
      for (std::size_t r = 0; r < kRequests; ++r) {
        const SimTime t0 = t.loop().now();
        const std::size_t doc = pick_doc(rng);
        auto it = fd_cache.find(doc);
        if (it == fd_cache.end()) {
          auto f = co_await fs.open(path_of(doc));
          if (!f) continue;
          it = fd_cache.emplace(doc, *f).first;
        }
        (void)co_await fs.read(it->second, 0, kPageBytes);
        hist.add(t.loop().now() - t0);
        // Think time between requests.
        co_await t.loop().sleep(200 * kMicro);
      }
    }(tb, s, out.request_latency));
  }
  tb.loop().run();

  out.server_fops = tb.server().fops_served() - fops_after_populate;
  out.makespan = tb.loop().now() - serve_start;
  if (n_mcds > 0) {
    const auto mcd = tb.mcd_totals();
    out.mcd_hit_rate = mcd.cmd_get == 0
                           ? 0.0
                           : static_cast<double>(mcd.get_hits) /
                                 static_cast<double>(mcd.cmd_get);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Small-file web workload: %zu web servers x %zu requests over"
              " %zu x %lluB files\n\n",
              kServers, kRequests, kCatalog,
              static_cast<unsigned long long>(kPageBytes));

  const Outcome nocache = run(0);
  const Outcome imca = run(4);

  const auto show = [](const char* name, const Outcome& o) {
    std::printf("%-12s p50=%-10s p99=%-10s server-fops=%-7llu%s",
                name, format_duration(o.request_latency.percentile_ns(0.5)).c_str(),
                format_duration(o.request_latency.percentile_ns(0.99)).c_str(),
                static_cast<unsigned long long>(o.server_fops), "");
    if (o.mcd_hit_rate > 0) {
      std::printf(" mcd-hit-rate=%.1f%%", 100 * o.mcd_hit_rate);
    }
    std::printf("\n");
  };
  show("NoCache", nocache);
  show("IMCa(4MCD)", imca);

  std::printf("\nRequest p50 improved %.1fx; the origin file server handled"
              " %.1fx fewer fops.\n",
              nocache.request_latency.percentile_ns(0.5) /
                  imca.request_latency.percentile_ns(0.5),
              static_cast<double>(nocache.server_fops) /
                  static_cast<double>(imca.server_fops));
  return 0;
}
