// Quickstart: stand up a simulated IMCa deployment (GlusterFS brick + two
// memcached daemons + one client), do file I/O through the caching tier, and
// look at what the cache did.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "cluster/testbed.h"
#include "common/stats.h"

using namespace imca;

int main() {
  // A testbed describes the whole simulated cluster. Two MCDs, one client;
  // everything else (brick, RAID, IPoIB fabric) comes from the defaults that
  // mirror the paper's hardware (§5.1).
  cluster::GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = 2;
  cfg.imca.block_size = 2 * kKiB;  // the paper's default block size

  cluster::GlusterTestbed tb(cfg);

  // All application logic runs as simulated processes (C++20 coroutines).
  tb.run([](cluster::GlusterTestbed& t) -> sim::Task<void> {
    fsapi::FileSystemClient& fs = t.client(0);

    // Create a file and write a record.
    auto file = co_await fs.create("/demo/hello.txt");
    if (!file) {
      std::printf("create failed: %s\n", std::string(errc_name(file.error())).c_str());
      co_return;
    }
    (void)co_await fs.write(*file, 0, to_buffer("hello, intermediate cache!"));

    // The write is durable at the GlusterFS server *and* the server-side
    // SMCache translator has pushed the covering 2 KB block plus the stat
    // structure into the MCD array.
    auto st = co_await fs.stat("/demo/hello.txt");  // served by the MCDs
    if (st) {
      std::printf("stat: size=%llu bytes (served from the cache bank)\n",
                  static_cast<unsigned long long>(st->size));
    }

    // Reads of cached blocks never touch the file server.
    const auto fops_before = t.server().fops_served();
    auto data = co_await fs.read(*file, 0, 26);
    if (data) {
      std::printf("read: \"%s\"\n", to_string(*data).c_str());
    }
    std::printf("file-server fops during the read: %llu (zero = all cache)\n",
                static_cast<unsigned long long>(t.server().fops_served() -
                                                fops_before));
    (void)co_await fs.close(*file);
  }(tb));

  // Post-run introspection: per-client translator stats and MCD counters.
  const auto& cm = tb.cmcache(0).stats();
  std::printf("\nCMCache: stat hits=%llu misses=%llu | reads from cache=%llu"
              " forwarded=%llu\n",
              static_cast<unsigned long long>(cm.stat_hits),
              static_cast<unsigned long long>(cm.stat_misses),
              static_cast<unsigned long long>(cm.reads_from_cache),
              static_cast<unsigned long long>(cm.reads_forwarded));
  const auto mcd = tb.mcd_totals();
  // close() purged the file from the bank (paper §4.3.2), so items is 0.
  std::printf("MCD array: get_hits=%llu get_misses=%llu items-after-close=%llu\n",
              static_cast<unsigned long long>(mcd.get_hits),
              static_cast<unsigned long long>(mcd.get_misses),
              static_cast<unsigned long long>(mcd.curr_items));
  std::printf("simulated time elapsed: %s\n",
              format_duration(static_cast<double>(tb.loop().now())).c_str());
  return 0;
}
