// Producer/consumer coordination through stat polling — the motivating use
// case of the paper's §4.2: "a producer will write or append to a file. A
// consumer may look at the modification time on the file to determine if an
// update has become available. This avoids the need and cost for explicit
// synchronization primitives such as locks."
//
// One producer appends batches to a log file; eight consumers poll the
// file's mtime and fetch the new bytes when it changes. With IMCa the polls
// are absorbed by the MCD array (SMCache republishes the stat structure
// after every write), so the GlusterFS server sees almost none of the
// polling storm. Run once with the cache and once without to see the load
// difference printed at the end.
#include <cstdio>

#include "cluster/testbed.h"

using namespace imca;

namespace {

constexpr int kBatches = 20;
constexpr std::size_t kConsumers = 8;
constexpr SimDuration kPollInterval = 2 * kMilli;
constexpr SimDuration kProduceInterval = 20 * kMilli;

sim::Task<void> producer(cluster::GlusterTestbed& tb) {
  auto& fs = tb.client(0);
  auto file = co_await fs.create("/feed/updates.log");
  std::uint64_t offset = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    co_await tb.loop().sleep(kProduceInterval);
    const std::string record =
        "update #" + std::to_string(batch) + ": fresh data\n";
    (void)co_await fs.write(*file, offset, to_buffer(record));
    offset += record.size();
  }
}

sim::Task<void> consumer(cluster::GlusterTestbed& tb, std::size_t id,
                         std::uint64_t& polls, std::uint64_t& updates_seen) {
  auto& fs = tb.client(id);
  // Wait for the feed to appear.
  while (!(co_await fs.stat("/feed/updates.log"))) {
    co_await tb.loop().sleep(kPollInterval);
  }
  auto file = co_await fs.open("/feed/updates.log");
  SimTime last_mtime = 0;
  std::uint64_t consumed = 0;
  for (int i = 0; i < 400; ++i) {
    co_await tb.loop().sleep(kPollInterval);
    auto st = co_await fs.stat("/feed/updates.log");  // the poll
    ++polls;
    if (!st || st->mtime == last_mtime) continue;  // nothing new
    last_mtime = st->mtime;
    auto fresh = co_await fs.read(*file, consumed, st->size - consumed);
    if (fresh && !fresh->empty()) {
      consumed += fresh->size();
      ++updates_seen;
    }
    if (updates_seen == kBatches) break;  // saw everything
  }
}

struct Outcome {
  std::uint64_t polls = 0;
  std::uint64_t server_fops = 0;
  double seen_fraction = 0;
};

Outcome run(std::size_t n_mcds) {
  cluster::GlusterTestbedConfig cfg;
  cfg.n_clients = 1 + kConsumers;  // producer + consumers
  cfg.n_mcds = n_mcds;
  cluster::GlusterTestbed tb(cfg);

  std::uint64_t polls = 0;
  std::uint64_t total_updates = 0;
  tb.loop().spawn(producer(tb));
  for (std::size_t c = 1; c <= kConsumers; ++c) {
    tb.loop().spawn(consumer(tb, c, polls, total_updates));
  }
  tb.loop().run();

  Outcome out;
  out.polls = polls;
  out.server_fops = tb.server().fops_served();
  out.seen_fraction = static_cast<double>(total_updates) /
                      static_cast<double>(kBatches * kConsumers);
  return out;
}

}  // namespace

int main() {
  std::printf("Producer/consumer stat polling (%zu consumers, %d batches)\n\n",
              kConsumers, kBatches);
  const Outcome nocache = run(0);
  const Outcome imca = run(2);

  std::printf("%-22s %12s %12s\n", "", "NoCache", "IMCa(2MCD)");
  std::printf("%-22s %12llu %12llu\n", "stat polls issued",
              static_cast<unsigned long long>(nocache.polls),
              static_cast<unsigned long long>(imca.polls));
  std::printf("%-22s %12llu %12llu\n", "file-server fops",
              static_cast<unsigned long long>(nocache.server_fops),
              static_cast<unsigned long long>(imca.server_fops));
  std::printf("%-22s %11.0f%% %11.0f%%\n", "updates delivered",
              100 * nocache.seen_fraction, 100 * imca.seen_fraction);
  std::printf("\nWith the cache bank, the polling storm lands on the MCDs:"
              " the file server handled %.1fx fewer operations.\n",
              static_cast<double>(nocache.server_fops) /
                  static_cast<double>(imca.server_fops));
  return 0;
}
