// Whole-tree symbol index for imca-lint: pass 1 of the interprocedural
// engine (DESIGN.md §5k).
//
// The per-file analyzer (analyzer.cc) can only see a suspension where a
// literal `co_await` appears; whether that await can actually *suspend*,
// and what state the awaited callee reaches, lives in other functions —
// often other files. Pass 1 closes that gap without a real AST: it parses
// every function-ish entity in every file (not just Task-returning ones),
// builds per-function summaries, and merges them **by name** across the
// whole file set. Name-merging is deliberate widening: a call through a
// virtual xlator interface or an overload set resolves to "any function
// with this name", so if any of them can suspend (or lock, or touch
// `this`) the call site is treated as if it does.
//
// Summaries computed here, all transitive fixpoints:
//
//   known_ready      names whose call result provably cannot suspend when
//                    awaited: every definition either returns a type whose
//                    await_ready() is literally `return true;` (or
//                    std::suspend_never), or forwards `return g(...)` to a
//                    known-ready g. Everything else — coroutines,
//                    Task-returners, unknown names — may suspend. This is
//                    what lets a check distinguish `co_await poll()` (ready
//                    relay, no suspension) from `co_await relay()` that
//                    bottoms out in a real coroutine two calls down.
//   fn_locks         name -> sim mutex member names the function's await
//                    chain can acquire (`co_await m_.lock()`,
//                    `ScopedLock::acquire(m_)`), propagated through awaited
//                    and forwarded calls. Used by IMCA-LOCK-AWAIT to catch
//                    re-entry of a non-reentrant SimMutex.
//   this_touching    class -> methods whose body uses a literal `this`
//                    (directly, or by calling a sibling method that does).
//                    The codebase convention is to spell lifetime-relevant
//                    member access after a suspension as `this->...`, so
//                    these are exactly the methods IMCA-CORO-THIS must see
//                    through at call sites after a suspension.
//   mutated_members  class -> trailing-underscore members some non-ctor
//                    method mutates (assignment, compound assignment, or a
//                    mutating container call). IMCA-ITER-AWAIT only flags
//                    iteration of members that some interleaving could
//                    actually mutate; fixed-at-construction topology
//                    (children_, subvols_) stays silent.
//   task_fns / file_task / file_nontask
//                    IMCA-DETACH name resolution. The old analyzer kept one
//                    global ambiguous-name set; the index keeps per-file
//                    declaration sets so a file whose own declarations
//                    disambiguate a name (Task-only, or non-Task-only) is
//                    resolved locally, and the global set is only the
//                    cross-file fallback.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lexer.h"

namespace imca::lint {

// ---------------------------------------------------------------------------
// Token-range cursor shared by the index builder and the checks.

class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& t) : t_(t) {}
  const std::vector<Token>& t_;

  std::size_t size() const { return t_.size(); }
  const Token& at(std::size_t i) const { return t_[i]; }
  bool is(std::size_t i, std::string_view s) const {
    return i < t_.size() && t_[i].text == s;
  }
  bool is_ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == Tok::kIdent;
  }

  // Index of the token matching the opener at `i` ('(', '{', '[' or '<'),
  // or size() if unbalanced. Angle matching bails out on tokens that cannot
  // occur in a template argument list, so expression '<' never matches.
  std::size_t match(std::size_t i) const;
};

// ---------------------------------------------------------------------------
// Entity extraction: every function-ish thing, not just Task-returning ones.

struct FnEntity {
  int line = 0;            // signature start (reporting line for lambdas)
  std::string name;        // declarator name; "" for lambdas
  std::string cls;         // `A` in `A::name`, or the enclosing class; "" unknown
  std::string ret;         // last return-type identifier ("Task", "void", ...)
  bool is_lambda = false;
  bool captures = false;   // lambda with a non-empty capture list
  bool is_ctor = false;    // name == enclosing/qualifying class
  bool returns_task = false;
  std::size_t start = 0;   // first token of the entity
  std::size_t params_lo = 0, params_hi = 0;  // tokens strictly inside ( )
  std::size_t body_lo = 0, body_hi = 0;      // tokens strictly inside { }
  std::vector<std::size_t> children;  // indices of directly nested entities
  bool is_coro = false;    // own body (children excluded) has a co_* keyword
};

// One linear scan collecting every function, method and lambda; nested
// entities are found because the scan continues into bodies. `cls` is
// resolved from explicit `A::name` qualification or the innermost enclosing
// struct/class.
std::vector<FnEntity> collect_functions(const Cursor& c);

// Iterate an entity's own body tokens, skipping nested entities' extents.
template <typename F>
void for_own_tokens(const std::vector<FnEntity>& all, const FnEntity& e,
                    F&& f) {
  std::vector<std::pair<std::size_t, std::size_t>> skip;
  skip.reserve(e.children.size());
  for (std::size_t ci : e.children) {
    skip.emplace_back(all[ci].start, all[ci].body_hi + 1);
  }
  std::sort(skip.begin(), skip.end());
  std::size_t s = 0;
  for (std::size_t i = e.body_lo; i < e.body_hi; ++i) {
    while (s < skip.size() && skip[s].second <= i) ++s;
    if (s < skip.size() && skip[s].first <= i) {
      i = skip[s].second - 1;
      continue;
    }
    if (!f(i)) return;
  }
}

// ---------------------------------------------------------------------------
// Await-expression helpers shared by the index builder and the checks.

// The callee of the expression awaited at `i` (a `co_await` token):
// `co_await a.b::c(...)` -> "c"; "" when the operand is not a call (a plain
// awaitable variable — always treated as may-suspend). `past` is the index
// just after the awaited primary expression (past the call's closing ')').
struct AwaitedCall {
  std::string callee;  // "" = not a call
  std::size_t past = 0;
};
AwaitedCall awaited_call(const Cursor& c, std::size_t i);

// Recognizes the two mutex-acquisition idioms with the `co_await` at `i`:
// `co_await M.lock()` / `co_await M->lock()` and
// `co_await [sim::][ScopedLock::]acquire(M)`. Returns the mutex's member
// name (the last identifier of M) and the index past the expression.
struct LockAcquire {
  std::string mutex;
  std::size_t past = 0;
};
std::optional<LockAcquire> lock_acquire(const Cursor& c, std::size_t i);

// ---------------------------------------------------------------------------
// The merged whole-tree index (pass 1 result).

struct SymbolIndex {
  std::set<std::string> known_ready;
  std::map<std::string, std::set<std::string>> fn_locks;
  std::map<std::string, std::set<std::string>> this_touching;
  std::map<std::string, std::set<std::string>> mutated_members;

  std::set<std::string> task_fns;       // names with a Task declaration anywhere
  std::set<std::string> ambiguous_fns;  // names with a non-Task declaration anywhere
  std::map<std::string, std::set<std::string>> file_task;
  std::map<std::string, std::set<std::string>> file_nontask;

  // Can awaiting the result of a call to `callee` suspend? Unknown names
  // widen to "yes"; only a proven-ready summary says "no".
  bool may_suspend(const std::string& callee) const {
    return callee.empty() || known_ready.count(callee) == 0;
  }

  const std::set<std::string>* locks_of(const std::string& callee) const {
    auto it = fn_locks.find(callee);
    return it == fn_locks.end() ? nullptr : &it->second;
  }
  bool touches_this(const std::string& cls, const std::string& method) const {
    auto it = this_touching.find(cls);
    return it != this_touching.end() && it->second.count(method) > 0;
  }
  bool mutated(const std::string& cls, const std::string& member) const {
    auto it = mutated_members.find(cls);
    return it != mutated_members.end() && it->second.count(member) > 0;
  }
};

// Builds the index over the whole file set (relpath -> lexed tokens).
SymbolIndex build_index(
    const std::vector<std::pair<std::string, const LexedFile*>>& files);

}  // namespace imca::lint
