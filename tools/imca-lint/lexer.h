// Token stream for the imca-lint AST-lite analyzer.
//
// imca-lint runs anywhere the build runs: it has no libclang dependency, so
// it works from a hand-rolled C++ lexer plus a pattern-level "parser"
// (analyzer.cc) instead of a real AST. The lexer's job is to make that
// tractable: comments, string/char literals, raw strings and preprocessor
// lines are consumed here so the analysis passes only ever see identifiers,
// numbers and punctuation with accurate line numbers.
//
// Comments are not discarded: NOLINT / EXPECT markers live in them, so each
// comment's text and line are surfaced separately from the token stream.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace imca::lint {

enum class Tok {
  kIdent,   // identifiers and keywords (co_await, const, ... stay raw text)
  kNumber,  // numeric literal (pp-number, loosely)
  kString,  // "..." or R"(...)" — text is a placeholder, contents dropped
  kChar,    // '...'
  kPunct,   // operators and punctuation, maximal munch for multi-char ops
};

struct Token {
  Tok kind;
  std::string text;
  int line;

  bool is(std::string_view s) const { return text == s; }
  bool ident(std::string_view s) const { return kind == Tok::kIdent && text == s; }
};

struct Comment {
  std::string text;  // without the // or /* */ delimiters
  int line;          // line the comment starts on
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes `source`. Never fails: anything unrecognized becomes a 1-char
// punct token, which the analyzer simply won't match.
LexedFile lex(std::string_view source);

}  // namespace imca::lint
