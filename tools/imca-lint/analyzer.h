// The imca-lint checks: this codebase's coroutine-lifetime rules, encoded.
//
// Every check exists because a sanitizer caught the bug class at runtime in
// an earlier PR and the rule is mechanical enough to enforce at build time
// (DESIGN.md §5g records the contract each check enforces):
//
//   IMCA-CORO-REF     a coroutine taking a parameter whose referent can die
//                     while the frame is suspended: const lvalue reference,
//                     rvalue reference, std::string_view, or BufView.
//                     Non-const lvalue references are exempt — they cannot
//                     bind temporaries, and this codebase uses them only for
//                     environment handles (EventLoop&, rigs) and out-params
//                     that the caller keeps alive across the await.
//   IMCA-CORO-LAMBDA  a capturing lambda that is itself a coroutine: the
//                     frame holds a reference to the lambda object, which is
//                     usually a dead temporary by the first resumption (the
//                     PR 1 stack-use-after-scope class).
//   IMCA-CORO-THIS    a coroutine that touches `this` after a co_await with
//                     no liveness token in scope (the write-behind alive_
//                     pattern); the object may be torn down while suspended.
//   IMCA-DETACH       a statement that creates a Task and immediately drops
//                     it (bare call or (void)-cast): lazy tasks never run
//                     unless awaited, spawned, or started.
//   IMCA-MOVED-BUF    use of a Buffer/ByteBuf after std::move in the same
//                     scope (the PR 4 moved-from write-behind buffer class).
//   IMCA-BYTE-VEC     std::vector<std::byte> in a payload signature under
//                     src/ — Buffer is the one payload type on the data
//                     path (folds the old lint-no-byte-vectors grep).
//   IMCA-NODE-FREED   use of an EventNode* after arena release in the same
//                     scope (the PR 6 wheel/arena class): release() turns
//                     n->next into the free-list link and the next alloc
//                     recycles the node, so a stale read resumes the wrong
//                     coroutine — copy (at, seq, handle) out and unlink
//                     BEFORE releasing.
//   IMCA-NOLINT-BARE  a NOLINT(imca-…) with no ": justification" text; the
//                     escape hatch requires a reason and cannot itself be
//                     suppressed.
//
// Suppression: `// NOLINT(imca-coro-ref): why` on the finding's line, or
// `// NOLINTNEXTLINE(imca-coro-ref): why` on the line above. Blanket
// clang-style NOLINT without an imca-* id does NOT silence imca-lint.
//
// AST-lite limitations (by design — no libclang in the build image): member
// state reached implicitly (without `this->`) after a co_await is not seen
// by IMCA-CORO-THIS, and IMCA-MOVED-BUF tracks only variables whose
// Buffer/ByteBuf declaration is visible in the same file. The corpus under
// tests/lint_corpus/ pins exactly what is and is not caught.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace imca::lint {

struct Finding {
  std::string file;  // path as given on the command line
  int line = 0;
  std::string check;    // "IMCA-CORO-REF", ...
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return check < o.check;
  }
};

// Pass 1 result, merged across the whole file set before pass 2.
struct NameIndex {
  // Names of Task-returning functions (declared or defined anywhere).
  std::set<std::string> task_fns;
  // Names also declared with a non-Task return type (or bound to lambdas).
  // IMCA-DETACH skips these: without real types, a name that means both
  // "Task fop" and "void utility" (set, stat, create, …) cannot be
  // attributed at the call site, and a false positive on every
  // event.set() would bury the signal.
  std::set<std::string> ambiguous_fns;
};

// Pass 1: collect function names declared or defined in this file (fed back
// into every file's IMCA-DETACH pass so cross-file calls are seen).
NameIndex collect_names(const LexedFile& lexed);

// Pass 2: run every check over one file. `relpath` decides path-scoped
// checks (IMCA-BYTE-VEC applies under src/ only, everywhere when
// `all_checks` — used for the lint corpus). NOLINT suppression is applied
// here; suppressed findings are dropped.
std::vector<Finding> analyze(const std::string& relpath, const LexedFile& lexed,
                             const NameIndex& names, bool all_checks);

}  // namespace imca::lint
