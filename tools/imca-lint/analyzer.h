// The imca-lint checks: this codebase's coroutine-lifetime and
// suspension-atomicity rules, encoded.
//
// Every check exists because a sanitizer or a fault matrix caught the bug
// class at runtime in an earlier PR and the rule is mechanical enough to
// enforce at build time (DESIGN.md §5g/§5k record the contract each check
// enforces). Since PR 9 the analyzer is interprocedural: pass 1
// (index.h/index.cc) builds a whole-tree symbol index with per-function
// suspension summaries, and pass 2 re-runs the checks with call-site
// suspension knowledge — `co_await relay()` is a suspension only if relay's
// call chain can actually suspend, and member state reached through a
// method call is seen, not just literal `this->`.
//
//   IMCA-CORO-REF     a coroutine taking a parameter whose referent can die
//                     while the frame is suspended: const lvalue reference,
//                     rvalue reference, std::string_view, or BufView.
//                     Non-const lvalue references are exempt — they cannot
//                     bind temporaries, and this codebase uses them only for
//                     environment handles (EventLoop&, rigs) and out-params
//                     that the caller keeps alive across the await.
//   IMCA-CORO-LAMBDA  a capturing lambda that is itself a coroutine: the
//                     frame holds a reference to the lambda object, which is
//                     usually a dead temporary by the first resumption (the
//                     PR 1 stack-use-after-scope class).
//   IMCA-CORO-THIS    a coroutine that touches `this` after a suspension
//                     with no liveness token in scope (the write-behind
//                     alive_ pattern); the object may be torn down while
//                     suspended. Interprocedural on both sides: the
//                     suspension is real only if the awaited callee can
//                     suspend (transitively, via the index), and the touch
//                     fires on a bare call to a same-class method that
//                     (transitively) uses `this`, not just on a literal
//                     `this` token.
//   IMCA-ITER-AWAIT   a coroutine iterating a member container with a
//                     possibly-suspending await in the loop body, where
//                     some method of the same class mutates that container
//                     (the PR 4 handler-map class: an interleaved coroutine
//                     invalidates the iterator mid-loop). Members nothing
//                     mutates (fixed topology: children_, subvols_) are
//                     exempt — iterate them freely.
//   IMCA-LOCK-AWAIT   two shapes of broken mutual exclusion across a
//                     suspension: (a) a sim::Mutex guard held across a
//                     co_await whose callee's lock summary includes the
//                     same mutex — SimMutex is not reentrant, so the resume
//                     deadlocks; (b) a member read into a local, a
//                     suspension, then the member written back from that
//                     stale local with no guard, epoch re-check, or
//                     liveness token — an interleaved writer's update is
//                     silently lost.
//   IMCA-STAT-RMW     shape (b) specialized to stats/ledger counters
//                     (member names containing stats/ledger/total/count):
//                     a counter incremented from state captured before a
//                     suspension is the classic lost-update that made the
//                     PR 8 flush accounting drift under reordered resumes.
//   IMCA-DETACH       a statement that creates a Task and immediately drops
//                     it (bare call or (void)-cast): lazy tasks never run
//                     unless awaited, spawned, or started. Name resolution
//                     is per-file first (a file whose own declarations make
//                     the name Task-only fires even if the name is
//                     ambiguous elsewhere in the tree), with the global
//                     index as cross-file fallback.
//   IMCA-MOVED-BUF    use of a Buffer/ByteBuf after std::move in the same
//                     scope (the PR 4 moved-from write-behind buffer class).
//   IMCA-BYTE-VEC     std::vector<std::byte> in a payload signature under
//                     src/ — Buffer is the one payload type on the data
//                     path (folds the old lint-no-byte-vectors grep).
//   IMCA-NODE-FREED   use of an EventNode* after arena release in the same
//                     scope (the PR 6 wheel/arena class): release() turns
//                     n->next into the free-list link and the next alloc
//                     recycles the node, so a stale read resumes the wrong
//                     coroutine — copy (at, seq, handle) out and unlink
//                     BEFORE releasing.
//   IMCA-NOLINT-BARE  a NOLINT(imca-…) with no ": justification" text; the
//                     escape hatch requires a reason and cannot itself be
//                     suppressed.
//
// Suppression: `// NOLINT(imca-coro-ref): why` on the finding's line, or
// `// NOLINTNEXTLINE(imca-coro-ref): why` on the line above. Blanket
// clang-style NOLINT without an imca-* id does NOT silence imca-lint.
//
// AST-lite limitations (by design — no libclang in the build image): the
// suspension summaries are name-merged (overloads and virtual dispatch
// widen to "any same-name function"), awaited-call arguments are treated as
// evaluated before the await they feed, and IMCA-MOVED-BUF tracks only
// variables whose Buffer/ByteBuf declaration is visible in the same file.
// The corpus under tests/lint_corpus/ pins exactly what is and is not
// caught — including the transitive cases (transitive_bad/good.cc).
#pragma once

#include <string>
#include <vector>

#include "index.h"
#include "lexer.h"

namespace imca::lint {

struct Finding {
  std::string file;  // path as given on the command line
  int line = 0;
  std::string check;    // "IMCA-CORO-REF", ...
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return check < o.check;
  }
};

// Pass 2: run every check over one file against the whole-tree symbol
// index. `relpath` decides path-scoped checks (IMCA-BYTE-VEC applies under
// src/ only, everywhere when `all_checks` — used for the lint corpus) and
// selects the file's own declaration set for IMCA-DETACH resolution.
// NOLINT suppression is applied here; suppressed findings are dropped.
std::vector<Finding> analyze(const std::string& relpath, const LexedFile& lexed,
                             const SymbolIndex& index, bool all_checks);

}  // namespace imca::lint
