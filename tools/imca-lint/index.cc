#include "index.h"

#include <algorithm>
#include <cstddef>

namespace imca::lint {
namespace {

using std::size_t;

bool is_coro_keyword(std::string_view s) {
  return s == "co_await" || s == "co_return" || s == "co_yield";
}

// Keywords that precede calls or control flow, never a declarator name —
// and names that are themselves statements, not functions.
const std::set<std::string>& stmt_keywords() {
  static const std::set<std::string> kw = {
      "return",   "co_return", "co_await", "co_yield",  "case",
      "goto",     "new",       "delete",   "throw",     "else",
      "do",       "sizeof",    "typedef",  "using",     "typename",
      "operator", "if",        "while",    "for",       "switch",
      "catch",    "decltype",  "alignof",  "noexcept",  "requires",
      "template", "static_assert"};
  return kw;
}

// Return-type / declarator specifiers skipped when walking back from the
// declarator name to the return-type identifier.
bool is_decl_specifier(std::string_view s) {
  return s == "const" || s == "constexpr" || s == "volatile" ||
         s == "inline" || s == "static" || s == "virtual" ||
         s == "explicit" || s == "friend" || s == "typename" ||
         s == "unsigned" || s == "signed" || s == "long" || s == "short";
}

}  // namespace

size_t Cursor::match(size_t i) const {
  const std::string_view open = t_[i].text;
  std::string_view close;
  if (open == "(") close = ")";
  else if (open == "{") close = "}";
  else if (open == "[") close = "]";
  else if (open == "<") close = ">";
  else return size();
  int depth = 0;
  for (size_t j = i; j < t_.size(); ++j) {
    const std::string_view s = t_[j].text;
    if (open == "<" && (s == ";" || s == "{" || s == "}")) return size();
    if (s == open) ++depth;
    else if (s == close && --depth == 0) return j;
  }
  return size();
}

namespace {

// ---------------------------------------------------------------------------
// Parsers (lambda / Task function / generic function).

// True when a '[' at this position starts a lambda-introducer rather than a
// subscript (prev token is a value) or an attribute (handled by caller).
bool lambda_position(const std::vector<Token>& t, size_t i) {
  if (i == 0) return true;
  const Token& p = t[i - 1];
  if (p.kind == Tok::kIdent) {
    return p.text == "return" || is_coro_keyword(p.text) || p.text == "case" ||
           p.text == "else" || p.text == "do";
  }
  if (p.kind != Tok::kPunct) return false;
  return p.text != ")" && p.text != "]" && p.text != "}";
}

std::optional<std::pair<FnEntity, size_t>> parse_lambda(const Cursor& c,
                                                        size_t i) {
  FnEntity e;
  e.is_lambda = true;
  e.line = c.at(i).line;
  e.start = i;
  const size_t cap_end = c.match(i);
  if (cap_end >= c.size()) return std::nullopt;
  e.captures = cap_end > i + 1;
  size_t j = cap_end + 1;
  if (c.is(j, "<")) {  // template lambda
    const size_t m = c.match(j);
    if (m >= c.size()) return std::nullopt;
    j = m + 1;
  }
  if (c.is(j, "(")) {
    const size_t m = c.match(j);
    if (m >= c.size()) return std::nullopt;
    e.params_lo = j + 1;
    e.params_hi = m;
    j = m + 1;
  }
  // Specifiers / trailing return type, until the body. Anything that cannot
  // belong to a lambda-declarator means this '[' was not a lambda after all.
  for (int guard = 0; guard < 64 && j < c.size(); ++guard) {
    const Token& tk = c.at(j);
    if (tk.is("{")) {
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      e.body_lo = j + 1;
      e.body_hi = m;
      return std::make_pair(e, m + 1);
    }
    if (tk.is("(") || tk.is("<")) {  // noexcept(...), Task<...>
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      j = m + 1;
      continue;
    }
    if (tk.kind == Tok::kIdent || tk.is("->") || tk.is("::") || tk.is("&") ||
        tk.is("&&") || tk.is("*")) {
      ++j;
      continue;
    }
    return std::nullopt;  // ';' ',' ']' ... — a misparse, not a lambda
  }
  return std::nullopt;
}

// `Task<...> [qualified-]name ( params ) specifiers { body }` with the
// 'Task' identifier at `i`. Declarations (ending ';' or '=') yield an
// entity with no body.
std::optional<std::pair<FnEntity, size_t>> parse_task_function(const Cursor& c,
                                                               size_t i) {
  if (!c.is(i + 1, "<")) return std::nullopt;
  const size_t angle = c.match(i + 1);
  if (angle >= c.size()) return std::nullopt;
  size_t j = angle + 1;
  if (c.is(j, "&") || c.is(j, "&&") || c.is(j, "*")) return std::nullopt;
  if (!c.is_ident(j)) return std::nullopt;
  FnEntity e;
  e.start = i;
  e.line = c.at(i).line;
  e.ret = "Task";
  e.returns_task = true;
  e.name = c.at(j).text;
  ++j;
  while (c.is(j, "::") && c.is_ident(j + 1)) {
    e.cls = e.name;  // the qualifier before the final component
    e.name = c.at(j + 1).text;
    j += 2;
  }
  if (!c.is(j, "(")) return std::nullopt;  // a variable, not a function
  const size_t close = c.match(j);
  if (close >= c.size()) return std::nullopt;
  e.params_lo = j + 1;
  e.params_hi = close;
  j = close + 1;
  // const / noexcept / override / final / ref-qualifiers, then body or ';'.
  for (int guard = 0; guard < 32 && j < c.size(); ++guard) {
    const Token& tk = c.at(j);
    if (tk.is("{")) {
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      e.body_lo = j + 1;
      e.body_hi = m;
      return std::make_pair(e, m + 1);
    }
    if (tk.is(";") || tk.is("=")) return std::make_pair(e, j + 1);  // decl
    if (tk.is("(")) {  // noexcept(...)
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      j = m + 1;
      continue;
    }
    if (tk.kind == Tok::kIdent || tk.is("&") || tk.is("&&")) {
      ++j;
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// Does the '>' at `i` close a template whose head identifier is `Task`?
// Guards the generic parser against re-parsing `Task<...> name(` (already
// taken by parse_task_function).
bool closes_task_template(const Cursor& c, size_t i) {
  int depth = 1;
  size_t j = i;
  while (j > 0 && depth > 0) {
    --j;
    if (c.is(j, ">")) ++depth;
    else if (c.is(j, "<")) --depth;
  }
  return depth == 0 && j > 0 && c.at(j - 1).ident("Task");
}

// Generic function definition/declaration with the declarator name at `i`
// (the token after it is '('). The caller has already vetted the token
// before `i`. Handles constructor initializer lists; qualified `A::name`
// sets `cls`. A qualified match with no body is discarded by the caller
// (it is a call like `ns::f(x);`, not a declaration).
std::optional<std::pair<FnEntity, size_t>> parse_generic_function(
    const Cursor& c, size_t i) {
  FnEntity e;
  e.start = i;
  e.line = c.at(i).line;
  e.name = c.at(i).text;
  size_t lo = i;  // start of the qualified name, for the return-type walk
  if (i >= 2 && c.is(i - 1, "::") && c.is_ident(i - 2)) {
    e.cls = c.at(i - 2).text;
    lo = i - 2;
  }
  // Return type: walk back over specifiers / pointers / references.
  size_t k = lo;
  while (k > 0) {
    const Token& p = c.at(k - 1);
    if (p.is("*") || p.is("&") || p.is("&&") ||
        (p.kind == Tok::kIdent && is_decl_specifier(p.text))) {
      --k;
      continue;
    }
    if (p.is(">")) {  // templated return type: ident before the matching '<'
      int depth = 1;
      size_t j = k - 1;
      while (j > 0 && depth > 0) {
        --j;
        if (c.is(j, ">")) ++depth;
        else if (c.is(j, "<")) --depth;
      }
      if (depth == 0 && j > 0 && c.is_ident(j - 1)) e.ret = c.at(j - 1).text;
      break;
    }
    if (p.kind == Tok::kIdent) {
      e.ret = p.text;
      break;
    }
    break;
  }
  const size_t open = i + 1;
  const size_t close = c.match(open);
  if (close >= c.size()) return std::nullopt;
  e.params_lo = open + 1;
  e.params_hi = close;
  size_t j = close + 1;
  for (int guard = 0; guard < 48 && j < c.size(); ++guard) {
    const Token& tk = c.at(j);
    if (tk.is("{")) {
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      e.body_lo = j + 1;
      e.body_hi = m;
      return std::make_pair(e, m + 1);
    }
    if (tk.is(";") || tk.is("=")) return std::make_pair(e, j + 1);  // decl
    if (tk.is(":")) {  // constructor initializer list
      ++j;
      for (int g2 = 0; g2 < 256 && j < c.size(); ++g2) {
        if (c.is(j, "(") || c.is(j, "<")) {
          const size_t m = c.match(j);
          if (m >= c.size()) return std::nullopt;
          j = m + 1;
          continue;
        }
        if (c.is(j, "{")) {
          // `b_{2}` brace-init (follows an identifier or template args) vs
          // the constructor body (follows ')' '}' or the ':').
          if (j > 0 && (c.is_ident(j - 1) || c.is(j - 1, ">"))) {
            const size_t m = c.match(j);
            if (m >= c.size()) return std::nullopt;
            j = m + 1;
            continue;
          }
          const size_t m = c.match(j);
          if (m >= c.size()) return std::nullopt;
          e.body_lo = j + 1;
          e.body_hi = m;
          return std::make_pair(e, m + 1);
        }
        if (c.is_ident(j) || c.is(j, "::") || c.is(j, ",") || c.is(j, ".")) {
          ++j;
          continue;
        }
        return std::nullopt;
      }
      return std::nullopt;
    }
    if (tk.kind == Tok::kIdent || tk.is("&") || tk.is("&&") || tk.is("->") ||
        tk.is("::") || tk.is("*") || tk.is("<")) {
      if (tk.is("<")) {
        const size_t m = c.match(j);
        if (m >= c.size()) return std::nullopt;
        j = m + 1;
        continue;
      }
      ++j;
      continue;
    }
    if (tk.is("(")) {  // noexcept(...)
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      j = m + 1;
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// Is the token at `i` plausibly a declarator name (rather than a call)?
// The token before it must be type-ish: an identifier that is not a
// statement keyword, a template/pointer/reference tail, a `::` qualifier,
// or the `]]` of a preceding attribute.
bool declarator_position(const Cursor& c, size_t i) {
  if (i == 0) return false;
  const Token& p = c.at(i - 1);
  if (p.kind == Tok::kIdent) return stmt_keywords().count(p.text) == 0;
  if (p.is(">") || p.is("*") || p.is("&") || p.is("&&") || p.is("::")) {
    return true;
  }
  if (p.is("]") && i >= 2 && c.is(i - 2, "]")) return true;  // [[attr]]
  return false;
}

// ---------------------------------------------------------------------------
// Class scopes: intervals of tokens inside `struct|class Name { ... }`.

struct ClassScope {
  std::string name;
  size_t lo, hi;  // token body range [lo, hi)
};

std::vector<ClassScope> collect_class_scopes(const Cursor& c) {
  std::vector<ClassScope> out;
  for (size_t i = 0; i + 1 < c.size(); ++i) {
    if (!(c.at(i).ident("struct") || c.at(i).ident("class"))) continue;
    if (i > 0 && c.at(i - 1).ident("enum")) continue;  // enum class
    if (!c.is_ident(i + 1)) continue;
    const std::string name = c.at(i + 1).text;
    // Walk the class-head (final, bases, template args) to '{' or give up
    // at anything that means this was not a class definition.
    size_t j = i + 2;
    bool found = false;
    for (int guard = 0; guard < 64 && j < c.size(); ++guard) {
      if (c.is(j, "{")) {
        const size_t m = c.match(j);
        if (m < c.size()) out.push_back({name, j + 1, m});
        found = true;
        break;
      }
      if (c.is(j, "<")) {
        const size_t m = c.match(j);
        if (m >= c.size()) break;
        j = m + 1;
        continue;
      }
      if (c.is_ident(j) || c.is(j, ":") || c.is(j, ",") || c.is(j, "::")) {
        ++j;
        continue;
      }
      break;  // ';' (forward decl), '>' (template param), ...
    }
    (void)found;
  }
  return out;
}

}  // namespace

std::vector<FnEntity> collect_functions(const Cursor& c) {
  std::vector<FnEntity> out;
  for (size_t i = 0; i < c.size(); ++i) {
    const Token& tk = c.at(i);
    if (tk.ident("Task")) {
      if (auto r = parse_task_function(c, i)) {
        out.push_back(r->first);
        // Continue INSIDE the signature/body so nested entities are found.
        continue;
      }
    }
    if (tk.is("[") && !c.is(i + 1, "[") && lambda_position(c.t_, i)) {
      if (auto r = parse_lambda(c, i)) {
        out.push_back(r->first);
        continue;
      }
    }
    if (tk.is("[") && c.is(i + 1, "[")) {  // attribute: skip wholesale
      const size_t m = c.match(i);
      if (m < c.size()) i = m;
      continue;
    }
    if (tk.kind == Tok::kIdent && c.is(i + 1, "(") &&
        stmt_keywords().count(tk.text) == 0 && tk.text != "operator" &&
        declarator_position(c, i) && !(i > 0 && c.is(i - 1, "~"))) {
      // Task<...> [A::]name( was already taken by parse_task_function
      // above — walk the qualifier chain back before testing for the
      // closing '>' of the Task template, or `Task<void> A::f()` would be
      // parsed twice (the duplicate has no children wired, so a nested
      // lambda's co_await would leak into its own-token scan).
      size_t q = i;
      while (q >= 2 && c.is(q - 1, "::") && c.is_ident(q - 2)) q -= 2;
      if (c.is(q - 1, ">") && closes_task_template(c, q - 1)) continue;
      if (auto r = parse_generic_function(c, i)) {
        // A qualified name with no body is a call (`ns::f(x);`), not an
        // out-of-line declaration — C++ has no such thing.
        const bool qualified = c.is(i - 1, "::");
        const bool dup =
            r->first.body_hi != 0 &&
            std::any_of(out.begin(), out.end(), [&](const FnEntity& e) {
              return e.body_lo == r->first.body_lo &&
                     e.body_hi == r->first.body_hi;
            });
        if ((!qualified || r->first.body_hi != 0) && !dup) {
          out.push_back(r->first);
        }
        continue;
      }
    }
  }
  // Enclosing class for entities without explicit qualification; ctor flag.
  const std::vector<ClassScope> classes = collect_class_scopes(c);
  for (FnEntity& e : out) {
    if (e.cls.empty() && !e.is_lambda) {
      size_t best = c.size() + 1;
      for (const ClassScope& cs : classes) {
        if (cs.lo <= e.start && e.start < cs.hi && cs.hi - cs.lo < best) {
          best = cs.hi - cs.lo;
          e.cls = cs.name;
        }
      }
    }
    e.is_ctor = !e.name.empty() && e.name == e.cls;
  }
  // Parent/child: an entity is a child of the innermost entity whose body
  // strictly contains it.
  for (size_t a = 0; a < out.size(); ++a) {
    size_t parent = out.size();
    for (size_t b = 0; b < out.size(); ++b) {
      if (a == b || out[b].body_hi == 0) continue;
      if (out[b].body_lo <= out[a].start && out[a].start < out[b].body_hi) {
        if (parent == out.size() || out[b].body_lo > out[parent].body_lo) {
          parent = b;
        }
      }
    }
    if (parent != out.size()) out[parent].children.push_back(a);
  }
  // Own-body coroutine-ness (children's extents excluded).
  for (FnEntity& e : out) {
    if (e.body_hi == 0) continue;
    for_own_tokens(out, e, [&](size_t i) {
      if (c.at(i).kind == Tok::kIdent && is_coro_keyword(c.at(i).text)) {
        e.is_coro = true;
        return false;
      }
      return true;
    });
  }
  return out;
}

AwaitedCall awaited_call(const Cursor& c, size_t i) {
  AwaitedCall out;
  size_t j = i + 1;
  if (!c.is_ident(j)) {
    out.past = j;
    return out;  // `co_await (expr)` / non-ident operand: not a simple call
  }
  std::string last = c.at(j).text;
  size_t k = j + 1;
  while ((c.is(k, "::") || c.is(k, ".") || c.is(k, "->")) &&
         c.is_ident(k + 1)) {
    last = c.at(k + 1).text;
    k += 2;
  }
  if (c.is(k, "(")) {
    const size_t m = c.match(k);
    out.callee = last;
    out.past = m < c.size() ? m + 1 : k + 1;
  } else {
    out.past = k;  // plain awaitable variable
  }
  return out;
}

std::optional<LockAcquire> lock_acquire(const Cursor& c, size_t i) {
  // Walk the chain after co_await collecting identifiers.
  size_t j = i + 1;
  if (!c.is_ident(j)) return std::nullopt;
  std::vector<std::string> chain = {c.at(j).text};
  size_t k = j + 1;
  while ((c.is(k, "::") || c.is(k, ".") || c.is(k, "->")) &&
         c.is_ident(k + 1)) {
    chain.push_back(c.at(k + 1).text);
    k += 2;
  }
  if (!c.is(k, "(")) return std::nullopt;
  const size_t close = c.match(k);
  if (close >= c.size()) return std::nullopt;
  const std::string& tail = chain.back();
  if (tail == "lock" && chain.size() >= 2 && close == k + 1) {
    return LockAcquire{chain[chain.size() - 2], close + 1};
  }
  if (tail == "acquire" && close > k + 1) {
    // Mutex = last identifier of the argument chain: acquire(rig.mu_) -> mu_.
    std::string m;
    for (size_t a = k + 1; a < close; ++a) {
      if (c.is_ident(a)) m = c.at(a).text;
    }
    if (!m.empty()) return LockAcquire{m, close + 1};
  }
  return std::nullopt;
}

namespace {

// Per-definition raw summary, before the cross-file merge.
struct FnRecord {
  std::string name, cls, ret;
  bool has_body = false;
  bool is_coro = false;
  bool returns_task = false;
  std::set<std::string> awaited;    // callees of co_await <call> in the body
  std::set<std::string> forwarded;  // g in `return g(...)` (non-coro body)
  std::set<std::string> locks;      // mutexes acquired directly in the body
};

bool member_mutator(std::string_view s) {
  return s == "insert" || s == "erase" || s == "clear" || s == "emplace" ||
         s == "emplace_back" || s == "push_back" || s == "pop_back" ||
         s == "push_front" || s == "pop_front" || s == "resize" ||
         s == "assign" || s == "swap";
}

bool trailing_underscore(std::string_view s) {
  return s.size() > 1 && s.back() == '_';
}

}  // namespace

SymbolIndex build_index(
    const std::vector<std::pair<std::string, const LexedFile*>>& files) {
  SymbolIndex idx;
  std::vector<FnRecord> records;
  std::set<std::string> ready_classes = {"suspend_never"};

  // Entities are collected once per file and reused by every pass below.
  std::vector<std::vector<FnEntity>> per_file;
  per_file.reserve(files.size());
  for (const auto& [relpath, lexed] : files) {
    (void)relpath;
    per_file.push_back(collect_functions(Cursor(lexed->tokens)));
  }

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& relpath = files[fi].first;
    const Cursor c(files[fi].second->tokens);
    const std::vector<FnEntity>& ents = per_file[fi];

    // Legacy extra ambiguity shape kept from the per-name index: a lambda
    // bound to a name makes that name a non-Task callable.
    for (size_t i = 0; i + 3 < c.size(); ++i) {
      if (c.at(i).ident("auto") && c.is_ident(i + 1) && c.is(i + 2, "=") &&
          c.is(i + 3, "[")) {
        idx.ambiguous_fns.insert(c.at(i + 1).text);
        idx.file_nontask[relpath].insert(c.at(i + 1).text);
      }
    }

    for (const FnEntity& e : ents) {
      if (e.is_lambda || e.name.empty()) continue;
      if (e.returns_task) {
        idx.task_fns.insert(e.name);
        idx.file_task[relpath].insert(e.name);
      } else {
        idx.ambiguous_fns.insert(e.name);
        idx.file_nontask[relpath].insert(e.name);
      }
      if (e.is_ctor) continue;  // ctors: named like the class, never summarized

      FnRecord r;
      r.name = e.name;
      r.cls = e.cls;
      r.ret = e.ret;
      r.returns_task = e.returns_task;
      r.is_coro = e.is_coro;
      r.has_body = e.body_hi != 0;

      if (r.has_body) {
        // A ready awaitable: `bool await_ready()` that is literally
        // `return true;` — awaiting a value of the enclosing class never
        // suspends.
        if (e.name == "await_ready" && e.body_hi == e.body_lo + 3 &&
            c.at(e.body_lo).ident("return") &&
            c.at(e.body_lo + 1).ident("true") && c.is(e.body_lo + 2, ";") &&
            !e.cls.empty()) {
          ready_classes.insert(e.cls);
        }
        const bool lock_wrapper = e.name == "lock" || e.name == "acquire";
        for_own_tokens(ents, e, [&](size_t i) {
          const Token& tk = c.at(i);
          if (tk.ident("co_await")) {
            if (!lock_wrapper) {
              if (auto la = lock_acquire(c, i)) {
                r.locks.insert(la->mutex);
                return true;
              }
            }
            const AwaitedCall ac = awaited_call(c, i);
            if (!ac.callee.empty()) r.awaited.insert(ac.callee);
            return true;
          }
          if (!e.is_coro && tk.ident("return") && c.is_ident(i + 1)) {
            const AwaitedCall ac = awaited_call(c, i);  // same chain shape
            if (!ac.callee.empty() && c.is(ac.past, ";")) {
              r.forwarded.insert(ac.callee);
            }
          }
          // this_touching (direct): literal `this` in the body.
          if (tk.ident("this") && !e.cls.empty()) {
            idx.this_touching[e.cls].insert(e.name);
          }
          // mutated_members: member_ assigned / compound-assigned /
          // container-mutated (other objects' members skipped).
          if (tk.kind == Tok::kIdent && trailing_underscore(tk.text) &&
              !(i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                          c.is(i - 1, "::"))) &&
              !e.cls.empty()) {
            size_t after = i + 1;
            if (c.is(after, "[")) {  // m_[k] = ...
              const size_t m = c.match(after);
              if (m < c.size()) after = m + 1;
            }
            const std::string_view nx =
                after < c.size() ? std::string_view(c.at(after).text) : "";
            const bool assigned =
                nx == "=" || nx == "+=" || nx == "-=" || nx == "|=" ||
                nx == "&=" || nx == "^=" || nx == "++" || nx == "--";
            const bool mutated_call =
                (c.is(after, ".") || c.is(after, "->")) &&
                c.is_ident(after + 1) && member_mutator(c.at(after + 1).text) &&
                c.is(after + 2, "(");
            if (assigned || mutated_call) {
              idx.mutated_members[e.cls].insert(tk.text);
            }
          }
          return true;
        });
      }
      records.push_back(std::move(r));
    }
  }

  // --- known_ready fixpoint -----------------------------------------------
  // A name is proven ready iff every definition/declaration of it either
  // returns a ready-awaitable type, or has a body that only forwards
  // `return g(...)` to proven-ready callees. Coroutines, Task-returners and
  // unknown names never qualify. Monotone: the ready set only grows.
  std::map<std::string, std::vector<const FnRecord*>> by_name;
  for (const FnRecord& r : records) by_name[r.name].push_back(&r);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, recs] : by_name) {
      if (idx.known_ready.count(name) != 0) continue;
      bool all_ready = true;
      for (const FnRecord* r : recs) {
        if (r->is_coro || r->returns_task) {
          all_ready = false;
          break;
        }
        if (ready_classes.count(r->ret) != 0) continue;
        const bool fwd_ready =
            r->has_body && !r->forwarded.empty() && r->awaited.empty() &&
            std::all_of(r->forwarded.begin(), r->forwarded.end(),
                        [&](const std::string& g) {
                          return idx.known_ready.count(g) != 0;
                        });
        if (!fwd_ready) {
          all_ready = false;
          break;
        }
      }
      if (all_ready) {
        idx.known_ready.insert(name);
        changed = true;
      }
    }
  }

  // --- fn_locks fixpoint ---------------------------------------------------
  // locks(f) = direct locks ∪ locks(awaited callees) ∪ locks(forwarded
  // callees), merged by name (widening across overloads/virtual dispatch).
  // `lock` / `acquire` themselves are excluded: their direct locks are
  // parameter names, and call sites resolve the actual mutex syntactically.
  for (const FnRecord& r : records) {
    if (r.name == "lock" || r.name == "acquire") continue;
    if (!r.locks.empty()) {
      idx.fn_locks[r.name].insert(r.locks.begin(), r.locks.end());
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const FnRecord& r : records) {
      if (r.name == "lock" || r.name == "acquire") continue;
      auto& mine = idx.fn_locks[r.name];
      const size_t before = mine.size();
      for (const std::set<std::string>* callees : {&r.awaited, &r.forwarded}) {
        for (const std::string& g : *callees) {
          auto it = idx.fn_locks.find(g);
          if (it != idx.fn_locks.end()) {
            mine.insert(it->second.begin(), it->second.end());
          }
        }
      }
      if (mine.size() != before) changed = true;
    }
  }
  for (auto it = idx.fn_locks.begin(); it != idx.fn_locks.end();) {
    it = it->second.empty() ? idx.fn_locks.erase(it) : std::next(it);
  }

  // --- this_touching fixpoint ----------------------------------------------
  // A method that calls (bare, unqualified) a sibling method that touches
  // `this` touches `this` itself.
  changed = true;
  while (changed) {
    changed = false;
    for (size_t fi = 0; fi < files.size(); ++fi) {
      const Cursor c(files[fi].second->tokens);
      const std::vector<FnEntity>& ents = per_file[fi];
      for (const FnEntity& e : ents) {
        if (e.is_lambda || e.cls.empty() || e.body_hi == 0 || e.is_ctor) {
          continue;
        }
        auto cls_it = idx.this_touching.find(e.cls);
        if (cls_it == idx.this_touching.end()) continue;
        if (cls_it->second.count(e.name) != 0) continue;
        bool calls_toucher = false;
        for_own_tokens(ents, e, [&](size_t i) {
          if (c.is_ident(i) && c.is(i + 1, "(") &&
              !(i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                          c.is(i - 1, "::"))) &&
              idx.touches_this(e.cls, c.at(i).text)) {
            calls_toucher = true;
            return false;
          }
          return true;
        });
        if (calls_toucher) {
          idx.this_touching[e.cls].insert(e.name);
          changed = true;
        }
      }
    }
  }

  return idx;
}

}  // namespace imca::lint
