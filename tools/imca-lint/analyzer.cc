#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string_view>

#include "index.h"

namespace imca::lint {
namespace {

using std::size_t;

constexpr std::string_view kCoroRef = "IMCA-CORO-REF";
constexpr std::string_view kCoroLambda = "IMCA-CORO-LAMBDA";
constexpr std::string_view kCoroThis = "IMCA-CORO-THIS";
constexpr std::string_view kIterAwait = "IMCA-ITER-AWAIT";
constexpr std::string_view kLockAwait = "IMCA-LOCK-AWAIT";
constexpr std::string_view kStatRmw = "IMCA-STAT-RMW";
constexpr std::string_view kDetach = "IMCA-DETACH";
constexpr std::string_view kMovedBuf = "IMCA-MOVED-BUF";
constexpr std::string_view kByteVec = "IMCA-BYTE-VEC";
constexpr std::string_view kNodeFreed = "IMCA-NODE-FREED";
constexpr std::string_view kNolintBare = "IMCA-NOLINT-BARE";

// Identifiers that count as a liveness token for IMCA-CORO-THIS and the
// RMW checks: holding one means the coroutine re-checks object liveness
// after resuming (the write_behind.cc alive_ pattern), so state use after
// a suspension is deliberate.
bool is_liveness_ident(std::string_view s) {
  return s == "alive_" || s == "alive" || s == "self" || s == "self_" ||
         s == "shared_from_this" || s == "weak_from_this";
}

bool trailing_underscore(std::string_view s) {
  return s.size() > 1 && s.back() == '_';
}

// Stats-ish member names route the RMW-across-await finding to
// IMCA-STAT-RMW (counter lost-update) instead of IMCA-LOCK-AWAIT.
bool statsish(const std::string& key) {
  return key.find("stats") != std::string::npos ||
         key.find("ledger") != std::string::npos ||
         key.find("total") != std::string::npos ||
         key.find("count") != std::string::npos;
}

// ---------------------------------------------------------------------------
// NOLINT bookkeeping.

struct Suppression {
  std::set<std::string> ids;  // lowercase imca-* ids named in the comment
  bool justified = false;
  int comment_line = 0;
};

std::string lower(std::string s) {
  for (char& ch : s) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return s;
}

// line -> suppression active on that line.
std::map<int, Suppression> parse_nolints(const std::vector<Comment>& comments,
                                         std::vector<Finding>* findings,
                                         const std::string& file) {
  std::map<int, Suppression> out;
  for (const Comment& cm : comments) {
    size_t pos = cm.text.find("NOLINT");
    if (pos == std::string::npos) continue;
    size_t after = pos + 6;
    int target = cm.line;
    if (cm.text.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = cm.line + 1;
    }
    if (after >= cm.text.size() || cm.text[after] != '(') continue;  // blanket
    const size_t close = cm.text.find(')', after);
    if (close == std::string::npos) continue;
    Suppression sup;
    sup.comment_line = cm.line;
    std::string list = cm.text.substr(after + 1, close - after - 1);
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      std::string id = lower(list.substr(start, comma - start));
      id.erase(0, id.find_first_not_of(" \t"));
      id.erase(id.find_last_not_of(" \t") + 1);
      if (id.rfind("imca-", 0) == 0) sup.ids.insert(id);
      start = comma + 1;
    }
    if (sup.ids.empty()) continue;  // not ours (plain clang-tidy NOLINT)
    // The escape hatch needs a reason: "NOLINT(imca-x): why".
    size_t tail = close + 1;
    while (tail < cm.text.size() && std::isspace(static_cast<unsigned char>(
                                        cm.text[tail]))) {
      ++tail;
    }
    if (tail < cm.text.size() && cm.text[tail] == ':' &&
        cm.text.find_first_not_of(" \t", tail + 1) != std::string::npos) {
      sup.justified = true;
    } else {
      findings->push_back({file, cm.line, std::string(kNolintBare),
                           "NOLINT(imca-…) without a ': justification'"});
    }
    auto& slot = out[target];
    slot.ids.insert(sup.ids.begin(), sup.ids.end());
    slot.justified = sup.justified;
    slot.comment_line = sup.comment_line;
  }
  return out;
}

bool suppressed(const std::map<int, Suppression>& nolints, int line,
                std::string_view check) {
  auto it = nolints.find(line);
  if (it == nolints.end()) return false;
  const std::string id = lower(std::string(check));
  return it->second.ids.count(id) > 0 || it->second.ids.count("imca-*") > 0;
}

// ---------------------------------------------------------------------------
// Checks.

struct Param {
  size_t lo, hi;  // token range
};

std::vector<Param> split_params(const Cursor& c, size_t lo, size_t hi) {
  std::vector<Param> out;
  int depth = 0;
  size_t start = lo;
  for (size_t i = lo; i < hi; ++i) {
    const std::string_view s = c.at(i).text;
    if (s == "(" || s == "{" || s == "[" || s == "<") ++depth;
    else if (s == ")" || s == "}" || s == "]" || s == ">") --depth;
    else if (s == "," && depth == 0) {
      if (i > start) out.push_back({start, i});
      start = i + 1;
    }
  }
  if (hi > start) out.push_back({start, hi});
  return out;
}

std::string param_name(const Cursor& c, const Param& p) {
  std::string name;
  for (size_t i = p.lo; i < p.hi; ++i) {
    if (c.is(i, "=")) break;
    if (c.is_ident(i)) name = c.at(i).text;
  }
  return name;
}

void check_coro_ref(const Cursor& c, const FnEntity& e,
                    std::vector<Finding>* out, const std::string& file) {
  if (!e.is_coro || e.params_hi <= e.params_lo) return;
  for (const Param& p : split_params(c, e.params_lo, e.params_hi)) {
    bool has_const = false, has_lref = false, has_rref = false;
    bool has_view = false, has_bufview = false;
    for (size_t i = p.lo; i < p.hi; ++i) {
      if (c.is(i, "=")) break;  // default argument: not part of the type
      const Token& tk = c.at(i);
      if (tk.ident("const")) has_const = true;
      else if (tk.is("&")) has_lref = true;
      else if (tk.is("&&")) has_rref = true;
      else if (tk.ident("string_view")) has_view = true;
      else if (tk.ident("BufView")) has_bufview = true;
    }
    const std::string name = param_name(c, p);
    const int line = c.at(p.lo).line;
    std::string why;
    if (has_view) why = "std::string_view parameter";
    else if (has_bufview) why = "BufView parameter";
    else if (has_rref) why = "rvalue-reference parameter";
    else if (has_const && has_lref) why = "const-reference parameter";
    else continue;  // by-value, pointer, or mutable lvalue ref (exempt)
    out->push_back(
        {file, line, std::string(kCoroRef),
         why + " '" + name +
             "' can dangle across a suspension; pass by value (or Buffer)"});
  }
}

void check_coro_lambda(const FnEntity& e, std::vector<Finding>* out,
                       const std::string& file) {
  if (!e.is_lambda || !e.captures || !e.is_coro) return;
  out->push_back({file, e.line, std::string(kCoroLambda),
                  "capturing lambda is a coroutine; the frame outlives the "
                  "lambda object — use a named coroutine (or capture-free "
                  "lambda) with explicit parameters"});
}

bool entity_has_liveness(const Cursor& c, const std::vector<FnEntity>& all,
                         const FnEntity& e) {
  bool has = false;
  for_own_tokens(all, e, [&](size_t i) {
    if (c.is_ident(i) && is_liveness_ident(c.at(i).text)) {
      has = true;
      return false;
    }
    return true;
  });
  return has;
}

// IMCA-CORO-THIS, interprocedural on both sides: a suspension is a
// co_await whose operand may actually suspend (per the index), and a
// `this` touch is a literal `this` OR a bare call to a same-class method
// that (transitively) uses `this`. One finding per entity, at the first
// offending use.
void check_coro_this(const Cursor& c, const std::vector<FnEntity>& all,
                     const FnEntity& e, const SymbolIndex& idx,
                     std::vector<Finding>* out, const std::string& file) {
  if (!e.is_coro) return;
  if (entity_has_liveness(c, all, e)) return;
  bool suspended = false;
  size_t skip_until = 0;
  size_t hit = 0;
  std::string via;  // non-empty: transitive, through this member call
  for_own_tokens(all, e, [&](size_t i) {
    if (i < skip_until) return true;
    if (c.at(i).ident("co_await")) {
      const AwaitedCall ac = awaited_call(c, i);
      // The awaited callee is invoked before this await completes; if an
      // EARLIER await already suspended, creating a this-touching member
      // task here is already a touch.
      if (suspended && !e.cls.empty() && c.is_ident(i + 1) &&
          c.is(i + 2, "(") && idx.touches_this(e.cls, c.at(i + 1).text)) {
        hit = i + 1;
        via = c.at(i + 1).text;
        return false;
      }
      if (idx.may_suspend(ac.callee)) suspended = true;
      // Arguments of the awaited call evaluate before the suspension they
      // feed — skip the operand expression.
      skip_until = ac.past;
      return true;
    }
    if (!suspended) return true;
    if (c.at(i).ident("this")) {
      hit = i;
      return false;
    }
    if (c.is_ident(i) && c.is(i + 1, "(") && !e.cls.empty() &&
        !(i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                    c.is(i - 1, "::"))) &&
        idx.touches_this(e.cls, c.at(i).text)) {
      hit = i;
      via = c.at(i).text;
      return false;
    }
    return true;
  });
  if (hit == 0) return;
  if (via.empty()) {
    out->push_back(
        {file, c.at(hit).line, std::string(kCoroThis),
         "`this` used after a co_await with no liveness token (alive_ / "
         "shared_from_this); the object may be destroyed while suspended"});
  } else {
    out->push_back(
        {file, c.at(hit).line, std::string(kCoroThis),
         "member call '" + via + "' reaches `this` (per the suspension "
         "summary) after a co_await with no liveness token; the object may "
         "be destroyed while suspended"});
  }
}

std::vector<size_t> own_tokens(const std::vector<FnEntity>& all,
                               const FnEntity& e) {
  std::vector<size_t> v;
  for_own_tokens(all, e, [&](size_t i) {
    v.push_back(i);
    return true;
  });
  return v;
}

// IMCA-ITER-AWAIT: a loop over a member container with a possibly-
// suspending await in its body, where some same-class method mutates that
// container — the interleaved mutator invalidates the iterator mid-loop.
void check_iter_await(const Cursor& c, const std::vector<FnEntity>& all,
                      const FnEntity& e, const SymbolIndex& idx,
                      std::vector<Finding>* out, const std::string& file) {
  if (!e.is_coro || e.cls.empty()) return;
  const std::vector<size_t> own = own_tokens(all, e);
  for (size_t oi = 0; oi < own.size(); ++oi) {
    const size_t i = own[oi];
    if (!(c.at(i).ident("for") && c.is(i + 1, "("))) continue;
    const size_t h_close = c.match(i + 1);
    if (h_close >= c.size()) continue;
    // The iterated member, if any.
    std::string member;
    int depth = 0;
    size_t colon = 0;
    for (size_t j = i + 2; j < h_close; ++j) {
      const std::string_view s = c.at(j).text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") --depth;
      else if (s == ":" && depth == 0) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {  // range-for: the expression after ':'
      size_t p = colon + 1;
      if (c.is(p, "this") && c.is(p + 1, "->")) ++p;  // lands on '->' + 1 below
      if (c.is(p, "this")) p += 2;
      std::string last;
      if (c.is_ident(p)) {
        last = c.at(p).text;
        while ((c.is(p + 1, ".") || c.is(p + 1, "->")) && c.is_ident(p + 2)) {
          last = c.at(p + 2).text;
          p += 2;
        }
        if (c.is(p + 1, "(")) last.clear();  // snapshot() temporary: safe
      }
      if (trailing_underscore(last)) member = last;
    } else {  // classic for: look for member_.begin()
      for (size_t j = i + 2; j + 2 < h_close; ++j) {
        if (c.is_ident(j) && trailing_underscore(c.at(j).text) &&
            (c.is(j + 1, ".") || c.is(j + 1, "->")) &&
            (c.is(j + 2, "begin") || c.is(j + 2, "cbegin"))) {
          member = c.at(j).text;
          break;
        }
      }
    }
    if (member.empty() || !idx.mutated(e.cls, member)) continue;
    // Loop body extent: braced block or single statement.
    size_t b_lo = h_close + 1;
    size_t b_hi;
    if (c.is(b_lo, "{")) {
      b_hi = c.match(b_lo);
      ++b_lo;
    } else {
      b_hi = b_lo;
      int d2 = 0;
      while (b_hi < c.size()) {
        const std::string_view s = c.at(b_hi).text;
        if (s == "(" || s == "[" || s == "{") ++d2;
        else if (s == ")" || s == "]" || s == "}") --d2;
        else if (s == ";" && d2 == 0) break;
        ++b_hi;
      }
    }
    if (b_hi >= c.size()) continue;
    bool suspends = false;
    for (size_t oj = oi; oj < own.size() && own[oj] < b_hi; ++oj) {
      const size_t k = own[oj];
      if (k < b_lo || !c.at(k).ident("co_await")) continue;
      if (lock_acquire(c, k) ||
          idx.may_suspend(awaited_call(c, k).callee)) {
        suspends = true;
        break;
      }
    }
    if (suspends) {
      out->push_back(
          {file, c.at(i).line, std::string(kIterAwait),
           "iterating member '" + member + "' across a suspension while " +
               e.cls + " methods can mutate it — an interleaved coroutine "
               "invalidates the iterator; iterate a snapshot (copy or "
               "collected keys) instead"});
    }
  }
}

// A member expression at token i: `m_` / `this->m` with an optional single
// `.field` (not a call). Returns the key ("stats_.hits") and the index
// just past it.
struct MemberExpr {
  std::string key;
  size_t past;
};
std::optional<MemberExpr> member_expr(const Cursor& c, size_t i) {
  size_t p = i;
  if (c.is(p, "this") && c.is(p + 1, "->") && c.is_ident(p + 2)) {
    p += 2;
  } else {
    if (!(c.is_ident(p) && trailing_underscore(c.at(p).text))) {
      return std::nullopt;
    }
    if (p > 0 && (c.is(p - 1, ".") || c.is(p - 1, "->") || c.is(p - 1, "::"))) {
      return std::nullopt;  // someone else's member
    }
  }
  std::string key = c.at(p).text;
  size_t q = p + 1;
  if (c.is(q, ".") && c.is_ident(q + 1) && !c.is(q + 2, "(")) {
    key += "." + c.at(q + 1).text;
    q += 2;
  }
  return MemberExpr{key, q};
}

// IMCA-LOCK-AWAIT (both shapes) + IMCA-STAT-RMW, one pass per coroutine:
//  (a) held-guard tracking: `co_await m_.lock()` / ScopedLock::acquire(m_)
//      marks m_ held until its block closes; a later co_await whose
//      callee's lock summary includes a held mutex (or a direct re-lock)
//      is a SimMutex re-entry deadlock.
//  (b) RMW-across-await: a member read into a local, a suspension, then
//      the same member assigned from that stale local — with no guard
//      held, and no epoch/liveness re-check between the resume and the
//      write. Stats-ish members report as IMCA-STAT-RMW.
void check_lock_rmw(const Cursor& c, const std::vector<FnEntity>& all,
                    const FnEntity& e, const SymbolIndex& idx,
                    std::vector<Finding>* out, const std::string& file) {
  if (!e.is_coro) return;
  const std::vector<size_t> own = own_tokens(all, e);
  int depth = 0;
  std::map<std::string, int> held;  // mutex -> brace depth at acquisition
  std::map<std::string, int> held_line;
  struct Cap {
    std::string key;
    int line;
    std::uint64_t susp;
  };
  std::map<std::string, Cap> caps;  // local -> capture info
  std::uint64_t susp_count = 0;
  size_t last_susp_tok = 0;
  int last_susp_line = 0;
  size_t skip_until = 0;
  for (size_t oi = 0; oi < own.size(); ++oi) {
    const size_t i = own[oi];
    if (i < skip_until) continue;
    const Token& tk = c.at(i);
    if (tk.is("{")) {
      ++depth;
      continue;
    }
    if (tk.is("}")) {
      --depth;
      for (auto it = held.begin(); it != held.end();) {
        it = it->second > depth ? held.erase(it) : std::next(it);
      }
      continue;
    }
    if (tk.ident("co_await")) {
      if (auto la = lock_acquire(c, i)) {
        if (held.count(la->mutex) != 0) {
          out->push_back(
              {file, tk.line, std::string(kLockAwait),
               "re-acquiring mutex '" + la->mutex + "' already held since "
               "line " + std::to_string(held_line[la->mutex]) +
               " — sim::Mutex is not reentrant; this deadlocks"});
        } else {
          held[la->mutex] = depth;
          held_line[la->mutex] = tk.line;
        }
        ++susp_count;  // waiting for the lock is itself a suspension
        last_susp_tok = i;
        last_susp_line = tk.line;
        skip_until = la->past;
        continue;
      }
      const AwaitedCall ac = awaited_call(c, i);
      if (!ac.callee.empty() && !held.empty()) {
        if (const std::set<std::string>* locks = idx.locks_of(ac.callee)) {
          for (const std::string& m : *locks) {
            auto h = held.find(m);
            if (h != held.end()) {
              out->push_back(
                  {file, tk.line, std::string(kLockAwait),
                   "co_await '" + ac.callee + "' can re-acquire mutex '" +
                       m + "' held since line " +
                       std::to_string(held_line[m]) +
                       " (per its lock summary) — sim::Mutex is not "
                       "reentrant; this deadlocks"});
              break;
            }
          }
        }
      }
      if (idx.may_suspend(ac.callee)) {
        ++susp_count;
        last_susp_tok = i;
        last_susp_line = tk.line;
      }
      continue;
    }
    // Manual unlock releases the guard early.
    if (tk.ident("unlock") && c.is(i + 1, "(") && i >= 2 &&
        (c.is(i - 1, ".") || c.is(i - 1, "->")) && c.is_ident(i - 2)) {
      held.erase(c.at(i - 2).text);
      continue;
    }
    // Member write: `key <op>= ... local ...` after a suspension since the
    // capture of `local` from the same key.
    if (auto me = member_expr(c, i)) {
      size_t after = me->past;
      if (c.is(after, "[")) {
        const size_t m = c.match(after);
        if (m < c.size()) after = m + 1;
      }
      const std::string_view op =
          after < c.size() ? std::string_view(c.at(after).text) : "";
      if (op == "=" || op == "+=" || op == "-=" || op == "|=" || op == "&=" ||
          op == "^=") {
        for (size_t j = after + 1; j < c.size() && !c.is(j, ";"); ++j) {
          if (!c.is_ident(j)) continue;
          auto cap = caps.find(c.at(j).text);
          if (cap == caps.end() || cap->second.key != me->key ||
              cap->second.susp >= susp_count) {
            continue;
          }
          if (!held.empty()) break;  // guarded across the window
          bool rechecked = false;
          for (size_t k = last_susp_tok; k < i; ++k) {
            if (c.is_ident(k) &&
                (is_liveness_ident(c.at(k).text) ||
                 c.at(k).text.find("epoch") != std::string::npos)) {
              rechecked = true;
              break;
            }
          }
          if (rechecked) break;
          const bool stat = statsish(me->key);
          out->push_back(
              {file, tk.line, std::string(stat ? kStatRmw : kLockAwait),
               std::string(stat ? "counter '" : "member '") + me->key +
                   "' written from '" + cap->first +
                   "' captured on line " + std::to_string(cap->second.line) +
                   ", across the suspension on line " +
                   std::to_string(last_susp_line) +
                   " — an interleaved update is lost; re-read after "
                   "resuming, apply a delta, or hold the guard across "
                   "the window"});
          caps.erase(cap);
          break;
        }
        continue;
      }
    }
    // Local capture: `v = ...member...;` (declaration or assignment).
    if (c.is_ident(i) && !trailing_underscore(tk.text) && c.is(i + 1, "=") &&
        !(i > 0 &&
          (c.is(i - 1, ".") || c.is(i - 1, "->") || c.is(i - 1, "::")))) {
      std::optional<MemberExpr> src;
      for (size_t j = i + 2; j < c.size() && !c.is(j, ";"); ++j) {
        if ((src = member_expr(c, j))) break;
      }
      if (src) {
        caps[tk.text] = Cap{src->key, tk.line, susp_count};
      } else {
        caps.erase(tk.text);  // reassigned from something fresh
      }
    }
  }
}

void check_detach(const Cursor& c, const SymbolIndex& idx,
                  std::vector<Finding>* out, const std::string& file) {
  // Whole-file statement scan: after ';' '{' or '}', a statement that is
  // exactly `chain(...);` or `(void) chain(...);` where the chain's last
  // identifier names a Task-returning function drops a lazy task unrun.
  // Resolution is per-file first: the file's own declarations beat the
  // global (cross-file, name-widened) fallback.
  const auto ft = idx.file_task.find(file);
  const auto fn = idx.file_nontask.find(file);
  for (size_t i = 0; i < c.size(); ++i) {
    if (i != 0 && !c.is(i - 1, ";") && !c.is(i - 1, "{") && !c.is(i - 1, "}")) {
      continue;
    }
    size_t j = i;
    bool void_cast = false;
    if (c.is(j, "(") && c.is(j + 1, "void") && c.is(j + 2, ")")) {
      void_cast = true;
      j += 3;
    }
    if (!c.is_ident(j)) continue;
    std::string last = c.at(j).text;
    size_t k = j + 1;
    bool through_receiver = false;  // x.f() / x->f() / ns::f(): not plain lookup
    if (c.at(j).ident("this") && c.is(k, "->") && c.is_ident(k + 1)) {
      last = c.at(k + 1).text;  // this-> stays in-file: treat as a bare call
      k += 2;
    }
    while ((c.is(k, "::") || c.is(k, ".") || c.is(k, "->")) &&
           c.is_ident(k + 1)) {
      through_receiver = true;
      last = c.at(k + 1).text;
      k += 2;
    }
    if (!c.is(k, "(")) continue;
    const size_t close = c.match(k);
    if (close >= c.size() || !c.is(close + 1, ";")) continue;
    // A bare call (or this->) resolves by ordinary lookup, so the file's
    // own declarations are authoritative; a call through a receiver or a
    // qualifier resolves in a class/namespace AST-lite cannot see, so only
    // the conservative global rule applies there.
    const bool local_task = !through_receiver &&
        ft != idx.file_task.end() && ft->second.count(last) != 0;
    const bool local_non = !through_receiver &&
        fn != idx.file_nontask.end() && fn->second.count(last) != 0;
    if (local_non) continue;  // the file's own decls say non-Task/ambiguous
    if (!local_task && (idx.task_fns.count(last) == 0 ||
                        idx.ambiguous_fns.count(last) != 0)) {
      continue;  // cross-file fallback: unknown or globally ambiguous
    }
    out->push_back(
        {file, c.at(j).line, std::string(kDetach),
         std::string(void_cast ? "(void)-discarded" : "discarded") +
             " call to Task-returning '" + last +
             "' — a lazy task never runs; co_await it, store it, or "
             "spawn() it"});
  }
}

void check_moved_buf(const Cursor& c, std::vector<Finding>* out,
                     const std::string& file) {
  // Declarations of Buffer/ByteBuf variables seen so far: name -> live.
  // A `std::move(name)` poisons the name until the end of the innermost
  // block containing the move, or until `name =` reassigns it.
  struct Decl {
    bool moved = false;
    int moved_line = 0;
  };
  std::map<std::string, Decl> vars;
  std::vector<std::vector<std::string>> moved_stack;  // per brace depth
  moved_stack.emplace_back();
  for (size_t i = 0; i < c.size(); ++i) {
    const Token& tk = c.at(i);
    if (tk.is("{")) {
      moved_stack.emplace_back();
      continue;
    }
    if (tk.is("}")) {
      // Leaving the block un-poisons moves made inside it (a new iteration
      // or a sibling scope is a fresh start; cross-scope flow is beyond
      // AST-lite).
      for (const std::string& name : moved_stack.back()) {
        auto it = vars.find(name);
        if (it != vars.end()) it->second.moved = false;
      }
      moved_stack.pop_back();
      if (moved_stack.empty()) moved_stack.emplace_back();
      continue;
    }
    if ((tk.ident("Buffer") || tk.ident("ByteBuf")) && c.is_ident(i + 1) &&
        (c.is(i + 2, ";") || c.is(i + 2, "=") || c.is(i + 2, "{") ||
         c.is(i + 2, "(") || c.is(i + 2, ",") || c.is(i + 2, ")"))) {
      vars[c.at(i + 1).text] = Decl{};  // declaration (local, member or param)
      ++i;                              // don't treat the name as a use
      continue;
    }
    if (tk.ident("std") && c.is(i + 1, "::") && c.is(i + 2, "move") &&
        c.is(i + 3, "(") && c.is_ident(i + 4) && c.is(i + 5, ")")) {
      auto it = vars.find(c.at(i + 4).text);
      if (it != vars.end()) {
        if (it->second.moved) {
          out->push_back({file, c.at(i + 4).line, std::string(kMovedBuf),
                          "'" + it->first + "' moved again after std::move "
                          "on line " + std::to_string(it->second.moved_line)});
        } else {
          it->second.moved = true;
          it->second.moved_line = c.at(i + 4).line;
          moved_stack.back().push_back(it->first);
        }
      }
      i += 5;
      continue;
    }
    if (tk.kind == Tok::kIdent) {
      // `other.data` / `ns::data` is not the tracked local `data`.
      if (i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                    c.is(i - 1, "::"))) {
        continue;
      }
      auto it = vars.find(tk.text);
      if (it != vars.end() && it->second.moved) {
        // Reassignment (or clear()) revives the variable.
        if ((c.is(i + 1, "=") && !c.is(i + 1, "==")) ||
            ((c.is(i + 1, ".") && (c.is(i + 2, "clear") ||
                                   c.is(i + 2, "reset"))))) {
          it->second.moved = false;
          continue;
        }
        // Member access on the object or any other read is a use.
        out->push_back({file, tk.line, std::string(kMovedBuf),
                        "use of '" + tk.text + "' after std::move on line " +
                            std::to_string(it->second.moved_line)});
        it->second.moved = false;  // one finding per move
      }
    }
  }
}

void check_node_freed(const Cursor& c, std::vector<Finding>* out,
                      const std::string& file) {
  // Declarations of EventNode* variables seen so far. `release(name)` (or
  // `free(name)`) poisons the name — the arena immediately repurposes
  // n->next as the free-list link and the next alloc() recycles the node,
  // so any later read sees free-list internals or a different event's
  // (time, seq, handle). Same scope machinery as IMCA-MOVED-BUF: leaving
  // the block or reassigning the pointer revives it.
  struct Decl {
    bool freed = false;
    int freed_line = 0;
  };
  std::map<std::string, Decl> vars;
  std::vector<std::vector<std::string>> freed_stack;  // per brace depth
  freed_stack.emplace_back();
  for (size_t i = 0; i < c.size(); ++i) {
    const Token& tk = c.at(i);
    if (tk.is("{")) {
      freed_stack.emplace_back();
      continue;
    }
    if (tk.is("}")) {
      for (const std::string& name : freed_stack.back()) {
        auto it = vars.find(name);
        if (it != vars.end()) it->second.freed = false;
      }
      freed_stack.pop_back();
      if (freed_stack.empty()) freed_stack.emplace_back();
      continue;
    }
    if (tk.ident("EventNode") && c.is(i + 1, "*") && c.is_ident(i + 2) &&
        (c.is(i + 3, ";") || c.is(i + 3, "=") || c.is(i + 3, "{") ||
         c.is(i + 3, "(") || c.is(i + 3, ",") || c.is(i + 3, ")"))) {
      vars[c.at(i + 2).text] = Decl{};  // declaration (local, member, param)
      i += 2;                           // don't treat the name as a use
      continue;
    }
    if ((tk.ident("release") || tk.ident("free")) && c.is(i + 1, "(") &&
        c.is_ident(i + 2) && c.is(i + 3, ")")) {
      auto it = vars.find(c.at(i + 2).text);
      if (it != vars.end()) {
        if (it->second.freed) {
          out->push_back({file, c.at(i + 2).line, std::string(kNodeFreed),
                          "'" + it->first + "' released again after release "
                          "on line " + std::to_string(it->second.freed_line) +
                          " — double free corrupts the arena free list"});
        } else {
          it->second.freed = true;
          it->second.freed_line = c.at(i + 2).line;
          freed_stack.back().push_back(it->first);
        }
      }
      i += 3;
      continue;
    }
    if (tk.kind == Tok::kIdent) {
      // `other.n` / `ns::n` is not the tracked local `n`.
      if (i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                    c.is(i - 1, "::"))) {
        continue;
      }
      auto it = vars.find(tk.text);
      if (it != vars.end() && it->second.freed) {
        // Reassignment revives the pointer.
        if (c.is(i + 1, "=") && !c.is(i + 1, "==")) {
          it->second.freed = false;
          continue;
        }
        out->push_back({file, tk.line, std::string(kNodeFreed),
                        "use of '" + tk.text + "' after release on line " +
                            std::to_string(it->second.freed_line) +
                            " — the node may already be recycled and its "
                            "next is the free-list link"});
        it->second.freed = false;  // one finding per release
      }
    }
  }
}

void check_byte_vec(const Cursor& c, const std::string& relpath,
                    bool all_checks, std::vector<Finding>* out,
                    const std::string& file) {
  // Scope: the data path (src/) minus the storage layer itself, which
  // legitimately adopts vectors into segments. The corpus opts in via
  // all_checks.
  if (!all_checks) {
    if (relpath.rfind("src/", 0) != 0) return;
    if (relpath.find("common/buffer.") != std::string::npos ||
        relpath.find("common/bytebuf.") != std::string::npos) {
      return;
    }
  }
  for (size_t i = 0; i + 7 < c.size(); ++i) {
    if (!(c.at(i).ident("std") && c.is(i + 1, "::") && c.is(i + 2, "vector") &&
          c.is(i + 3, "<") && c.at(i + 4).ident("std") && c.is(i + 5, "::") &&
          c.is(i + 6, "byte") && c.is(i + 7, ">"))) {
      continue;
    }
    size_t after = i + 8;
    if (c.is_ident(after)) ++after;  // optional parameter name
    const bool param_pos = c.is(after, ",") || c.is(after, ")");
    // Return-type position: Task< or Expected< within the last few tokens
    // with the angle still open.
    bool ret_pos = false;
    for (size_t back = 1; back <= 6 && back <= i; ++back) {
      if ((c.at(i - back).ident("Task") || c.at(i - back).ident("Expected")) &&
          c.is(i - back + 1, "<")) {
        ret_pos = true;
        break;
      }
    }
    if (param_pos || ret_pos) {
      out->push_back({file, c.at(i).line, std::string(kByteVec),
                      "payload-by-vector signature (use imca::Buffer on the "
                      "data path)"});
    }
  }
}

}  // namespace

std::vector<Finding> analyze(const std::string& relpath,
                             const LexedFile& lexed, const SymbolIndex& index,
                             bool all_checks) {
  Cursor c(lexed.tokens);
  std::vector<Finding> raw;
  std::map<int, Suppression> nolints =
      parse_nolints(lexed.comments, &raw, relpath);

  const std::vector<FnEntity> entities = collect_functions(c);
  for (const FnEntity& e : entities) {
    if (e.body_hi == 0) continue;
    check_coro_ref(c, e, &raw, relpath);
    check_coro_lambda(e, &raw, relpath);
    check_coro_this(c, entities, e, index, &raw, relpath);
    check_iter_await(c, entities, e, index, &raw, relpath);
    check_lock_rmw(c, entities, e, index, &raw, relpath);
  }
  check_detach(c, index, &raw, relpath);
  check_moved_buf(c, &raw, relpath);
  check_node_freed(c, &raw, relpath);
  check_byte_vec(c, relpath, all_checks, &raw, relpath);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    if (f.check != kNolintBare && suppressed(nolints, f.line, f.check)) {
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.check == b.check && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace imca::lint
