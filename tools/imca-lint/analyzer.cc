#include "analyzer.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <string_view>

namespace imca::lint {
namespace {

using std::size_t;

constexpr std::string_view kCoroRef = "IMCA-CORO-REF";
constexpr std::string_view kCoroLambda = "IMCA-CORO-LAMBDA";
constexpr std::string_view kCoroThis = "IMCA-CORO-THIS";
constexpr std::string_view kDetach = "IMCA-DETACH";
constexpr std::string_view kMovedBuf = "IMCA-MOVED-BUF";
constexpr std::string_view kByteVec = "IMCA-BYTE-VEC";
constexpr std::string_view kNodeFreed = "IMCA-NODE-FREED";
constexpr std::string_view kNolintBare = "IMCA-NOLINT-BARE";

// Identifiers that count as a liveness token for IMCA-CORO-THIS: holding
// one means the coroutine re-checks object liveness after resuming (the
// write_behind.cc alive_ pattern), so `this` use after a suspension is
// deliberate.
bool is_liveness_ident(std::string_view s) {
  return s == "alive_" || s == "alive" || s == "self" || s == "self_" ||
         s == "shared_from_this" || s == "weak_from_this";
}

bool is_coro_keyword(std::string_view s) {
  return s == "co_await" || s == "co_return" || s == "co_yield";
}

// ---------------------------------------------------------------------------
// Token-range helpers.

class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& t) : t_(t) {}
  const std::vector<Token>& t_;

  size_t size() const { return t_.size(); }
  const Token& at(size_t i) const { return t_[i]; }
  bool is(size_t i, std::string_view s) const {
    return i < t_.size() && t_[i].text == s;
  }
  bool is_ident(size_t i) const {
    return i < t_.size() && t_[i].kind == Tok::kIdent;
  }

  // Index of the token matching the opener at `i` ('(', '{', '[' or '<'),
  // or size() if unbalanced. Angle matching bails out on tokens that cannot
  // occur in a template argument list, so expression '<' never matches.
  size_t match(size_t i) const {
    const std::string_view open = t_[i].text;
    std::string_view close;
    if (open == "(") close = ")";
    else if (open == "{") close = "}";
    else if (open == "[") close = "]";
    else if (open == "<") close = ">";
    else return size();
    int depth = 0;
    for (size_t j = i; j < t_.size(); ++j) {
      const std::string_view s = t_[j].text;
      if (open == "<" && (s == ";" || s == "{" || s == "}")) return size();
      if (s == open) ++depth;
      else if (s == close && --depth == 0) return j;
    }
    return size();
  }

 private:
};

// ---------------------------------------------------------------------------
// Entity extraction: function-ish things with bodies.

struct Entity {
  int line = 0;            // signature start (reporting line for lambdas)
  std::string name;        // last declarator identifier; "" for lambdas
  bool is_lambda = false;
  bool captures = false;   // lambda with a non-empty capture list
  size_t start = 0;        // first token of the entity (capture '[' / ret type)
  size_t params_lo = 0, params_hi = 0;  // tokens strictly inside ( ), 0/0 = none
  size_t body_lo = 0, body_hi = 0;      // tokens strictly inside { }
  std::vector<size_t> children;         // indices of directly nested entities
  bool is_coro = false;    // own body (children excluded) has a co_* keyword
};

// True when a '[' at this position starts a lambda-introducer rather than a
// subscript (prev token is a value) or an attribute (handled by caller).
bool lambda_position(const std::vector<Token>& t, size_t i) {
  if (i == 0) return true;
  const Token& p = t[i - 1];
  if (p.kind == Tok::kIdent) {
    return p.text == "return" || is_coro_keyword(p.text) || p.text == "case" ||
           p.text == "else" || p.text == "do";
  }
  if (p.kind != Tok::kPunct) return false;
  return p.text != ")" && p.text != "]" && p.text != "}";
}

// Tries to parse a lambda whose introducer '[' is at `i`. Returns the
// entity (without children/coro info) and the index just past its body.
std::optional<std::pair<Entity, size_t>> parse_lambda(const Cursor& c,
                                                      size_t i) {
  Entity e;
  e.is_lambda = true;
  e.line = c.at(i).line;
  e.start = i;
  const size_t cap_end = c.match(i);
  if (cap_end >= c.size()) return std::nullopt;
  e.captures = cap_end > i + 1;
  size_t j = cap_end + 1;
  if (c.is(j, "<")) {  // template lambda
    const size_t m = c.match(j);
    if (m >= c.size()) return std::nullopt;
    j = m + 1;
  }
  if (c.is(j, "(")) {
    const size_t m = c.match(j);
    if (m >= c.size()) return std::nullopt;
    e.params_lo = j + 1;
    e.params_hi = m;
    j = m + 1;
  }
  // Specifiers / trailing return type, until the body. Anything that cannot
  // belong to a lambda-declarator means this '[' was not a lambda after all.
  for (int guard = 0; guard < 64 && j < c.size(); ++guard) {
    const Token& tk = c.at(j);
    if (tk.is("{")) {
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      e.body_lo = j + 1;
      e.body_hi = m;
      return std::make_pair(e, m + 1);
    }
    if (tk.is("(") || tk.is("<")) {  // noexcept(...), Task<...>
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      j = m + 1;
      continue;
    }
    if (tk.kind == Tok::kIdent || tk.is("->") || tk.is("::") || tk.is("&") ||
        tk.is("&&") || tk.is("*")) {
      ++j;
      continue;
    }
    return std::nullopt;  // ';' ',' ']' ... — a misparse, not a lambda
  }
  return std::nullopt;
}

// Tries to parse `Task<...> [qualified-]name ( params ) specifiers { body }`
// with the 'Task' identifier at `i`. Declarations (ending ';' or '= 0;')
// yield an entity with no body, used for name collection only.
std::optional<std::pair<Entity, size_t>> parse_task_function(const Cursor& c,
                                                             size_t i) {
  if (!c.is(i + 1, "<")) return std::nullopt;
  const size_t angle = c.match(i + 1);
  if (angle >= c.size()) return std::nullopt;
  size_t j = angle + 1;
  if (c.is(j, "&") || c.is(j, "&&") || c.is(j, "*")) return std::nullopt;
  if (!c.is_ident(j)) return std::nullopt;
  Entity e;
  e.start = i;
  e.line = c.at(i).line;
  e.name = c.at(j).text;
  ++j;
  while (c.is(j, "::") && c.is_ident(j + 1)) {
    e.name = c.at(j + 1).text;
    j += 2;
  }
  if (!c.is(j, "(")) return std::nullopt;  // a variable, not a function
  const size_t close = c.match(j);
  if (close >= c.size()) return std::nullopt;
  e.params_lo = j + 1;
  e.params_hi = close;
  j = close + 1;
  // const / noexcept / override / final / ref-qualifiers, then body or ';'.
  for (int guard = 0; guard < 32 && j < c.size(); ++guard) {
    const Token& tk = c.at(j);
    if (tk.is("{")) {
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      e.body_lo = j + 1;
      e.body_hi = m;
      return std::make_pair(e, m + 1);
    }
    if (tk.is(";") || tk.is("=")) return std::make_pair(e, j + 1);  // decl
    if (tk.is("(")) {  // noexcept(...)
      const size_t m = c.match(j);
      if (m >= c.size()) return std::nullopt;
      j = m + 1;
      continue;
    }
    if (tk.kind == Tok::kIdent || tk.is("&") || tk.is("&&")) {
      ++j;
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// One linear scan collecting every function/lambda with a body; nested
// entities are found because the scan continues into bodies.
std::vector<Entity> collect_entities(const Cursor& c) {
  std::vector<Entity> out;
  for (size_t i = 0; i < c.size(); ++i) {
    const Token& tk = c.at(i);
    if (tk.ident("Task")) {
      if (auto r = parse_task_function(c, i)) {
        out.push_back(r->first);
        // Continue INSIDE the signature/body so nested lambdas are found.
        continue;
      }
    }
    if (tk.is("[") && !c.is(i + 1, "[") && lambda_position(c.t_, i)) {
      if (auto r = parse_lambda(c, i)) {
        out.push_back(r->first);
        continue;
      }
    }
    if (tk.is("[") && c.is(i + 1, "[")) {  // attribute: skip wholesale
      const size_t m = c.match(i);
      if (m < c.size()) i = m;
    }
  }
  // Parent/child: an entity is a child of the innermost entity whose body
  // strictly contains it.
  for (size_t a = 0; a < out.size(); ++a) {
    size_t parent = out.size();
    for (size_t b = 0; b < out.size(); ++b) {
      if (a == b || out[b].body_hi == 0) continue;
      if (out[b].body_lo <= out[a].start && out[a].start < out[b].body_hi) {
        if (parent == out.size() ||
            out[b].body_lo > out[parent].body_lo) {
          parent = b;
        }
      }
    }
    if (parent != out.size()) out[parent].children.push_back(a);
  }
  // Own-body coroutine-ness (children's extents excluded).
  for (auto& e : out) {
    if (e.body_hi == 0) continue;
    size_t i = e.body_lo;
    std::vector<std::pair<size_t, size_t>> skip;
    skip.reserve(e.children.size());
    for (size_t ci : e.children) {
      skip.emplace_back(out[ci].start, out[ci].body_hi + 1);
    }
    std::sort(skip.begin(), skip.end());
    size_t s = 0;
    for (; i < e.body_hi; ++i) {
      while (s < skip.size() && skip[s].second <= i) ++s;
      if (s < skip.size() && skip[s].first <= i) {
        i = skip[s].second - 1;
        continue;
      }
      if (c.at(i).kind == Tok::kIdent && is_coro_keyword(c.at(i).text)) {
        e.is_coro = true;
        break;
      }
    }
  }
  return out;
}

// Iterate an entity's own body tokens, skipping nested entities.
template <typename F>
void for_own_tokens([[maybe_unused]] const Cursor& c,
                    const std::vector<Entity>& all, const Entity& e, F&& f) {
  std::vector<std::pair<size_t, size_t>> skip;
  skip.reserve(e.children.size());
  for (size_t ci : e.children) {
    skip.emplace_back(all[ci].start, all[ci].body_hi + 1);
  }
  std::sort(skip.begin(), skip.end());
  size_t s = 0;
  for (size_t i = e.body_lo; i < e.body_hi; ++i) {
    while (s < skip.size() && skip[s].second <= i) ++s;
    if (s < skip.size() && skip[s].first <= i) {
      i = skip[s].second - 1;
      continue;
    }
    if (!f(i)) return;
  }
}

// ---------------------------------------------------------------------------
// NOLINT bookkeeping.

struct Suppression {
  std::set<std::string> ids;  // lowercase imca-* ids named in the comment
  bool justified = false;
  int comment_line = 0;
};

std::string lower(std::string s) {
  for (char& ch : s) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return s;
}

// line -> suppression active on that line.
std::map<int, Suppression> parse_nolints(const std::vector<Comment>& comments,
                                         std::vector<Finding>* findings,
                                         const std::string& file) {
  std::map<int, Suppression> out;
  for (const Comment& cm : comments) {
    size_t pos = cm.text.find("NOLINT");
    if (pos == std::string::npos) continue;
    size_t after = pos + 6;
    int target = cm.line;
    if (cm.text.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = cm.line + 1;
    }
    if (after >= cm.text.size() || cm.text[after] != '(') continue;  // blanket
    const size_t close = cm.text.find(')', after);
    if (close == std::string::npos) continue;
    Suppression sup;
    sup.comment_line = cm.line;
    std::string list = cm.text.substr(after + 1, close - after - 1);
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      std::string id = lower(list.substr(start, comma - start));
      id.erase(0, id.find_first_not_of(" \t"));
      id.erase(id.find_last_not_of(" \t") + 1);
      if (id.rfind("imca-", 0) == 0) sup.ids.insert(id);
      start = comma + 1;
    }
    if (sup.ids.empty()) continue;  // not ours (plain clang-tidy NOLINT)
    // The escape hatch needs a reason: "NOLINT(imca-x): why".
    size_t tail = close + 1;
    while (tail < cm.text.size() && std::isspace(static_cast<unsigned char>(
                                        cm.text[tail]))) {
      ++tail;
    }
    if (tail < cm.text.size() && cm.text[tail] == ':' &&
        cm.text.find_first_not_of(" \t", tail + 1) != std::string::npos) {
      sup.justified = true;
    } else {
      findings->push_back({file, cm.line, std::string(kNolintBare),
                           "NOLINT(imca-…) without a ': justification'"});
    }
    auto& slot = out[target];
    slot.ids.insert(sup.ids.begin(), sup.ids.end());
    slot.justified = sup.justified;
    slot.comment_line = sup.comment_line;
  }
  return out;
}

bool suppressed(const std::map<int, Suppression>& nolints, int line,
                std::string_view check) {
  auto it = nolints.find(line);
  if (it == nolints.end()) return false;
  const std::string id = lower(std::string(check));
  return it->second.ids.count(id) > 0 || it->second.ids.count("imca-*") > 0;
}

// ---------------------------------------------------------------------------
// Checks.

struct Param {
  size_t lo, hi;  // token range
};

std::vector<Param> split_params(const Cursor& c, size_t lo, size_t hi) {
  std::vector<Param> out;
  int depth = 0;
  size_t start = lo;
  for (size_t i = lo; i < hi; ++i) {
    const std::string_view s = c.at(i).text;
    if (s == "(" || s == "{" || s == "[" || s == "<") ++depth;
    else if (s == ")" || s == "}" || s == "]" || s == ">") --depth;
    else if (s == "," && depth == 0) {
      if (i > start) out.push_back({start, i});
      start = i + 1;
    }
  }
  if (hi > start) out.push_back({start, hi});
  return out;
}

std::string param_name(const Cursor& c, const Param& p) {
  std::string name;
  for (size_t i = p.lo; i < p.hi; ++i) {
    if (c.is(i, "=")) break;
    if (c.is_ident(i)) name = c.at(i).text;
  }
  return name;
}

void check_coro_ref(const Cursor& c, const Entity& e,
                    std::vector<Finding>* out, const std::string& file) {
  if (!e.is_coro || e.params_hi <= e.params_lo) return;
  for (const Param& p : split_params(c, e.params_lo, e.params_hi)) {
    bool has_const = false, has_lref = false, has_rref = false;
    bool has_view = false, has_bufview = false;
    for (size_t i = p.lo; i < p.hi; ++i) {
      if (c.is(i, "=")) break;  // default argument: not part of the type
      const Token& tk = c.at(i);
      if (tk.ident("const")) has_const = true;
      else if (tk.is("&")) has_lref = true;
      else if (tk.is("&&")) has_rref = true;
      else if (tk.ident("string_view")) has_view = true;
      else if (tk.ident("BufView")) has_bufview = true;
    }
    const std::string name = param_name(c, p);
    const int line = c.at(p.lo).line;
    std::string why;
    if (has_view) why = "std::string_view parameter";
    else if (has_bufview) why = "BufView parameter";
    else if (has_rref) why = "rvalue-reference parameter";
    else if (has_const && has_lref) why = "const-reference parameter";
    else continue;  // by-value, pointer, or mutable lvalue ref (exempt)
    out->push_back(
        {file, line, std::string(kCoroRef),
         why + " '" + name +
             "' can dangle across a suspension; pass by value (or Buffer)"});
  }
}

void check_coro_lambda(const Entity& e, std::vector<Finding>* out,
                       const std::string& file) {
  if (!e.is_lambda || !e.captures || !e.is_coro) return;
  out->push_back({file, e.line, std::string(kCoroLambda),
                  "capturing lambda is a coroutine; the frame outlives the "
                  "lambda object — use a named coroutine (or capture-free "
                  "lambda) with explicit parameters"});
}

void check_coro_this(const Cursor& c, const std::vector<Entity>& all,
                     const Entity& e, std::vector<Finding>* out,
                     const std::string& file) {
  if (!e.is_coro) return;
  bool has_liveness = false;
  for_own_tokens(c, all, e, [&](size_t i) {
    if (c.is_ident(i) && is_liveness_ident(c.at(i).text)) {
      has_liveness = true;
      return false;
    }
    return true;
  });
  if (has_liveness) return;
  bool awaited = false;
  size_t this_at = 0;
  for_own_tokens(c, all, e, [&](size_t i) {
    if (c.at(i).ident("co_await")) awaited = true;
    else if (awaited && c.at(i).ident("this")) {
      this_at = i;
      return false;
    }
    return true;
  });
  if (this_at != 0) {
    out->push_back(
        {file, c.at(this_at).line, std::string(kCoroThis),
         "`this` used after a co_await with no liveness token (alive_ / "
         "shared_from_this); the object may be destroyed while suspended"});
  }
}

void check_detach(const Cursor& c, const NameIndex& names,
                  std::vector<Finding>* out, const std::string& file) {
  // Whole-file statement scan: after ';' '{' or '}', a statement that is
  // exactly `chain(...);` or `(void) chain(...);` where the chain's last
  // identifier names a Task-returning function drops a lazy task unrun.
  for (size_t i = 0; i < c.size(); ++i) {
    if (i != 0 && !c.is(i - 1, ";") && !c.is(i - 1, "{") && !c.is(i - 1, "}")) {
      continue;
    }
    size_t j = i;
    bool void_cast = false;
    if (c.is(j, "(") && c.is(j + 1, "void") && c.is(j + 2, ")")) {
      void_cast = true;
      j += 3;
    }
    if (!c.is_ident(j)) continue;
    std::string last = c.at(j).text;
    size_t k = j + 1;
    while ((c.is(k, "::") || c.is(k, ".") || c.is(k, "->")) &&
           c.is_ident(k + 1)) {
      last = c.at(k + 1).text;
      k += 2;
    }
    if (!c.is(k, "(")) continue;
    const size_t close = c.match(k);
    if (close >= c.size() || !c.is(close + 1, ";")) continue;
    if (names.task_fns.count(last) == 0 ||
        names.ambiguous_fns.count(last) != 0) {
      continue;
    }
    out->push_back(
        {file, c.at(j).line, std::string(kDetach),
         std::string(void_cast ? "(void)-discarded" : "discarded") +
             " call to Task-returning '" + last +
             "' — a lazy task never runs; co_await it, store it, or "
             "spawn() it"});
  }
}

void check_moved_buf(const Cursor& c, std::vector<Finding>* out,
                     const std::string& file) {
  // Declarations of Buffer/ByteBuf variables seen so far: name -> live.
  // A `std::move(name)` poisons the name until the end of the innermost
  // block containing the move, or until `name =` reassigns it.
  struct Decl {
    bool moved = false;
    int moved_line = 0;
  };
  std::map<std::string, Decl> vars;
  std::vector<std::vector<std::string>> moved_stack;  // per brace depth
  moved_stack.emplace_back();
  for (size_t i = 0; i < c.size(); ++i) {
    const Token& tk = c.at(i);
    if (tk.is("{")) {
      moved_stack.emplace_back();
      continue;
    }
    if (tk.is("}")) {
      // Leaving the block un-poisons moves made inside it (a new iteration
      // or a sibling scope is a fresh start; cross-scope flow is beyond
      // AST-lite).
      for (const std::string& name : moved_stack.back()) {
        auto it = vars.find(name);
        if (it != vars.end()) it->second.moved = false;
      }
      moved_stack.pop_back();
      if (moved_stack.empty()) moved_stack.emplace_back();
      continue;
    }
    if ((tk.ident("Buffer") || tk.ident("ByteBuf")) && c.is_ident(i + 1) &&
        (c.is(i + 2, ";") || c.is(i + 2, "=") || c.is(i + 2, "{") ||
         c.is(i + 2, "(") || c.is(i + 2, ",") || c.is(i + 2, ")"))) {
      vars[c.at(i + 1).text] = Decl{};  // declaration (local, member or param)
      ++i;                              // don't treat the name as a use
      continue;
    }
    if (tk.ident("std") && c.is(i + 1, "::") && c.is(i + 2, "move") &&
        c.is(i + 3, "(") && c.is_ident(i + 4) && c.is(i + 5, ")")) {
      auto it = vars.find(c.at(i + 4).text);
      if (it != vars.end()) {
        if (it->second.moved) {
          out->push_back({file, c.at(i + 4).line, std::string(kMovedBuf),
                          "'" + it->first + "' moved again after std::move "
                          "on line " + std::to_string(it->second.moved_line)});
        } else {
          it->second.moved = true;
          it->second.moved_line = c.at(i + 4).line;
          moved_stack.back().push_back(it->first);
        }
      }
      i += 5;
      continue;
    }
    if (tk.kind == Tok::kIdent) {
      // `other.data` / `ns::data` is not the tracked local `data`.
      if (i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                    c.is(i - 1, "::"))) {
        continue;
      }
      auto it = vars.find(tk.text);
      if (it != vars.end() && it->second.moved) {
        // Reassignment (or clear()) revives the variable.
        if ((c.is(i + 1, "=") && !c.is(i + 1, "==")) ||
            ((c.is(i + 1, ".") && (c.is(i + 2, "clear") ||
                                   c.is(i + 2, "reset"))))) {
          it->second.moved = false;
          continue;
        }
        // Member access on the object or any other read is a use.
        out->push_back({file, tk.line, std::string(kMovedBuf),
                        "use of '" + tk.text + "' after std::move on line " +
                            std::to_string(it->second.moved_line)});
        it->second.moved = false;  // one finding per move
      }
    }
  }
}

void check_node_freed(const Cursor& c, std::vector<Finding>* out,
                      const std::string& file) {
  // Declarations of EventNode* variables seen so far. `release(name)` (or
  // `free(name)`) poisons the name — the arena immediately repurposes
  // n->next as the free-list link and the next alloc() recycles the node,
  // so any later read sees free-list internals or a different event's
  // (time, seq, handle). Same scope machinery as IMCA-MOVED-BUF: leaving
  // the block or reassigning the pointer revives it.
  struct Decl {
    bool freed = false;
    int freed_line = 0;
  };
  std::map<std::string, Decl> vars;
  std::vector<std::vector<std::string>> freed_stack;  // per brace depth
  freed_stack.emplace_back();
  for (size_t i = 0; i < c.size(); ++i) {
    const Token& tk = c.at(i);
    if (tk.is("{")) {
      freed_stack.emplace_back();
      continue;
    }
    if (tk.is("}")) {
      for (const std::string& name : freed_stack.back()) {
        auto it = vars.find(name);
        if (it != vars.end()) it->second.freed = false;
      }
      freed_stack.pop_back();
      if (freed_stack.empty()) freed_stack.emplace_back();
      continue;
    }
    if (tk.ident("EventNode") && c.is(i + 1, "*") && c.is_ident(i + 2) &&
        (c.is(i + 3, ";") || c.is(i + 3, "=") || c.is(i + 3, "{") ||
         c.is(i + 3, "(") || c.is(i + 3, ",") || c.is(i + 3, ")"))) {
      vars[c.at(i + 2).text] = Decl{};  // declaration (local, member, param)
      i += 2;                           // don't treat the name as a use
      continue;
    }
    if ((tk.ident("release") || tk.ident("free")) && c.is(i + 1, "(") &&
        c.is_ident(i + 2) && c.is(i + 3, ")")) {
      auto it = vars.find(c.at(i + 2).text);
      if (it != vars.end()) {
        if (it->second.freed) {
          out->push_back({file, c.at(i + 2).line, std::string(kNodeFreed),
                          "'" + it->first + "' released again after release "
                          "on line " + std::to_string(it->second.freed_line) +
                          " — double free corrupts the arena free list"});
        } else {
          it->second.freed = true;
          it->second.freed_line = c.at(i + 2).line;
          freed_stack.back().push_back(it->first);
        }
      }
      i += 3;
      continue;
    }
    if (tk.kind == Tok::kIdent) {
      // `other.n` / `ns::n` is not the tracked local `n`.
      if (i > 0 && (c.is(i - 1, ".") || c.is(i - 1, "->") ||
                    c.is(i - 1, "::"))) {
        continue;
      }
      auto it = vars.find(tk.text);
      if (it != vars.end() && it->second.freed) {
        // Reassignment revives the pointer.
        if (c.is(i + 1, "=") && !c.is(i + 1, "==")) {
          it->second.freed = false;
          continue;
        }
        out->push_back({file, tk.line, std::string(kNodeFreed),
                        "use of '" + tk.text + "' after release on line " +
                            std::to_string(it->second.freed_line) +
                            " — the node may already be recycled and its "
                            "next is the free-list link"});
        it->second.freed = false;  // one finding per release
      }
    }
  }
}

void check_byte_vec(const Cursor& c, const std::string& relpath,
                    bool all_checks, std::vector<Finding>* out,
                    const std::string& file) {
  // Scope: the data path (src/) minus the storage layer itself, which
  // legitimately adopts vectors into segments. The corpus opts in via
  // all_checks.
  if (!all_checks) {
    if (relpath.rfind("src/", 0) != 0) return;
    if (relpath.find("common/buffer.") != std::string::npos ||
        relpath.find("common/bytebuf.") != std::string::npos) {
      return;
    }
  }
  for (size_t i = 0; i + 7 < c.size(); ++i) {
    if (!(c.at(i).ident("std") && c.is(i + 1, "::") && c.is(i + 2, "vector") &&
          c.is(i + 3, "<") && c.at(i + 4).ident("std") && c.is(i + 5, "::") &&
          c.is(i + 6, "byte") && c.is(i + 7, ">"))) {
      continue;
    }
    size_t after = i + 8;
    if (c.is_ident(after)) ++after;  // optional parameter name
    const bool param_pos = c.is(after, ",") || c.is(after, ")");
    // Return-type position: Task< or Expected< within the last few tokens
    // with the angle still open.
    bool ret_pos = false;
    for (size_t back = 1; back <= 6 && back <= i; ++back) {
      if ((c.at(i - back).ident("Task") || c.at(i - back).ident("Expected")) &&
          c.is(i - back + 1, "<")) {
        ret_pos = true;
        break;
      }
    }
    if (param_pos || ret_pos) {
      out->push_back({file, c.at(i).line, std::string(kByteVec),
                      "payload-by-vector signature (use imca::Buffer on the "
                      "data path)"});
    }
  }
}

}  // namespace

NameIndex collect_names(const LexedFile& lexed) {
  Cursor c(lexed.tokens);
  NameIndex out;
  for (size_t i = 0; i < c.size(); ++i) {
    if (c.at(i).ident("Task")) {
      if (auto r = parse_task_function(c, i)) {
        if (!r->first.name.empty()) out.task_fns.insert(r->first.name);
        continue;
      }
    }
    // Non-Task declarations that reuse a fop name make that name ambiguous
    // for IMCA-DETACH. Three shapes cover this codebase:
    //   `void set(`   — two identifiers then '(' (skipping statement
    //                   keywords, which precede calls, not declarations)
    //   `Expected<X> stat(` — '>' then identifier then '(' where the
    //                   matching '<' does not belong to Task
    //   `auto stat = [` — a lambda bound to a name
    if (c.is_ident(i) && c.is_ident(i + 1) && c.is(i + 2, "(")) {
      static const std::set<std::string> kStmtKeywords = {
          "return",   "co_return", "co_await", "co_yield", "case",
          "goto",     "new",       "delete",   "throw",    "else",
          "do",       "sizeof",    "typedef",  "using",    "typename",
          "operator", "if",        "while",    "for",      "switch"};
      if (kStmtKeywords.count(c.at(i).text) == 0 &&
          kStmtKeywords.count(c.at(i + 1).text) == 0) {
        out.ambiguous_fns.insert(c.at(i + 1).text);
      }
      continue;
    }
    if (c.is(i, ">") && c.is_ident(i + 1) && c.is(i + 2, "(")) {
      // Walk back to the matching '<'; the identifier before it is the
      // template being returned. Task<…> declarations were already taken by
      // parse_task_function above, but re-classify defensively.
      int depth = 1;
      size_t j = i;
      while (j > 0 && depth > 0) {
        --j;
        if (c.is(j, ">")) ++depth;
        else if (c.is(j, "<")) --depth;
      }
      if (depth == 0 && j > 0 && c.is_ident(j - 1) &&
          !c.at(j - 1).ident("Task")) {
        out.ambiguous_fns.insert(c.at(i + 1).text);
      }
      continue;
    }
    if (c.at(i).ident("auto") && c.is_ident(i + 1) && c.is(i + 2, "=") &&
        c.is(i + 3, "[")) {
      out.ambiguous_fns.insert(c.at(i + 1).text);
    }
  }
  return out;
}

std::vector<Finding> analyze(const std::string& relpath,
                             const LexedFile& lexed, const NameIndex& names,
                             bool all_checks) {
  Cursor c(lexed.tokens);
  std::vector<Finding> raw;
  std::map<int, Suppression> nolints =
      parse_nolints(lexed.comments, &raw, relpath);

  const std::vector<Entity> entities = collect_entities(c);
  for (const Entity& e : entities) {
    if (e.body_hi == 0) continue;
    check_coro_ref(c, e, &raw, relpath);
    check_coro_lambda(e, &raw, relpath);
    check_coro_this(c, entities, e, &raw, relpath);
  }
  check_detach(c, names, &raw, relpath);
  check_moved_buf(c, &raw, relpath);
  check_node_freed(c, &raw, relpath);
  check_byte_vec(c, relpath, all_checks, &raw, relpath);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    if (f.check != kNolintBare && suppressed(nolints, f.line, f.check)) {
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.check == b.check && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace imca::lint
