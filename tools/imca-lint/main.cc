// imca-lint — coroutine-lifetime & suspension-safety analyzer (DESIGN.md
// §5g/§5k).
//
// Usage:
//   imca-lint [--root DIR] PATH...        lint files / directories
//   imca-lint --verify PATH...            corpus mode: findings must match
//                                         `// EXPECT: IMCA-…` comments exactly
//   imca-lint --json=FILE ...             also write a BENCH_lint.json
//                                         self-timing record (imca-bench/v1)
//   imca-lint --list-checks               print the check catalogue
//
// Paths are made relative to --root (default: cwd) for path-scoped checks
// (IMCA-BYTE-VEC applies under src/ only) and for stable output. Exit 0 iff
// clean (or, in --verify mode, iff findings == expectations).
//
// The run is two passes: pass 1 lexes every file and builds the whole-tree
// symbol index (per-function suspension / lock / this / mutation summaries,
// see index.h); pass 2 runs the checks per file against that index.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyzer.h"
#include "index.h"
#include "lexer.h"

namespace fs = std::filesystem;
using imca::lint::Finding;
using imca::lint::LexedFile;

namespace {

constexpr const char* kChecks[][2] = {
    {"IMCA-CORO-REF",
     "coroutine parameter by const-ref, rvalue-ref, string_view or BufView"},
    {"IMCA-CORO-LAMBDA", "capturing lambda that is itself a coroutine"},
    {"IMCA-CORO-THIS",
     "`this` reached (directly or via a member call) after a real suspension "
     "without a liveness token (alive_)"},
    {"IMCA-ITER-AWAIT",
     "member container iterated across a suspension while same-class methods "
     "can mutate it"},
    {"IMCA-LOCK-AWAIT",
     "sim::Mutex re-entry across co_await, or an unguarded member RMW "
     "spanning a suspension"},
    {"IMCA-STAT-RMW",
     "stats/ledger counter written from a value captured before a suspension"},
    {"IMCA-DETACH", "Task created and dropped without await/store/spawn"},
    {"IMCA-MOVED-BUF", "Buffer/ByteBuf used after std::move in the same scope"},
    {"IMCA-NODE-FREED", "EventNode* used after arena release in the same scope"},
    {"IMCA-BYTE-VEC",
     "std::vector<std::byte> payload signature under src/ (use Buffer)"},
    {"IMCA-NOLINT-BARE", "NOLINT(imca-…) without a ': justification'"},
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

std::vector<fs::path> expand(const std::vector<std::string>& args,
                             const fs::path& root) {
  std::vector<fs::path> files;
  for (const std::string& a : args) {
    fs::path p(a);
    if (p.is_relative()) p = root / p;
    if (fs::is_directory(p)) {
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        const std::string name = it->path().filename().string();
        // lint_corpus holds deliberate violations for --verify; reach it by
        // passing the directory (or its files) explicitly, never by sweep.
        if (it->is_directory() &&
            (name.rfind("build", 0) == 0 || name[0] == '.' ||
             name == "lint_corpus")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::cerr << "imca-lint: no such path: " << a << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string rel_to(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path r = fs::relative(p, root, ec);
  if (ec || r.empty() || r.string().rfind("..", 0) == 0) {
    return p.lexically_normal().string();
  }
  return r.string();
}

// `// EXPECT: IMCA-CORO-REF[, IMCA-…]` — expectations for --verify mode.
std::set<Finding> parse_expectations(const std::string& relpath,
                                     const LexedFile& lexed) {
  std::set<Finding> out;
  for (const auto& cm : lexed.comments) {
    const size_t pos = cm.text.find("EXPECT:");
    if (pos == std::string::npos) continue;
    std::stringstream ss(cm.text.substr(pos + 7));
    std::string id;
    while (std::getline(ss, id, ',')) {
      id.erase(0, id.find_first_not_of(" \t"));
      id.erase(id.find_last_not_of(" \t\r") + 1);
      if (id.rfind("IMCA-", 0) == 0) {
        out.insert({relpath, cm.line, id, ""});
      }
    }
  }
  return out;
}

#ifndef IMCA_GIT_REV
#define IMCA_GIT_REV "unknown"
#endif

// Self-timing in the same imca-bench/v1 shape the perf trajectory uses
// (tools/check_bench_schema.py validates it): one record for sweep
// throughput (events = files linted) and one for the finding count, so the
// trajectory catches both an analyzer slowdown and a finding-count jump.
void write_bench_json(const std::string& path, std::size_t nfiles,
                      std::size_t nfindings, double wall_ms) {
  long rss_kb = 0;
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) rss_kb = ru.ru_maxrss;
  const double secs = wall_ms / 1000.0;
  const double files_per_sec =
      secs > 0 ? static_cast<double>(nfiles) / secs : 0.0;
  std::ofstream out(path);
  out << "{\n  \"schema\": \"imca-bench/v1\",\n  \"git_rev\": \""
      << IMCA_GIT_REV << "\",\n  \"results\": [\n";
  const auto record = [&](const char* bench, std::size_t events,
                          double eps, bool last) {
    out << "    {\n      \"schema\": \"imca-bench/v1\",\n      \"git_rev\": \""
        << IMCA_GIT_REV << "\",\n      \"bench\": \"" << bench
        << "\",\n      \"events\": " << events << ",\n      \"wall_ms\": "
        << wall_ms << ",\n      \"events_per_sec\": " << eps
        << ",\n      \"peak_rss_kb\": " << rss_kb << "\n    }"
        << (last ? "\n" : ",\n");
  };
  record("imca_lint/sweep", nfiles, files_per_sec, false);
  record("imca_lint/findings", nfindings,
         secs > 0 ? static_cast<double>(nfindings) / secs : 0.0, true);
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  fs::path root = fs::current_path();
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--verify") {
      verify = true;
    } else if (a == "--root" && i + 1 < argc) {
      root = fs::path(argv[++i]);
    } else if (a.rfind("--root=", 0) == 0) {
      root = fs::path(a.substr(7));
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a == "--list-checks") {
      for (const auto& c : kChecks) {
        std::cout << c[0] << "  " << c[1] << "\n";
      }
      return 0;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: imca-lint [--root DIR] [--verify] [--json=FILE] "
                   "PATH...\n";
      return 0;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << "imca-lint: no paths given (try --help)\n";
    return 2;
  }
  root = fs::absolute(root).lexically_normal();

  const std::vector<fs::path> files = expand(paths, root);
  if (files.empty()) {
    std::cerr << "imca-lint: nothing to lint\n";
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Pass 1: lex everything, build the whole-tree symbol index.
  std::vector<std::pair<std::string, LexedFile>> lexed;
  lexed.reserve(files.size());
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    lexed.emplace_back(rel_to(f, root), imca::lint::lex(ss.str()));
  }
  std::vector<std::pair<std::string, const LexedFile*>> refs;
  refs.reserve(lexed.size());
  for (const auto& [relpath, lx] : lexed) refs.emplace_back(relpath, &lx);
  const imca::lint::SymbolIndex index = imca::lint::build_index(refs);

  // Pass 2: analyze each file against the index. In --verify mode every
  // check applies to every file and findings are diffed against the corpus
  // EXPECT annotations.
  std::vector<Finding> findings;
  std::set<Finding> expected;
  for (const auto& [relpath, lx] : lexed) {
    std::vector<Finding> fs_ =
        imca::lint::analyze(relpath, lx, index, verify);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
    if (verify) {
      std::set<Finding> ex = parse_expectations(relpath, lx);
      expected.insert(ex.begin(), ex.end());
    }
  }
  std::sort(findings.begin(), findings.end());

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (!json_path.empty()) {
    write_bench_json(json_path, files.size(), findings.size(), wall_ms);
  }

  if (!verify) {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
                << f.message << "\n";
    }
    if (findings.empty()) {
      std::cout << "imca-lint: clean (" << files.size() << " files)\n";
      return 0;
    }
    std::cout << "imca-lint: " << findings.size() << " finding(s) in "
              << files.size() << " files\n";
    return 1;
  }

  // --verify: exact (file, line, check) match, both directions.
  std::set<Finding> actual;
  for (const Finding& f : findings) actual.insert({f.file, f.line, f.check, ""});
  int bad = 0;
  for (const Finding& e : expected) {
    if (actual.count(e) == 0) {
      std::cout << "MISSING  " << e.file << ":" << e.line << ": expected ["
                << e.check << "] did not fire\n";
      ++bad;
    }
  }
  for (const Finding& a : actual) {
    if (expected.count(a) == 0) {
      std::cout << "SPURIOUS " << a.file << ":" << a.line << ": [" << a.check
                << "] fired with no EXPECT\n";
      ++bad;
    }
  }
  std::cout << "imca-lint --verify: " << expected.size() << " expected, "
            << actual.size() << " actual, " << bad << " mismatch(es)\n";
  return bad == 0 ? 0 : 1;
}
