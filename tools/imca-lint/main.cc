// imca-lint — coroutine-lifetime & suspension-safety analyzer (DESIGN.md §5g).
//
// Usage:
//   imca-lint [--root DIR] PATH...        lint files / directories
//   imca-lint --verify PATH...            corpus mode: findings must match
//                                         `// EXPECT: IMCA-…` comments exactly
//   imca-lint --list-checks               print the check catalogue
//
// Paths are made relative to --root (default: cwd) for path-scoped checks
// (IMCA-BYTE-VEC applies under src/ only) and for stable output. Exit 0 iff
// clean (or, in --verify mode, iff findings == expectations).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "lexer.h"

namespace fs = std::filesystem;
using imca::lint::Finding;
using imca::lint::LexedFile;

namespace {

constexpr const char* kChecks[][2] = {
    {"IMCA-CORO-REF",
     "coroutine parameter by const-ref, rvalue-ref, string_view or BufView"},
    {"IMCA-CORO-LAMBDA", "capturing lambda that is itself a coroutine"},
    {"IMCA-CORO-THIS",
     "`this` used after co_await without a liveness token (alive_)"},
    {"IMCA-DETACH", "Task created and dropped without await/store/spawn"},
    {"IMCA-MOVED-BUF", "Buffer/ByteBuf used after std::move in the same scope"},
    {"IMCA-BYTE-VEC",
     "std::vector<std::byte> payload signature under src/ (use Buffer)"},
    {"IMCA-NOLINT-BARE", "NOLINT(imca-…) without a ': justification'"},
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

std::vector<fs::path> expand(const std::vector<std::string>& args,
                             const fs::path& root) {
  std::vector<fs::path> files;
  for (const std::string& a : args) {
    fs::path p(a);
    if (p.is_relative()) p = root / p;
    if (fs::is_directory(p)) {
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        const std::string name = it->path().filename().string();
        // lint_corpus holds deliberate violations for --verify; reach it by
        // passing the directory (or its files) explicitly, never by sweep.
        if (it->is_directory() &&
            (name.rfind("build", 0) == 0 || name[0] == '.' ||
             name == "lint_corpus")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::cerr << "imca-lint: no such path: " << a << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string rel_to(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path r = fs::relative(p, root, ec);
  if (ec || r.empty() || r.string().rfind("..", 0) == 0) {
    return p.lexically_normal().string();
  }
  return r.string();
}

// `// EXPECT: IMCA-CORO-REF[, IMCA-…]` — expectations for --verify mode.
std::set<Finding> parse_expectations(const std::string& relpath,
                                     const LexedFile& lexed) {
  std::set<Finding> out;
  for (const auto& cm : lexed.comments) {
    const size_t pos = cm.text.find("EXPECT:");
    if (pos == std::string::npos) continue;
    std::stringstream ss(cm.text.substr(pos + 7));
    std::string id;
    while (std::getline(ss, id, ',')) {
      id.erase(0, id.find_first_not_of(" \t"));
      id.erase(id.find_last_not_of(" \t\r") + 1);
      if (id.rfind("IMCA-", 0) == 0) {
        out.insert({relpath, cm.line, id, ""});
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--verify") {
      verify = true;
    } else if (a == "--root" && i + 1 < argc) {
      root = fs::path(argv[++i]);
    } else if (a.rfind("--root=", 0) == 0) {
      root = fs::path(a.substr(7));
    } else if (a == "--list-checks") {
      for (const auto& c : kChecks) {
        std::cout << c[0] << "  " << c[1] << "\n";
      }
      return 0;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: imca-lint [--root DIR] [--verify] PATH...\n";
      return 0;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << "imca-lint: no paths given (try --help)\n";
    return 2;
  }
  root = fs::absolute(root).lexically_normal();

  const std::vector<fs::path> files = expand(paths, root);
  if (files.empty()) {
    std::cerr << "imca-lint: nothing to lint\n";
    return 2;
  }

  // Pass 1: lex everything, collect function names globally so IMCA-DETACH
  // sees cross-file calls (and cross-file name collisions).
  std::vector<std::pair<std::string, LexedFile>> lexed;
  imca::lint::NameIndex names;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    lexed.emplace_back(rel_to(f, root), imca::lint::lex(ss.str()));
    const imca::lint::NameIndex ni =
        imca::lint::collect_names(lexed.back().second);
    names.task_fns.insert(ni.task_fns.begin(), ni.task_fns.end());
    names.ambiguous_fns.insert(ni.ambiguous_fns.begin(),
                               ni.ambiguous_fns.end());
  }

  // Pass 2: analyze. In --verify mode every check applies to every file and
  // findings are diffed against the corpus EXPECT annotations.
  std::vector<Finding> findings;
  std::set<Finding> expected;
  for (const auto& [relpath, lx] : lexed) {
    std::vector<Finding> fs_ =
        imca::lint::analyze(relpath, lx, names, verify);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
    if (verify) {
      std::set<Finding> ex = parse_expectations(relpath, lx);
      expected.insert(ex.begin(), ex.end());
    }
  }
  std::sort(findings.begin(), findings.end());

  if (!verify) {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
                << f.message << "\n";
    }
    if (findings.empty()) {
      std::cout << "imca-lint: clean (" << files.size() << " files)\n";
      return 0;
    }
    std::cout << "imca-lint: " << findings.size() << " finding(s) in "
              << files.size() << " files\n";
    return 1;
  }

  // --verify: exact (file, line, check) match, both directions.
  std::set<Finding> actual;
  for (const Finding& f : findings) actual.insert({f.file, f.line, f.check, ""});
  int bad = 0;
  for (const Finding& e : expected) {
    if (actual.count(e) == 0) {
      std::cout << "MISSING  " << e.file << ":" << e.line << ": expected ["
                << e.check << "] did not fire\n";
      ++bad;
    }
  }
  for (const Finding& a : actual) {
    if (expected.count(a) == 0) {
      std::cout << "SPURIOUS " << a.file << ":" << a.line << ": [" << a.check
                << "] fired with no EXPECT\n";
      ++bad;
    }
  }
  std::cout << "imca-lint --verify: " << expected.size() << " expected, "
            << actual.size() << " actual, " << bad << " mismatch(es)\n";
  return bad == 0 ? 0 : 1;
}
