#include "lexer.h"

#include <array>
#include <cctype>

namespace imca::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuation, longest first so maximal munch works by ordered
// scan. Only operators the analyzer cares to see as single tokens matter;
// the rest may split into single chars without harming any check.
constexpr std::array<std::string_view, 12> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "&&", "||",
    "==",  "!=",  "<=",  ">=",
};

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      std::size_t end = start;
      while (end < n && src[end] != '\n') ++end;
      out.comments.push_back(
          {std::string(src.substr(start, end - start)), line});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t start = i + 2;
      std::size_t end = start;
      while (end + 1 < n && !(src[end] == '*' && src[end + 1] == '/')) {
        if (src[end] == '\n') ++line;
        ++end;
      }
      out.comments.push_back(
          {std::string(src.substr(start, end - start)), start_line});
      i = (end + 1 < n) ? end + 2 : n;
      continue;
    }
    // Preprocessor line (only when '#' begins a logical line — close enough
    // to check that the previous token is on an earlier line or absent).
    if (c == '#' &&
        (out.tokens.empty() || out.tokens.back().line < line)) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, d);
      if (end == std::string_view::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.tokens.push_back({Tok::kString, "\"\"", line});
      i = (end == n) ? n : end + closer.size();
      continue;
    }
    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      out.tokens.push_back({quote == '"' ? Tok::kString : Tok::kChar,
                            quote == '"' ? "\"\"" : "''", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_cont(src[j])) ++j;
      out.tokens.push_back({Tok::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Number (pp-number, loose: digits, idents, ', and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t j = i + 1;
      while (j < n && (ident_cont(src[j]) || src[j] == '\'' || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
      ++j;
      }
      out.tokens.push_back({Tok::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Punctuation, maximal munch over the multi-char table.
    bool matched = false;
    for (std::string_view op : kMultiPunct) {
      if (src.substr(i, op.size()) == op) {
        out.tokens.push_back({Tok::kPunct, std::string(op), line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace imca::lint
