// imcasim — command-line driver for ad-hoc experiments on the simulated
// testbeds, without writing C++.
//
//   imcasim --system=imca --mcds=4 --clients=32 --workload=latency
//   imcasim --system=gluster --clients=8 --workload=iozone --file-mb=64
//   imcasim --system=lustre --ds=4 --cold --workload=latency --shared
//   imcasim --system=nfs --transport=gige --workload=iozone --clients=4
//   imcasim --system=imca --mcds=2 --workload=stat --files=20000 --csv
//
// Run `imcasim --help` for every knob. All runs are deterministic.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "common/buffer.h"
#include "common/table.h"
#include "workload/iozone.h"
#include "workload/latency_bench.h"
#include "workload/stat_bench.h"

namespace {

using namespace imca;

struct Options {
  std::string system = "imca";     // imca | gluster | lustre | nfs
  std::string workload = "latency";  // latency | stat | iozone | shared
  std::string transport = "ipoib";   // ipoib | rdma | gige (fabric-wide)
  std::size_t clients = 4;
  std::size_t mcds = 2;           // imca only
  std::size_t bricks = 1;         // imca/gluster: distribute groups
  std::size_t replicas = 1;       // imca/gluster: AFR replicas per group
  std::size_t ds = 1;             // lustre only
  std::uint64_t block = 2 * kKiB; // IMCa block size
  std::string hash = "crc32";     // crc32 | modulo | consistent
  bool threaded = false;          // SMCache worker thread
  bool rdma_cache = false;        // verbs path to the MCDs
  bool no_partial_hit = false;    // paper baseline: forward on any miss
  bool no_read_repair = false;    // don't push fetched blocks to the MCDs
  bool no_coalesce = false;       // don't single-flight concurrent fetches
  bool legacy_copy_path = false;  // pre-refactor copy-per-hop buffers
  bool cold = false;              // lustre: unmount before reads
  std::uint64_t max_record = 64 * kKiB;
  std::size_t records = 128;
  std::size_t files = 4096;       // stat workload
  std::uint64_t file_mb = 32;     // iozone
  std::uint64_t mcd_mb = 0;       // 0 = default 6 GB
  std::uint64_t server_cache_mb = 0;  // 0 = default
  bool csv = false;

  // --- MCD fault plan (imca only; DESIGN.md §5d) ---
  std::uint64_t fault_seed = 1;
  double fault_drop = 0;     // P(request lost before the daemon sees it)
  double fault_timeout = 0;  // P(reply lost after the daemon executed)
  double fault_slow = 0;     // P(reply delayed by --fault-slow-ms)
  double fault_short = 0;    // P(reply truncated to a strict prefix)
  std::uint64_t fault_slow_ms = 2;
  std::vector<net::CrashEvent> crashes;  // --crash-mcd=i@ms[:ms]
  // ~0 = auto: 2 ms whenever any fault flag is present, otherwise off.
  std::uint64_t mcd_timeout_ms = ~0ull;

  // --- durable write-back (imca only; DESIGN.md §5j) ---
  bool writeback = false;          // absorb writes into the MCD tier
  std::size_t wb_replicas = 2;     // K dirty copies per absorbed write
  std::size_t wb_quorum = 2;       // MCD acks required before the write acks
  std::uint64_t wb_flush_delay_ms = 0;  // coalescing window (--wb-flush-delay)

  // --- file-server fault plan (imca/gluster; DESIGN.md §5f) ---
  std::vector<net::ServerCrashEvent> server_crashes;  // --crash-server=ms[:ms]
  std::uint64_t server_slow_ms = 0;        // --server-slow=MS
  std::uint64_t wb_flush_deadline_ms = 0;  // --wb-flush-deadline=MS

  bool any_fault() const {
    return fault_drop > 0 || fault_timeout > 0 || fault_slow > 0 ||
           fault_short > 0 || !crashes.empty();
  }
  bool any_server_fault() const {
    return !server_crashes.empty() || server_slow_ms > 0 ||
           wb_flush_deadline_ms > 0;
  }
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      code ? stderr : stdout,
      "imcasim — drive the IMCa reproduction testbeds from the shell\n"
      "\n"
      "  --system=imca|gluster|lustre|nfs   file system under test\n"
      "  --workload=latency|stat|iozone|shared\n"
      "  --transport=ipoib|rdma|gige        fabric transport (default ipoib)\n"
      "  --clients=N                        client nodes (default 4)\n"
      "  --mcds=N          cache daemons (imca; default 2)\n"
      "  --bricks=N        distribute groups (imca/gluster; default 1)\n"
      "  --replicas=K      AFR replicas per group (imca/gluster; default 1;\n"
      "                    the grid runs N*K brick servers)\n"
      "  --ds=N            data servers (lustre; default 1)\n"
      "  --block=BYTES     IMCa block size (default 2048)\n"
      "  --hash=crc32|modulo|consistent     key->MCD placement\n"
      "  --threaded        SMCache worker-thread updates\n"
      "  --rdma-cache      reach the MCDs over native verbs\n"
      "  --no-partial-hit  forward whole reads on any block miss (paper)\n"
      "  --no-read-repair  disable client-side read-repair of missed blocks\n"
      "  --no-coalesce     disable single-flight read coalescing\n"
      "  --legacy-copy-path  deep-copy buffers at every hop (pre-iovec\n"
      "                      ablation; see DESIGN.md \u00a75e copy ledger)\n"
      "  --cold            lustre: drop client caches before reads\n"
      "  --max-record=BYTES  latency sweep ceiling (default 65536)\n"
      "  --records=N         records per size (default 128)\n"
      "  --files=N           stat workload file count (default 4096)\n"
      "  --file-mb=N         iozone per-client file size (default 32)\n"
      "  --mcd-mb=N          per-daemon memory (default 6144)\n"
      "  --server-cache-mb=N server page cache\n"
      "  --csv               machine-readable tables\n"
      "\n"
      "MCD fault injection (imca only; all runs stay deterministic):\n"
      "  --fault-seed=N      PRNG seed for the per-call fault draws\n"
      "  --fault-drop=P      drop requests (no daemon side effect)\n"
      "  --fault-timeout=P   drop replies (side effect applied, reply lost)\n"
      "  --fault-slow=P      delay replies by --fault-slow-ms (default 2)\n"
      "  --fault-short=P     truncate replies (torn protocol frames)\n"
      "  --crash-mcd=i@ms[:ms]  kill daemon i at `ms`, optionally restart\n"
      "                      at the second `ms` (repeatable)\n"
      "  --mcd-timeout-ms=N  per-op MCD deadline; defaults to 2 when any\n"
      "                      fault flag is given, 0 (off) otherwise\n"
      "\n"
      "file-server fault injection (imca and gluster; DESIGN.md §5f):\n"
      "  --crash-server=ms[:ms]  kill the brick at `ms`, optionally restart\n"
      "                      at the second `ms` (repeatable); arms the\n"
      "                      client deadline/retry/replay machinery\n"
      "  --crash-brick=i@ms[:ms]  kill brick i of the grid (row-major:\n"
      "                      group g, replica r is i = g*K + r) at `ms`,\n"
      "                      optionally restart (repeatable)\n"
      "  --server-slow=MS    ~35%% of brick replies crawl in MS late —\n"
      "                      forces attempt timeouts and replay dedup\n"
      "  --wb-flush-deadline=MS  server-side write-behind in flush_before_ack\n"
      "                      mode with an MS flush deadline\n"
      "  --writeback         absorb writes into the MCD tier: K-way dirty\n"
      "                      replication, epoch-ordered background flush\n"
      "                      (imca; arms the 2 ms MCD deadline by default)\n"
      "  --wb-replicas=K     dirty copies per absorbed write (default 2)\n"
      "  --wb-quorum=K       MCD acks required before a write acks\n"
      "                      (default 2; short of it, writes degrade to\n"
      "                      write-through and are counted)\n"
      "  --wb-flush-delay=MS coalescing window before a path's first flush\n"
      "                      pass (barriers bypass it; default 0)\n");
  std::exit(code);
}

std::optional<std::string> flag_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    return std::string(arg + n + 1);
  }
  return std::nullopt;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) usage(0);
    if (!std::strcmp(a, "--threaded")) { o.threaded = true; continue; }
    if (!std::strcmp(a, "--rdma-cache")) { o.rdma_cache = true; continue; }
    if (!std::strcmp(a, "--no-partial-hit")) { o.no_partial_hit = true; continue; }
    if (!std::strcmp(a, "--no-read-repair")) { o.no_read_repair = true; continue; }
    if (!std::strcmp(a, "--no-coalesce")) { o.no_coalesce = true; continue; }
    if (!std::strcmp(a, "--legacy-copy-path")) {
      o.legacy_copy_path = true;
      continue;
    }
    if (!std::strcmp(a, "--writeback")) { o.writeback = true; continue; }
    if (!std::strcmp(a, "--cold")) { o.cold = true; continue; }
    if (!std::strcmp(a, "--csv")) { o.csv = true; continue; }
    bool matched = false;
    const auto str = [&](const char* name, std::string& out) {
      if (auto v = flag_value(a, name)) { out = *v; matched = true; }
    };
    const auto num = [&](const char* name, auto& out) {
      if (auto v = flag_value(a, name)) {
        out = static_cast<std::decay_t<decltype(out)>>(
            std::strtoull(v->c_str(), nullptr, 10));
        matched = true;
      }
    };
    const auto prob = [&](const char* name, double& out) {
      if (auto v = flag_value(a, name)) {
        out = std::strtod(v->c_str(), nullptr);
        if (out < 0.0 || out > 1.0) {
          std::fprintf(stderr, "%s wants a probability in [0,1]\n", name);
          usage(2);
        }
        matched = true;
      }
    };
    if (auto v = flag_value(a, "--crash-mcd")) {
      // i@ms or i@ms:ms
      char* end = nullptr;
      net::CrashEvent ev;
      ev.mcd = std::strtoull(v->c_str(), &end, 10);
      if (*end != '@') {
        std::fprintf(stderr, "--crash-mcd wants i@ms[:ms]\n");
        usage(2);
      }
      ev.at = std::strtoull(end + 1, &end, 10) * kMilli;
      if (*end == ':') {
        ev.restart_at = std::strtoull(end + 1, &end, 10) * kMilli;
      }
      if (*end != '\0') {
        std::fprintf(stderr, "--crash-mcd wants i@ms[:ms]\n");
        usage(2);
      }
      o.crashes.push_back(ev);
      continue;
    }
    if (auto v = flag_value(a, "--crash-brick")) {
      // i@ms or i@ms:ms
      char* end = nullptr;
      net::ServerCrashEvent ev;
      ev.brick = std::strtoull(v->c_str(), &end, 10);
      if (*end != '@') {
        std::fprintf(stderr, "--crash-brick wants i@ms[:ms]\n");
        usage(2);
      }
      ev.at = std::strtoull(end + 1, &end, 10) * kMilli;
      if (*end == ':') {
        ev.restart_at = std::strtoull(end + 1, &end, 10) * kMilli;
      }
      if (*end != '\0') {
        std::fprintf(stderr, "--crash-brick wants i@ms[:ms]\n");
        usage(2);
      }
      o.server_crashes.push_back(ev);
      continue;
    }
    if (auto v = flag_value(a, "--crash-server")) {
      // ms or ms:ms
      char* end = nullptr;
      net::ServerCrashEvent ev;
      ev.at = std::strtoull(v->c_str(), &end, 10) * kMilli;
      if (*end == ':') {
        ev.restart_at = std::strtoull(end + 1, &end, 10) * kMilli;
      }
      if (*end != '\0') {
        std::fprintf(stderr, "--crash-server wants ms[:ms]\n");
        usage(2);
      }
      o.server_crashes.push_back(ev);
      continue;
    }
    str("--system", o.system);
    str("--workload", o.workload);
    str("--transport", o.transport);
    str("--hash", o.hash);
    num("--clients", o.clients);
    num("--mcds", o.mcds);
    num("--bricks", o.bricks);
    num("--replicas", o.replicas);
    num("--ds", o.ds);
    num("--block", o.block);
    num("--max-record", o.max_record);
    num("--records", o.records);
    num("--files", o.files);
    num("--file-mb", o.file_mb);
    num("--mcd-mb", o.mcd_mb);
    num("--server-cache-mb", o.server_cache_mb);
    num("--fault-seed", o.fault_seed);
    num("--fault-slow-ms", o.fault_slow_ms);
    num("--mcd-timeout-ms", o.mcd_timeout_ms);
    num("--server-slow", o.server_slow_ms);
    num("--wb-replicas", o.wb_replicas);
    num("--wb-quorum", o.wb_quorum);
    num("--wb-flush-delay", o.wb_flush_delay_ms);
    num("--wb-flush-deadline", o.wb_flush_deadline_ms);
    prob("--fault-drop", o.fault_drop);
    prob("--fault-timeout", o.fault_timeout);
    prob("--fault-slow", o.fault_slow);
    prob("--fault-short", o.fault_short);
    if (!matched) {
      std::fprintf(stderr, "unknown flag: %s\n\n", a);
      usage(2);
    }
  }
  if (o.clients == 0) usage(2);
  return o;
}

net::TransportParams transport_of(const Options& o) {
  if (o.transport == "rdma") return net::ib_rdma();
  if (o.transport == "gige") return net::gige();
  if (o.transport == "ipoib") return net::ipoib_rc();
  std::fprintf(stderr, "unknown transport: %s\n", o.transport.c_str());
  usage(2);
}

core::HashScheme hash_of(const Options& o) {
  if (o.hash == "crc32") return core::HashScheme::kCrc32;
  if (o.hash == "modulo") return core::HashScheme::kModulo;
  if (o.hash == "consistent") return core::HashScheme::kConsistent;
  std::fprintf(stderr, "unknown hash: %s\n", o.hash.c_str());
  usage(2);
}

// Any of the four systems behind one set of FileSystemClient pointers.
struct Rig {
  std::unique_ptr<cluster::GlusterTestbed> gluster;
  std::unique_ptr<cluster::LustreTestbed> lustre;
  std::unique_ptr<cluster::NfsTestbed> nfs;

  sim::EventLoop& loop() {
    if (gluster) return gluster->loop();
    if (lustre) return lustre->loop();
    return nfs->loop();
  }
  std::vector<fsapi::FileSystemClient*> clients() {
    std::vector<fsapi::FileSystemClient*> out;
    const auto grab = [&out](auto& tb) {
      for (std::size_t i = 0; i < tb.n_clients(); ++i) {
        out.push_back(&tb.client(i));
      }
    };
    if (gluster) grab(*gluster);
    if (lustre) grab(*lustre);
    if (nfs) grab(*nfs);
    return out;
  }
};

Rig build(const Options& o) {
  Rig rig;
  if (o.system == "imca" || o.system == "gluster") {
    cluster::GlusterTestbedConfig cfg;
    cfg.n_clients = o.clients;
    cfg.n_mcds = o.system == "imca" ? o.mcds : 0;
    if (o.bricks == 0 || o.replicas == 0) {
      std::fprintf(stderr, "--bricks/--replicas want values >= 1\n");
      usage(2);
    }
    cfg.n_bricks = o.bricks;
    cfg.n_replicas = o.replicas;
    cfg.transport = transport_of(o);
    cfg.imca.block_size = o.block;
    cfg.imca.hash = hash_of(o);
    cfg.imca.threaded_updates = o.threaded;
    cfg.imca.rdma_cache_path = o.rdma_cache;
    cfg.imca.partial_hit_reads = !o.no_partial_hit;
    cfg.imca.client_read_repair = !o.no_read_repair;
    cfg.imca.coalesce_reads = !o.no_coalesce;
    if (o.writeback) {
      if (o.system != "imca" || o.mcds == 0) {
        std::fprintf(stderr, "--writeback needs --system=imca with MCDs\n");
        usage(2);
      }
      cfg.imca.writeback = true;
      cfg.imca.wb_replicas = o.wb_replicas;
      cfg.imca.wb_quorum = o.wb_quorum;
      cfg.imca.wb_flush_delay = o.wb_flush_delay_ms * kMilli;
    }
    if (o.mcd_mb) cfg.mcd_memory = o.mcd_mb * kMiB;
    if (o.server_cache_mb) {
      cfg.server.page_cache_bytes = o.server_cache_mb * kMiB;
    }
    for (const auto& c : o.crashes) {
      if (c.mcd >= cfg.n_mcds) {
        std::fprintf(stderr, "--crash-mcd: daemon %zu out of range (%zu MCDs)\n",
                     c.mcd, cfg.n_mcds);
        usage(2);
      }
    }
    cfg.faults.seed = o.fault_seed;
    cfg.faults.spec.drop_request = o.fault_drop;
    cfg.faults.spec.drop_reply = o.fault_timeout;
    cfg.faults.spec.slow_reply = o.fault_slow;
    cfg.faults.spec.short_read = o.fault_short;
    cfg.faults.spec.slow_delay = o.fault_slow_ms * kMilli;
    cfg.faults.crashes = o.crashes;
    for (const auto& c : o.server_crashes) {
      if (c.brick >= o.bricks * o.replicas) {
        std::fprintf(stderr,
                     "--crash-brick: brick %zu out of range (%zux%zu grid)\n",
                     c.brick, o.bricks, o.replicas);
        usage(2);
      }
    }
    cfg.faults.server_crashes = o.server_crashes;
    if (o.server_slow_ms > 0) {
      cfg.faults.server_spec.slow_reply = 0.35;
      cfg.faults.server_spec.slow_delay = o.server_slow_ms * kMilli;
    }
    if (o.wb_flush_deadline_ms > 0) {
      cfg.server.write_behind = true;
      cfg.server.wb.flush_before_ack = true;
      cfg.server.wb.flush_deadline = o.wb_flush_deadline_ms * kMilli;
    }
    if (o.any_server_fault()) {
      // Brick faults without retries surface as hard workload errors; arm
      // the deadline/retry/replay machinery with the fault-matrix policy.
      // The attempt timeout must clear one cold disk access (~12 ms).
      // A replicated mount is SUPPOSED to give up on a dead minority and
      // commit on the survivors, so it runs the brick-matrix deadline
      // instead of riding whole crash windows out on retries.
      cfg.client.protocol.op_deadline =
          o.replicas > 1 ? 60 * kMilli : 400 * kMilli;
      cfg.client.protocol.attempt_timeout =
          o.replicas > 1 ? 20 * kMilli : 40 * kMilli;
      cfg.client.protocol.backoff_base = 1 * kMilli;
      cfg.client.protocol.backoff_cap = 8 * kMilli;
      cfg.client.protocol.eject_after = 3;
      cfg.client.protocol.probe_interval = 5 * kMilli;
    }
    if (o.mcd_timeout_ms != ~0ull) {
      cfg.imca.mcd_op_timeout = o.mcd_timeout_ms * kMilli;
    } else if (cfg.faults.active() || o.writeback) {
      // Faults without a deadline would ride the transport's 200 ms give-up;
      // arm the failover machinery with a sane default instead.
      cfg.imca.mcd_op_timeout = 2 * kMilli;
    }
    rig.gluster = std::make_unique<cluster::GlusterTestbed>(cfg);
  } else if (o.system == "lustre") {
    if (o.any_fault() || o.any_server_fault()) {
      std::fprintf(stderr,
                   "fault flags only apply to --system=imca|gluster\n");
      usage(2);
    }
    cluster::LustreTestbedConfig cfg;
    cfg.n_clients = o.clients;
    cfg.n_ds = o.ds;
    cfg.transport = transport_of(o);
    if (o.server_cache_mb) cfg.ds.page_cache_bytes = o.server_cache_mb * kMiB;
    rig.lustre = std::make_unique<cluster::LustreTestbed>(cfg);
  } else if (o.system == "nfs") {
    if (o.any_fault() || o.any_server_fault()) {
      std::fprintf(stderr,
                   "fault flags only apply to --system=imca|gluster\n");
      usage(2);
    }
    cluster::NfsTestbedConfig cfg;
    cfg.n_clients = o.clients;
    cfg.transport = transport_of(o);
    if (o.server_cache_mb) {
      cfg.server.page_cache_bytes = o.server_cache_mb * kMiB;
    }
    rig.nfs = std::make_unique<cluster::NfsTestbed>(cfg);
  } else {
    std::fprintf(stderr, "unknown system: %s\n", o.system.c_str());
    usage(2);
  }
  return rig;
}

void print_table(const Table& t, const Options& o) {
  if (o.csv) {
    t.print_csv();
  } else {
    t.print();
  }
}

int run_latency(Rig& rig, const Options& o, bool shared) {
  workload::LatencyOptions opt;
  opt.max_record = o.max_record;
  opt.records_per_size = o.records;
  opt.shared_file = shared;
  if (o.cold && rig.lustre) {
    opt.before_read_phase = [&rig](std::size_t) { rig.lustre->cold_all(); };
  }
  const auto series =
      workload::run_latency_benchmark(rig.loop(), rig.clients(), opt);
  Table t({"record_bytes", "read_us", "write_us"});
  for (const auto& [r, read_ns] : series.read_ns) {
    const auto w = series.write_ns.find(r);
    t.add_row({Table::cell(r), Table::cell(read_ns / 1e3),
               w == series.write_ns.end() ? "-" : Table::cell(w->second / 1e3)});
  }
  print_table(t, o);
  return 0;
}

int run_stat(Rig& rig, const Options& o) {
  workload::StatOptions opt;
  opt.n_files = o.files;
  const auto r = workload::run_stat_benchmark(rig.loop(), rig.clients(), opt);
  Table t({"metric", "value"});
  t.add_row({"files", Table::cell(static_cast<std::uint64_t>(o.files))});
  t.add_row({"clients", Table::cell(static_cast<std::uint64_t>(o.clients))});
  t.add_row({"total_stats", Table::cell(r.total_stats)});
  t.add_row({"max_node_seconds", Table::cell(r.max_node_seconds, 4)});
  t.add_row({"stats_per_second",
             Table::cell(static_cast<double>(r.total_stats) /
                             r.max_node_seconds,
                         0)});
  print_table(t, o);
  return 0;
}

int run_iozone(Rig& rig, const Options& o) {
  workload::IozoneOptions opt;
  opt.file_bytes = o.file_mb * kMiB;
  if (o.cold && rig.lustre) {
    opt.before_read_phase = [&rig](std::size_t) { rig.lustre->cold_all(); };
  }
  const auto r = workload::run_iozone(rig.loop(), rig.clients(), opt);
  Table t({"metric", "value"});
  t.add_row({"threads", Table::cell(static_cast<std::uint64_t>(o.clients))});
  t.add_row({"file_mb_per_thread",
             Table::cell(static_cast<std::uint64_t>(o.file_mb))});
  t.add_row({"write_MBps", Table::cell(r.aggregate_write_mbps, 1)});
  t.add_row({"read_MBps", Table::cell(r.aggregate_read_mbps, 1)});
  print_table(t, o);
  return 0;
}

void print_cache_report(Rig& rig) {
  if (!rig.gluster || !rig.gluster->imca_enabled()) return;
  const auto totals = rig.gluster->mcd_totals();
  std::printf("# MCD bank: gets=%llu hits=%llu misses=%llu evictions=%llu"
              " items=%llu bytes=%llu\n",
              static_cast<unsigned long long>(totals.cmd_get),
              static_cast<unsigned long long>(totals.get_hits),
              static_cast<unsigned long long>(totals.get_misses),
              static_cast<unsigned long long>(totals.evictions),
              static_cast<unsigned long long>(totals.curr_items),
              static_cast<unsigned long long>(totals.bytes));
  core::CmCacheStats cm;
  for (std::size_t i = 0; i < rig.gluster->n_clients(); ++i) {
    const auto& s = rig.gluster->cmcache(i).stats();
    cm.stat_hits += s.stat_hits;
    cm.stat_misses += s.stat_misses;
    cm.reads_from_cache += s.reads_from_cache;
    cm.reads_partial += s.reads_partial;
    cm.reads_forwarded += s.reads_forwarded;
    cm.range_fetches += s.range_fetches;
    cm.blocks_repaired += s.blocks_repaired;
    cm.coalesced_waiters += s.coalesced_waiters;
  }
  std::printf("# CMCache: from_cache=%llu partial=%llu forwarded=%llu"
              " range_fetches=%llu repaired=%llu coalesced=%llu"
              " stat_hits=%llu stat_misses=%llu\n",
              static_cast<unsigned long long>(cm.reads_from_cache),
              static_cast<unsigned long long>(cm.reads_partial),
              static_cast<unsigned long long>(cm.reads_forwarded),
              static_cast<unsigned long long>(cm.range_fetches),
              static_cast<unsigned long long>(cm.blocks_repaired),
              static_cast<unsigned long long>(cm.coalesced_waiters),
              static_cast<unsigned long long>(cm.stat_hits),
              static_cast<unsigned long long>(cm.stat_misses));

  if (const auto* inj = rig.gluster->fault_injector()) {
    const auto& fs = inj->stats();
    std::printf("# faults injected: drop_req=%llu drop_reply=%llu"
                " slow=%llu short=%llu clean_calls=%llu\n",
                static_cast<unsigned long long>(fs.drops_request),
                static_cast<unsigned long long>(fs.drops_reply),
                static_cast<unsigned long long>(fs.slow_replies),
                static_cast<unsigned long long>(fs.short_reads),
                static_cast<unsigned long long>(fs.clean_calls));
    core::FaultStats deg;
    mcclient::ClientStats cl;
    for (std::size_t i = 0; i < rig.gluster->n_clients(); ++i) {
      const auto& f = rig.gluster->cmcache(i).fault_stats();
      deg.degraded_reads += f.degraded_reads;
      deg.degraded_stats += f.degraded_stats;
      deg.repairs_dropped += f.repairs_dropped;
      deg.repairs_skipped_stale += f.repairs_skipped_stale;
      const auto& s = rig.gluster->cmcache(i).mcds().stats();
      cl.timeouts += s.timeouts;
      cl.truncated_replies += s.truncated_replies;
      cl.retries += s.retries;
      cl.ejections += s.ejections;
      cl.rejoins += s.rejoins;
      cl.dead_server_ops += s.dead_server_ops;
    }
    std::printf("# degraded: reads=%llu stats=%llu repairs_dropped=%llu"
                " repairs_stale=%llu timeouts=%llu torn=%llu retries=%llu"
                " ejections=%llu rejoins=%llu dead_ops=%llu\n",
                static_cast<unsigned long long>(deg.degraded_reads),
                static_cast<unsigned long long>(deg.degraded_stats),
                static_cast<unsigned long long>(deg.repairs_dropped),
                static_cast<unsigned long long>(deg.repairs_skipped_stale),
                static_cast<unsigned long long>(cl.timeouts),
                static_cast<unsigned long long>(cl.truncated_replies),
                static_cast<unsigned long long>(cl.retries),
                static_cast<unsigned long long>(cl.ejections),
                static_cast<unsigned long long>(cl.rejoins),
                static_cast<unsigned long long>(cl.dead_server_ops));
  }
}

// The §5f drill readout: what the brick survived and what the replay
// machinery did about it. Printed only when a server-fault flag armed it.
void print_server_fault_report(Rig& rig, const Options& o) {
  if (!rig.gluster || !o.any_server_fault()) return;
  const auto ss = rig.gluster->server_totals();
  std::printf("# brick faults: crashes=%llu restarts=%llu replies_lost=%llu"
              " sheds=%llu (admission=%llu expired=%llu io=%llu)"
              " wb_dropped_bytes=%llu\n",
              static_cast<unsigned long long>(ss.crashes),
              static_cast<unsigned long long>(ss.restarts),
              static_cast<unsigned long long>(ss.replies_lost_in_crash),
              static_cast<unsigned long long>(ss.sheds_admission +
                                              ss.sheds_expired + ss.sheds_io),
              static_cast<unsigned long long>(ss.sheds_admission),
              static_cast<unsigned long long>(ss.sheds_expired),
              static_cast<unsigned long long>(ss.sheds_io),
              static_cast<unsigned long long>(ss.wb_dropped_bytes));
  gluster::ProtocolClientStats pc;
  for (std::size_t i = 0; i < rig.gluster->n_clients(); ++i) {
    const auto s = rig.gluster->gluster_client(i).protocol_totals();
    pc.retries += s.retries;
    pc.replays += s.replays;
    pc.timeouts += s.timeouts;
    pc.sheds_seen += s.sheds_seen;
    pc.deadline_exhausted += s.deadline_exhausted;
    if (s.max_op_elapsed > pc.max_op_elapsed) {
      pc.max_op_elapsed = s.max_op_elapsed;
    }
  }
  std::printf("# replay: retries=%llu replays=%llu deduped=%llu parked=%llu"
              " dup_applies=%llu timeouts=%llu sheds_seen=%llu"
              " deadline_exhausted=%llu max_op_ms=%.2f\n",
              static_cast<unsigned long long>(pc.retries),
              static_cast<unsigned long long>(pc.replays),
              static_cast<unsigned long long>(ss.replays_deduped),
              static_cast<unsigned long long>(ss.replays_parked),
              static_cast<unsigned long long>(ss.duplicate_applies),
              static_cast<unsigned long long>(pc.timeouts),
              static_cast<unsigned long long>(pc.sheds_seen),
              static_cast<unsigned long long>(pc.deadline_exhausted),
              static_cast<double>(pc.max_op_elapsed) / kMilli);
  if (rig.gluster->imca_enabled()) {
    unsigned long long serves = 0, bypass = 0;
    for (std::size_t i = 0; i < rig.gluster->n_clients(); ++i) {
      const auto& f = rig.gluster->cmcache(i).fault_stats();
      serves += f.brownout_serves;
      bypass += f.brownout_stale_bypass;
    }
    std::printf("# brownout: serves=%llu stale_bypass=%llu\n", serves, bypass);
  }
}

// Grid drills (--bricks/--replicas > 1): what the cluster translators did —
// quorum commits, read-child failover, self-heal traffic — summed over every
// mount's replicate groups, plus a per-brick fop/crash breakdown.
void print_grid_report(Rig& rig, const Options& o) {
  if (!rig.gluster || (o.bricks == 1 && o.replicas == 1)) return;
  if (o.replicas > 1) {
    gluster::ReplicateStats rs;
    for (std::size_t c = 0; c < rig.gluster->n_clients(); ++c) {
      auto& mount = rig.gluster->gluster_client(c);
      for (std::size_t g = 0; g < mount.n_groups(); ++g) {
        if (const auto* grp = mount.replica_group(g)) {
          const auto& s = grp->stats();
          rs.mutations += s.mutations;
          rs.quorum_short_writes += s.quorum_short_writes;
          rs.partial_acks += s.partial_acks;
          rs.read_child_switches += s.read_child_switches;
          rs.reads_degraded += s.reads_degraded;
          rs.heals_scheduled += s.heals_scheduled;
          rs.heals_completed += s.heals_completed;
          rs.heal_bytes_copied += s.heal_bytes_copied;
        }
      }
    }
    std::printf("# replicate: mutations=%llu short_writes=%llu"
                " partial_acks=%llu switches=%llu degraded=%llu"
                " heals=%llu heal_bytes=%llu\n",
                static_cast<unsigned long long>(rs.mutations),
                static_cast<unsigned long long>(rs.quorum_short_writes),
                static_cast<unsigned long long>(rs.partial_acks),
                static_cast<unsigned long long>(rs.read_child_switches),
                static_cast<unsigned long long>(rs.reads_degraded),
                static_cast<unsigned long long>(rs.heals_completed),
                static_cast<unsigned long long>(rs.heal_bytes_copied));
  }
  for (std::size_t b = 0; b < rig.gluster->n_brick_servers(); ++b) {
    const auto s = rig.gluster->brick(b).stats();
    std::printf("# brick %zu.%zu: fops=%llu crashes=%llu restarts=%llu\n",
                b / o.replicas, b % o.replicas,
                static_cast<unsigned long long>(s.fops),
                static_cast<unsigned long long>(s.crashes),
                static_cast<unsigned long long>(s.restarts));
  }
}

}  // namespace

void print_writeback_report(Rig& rig, const Options& o) {
  if (!o.writeback || !rig.gluster) return;
  const auto wb = rig.gluster->writeback_totals();
  std::printf("# writeback: absorbed=%llu absorbed_bytes=%llu flushed=%llu"
              " lost=%llu degraded=%llu sheds=%llu retries=%llu"
              " requeues=%llu overlay_reads=%llu\n",
              static_cast<unsigned long long>(wb.absorbed),
              static_cast<unsigned long long>(wb.absorbed_bytes),
              static_cast<unsigned long long>(wb.flushed_extents),
              static_cast<unsigned long long>(wb.lost_extents),
              static_cast<unsigned long long>(wb.degraded_writes),
              static_cast<unsigned long long>(wb.backpressure_sheds),
              static_cast<unsigned long long>(wb.flush_retries),
              static_cast<unsigned long long>(wb.flush_requeues),
              static_cast<unsigned long long>(wb.overlay_reads));
}

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  set_legacy_copy_path(o.legacy_copy_path);
  Rig rig = build(o);

  std::printf("# system=%s workload=%s transport=%s clients=%zu",
              o.system.c_str(), o.workload.c_str(), o.transport.c_str(),
              o.clients);
  if (o.system == "imca") {
    std::printf(" mcds=%zu block=%llu hash=%s%s%s", o.mcds,
                static_cast<unsigned long long>(o.block), o.hash.c_str(),
                o.threaded ? " threaded" : "",
                o.rdma_cache ? " rdma-cache" : "");
  }
  if (o.system == "lustre") {
    std::printf(" ds=%zu%s", o.ds, o.cold ? " cold" : "");
  }
  if ((o.system == "imca" || o.system == "gluster") &&
      (o.bricks > 1 || o.replicas > 1)) {
    std::printf(" bricks=%zux%zu", o.bricks, o.replicas);
  }
  std::printf("\n");

  int rc = 2;
  if (o.workload == "latency") {
    rc = run_latency(rig, o, /*shared=*/false);
  } else if (o.workload == "shared") {
    rc = run_latency(rig, o, /*shared=*/true);
  } else if (o.workload == "stat") {
    rc = run_stat(rig, o);
  } else if (o.workload == "iozone") {
    rc = run_iozone(rig, o);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
    usage(2);
  }
  print_cache_report(rig);
  print_writeback_report(rig, o);
  print_server_fault_report(rig, o);
  print_grid_report(rig, o);
  const BufferStats& bs = buffer_stats();
  std::printf("# copy_ledger%s: segments=%llu segment_bytes=%llu"
              " bytes_copied=%llu gathers=%llu slices=%llu\n",
              o.legacy_copy_path ? " (legacy-copy-path)" : "",
              static_cast<unsigned long long>(bs.segments_allocated),
              static_cast<unsigned long long>(bs.segment_bytes),
              static_cast<unsigned long long>(bs.bytes_copied),
              static_cast<unsigned long long>(bs.gather_calls),
              static_cast<unsigned long long>(bs.view_slices));
  std::printf("# simulated_time=%s\n",
              format_duration(static_cast<double>(rig.loop().now())).c_str());
  return rc;
}
