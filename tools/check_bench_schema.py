#!/usr/bin/env python3
"""Validate BENCH_*.json files against the imca-bench/v1 schema.

Usage: check_bench_schema.py FILE [FILE...]

The file is one JSON object:

    {"schema": "imca-bench/v1", "git_rev": "<rev>", "results": [
        {"schema": ..., "git_rev": ..., "bench": ..., "events": ...,
         "wall_ms": ..., "events_per_sec": ..., "peak_rss_kb": ...}, ...]}

Every record repeats the schema + git_rev so any single line scraped out of
a CI artifact is self-describing. Only shape and types are checked —
absolute perf numbers are deliberately never gated (EXPERIMENTS.md "Perf
trajectory"): the trajectory across PRs is the signal, not any one run on a
shared CI runner. Exit 0 iff every file validates; stdlib only.
"""

import json
import numbers
import sys

SCHEMA = "imca-bench/v1"

# field -> (type check, human-readable expectation)
RECORD_FIELDS = {
    "schema": (lambda v: v == SCHEMA, f'"{SCHEMA}"'),
    "git_rev": (lambda v: isinstance(v, str) and v, "non-empty string"),
    "bench": (lambda v: isinstance(v, str) and v, "non-empty string"),
    "events": (
        lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
        "non-negative integer",
    ),
    "wall_ms": (
        lambda v: isinstance(v, numbers.Real) and not isinstance(v, bool)
        and v >= 0,
        "non-negative number",
    ),
    "events_per_sec": (
        lambda v: isinstance(v, numbers.Real) and not isinstance(v, bool)
        and v >= 0,
        "non-negative number",
    ),
    "peak_rss_kb": (
        lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
        "non-negative integer",
    ),
}


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA:
        errors.append(f'{path}: top-level "schema" must be "{SCHEMA}", '
                      f"got {doc.get('schema')!r}")
    if not (isinstance(doc.get("git_rev"), str) and doc.get("git_rev")):
        errors.append(f'{path}: top-level "git_rev" must be a non-empty string')
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        errors.append(f'{path}: "results" must be a non-empty array')
        return errors

    for i, rec in enumerate(results):
        where = f"{path}: results[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: must be an object")
            continue
        for field, (ok, want) in RECORD_FIELDS.items():
            if field not in rec:
                errors.append(f'{where}: missing "{field}"')
            elif not ok(rec[field]):
                errors.append(f'{where}: "{field}" must be {want}, '
                              f"got {rec[field]!r}")
        for extra in sorted(set(rec) - set(RECORD_FIELDS)):
            errors.append(f'{where}: unknown field "{extra}" '
                          "(bump the schema version to extend it)")
        if rec.get("git_rev") != doc.get("git_rev"):
            errors.append(f'{where}: record git_rev {rec.get("git_rev")!r} '
                          f'disagrees with file git_rev {doc.get("git_rev")!r}')
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failures += 1
            for e in errors:
                print(e, file=sys.stderr)
        else:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["results"])
            print(f"{path}: OK ({n} record{'s' if n != 1 else ''}, {SCHEMA})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
