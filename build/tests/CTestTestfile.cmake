# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/memcache_test[1]_include.cmake")
include("/root/repo/build/tests/mcclient_test[1]_include.cmake")
include("/root/repo/build/tests/gluster_test[1]_include.cmake")
include("/root/repo/build/tests/imca_test[1]_include.cmake")
include("/root/repo/build/tests/lustre_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/memcache_ext_test[1]_include.cmake")
include("/root/repo/build/tests/cached_lustre_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
include("/root/repo/build/tests/store_property_test[1]_include.cmake")
add_test(imcasim_smoke_imca "/root/repo/build/tools/imcasim" "--system=imca" "--mcds=2" "--clients=4" "--workload=stat" "--files=300")
set_tests_properties(imcasim_smoke_imca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;55;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(imcasim_smoke_lustre "/root/repo/build/tools/imcasim" "--system=lustre" "--ds=2" "--cold" "--clients=2" "--workload=latency" "--max-record=4096" "--records=32")
set_tests_properties(imcasim_smoke_lustre PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;58;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(imcasim_smoke_nfs "/root/repo/build/tools/imcasim" "--system=nfs" "--transport=gige" "--clients=2" "--workload=iozone" "--file-mb=4")
set_tests_properties(imcasim_smoke_nfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(imcasim_smoke_rdma_modulo "/root/repo/build/tools/imcasim" "--system=imca" "--mcds=3" "--rdma-cache" "--hash=modulo" "--threaded" "--clients=2" "--workload=iozone" "--file-mb=4")
set_tests_properties(imcasim_smoke_rdma_modulo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;64;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(failure_drill_example "/root/repo/build/examples/failure_drill")
set_tests_properties(failure_drill_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;67;add_test;/root/repo/tests/CMakeLists.txt;0;")
