file(REMOVE_RECURSE
  "libimca_lustre.a"
)
