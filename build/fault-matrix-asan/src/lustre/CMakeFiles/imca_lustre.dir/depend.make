# Empty dependencies file for imca_lustre.
# This may be replaced when dependencies are built.
