file(REMOVE_RECURSE
  "CMakeFiles/imca_lustre.dir/cached_client.cc.o"
  "CMakeFiles/imca_lustre.dir/cached_client.cc.o.d"
  "CMakeFiles/imca_lustre.dir/client.cc.o"
  "CMakeFiles/imca_lustre.dir/client.cc.o.d"
  "CMakeFiles/imca_lustre.dir/data_server.cc.o"
  "CMakeFiles/imca_lustre.dir/data_server.cc.o.d"
  "CMakeFiles/imca_lustre.dir/mds.cc.o"
  "CMakeFiles/imca_lustre.dir/mds.cc.o.d"
  "libimca_lustre.a"
  "libimca_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
