file(REMOVE_RECURSE
  "libimca_net.a"
)
