file(REMOVE_RECURSE
  "CMakeFiles/imca_net.dir/fabric.cc.o"
  "CMakeFiles/imca_net.dir/fabric.cc.o.d"
  "CMakeFiles/imca_net.dir/fault.cc.o"
  "CMakeFiles/imca_net.dir/fault.cc.o.d"
  "CMakeFiles/imca_net.dir/rpc.cc.o"
  "CMakeFiles/imca_net.dir/rpc.cc.o.d"
  "CMakeFiles/imca_net.dir/transport.cc.o"
  "CMakeFiles/imca_net.dir/transport.cc.o.d"
  "libimca_net.a"
  "libimca_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
