# Empty compiler generated dependencies file for imca_net.
# This may be replaced when dependencies are built.
