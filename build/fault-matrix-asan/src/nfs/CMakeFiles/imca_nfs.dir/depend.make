# Empty dependencies file for imca_nfs.
# This may be replaced when dependencies are built.
