file(REMOVE_RECURSE
  "CMakeFiles/imca_nfs.dir/nfs.cc.o"
  "CMakeFiles/imca_nfs.dir/nfs.cc.o.d"
  "libimca_nfs.a"
  "libimca_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
