# Empty compiler generated dependencies file for imca_nfs.
# This may be replaced when dependencies are built.
