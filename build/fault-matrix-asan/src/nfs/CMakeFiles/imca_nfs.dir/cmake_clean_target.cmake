file(REMOVE_RECURSE
  "libimca_nfs.a"
)
