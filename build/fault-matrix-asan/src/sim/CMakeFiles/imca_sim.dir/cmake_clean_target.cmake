file(REMOVE_RECURSE
  "libimca_sim.a"
)
