# Empty compiler generated dependencies file for imca_sim.
# This may be replaced when dependencies are built.
