file(REMOVE_RECURSE
  "CMakeFiles/imca_sim.dir/event_loop.cc.o"
  "CMakeFiles/imca_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/imca_sim.dir/sync.cc.o"
  "CMakeFiles/imca_sim.dir/sync.cc.o.d"
  "libimca_sim.a"
  "libimca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
