# CMake generated Testfile for 
# Source directory: /root/repo/src/memcache
# Build directory: /root/repo/build/fault-matrix-asan/src/memcache
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
