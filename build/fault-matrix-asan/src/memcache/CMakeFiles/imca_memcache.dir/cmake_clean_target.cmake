file(REMOVE_RECURSE
  "libimca_memcache.a"
)
