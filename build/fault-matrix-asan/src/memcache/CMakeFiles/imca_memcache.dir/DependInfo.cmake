
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memcache/cache.cc" "src/memcache/CMakeFiles/imca_memcache.dir/cache.cc.o" "gcc" "src/memcache/CMakeFiles/imca_memcache.dir/cache.cc.o.d"
  "/root/repo/src/memcache/protocol.cc" "src/memcache/CMakeFiles/imca_memcache.dir/protocol.cc.o" "gcc" "src/memcache/CMakeFiles/imca_memcache.dir/protocol.cc.o.d"
  "/root/repo/src/memcache/server.cc" "src/memcache/CMakeFiles/imca_memcache.dir/server.cc.o" "gcc" "src/memcache/CMakeFiles/imca_memcache.dir/server.cc.o.d"
  "/root/repo/src/memcache/slab.cc" "src/memcache/CMakeFiles/imca_memcache.dir/slab.cc.o" "gcc" "src/memcache/CMakeFiles/imca_memcache.dir/slab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/fault-matrix-asan/src/common/CMakeFiles/imca_common.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/sim/CMakeFiles/imca_sim.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/net/CMakeFiles/imca_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
