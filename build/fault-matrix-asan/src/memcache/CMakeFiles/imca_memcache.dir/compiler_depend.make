# Empty compiler generated dependencies file for imca_memcache.
# This may be replaced when dependencies are built.
