file(REMOVE_RECURSE
  "CMakeFiles/imca_memcache.dir/cache.cc.o"
  "CMakeFiles/imca_memcache.dir/cache.cc.o.d"
  "CMakeFiles/imca_memcache.dir/protocol.cc.o"
  "CMakeFiles/imca_memcache.dir/protocol.cc.o.d"
  "CMakeFiles/imca_memcache.dir/server.cc.o"
  "CMakeFiles/imca_memcache.dir/server.cc.o.d"
  "CMakeFiles/imca_memcache.dir/slab.cc.o"
  "CMakeFiles/imca_memcache.dir/slab.cc.o.d"
  "libimca_memcache.a"
  "libimca_memcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_memcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
