file(REMOVE_RECURSE
  "libimca_store.a"
)
