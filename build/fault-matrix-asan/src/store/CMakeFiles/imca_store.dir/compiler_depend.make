# Empty compiler generated dependencies file for imca_store.
# This may be replaced when dependencies are built.
