file(REMOVE_RECURSE
  "CMakeFiles/imca_store.dir/block_device.cc.o"
  "CMakeFiles/imca_store.dir/block_device.cc.o.d"
  "CMakeFiles/imca_store.dir/disk.cc.o"
  "CMakeFiles/imca_store.dir/disk.cc.o.d"
  "CMakeFiles/imca_store.dir/object_store.cc.o"
  "CMakeFiles/imca_store.dir/object_store.cc.o.d"
  "CMakeFiles/imca_store.dir/page_cache.cc.o"
  "CMakeFiles/imca_store.dir/page_cache.cc.o.d"
  "libimca_store.a"
  "libimca_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
