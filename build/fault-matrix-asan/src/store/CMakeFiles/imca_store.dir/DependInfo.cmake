
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/block_device.cc" "src/store/CMakeFiles/imca_store.dir/block_device.cc.o" "gcc" "src/store/CMakeFiles/imca_store.dir/block_device.cc.o.d"
  "/root/repo/src/store/disk.cc" "src/store/CMakeFiles/imca_store.dir/disk.cc.o" "gcc" "src/store/CMakeFiles/imca_store.dir/disk.cc.o.d"
  "/root/repo/src/store/object_store.cc" "src/store/CMakeFiles/imca_store.dir/object_store.cc.o" "gcc" "src/store/CMakeFiles/imca_store.dir/object_store.cc.o.d"
  "/root/repo/src/store/page_cache.cc" "src/store/CMakeFiles/imca_store.dir/page_cache.cc.o" "gcc" "src/store/CMakeFiles/imca_store.dir/page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/fault-matrix-asan/src/common/CMakeFiles/imca_common.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/sim/CMakeFiles/imca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
