# Empty dependencies file for imca_workload.
# This may be replaced when dependencies are built.
