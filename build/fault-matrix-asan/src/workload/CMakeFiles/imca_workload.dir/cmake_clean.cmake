file(REMOVE_RECURSE
  "CMakeFiles/imca_workload.dir/iozone.cc.o"
  "CMakeFiles/imca_workload.dir/iozone.cc.o.d"
  "CMakeFiles/imca_workload.dir/latency_bench.cc.o"
  "CMakeFiles/imca_workload.dir/latency_bench.cc.o.d"
  "CMakeFiles/imca_workload.dir/stat_bench.cc.o"
  "CMakeFiles/imca_workload.dir/stat_bench.cc.o.d"
  "libimca_workload.a"
  "libimca_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
