file(REMOVE_RECURSE
  "libimca_workload.a"
)
