file(REMOVE_RECURSE
  "CMakeFiles/imca_mcclient.dir/client.cc.o"
  "CMakeFiles/imca_mcclient.dir/client.cc.o.d"
  "CMakeFiles/imca_mcclient.dir/selector.cc.o"
  "CMakeFiles/imca_mcclient.dir/selector.cc.o.d"
  "libimca_mcclient.a"
  "libimca_mcclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_mcclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
