file(REMOVE_RECURSE
  "libimca_mcclient.a"
)
