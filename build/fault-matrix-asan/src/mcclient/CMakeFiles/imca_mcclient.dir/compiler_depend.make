# Empty compiler generated dependencies file for imca_mcclient.
# This may be replaced when dependencies are built.
