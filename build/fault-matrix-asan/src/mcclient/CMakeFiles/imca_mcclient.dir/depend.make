# Empty dependencies file for imca_mcclient.
# This may be replaced when dependencies are built.
