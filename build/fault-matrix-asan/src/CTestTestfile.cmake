# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/fault-matrix-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("store")
subdirs("memcache")
subdirs("mcclient")
subdirs("fsapi")
subdirs("gluster")
subdirs("imca")
subdirs("lustre")
subdirs("nfs")
subdirs("cluster")
subdirs("workload")
