
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gluster/client.cc" "src/gluster/CMakeFiles/imca_gluster.dir/client.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/client.cc.o.d"
  "/root/repo/src/gluster/posix.cc" "src/gluster/CMakeFiles/imca_gluster.dir/posix.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/posix.cc.o.d"
  "/root/repo/src/gluster/protocol.cc" "src/gluster/CMakeFiles/imca_gluster.dir/protocol.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/protocol.cc.o.d"
  "/root/repo/src/gluster/protocol_client.cc" "src/gluster/CMakeFiles/imca_gluster.dir/protocol_client.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/protocol_client.cc.o.d"
  "/root/repo/src/gluster/read_ahead.cc" "src/gluster/CMakeFiles/imca_gluster.dir/read_ahead.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/read_ahead.cc.o.d"
  "/root/repo/src/gluster/server.cc" "src/gluster/CMakeFiles/imca_gluster.dir/server.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/server.cc.o.d"
  "/root/repo/src/gluster/write_behind.cc" "src/gluster/CMakeFiles/imca_gluster.dir/write_behind.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/write_behind.cc.o.d"
  "/root/repo/src/gluster/xlator.cc" "src/gluster/CMakeFiles/imca_gluster.dir/xlator.cc.o" "gcc" "src/gluster/CMakeFiles/imca_gluster.dir/xlator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/fault-matrix-asan/src/common/CMakeFiles/imca_common.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/sim/CMakeFiles/imca_sim.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/net/CMakeFiles/imca_net.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/store/CMakeFiles/imca_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
