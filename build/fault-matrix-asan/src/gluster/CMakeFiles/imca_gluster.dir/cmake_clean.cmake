file(REMOVE_RECURSE
  "CMakeFiles/imca_gluster.dir/client.cc.o"
  "CMakeFiles/imca_gluster.dir/client.cc.o.d"
  "CMakeFiles/imca_gluster.dir/posix.cc.o"
  "CMakeFiles/imca_gluster.dir/posix.cc.o.d"
  "CMakeFiles/imca_gluster.dir/protocol.cc.o"
  "CMakeFiles/imca_gluster.dir/protocol.cc.o.d"
  "CMakeFiles/imca_gluster.dir/protocol_client.cc.o"
  "CMakeFiles/imca_gluster.dir/protocol_client.cc.o.d"
  "CMakeFiles/imca_gluster.dir/read_ahead.cc.o"
  "CMakeFiles/imca_gluster.dir/read_ahead.cc.o.d"
  "CMakeFiles/imca_gluster.dir/server.cc.o"
  "CMakeFiles/imca_gluster.dir/server.cc.o.d"
  "CMakeFiles/imca_gluster.dir/write_behind.cc.o"
  "CMakeFiles/imca_gluster.dir/write_behind.cc.o.d"
  "CMakeFiles/imca_gluster.dir/xlator.cc.o"
  "CMakeFiles/imca_gluster.dir/xlator.cc.o.d"
  "libimca_gluster.a"
  "libimca_gluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_gluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
