# Empty compiler generated dependencies file for imca_gluster.
# This may be replaced when dependencies are built.
