file(REMOVE_RECURSE
  "libimca_gluster.a"
)
