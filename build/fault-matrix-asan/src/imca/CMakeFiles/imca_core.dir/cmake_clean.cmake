file(REMOVE_RECURSE
  "CMakeFiles/imca_core.dir/cmcache.cc.o"
  "CMakeFiles/imca_core.dir/cmcache.cc.o.d"
  "CMakeFiles/imca_core.dir/smcache.cc.o"
  "CMakeFiles/imca_core.dir/smcache.cc.o.d"
  "libimca_core.a"
  "libimca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
