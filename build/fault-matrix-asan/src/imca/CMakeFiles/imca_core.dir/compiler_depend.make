# Empty compiler generated dependencies file for imca_core.
# This may be replaced when dependencies are built.
