file(REMOVE_RECURSE
  "libimca_core.a"
)
