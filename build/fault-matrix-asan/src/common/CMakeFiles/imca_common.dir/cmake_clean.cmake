file(REMOVE_RECURSE
  "CMakeFiles/imca_common.dir/bytebuf.cc.o"
  "CMakeFiles/imca_common.dir/bytebuf.cc.o.d"
  "CMakeFiles/imca_common.dir/crc32.cc.o"
  "CMakeFiles/imca_common.dir/crc32.cc.o.d"
  "CMakeFiles/imca_common.dir/errc.cc.o"
  "CMakeFiles/imca_common.dir/errc.cc.o.d"
  "CMakeFiles/imca_common.dir/log.cc.o"
  "CMakeFiles/imca_common.dir/log.cc.o.d"
  "CMakeFiles/imca_common.dir/stats.cc.o"
  "CMakeFiles/imca_common.dir/stats.cc.o.d"
  "CMakeFiles/imca_common.dir/table.cc.o"
  "CMakeFiles/imca_common.dir/table.cc.o.d"
  "libimca_common.a"
  "libimca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
