file(REMOVE_RECURSE
  "libimca_common.a"
)
