# Empty dependencies file for imca_common.
# This may be replaced when dependencies are built.
