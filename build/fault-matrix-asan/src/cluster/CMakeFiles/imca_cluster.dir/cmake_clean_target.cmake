file(REMOVE_RECURSE
  "libimca_cluster.a"
)
