# Empty compiler generated dependencies file for imca_cluster.
# This may be replaced when dependencies are built.
