file(REMOVE_RECURSE
  "CMakeFiles/imca_cluster.dir/testbed.cc.o"
  "CMakeFiles/imca_cluster.dir/testbed.cc.o.d"
  "libimca_cluster.a"
  "libimca_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
