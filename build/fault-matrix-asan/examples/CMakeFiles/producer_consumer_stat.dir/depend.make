# Empty dependencies file for producer_consumer_stat.
# This may be replaced when dependencies are built.
