file(REMOVE_RECURSE
  "CMakeFiles/producer_consumer_stat.dir/producer_consumer_stat.cpp.o"
  "CMakeFiles/producer_consumer_stat.dir/producer_consumer_stat.cpp.o.d"
  "producer_consumer_stat"
  "producer_consumer_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/producer_consumer_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
