file(REMOVE_RECURSE
  "CMakeFiles/webserver_smallfiles.dir/webserver_smallfiles.cpp.o"
  "CMakeFiles/webserver_smallfiles.dir/webserver_smallfiles.cpp.o.d"
  "webserver_smallfiles"
  "webserver_smallfiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_smallfiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
