# Empty compiler generated dependencies file for webserver_smallfiles.
# This may be replaced when dependencies are built.
