file(REMOVE_RECURSE
  "CMakeFiles/fig08_latency_vary_clients.dir/fig08_latency_vary_clients.cc.o"
  "CMakeFiles/fig08_latency_vary_clients.dir/fig08_latency_vary_clients.cc.o.d"
  "fig08_latency_vary_clients"
  "fig08_latency_vary_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_latency_vary_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
