# Empty compiler generated dependencies file for fig08_latency_vary_clients.
# This may be replaced when dependencies are built.
