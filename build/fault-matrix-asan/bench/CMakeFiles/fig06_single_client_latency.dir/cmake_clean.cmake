file(REMOVE_RECURSE
  "CMakeFiles/fig06_single_client_latency.dir/fig06_single_client_latency.cc.o"
  "CMakeFiles/fig06_single_client_latency.dir/fig06_single_client_latency.cc.o.d"
  "fig06_single_client_latency"
  "fig06_single_client_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_single_client_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
