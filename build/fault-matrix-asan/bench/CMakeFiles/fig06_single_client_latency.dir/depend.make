# Empty dependencies file for fig06_single_client_latency.
# This may be replaced when dependencies are built.
