file(REMOVE_RECURSE
  "CMakeFiles/ablation_future_work.dir/ablation_future_work.cc.o"
  "CMakeFiles/ablation_future_work.dir/ablation_future_work.cc.o.d"
  "ablation_future_work"
  "ablation_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
