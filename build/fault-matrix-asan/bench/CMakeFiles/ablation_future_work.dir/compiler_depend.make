# Empty compiler generated dependencies file for ablation_future_work.
# This may be replaced when dependencies are built.
