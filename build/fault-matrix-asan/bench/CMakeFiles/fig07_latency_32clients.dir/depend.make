# Empty dependencies file for fig07_latency_32clients.
# This may be replaced when dependencies are built.
