file(REMOVE_RECURSE
  "CMakeFiles/fig07_latency_32clients.dir/fig07_latency_32clients.cc.o"
  "CMakeFiles/fig07_latency_32clients.dir/fig07_latency_32clients.cc.o.d"
  "fig07_latency_32clients"
  "fig07_latency_32clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_latency_32clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
