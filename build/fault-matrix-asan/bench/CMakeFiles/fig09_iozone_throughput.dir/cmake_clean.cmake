file(REMOVE_RECURSE
  "CMakeFiles/fig09_iozone_throughput.dir/fig09_iozone_throughput.cc.o"
  "CMakeFiles/fig09_iozone_throughput.dir/fig09_iozone_throughput.cc.o.d"
  "fig09_iozone_throughput"
  "fig09_iozone_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_iozone_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
