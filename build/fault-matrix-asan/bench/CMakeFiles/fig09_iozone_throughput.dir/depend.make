# Empty dependencies file for fig09_iozone_throughput.
# This may be replaced when dependencies are built.
