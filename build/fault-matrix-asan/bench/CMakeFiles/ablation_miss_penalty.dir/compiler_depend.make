# Empty compiler generated dependencies file for ablation_miss_penalty.
# This may be replaced when dependencies are built.
