file(REMOVE_RECURSE
  "CMakeFiles/ablation_miss_penalty.dir/ablation_miss_penalty.cc.o"
  "CMakeFiles/ablation_miss_penalty.dir/ablation_miss_penalty.cc.o.d"
  "ablation_miss_penalty"
  "ablation_miss_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_miss_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
