file(REMOVE_RECURSE
  "CMakeFiles/fig10_shared_file.dir/fig10_shared_file.cc.o"
  "CMakeFiles/fig10_shared_file.dir/fig10_shared_file.cc.o.d"
  "fig10_shared_file"
  "fig10_shared_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_shared_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
