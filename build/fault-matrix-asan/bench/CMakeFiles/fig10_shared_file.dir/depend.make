# Empty dependencies file for fig10_shared_file.
# This may be replaced when dependencies are built.
