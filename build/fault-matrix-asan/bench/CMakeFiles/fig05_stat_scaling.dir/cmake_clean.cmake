file(REMOVE_RECURSE
  "CMakeFiles/fig05_stat_scaling.dir/fig05_stat_scaling.cc.o"
  "CMakeFiles/fig05_stat_scaling.dir/fig05_stat_scaling.cc.o.d"
  "fig05_stat_scaling"
  "fig05_stat_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stat_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
