# Empty compiler generated dependencies file for fig05_stat_scaling.
# This may be replaced when dependencies are built.
