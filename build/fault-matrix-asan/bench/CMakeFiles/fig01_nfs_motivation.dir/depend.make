# Empty dependencies file for fig01_nfs_motivation.
# This may be replaced when dependencies are built.
