# Empty compiler generated dependencies file for cached_lustre_test.
# This may be replaced when dependencies are built.
