file(REMOVE_RECURSE
  "CMakeFiles/cached_lustre_test.dir/cached_lustre_test.cc.o"
  "CMakeFiles/cached_lustre_test.dir/cached_lustre_test.cc.o.d"
  "cached_lustre_test"
  "cached_lustre_test.pdb"
  "cached_lustre_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_lustre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
