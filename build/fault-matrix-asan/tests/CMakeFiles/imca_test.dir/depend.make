# Empty dependencies file for imca_test.
# This may be replaced when dependencies are built.
