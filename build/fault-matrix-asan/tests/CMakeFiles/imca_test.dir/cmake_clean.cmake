file(REMOVE_RECURSE
  "CMakeFiles/imca_test.dir/imca_test.cc.o"
  "CMakeFiles/imca_test.dir/imca_test.cc.o.d"
  "imca_test"
  "imca_test.pdb"
  "imca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
