file(REMOVE_RECURSE
  "CMakeFiles/mcclient_test.dir/mcclient_test.cc.o"
  "CMakeFiles/mcclient_test.dir/mcclient_test.cc.o.d"
  "mcclient_test"
  "mcclient_test.pdb"
  "mcclient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcclient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
