# Empty compiler generated dependencies file for mcclient_test.
# This may be replaced when dependencies are built.
