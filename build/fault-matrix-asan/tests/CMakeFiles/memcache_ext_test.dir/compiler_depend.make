# Empty compiler generated dependencies file for memcache_ext_test.
# This may be replaced when dependencies are built.
