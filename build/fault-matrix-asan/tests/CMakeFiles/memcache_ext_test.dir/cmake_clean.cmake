file(REMOVE_RECURSE
  "CMakeFiles/memcache_ext_test.dir/memcache_ext_test.cc.o"
  "CMakeFiles/memcache_ext_test.dir/memcache_ext_test.cc.o.d"
  "memcache_ext_test"
  "memcache_ext_test.pdb"
  "memcache_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcache_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
