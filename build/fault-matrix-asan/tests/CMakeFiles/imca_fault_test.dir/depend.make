# Empty dependencies file for imca_fault_test.
# This may be replaced when dependencies are built.
