file(REMOVE_RECURSE
  "CMakeFiles/imca_fault_test.dir/imca_fault_test.cc.o"
  "CMakeFiles/imca_fault_test.dir/imca_fault_test.cc.o.d"
  "imca_fault_test"
  "imca_fault_test.pdb"
  "imca_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
