# Empty custom commands generated dependencies file for imca_fault_matrix_asan.
# This may be replaced when dependencies are built.
