file(REMOVE_RECURSE
  "CMakeFiles/imca_fault_matrix_asan"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/imca_fault_matrix_asan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
