file(REMOVE_RECURSE
  "libimca_test_harness.a"
)
