file(REMOVE_RECURSE
  "CMakeFiles/imca_test_harness.dir/harness/workload_harness.cc.o"
  "CMakeFiles/imca_test_harness.dir/harness/workload_harness.cc.o.d"
  "libimca_test_harness.a"
  "libimca_test_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
