# Empty dependencies file for imca_test_harness.
# This may be replaced when dependencies are built.
