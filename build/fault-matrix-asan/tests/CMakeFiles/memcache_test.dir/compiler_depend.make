# Empty compiler generated dependencies file for memcache_test.
# This may be replaced when dependencies are built.
