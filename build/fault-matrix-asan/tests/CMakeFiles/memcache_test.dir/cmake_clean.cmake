file(REMOVE_RECURSE
  "CMakeFiles/memcache_test.dir/memcache_test.cc.o"
  "CMakeFiles/memcache_test.dir/memcache_test.cc.o.d"
  "memcache_test"
  "memcache_test.pdb"
  "memcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
