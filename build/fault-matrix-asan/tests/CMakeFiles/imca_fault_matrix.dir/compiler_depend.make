# Empty compiler generated dependencies file for imca_fault_matrix.
# This may be replaced when dependencies are built.
