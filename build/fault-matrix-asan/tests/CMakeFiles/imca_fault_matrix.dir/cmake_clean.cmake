file(REMOVE_RECURSE
  "CMakeFiles/imca_fault_matrix.dir/harness/fault_matrix_main.cc.o"
  "CMakeFiles/imca_fault_matrix.dir/harness/fault_matrix_main.cc.o.d"
  "imca_fault_matrix"
  "imca_fault_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_fault_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
