
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/imca_misspath_test.cc" "tests/CMakeFiles/imca_misspath_test.dir/imca_misspath_test.cc.o" "gcc" "tests/CMakeFiles/imca_misspath_test.dir/imca_misspath_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/fault-matrix-asan/src/imca/CMakeFiles/imca_core.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/mcclient/CMakeFiles/imca_mcclient.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/memcache/CMakeFiles/imca_memcache.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/gluster/CMakeFiles/imca_gluster.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/net/CMakeFiles/imca_net.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/store/CMakeFiles/imca_store.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/sim/CMakeFiles/imca_sim.dir/DependInfo.cmake"
  "/root/repo/build/fault-matrix-asan/src/common/CMakeFiles/imca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
