# Empty dependencies file for imca_misspath_test.
# This may be replaced when dependencies are built.
