file(REMOVE_RECURSE
  "CMakeFiles/imca_misspath_test.dir/imca_misspath_test.cc.o"
  "CMakeFiles/imca_misspath_test.dir/imca_misspath_test.cc.o.d"
  "imca_misspath_test"
  "imca_misspath_test.pdb"
  "imca_misspath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imca_misspath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
