# Empty dependencies file for gluster_test.
# This may be replaced when dependencies are built.
