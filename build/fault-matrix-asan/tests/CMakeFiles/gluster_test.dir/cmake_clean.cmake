file(REMOVE_RECURSE
  "CMakeFiles/gluster_test.dir/gluster_test.cc.o"
  "CMakeFiles/gluster_test.dir/gluster_test.cc.o.d"
  "gluster_test"
  "gluster_test.pdb"
  "gluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
