file(REMOVE_RECURSE
  "CMakeFiles/mcclient_failover_test.dir/mcclient_failover_test.cc.o"
  "CMakeFiles/mcclient_failover_test.dir/mcclient_failover_test.cc.o.d"
  "mcclient_failover_test"
  "mcclient_failover_test.pdb"
  "mcclient_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcclient_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
