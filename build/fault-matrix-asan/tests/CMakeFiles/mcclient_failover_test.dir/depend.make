# Empty dependencies file for mcclient_failover_test.
# This may be replaced when dependencies are built.
