# Empty compiler generated dependencies file for imcasim.
# This may be replaced when dependencies are built.
