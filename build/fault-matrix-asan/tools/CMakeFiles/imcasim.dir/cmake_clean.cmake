file(REMOVE_RECURSE
  "CMakeFiles/imcasim.dir/imcasim.cc.o"
  "CMakeFiles/imcasim.dir/imcasim.cc.o.d"
  "imcasim"
  "imcasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
