
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fabric.cc" "src/net/CMakeFiles/imca_net.dir/fabric.cc.o" "gcc" "src/net/CMakeFiles/imca_net.dir/fabric.cc.o.d"
  "/root/repo/src/net/fault.cc" "src/net/CMakeFiles/imca_net.dir/fault.cc.o" "gcc" "src/net/CMakeFiles/imca_net.dir/fault.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/net/CMakeFiles/imca_net.dir/rpc.cc.o" "gcc" "src/net/CMakeFiles/imca_net.dir/rpc.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/net/CMakeFiles/imca_net.dir/transport.cc.o" "gcc" "src/net/CMakeFiles/imca_net.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
