# Fails if any data-path signature in src/ passes payloads as
# std::vector<std::byte>. The buffer layer itself (common/buffer.*,
# common/bytebuf.*) legitimately adopts vectors into segments and gathers
# back into them, and byte *sources* may keep vector storage privately
# (ObjectStore's file bytes, workload pattern generators) — everything else
# must traffic in imca::Buffer.
#
# Usage: cmake -D SOURCE_DIR=<repo root> -P lint_no_byte_vectors.cmake
#        (wired as the `lint-no-byte-vectors` build target)

file(GLOB_RECURSE candidates
     "${SOURCE_DIR}/src/*.h" "${SOURCE_DIR}/src/*.cc")

set(violations "")
foreach(f ${candidates})
  # The storage layer: vectors are its backing representation.
  if(f MATCHES "src/common/(buffer|bytebuf)\\.(h|cc)$")
    continue()
  endif()
  file(STRINGS "${f}" lines)
  set(lineno 0)
  foreach(line IN LISTS lines)
    math(EXPR lineno "${lineno} + 1")
    if(NOT line MATCHES "std::vector<std::byte>")
      continue()
    endif()
    # Private storage members ("std::vector<std::byte> name;") and local
    # pattern builders ("std::vector<std::byte> name(...);") are byte
    # sources, not signatures; a signature shows the type inside a parameter
    # list or as a return type — i.e. followed by '(' before any '=', or
    # preceding a function name. Conservative rule: flag any line where the
    # type appears next to a ',' or ')' (parameter position) or as
    # "Task<...std::vector<std::byte>...>" (payload-returning fop).
    if(line MATCHES "std::vector<std::byte>[ ]*[a-zA-Z_]*[,)]"
       OR line MATCHES "Task<[^>]*std::vector<std::byte>"
       OR line MATCHES "Expected<std::vector<std::byte>>")
      list(APPEND violations "${f}:${lineno}: ${line}")
    endif()
  endforeach()
endforeach()

if(violations)
  message(STATUS "payload-by-vector signatures found (use imca::Buffer):")
  foreach(v ${violations})
    message(STATUS "  ${v}")
  endforeach()
  list(LENGTH violations n)
  message(FATAL_ERROR "lint-no-byte-vectors: ${n} violation(s)")
else()
  message(STATUS "lint-no-byte-vectors: clean")
endif()
