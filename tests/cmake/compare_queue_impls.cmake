# Runs a fault-matrix driver twice — timer-wheel default and
# --legacy-queue — and requires byte-identical stdout. This is the
# determinism pin at system scale: the whole seeded client/server fault
# matrix must replay the same under both EventLoop queue implementations.
#
# Usage: cmake -D MATRIX=<driver> -D SEED=<n> -P compare_queue_impls.cmake
foreach(var MATRIX SEED)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_queue_impls.cmake: -D ${var}=... required")
  endif()
endforeach()

execute_process(COMMAND "${MATRIX}" "--seed=${SEED}"
                OUTPUT_VARIABLE wheel_out
                ERROR_VARIABLE wheel_err
                RESULT_VARIABLE wheel_rc)
if(NOT wheel_rc EQUAL 0)
  message(FATAL_ERROR
          "${MATRIX} --seed=${SEED} (timer wheel) failed rc=${wheel_rc}\n"
          "${wheel_out}${wheel_err}")
endif()

execute_process(COMMAND "${MATRIX}" "--seed=${SEED}" "--legacy-queue"
                OUTPUT_VARIABLE legacy_out
                ERROR_VARIABLE legacy_err
                RESULT_VARIABLE legacy_rc)
if(NOT legacy_rc EQUAL 0)
  message(FATAL_ERROR
          "${MATRIX} --seed=${SEED} --legacy-queue failed rc=${legacy_rc}\n"
          "${legacy_out}${legacy_err}")
endif()

if(NOT wheel_out STREQUAL legacy_out)
  message(FATAL_ERROR
          "queue implementations diverged on ${MATRIX} --seed=${SEED}\n"
          "--- timer wheel ---\n${wheel_out}\n"
          "--- legacy heap ---\n${legacy_out}")
endif()

message(STATUS "queue impls byte-identical on ${MATRIX} --seed=${SEED}")
