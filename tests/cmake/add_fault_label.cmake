# Patch a gtest_discover_tests-generated test file so every discovered test
# carries LABELS "tier1;tier1-faults". gtest_discover_tests flattens
# list-valued PROPERTIES when it serializes them into the generated script
# (the `;` becomes a space and the second label is lost), so this runs as a
# POST_BUILD step after discovery and rewrites the property in place.
#
# Usage: cmake -D TEST_FILE=<path> -P add_fault_label.cmake
if(NOT TEST_FILE OR NOT EXISTS "${TEST_FILE}")
  message(FATAL_ERROR "add_fault_label.cmake: TEST_FILE not found: ${TEST_FILE}")
endif()
file(READ "${TEST_FILE}" _content)
# Normalise whichever quoting the generator used for the flattened value.
string(REPLACE "LABELS [==[tier1 tier1-faults]==]" "LABELS tier1 tier1-faults"
       _content "${_content}")
string(REPLACE "LABELS \"tier1 tier1-faults\"" "LABELS tier1 tier1-faults"
       _content "${_content}")
string(REPLACE "LABELS tier1 tier1-faults" "LABELS \"tier1;tier1-faults\""
       _patched "${_content}")
file(WRITE "${TEST_FILE}" "${_patched}")
