# Runs a fault-matrix driver twice — plain, and with --shake=0 — and
# requires byte-identical stdout. This pins the schedule-shake off switch:
# a zero seed must reproduce today's FIFO tie-break bit-for-bit, so turning
# the validator off can never itself change a schedule (DESIGN.md §5k).
#
# Usage: cmake -D MATRIX=<driver> -D SEED=<n> -P compare_shake_zero.cmake
foreach(var MATRIX SEED)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_shake_zero.cmake: -D ${var}=... required")
  endif()
endforeach()

execute_process(COMMAND "${MATRIX}" "--seed=${SEED}"
                OUTPUT_VARIABLE plain_out
                ERROR_VARIABLE plain_err
                RESULT_VARIABLE plain_rc)
if(NOT plain_rc EQUAL 0)
  message(FATAL_ERROR
          "${MATRIX} --seed=${SEED} (plain) failed rc=${plain_rc}\n"
          "${plain_out}${plain_err}")
endif()

execute_process(COMMAND "${MATRIX}" "--seed=${SEED}" "--shake=0"
                OUTPUT_VARIABLE shake0_out
                ERROR_VARIABLE shake0_err
                RESULT_VARIABLE shake0_rc)
if(NOT shake0_rc EQUAL 0)
  message(FATAL_ERROR
          "${MATRIX} --seed=${SEED} --shake=0 failed rc=${shake0_rc}\n"
          "${shake0_out}${shake0_err}")
endif()

if(NOT plain_out STREQUAL shake0_out)
  message(FATAL_ERROR
          "--shake=0 diverged from the plain run on ${MATRIX} --seed=${SEED}\n"
          "--- plain ---\n${plain_out}\n"
          "--- shake=0 ---\n${shake0_out}")
endif()

message(STATUS "--shake=0 byte-identical on ${MATRIX} --seed=${SEED}")
