// Unit tests for the memcached reimplementation: slab accounting, storage
// semantics (set/add/replace/append/prepend/delete), LRU eviction within a
// slab class, lazy expiration, protocol encode/parse, and the daemon over
// the simulated RPC fabric.
#include <gtest/gtest.h>

#include <string>

#include "memcache/cache.h"
#include "memcache/protocol.h"
#include "memcache/server.h"
#include "net/fabric.h"
#include "net/rpc.h"

namespace imca::memcache {
namespace {

Buffer bytes(std::string_view s) { return to_buffer(s); }
Buffer blob(std::size_t n, char fill = 'x') {
  return Buffer::take(std::vector<std::byte>(n, static_cast<std::byte>(fill)));
}

// --- SlabAllocator ---

TEST(Slab, ClassesGrowGeometrically) {
  SlabAllocator s(64 * kMiB);
  ASSERT_GE(s.num_classes(), 10u);
  for (std::uint32_t i = 1; i < s.num_classes(); ++i) {
    EXPECT_GT(s.chunk_size(i), s.chunk_size(i - 1));
  }
  // Largest class holds a full page (1MB items).
  EXPECT_EQ(s.chunk_size(s.num_classes() - 1), 1 * kMiB);
}

TEST(Slab, ClassForPicksSmallestFit) {
  SlabAllocator s(64 * kMiB);
  const auto c = s.class_for(100).value();
  EXPECT_GE(s.chunk_size(c), 100u);
  if (c > 0) { EXPECT_LT(s.chunk_size(c - 1), 100u); }
}

TEST(Slab, OversizeRejected) {
  SlabAllocator s(64 * kMiB);
  EXPECT_EQ(s.class_for(kMaxItemTotal + 1).error(), Errc::kTooBig);
  EXPECT_TRUE(s.class_for(kMaxItemTotal).has_value());
}

TEST(Slab, AllocAssignsPagesUpToLimit) {
  SlabAllocator s(2 * kMiB);  // two pages only
  const auto cls = s.class_for(1000).value();
  const auto per_page = 1 * kMiB / s.chunk_size(cls);
  // Exhaust both pages.
  for (std::uint64_t i = 0; i < 2 * per_page; ++i) {
    ASSERT_TRUE(s.alloc(cls)) << "i=" << i;
  }
  EXPECT_EQ(s.pages_assigned(), 2u);
  EXPECT_EQ(s.alloc(cls).error(), Errc::kNoSpc);
  s.free(cls);
  EXPECT_TRUE(s.alloc(cls).has_value());  // reuses the freed chunk
}

TEST(Slab, PagesAreNotSharedAcrossClasses) {
  SlabAllocator s(1 * kMiB);  // a single page
  const auto small = s.class_for(100).value();
  const auto big = s.class_for(100000).value();
  ASSERT_NE(small, big);
  ASSERT_TRUE(s.alloc(small));
  // The one page belongs to `small` now; `big` cannot get one.
  EXPECT_EQ(s.alloc(big).error(), Errc::kNoSpc);
}

// --- McCache semantics ---

TEST(Cache, SetGetRoundTrip) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 7, 0, bytes("value"), 0));
  const auto v = c.get("k", 1);
  ASSERT_TRUE(v);
  EXPECT_EQ(v->flags, 7u);
  EXPECT_EQ(to_string(v->data), "value");
  EXPECT_EQ(c.stats().get_hits, 1u);
}

TEST(Cache, GetMissCounts) {
  McCache c(64 * kMiB);
  EXPECT_EQ(c.get("absent", 0).error(), Errc::kNoEnt);
  EXPECT_EQ(c.stats().get_misses, 1u);
}

TEST(Cache, SetOverwrites) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 0, bytes("old"), 0));
  ASSERT_TRUE(c.set("k", 0, 0, bytes("newer"), 1));
  EXPECT_EQ(to_string(c.get("k", 2)->data), "newer");
  EXPECT_EQ(c.item_count(), 1u);
}

TEST(Cache, AddOnlyWhenAbsent) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.add("k", 0, 0, bytes("a"), 0));
  EXPECT_EQ(c.add("k", 0, 0, bytes("b"), 1).error(), Errc::kNotStored);
  EXPECT_EQ(to_string(c.get("k", 2)->data), "a");
}

TEST(Cache, ReplaceOnlyWhenPresent) {
  McCache c(64 * kMiB);
  EXPECT_EQ(c.replace("k", 0, 0, bytes("x"), 0).error(), Errc::kNotStored);
  ASSERT_TRUE(c.set("k", 0, 0, bytes("x"), 1));
  ASSERT_TRUE(c.replace("k", 0, 0, bytes("y"), 2));
  EXPECT_EQ(to_string(c.get("k", 3)->data), "y");
}

TEST(Cache, AppendPrependSplice) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 0, bytes("mid"), 0));
  ASSERT_TRUE(c.append("k", bytes(">"), 1));
  ASSERT_TRUE(c.prepend("k", bytes("<"), 2));
  EXPECT_EQ(to_string(c.get("k", 3)->data), "<mid>");
  EXPECT_EQ(c.append("nokey", bytes("z"), 4).error(), Errc::kNotStored);
}

TEST(Cache, DeleteRemoves) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 0, bytes("v"), 0));
  ASSERT_TRUE(c.del("k"));
  EXPECT_EQ(c.del("k").error(), Errc::kNoEnt);
  EXPECT_EQ(c.get("k", 1).error(), Errc::kNoEnt);
  EXPECT_EQ(c.item_count(), 0u);
}

TEST(Cache, KeyLengthCeiling) {
  McCache c(64 * kMiB);
  const std::string long_key(kMaxKeyLen + 1, 'k');
  EXPECT_EQ(c.set(long_key, 0, 0, bytes("v"), 0).error(), Errc::kKeyTooLong);
  const std::string max_key(kMaxKeyLen, 'k');
  EXPECT_TRUE(c.set(max_key, 0, 0, bytes("v"), 0));
}

TEST(Cache, OneMegabyteItemCeiling) {
  McCache c(64 * kMiB);
  // Value + key + overhead must fit in kMaxItemTotal.
  EXPECT_EQ(c.set("k", 0, 0, blob(kMaxItemTotal), 0).error(), Errc::kTooBig);
  EXPECT_TRUE(
      c.set("k", 0, 0, blob(kMaxItemTotal - 1 - kItemOverhead), 0));
}

TEST(Cache, LazyExpirationOnGet) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 0, /*expire_at=*/100, bytes("v"), 0));
  EXPECT_TRUE(c.get("k", 50).has_value());   // still fresh
  EXPECT_EQ(c.get("k", 100).error(), Errc::kNoEnt);  // reaped on access
  EXPECT_EQ(c.stats().expired_unfetched, 1u);
  EXPECT_EQ(c.item_count(), 0u);
}

TEST(Cache, ExpiredKeyCanBeAdded) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 10, bytes("old"), 0));
  // add() at t=20 finds the item expired, so the add succeeds.
  ASSERT_TRUE(c.add("k", 0, 0, bytes("fresh"), 20));
  EXPECT_EQ(to_string(c.get("k", 30)->data), "fresh");
}

TEST(Cache, EvictsLruWithinClassWhenFull) {
  // Cache sized to 1 page; items ~100KB -> class fits ~10 per page.
  McCache c(1 * kMiB);
  const std::uint64_t item_size = 100 * kKiB;
  int stored = 0;
  for (int i = 0; i < 12; ++i) {
    if (c.set("key" + std::to_string(i), 0, 0, blob(item_size), 0)) ++stored;
  }
  EXPECT_EQ(stored, 12);  // all sets succeed; old items were evicted
  EXPECT_GT(c.stats().evictions, 0u);
  // The most recent key is present, the oldest is gone.
  EXPECT_TRUE(c.get("key11", 1).has_value());
  EXPECT_EQ(c.get("key0", 1).error(), Errc::kNoEnt);
}

TEST(Cache, GetRefreshesLruOrder) {
  McCache c(1 * kMiB);
  const std::uint64_t item_size = 100 * kKiB;
  // Insert until the first eviction fires: that eviction removed w0, so the
  // surviving items are w1..wN with w1 the least recently used.
  std::size_t n = 0;
  while (c.stats().evictions == 0) {
    ASSERT_TRUE(c.set("w" + std::to_string(n), 0, 0, blob(item_size), 0));
    ++n;
  }
  ASSERT_GT(n, 3u);
  ASSERT_EQ(c.get("w0", 1).error(), Errc::kNoEnt);  // first victim
  // Touch w1 so w2 becomes the LRU victim for the next insertion.
  ASSERT_TRUE(c.get("w1", 2).has_value());
  ASSERT_TRUE(c.set("extra", 0, 0, blob(item_size), 3));
  EXPECT_TRUE(c.get("w1", 4).has_value());          // survived (recently used)
  EXPECT_EQ(c.get("w2", 4).error(), Errc::kNoEnt);  // evicted instead
}

TEST(Cache, FlushAllEmptiesEverything) {
  McCache c(64 * kMiB);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.set("k" + std::to_string(i), 0, 0, bytes("v"), 0));
  }
  c.flush_all();
  EXPECT_EQ(c.item_count(), 0u);
  EXPECT_EQ(c.stats().curr_items, 0u);
  EXPECT_EQ(c.stats().bytes, 0u);
}

TEST(Cache, BytesAccountingBalances) {
  McCache c(64 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 0, blob(1000), 0));
  EXPECT_EQ(c.stats().bytes, 1 + 1000 + kItemOverhead);
  ASSERT_TRUE(c.del("k"));
  EXPECT_EQ(c.stats().bytes, 0u);
}

// --- protocol ---

TEST(Protocol, SetThenGetThroughWireFormat) {
  McCache c(64 * kMiB);
  auto resp1 = handle_request(
      c, encode_store(StoreVerb::kSet, "key1", 5, 0, bytes("hello")), 0);
  EXPECT_EQ(parse_store_response(resp1).value(), StoreReply::kStored);

  const std::string keys[] = {"key1"};
  auto resp2 = handle_request(c, encode_get(keys), 1);
  auto got = parse_get_response(resp2);
  ASSERT_TRUE(got);
  ASSERT_TRUE(got->contains("key1"));
  EXPECT_EQ(got->at("key1").flags, 5u);
  EXPECT_EQ(to_string(got->at("key1").data), "hello");
}

TEST(Protocol, MissOmitsKeyFromResponse) {
  McCache c(64 * kMiB);
  const std::string keys[] = {"nope"};
  auto resp = handle_request(c, encode_get(keys), 0);
  auto got = parse_get_response(resp);
  ASSERT_TRUE(got);
  EXPECT_TRUE(got->empty());
}

TEST(Protocol, MultiGetMixedHitMiss) {
  McCache c(64 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "a", 0, 0, bytes("1")), 0);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "c", 0, 0, bytes("3")), 0);
  const std::string keys[] = {"a", "b", "c"};
  auto resp = handle_request(c, encode_get(keys), 1);
  auto got = parse_get_response(resp).value();
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(got.contains("a"));
  EXPECT_FALSE(got.contains("b"));
  EXPECT_TRUE(got.contains("c"));
}

TEST(Protocol, BinarySafeValues) {
  McCache c(64 * kMiB);
  // A value containing CRLF and NUL must survive the text protocol because
  // the data block is length-delimited.
  std::vector<std::byte> raw = to_bytes("a\r\nEND\r\n\0b");
  raw.push_back(std::byte{0});
  Buffer nasty = Buffer::take(std::move(raw));
  (void)handle_request(c, encode_store(StoreVerb::kSet, "k", 0, 0, nasty), 0);
  const std::string keys[] = {"k"};
  auto got = parse_get_response(
                 *std::make_unique<ByteBuf>(handle_request(c, encode_get(keys), 1)))
                 .value();
  ASSERT_TRUE(got.contains("k"));
  EXPECT_TRUE(got.at("k").data.content_equals(nasty));
}

TEST(Protocol, DeleteReplies) {
  McCache c(64 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "k", 0, 0, bytes("v")), 0);
  auto r1 = handle_request(c, encode_delete("k"), 1);
  EXPECT_EQ(parse_delete_response(r1).value(), DeleteReply::kDeleted);
  auto r2 = handle_request(c, encode_delete("k"), 2);
  EXPECT_EQ(parse_delete_response(r2).value(), DeleteReply::kNotFound);
}

TEST(Protocol, OversizeItemIsServerError) {
  McCache c(64 * kMiB);
  auto resp = handle_request(
      c, encode_store(StoreVerb::kSet, "k", 0, 0, blob(kMaxItemTotal)), 0);
  EXPECT_EQ(parse_store_response(resp).value(), StoreReply::kServerError);
}

TEST(Protocol, StatsReportCounters) {
  McCache c(64 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "k", 0, 0, bytes("v")), 0);
  const std::string keys[] = {"k"};
  (void)handle_request(c, encode_get(keys), 1);
  auto resp = handle_request(c, encode_stats(), 2);
  auto stats = parse_stats_response(resp).value();
  EXPECT_EQ(stats.at("cmd_set"), "1");
  EXPECT_EQ(stats.at("get_hits"), "1");
  EXPECT_EQ(stats.at("curr_items"), "1");
  EXPECT_EQ(stats.at("limit_maxbytes"), std::to_string(64 * kMiB));
}

TEST(Protocol, MalformedInputYieldsError) {
  McCache c(64 * kMiB);
  const auto expect_error = [&](std::string_view raw) {
    ByteBuf req;
    req.put_raw(raw);
    auto resp = handle_request(c, std::move(req), 0);
    const std::string text = to_string(resp.buffer());
    EXPECT_TRUE(text.starts_with("ERROR")) << "input: " << raw;
  };
  expect_error("");                        // no line terminator
  expect_error("bogus\r\n");               // unknown command
  expect_error("get\r\n");                 // get with no keys
  expect_error("set k 0 0\r\n");           // missing byte count
  expect_error("set k 0 0 5\r\nab\r\n");   // short data block
  expect_error("set k 0 0 x\r\nabcde\r\n");  // non-numeric byte count
  expect_error("delete\r\n");              // missing key
}

TEST(Protocol, FlushAllClears) {
  McCache c(64 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "k", 0, 0, bytes("v")), 0);
  auto resp = handle_request(c, encode_flush_all(), 1);
  EXPECT_EQ(to_string(resp.buffer()), "OK\r\n");
  EXPECT_EQ(c.item_count(), 0u);
}

// --- daemon over the fabric ---

class McServerTest : public ::testing::Test {
 protected:
  McServerTest()
      : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    fabric_.add_node("mcd0");
    fabric_.add_node("client");
    server_ = std::make_unique<McServer>(rpc_, 0, 64 * kMiB);
    server_->start();
  }

  sim::EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::unique_ptr<McServer> server_;
};

TEST_F(McServerTest, SetGetOverFabric) {
  bool ok_flag = false;
  loop_.spawn([](net::RpcSystem& rpc, bool& done) -> sim::Task<void> {
    auto r1 = co_await rpc.call(
        1, 0, net::kPortMemcached,
        encode_store(StoreVerb::kSet, "k", 0, 0, to_buffer("v")));
    EXPECT_TRUE(r1.has_value());
    const std::string keys[] = {"k"};
    auto r2 = co_await rpc.call(1, 0, net::kPortMemcached, encode_get(keys));
    EXPECT_TRUE(r2.has_value());
    if (r2) {
      auto got = parse_get_response(*r2).value();
      EXPECT_EQ(to_string(got.at("k").data), "v");
    }
    done = true;
  }(rpc_, ok_flag));
  loop_.run();
  EXPECT_TRUE(ok_flag);
  EXPECT_GT(loop_.now(), 0u);  // network + service time elapsed
}

TEST_F(McServerTest, StopRefusesAndDropsContents) {
  ASSERT_TRUE(server_->running());
  (void)server_->cache().set("k", 0, 0, to_buffer("v"), 0);
  server_->stop();
  EXPECT_FALSE(server_->running());
  EXPECT_EQ(server_->cache().item_count(), 0u);  // restart comes back cold
  Errc err = Errc::kOk;
  loop_.spawn([](net::RpcSystem& rpc, Errc& e) -> sim::Task<void> {
    const std::string keys[] = {"k"};
    auto r = co_await rpc.call(1, 0, net::kPortMemcached, encode_get(keys));
    e = r.error();
  }(rpc_, err));
  loop_.run();
  EXPECT_EQ(err, Errc::kConnRefused);
}

TEST_F(McServerTest, ServiceTimeChargedToDaemonCpu) {
  loop_.spawn([](net::RpcSystem& rpc) -> sim::Task<void> {
    (void)co_await rpc.call(
        1, 0, net::kPortMemcached,
        encode_store(StoreVerb::kSet, "k", 0, 0,
                     Buffer::zeros(64 * 1024)));
    co_return;
  }(rpc_));
  loop_.run();
  EXPECT_GT(fabric_.node(0).cpu().total_busy(), 6 * kMicro);
}

}  // namespace
}  // namespace imca::memcache
