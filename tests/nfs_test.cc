// Tests for the NFS-like motivation server: basic semantics, wire chunking,
// transport sensitivity and the Fig 1 page-cache bandwidth cliff.
#include <gtest/gtest.h>

#include <memory>

#include "net/transport.h"
#include "nfs/nfs.h"

namespace imca::nfs {
namespace {

using sim::EventLoop;
using sim::Task;

struct NfsRig {
  explicit NfsRig(net::TransportParams transport,
                  NfsServerParams sparams = {})
      : fabric(loop, std::move(transport)), rpc(fabric) {
    const auto snode = fabric.add_node("nfs-server").id();
    server = std::make_unique<NfsServer>(rpc, snode, sparams);
    const auto cnode = fabric.add_node("client").id();
    client = std::make_unique<NfsClient>(rpc, cnode, *server);
  }

  void run(Task<void> t) {
    loop.spawn(std::move(t));
    loop.run();
  }

  EventLoop loop;
  net::Fabric fabric;
  net::RpcSystem rpc;
  std::unique_ptr<NfsServer> server;
  std::unique_ptr<NfsClient> client;
};

TEST(Nfs, BasicSemantics) {
  NfsRig rig(net::ipoib_rc());
  rig.run([](NfsRig& r) -> Task<void> {
    auto& fs = *r.client;
    auto f = co_await fs.create("/f");
    EXPECT_TRUE(f.has_value());
    EXPECT_TRUE((co_await fs.write(*f, 0, to_buffer("nfs data"))).has_value());
    auto back = co_await fs.read(*f, 4, 4);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(to_string(*back), "data"); }
    auto st = co_await fs.stat("/f");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 8u); }
    EXPECT_TRUE((co_await fs.unlink("/f")).has_value());
    EXPECT_EQ((co_await fs.stat("/f")).error(), Errc::kNoEnt);
  }(rig));
}

TEST(Nfs, LargeReadsChunkAtRsize) {
  NfsRig rig(net::ipoib_rc());
  rig.run([](NfsRig& r) -> Task<void> {
    auto& fs = *r.client;
    auto f = co_await fs.create("/big");
    (void)co_await fs.write(*f, 0, Buffer::zeros(1 * kMiB));
    const auto msgs_before = r.fabric.messages_sent();
    auto back = co_await fs.read(*f, 0, 1 * kMiB);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(back->size(), 1 * kMiB); }
    // 1 MiB at 64 KiB rsize = 16 requests + 16 replies.
    EXPECT_EQ(r.fabric.messages_sent() - msgs_before, 32u);
  }(rig));
}

TEST(Nfs, TransportOrderingRdmaFastest) {
  auto measure = [](net::TransportParams t) {
    NfsRig rig(std::move(t));
    SimDuration elapsed = 0;
    rig.run([](NfsRig& r, SimDuration& out_elapsed) -> Task<void> {
      auto& fs = *r.client;
      auto f = co_await fs.create("/t");
      (void)co_await fs.write(*f, 0, Buffer::zeros(8 * kMiB));
      const SimTime t0 = r.loop.now();
      (void)co_await fs.read(*f, 0, 8 * kMiB);  // server cache is warm
      out_elapsed = r.loop.now() - t0;
    }(rig, elapsed));
    return elapsed;
  };
  const auto rdma = measure(net::ib_rdma());
  const auto ipoib = measure(net::ipoib_rc());
  const auto gige = measure(net::gige());
  EXPECT_LT(rdma, ipoib);
  EXPECT_LT(ipoib, gige);
  // GigE is bandwidth-starved by an order of magnitude.
  EXPECT_GT(gige, 5 * ipoib);
}

TEST(Nfs, BandwidthCollapsesPastServerMemory) {
  // The Fig 1 mechanism in miniature: re-reading a working set that fits the
  // page cache is fast; one that exceeds it keeps missing to disk.
  auto measure = [](std::uint64_t file_bytes) {
    NfsServerParams sp;
    sp.page_cache_bytes = 64 * kMiB;
    NfsRig rig(net::ipoib_rc(), sp);
    SimDuration elapsed = 0;
    rig.run([](NfsRig& r, SimDuration& out_elapsed,
             std::uint64_t n_file_bytes) -> Task<void> {
      auto& fs = *r.client;
      auto f = co_await fs.create("/ws");
      for (std::uint64_t off = 0; off < n_file_bytes; off += 4 * kMiB) {
        (void)co_await fs.write(*f, off, Buffer::zeros(4 * kMiB));
      }
      // Two sequential re-read passes (IOzone re-read).
      const SimTime t0 = r.loop.now();
      for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t off = 0; off < n_file_bytes; off += 4 * kMiB) {
          (void)co_await fs.read(*f, off, 4 * kMiB);
        }
      }
      out_elapsed = r.loop.now() - t0;
    }(rig, elapsed, file_bytes));
    // MB/s over the two passes.
    return 2.0 * to_mib(file_bytes) / to_seconds(elapsed);
  };
  const double fits = measure(32 * kMiB);    // inside the 64 MiB cache
  const double spills = measure(256 * kMiB);  // 4x the cache
  EXPECT_GT(fits, 2.0 * spills);
}

TEST(Nfs, EofShortRead) {
  NfsRig rig(net::ipoib_rc());
  rig.run([](NfsRig& r) -> Task<void> {
    auto& fs = *r.client;
    auto f = co_await fs.create("/short");
    (void)co_await fs.write(*f, 0, to_buffer("abc"));
    auto back = co_await fs.read(*f, 1, 1 * kMiB);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(to_string(*back), "bc"); }
  }(rig));
}

TEST(Nfs, TruncateAndRename) {
  NfsRig rig(net::ipoib_rc());
  rig.run([](NfsRig& r) -> Task<void> {
    auto& fs = *r.client;
    auto f = co_await fs.create("/a");
    (void)co_await fs.write(*f, 0, to_buffer("twelve bytes"));
    EXPECT_TRUE((co_await fs.truncate("/a", 6)).has_value());
    auto cut = co_await fs.read(*f, 0, 100);
    EXPECT_TRUE(cut.has_value());
    if (cut) { EXPECT_EQ(to_string(*cut), "twelve"); }
    EXPECT_TRUE((co_await fs.rename("/a", "/b")).has_value());
    EXPECT_EQ((co_await fs.stat("/a")).error(), Errc::kNoEnt);
    auto moved = co_await fs.read(*f, 0, 100);  // handle follows
    EXPECT_TRUE(moved.has_value());
    if (moved) { EXPECT_EQ(to_string(*moved), "twelve"); }
    EXPECT_EQ((co_await fs.rename("/nope", "/x")).error(), Errc::kNoEnt);
  }(rig));
}

TEST(Nfs, BadFdRejectedLocally) {
  NfsRig rig(net::ipoib_rc());
  rig.run([](NfsRig& r) -> Task<void> {
    auto res = co_await r.client->read(fsapi::OpenFile{777}, 0, 1);
    EXPECT_EQ(res.error(), Errc::kBadF);
  }(rig));
}

}  // namespace
}  // namespace imca::nfs
