// Unit tests for the libmemcache-style client: selector strategies, routing,
// multi-get batching, dead-daemon failover and per-daemon stats.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "mcclient/client.h"
#include "mcclient/selector.h"
#include "memcache/server.h"
#include "net/fabric.h"
#include "net/rpc.h"

namespace imca::mcclient {
namespace {

using memcache::McServer;

// --- selectors ---

TEST(Selector, Crc32MatchesLibmemcacheFormula) {
  Crc32Selector sel;
  for (const char* key : {"/a:0", "/a:2048", "/b:stat"}) {
    EXPECT_EQ(sel.pick(key, std::nullopt, 4), libmemcache_hash(key) % 4);
  }
}

TEST(Selector, ModuloUsesNumericHint) {
  ModuloSelector sel;
  EXPECT_EQ(sel.pick("ignored", 0, 4), 0u);
  EXPECT_EQ(sel.pick("ignored", 5, 4), 1u);
  EXPECT_EQ(sel.pick("ignored", 7, 4), 3u);
}

TEST(Selector, ModuloRoundRobinsConsecutiveBlocks) {
  // Fig 9's property: consecutive blocks land on consecutive daemons.
  ModuloSelector sel;
  std::vector<std::size_t> hits;
  for (std::uint64_t block = 0; block < 8; ++block) {
    hits.push_back(sel.pick("/file:" + std::to_string(block * 2048), block, 4));
  }
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Selector, ConsistentStaysInRange) {
  ConsistentSelector sel(6);
  for (int i = 0; i < 200; ++i) {
    const auto s = sel.pick("key" + std::to_string(i), std::nullopt, 5);
    EXPECT_LT(s, 5u);
  }
}

TEST(Selector, ConsistentRemapsFewKeysOnShrink) {
  // The future-work property: going from 6 daemons to 5 should move only
  // roughly 1/6 of keys, whereas modulo moves ~5/6 of them.
  ConsistentSelector sel(6);
  int moved_consistent = 0;
  int moved_modulo = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "/data/file" + std::to_string(i) + ":0";
    moved_consistent += sel.pick(key, std::nullopt, 6) != sel.pick(key, std::nullopt, 5);
    moved_modulo +=
        libmemcache_hash(key) % 6 != libmemcache_hash(key) % 5;
  }
  EXPECT_LT(moved_consistent, kKeys / 3);      // ~1/6 expected
  EXPECT_GT(moved_modulo, kKeys / 2);          // ~5/6 expected
  EXPECT_LT(moved_consistent * 2, moved_modulo);
}

TEST(Selector, ConsistentIsBalanced) {
  ConsistentSelector sel(4);
  std::map<std::size_t, int> load;
  const int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) {
    ++load[sel.pick("key" + std::to_string(i), std::nullopt, 4)];
  }
  for (const auto& [server, n] : load) {
    EXPECT_GT(n, kKeys / 8) << "server " << server << " underloaded";
    EXPECT_LT(n, kKeys / 2) << "server " << server << " overloaded";
  }
}

// --- client over the fabric ---

class McClientTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kServers = 3;

  McClientTest() : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    for (std::size_t i = 0; i < kServers; ++i) {
      fabric_.add_node("mcd" + std::to_string(i));
      servers_.push_back(
          std::make_unique<McServer>(rpc_, static_cast<net::NodeId>(i), 64 * kMiB));
      servers_.back()->start();
      server_ids_.push_back(static_cast<net::NodeId>(i));
    }
    client_node_ = fabric_.add_node("client").id();
    client_ = std::make_unique<McClient>(rpc_, client_node_, server_ids_,
                                         std::make_unique<Crc32Selector>());
  }

  void run(sim::Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  sim::EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::vector<std::unique_ptr<McServer>> servers_;
  std::vector<net::NodeId> server_ids_;
  net::NodeId client_node_ = 0;
  std::unique_ptr<McClient> client_;
};

TEST_F(McClientTest, SetGetDeleteLifecycle) {
  run([](McClient& c) -> sim::Task<void> {
    EXPECT_TRUE((co_await c.set("alpha", to_buffer("1"))).has_value());
    auto v = co_await c.get("alpha");
    EXPECT_TRUE(v.has_value());
    if (v) { EXPECT_EQ(to_string(v->data), "1"); }
    EXPECT_TRUE((co_await c.del("alpha")).has_value());
    EXPECT_EQ((co_await c.get("alpha")).error(), Errc::kNoEnt);
  }(*client_));
  EXPECT_EQ(client_->stats().hits, 1u);
  EXPECT_EQ(client_->stats().misses, 1u);
}

TEST_F(McClientTest, KeysSpreadAcrossDaemons) {
  run([](McClient& c) -> sim::Task<void> {
    for (int i = 0; i < 60; ++i) {
      (void)co_await c.set("/f" + std::to_string(i) + ":0", to_buffer("v"));
    }
  }(*client_));
  int daemons_with_items = 0;
  for (const auto& s : servers_) {
    daemons_with_items += s->cache().item_count() > 0;
  }
  EXPECT_EQ(daemons_with_items, 3);
}

TEST_F(McClientTest, MultiGetBatchesPerDaemon) {
  run([](McClient& c, net::RpcSystem& rpc) -> sim::Task<void> {
    std::vector<std::string> keys;
    for (int i = 0; i < 12; ++i) {
      keys.push_back("k" + std::to_string(i));
      (void)co_await c.set(keys.back(), to_buffer(std::to_string(i)));
    }
    const auto calls_before = rpc.calls_made();
    auto got = co_await c.multi_get(keys);
    EXPECT_EQ(got.size(), 12u);
    // All 12 keys arrive in at most one call per daemon.
    EXPECT_LE(rpc.calls_made() - calls_before, 3u);
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(to_string(got.at("k" + std::to_string(i)).data),
                std::to_string(i));
    }
  }(*client_, rpc_));
}

TEST_F(McClientTest, MultiGetReportsPartialMisses) {
  run([](McClient& c) -> sim::Task<void> {
    (void)co_await c.set("present", to_buffer("v"));
    std::vector<std::string> keys;
    keys.emplace_back("present");
    keys.emplace_back("absent1");
    keys.emplace_back("absent2");
    auto got = co_await c.multi_get(std::move(keys));
    EXPECT_EQ(got.size(), 1u);
    EXPECT_TRUE(got.contains("present"));
  }(*client_));
  EXPECT_EQ(client_->stats().misses, 2u);
}

TEST_F(McClientTest, DeadDaemonBecomesMissNotError) {
  run([](McClient& c,
         std::vector<std::unique_ptr<McServer>>& servers) -> sim::Task<void> {
    // Find a key routed to daemon 1, store it, then kill daemon 1.
    std::string key;
    for (int i = 0;; ++i) {
      key = "probe" + std::to_string(i);
      if (c.selector().pick(key, std::nullopt, kServers) == 1) break;
    }
    EXPECT_TRUE((co_await c.set(key, to_buffer("v"))).has_value());
    servers[1]->stop();
    auto v = co_await c.get(key);
    EXPECT_EQ(v.error(), Errc::kNoEnt);  // read as a miss, not a failure
    EXPECT_TRUE(c.server_dead(1));
    // Later operations on that daemon are swallowed locally.
    EXPECT_EQ((co_await c.get(key)).error(), Errc::kNoEnt);
    // Other daemons still work.
    std::string other;
    for (int i = 0;; ++i) {
      other = "other" + std::to_string(i);
      if (c.selector().pick(other, std::nullopt, kServers) != 1) break;
    }
    EXPECT_TRUE((co_await c.set(other, to_buffer("w"))).has_value());
    EXPECT_TRUE((co_await c.get(other)).has_value());
  }(*client_, servers_));
  EXPECT_GT(client_->stats().dead_server_ops, 0u);
}

TEST_F(McClientTest, ServerStatsReadable) {
  run([](McClient& c) -> sim::Task<void> {
    (void)co_await c.set("x", to_buffer("y"));
    bool found = false;
    for (std::size_t s = 0; s < c.server_count(); ++s) {
      auto stats = co_await c.server_stats(s);
      EXPECT_TRUE(stats.has_value());
      if (stats && stats->at("curr_items") == "1") found = true;
    }
    EXPECT_TRUE(found);
  }(*client_));
}

TEST_F(McClientTest, FlushAllEmptiesEveryDaemon) {
  run([](McClient& c) -> sim::Task<void> {
    for (int i = 0; i < 30; ++i) {
      (void)co_await c.set("k" + std::to_string(i), to_buffer("v"));
    }
    co_await c.flush_all();
  }(*client_));
  for (const auto& s : servers_) {
    EXPECT_EQ(s->cache().item_count(), 0u);
  }
}

TEST_F(McClientTest, FlushAllIsConcurrent) {
  // A client restricted to one daemon measures the single-flush round trip;
  // flushing all three daemons concurrently must cost well under three of
  // them (the wall-clock is one round trip to the slowest daemon).
  McClient one(rpc_, client_node_, {server_ids_[0]},
               std::make_unique<Crc32Selector>());
  SimDuration one_rt = 0;
  SimDuration three_rt = 0;
  run([](McClient& single, McClient& all, sim::EventLoop& loop,
         SimDuration& out_one_rt, SimDuration& out_three_rt) -> sim::Task<void> {
    const SimTime t0 = loop.now();
    co_await single.flush_all();
    out_one_rt = loop.now() - t0;
    const SimTime t1 = loop.now();
    co_await all.flush_all();
    out_three_rt = loop.now() - t1;
  }(one, *client_, loop_, one_rt, three_rt));
  EXPECT_GT(one_rt, 0);
  EXPECT_LT(three_rt, 2 * one_rt);
}

TEST_F(McClientTest, MultiGetOrderedExposesMisses) {
  run([](McClient& c, net::RpcSystem& rpc) -> sim::Task<void> {
    (void)co_await c.set("ka", to_buffer("A"));
    (void)co_await c.set("kc", to_buffer("C"));
    const auto calls_before = rpc.calls_made();
    std::vector<std::string> keys{"ka", "missing1", "kc", "missing2"};
    auto got = co_await c.multi_get_ordered(std::move(keys));
    // Still one batched call per daemon, like multi_get.
    EXPECT_LE(rpc.calls_made() - calls_before, 3u);
    EXPECT_EQ(got.size(), 4u);
    EXPECT_TRUE(got[0].has_value());
    if (got[0]) { EXPECT_EQ(to_string(got[0]->data), "A"); }
    EXPECT_FALSE(got[1].has_value());
    EXPECT_TRUE(got[2].has_value());
    if (got[2]) { EXPECT_EQ(to_string(got[2]->data), "C"); }
    EXPECT_FALSE(got[3].has_value());
  }(*client_, rpc_));
  EXPECT_EQ(client_->stats().misses, 2u);
}

TEST_F(McClientTest, ValueTooBigSurfaces) {
  run([](McClient& c) -> sim::Task<void> {
    auto r = co_await c.set("big", Buffer::zeros(2 * kMiB));
    EXPECT_EQ(r.error(), Errc::kTooBig);
  }(*client_));
}

TEST_F(McClientTest, ModuloSelectorSpreadsBlocksOfOneFile) {
  McClient modulo_client(rpc_, client_node_, server_ids_,
                         std::make_unique<ModuloSelector>());
  run([](McClient& c) -> sim::Task<void> {
    for (std::uint64_t block = 0; block < 9; ++block) {
      (void)co_await c.set("/data:" + std::to_string(block * 2048),
                           to_buffer("b"), block);
    }
    co_return;
  }(modulo_client));
  // 9 blocks round-robin over 3 daemons: exactly 3 each.
  for (const auto& s : servers_) {
    EXPECT_EQ(s->cache().item_count(), 3u);
  }
}

}  // namespace
}  // namespace imca::mcclient
