// Tests for the future-work prototype: the MCD bank integrated with the
// Lustre-like file system, coherence riding on Lustre's own DLM.
#include <gtest/gtest.h>

#include <memory>

#include "lustre/cached_client.h"
#include "lustre/data_server.h"
#include "lustre/mds.h"
#include "memcache/server.h"
#include "net/transport.h"

namespace imca::lustre {
namespace {

using sim::EventLoop;
using sim::Task;

struct Rig {
  explicit Rig(std::size_t n_clients = 2, std::size_t n_mcds = 2)
      : fabric(loop, net::ipoib_rc()), rpc(fabric) {
    const auto mds_node = fabric.add_node("mds").id();
    mds = std::make_unique<MetadataServer>(rpc, mds_node);
    const auto ds_node = fabric.add_node("ost0").id();
    ds.push_back(std::make_unique<DataServer>(rpc, ds_node));

    std::vector<net::NodeId> mcd_nodes;
    for (std::size_t i = 0; i < n_mcds; ++i) {
      const auto n = fabric.add_node("mcd" + std::to_string(i)).id();
      mcd_nodes.push_back(n);
      mcds.push_back(std::make_unique<memcache::McServer>(rpc, n, 1 * kGiB));
      mcds.back()->start();
    }

    for (std::size_t c = 0; c < n_clients; ++c) {
      const auto n = fabric.add_node("client" + std::to_string(c)).id();
      inner.push_back(std::make_unique<LustreClient>(
          rpc, n, *mds, std::vector<DataServer*>{ds[0].get()}));
      cached.push_back(std::make_unique<CachedLustreClient>(
          *inner.back(),
          std::make_unique<mcclient::McClient>(
              rpc, n, mcd_nodes, std::make_unique<mcclient::Crc32Selector>())));
    }
  }

  void run(Task<void> t) {
    loop.spawn(std::move(t));
    loop.run();
  }

  EventLoop loop;
  net::Fabric fabric;
  net::RpcSystem rpc;
  std::unique_ptr<MetadataServer> mds;
  std::vector<std::unique_ptr<DataServer>> ds;
  std::vector<std::unique_ptr<memcache::McServer>> mcds;
  std::vector<std::unique_ptr<LustreClient>> inner;
  std::vector<std::unique_ptr<CachedLustreClient>> cached;
};

TEST(CachedLustre, RoundTripAndBankPopulation) {
  Rig rig;
  rig.run([](Rig& r) -> Task<void> {
    auto& fs = *r.cached[0];
    auto f = co_await fs.create("/c/file");
    std::vector<std::byte> pattern(8 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i * 3) & 0xFF);
    }
    const Buffer payload = Buffer::take(std::move(pattern));
    EXPECT_TRUE((co_await fs.write(*f, 0, payload)).has_value());
    auto back = co_await fs.read(*f, 0, 8 * kKiB);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(*back, payload); }
    auto mid = co_await fs.read(*f, 3000, 3000);
    EXPECT_TRUE(mid.has_value());
    if (mid) {
      EXPECT_TRUE(mid->content_equals(payload.slice(3000, mid->size())));
    }
  }(rig));
  // The write published the covering blocks.
  EXPECT_GE(rig.cached[0]->stats().blocks_published, 4u);
  EXPECT_GE(rig.cached[0]->stats().reads_from_bank, 1u);
  std::size_t items = 0;
  for (const auto& m : rig.mcds) items += m->cache().item_count();
  EXPECT_GE(items, 4u);
}

TEST(CachedLustre, SecondClientReadsFromBankNotDataServers) {
  Rig rig;
  rig.run([](Rig& r) -> Task<void> {
    auto& writer = *r.cached[0];
    auto wf = co_await writer.create("/c/shared");
    (void)co_await writer.write(*wf, 0, to_buffer("bank-served content!"));

    auto& reader = *r.cached[1];
    auto rf = co_await reader.open("/c/shared");
    auto data = co_await reader.read(*rf, 0, 20);
    EXPECT_TRUE(data.has_value());
    if (data) { EXPECT_EQ(to_string(*data), "bank-served content!"); }
  }(rig));
  EXPECT_EQ(rig.cached[1]->stats().reads_from_bank, 1u);
  EXPECT_EQ(rig.cached[1]->stats().reads_from_lustre, 0u);
}

TEST(CachedLustre, WriterRevocationPurgesStaleBankEntries) {
  Rig rig;
  rig.run([](Rig& r) -> Task<void> {
    auto& a = *r.cached[0];
    auto& b = *r.cached[1];

    auto fa = co_await a.create("/c/doc");
    (void)co_await a.write(*fa, 0, to_buffer("version-A"));
    auto ra = co_await a.read(*fa, 0, 9);  // A reads its own publish
    EXPECT_TRUE(ra.has_value());

    // B takes the PW lock and writes: A's lock is revoked, A's published
    // blocks are purged, then B publishes the fresh content.
    auto fb = co_await b.open("/c/doc");
    EXPECT_TRUE((co_await b.write(*fb, 0, to_buffer("version-B"))).has_value());
    EXPECT_GE(r.cached[0]->stats().revocation_purges, 1u);

    // A reads again: must see B's version (via bank or via Lustre, either
    // path — but never the stale "version-A").
    auto r2 = co_await a.read(*fa, 0, 9);
    EXPECT_TRUE(r2.has_value());
    if (r2) { EXPECT_EQ(to_string(*r2), "version-B"); }
  }(rig));
}

TEST(CachedLustre, PingPongWritersStayCoherent) {
  Rig rig;
  rig.run([](Rig& r) -> Task<void> {
    auto& a = *r.cached[0];
    auto& b = *r.cached[1];
    auto fa = co_await a.create("/c/pingpong");
    auto fb = co_await b.open("/c/pingpong");
    EXPECT_TRUE(fb.has_value());
    for (int round = 0; round < 6; ++round) {
      const std::string text = "round-" + std::to_string(round) + "-data";
      auto& writer_fs = (round % 2 == 0) ? a : b;
      auto& writer_fd = (round % 2 == 0) ? fa : fb;
      auto& reader_fs = (round % 2 == 0) ? b : a;
      auto& reader_fd = (round % 2 == 0) ? fb : fa;
      EXPECT_TRUE(
          (co_await writer_fs.write(*writer_fd, 0, to_buffer(text))).has_value());
      auto got = co_await reader_fs.read(*reader_fd, 0, text.size());
      EXPECT_TRUE(got.has_value());
      if (got) { EXPECT_EQ(to_string(*got), text) << "round " << round; }
    }
  }(rig));
}

TEST(CachedLustre, UnlinkPurgesBank) {
  Rig rig(1);
  rig.run([](Rig& r) -> Task<void> {
    auto& fs = *r.cached[0];
    auto f = co_await fs.create("/c/gone");
    (void)co_await fs.write(*f, 0, to_buffer("soon to vanish"));
    (void)co_await fs.close(*f);
    EXPECT_TRUE((co_await fs.unlink("/c/gone")).has_value());
    // Recreate shorter: no stale tail may surface.
    auto f2 = co_await fs.create("/c/gone");
    (void)co_await fs.write(*f2, 0, to_buffer("new"));
    auto back = co_await fs.read(*f2, 0, 100);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(to_string(*back), "new"); }
  }(rig));
}

TEST(CachedLustre, BankFailureFallsBackToLustre) {
  Rig rig(1, /*n_mcds=*/2);
  rig.run([](Rig& r) -> Task<void> {
    auto& fs = *r.cached[0];
    auto f = co_await fs.create("/c/resilient");
    const Buffer payload =
        Buffer::take(std::vector<std::byte>(6 * kKiB, std::byte{42}));
    (void)co_await fs.write(*f, 0, payload);
    for (auto& m : r.mcds) m->stop();  // the whole bank dies
    auto back = co_await fs.read(*f, 0, 6 * kKiB);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(*back, payload); }
  }(rig));
  EXPECT_GE(rig.cached[0]->stats().reads_from_lustre, 1u);
}

}  // namespace
}  // namespace imca::lustre
