// Unit tests for the GlusterFS-like substrate: wire protocol codec, the
// translator stack, posix semantics end to end over the fabric, read-ahead,
// write-behind and namespace distribution.
#include <gtest/gtest.h>

#include <memory>

#include "gluster/client.h"
#include "gluster/distribute.h"
#include "gluster/protocol.h"
#include "gluster/read_ahead.h"
#include "gluster/server.h"
#include "gluster/write_behind.h"
#include "net/transport.h"

namespace imca::gluster {
namespace {

using fsapi::OpenFile;
using sim::EventLoop;
using sim::Task;

// --- protocol codec ---

TEST(FopCodec, RequestRoundTrip) {
  FopRequest req;
  req.type = FopType::kWrite;
  req.path = "/dir/file";
  req.offset = 12345;
  req.length = 678;
  req.mode = 0600;
  req.data = to_buffer("payload");
  ByteBuf wire = req.encode();
  auto back = FopRequest::decode(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->type, FopType::kWrite);
  EXPECT_EQ(back->path, "/dir/file");
  EXPECT_EQ(back->offset, 12345u);
  EXPECT_EQ(back->length, 678u);
  EXPECT_EQ(back->mode, 0600u);
  EXPECT_EQ(to_string(back->data), "payload");
}

TEST(FopCodec, ReplyRoundTrip) {
  FopReply rep;
  rep.errc = Errc::kNoEnt;
  rep.attr.inode = 9;
  rep.attr.size = 100;
  rep.data = to_buffer("bytes");
  rep.count = 5;
  ByteBuf wire = rep.encode();
  auto back = FopReply::decode(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->errc, Errc::kNoEnt);
  EXPECT_EQ(back->attr.inode, 9u);
  EXPECT_EQ(to_string(back->data), "bytes");
  EXPECT_EQ(back->count, 5u);
}

TEST(FopCodec, GarbageRejected) {
  ByteBuf junk;
  junk.put_u8(99);  // invalid fop type
  EXPECT_FALSE(FopRequest::decode(junk));
  ByteBuf empty;
  EXPECT_FALSE(FopRequest::decode(empty));
}

// --- end-to-end mount over the fabric ---

class GlusterTest : public ::testing::Test {
 protected:
  GlusterTest() : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    fabric_.add_node("server");
    fabric_.add_node("client");
    server_ = std::make_unique<GlusterServer>(rpc_, 0);
    server_->start();
    client_ = std::make_unique<GlusterClient>(rpc_, 1, 0);
  }

  void run(Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::unique_ptr<GlusterServer> server_;
  std::unique_ptr<GlusterClient> client_;
};

TEST_F(GlusterTest, CreateWriteReadStatUnlink) {
  run([](GlusterClient& fs) -> Task<void> {
    auto f = co_await fs.create("/a");
    EXPECT_TRUE(f.has_value());
    auto w = co_await fs.write(*f, 0, to_buffer("hello world"));
    EXPECT_TRUE(w.has_value());
    if (w) { EXPECT_EQ(*w, 11u); }
    auto r = co_await fs.read(*f, 6, 5);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "world"); }
    auto st = co_await fs.stat("/a");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 11u); }
    EXPECT_TRUE((co_await fs.close(*f)).has_value());
    EXPECT_TRUE((co_await fs.unlink("/a")).has_value());
    EXPECT_EQ((co_await fs.stat("/a")).error(), Errc::kNoEnt);
  }(*client_));
  // The data really lives in the server's object store.
  EXPECT_EQ(server_->object_store().file_count(), 0u);
}

TEST_F(GlusterTest, ErrorsCrossTheWire) {
  run([](GlusterClient& fs) -> Task<void> {
    EXPECT_EQ((co_await fs.open("/missing")).error(), Errc::kNoEnt);
    auto f = co_await fs.create("/dup");
    EXPECT_TRUE(f.has_value());
    EXPECT_EQ((co_await fs.create("/dup")).error(), Errc::kExist);
    EXPECT_EQ((co_await fs.read(OpenFile{9999}, 0, 1)).error(), Errc::kBadF);
  }(*client_));
}

TEST_F(GlusterTest, OpsTakeNetworkAndServerTime) {
  run([](GlusterClient& fs) -> Task<void> {
    auto f = co_await fs.create("/t");
    (void)co_await fs.write(*f, 0, Buffer::zeros(64 * kKiB));
    (void)co_await fs.read(*f, 0, 64 * kKiB);
  }(*client_));
  // Round trips, FUSE crossings and server fop work all advanced the clock.
  EXPECT_GT(loop_.now(), 200 * kMicro);
  EXPECT_GT(fabric_.node(0).cpu().total_busy(), 0u);
  EXPECT_GT(fabric_.node(1).cpu().total_busy(), 0u);
  EXPECT_EQ(server_->fops_served(), 3u);
}

TEST_F(GlusterTest, ColdReadPaysDiskWarmReadDoesNot) {
  SimDuration cold = 0, warm = 0;
  run([](GlusterClient& fs, GlusterServer& srv, EventLoop& loop,
         SimDuration& out_cold, SimDuration& out_warm) -> Task<void> {
    auto f = co_await fs.create("/d");
    (void)co_await fs.write(*f, 0, Buffer::zeros(256 * kKiB));
    srv.device().drop_caches();  // force media access
    SimTime t0 = loop.now();
    (void)co_await fs.read(*f, 0, 4096);
    out_cold = loop.now() - t0;
    t0 = loop.now();
    (void)co_await fs.read(*f, 0, 4096);  // server page cache now out_warm
    out_warm = loop.now() - t0;
  }(*client_, *server_, loop_, cold, warm));
  EXPECT_GT(cold, warm * 5);  // the seek dominates
}

TEST_F(GlusterTest, StatOfManyColdFilesHitsDisk) {
  SimDuration cold_time = 0;
  run([](GlusterClient& fs, GlusterServer& srv, EventLoop& loop,
         SimDuration& out_cold_time) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      auto f = co_await fs.create("/f" + std::to_string(i));
      (void)co_await fs.close(*f);
    }
    srv.device().drop_caches();
    const SimTime t0 = loop.now();
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE((co_await fs.stat("/f" + std::to_string(i))).has_value());
    }
    out_cold_time = loop.now() - t0;
    // Second pass: inode pages are cached, stats are disk-free.
    const SimTime t1 = loop.now();
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE((co_await fs.stat("/f" + std::to_string(i))).has_value());
    }
    EXPECT_LT(loop.now() - t1, out_cold_time);
  }(*client_, *server_, loop_, cold_time));
  // Cold stats paid at least the initial seek plus per-request media time.
  EXPECT_GT(cold_time, 10 * kMilli);
  std::uint64_t seeks = 0;
  for (std::size_t i = 0; i < server_->device().raid().members(); ++i) {
    seeks += server_->device().raid().disk(i).seeks();
  }
  EXPECT_GT(seeks, 0u);
}

// --- read-ahead translator ---

TEST_F(GlusterTest, ReadAheadServesSequentialFromBuffer) {
  client_->push_translator(std::make_unique<ReadAheadXlator>(64 * kKiB));
  auto* ra = static_cast<ReadAheadXlator*>(&client_->top());
  const std::uint64_t before_calls = rpc_.calls_made();
  run([](GlusterClient& fs) -> Task<void> {
    auto f = co_await fs.create("/seq");
    (void)co_await fs.write(*f, 0, Buffer::zeros(256 * kKiB));
    // Sequential 4K reads: most are served out of the prefetch window.
    for (std::uint64_t off = 0; off < 256 * kKiB; off += 4 * kKiB) {
      auto r = co_await fs.read(fsapi::OpenFile{f->fd}, off, 4 * kKiB);
      EXPECT_TRUE(r.has_value());
    }
  }(*client_));
  EXPECT_GT(ra->prefetch_hits(), 40u);
  // 64 reads collapse into a handful of 64K server fetches.
  const std::uint64_t wire_reads = rpc_.calls_made() - before_calls;
  EXPECT_LT(wire_reads, 64u + 2u + 8u);  // create+write+~4 prefetches << 64
}

TEST_F(GlusterTest, ReadAheadNeverServesStaleAfterWrite) {
  client_->push_translator(std::make_unique<ReadAheadXlator>(64 * kKiB));
  run([](GlusterClient& fs) -> Task<void> {
    auto f = co_await fs.create("/fresh");
    (void)co_await fs.write(*f, 0, to_buffer("old old old old "));
    auto r1 = co_await fs.read(*f, 0, 16);  // buffers the region
    EXPECT_TRUE(r1.has_value());
    (void)co_await fs.write(*f, 0, to_buffer("new!"));
    auto r2 = co_await fs.read(*f, 0, 4);
    EXPECT_TRUE(r2.has_value());
    if (r2) { EXPECT_EQ(to_string(*r2), "new!"); }
  }(*client_));
}

// --- write-behind translator ---

TEST_F(GlusterTest, WriteBehindAggregatesSequentialWrites) {
  client_->push_translator(std::make_unique<WriteBehindXlator>(64 * kKiB));
  auto* wb = static_cast<WriteBehindXlator*>(&client_->top());
  run([](GlusterClient& fs) -> Task<void> {
    auto f = co_await fs.create("/wb");
    for (int i = 0; i < 32; ++i) {
      auto w = co_await fs.write(*f, static_cast<std::uint64_t>(i) * 1024,
                                 Buffer::take(std::vector<std::byte>(1024, std::byte{7})));
      EXPECT_TRUE(w.has_value());
    }
    (void)co_await fs.close(*f);  // flushes the tail
  }(*client_));
  EXPECT_GT(wb->absorbed_writes(), 20u);
  EXPECT_LT(wb->flushes(), 4u);
  // All 32 KiB really landed.
  EXPECT_EQ(server_->object_store().stat("/wb").value().size, 32u * 1024);
}

TEST_F(GlusterTest, WriteBehindFlushesBeforeRead) {
  client_->push_translator(std::make_unique<WriteBehindXlator>(1 * kMiB));
  run([](GlusterClient& fs) -> Task<void> {
    auto f = co_await fs.create("/wbr");
    (void)co_await fs.write(*f, 0, to_buffer("buffered"));
    auto r = co_await fs.read(*f, 0, 8);  // must see the buffered bytes
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "buffered"); }
    auto st = co_await fs.stat("/wbr");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 8u); }
  }(*client_));
}

// --- distribute (multi-brick namespace) ---

TEST(Distribute, SpreadsNamespaceAcrossBricks) {
  EventLoop loop;
  net::Fabric fabric(loop, net::ipoib_rc());
  net::RpcSystem rpc(fabric);
  constexpr std::size_t kBricks = 3;
  std::vector<std::unique_ptr<GlusterServer>> bricks;
  for (std::size_t b = 0; b < kBricks; ++b) {
    fabric.add_node("brick" + std::to_string(b));
    bricks.push_back(
        std::make_unique<GlusterServer>(rpc, static_cast<net::NodeId>(b)));
    bricks.back()->start();
  }
  const auto client_node = fabric.add_node("client").id();

  GlusterClient client(rpc, client_node, /*server=*/0);
  std::vector<std::unique_ptr<ProtocolClient>> conns;
  for (std::size_t b = 0; b < kBricks; ++b) {
    conns.push_back(std::make_unique<ProtocolClient>(
        rpc, client_node, static_cast<net::NodeId>(b)));
  }
  client.push_translator(std::make_unique<DistributeXlator>(std::move(conns)));

  loop.spawn([](GlusterClient& fs) -> Task<void> {
    for (int i = 0; i < 30; ++i) {
      const std::string path = "/spread/file" + std::to_string(i);
      auto f = co_await fs.create(path);
      EXPECT_TRUE(f.has_value());
      (void)co_await fs.write(*f, 0, to_buffer("x" + std::to_string(i)));
      (void)co_await fs.close(*f);
    }
    // Every file is reachable afterwards.
    for (int i = 0; i < 30; ++i) {
      auto st = co_await fs.stat("/spread/file" + std::to_string(i));
      EXPECT_TRUE(st.has_value());
    }
  }(client));
  loop.run();

  // Each brick holds a non-empty, disjoint share of the namespace.
  std::size_t total = 0;
  for (const auto& b : bricks) {
    EXPECT_GT(b->object_store().file_count(), 0u);
    total += b->object_store().file_count();
  }
  EXPECT_EQ(total, 30u);
}

TEST(Distribute, CrossBrickRenameMigratesData) {
  EventLoop loop;
  net::Fabric fabric(loop, net::ipoib_rc());
  net::RpcSystem rpc(fabric);
  std::vector<std::unique_ptr<GlusterServer>> bricks;
  for (int b = 0; b < 3; ++b) {
    fabric.add_node("brick" + std::to_string(b));
    bricks.push_back(
        std::make_unique<GlusterServer>(rpc, static_cast<net::NodeId>(b)));
    bricks.back()->start();
  }
  const auto cnode = fabric.add_node("client").id();
  GlusterClient client(rpc, cnode, 0);
  std::vector<std::unique_ptr<ProtocolClient>> conns;
  for (int b = 0; b < 3; ++b) {
    conns.push_back(std::make_unique<ProtocolClient>(
        rpc, cnode, static_cast<net::NodeId>(b)));
  }
  auto dht = std::make_unique<DistributeXlator>(std::move(conns));
  auto* dht_ptr = dht.get();
  client.push_translator(std::move(dht));

  // Captureless lambda: a capturing lambda temporary dies at the end of the
  // full expression while the lazy coroutine frame still references it.
  loop.spawn([](DistributeXlator* dx, GlusterClient& fs) -> Task<void> {
    // Find a pair of names hashing to different bricks.
    std::string from = "/mv/src0", to;
    for (int i = 0;; ++i) {
      to = "/mv/dst" + std::to_string(i);
      if (dx->brick_of(to) != dx->brick_of(from)) break;
    }
    auto f = co_await fs.create(from);
    (void)co_await fs.write(*f, 0, to_buffer("migrates across bricks"));
    EXPECT_TRUE((co_await fs.rename(from, to)).has_value());
    EXPECT_EQ((co_await fs.stat(from)).error(), Errc::kNoEnt);
    auto g = co_await fs.open(to);
    auto back = co_await fs.read(*g, 0, 100);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(to_string(*back), "migrates across bricks"); }
  }(dht_ptr, client));
  loop.run();
}

}  // namespace
}  // namespace imca::gluster
