// Tests for the IMCa core: block geometry, key scheme, and the CMCache /
// SMCache translators deployed end to end (client node + GlusterFS brick +
// MCD array on a simulated fabric).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "gluster/client.h"
#include "gluster/server.h"
#include "imca/block_mapper.h"
#include "imca/cmcache.h"
#include "imca/config.h"
#include "imca/keys.h"
#include "imca/smcache.h"
#include "memcache/server.h"
#include "net/transport.h"

namespace imca::core {
namespace {

using sim::EventLoop;
using sim::Task;

// --- keys ---

TEST(Keys, PaperKeyScheme) {
  EXPECT_EQ(data_key("/dir/f", 0), "/dir/f:0");
  EXPECT_EQ(data_key("/dir/f", 4096), "/dir/f:4096");
  EXPECT_EQ(stat_key("/dir/f"), "/dir/f:stat");
}

// --- BlockMapper (parameterized over the paper's block sizes) ---

class BlockMapperP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockMapperP, CoveringSpansExactlyTheRange) {
  const BlockMapper m(GetParam());
  const std::uint64_t bs = m.block_size();
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t offset = rng.below(10 * bs + 3);
    const std::uint64_t len = 1 + rng.below(6 * bs);
    const auto blocks = m.covering(offset, len);
    ASSERT_FALSE(blocks.empty());
    // First block contains offset; last contains the final byte.
    EXPECT_EQ(blocks.front(), offset / bs);
    EXPECT_EQ(blocks.back(), (offset + len - 1) / bs);
    // Contiguous, no gaps.
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      EXPECT_EQ(blocks[i], blocks[i - 1] + 1);
    }
    // Aligned length covers the range and is block-multiple.
    const auto alen = m.aligned_length(offset, len);
    EXPECT_EQ(alen % bs, 0u);
    EXPECT_GE(m.align_down(offset) + alen, offset + len);
    EXPECT_EQ(alen / bs, blocks.size());
  }
}

TEST_P(BlockMapperP, AlignmentAlgebra) {
  const BlockMapper m(GetParam());
  const std::uint64_t bs = m.block_size();
  EXPECT_EQ(m.align_down(0), 0u);
  EXPECT_EQ(m.align_up(0), 0u);
  EXPECT_EQ(m.align_down(bs - 1), 0u);
  EXPECT_EQ(m.align_up(bs - 1), bs);
  EXPECT_EQ(m.align_down(bs), bs);
  EXPECT_EQ(m.align_up(bs), bs);
  EXPECT_TRUE(m.covering(123, 0).empty());
  EXPECT_EQ(m.aligned_length(123, 0), 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperBlockSizes, BlockMapperP,
                         ::testing::Values(256, 2 * kKiB, 8 * kKiB));

// --- full IMCa deployment fixture ---

struct Deployment {
  explicit Deployment(std::size_t n_mcds, ImcaConfig cfg = {})
      : fabric(loop, net::ipoib_rc()), rpc(fabric) {
    server_node = fabric.add_node("gluster-server").id();
    for (std::size_t i = 0; i < n_mcds; ++i) {
      mcd_nodes.push_back(fabric.add_node("mcd" + std::to_string(i)).id());
    }
    client_node = fabric.add_node("client0").id();

    for (auto n : mcd_nodes) {
      mcds.push_back(std::make_unique<memcache::McServer>(rpc, n, 6 * kGiB));
      mcds.back()->start();
    }

    server = std::make_unique<gluster::GlusterServer>(rpc, server_node);
    auto sm = std::make_unique<SmCacheXlator>(
        loop,
        std::make_unique<mcclient::McClient>(rpc, server_node, mcd_nodes,
                                             make_selector(cfg)),
        cfg);
    smcache = sm.get();
    server->push_translator(std::move(sm));
    server->start();

    client = std::make_unique<gluster::GlusterClient>(rpc, client_node,
                                                      server_node);
    auto cm = std::make_unique<CmCacheXlator>(
        std::make_unique<mcclient::McClient>(rpc, client_node, mcd_nodes,
                                             make_selector(cfg)),
        cfg);
    cmcache = cm.get();
    client->push_translator(std::move(cm));
  }

  void run(Task<void> t) {
    loop.spawn(std::move(t));
    loop.run();
  }

  EventLoop loop;
  net::Fabric fabric;
  net::RpcSystem rpc;
  net::NodeId server_node = 0;
  net::NodeId client_node = 0;
  std::vector<net::NodeId> mcd_nodes;
  std::vector<std::unique_ptr<memcache::McServer>> mcds;
  std::unique_ptr<gluster::GlusterServer> server;
  std::unique_ptr<gluster::GlusterClient> client;
  SmCacheXlator* smcache = nullptr;
  CmCacheXlator* cmcache = nullptr;
};

TEST(Imca, StatServedFromCacheAfterOpen) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/file");
    (void)co_await dd.client->write(*f, 0, to_buffer("0123456789"));
    // Reopen publishes the stat structure into the MCDs.
    auto f2 = co_await dd.client->open("/file");
    EXPECT_TRUE(f2.has_value());
    const auto fops_before = dd.server->fops_served();
    auto st = co_await dd.client->stat("/file");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 10u); }
    // The stat never reached the GlusterFS server.
    EXPECT_EQ(dd.server->fops_served(), fops_before);
  }(d));
  EXPECT_GE(d.cmcache->stats().stat_hits, 1u);
  EXPECT_EQ(d.cmcache->stats().stat_misses, 0u);
}

TEST(Imca, StatMissPropagatesToServer) {
  Deployment d(1);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/u");  // create publishes nothing
    (void)f;
    // Kill the daemon's contents so the stat item is gone.
    dd.mcds[0]->cache().flush_all();
    auto st = co_await dd.client->stat("/u");
    EXPECT_TRUE(st.has_value());
  }(d));
  EXPECT_EQ(d.cmcache->stats().stat_hits, 0u);
  EXPECT_GE(d.cmcache->stats().stat_misses, 1u);
}

TEST(Imca, WritePopulatesCacheReadsSkipServer) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/data");
    // Write 16 KiB; SMCache reads it back and publishes all 8 blocks (2K).
    std::vector<std::byte> pattern(16 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>(i & 0xFF);
    }
    (void)co_await dd.client->write(*f, 0, Buffer::take(std::move(pattern)));

    const auto fops_before = dd.server->fops_served();
    // Sequential 2 KiB reads: every block comes from the MCD array.
    for (std::uint64_t off = 0; off < 16 * kKiB; off += 2 * kKiB) {
      auto r = co_await dd.client->read(*f, off, 2 * kKiB);
      EXPECT_TRUE(r.has_value());
      if (r) {
        EXPECT_EQ(r->size(), 2 * kKiB);
        for (std::size_t i = 0; i < r->size(); ++i) {
          EXPECT_EQ(r->at(i), static_cast<std::byte>((off + i) & 0xFF));
        }
      }
    }
    EXPECT_EQ(dd.server->fops_served(), fops_before);  // zero server reads
  }(d));
  EXPECT_EQ(d.cmcache->stats().reads_from_cache, 8u);
  EXPECT_EQ(d.cmcache->stats().reads_forwarded, 0u);
}

TEST(Imca, ReadMissForwardsAndRepopulates) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/miss");
    (void)co_await dd.client->write(*f, 0, Buffer::zeros(8 * kKiB));
    // Nuke the cache bank: every block gone.
    for (auto& m : dd.mcds) m->cache().flush_all();

    auto r1 = co_await dd.client->read(*f, 0, 2 * kKiB);  // miss -> server
    EXPECT_TRUE(r1.has_value());
    EXPECT_EQ(dd.cmcache->stats().reads_forwarded, 1u);

    auto r2 = co_await dd.client->read(*f, 0, 2 * kKiB);  // repopulated
    EXPECT_TRUE(r2.has_value());
    EXPECT_EQ(dd.cmcache->stats().reads_from_cache, 1u);
  }(d));
}

TEST(Imca, UnalignedReadAssemblesAcrossBlocks) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/unaligned");
    std::vector<std::byte> pattern(8 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i * 7) & 0xFF);
    }
    const Buffer payload = Buffer::take(std::move(pattern));
    (void)co_await dd.client->write(*f, 0, payload);
    // Read straddling three 2K blocks at odd offsets, served from cache.
    auto r = co_await dd.client->read(*f, 1500, 4000);
    EXPECT_TRUE(r.has_value());
    if (r) {
      EXPECT_EQ(r->size(), 4000u);
      for (std::size_t i = 0; i < r->size(); ++i) {
        EXPECT_EQ(r->at(i), payload.at(1500 + i));
      }
    }
  }(d));
  EXPECT_EQ(d.cmcache->stats().reads_from_cache, 1u);
}

TEST(Imca, ShortReadAtEofThroughCache) {
  Deployment d(1);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/short");
    (void)co_await dd.client->write(*f, 0, to_buffer("abc"));  // 3 bytes
    auto r = co_await dd.client->read(*f, 0, 2 * kKiB);  // short block cached
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "abc"); }
    auto r2 = co_await dd.client->read(*f, 2, 100);
    EXPECT_TRUE(r2.has_value());
    if (r2) { EXPECT_EQ(to_string(*r2), "c"); }
  }(d));
}

TEST(Imca, WriteAfterWriteReadsFresh) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/fresh");
    (void)co_await dd.client->write(*f, 0, to_buffer("old old old!"));
    auto r1 = co_await dd.client->read(*f, 0, 12);
    EXPECT_TRUE(r1.has_value());
    (void)co_await dd.client->write(*f, 4, to_buffer("NEW"));
    auto r2 = co_await dd.client->read(*f, 0, 12);
    EXPECT_TRUE(r2.has_value());
    if (r2) { EXPECT_EQ(to_string(*r2), "old NEW old!"); }
    // Stat reflects the mtime bump without asking the server.
    auto st = co_await dd.client->stat("/fresh");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 12u); }
  }(d));
}

TEST(Imca, HoleWritePurgesStaleEofBlock) {
  // Regression: a short block cached at the old EOF must not be served as
  // EOF after a later write extends the file past it.
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/hole");
    (void)co_await dd.client->write(*f, 0, to_buffer("tiny"));     // 4 bytes
    auto warm = co_await dd.client->read(*f, 0, 2 * kKiB);        // caches short block
    EXPECT_TRUE(warm.has_value());
    // Extend far past the old EOF, leaving a zero hole.
    (void)co_await dd.client->write(*f, 10 * kKiB, to_buffer("tail"));
    // A read across the old boundary must see 2K of data (zeros after
    // "tiny"), not a 4-byte EOF.
    auto r = co_await dd.client->read(*f, 0, 2 * kKiB);
    EXPECT_TRUE(r.has_value());
    if (r) {
      EXPECT_EQ(r->size(), 2 * kKiB);
      EXPECT_EQ(to_string(r->slice(0, 4)), "tiny");
      EXPECT_EQ(r->at(100), std::byte{0});
    }
    auto st = co_await dd.client->stat("/hole");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 10 * kKiB + 4); }
  }(d));
}

TEST(Imca, DeletePurgesNoFalsePositives) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/reborn");
    (void)co_await dd.client->write(*f, 0, to_buffer("FIRST LIFE!!"));
    (void)co_await dd.client->read(*f, 0, 12);
    (void)co_await dd.client->close(*f);
    (void)co_await dd.client->unlink("/reborn");
    // Recreate with different, shorter contents.
    auto f2 = co_await dd.client->create("/reborn");
    (void)co_await dd.client->write(*f2, 0, to_buffer("2nd"));
    auto r = co_await dd.client->read(*f2, 0, 100);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "2nd"); }
    auto st = co_await dd.client->stat("/reborn");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 3u); }
  }(d));
}

TEST(Imca, ClosePurgesFileData) {
  Deployment d(1);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/closed");
    (void)co_await dd.client->write(*f, 0, Buffer::zeros(4 * kKiB));
    EXPECT_GT(dd.mcds[0]->cache().item_count(), 0u);
    (void)co_await dd.client->close(*f);
    // Close discarded the blocks and the stat item.
    EXPECT_EQ(dd.mcds[0]->cache().item_count(), 0u);
  }(d));
}

TEST(Imca, McdFailuresNeverCorruptData) {
  // Paper §4.4: writes are durable at the server before MCD updates, so
  // killing daemons at any point must never change what reads return.
  Deployment d(3);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/durable");
    std::vector<std::byte> pattern(12 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i * 13) & 0xFF);
    }
    const Buffer payload = Buffer::take(std::move(pattern));
    (void)co_await dd.client->write(*f, 0, payload);
    (void)co_await dd.client->read(*f, 0, 12 * kKiB);  // warm the bank

    dd.mcds[1]->stop();  // kill one daemon mid-run
    auto r1 = co_await dd.client->read(*f, 0, 12 * kKiB);
    EXPECT_TRUE(r1.has_value());
    if (r1) { EXPECT_EQ(*r1, payload); }

    dd.mcds[0]->stop();
    dd.mcds[2]->stop();  // whole bank down
    auto r2 = co_await dd.client->read(*f, 3000, 5000);
    EXPECT_TRUE(r2.has_value());
    if (r2) {
      EXPECT_TRUE(r2->content_equals(payload.slice(3000, r2->size())));
    }
    // Writes still work with the bank gone.
    (void)co_await dd.client->write(*f, 0, to_buffer("post-mortem"));
    auto r3 = co_await dd.client->read(*f, 0, 11);
    EXPECT_TRUE(r3.has_value());
    if (r3) { EXPECT_EQ(to_string(*r3), "post-mortem"); }
  }(d));
}

TEST(Imca, ThreadedUpdatesEventuallyCoherent) {
  ImcaConfig cfg;
  cfg.threaded_updates = true;
  Deployment d(2, cfg);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/async");
    (void)co_await dd.client->write(*f, 0, to_buffer("deferred data"));
    co_await dd.smcache->quiesce();  // wait for the worker to publish
    const auto fops_before = dd.server->fops_served();
    auto r = co_await dd.client->read(*f, 0, 13);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "deferred data"); }
    EXPECT_EQ(dd.server->fops_served(), fops_before);  // served by the bank
  }(d));
  EXPECT_GE(d.smcache->stats().worker_jobs, 1u);
}

TEST(Imca, ThreadedWriteCheaperThanSyncWrite) {
  // Fig 6(c): the sync read-back sits in the write path; the worker thread
  // removes it.
  auto measure = [](bool threaded) {
    ImcaConfig cfg;
    cfg.threaded_updates = threaded;
    Deployment d(1, cfg);
    SimDuration write_time = 0;
    d.run([](Deployment& dd, SimDuration& out_write_time) -> Task<void> {
      auto f = co_await dd.client->create("/w");
      const SimTime t0 = dd.loop.now();
      for (int i = 0; i < 32; ++i) {
        (void)co_await dd.client->write(
            *f, static_cast<std::uint64_t>(i) * 2048,
            Buffer::take(std::vector<std::byte>(2048, std::byte{1})));
      }
      out_write_time = dd.loop.now() - t0;
    }(d, write_time));
    return write_time;
  };
  const SimDuration sync_t = measure(false);
  const SimDuration threaded_t = measure(true);
  EXPECT_LT(threaded_t, sync_t);
}

TEST(Imca, TruncatePurgesTailBlocks) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/trunc");
    (void)co_await dd.client->write(
        *f, 0, Buffer::take(std::vector<std::byte>(8 * kKiB, std::byte{7})));
    (void)co_await dd.client->read(*f, 0, 8 * kKiB);  // bank fully warm

    EXPECT_TRUE((co_await dd.client->truncate("/trunc", 3 * kKiB)).has_value());
    // Reads past the new EOF must be empty, not stale cached bytes.
    auto past = co_await dd.client->read(*f, 4 * kKiB, 1 * kKiB);
    EXPECT_TRUE(past.has_value());
    if (past) { EXPECT_TRUE(past->empty()); }
    // The surviving prefix is intact, and stat shows the new size (cached).
    auto head = co_await dd.client->read(*f, 0, 3 * kKiB);
    EXPECT_TRUE(head.has_value());
    if (head) {
      EXPECT_EQ(head->size(), 3 * kKiB);
      EXPECT_EQ(head->at(0), std::byte{7});
    }
    auto st = co_await dd.client->stat("/trunc");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 3 * kKiB); }
    // Growing back exposes zeros, not resurrected bytes.
    EXPECT_TRUE((co_await dd.client->truncate("/trunc", 6 * kKiB)).has_value());
    auto regrown = co_await dd.client->read(*f, 4 * kKiB, 16);
    EXPECT_TRUE(regrown.has_value());
    if (regrown) {
      EXPECT_EQ(regrown->size(), 16u);
      EXPECT_EQ(regrown->at(0), std::byte{0});
    }
  }(d));
}

TEST(Imca, RenameMovesCacheIdentity) {
  Deployment d(2);
  d.run([](Deployment& dd) -> Task<void> {
    auto f = co_await dd.client->create("/old-name");
    (void)co_await dd.client->write(*f, 0, to_buffer("travels with the file"));
    (void)co_await dd.client->read(*f, 0, 21);  // cached under /old-name

    EXPECT_TRUE((co_await dd.client->rename("/old-name", "/new-name"))
                    .has_value());
    // The open handle follows the rename.
    auto via_fd = co_await dd.client->read(*f, 0, 21);
    EXPECT_TRUE(via_fd.has_value());
    if (via_fd) { EXPECT_EQ(to_string(*via_fd), "travels with the file"); }
    // The old name is gone everywhere — including the stat cache.
    EXPECT_EQ((co_await dd.client->stat("/old-name")).error(), Errc::kNoEnt);
    auto st = co_await dd.client->stat("/new-name");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 21u); }
  }(d));
}

TEST(Imca, RenameOverExistingTargetPurgesItsCache) {
  Deployment d(1);
  d.run([](Deployment& dd) -> Task<void> {
    auto fa = co_await dd.client->create("/a");
    (void)co_await dd.client->write(*fa, 0, to_buffer("contents of A"));
    auto fb = co_await dd.client->create("/b");
    (void)co_await dd.client->write(*fb, 0, to_buffer("victim B, longer text"));
    (void)co_await dd.client->read(*fb, 0, 21);  // B cached

    EXPECT_TRUE((co_await dd.client->rename("/a", "/b")).has_value());
    // /b must now read as A's contents, never the cached victim bytes.
    auto fb2 = co_await dd.client->open("/b");
    auto data = co_await dd.client->read(*fb2, 0, 100);
    EXPECT_TRUE(data.has_value());
    if (data) { EXPECT_EQ(to_string(*data), "contents of A"); }
  }(d));
}

// --- randomized end-to-end integrity (property test) ---

class ImcaIntegrityP
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(ImcaIntegrityP, RandomOpsMatchReferenceModel) {
  const auto [block_size, n_mcds] = GetParam();
  ImcaConfig cfg;
  cfg.block_size = block_size;
  Deployment d(n_mcds, cfg);

  d.run([](Deployment& dd, std::uint64_t bs) -> Task<void> {
    Rng rng(0xC0FFEE ^ bs);
    std::map<std::string, std::string> model;  // ground truth
    std::map<std::string, fsapi::OpenFile> open_files;
    const std::vector<std::string> names = {"/p/a", "/p/b", "/p/c", "/p/d"};

    for (int step = 0; step < 400; ++step) {
      const std::string& path = names[rng.below(names.size())];
      const bool exists = model.contains(path);
      switch (rng.below(8)) {
        case 0: {  // create
          auto f = co_await dd.client->create(path);
          if (exists) {
            EXPECT_EQ(f.error(), Errc::kExist) << path;
          } else {
            EXPECT_TRUE(f.has_value()) << path;
            model[path] = "";
            if (f) open_files[path] = *f;
          }
          break;
        }
        case 1: {  // write
          if (!open_files.contains(path)) break;
          const std::uint64_t max_off = model[path].size() + 3000;
          const std::uint64_t off = rng.below(max_off + 1);
          const std::uint64_t len = 1 + rng.below(5000);
          std::string data(len, '\0');
          for (auto& ch : data) {
            ch = static_cast<char>('a' + rng.below(26));
          }
          auto w = co_await dd.client->write(open_files[path], off,
                                             to_buffer(data));
          EXPECT_TRUE(w.has_value()) << path;
          std::string& ref = model[path];
          if (ref.size() < off + len) ref.resize(off + len, '\0');
          ref.replace(off, len, data);
          break;
        }
        case 2:
        case 3: {  // read (weighted: reads dominate the paper's workloads)
          if (!open_files.contains(path)) break;
          const std::string& ref = model[path];
          const std::uint64_t off = rng.below(ref.size() + 2000 + 1);
          const std::uint64_t len = 1 + rng.below(6000);
          auto r = co_await dd.client->read(open_files[path], off, len);
          EXPECT_TRUE(r.has_value()) << path;
          if (r) {
            std::string expect;
            if (off < ref.size()) {
              expect = ref.substr(off, std::min<std::uint64_t>(
                                           len, ref.size() - off));
            }
            EXPECT_EQ(to_string(*r), expect)
                << path << " off=" << off << " len=" << len
                << " step=" << step;
          }
          break;
        }
        case 4: {  // stat
          auto st = co_await dd.client->stat(path);
          if (exists) {
            EXPECT_TRUE(st.has_value()) << path;
            if (st) { EXPECT_EQ(st->size, model[path].size()) << path; }
          } else {
            EXPECT_EQ(st.error(), Errc::kNoEnt) << path;
          }
          break;
        }
        case 5: {  // unlink (rarely; close first if open)
          if (!exists || rng.below(4) != 0) break;
          if (open_files.contains(path)) {
            (void)co_await dd.client->close(open_files[path]);
            open_files.erase(path);
          }
          EXPECT_TRUE((co_await dd.client->unlink(path)).has_value()) << path;
          model.erase(path);
          break;
        }
        case 6: {  // truncate (shrink or grow)
          if (!exists) break;
          const std::uint64_t size = rng.below(model[path].size() + 4000 + 1);
          EXPECT_TRUE(
              (co_await dd.client->truncate(path, size)).has_value())
              << path;
          model[path].resize(size, '\0');
          break;
        }
        case 7: {  // rename (only when the target is not open: a handle to
                   // a replaced file keeps the old bytes under POSIX, which
                   // this path-keyed model intentionally does not support)
          if (!exists) break;
          const std::string& target = names[rng.below(names.size())];
          if (target == path || open_files.contains(target)) break;
          EXPECT_TRUE(
              (co_await dd.client->rename(path, target)).has_value())
              << path << "->" << target;
          model[target] = std::move(model[path]);
          model.erase(path);
          if (open_files.contains(path)) {
            open_files[target] = open_files[path];
            open_files.erase(path);
          }
          break;
        }
      }
    }
  }(d, block_size));

  // The cache did real work during the run.
  EXPECT_GT(d.cmcache->stats().blocks_requested, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BlockSizesAndBankWidths, ImcaIntegrityP,
    ::testing::Values(std::tuple{256ull, 1ul}, std::tuple{2 * kKiB, 2ul},
                      std::tuple{2 * kKiB, 4ul}, std::tuple{8 * kKiB, 3ul}));

}  // namespace
}  // namespace imca::core
