// Durable write-back unit suite (DESIGN.md §5j) — the contract points the
// crash matrix cannot isolate: read-your-writes ACROSS clients through the
// shared dirty index, degradation to write-through when the dirty quorum is
// unavailable (accounted, never silent), backpressure at the dirty-memory
// bound, the fsync barrier making acked bytes brick-durable before quorum
// death, total-loss accounting with the ledger following a rename, and the
// flusher's bounded retry/backoff riding out a brick outage.
//
// Note: gtest ASSERT_* macros use `return` and cannot appear inside a
// coroutine body, so the tests guard with EXPECT_* + early co_return.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/testbed.h"
#include "common/units.h"
#include "imca/writeback.h"

namespace imca {
namespace {

using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using sim::Task;

constexpr SimDuration kNeverFlush = 10'000 * kMilli;  // > any test's runtime

GlusterTestbedConfig wb_config(std::size_t n_mcds, std::size_t n_clients) {
  GlusterTestbedConfig cfg;
  cfg.n_mcds = n_mcds;
  cfg.n_clients = n_clients;
  cfg.imca.writeback = true;
  cfg.imca.wb_replicas = 2;
  cfg.imca.wb_quorum = 2;
  // Failover-era client params (op_timeout = 0 means seed behaviour: a dead
  // daemon stays dead forever, so crashed-then-restarted MCDs never rejoin).
  cfg.imca.mcd_op_timeout = 2 * kMilli;
  return cfg;
}

const core::WritebackStats& wb_stats(GlusterTestbed& bed, std::size_t i) {
  return bed.cmcache(i).writeback()->stats();
}

TEST(WritebackTest, ReadYourWritesAcrossClients) {
  auto cfg = wb_config(3, 2);
  cfg.imca.wb_flush_delay = kNeverFlush;  // extents stay dirty throughout
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    const std::string payload(8192, 'w');
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    auto wrote = co_await bed.client(0).write(*f, 0, to_buffer(payload));
    EXPECT_TRUE(wrote.has_value());
    EXPECT_EQ(wb_stats(bed, 0).absorbed, 1u);  // acked from the MCD tier

    // A DIFFERENT mount reads before any flush: the merged dirty index is
    // shared state, so the bytes must be visible even though the brick file
    // is still empty.
    auto g = co_await bed.client(1).open("/f");
    EXPECT_TRUE(g.has_value());
    if (!g) co_return;
    auto got = co_await bed.client(1).read(*g, 0, 8192);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(to_string(*got), payload); }
    EXPECT_GE(wb_stats(bed, 1).overlay_reads, 1u);
    // stat takes the dirty size floor, not the brick's zero.
    auto st = co_await bed.client(1).stat("/f");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 8192u); }

    // After the drain the brick owns the bytes and the view is unchanged.
    co_await bed.sync_writebacks();
    EXPECT_EQ(wb_stats(bed, 0).flushed_extents, 1u);
    EXPECT_EQ(wb_stats(bed, 0).lost_extents, 0u);
    got = co_await bed.client(1).read(*g, 0, 8192);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(to_string(*got), payload); }
  }(tb));
}

TEST(WritebackTest, QuorumUnavailableDegradesToWriteThrough) {
  // One daemon < wb_quorum = 2: the write can never reach a dirty quorum,
  // so it must land on the brick directly — counted, and byte-correct.
  auto cfg = wb_config(1, 1);
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    auto wrote = co_await bed.client(0).write(*f, 0, to_buffer("degraded"));
    EXPECT_TRUE(wrote.has_value());
    EXPECT_EQ(wb_stats(bed, 0).absorbed, 0u);
    EXPECT_EQ(wb_stats(bed, 0).degraded_writes, 1u);
    auto got = co_await bed.client(0).read(*f, 0, 8);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(to_string(*got), "degraded"); }
  }(tb));
}

TEST(WritebackTest, DirtyBoundShedsWithBackpressure) {
  auto cfg = wb_config(3, 1);
  cfg.imca.wb_flush_delay = kNeverFlush;
  cfg.imca.wb_dirty_limit = 4096;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    // Exactly at the bound: absorbed.
    auto w1 = co_await bed.client(0).write(*f, 0, to_buffer(std::string(4096, 'a')));
    EXPECT_TRUE(w1.has_value());
    EXPECT_EQ(wb_stats(bed, 0).absorbed, 1u);
    // One byte over: shed to write-through — and the shed drains the path
    // first, so this write cannot be clobbered by the older dirty epoch.
    auto w2 = co_await bed.client(0).write(*f, 4096, to_buffer("b"));
    EXPECT_TRUE(w2.has_value());
    EXPECT_EQ(wb_stats(bed, 0).backpressure_sheds, 1u);
    auto got = co_await bed.client(0).read(*f, 4095, 2);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(to_string(*got), "ab"); }
  }(tb));
}

TEST(WritebackTest, FsyncBarrierMakesBytesSurviveQuorumDeath) {
  auto cfg = wb_config(2, 1);
  cfg.imca.wb_flush_delay = kNeverFlush;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    const std::string payload(4096, 'd');
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    EXPECT_TRUE((co_await bed.client(0).write(*f, 0, to_buffer(payload))).has_value());
    EXPECT_TRUE((co_await bed.client(0).fsync(*f)).has_value());
    EXPECT_EQ(wb_stats(bed, 0).flushed_extents, 1u);
    EXPECT_EQ(bed.cmcache(0).writeback()->dirty_bytes(), 0u);

    // Every dirty replica dies — but fsync already drained, so nothing is
    // dirty, nothing is lost, and the brick serves the bytes.
    bed.mcd(0).stop();
    bed.mcd(1).stop();
    auto got = co_await bed.client(0).read(*f, 0, 4096);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(to_string(*got), payload); }
    EXPECT_EQ(wb_stats(bed, 0).lost_extents, 0u);
  }(tb));
}

TEST(WritebackTest, DirtyQuorumDeathIsAccountedLoss) {
  auto cfg = wb_config(2, 1);
  cfg.imca.wb_flush_delay = kNeverFlush;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    EXPECT_TRUE((co_await bed.client(0)
                     .write(*f, 0, to_buffer(std::string(4096, 'x'))))
                    .has_value());
    EXPECT_EQ(wb_stats(bed, 0).absorbed, 1u);

    // Both replicas die before any flush: the bytes are genuinely gone.
    bed.mcd(0).stop();
    bed.mcd(1).stop();
    co_await bed.sync_writebacks();
    EXPECT_EQ(wb_stats(bed, 0).lost_extents, 1u);
    EXPECT_EQ(wb_stats(bed, 0).lost_bytes, 4096u);
    const auto losses = bed.writeback_losses();
    EXPECT_EQ(losses.size(), 1u);
    if (!losses.empty()) { EXPECT_EQ(losses[0].path, "/f"); }
    // The divergence is visible — a too-short read, never wrong bytes.
    auto got = co_await bed.client(0).read(*f, 0, 4096);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(got->size(), 0u); }

    // Restarted (empty) daemons take absorbs again — once the probe window
    // (mcd_retry_dead_interval) elapsed AND an op actually touched them:
    // probes are lazy, and the absorb path degrades without issuing ops, so
    // the read below (its index scan queries every replica) does the rejoin.
    bed.mcd(0).start();
    bed.mcd(1).start();
    co_await bed.loop().sleep(100 * kMilli);
    (void)co_await bed.client(0).read(*f, 0, 1);
    EXPECT_TRUE((co_await bed.client(0).write(*f, 0, to_buffer("again"))).has_value());
    EXPECT_EQ(wb_stats(bed, 0).absorbed, 2u);
  }(tb));
}

TEST(WritebackTest, RenameCarriesLossLedgerToNewName) {
  auto cfg = wb_config(2, 1);
  cfg.imca.wb_flush_delay = kNeverFlush;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    EXPECT_TRUE((co_await bed.client(0)
                     .write(*f, 0, to_buffer(std::string(1024, 'x'))))
                    .has_value());
    bed.mcd(0).stop();
    bed.mcd(1).stop();
    // The rename barrier drains /f (discovering the loss), then the move
    // carries the ledger entry: the divergence is observable at /g now.
    EXPECT_TRUE((co_await bed.client(0).rename("/f", "/g")).has_value());
    const auto losses = bed.writeback_losses();
    EXPECT_EQ(losses.size(), 1u);
    if (!losses.empty()) { EXPECT_EQ(losses[0].path, "/g"); }
  }(tb));
}

TEST(WritebackTest, FlushRetriesRideOutBrickOutage) {
  auto cfg = wb_config(3, 1);
  cfg.imca.wb_flush_delay = 1 * kMilli;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& bed) -> Task<void> {
    const std::string payload(2048, 'r');
    auto f = co_await bed.client(0).create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    EXPECT_TRUE((co_await bed.client(0).write(*f, 0, to_buffer(payload))).has_value());
    EXPECT_EQ(wb_stats(bed, 0).absorbed, 1u);

    // The brick dies before the coalescing window elapses: the flusher's
    // first pass fails, retries with backoff, re-queues the path — and
    // drains cleanly once the brick returns. No loss, no duplicate.
    bed.server().crash();
    co_await bed.loop().sleep(40 * kMilli);
    EXPECT_GE(wb_stats(bed, 0).flush_retries, 1u);
    EXPECT_EQ(wb_stats(bed, 0).flushed_extents, 0u);
    bed.server().restart();
    co_await bed.loop().sleep(100 * kMilli);
    EXPECT_EQ(wb_stats(bed, 0).flushed_extents, 1u);
    EXPECT_EQ(wb_stats(bed, 0).lost_extents, 0u);
    auto got = co_await bed.client(0).read(*f, 0, 2048);
    EXPECT_TRUE(got.has_value());
    if (got) { EXPECT_EQ(to_string(*got), payload); }
  }(tb));
  EXPECT_EQ(tb.server().stats().duplicate_applies, 0u);
}

}  // namespace
}  // namespace imca
