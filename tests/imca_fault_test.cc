// Failure-injection tests for the IMCa stack (paper §4.4: "failures in
// MCDs must not impact correctness").
//
// Strategy: kill cache daemons at the nastiest moments — while a client
// read-repair is in flight, while SMCache's threaded worker holds a queued
// publish, between a write and its read-back — and assert that (a) every
// read still returns exactly what was written and (b) the fault/degradation
// counters account for what happened. The randomized end-to-end version of
// the same claim lives in the workload harness (tests/harness/); this file
// pins down the individual mechanisms deterministically.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/testbed.h"
#include "common/units.h"
#include "harness/workload_harness.h"

namespace imca {
namespace {

using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using sim::Task;

core::ImcaConfig failover_imca() {
  core::ImcaConfig cfg;
  cfg.mcd_op_timeout = 2 * kMilli;
  cfg.mcd_retry_dead_interval = 10 * kMilli;
  return cfg;
}

Buffer pattern(std::size_t n, unsigned salt) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>((i * 31 + salt) & 0xFF);
  }
  return Buffer::take(std::move(p));
}

// Crash (and restart) each daemon in turn under the randomized invariant
// harness: whatever phase of the IMCa protocol the crash lands in, reads
// must keep matching the oracle.
TEST(ImcaFault, KillEachMcdMidWorkload) {
  for (std::size_t victim = 0; victim < 3; ++victim) {
    harness::ReplayConfig cfg;
    cfg.n_mcds = 3;
    cfg.imca = failover_imca();
    cfg.faults.seed = 900 + victim;
    cfg.faults.crashes.push_back({victim, 2 * kMilli, 20 * kMilli});

    const auto res = harness::run_seeded(101 + victim, 150, cfg);
    EXPECT_TRUE(res.ok) << "victim mcd" << victim << " op " << res.failed_op
                        << ": " << res.detail;
    EXPECT_GT(res.reads_checked, 0u);
    // The writer must never have abandoned a purge uncleanly.
    EXPECT_EQ(res.sm.purge_drops, 0u);
  }
}

// A daemon dies after a miss-path read fetched its blocks from the server
// but before the fire-and-forget repair adds run: every repair must be
// dropped (counted), none may hang, and the cache simply stays cold.
TEST(ImcaFault, CrashWhileReadRepairInFlight) {
  GlusterTestbedConfig tc;
  tc.n_mcds = 1;
  tc.smcache = false;  // nothing repopulates the MCD except client repair
  tc.imca = failover_imca();
  GlusterTestbed bed(std::move(tc));

  bed.run([](GlusterTestbed& b) -> Task<void> {
    auto f = co_await b.client(0).create("/rr");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    const auto payload = pattern(4 * kKiB, 1);
    (void)co_await b.client(0).write(*f, 0, payload);

    // MCDs are empty (no SMCache): this read misses both blocks, forwards
    // to the server, and spawns two repair adds.
    auto r = co_await b.client(0).read(*f, 0, 4 * kKiB);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(*r, payload); }

    // Kill the daemon before the spawned repairs get to run.
    b.mcd(0).stop();
  }(bed));

  const auto& fs = bed.cmcache(0).fault_stats();
  EXPECT_EQ(bed.cmcache(0).stats().blocks_repaired, 0u);
  EXPECT_EQ(fs.repairs_dropped, 2u);
  EXPECT_EQ(fs.repairs_skipped_stale, 0u);
}

// A write races an in-flight miss-path read: the read captured the path's
// write epoch before probing the daemons, then suspended on the wire; the
// write lands while it is parked. Landing the read's repairs now would
// cache pre-write bytes (there is no SMCache here to purge them — exactly
// the window the per-path epoch exists for). Both must be withheld.
TEST(ImcaFault, WriteWithholdsStaleReadRepair) {
  GlusterTestbedConfig tc;
  tc.n_mcds = 1;
  tc.smcache = false;
  tc.imca = failover_imca();
  GlusterTestbed bed(std::move(tc));

  bed.run([](GlusterTestbed& b) -> Task<void> {
    auto f = co_await b.client(0).create("/stale");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    const auto old_bytes = pattern(4 * kKiB, 2);
    (void)co_await b.client(0).write(*f, 0, old_bytes);

    // Detached miss-path read: it synchronously captures the write epoch,
    // then suspends on the daemon probe / server fetch.
    bool read_done = false;
    b.loop().spawn([](GlusterTestbed& bb, fsapi::OpenFile ff,
                      bool& done) -> Task<void> {
      auto r = co_await bb.client(0).read(ff, 0, 4 * kKiB);
      EXPECT_TRUE(r.has_value());  // bytes are old, new, or mixed — all fine
      done = true;
    }(b, *f, read_done));

    // Overwrite while the read is on the wire (1 us << any RPC round trip).
    // The epoch bump happens before the write is even forwarded, so every
    // repair the parked read will spawn is already stale.
    co_await b.loop().sleep(1 * kMicro);
    const auto new_bytes = pattern(4 * kKiB, 3);
    (void)co_await b.client(0).write(*f, 0, new_bytes);
    while (!read_done) co_await b.loop().sleep(10 * kMicro);

    // If a stale repair had landed, this read would serve pre-write bytes
    // from the cache (nothing ever purges it in this deployment).
    auto r2 = co_await b.client(0).read(*f, 0, 4 * kKiB);
    EXPECT_TRUE(r2.has_value());
    if (r2) { EXPECT_EQ(*r2, new_bytes); }
  }(bed));

  const auto& fs = bed.cmcache(0).fault_stats();
  EXPECT_EQ(fs.repairs_skipped_stale, 2u);
  EXPECT_EQ(fs.repairs_dropped, 0u);
  // blocks_repaired is 2, not 0: the final verification read legitimately
  // re-warmed the cache with the post-write bytes.
  EXPECT_EQ(bed.cmcache(0).stats().blocks_repaired, 2u);
}

// The whole cache bank dies while SMCache's threaded worker still holds the
// write's queued read-back + publish job. The publishes are dropped (copy
// lost, not truth), the purge ledger stays clean, and the read degrades to
// the server with the correct bytes.
TEST(ImcaFault, CrashDuringThreadedSmcachePublish) {
  GlusterTestbedConfig tc;
  tc.n_mcds = 2;
  tc.imca = failover_imca();
  tc.imca.threaded_updates = true;
  GlusterTestbed bed(std::move(tc));

  bed.run([](GlusterTestbed& b) -> Task<void> {
    auto f = co_await b.client(0).create("/pub");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    const auto payload = pattern(4 * kKiB, 4);
    auto w = co_await b.client(0).write(*f, 0, payload);
    EXPECT_TRUE(w.has_value());  // durable at the server already

    // The publish job is on the worker queue; kill the bank before it runs.
    b.mcd(0).stop();
    b.mcd(1).stop();
    co_await b.smcache()->quiesce();

    auto r = co_await b.client(0).read(*f, 0, 4 * kKiB);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(*r, payload); }
  }(bed));

  EXPECT_GE(bed.smcache()->stats().publish_drops, 1u);
  EXPECT_EQ(bed.smcache()->stats().purge_drops, 0u);
  EXPECT_GE(bed.cmcache(0).fault_stats().degraded_reads, 1u);
}

// Write with the bank up, then crash ALL daemons: the inline write
// read-back republished the blocks, but every subsequent read must still
// come back correct — degraded to the server path, and counted as such.
TEST(ImcaFault, AllMcdsDownReadsDegradeToServer) {
  GlusterTestbedConfig tc;
  tc.n_mcds = 3;
  tc.imca = failover_imca();
  GlusterTestbed bed(std::move(tc));

  bed.run([](GlusterTestbed& b) -> Task<void> {
    auto f = co_await b.client(0).create("/deg");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    const auto payload = pattern(8 * kKiB, 5);
    (void)co_await b.client(0).write(*f, 0, payload);

    for (std::size_t i = 0; i < b.n_mcds(); ++i) b.mcd(i).stop();

    for (std::uint64_t off = 0; off < 8 * kKiB; off += 2 * kKiB) {
      auto r = co_await b.client(0).read(*f, off, 2 * kKiB);
      EXPECT_TRUE(r.has_value());
      if (!r) co_return;
      EXPECT_EQ(*r, payload.slice(off, 2 * kKiB));
    }
  }(bed));

  const auto& fs = bed.cmcache(0).fault_stats();
  const auto& cs = bed.cmcache(0).stats();
  EXPECT_GE(fs.degraded_reads, 1u);
  EXPECT_GT(bed.cmcache(0).mcds().stats().dead_server_ops, 0u);
  // Every degraded read leaned on the server, so the count can never exceed
  // the server-path read counters.
  EXPECT_LE(fs.degraded_reads, cs.reads_forwarded + cs.reads_partial);
}

// Accounting under a crash-all plan driven through the harness: the run
// passes, demonstrably degraded (not vacuous), and the degradation counters
// stay consistent with the read-path counters.
TEST(ImcaFault, CountersAccountForDegradedOps) {
  harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.imca = failover_imca();
  cfg.faults.seed = 42;
  cfg.faults.crashes.push_back({0, 2 * kMilli, std::nullopt});
  cfg.faults.crashes.push_back({1, 2 * kMilli + kMilli / 2, std::nullopt});
  cfg.faults.crashes.push_back({2, 3 * kMilli, std::nullopt});

  const auto res = harness::run_seeded(7, 160, cfg);
  EXPECT_TRUE(res.ok) << "op " << res.failed_op << ": " << res.detail;
  EXPECT_GT(res.cm_faults.degraded_reads, 0u);
  EXPECT_LE(res.cm_faults.degraded_reads,
            res.cm.reads_forwarded + res.cm.reads_partial);
  EXPECT_GT(res.cm_client.fault_signals(), 0u);
  EXPECT_EQ(res.sm.purge_drops, 0u);
}

// No-fault harness sanity: with an inactive fault plan the degradation
// counters must all stay zero (no false positives from the detector).
TEST(ImcaFault, NoFaultPlanLeavesCountersZero) {
  harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.imca = failover_imca();

  const auto res = harness::run_seeded(11, 120, cfg);
  EXPECT_TRUE(res.ok) << "op " << res.failed_op << ": " << res.detail;
  EXPECT_GT(res.reads_checked, 0u);
  EXPECT_EQ(res.cm_faults.degraded_reads, 0u);
  EXPECT_EQ(res.cm_faults.degraded_stats, 0u);
  EXPECT_EQ(res.cm_faults.repairs_dropped, 0u);
  EXPECT_EQ(res.cm_client.timeouts, 0u);
  EXPECT_EQ(res.sm_client.timeouts, 0u);
  EXPECT_EQ(res.sm.publish_drops, 0u);
  EXPECT_EQ(res.sm.purge_drops, 0u);
}

// Replica-brick regression: publish_write_covered runs as several MCD
// round-trips — full-block sets, then edge-block deletes, then the stat
// delete. A brick crash landing BETWEEN the edge delete and the stat delete
// leaves a half-invalidated bank (edge block gone, stale stat item still
// up); a crash one round-trip earlier leaves a stale edge block with a
// stale stat vouching for it. Neither may let a later read resurrect
// pre-write bytes. The DES is deterministic, so sweeping the crash instant
// in 2 µs steps across the write+publish window pins every interleaving,
// including exactly that one.
TEST(ImcaFault, BrickCrashInsideCoveredPublishWindow) {
  constexpr std::uint64_t bs = 2 * kKiB;  // ImcaConfig::block_size default

  std::vector<std::byte> old_bytes(2 * bs);
  std::vector<std::byte> expected(2 * bs);
  for (std::size_t i = 0; i < 2 * bs; ++i) {
    old_bytes[i] = static_cast<std::byte>((i * 31 + 6) & 0xFF);
    expected[i] = old_bytes[i];
  }
  for (std::size_t i = 0; i < bs; ++i) {
    // The overwrite: one full payload block's worth, block-straddling so
    // both its head and tail land as partially-covered edge blocks.
    expected[bs / 2 + i] = static_cast<std::byte>((i * 31 + 7) & 0xFF);
  }

  std::uint64_t disturbed = 0;  // sweep steps that interrupted the fop
  for (std::uint64_t dt = 40; dt <= 340; dt += 10) {
    GlusterTestbedConfig tc;
    tc.n_mcds = 2;
    tc.n_replicas = 2;  // replica bricks -> the covered-publish protocol
    tc.imca = failover_imca();
    // Ride out the crash window: the protocol layer retries the in-flight
    // write past the restart, and the replay window dedups the re-send.
    tc.client.protocol.op_deadline = 400 * kMilli;
    tc.client.protocol.attempt_timeout = 40 * kMilli;
    tc.client.protocol.backoff_base = 1 * kMilli;
    tc.client.protocol.backoff_cap = 8 * kMilli;
    tc.client.protocol.eject_after = 3;
    tc.client.protocol.probe_interval = 5 * kMilli;
    GlusterTestbed bed(std::move(tc));

    bed.run([](GlusterTestbed& b, std::uint64_t at,
               const std::vector<std::byte>* oldb,
               const std::vector<std::byte>* want) -> Task<void> {
      auto f = co_await b.client(0).create("/edge");
      EXPECT_TRUE(f.has_value());
      if (!f) co_return;
      Buffer old_buf = Buffer::take(std::vector<std::byte>(*oldb));
      (void)co_await b.client(0).write(*f, 0, old_buf);
      // Warm the bank: blocks via read-repair, the stat item via stat.
      auto warm = co_await b.client(0).read(*f, 0, 2 * bs);
      EXPECT_TRUE(warm.has_value());
      (void)co_await b.client(0).stat("/edge");

      // Both replicas die at t0+dt — in lockstep, since their publish
      // round-trips interleave on the same clock — so no sibling's full
      // publish can close the half-invalidated window for us.
      const SimTime t0 = b.loop().now();
      b.brick(0).schedule_crash(t0 + at * kMicro, t0 + 3 * kMilli);
      b.brick(1).schedule_crash(t0 + at * kMicro, t0 + 3 * kMilli);

      std::vector<std::byte> np(want->begin() + bs / 2,
                                want->begin() + bs / 2 + bs);
      auto w = co_await b.client(0).write(*f, bs / 2, Buffer::take(std::move(np)));
      // A full-outage write may fail per-op — the designed surface for
      // replica-set unavailability is a quorum error, not a hang — so the
      // application retries once the replicas return. The half-finished
      // invalidation from the crashed attempt sits in the bank until a
      // retry's publish cleans it; that is the state under test.
      for (int tries = 0; !w && tries < 50; ++tries) {
        co_await b.loop().sleep(5 * kMilli);
        std::vector<std::byte> again(want->begin() + bs / 2,
                                     want->begin() + bs / 2 + bs);
        w = co_await b.client(0).write(*f, bs / 2,
                                       Buffer::take(std::move(again)));
      }
      EXPECT_TRUE(w.has_value()) << "dt=" << at;

      // The later reads: whatever the crash interrupted, nobody may serve
      // pre-write bytes for the overwritten range, and the stat item may
      // not resurrect a stale view.
      co_await b.quiesce_smcaches();
      auto r = co_await b.client(0).read(*f, 0, 2 * bs);
      EXPECT_TRUE(r.has_value()) << "dt=" << at;
      if (r) {
        EXPECT_EQ(*r, Buffer::take(std::vector<std::byte>(*want)))
            << "dt=" << at;
      }
      auto st = co_await b.client(0).stat("/edge");
      EXPECT_TRUE(st.has_value()) << "dt=" << at;
      if (st) { EXPECT_EQ(st->size, 2 * bs) << "dt=" << at; }
    }(bed, dt, &old_bytes, &expected));

    EXPECT_EQ(bed.server_totals().duplicate_applies, 0u) << "dt=" << dt;
    disturbed += bed.server_totals().replies_lost_in_crash;
    disturbed += bed.smcache()->stats().publishes_suppressed;
  }
  // Non-vacuity: if no step ever caught the write/publish in flight, the
  // sweep has drifted off the window and stopped testing anything.
  EXPECT_GT(disturbed, 0u);
}

}  // namespace
}  // namespace imca
