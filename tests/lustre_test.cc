// Tests for the Lustre-like comparator: stripe mapping, MDS namespace and
// lock manager, DS storage, warm/cold client cache behaviour and coherent
// sharing between clients.
#include <gtest/gtest.h>

#include <memory>

#include "lustre/client.h"
#include "lustre/data_server.h"
#include "lustre/mds.h"
#include "lustre/stripe.h"
#include "net/transport.h"

namespace imca::lustre {
namespace {

using sim::EventLoop;
using sim::Task;

// --- StripeMapper ---

TEST(Stripe, SingleServerIsIdentity) {
  StripeMapper m(1, 1 * kMiB);
  const auto pieces = m.map(123, 5 * kMiB);
  std::uint64_t total = 0;
  for (const auto& p : pieces) {
    EXPECT_EQ(p.server, 0u);
    EXPECT_EQ(p.local_offset, p.global_offset);
    total += p.length;
  }
  EXPECT_EQ(total, 5 * kMiB);
}

TEST(Stripe, RoundRobinsAcrossServers) {
  StripeMapper m(4, 1 * kMiB);
  const auto pieces = m.map(0, 4 * kMiB);
  ASSERT_EQ(pieces.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pieces[i].server, i);
    EXPECT_EQ(pieces[i].local_offset, 0u);  // first stripe on each server
    EXPECT_EQ(pieces[i].length, 1 * kMiB);
  }
}

TEST(Stripe, PiecesCoverRangeExactly) {
  StripeMapper m(3, 1 * kMiB);
  const std::uint64_t off = 700 * kKiB;
  const std::uint64_t len = 3 * kMiB + 123;
  std::uint64_t expect = off;
  for (const auto& p : m.map(off, len)) {
    EXPECT_EQ(p.global_offset, expect);
    expect += p.length;
  }
  EXPECT_EQ(expect, off + len);
}

TEST(Stripe, SecondStripeOnSameServerIsContiguousLocally) {
  StripeMapper m(2, 1 * kMiB);
  // Global stripes 0,2 live on server 0 at local offsets 0 and 1MiB.
  const auto a = m.map(0, 1).front();
  const auto b = m.map(2 * kMiB, 1).front();
  EXPECT_EQ(a.server, 0u);
  EXPECT_EQ(b.server, 0u);
  EXPECT_EQ(b.local_offset, 1 * kMiB);
}

// --- deployment fixture ---

struct LustreRig {
  explicit LustreRig(std::size_t n_ds, std::size_t n_clients = 1,
                     DsParams ds_params = {})
      : fabric(loop, net::ipoib_rc()), rpc(fabric) {
    const auto mds_node = fabric.add_node("mds").id();
    mds = std::make_unique<MetadataServer>(rpc, mds_node);
    std::vector<DataServer*> ds_ptrs;
    for (std::size_t i = 0; i < n_ds; ++i) {
      const auto n = fabric.add_node("ost" + std::to_string(i)).id();
      ds.push_back(std::make_unique<DataServer>(rpc, n, ds_params));
      ds_ptrs.push_back(ds.back().get());
    }
    for (std::size_t c = 0; c < n_clients; ++c) {
      const auto n = fabric.add_node("client" + std::to_string(c)).id();
      clients.push_back(
          std::make_unique<LustreClient>(rpc, n, *mds, ds_ptrs));
    }
  }

  void run(Task<void> t) {
    loop.spawn(std::move(t));
    loop.run();
  }

  EventLoop loop;
  net::Fabric fabric;
  net::RpcSystem rpc;
  std::unique_ptr<MetadataServer> mds;
  std::vector<std::unique_ptr<DataServer>> ds;
  std::vector<std::unique_ptr<LustreClient>> clients;
};

TEST(Lustre, CreateWriteReadRoundTrip) {
  LustreRig rig(4);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/big");
    EXPECT_TRUE(f.has_value());
    // 3.5 MiB spans all four data servers.
    std::vector<std::byte> pattern(3 * kMiB + 512 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i / kMiB + 1) & 0xFF);
    }
    const Buffer payload = Buffer::take(std::move(pattern));
    EXPECT_TRUE((co_await fs.write(*f, 0, payload)).has_value());
    auto st = co_await fs.stat("/big");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, payload.size()); }
    auto back = co_await fs.read(*f, 0, payload.size());
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(*back, payload); }
    // Unaligned read inside the third stripe.
    auto mid = co_await fs.read(*f, 2 * kMiB + 100, 50);
    EXPECT_TRUE(mid.has_value());
    if (mid) {
      EXPECT_EQ(mid->size(), 50u);
      EXPECT_EQ(mid->at(0), static_cast<std::byte>(3));
    }
  }(rig));
  // Stripes landed on every DS.
  for (const auto& d : rig.ds) {
    EXPECT_GT(d->objects().total_bytes(), 0u);
  }
}

TEST(Lustre, WarmReadIsMuchCheaperThanCold) {
  LustreRig rig(4);
  SimDuration cold_t = 0, warm_t = 0;
  rig.run([](LustreRig& r, SimDuration& out_cold_t,
             SimDuration& out_warm_t) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/lat");
    (void)co_await fs.write(*f, 0, Buffer::zeros(1 * kMiB));
    fs.cold();  // unmount/remount: reads stay remote
    SimTime t0 = r.loop.now();
    (void)co_await fs.read(*f, 0, 64 * kKiB);
    out_cold_t = r.loop.now() - t0;
    fs.warm();  // fresh mount allowed to cache again
    (void)co_await fs.read(*f, 0, 64 * kKiB);  // populates the client cache
    t0 = r.loop.now();
    (void)co_await fs.read(*f, 0, 64 * kKiB);  // now served locally
    out_warm_t = r.loop.now() - t0;
  }(rig, cold_t, warm_t));
  EXPECT_GT(cold_t, 5 * warm_t);
  EXPECT_EQ(rig.clients[0]->cache_hits(), 1u);
  EXPECT_EQ(rig.clients[0]->cache_misses(), 2u);  // cold read + warming read
}

TEST(Lustre, ColdDropsLocksToo) {
  LustreRig rig(1);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/locks");
    (void)co_await fs.write(*f, 0, to_buffer("x"));
    const auto before = r.mds->lock_requests();
    (void)co_await fs.read(*f, 0, 1);  // lock cached from the write? read lock
    (void)co_await fs.read(*f, 0, 1);  // no new lock RPC
    EXPECT_LE(r.mds->lock_requests(), before + 1);
    fs.cold();
    (void)co_await fs.read(*f, 0, 1);  // must re-acquire
    EXPECT_GE(r.mds->lock_requests(), before + 1);
  }(rig));
}

TEST(Lustre, WriterRevokesReadersCache) {
  LustreRig rig(2, /*n_clients=*/2);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& reader = *r.clients[0];
    auto& writer = *r.clients[1];
    auto fr = co_await reader.create("/shared");
    (void)co_await reader.write(*fr, 0, to_buffer("version-1 data"));
    (void)co_await reader.read(*fr, 0, 14);  // reader now caches the pages

    auto fw = co_await writer.open("/shared");
    EXPECT_TRUE(fw.has_value());
    // Writer's PW lock must revoke the reader.
    EXPECT_TRUE((co_await writer.write(*fw, 0, to_buffer("version-2 data")))
                    .has_value());
    EXPECT_GE(r.mds->revocations(), 1u);

    // Reader sees the new bytes (coherent), paying a fresh fetch.
    const auto misses_before = r.clients[0]->cache_misses();
    auto back = co_await reader.read(*fr, 0, 14);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(to_string(*back), "version-2 data"); }
    EXPECT_GT(r.clients[0]->cache_misses(), misses_before);
  }(rig));
}

TEST(Lustre, ConcurrentReadersShareTheLock) {
  LustreRig rig(1, /*n_clients=*/4);
  rig.run([](LustreRig& r) -> Task<void> {
    auto f0 = co_await r.clients[0]->create("/ro");
    (void)co_await r.clients[0]->write(*f0, 0, to_buffer("read-mostly"));
    for (auto& c : r.clients) {
      auto f = co_await c->open("/ro");
      auto data = co_await c->read(*f, 0, 11);
      EXPECT_TRUE(data.has_value());
      if (data) { EXPECT_EQ(to_string(*data), "read-mostly"); }
    }
    // Readers never revoke each other.
    EXPECT_EQ(r.mds->revocations(), 1u);  // only the writer->reader upgrade
  }(rig));
}

TEST(Lustre, MoreDataServersMoreStreamBandwidth) {
  auto run = [](std::size_t n_ds) {
    // Two spindles per DS, so one DS's media rate (not the client NIC) is
    // the bottleneck and striping across DSs is visible.
    DsParams dsp;
    dsp.raid_members = 2;
    LustreRig rig(n_ds, 1, dsp);
    SimDuration elapsed = 0;
    rig.run([](LustreRig& r, SimDuration& out_elapsed) -> Task<void> {
      auto& fs = *r.clients[0];
      auto f = co_await fs.create("/stream");
      (void)co_await fs.write(*f, 0, Buffer::zeros(64 * kMiB));
      fs.cold();
      for (auto& d : r.ds) d->device().drop_caches();  // force media
      const SimTime t0 = r.loop.now();
      for (std::uint64_t off = 0; off < 64 * kMiB; off += 4 * kMiB) {
        (void)co_await fs.read(f.value(), off, 4 * kMiB);
      }
      out_elapsed = r.loop.now() - t0;
    }(rig, elapsed));
    return elapsed;
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_LT(static_cast<double>(four), 0.6 * static_cast<double>(one));
}

TEST(Lustre, UnlinkRemovesEverywhere) {
  LustreRig rig(2);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/gone");
    (void)co_await fs.write(*f, 0, Buffer::zeros(3 * kMiB));
    EXPECT_TRUE((co_await fs.unlink("/gone")).has_value());
    EXPECT_EQ((co_await fs.stat("/gone")).error(), Errc::kNoEnt);
  }(rig));
  for (const auto& d : rig.ds) {
    EXPECT_EQ(d->objects().total_bytes(), 0u);
  }
}

TEST(Lustre, TruncateShrinksAcrossStripes) {
  LustreRig rig(3);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/t");
    std::vector<std::byte> pattern(5 * kMiB);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i / kMiB) + 1);
    }
    (void)co_await fs.write(*f, 0, Buffer::take(std::move(pattern)));
    // Shrink to 2.5 MiB: stripes on all three servers are affected.
    EXPECT_TRUE((co_await fs.truncate("/t", 2 * kMiB + 512 * kKiB))
                    .has_value());
    auto st = co_await fs.stat("/t");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 2 * kMiB + 512 * kKiB); }
    auto back = co_await fs.read(*f, 0, 5 * kMiB);
    EXPECT_TRUE(back.has_value());
    if (back) {
      EXPECT_EQ(back->size(), 2 * kMiB + 512 * kKiB);
      EXPECT_EQ(back->at(2 * kMiB + 100), std::byte{3});  // third MiB intact
    }
    // Grow back: zeros, not resurrected stripe bytes.
    EXPECT_TRUE((co_await fs.truncate("/t", 4 * kMiB)).has_value());
    auto tail = co_await fs.read(*f, 3 * kMiB, 16);
    EXPECT_TRUE(tail.has_value());
    if (tail) {
      EXPECT_EQ(tail->size(), 16u);
      EXPECT_EQ(tail->at(0), std::byte{0});
    }
  }(rig));
}

TEST(Lustre, RenameMovesStripesAndLocks) {
  LustreRig rig(2);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/was");
    (void)co_await fs.write(
        *f, 0, Buffer::take(std::vector<std::byte>(3 * kMiB, std::byte{9})));
    EXPECT_TRUE((co_await fs.rename("/was", "/is")).has_value());
    EXPECT_EQ((co_await fs.stat("/was")).error(), Errc::kNoEnt);
    auto st = co_await fs.stat("/is");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 3 * kMiB); }
    // The open handle follows the rename and data is intact on both DSs.
    auto back = co_await fs.read(*f, kMiB + 5, 10);
    EXPECT_TRUE(back.has_value());
    if (back) { EXPECT_EQ(back->at(0), std::byte{9}); }
  }(rig));
}

TEST(Lustre, StatGoesToMdsEveryTime) {
  LustreRig rig(1);
  rig.run([](LustreRig& r) -> Task<void> {
    auto& fs = *r.clients[0];
    auto f = co_await fs.create("/meta");
    (void)f;
    const SimTime t0 = r.loop.now();
    (void)co_await fs.stat("/meta");
    const SimDuration first = r.loop.now() - t0;
    const SimTime t1 = r.loop.now();
    (void)co_await fs.stat("/meta");
    const SimDuration second = r.loop.now() - t1;
    // No client-side attr caching: both stats pay the MDS round trip.
    EXPECT_GT(second, first / 2);
  }(rig));
}

}  // namespace
}  // namespace imca::lustre
