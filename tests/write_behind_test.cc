// WriteBehindXlator durability contract (DESIGN.md §5f): flush ordering in
// front of dependent ops, error propagation when the deferred flush fails,
// flush_before_ack (durable acks), deadline flushes, and what a crash's
// drop_volatile() loses in each mode.
//
// Note: gtest ASSERT_* macros use `return` and cannot appear inside a
// coroutine body, so the tests guard with EXPECT_* + early co_return.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "gluster/write_behind.h"
#include "sim/event_loop.h"

namespace imca::gluster {
namespace {

using sim::EventLoop;
using sim::Task;

// Scripted bottom of the stack: applies writes to an in-memory store,
// records the op order, and fails writes on demand — the "brick went bad
// under the buffer" half of the flush-error tests.
class FailingChild final : public Xlator {
 public:
  std::vector<std::string> log;
  Errc fail_writes = Errc::kOk;  // != kOk: every write fails with this
  EventLoop* loop = nullptr;     // with write_delay: simulate a slow disk
  SimDuration write_delay = 0;

  std::string_view name() const override { return "failing-child"; }

  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override {
    log.push_back("write " + path + " @" + std::to_string(offset) + "+" +
                  std::to_string(data.size()));
    if (write_delay > 0) co_await loop->sleep(write_delay);
    if (fail_writes != Errc::kOk) co_return fail_writes;
    auto& s = files_[path];
    const std::string bytes = to_string(data);
    if (s.size() < offset + bytes.size()) s.resize(offset + bytes.size(), '\0');
    s.replace(offset, bytes.size(), bytes);
    co_return bytes.size();
  }
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override {
    log.push_back("read " + path);
    const auto it = files_.find(path);
    if (it == files_.end()) co_return Errc::kNoEnt;
    if (offset >= it->second.size()) co_return Buffer{};
    co_return to_buffer(it->second.substr(offset, len));
  }
  sim::Task<Expected<store::Attr>> stat(std::string path) override {
    log.push_back("stat " + path);
    const auto it = files_.find(path);
    if (it == files_.end()) co_return Errc::kNoEnt;
    store::Attr a;
    a.size = it->second.size();
    co_return a;
  }
  sim::Task<Expected<void>> close(std::string path) override {
    log.push_back("close " + path);
    co_return Expected<void>{};
  }
  sim::Task<Expected<void>> unlink(std::string path) override {
    log.push_back("unlink " + path);
    files_.erase(path);
    co_return Expected<void>{};
  }
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override {
    log.push_back("truncate " + path);
    files_[path].resize(size, '\0');
    co_return Expected<void>{};
  }
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override {
    log.push_back("rename " + from + "->" + to);
    files_[to] = files_[from];
    files_.erase(from);
    co_return Expected<void>{};
  }

  const std::string& contents(const std::string& path) { return files_[path]; }

 private:
  std::map<std::string, std::string> files_;
};

class WriteBehindTest : public ::testing::Test {
 public:  // coroutine lambdas reach in by reference
  void build(WriteBehindParams params) {
    wb_ = std::make_unique<WriteBehindXlator>(loop_, params);
    wb_->set_child(&child_);
  }
  void run(Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  EventLoop loop_;
  FailingChild child_;
  std::unique_ptr<WriteBehindXlator> wb_;
};

TEST_F(WriteBehindTest, FlushPrecedesEveryDependentOp) {
  build({});  // default: buffer up to 128 KiB, no deadline, lazy acks
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("1234"));
    EXPECT_TRUE(t.child_.log.empty());  // buffered, nothing downstream yet
    (void)co_await t.wb_->stat("/a");
    // The buffered run reached the child BEFORE the stat.
    EXPECT_EQ(t.child_.log.size(), 2u);
    if (t.child_.log.size() < 2) co_return;
    EXPECT_EQ(t.child_.log[0], "write /a @0+4");
    EXPECT_EQ(t.child_.log[1], "stat /a");

    (void)co_await t.wb_->write("/a", 4, to_buffer("56"));
    auto r = co_await t.wb_->read("/a", 0, 6);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "123456"); }
    EXPECT_EQ(t.child_.log.size(), 4u);
    if (t.child_.log.size() < 4) co_return;
    EXPECT_EQ(t.child_.log[2], "write /a @4+2");  // flushed before the read
    EXPECT_EQ(t.child_.log[3], "read /a");
  }(*this));
}

TEST_F(WriteBehindTest, DependentOpPaysTheFlushError) {
  build({});
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("abcd"));
    t.child_.fail_writes = Errc::kIo;
    // The close needs the flush; the flush fails; the close reports it.
    auto r = co_await t.wb_->close("/a");
    EXPECT_FALSE(r.has_value());
    if (!r) { EXPECT_EQ(r.error(), Errc::kIo); }
    EXPECT_EQ(t.wb_->flush_errors(), 1u);
    // The run is gone (not silently retried with the same bytes forever).
    EXPECT_EQ(t.wb_->buffered_bytes(), 0u);
  }(*this));
}

TEST_F(WriteBehindTest, FlushBeforeAckMakesEveryAckDurable) {
  WriteBehindParams p;
  p.flush_before_ack = true;
  build(p);
  run([](WriteBehindTest& t) -> Task<void> {
    auto w = co_await t.wb_->write("/a", 0, to_buffer("abcd"));
    EXPECT_TRUE(w.has_value());
    // Ack implies the bytes already sit on the child.
    EXPECT_EQ(t.child_.contents("/a"), "abcd");
    EXPECT_EQ(t.wb_->buffered_bytes(), 0u);

    // And a failing child write surfaces on the ack path itself.
    t.child_.fail_writes = Errc::kIo;
    auto w2 = co_await t.wb_->write("/a", 4, to_buffer("ef"));
    EXPECT_FALSE(w2.has_value());
    if (!w2) { EXPECT_EQ(w2.error(), Errc::kIo); }
  }(*this));
}

TEST_F(WriteBehindTest, DeadlineFlushDrainsTheRun) {
  WriteBehindParams p;
  p.flush_deadline = 2 * kMilli;
  build(p);
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("abcd"));
    EXPECT_EQ(t.wb_->buffered_bytes(), 4u);
    co_await t.loop_.sleep(3 * kMilli);
    // No dependent op ran; the deadline pushed the run out on its own.
    EXPECT_EQ(t.wb_->buffered_bytes(), 0u);
    EXPECT_EQ(t.wb_->deadline_flushes(), 1u);
    EXPECT_EQ(t.child_.contents("/a"), "abcd");
  }(*this));
}

TEST_F(WriteBehindTest, DeadlineFlushErrorSticksToThePath) {
  WriteBehindParams p;
  p.flush_deadline = 2 * kMilli;
  build(p);
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("abcd"));
    t.child_.fail_writes = Errc::kIo;
    co_await t.loop_.sleep(3 * kMilli);  // deadline flush fails off-path
    EXPECT_EQ(t.wb_->flush_errors(), 1u);
    t.child_.fail_writes = Errc::kOk;
    // Nobody was on the fop path when the flush failed; the NEXT op on the
    // path pays (GlusterFS's stuck-to-the-fd semantics) — exactly once.
    auto st = co_await t.wb_->stat("/a");
    EXPECT_FALSE(st.has_value());
    if (!st) { EXPECT_EQ(st.error(), Errc::kIo); }
    auto st2 = co_await t.wb_->stat("/a");
    EXPECT_FALSE(st2.has_value());
    // The run died in the failed flush, so the child never saw the file —
    // but the stuck error itself was consumed exactly once.
    if (!st2) { EXPECT_EQ(st2.error(), Errc::kNoEnt); }
  }(*this));
}

TEST_F(WriteBehindTest, RenameChecksBothPathsForStuckErrors) {
  WriteBehindParams p;
  p.flush_deadline = 1 * kMilli;
  build(p);
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/b", 0, to_buffer("xy"));
    t.child_.fail_writes = Errc::kIo;
    co_await t.loop_.sleep(2 * kMilli);
    t.child_.fail_writes = Errc::kOk;
    auto r = co_await t.wb_->rename("/a", "/b");  // error stuck to the target
    EXPECT_FALSE(r.has_value());
    if (!r) { EXPECT_EQ(r.error(), Errc::kIo); }
  }(*this));
}

TEST_F(WriteBehindTest, DropVolatileLosesExactlyTheBufferedRun) {
  build({});  // lazy acks: the crash-unsafe mode
  run([](WriteBehindTest& t) -> Task<void> {
    auto w = co_await t.wb_->write("/a", 0, to_buffer("abcdef"));
    EXPECT_TRUE(w.has_value());  // acked...
    EXPECT_EQ(t.wb_->drop_volatile(), 6u);  // ...and lost in the "crash"
    EXPECT_EQ(t.wb_->dropped_runs(), 1u);
    EXPECT_EQ(t.wb_->dropped_bytes(), 6u);
    EXPECT_EQ(t.wb_->buffered_bytes(), 0u);
    EXPECT_EQ(t.child_.contents("/a"), "");  // never reached the child

    // An empty buffer drops nothing.
    EXPECT_EQ(t.wb_->drop_volatile(), 0u);
    EXPECT_EQ(t.wb_->dropped_runs(), 1u);
  }(*this));
}

TEST_F(WriteBehindTest, WriteDuringInFlightFlushStartsAFreshRun) {
  // A write arriving while the previous run is suspended inside the child
  // (slow disk) must NOT absorb into the in-flight run — that corrupted
  // the buffer and lost the absorbed bytes when the flush resumed.
  WriteBehindParams p;
  p.flush_deadline = 2 * kMilli;
  build(p);
  child_.loop = &loop_;
  child_.write_delay = 5 * kMilli;
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("1234"));
    co_await t.loop_.sleep(3 * kMilli);
    // The deadline flush is now suspended in the child. This contiguous
    // write would have absorbed into the moved-from run.
    (void)co_await t.wb_->write("/a", 4, to_buffer("5678"));
    EXPECT_EQ(t.wb_->buffered_bytes(), 4u);  // a fresh run, not absorbed
    co_await t.loop_.sleep(20 * kMilli);     // both flushes drain
    EXPECT_EQ(t.wb_->buffered_bytes(), 0u);
    EXPECT_EQ(t.child_.contents("/a"), "12345678");  // nothing lost
    EXPECT_EQ(t.wb_->flushes(), 2u);
  }(*this));
}

TEST_F(WriteBehindTest, FlushRaceCannotClobberAConcurrentRun) {
  // The non-contiguous /b write flushes /a's run and suspends in the slow
  // child; while it is down there a concurrent writer installs — and is
  // acked for — a brand-new /c run. Resuming and blindly installing /b's
  // run would silently clobber those acked /c bytes.
  build({});  // classic acks
  child_.loop = &loop_;
  child_.write_delay = 5 * kMilli;
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("AAAA"));
    t.loop_.spawn([](WriteBehindTest& tt) -> Task<void> {
      co_await tt.loop_.sleep(1 * kMilli);
      auto w = co_await tt.wb_->write("/c", 0, to_buffer("CCCC"));
      EXPECT_TRUE(w.has_value());  // acked from the buffer
    }(t));
    auto w = co_await t.wb_->write("/b", 0, to_buffer("BBBB"));
    EXPECT_TRUE(w.has_value());
    EXPECT_TRUE((co_await t.wb_->close("/b")).has_value());  // drain /b
    EXPECT_TRUE((co_await t.wb_->close("/c")).has_value());
    EXPECT_EQ(t.child_.contents("/a"), "AAAA");
    EXPECT_EQ(t.child_.contents("/b"), "BBBB");
    EXPECT_EQ(t.child_.contents("/c"), "CCCC");  // not clobbered
    EXPECT_EQ(t.wb_->dropped_bytes(), 0u);
  }(*this));
}

TEST_F(WriteBehindTest, TransientBusyChildIsRetriedNotDropped) {
  build({});
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("abcd"));  // acked
    // The child sheds (kBusy) for a while — a full io-threads queue, not a
    // bad disk — then recovers before the retries run out.
    t.child_.fail_writes = Errc::kBusy;
    t.loop_.spawn([](WriteBehindTest& tt) -> Task<void> {
      co_await tt.loop_.sleep(1500 * kMicro);
      tt.child_.fail_writes = Errc::kOk;
    }(t));
    auto r = co_await t.wb_->close("/a");  // needs the flush
    EXPECT_TRUE(r.has_value());
    EXPECT_EQ(t.wb_->flush_errors(), 0u);
    EXPECT_EQ(t.wb_->flush_retries(), 2u);
    EXPECT_EQ(t.wb_->dropped_bytes(), 0u);
    EXPECT_EQ(t.child_.contents("/a"), "abcd");  // the acked bytes landed
  }(*this));
}

TEST_F(WriteBehindTest, ExhaustedBusyRetriesCountTheAckedLoss) {
  build({});  // classic acks: the dying run held acked bytes
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("abcd"));
    t.child_.fail_writes = Errc::kBusy;  // and stays busy
    auto r = co_await t.wb_->close("/a");
    EXPECT_FALSE(r.has_value());
    if (!r) { EXPECT_EQ(r.error(), Errc::kBusy); }
    EXPECT_EQ(t.wb_->flush_errors(), 1u);
    EXPECT_EQ(t.wb_->flush_retries(), 2u);
    // The loss is visible in the drop counters, not silent.
    EXPECT_EQ(t.wb_->dropped_runs(), 1u);
    EXPECT_EQ(t.wb_->dropped_bytes(), 4u);
  }(*this));
}

TEST_F(WriteBehindTest, TeardownUnderPendingDeadlineFlushIsSafe) {
  // The deadline task's frame is owned by the loop, not the xlator: tearing
  // the xlator down while the task still sleeps must be a no-op, not a
  // use-after-free (the ASan builds of this test are the real check).
  WriteBehindParams p;
  p.flush_deadline = 5 * kMilli;
  build(p);
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("abcd"));
    co_await t.loop_.sleep(1 * kMilli);
    t.wb_.reset();  // xlator gone; the deadline task still has 4 ms to sleep
    co_await t.loop_.sleep(10 * kMilli);
    EXPECT_TRUE(t.child_.log.empty());  // the orphaned task did nothing
  }(*this));
}

TEST_F(WriteBehindTest, ContiguousWritesAbsorbUntilThreshold) {
  WriteBehindParams p;
  p.flush_threshold = 8;
  build(p);
  run([](WriteBehindTest& t) -> Task<void> {
    (void)co_await t.wb_->write("/a", 0, to_buffer("1234"));
    (void)co_await t.wb_->write("/a", 4, to_buffer("56"));
    EXPECT_EQ(t.wb_->absorbed_writes(), 1u);
    EXPECT_TRUE(t.child_.log.empty());
    // Crossing the threshold pushes one coalesced write downstream.
    (void)co_await t.wb_->write("/a", 6, to_buffer("789"));
    EXPECT_EQ(t.child_.log.size(), 1u);
    if (!t.child_.log.empty()) { EXPECT_EQ(t.child_.log[0], "write /a @0+9"); }
    EXPECT_EQ(t.child_.contents("/a"), "123456789");
  }(*this));
}

}  // namespace
}  // namespace imca::gluster
