// Unit tests for the discrete-event kernel: clock semantics, task chaining,
// synchronization primitives and the FIFO queueing resource.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/resource.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace imca::sim {
namespace {

TEST(EventLoop, StartsAtZeroAndIdle) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0u);
  EXPECT_TRUE(loop.idle());
  EXPECT_EQ(loop.run(), 0u);
}

Task<void> sleeper(EventLoop& loop, SimDuration d, SimTime& woke_at) {
  co_await loop.sleep(d);
  woke_at = loop.now();
}

TEST(EventLoop, SleepAdvancesClock) {
  EventLoop loop;
  SimTime woke = 0;
  loop.spawn(sleeper(loop, 250, woke));
  loop.run();
  EXPECT_EQ(woke, 250u);
  EXPECT_EQ(loop.now(), 250u);
}

TEST(EventLoop, ZeroSleepYields) {
  EventLoop loop;
  std::vector<int> order;
  auto a = [](EventLoop& l, std::vector<int>& ord) -> Task<void> {
    ord.push_back(1);
    co_await l.sleep(0);
    ord.push_back(3);
  };
  auto b = [](EventLoop& l, std::vector<int>& ord) -> Task<void> {
    ord.push_back(2);
    co_await l.sleep(0);
    ord.push_back(4);
  };
  loop.spawn(a(loop, order));
  loop.spawn(b(loop, order));
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventLoop, EqualTimestampsAreFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.spawn([](EventLoop& l, std::vector<int>& ord, int id) -> Task<void> {
      co_await l.sleep(100);
      ord.push_back(id);
    }(loop, order, i));
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task<int> forty_two() { co_return 42; }

Task<void> await_value(int& out) { out = co_await forty_two(); }

TEST(Task, ReturnsValueThroughAwait) {
  EventLoop loop;
  int out = 0;
  loop.spawn(await_value(out));
  loop.run();
  EXPECT_EQ(out, 42);
}

Task<int> add_chain(EventLoop& loop, int depth) {
  if (depth == 0) co_return 0;
  co_await loop.sleep(1);
  const int below = co_await add_chain(loop, depth - 1);
  co_return below + 1;
}

TEST(Task, DeepChainingAccumulates) {
  EventLoop loop;
  int result = -1;
  loop.spawn([](EventLoop& l, int& out) -> Task<void> {
    out = co_await add_chain(l, 100);
  }(loop, result));
  loop.run();
  EXPECT_EQ(result, 100);
  EXPECT_EQ(loop.now(), 100u);  // one 1ns sleep per level
}

TEST(Task, MoveOnlyResult) {
  EventLoop loop;
  std::unique_ptr<int> got;
  loop.spawn([](std::unique_ptr<int>& out) -> Task<void> {
    out = co_await []() -> Task<std::unique_ptr<int>> {
      co_return std::make_unique<int>(9);
    }();
  }(got));
  loop.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 9);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  SimTime woke = 0;
  loop.spawn(sleeper(loop, 1000, woke));
  loop.run_until(500);
  EXPECT_EQ(woke, 0u);        // not yet
  EXPECT_EQ(loop.now(), 500u);  // clock parked at the deadline
  loop.run();
  EXPECT_EQ(woke, 1000u);
}

TEST(EventLoop, LiveTaskCountTracksSpawns) {
  EventLoop loop;
  SimTime w1 = 0, w2 = 0;
  loop.spawn(sleeper(loop, 10, w1));
  loop.spawn(sleeper(loop, 20, w2));
  EXPECT_EQ(loop.live_tasks(), 2u);
  loop.run();
  EXPECT_EQ(loop.live_tasks(), 0u);
}

// --- Event ---

TEST(Sync, EventReleasesAllWaiters) {
  EventLoop loop;
  Event ev(loop);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    loop.spawn([](Event& e, int& n) -> Task<void> {
      co_await e.wait();
      ++n;
    }(ev, released));
  }
  loop.spawn([](EventLoop& l, Event& e) -> Task<void> {
    co_await l.sleep(50);
    e.set();
  }(loop, ev));
  loop.run();
  EXPECT_EQ(released, 3);
  EXPECT_TRUE(ev.is_set());
}

TEST(Sync, EventWaitAfterSetIsImmediate) {
  EventLoop loop;
  Event ev(loop);
  ev.set();
  SimTime woke = 1;
  loop.spawn([](EventLoop& l, Event& e, SimTime& t) -> Task<void> {
    co_await e.wait();
    t = l.now();
  }(loop, ev, woke));
  loop.run();
  EXPECT_EQ(woke, 0u);
}

// --- Channel ---

TEST(Sync, ChannelDeliversInOrder) {
  EventLoop loop;
  Channel<int> ch(loop);
  std::vector<int> got;
  loop.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out.push_back(co_await c.recv());
  }(ch, got));
  loop.spawn([](EventLoop& l, Channel<int>& c) -> Task<void> {
    c.send(1);
    co_await l.sleep(10);
    c.send(2);
    c.send(3);
  }(loop, ch));
  loop.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Sync, ChannelBuffersWhenNoReceiver) {
  EventLoop loop;
  Channel<int> ch(loop);
  ch.send(5);
  ch.send(6);
  EXPECT_EQ(ch.pending(), 2u);
  int sum = 0;
  loop.spawn([](Channel<int>& c, int& s) -> Task<void> {
    s += co_await c.recv();
    s += co_await c.recv();
  }(ch, sum));
  loop.run();
  EXPECT_EQ(sum, 11);
  EXPECT_TRUE(ch.empty());
}

TEST(Sync, ChannelTwoReceiversBothServed) {
  EventLoop loop;
  Channel<int> ch(loop);
  int a = 0, b = 0;
  loop.spawn([](Channel<int>& c, int& out) -> Task<void> {
    out = co_await c.recv();
  }(ch, a));
  loop.spawn([](Channel<int>& c, int& out) -> Task<void> {
    out = co_await c.recv();
  }(ch, b));
  loop.spawn([](EventLoop& l, Channel<int>& c) -> Task<void> {
    co_await l.sleep(1);
    c.send(10);
    c.send(20);
  }(loop, ch));
  loop.run();
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 20);
}

// --- SimMutex ---

TEST(Sync, MutexSerializesCriticalSections) {
  EventLoop loop;
  SimMutex mu(loop);
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 4; ++i) {
    loop.spawn([](EventLoop& l, SimMutex& m, int& in, int& mx) -> Task<void> {
      auto g = co_await ScopedLock::acquire(m);
      ++in;
      mx = std::max(mx, in);
      co_await l.sleep(100);
      --in;
    }(loop, mu, inside, max_inside));
  }
  loop.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(loop.now(), 400u);  // 4 critical sections of 100ns serialized
  EXPECT_FALSE(mu.locked());
}

TEST(Sync, MutexFifoOrder) {
  EventLoop loop;
  SimMutex mu(loop);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    loop.spawn([](EventLoop& l, SimMutex& m, std::vector<int>& ord,
                  int id) -> Task<void> {
      auto g = co_await ScopedLock::acquire(m);
      ord.push_back(id);
      co_await l.sleep(10);
    }(loop, mu, order, i));
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- Semaphore ---

TEST(Sync, SemaphoreLimitsConcurrency) {
  EventLoop loop;
  Semaphore sem(loop, 2);
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 6; ++i) {
    loop.spawn([](EventLoop& l, Semaphore& s, int& in, int& mx) -> Task<void> {
      co_await s.acquire();
      ++in;
      mx = std::max(mx, in);
      co_await l.sleep(100);
      --in;
      s.release();
    }(loop, sem, inside, max_inside));
  }
  loop.run();
  EXPECT_EQ(max_inside, 2);
  EXPECT_EQ(loop.now(), 300u);  // 6 jobs, 2 at a time, 100ns each
  EXPECT_EQ(sem.available(), 2u);
}

// --- Barrier ---

TEST(Sync, BarrierReleasesTogether) {
  EventLoop loop;
  Barrier bar(loop, 3);
  std::vector<SimTime> release_times;
  for (int i = 0; i < 3; ++i) {
    loop.spawn([](EventLoop& l, Barrier& b, std::vector<SimTime>& out,
                  int id) -> Task<void> {
      co_await l.sleep(static_cast<SimDuration>(id) * 100);  // staggered arrival
      co_await b.arrive_and_wait();
      out.push_back(l.now());
    }(loop, bar, release_times, i));
  }
  loop.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (auto t : release_times) EXPECT_EQ(t, 200u);  // last arriver's time
}

TEST(Sync, BarrierIsReusableAcrossPhases) {
  EventLoop loop;
  Barrier bar(loop, 2);
  std::vector<SimTime> times;
  for (int i = 0; i < 2; ++i) {
    loop.spawn([](EventLoop& l, Barrier& b, std::vector<SimTime>& out,
                  int id) -> Task<void> {
      for (int phase = 0; phase < 3; ++phase) {
        co_await l.sleep(static_cast<SimDuration>(id + 1) * 10);
        co_await b.arrive_and_wait();
        if (id == 0) out.push_back(l.now());
      }
    }(loop, bar, times, i));
  }
  loop.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 20u);
  EXPECT_EQ(times[1], 40u);
  EXPECT_EQ(times[2], 60u);
}

// --- when_all ---

TEST(Sync, WhenAllWaitsForSlowest) {
  EventLoop loop;
  SimTime done_at = 0;
  loop.spawn([](EventLoop& l, SimTime& out) -> Task<void> {
    std::vector<Task<void>> kids;
    for (int i = 1; i <= 4; ++i) {
      kids.push_back([](EventLoop& ll, SimDuration d) -> Task<void> {
        co_await ll.sleep(d);
      }(l, static_cast<SimDuration>(i) * 100));
    }
    co_await when_all(l, std::move(kids));
    out = l.now();
  }(loop, done_at));
  loop.run();
  EXPECT_EQ(done_at, 400u);  // children ran concurrently, not serially
}

TEST(Sync, WhenAllEmptyCompletesImmediately) {
  EventLoop loop;
  bool done = false;
  loop.spawn([](EventLoop& l, bool& d) -> Task<void> {
    co_await when_all(l, {});
    d = true;
  }(loop, done));
  loop.run();
  EXPECT_TRUE(done);
}

// --- FifoResource ---

TEST(Resource, SingleServerSerializes) {
  EventLoop loop;
  FifoResource disk(loop, 1, "disk");
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    loop.spawn([](FifoResource& r, std::vector<SimTime>& out,
                  EventLoop& l) -> Task<void> {
      co_await r.use(100);
      out.push_back(l.now());
    }(disk, done, loop));
  }
  loop.run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(disk.requests(), 3u);
  EXPECT_EQ(disk.total_busy(), 300u);
}

TEST(Resource, MultiServerRunsInParallel) {
  EventLoop loop;
  FifoResource cpu(loop, 2, "cpu");
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    loop.spawn([](FifoResource& r, std::vector<SimTime>& out,
                  EventLoop& l) -> Task<void> {
      co_await r.use(100);
      out.push_back(l.now());
    }(cpu, done, loop));
  }
  loop.run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 200, 200}));
}

TEST(Resource, QueueWaitAccounted) {
  EventLoop loop;
  FifoResource r(loop, 1);
  loop.spawn([](FifoResource& res) -> Task<void> {
    co_await res.use(100);
  }(r));
  loop.spawn([](FifoResource& res) -> Task<void> {
    co_await res.use(100);  // waits 100 behind the first
  }(r));
  loop.run();
  EXPECT_EQ(r.total_queued(), 100u);
  EXPECT_GT(r.mean_queue_wait_ns(), 0.0);
}

TEST(Resource, ReserveBooksWithoutWaiting) {
  EventLoop loop;
  FifoResource nic(loop, 1);
  loop.spawn([](EventLoop& l, FifoResource& r) -> Task<void> {
    const SimTime t1 = r.reserve(100);
    const SimTime t2 = r.reserve(50);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 150u);  // queued behind the first booking
    EXPECT_EQ(l.now(), 0u);  // no waiting happened
    co_return;
  }(loop, nic));
  loop.run();
}

TEST(Resource, UtilizationReflectsBusyFraction) {
  EventLoop loop;
  FifoResource r(loop, 1);
  loop.spawn([](EventLoop& l, FifoResource& res) -> Task<void> {
    co_await res.use(100);
    co_await l.sleep(100);  // idle period
  }(loop, r));
  loop.run();
  EXPECT_NEAR(r.utilization(), 0.5, 1e-9);
}

// Determinism: the same program produces the same event count and clock.
TEST(Determinism, RepeatedRunsIdentical) {
  auto program = [] {
    EventLoop loop;
    FifoResource r(loop, 2);
    Barrier bar(loop, 8);
    for (int i = 0; i < 8; ++i) {
      loop.spawn([](EventLoop& l, FifoResource& res, Barrier& b,
                    int id) -> Task<void> {
        co_await l.sleep(static_cast<SimDuration>(id % 3));
        co_await res.use(50 + static_cast<SimDuration>(id));
        co_await b.arrive_and_wait();
        co_await l.sleep(5);
      }(loop, r, bar, i));
    }
    loop.run();
    return std::pair{loop.now(), loop.events_processed()};
  };
  const auto a = program();
  const auto b = program();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace imca::sim
