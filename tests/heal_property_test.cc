// Self-heal convergence property (DESIGN.md §5i): for ANY randomized
// workload trace and ANY staggered per-brick crash schedule on a 1x3
// replica group, the invariant harness must end with every replica of every
// live file byte-identical to the oracle, deleted files gone from every
// replica, no mutation applied twice on any brick, and no quorum failure
// (the schedules keep a majority up at every instant). The harness's
// grid-mode epilogue performs the per-replica byte checks inside replay();
// on a failure run_seeded() ddmin-shrinks the trace and prints a
// reproducible one-liner.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/units.h"
#include "harness/workload_harness.h"

namespace imca {
namespace {

// splitmix64: the schedule generator's only entropy source, so a seed fully
// determines the crash plan (same determinism contract as the matrices).
std::uint64_t mix(std::uint64_t& s) {
  std::uint64_t x = (s += 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One randomized rolling round of single-brick crash windows, staggered so
// at most one of the three replicas is ever down: quorum (2) holds
// throughout, so every mutation must commit and every window's dirt must
// heal away. Window and deadline sizing below are load-bearing:
//   * every window exceeds the 200 ms op deadline, so the leg to the dead
//     brick FAILS (and dirties the copy) instead of riding the whole window
//     out on refusal retries and acking unanimously (which would leave the
//     heal machinery nothing to do — a vacuous pass);
//   * the deadline itself leaves headroom for a mutation that lands behind
//     an in-flight self-heal of the same path — the heal holds the path
//     lock across several cold disk accesses, and the blocked fop's TTL
//     keeps draining while it waits.
void add_crash_schedule(std::uint64_t seed, net::FaultPlan* plan) {
  std::uint64_t s = seed * 0x2545f4914f6cdd1dull + 1;
  SimTime t = (5 + mix(s) % 20) * kMilli;
  // A seed-dependent brick order.
  std::size_t order[3] = {0, 1, 2};
  std::swap(order[0], order[mix(s) % 3]);
  std::swap(order[1], order[1 + mix(s) % 2]);
  for (std::size_t i = 0; i < 3; ++i) {
    const SimDuration window = (210 + mix(s) % 30) * kMilli;
    plan->server_crashes.push_back({t, {t + window}, order[i]});
    t += window + (10 + mix(s) % 10) * kMilli;
  }
}

harness::ReplayConfig grid_config(std::uint64_t seed) {
  harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.smcache = true;
  cfg.n_bricks = 1;
  cfg.n_replicas = 3;
  cfg.imca.mcd_op_timeout = 2 * kMilli;
  cfg.imca.mcd_retry_dead_interval = 10 * kMilli;
  // Same stance as the brick fault matrix: the deadline is shorter than
  // every crash window, so the leg to a dead replica genuinely fails, the
  // write commits 2-of-3, and self-heal gets real dirt to copy back — but
  // wide enough to also absorb a wait behind a same-path heal.
  cfg.client.protocol.op_deadline = 200 * kMilli;
  cfg.client.protocol.attempt_timeout = 20 * kMilli;
  cfg.client.protocol.backoff_base = 1 * kMilli;
  cfg.client.protocol.backoff_cap = 4 * kMilli;
  cfg.client.protocol.eject_after = 3;
  cfg.client.protocol.probe_interval = 5 * kMilli;
  cfg.faults.seed = seed;
  add_crash_schedule(seed, &cfg.faults);
  return cfg;
}

TEST(HealPropertyTest, RandomTracesConvergeUnderRandomCrashSchedules) {
  constexpr std::uint64_t kSeeds[] = {21, 22, 23, 24, 25, 26};
  constexpr std::size_t kOps = 200;
  std::uint64_t total_heals = 0;
  std::uint64_t total_switches = 0;
  for (const std::uint64_t seed : kSeeds) {
    const auto res = harness::run_seeded(seed, kOps, grid_config(seed));
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.detail;
    EXPECT_EQ(res.server.duplicate_applies, 0u) << "seed " << seed;
    EXPECT_EQ(res.replicate.quorum_short_writes, 0u)
        << "seed " << seed
        << ": a mutation failed quorum although a majority stayed up";
    EXPECT_GT(res.server.crashes, 0u) << "seed " << seed;
    EXPECT_GT(res.server.restarts, 0u) << "seed " << seed;
    total_heals += res.replicate.heals_completed;
    total_switches += res.replicate.read_child_switches;
  }
  // Across the seed set the machinery under test must demonstrably run: if
  // no heal ever completed or the read child never failed over, the crash
  // schedules were vacuous and the property holds trivially.
  EXPECT_GT(total_heals, 0u);
  EXPECT_GT(total_switches, 0u);
}

}  // namespace
}  // namespace imca
