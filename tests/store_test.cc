// Unit tests for the storage substrate: disk model, RAID striping, page
// cache LRU behaviour, object store semantics, and the BlockDevice facade.
#include <gtest/gtest.h>

#include "common/bytebuf.h"
#include "store/block_device.h"
#include "store/disk.h"
#include "store/object_store.h"
#include "store/page_cache.h"

namespace imca::store {
namespace {

using sim::EventLoop;
using sim::Task;

// --- DiskModel ---

TEST(Disk, RandomAccessPaysSeek) {
  EventLoop loop;
  DiskModel d(loop, DiskParams{}, "d0");
  SimTime t_random = 0;
  loop.spawn([](EventLoop& l, DiskModel& disk, SimTime& out) -> Task<void> {
    co_await disk.access(/*key=*/1, /*offset=*/0, 4096);
    out = l.now();
  }(loop, d, t_random));
  loop.run();
  const DiskParams p;
  EXPECT_GE(t_random, p.avg_seek + p.half_rotation);
  EXPECT_EQ(d.seeks(), 1u);
}

TEST(Disk, SequentialFollowUpSkipsSeek) {
  EventLoop loop;
  DiskModel d(loop, DiskParams{}, "d0");
  SimTime first = 0, second = 0;
  loop.spawn([](EventLoop& l, DiskModel& disk, SimTime& t1,
                SimTime& t2) -> Task<void> {
    co_await disk.access(1, 0, 4096);
    t1 = l.now();
    co_await disk.access(1, 4096, 4096);  // continues where we left off
    t2 = l.now();
  }(loop, d, first, second));
  loop.run();
  EXPECT_EQ(d.sequential_hits(), 1u);
  // The second access is far cheaper than the first.
  EXPECT_LT(second - first, (first) / 10);
}

TEST(Disk, TracksInterleavedStreams) {
  // NCQ + per-file readahead keep a bounded number of interleaved sequential
  // streams efficient: resuming a tracked stream does not seek.
  EventLoop loop;
  DiskModel d(loop, DiskParams{}, "d0");
  loop.spawn([](DiskModel& disk) -> Task<void> {
    co_await disk.access(1, 0, 4096);
    co_await disk.access(2, 0, 4096);     // second stream starts (seek)
    co_await disk.access(1, 4096, 4096);  // stream 1 resumes sequentially
    co_await disk.access(2, 4096, 4096);  // stream 2 resumes sequentially
  }(d));
  loop.run();
  EXPECT_EQ(d.seeks(), 2u);  // one initial seek per stream
  EXPECT_EQ(d.sequential_hits(), 2u);
}

TEST(Disk, TooManyStreamsFallOutOfTracking) {
  EventLoop loop;
  DiskModel d(loop, DiskParams{}, "d0");
  loop.spawn([](DiskModel& disk) -> Task<void> {
    co_await disk.access(1, 0, 4096);
    // 40 other streams push stream 1 out of the tracking window.
    for (std::uint64_t k = 2; k <= 41; ++k) {
      co_await disk.access(k, 0, 4096);
    }
    co_await disk.access(1, 4096, 4096);  // would be sequential, but evicted
  }(d));
  loop.run();
  EXPECT_EQ(d.sequential_hits(), 0u);
  EXPECT_EQ(d.seeks(), 42u);
}

// --- RaidArray ---

TEST(Raid, StreamingScalesWithMembers) {
  auto run = [](std::size_t members) {
    EventLoop loop;
    RaidArray raid(loop, members, DiskParams{});
    loop.spawn([](RaidArray& r) -> Task<void> {
      // 64 MiB sequential stream in 1 MiB chunks.
      for (std::uint64_t off = 0; off < 64 * kMiB; off += kMiB) {
        co_await r.access(1, off, kMiB);
      }
    }(raid));
    loop.run();
    return loop.now();
  };
  const SimTime one = run(1);
  const SimTime eight = run(8);
  // 8-way striping should be at least 4x faster on a streaming workload.
  EXPECT_LT(static_cast<double>(eight), static_cast<double>(one) / 4.0);
}

TEST(Raid, SmallRequestTouchesOneDisk) {
  EventLoop loop;
  RaidArray raid(loop, 8, DiskParams{});
  loop.spawn([](RaidArray& r) -> Task<void> {
    co_await r.access(1, 0, 4096);  // inside the first 64KiB stripe unit
  }(raid));
  loop.run();
  int touched = 0;
  for (std::size_t i = 0; i < raid.members(); ++i) {
    touched += (raid.disk(i).seeks() + raid.disk(i).sequential_hits()) > 0;
  }
  EXPECT_EQ(touched, 1);
}

TEST(Raid, ZeroByteAccessChargesMetadataTouch) {
  EventLoop loop;
  RaidArray raid(loop, 4, DiskParams{});
  SimTime t = 0;
  loop.spawn([](EventLoop& l, RaidArray& r, SimTime& out) -> Task<void> {
    co_await r.access(7, 0, 0);
    out = l.now();
  }(loop, raid, t));
  loop.run();
  EXPECT_GT(t, 0u);  // overhead + seek, not free
}

// --- PageCache ---

TEST(PageCache, MissThenHit) {
  PageCache pc(1 * kMiB);
  EXPECT_EQ(pc.access(1, 0, 4096), 4096u);  // cold miss
  EXPECT_EQ(pc.access(1, 0, 4096), 0u);     // now resident
  EXPECT_EQ(pc.hits(), 1u);
  EXPECT_EQ(pc.misses(), 1u);
}

TEST(PageCache, PartialRangeCountsOnlyMissingPages) {
  PageCache pc(1 * kMiB);
  pc.populate(1, 0, 4096);  // first page resident
  // Range spans pages 0 and 1; only page 1 misses.
  EXPECT_EQ(pc.access(1, 0, 8192), 4096u);
}

TEST(PageCache, LruEvictsOldest) {
  PageCache pc(2 * PageCache::kPageSize);  // two pages capacity
  pc.populate(1, 0, 4096);                 // page A
  pc.populate(1, 4096, 4096);              // page B
  EXPECT_EQ(pc.access(1, 0, 4096), 0u);    // touch A (B is now LRU)
  pc.populate(2, 0, 4096);                 // page C evicts B
  EXPECT_EQ(pc.evictions(), 1u);
  EXPECT_EQ(pc.access(1, 0, 4096), 0u);     // A still here
  EXPECT_GT(pc.access(1, 4096, 4096), 0u);  // B was evicted
}

TEST(PageCache, InvalidateDropsOnlyThatFile) {
  PageCache pc(1 * kMiB);
  pc.populate(1, 0, 8192);
  pc.populate(2, 0, 4096);
  pc.invalidate(1);
  EXPECT_GT(pc.access(1, 0, 4096), 0u);  // gone
  EXPECT_EQ(pc.access(2, 0, 4096), 0u);  // untouched
}

TEST(PageCache, ClearDropsEverything) {
  PageCache pc(1 * kMiB);
  pc.populate(1, 0, 4096);
  pc.clear();
  EXPECT_EQ(pc.resident_pages(), 0u);
  EXPECT_GT(pc.access(1, 0, 4096), 0u);
}

TEST(PageCache, CoveredDoesNotPromote) {
  PageCache pc(1 * kMiB);
  EXPECT_FALSE(pc.covered(1, 0, 4096));
  pc.populate(1, 0, 4096);
  EXPECT_TRUE(pc.covered(1, 0, 4096));
  EXPECT_EQ(pc.hits(), 0u);  // covered() is not an access
}

TEST(PageCache, ZeroCapacityCachesNothing) {
  PageCache pc(0);
  EXPECT_EQ(pc.access(1, 0, 4096), 4096u);
  EXPECT_EQ(pc.access(1, 0, 4096), 4096u);  // still a miss
}

// --- Attr wire format ---

TEST(Attr, EncodeDecodeRoundTrip) {
  Attr a;
  a.inode = 7;
  a.size = 123456;
  a.mode = 0755;
  a.nlink = 2;
  a.atime = 111;
  a.mtime = 222;
  a.ctime = 333;
  ByteBuf buf;
  a.encode(buf);
  EXPECT_EQ(buf.size(), Attr::kWireSize);
  auto b = Attr::decode(buf);
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, a);
}

TEST(Attr, DecodeTruncatedFails) {
  ByteBuf buf;
  buf.put_u64(1);  // only the inode
  EXPECT_FALSE(Attr::decode(buf));
}

// --- ObjectStore ---

TEST(ObjectStore, CreateStatUnlink) {
  ObjectStore os;
  auto a = os.create("/f", 100);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->size, 0u);
  EXPECT_EQ(a->ctime, 100u);
  EXPECT_TRUE(os.exists("/f"));
  EXPECT_EQ(os.create("/f", 200).error(), Errc::kExist);
  ASSERT_TRUE(os.stat("/f"));
  ASSERT_TRUE(os.unlink("/f"));
  EXPECT_FALSE(os.exists("/f"));
  EXPECT_EQ(os.unlink("/f").error(), Errc::kNoEnt);
  EXPECT_EQ(os.stat("/f").error(), Errc::kNoEnt);
}

TEST(ObjectStore, WriteExtendsAndStampsMtime) {
  ObjectStore os;
  ASSERT_TRUE(os.create("/f", 1));
  auto sz = os.write("/f", 10, to_buffer("hello"), 50);
  ASSERT_TRUE(sz);
  EXPECT_EQ(*sz, 15u);
  const auto st = os.stat("/f").value();
  EXPECT_EQ(st.size, 15u);
  EXPECT_EQ(st.mtime, 50u);
  // The hole [0,10) is zero-filled.
  auto head = os.read("/f", 0, 10).value();
  for (auto b : head) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(to_string(os.read("/f", 10, 5).value()), "hello");
}

TEST(ObjectStore, ShortReadAtEof) {
  ObjectStore os;
  ASSERT_TRUE(os.create("/f", 1));
  ASSERT_TRUE(os.write("/f", 0, to_buffer("abc"), 2));
  EXPECT_EQ(to_string(os.read("/f", 1, 100).value()), "bc");
  EXPECT_TRUE(os.read("/f", 3, 10).value().empty());
  EXPECT_TRUE(os.read("/f", 99, 10).value().empty());
}

TEST(ObjectStore, OverwriteInPlace) {
  ObjectStore os;
  ASSERT_TRUE(os.create("/f", 1));
  ASSERT_TRUE(os.write("/f", 0, to_buffer("aaaa"), 2));
  ASSERT_TRUE(os.write("/f", 1, to_buffer("bb"), 3));
  EXPECT_EQ(to_string(os.read("/f", 0, 4).value()), "abba");
}

TEST(ObjectStore, WriteToMissingFileFails) {
  ObjectStore os;
  EXPECT_EQ(os.write("/nope", 0, to_buffer("x"), 1).error(), Errc::kNoEnt);
  EXPECT_EQ(os.read("/nope", 0, 1).error(), Errc::kNoEnt);
}

TEST(ObjectStore, TruncateBothWays) {
  ObjectStore os;
  ASSERT_TRUE(os.create("/f", 1));
  ASSERT_TRUE(os.write("/f", 0, to_buffer("abcdef"), 2));
  ASSERT_TRUE(os.truncate("/f", 3, 5));
  EXPECT_EQ(os.stat("/f").value().size, 3u);
  EXPECT_EQ(to_string(os.read("/f", 0, 10).value()), "abc");
  ASSERT_TRUE(os.truncate("/f", 5, 6));
  EXPECT_EQ(os.read("/f", 0, 10).value().size(), 5u);
}

TEST(ObjectStore, InodesAreUniqueAndStable) {
  ObjectStore os;
  const auto a = os.create("/a", 1).value().inode;
  const auto b = os.create("/b", 1).value().inode;
  EXPECT_NE(a, b);
  EXPECT_EQ(os.stat("/a").value().inode, a);
  ASSERT_TRUE(os.unlink("/a"));
  const auto c = os.create("/a", 2).value().inode;
  EXPECT_NE(c, a);  // recreation gets a fresh inode
}

TEST(ObjectStore, AccountsTotalBytes) {
  ObjectStore os;
  ASSERT_TRUE(os.create("/a", 1));
  ASSERT_TRUE(os.write("/a", 0, Buffer::zeros(1000), 1));
  EXPECT_EQ(os.total_bytes(), 1000u);
  ASSERT_TRUE(os.unlink("/a"));
  EXPECT_EQ(os.total_bytes(), 0u);
}

TEST(ObjectStore, ListIsSorted) {
  ObjectStore os;
  ASSERT_TRUE(os.create("/b", 1));
  ASSERT_TRUE(os.create("/a", 1));
  const auto l = os.list();
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l[0], "/a");
  EXPECT_EQ(l[1], "/b");
}

// --- BlockDevice ---

TEST(BlockDevice, CachedReadIsFree) {
  EventLoop loop;
  BlockDevice dev(loop, 8, DiskParams{}, 64 * kMiB);
  SimTime first = 0, second = 0;
  loop.spawn([](EventLoop& l, BlockDevice& d, SimTime& t1,
                SimTime& t2) -> Task<void> {
    co_await d.read(1, 0, 4096);
    t1 = l.now();
    co_await d.read(1, 0, 4096);
    t2 = l.now();
  }(loop, dev, first, second));
  loop.run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(second, first);  // second read hit the page cache: zero time
}

TEST(BlockDevice, WriteIsBufferedButFlushOccupiesDisk) {
  EventLoop loop;
  BlockDevice dev(loop, 1, DiskParams{}, 64 * kMiB);
  SimTime write_done = 0, read_done = 0;
  loop.spawn([](EventLoop& l, BlockDevice& d, SimTime& w,
                SimTime& r) -> Task<void> {
    co_await d.write(1, 0, 1 * kMiB);
    w = l.now();
    // A read of *uncached* data must queue behind the background flush.
    co_await d.read(2, 0, 4096);
    r = l.now();
  }(loop, dev, write_done, read_done));
  loop.run();
  EXPECT_EQ(write_done, 0u);  // write-back: no foreground disk time
  const DiskParams p;
  // Flush of 1MiB at 70MB/s ~ 14ms; the read waited behind it.
  EXPECT_GT(read_done, transfer_time(1 * kMiB, p.transfer_bps));
}

TEST(BlockDevice, MetaMissesHitDiskOncePerInode) {
  EventLoop loop;
  BlockDevice dev(loop, 8, DiskParams{}, 64 * kMiB);
  SimTime t1 = 0, t2 = 0;
  loop.spawn([](EventLoop& l, BlockDevice& d, SimTime& a,
                SimTime& b) -> Task<void> {
    co_await d.meta(42);
    a = l.now();
    co_await d.meta(42);
    b = l.now();
  }(loop, dev, t1, t2));
  loop.run();
  EXPECT_GT(t1, 0u);
  EXPECT_EQ(t2, t1);  // inode now cached
}

TEST(BlockDevice, DropCachesForcesDiskAgain) {
  EventLoop loop;
  BlockDevice dev(loop, 8, DiskParams{}, 64 * kMiB);
  SimDuration first = 0, again = 0;
  loop.spawn([](EventLoop& l, BlockDevice& d, SimDuration& a,
                SimDuration& b) -> Task<void> {
    co_await d.read(1, 0, 4096);
    a = l.now();
    d.drop_caches();
    const SimTime mark = l.now();
    co_await d.read(1, 0, 4096);
    b = l.now() - mark;
  }(loop, dev, first, again));
  loop.run();
  EXPECT_GT(again, 0u);
}

}  // namespace
}  // namespace imca::store
