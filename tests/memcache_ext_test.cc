// Tests for the memcached 1.2 extended command set: cas/gets version
// control, incr/decr counters — engine semantics, wire protocol, and the
// client library end to end.
#include <gtest/gtest.h>

#include "mcclient/client.h"
#include "memcache/cache.h"
#include "memcache/protocol.h"
#include "memcache/server.h"
#include "net/transport.h"

namespace imca::memcache {
namespace {

Buffer bytes(std::string_view s) { return to_buffer(s); }

// --- engine: cas ---

TEST(Cas, IdsAreUniqueAndChangeOnStore) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("a", 0, 0, bytes("1"), 0));
  ASSERT_TRUE(c.set("b", 0, 0, bytes("1"), 0));
  const auto ca = c.get("a", 1)->cas;
  const auto cb = c.get("b", 1)->cas;
  EXPECT_NE(ca, 0u);
  EXPECT_NE(ca, cb);
  ASSERT_TRUE(c.set("a", 0, 0, bytes("2"), 2));
  EXPECT_NE(c.get("a", 3)->cas, ca);  // new version, new id
}

TEST(Cas, SucceedsOnMatchingId) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 0, bytes("old"), 0));
  const auto id = c.get("k", 1)->cas;
  ASSERT_TRUE(c.cas("k", 0, 0, bytes("new"), id, 2));
  EXPECT_EQ(to_string(c.get("k", 3)->data), "new");
}

TEST(Cas, FailsAfterInterveningWrite) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("k", 0, 0, bytes("v1"), 0));
  const auto id = c.get("k", 1)->cas;
  ASSERT_TRUE(c.set("k", 0, 0, bytes("v2"), 2));  // someone else wrote
  EXPECT_EQ(c.cas("k", 0, 0, bytes("v3"), id, 3).error(), Errc::kBusy);
  EXPECT_EQ(to_string(c.get("k", 4)->data), "v2");  // loser changed nothing
}

TEST(Cas, NotFoundWhenAbsent) {
  McCache c(16 * kMiB);
  EXPECT_EQ(c.cas("ghost", 0, 0, bytes("x"), 1, 0).error(), Errc::kNoEnt);
}

// --- engine: incr/decr ---

TEST(Arith, IncrementsDecimalAscii) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("n", 0, 0, bytes("41"), 0));
  EXPECT_EQ(c.incr("n", 1, 1).value(), 42u);
  EXPECT_EQ(to_string(c.get("n", 2)->data), "42");
  EXPECT_EQ(c.incr("n", 958, 3).value(), 1000u);
}

TEST(Arith, DecrClampsAtZero) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("n", 0, 0, bytes("5"), 0));
  EXPECT_EQ(c.decr("n", 3, 1).value(), 2u);
  EXPECT_EQ(c.decr("n", 100, 2).value(), 0u);  // memcached clamps
}

TEST(Arith, IncrWrapsAt64Bits) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("n", 0, 0, bytes("18446744073709551615"), 0));  // 2^64-1
  EXPECT_EQ(c.incr("n", 1, 1).value(), 0u);  // wraps like memcached
}

TEST(Arith, NonNumericRejected) {
  McCache c(16 * kMiB);
  ASSERT_TRUE(c.set("s", 0, 0, bytes("hello"), 0));
  EXPECT_EQ(c.incr("s", 1, 1).error(), Errc::kInval);
  EXPECT_EQ(c.decr("s", 1, 1).error(), Errc::kInval);
  EXPECT_EQ(c.incr("absent", 1, 1).error(), Errc::kNoEnt);
}

// --- wire protocol ---

TEST(ProtocolExt, GetsCarriesCasId) {
  McCache c(16 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "k", 7, 0, bytes("v")), 0);
  const std::string keys[] = {"k"};
  auto resp = handle_request(c, encode_gets(keys), 1);
  auto got = parse_get_response(resp).value();
  ASSERT_TRUE(got.contains("k"));
  EXPECT_NE(got.at("k").cas, 0u);
  EXPECT_EQ(got.at("k").cas, c.get("k", 2)->cas);
  // Plain get omits the cas id.
  auto resp2 = handle_request(c, encode_get(keys), 3);
  EXPECT_EQ(parse_get_response(resp2).value().at("k").cas, 0u);
}

TEST(ProtocolExt, CasRoundTrip) {
  McCache c(16 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "k", 0, 0, bytes("a")), 0);
  const std::string keys[] = {"k"};
  auto got = parse_get_response(
                 *std::make_unique<ByteBuf>(handle_request(c, encode_gets(keys), 1)))
                 .value();
  const auto id = got.at("k").cas;

  auto r1 = handle_request(c, encode_cas("k", 0, 0, bytes("b"), id), 2);
  EXPECT_EQ(parse_cas_response(r1).value(), CasReply::kStored);
  // The same id again is now stale.
  auto r2 = handle_request(c, encode_cas("k", 0, 0, bytes("c"), id), 3);
  EXPECT_EQ(parse_cas_response(r2).value(), CasReply::kExists);
  auto r3 = handle_request(c, encode_cas("nope", 0, 0, bytes("x"), 1), 4);
  EXPECT_EQ(parse_cas_response(r3).value(), CasReply::kNotFound);
}

TEST(ProtocolExt, IncrDecrRoundTrip) {
  McCache c(16 * kMiB);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "ctr", 0, 0, bytes("10")), 0);
  auto r1 = handle_request(c, encode_incr("ctr", 5), 1);
  EXPECT_EQ(parse_arith_response(r1).value(), 15u);
  auto r2 = handle_request(c, encode_decr("ctr", 20), 2);
  EXPECT_EQ(parse_arith_response(r2).value(), 0u);
  auto r3 = handle_request(c, encode_incr("ghost", 1), 3);
  EXPECT_EQ(parse_arith_response(r3).error(), Errc::kNoEnt);
  (void)handle_request(c, encode_store(StoreVerb::kSet, "s", 0, 0, bytes("x")), 4);
  auto r4 = handle_request(c, encode_incr("s", 1), 5);
  EXPECT_EQ(parse_arith_response(r4).error(), Errc::kInval);
}

TEST(ProtocolExt, MalformedExtCommandsError) {
  McCache c(16 * kMiB);
  const auto expect_error = [&](std::string_view raw) {
    ByteBuf req;
    req.put_raw(raw);
    auto resp = handle_request(c, std::move(req), 0);
    EXPECT_TRUE(to_string(resp.buffer()).starts_with("ERROR")) << raw;
  };
  expect_error("cas k 0 0 1\r\nx\r\n");      // missing cas id
  expect_error("cas k 0 0 1 abc\r\nx\r\n");  // non-numeric cas id
  expect_error("incr k\r\n");                // missing delta
  expect_error("decr k 1 2\r\n");            // extra token
  expect_error("incr k x\r\n");              // non-numeric delta
}

// --- client library over the fabric ---

TEST(ClientExt, CasLoopImplementsAtomicUpdate) {
  sim::EventLoop loop;
  net::Fabric fabric(loop, net::ipoib_rc());
  net::RpcSystem rpc(fabric);
  fabric.add_node("mcd");
  const auto cnode = fabric.add_node("client").id();
  McServer server(rpc, 0, 64 * kMiB);
  server.start();
  mcclient::McClient client(rpc, cnode, {0},
                            std::make_unique<mcclient::Crc32Selector>());

  loop.spawn([](mcclient::McClient& c) -> sim::Task<void> {
    (void)co_await c.set("doc", to_buffer("v0"));
    // Optimistic update: gets -> modify -> cas.
    auto v = co_await c.gets("doc");
    EXPECT_TRUE(v.has_value());
    if (v) {
      auto r = co_await c.cas("doc", to_buffer("v1"), v->cas);
      EXPECT_TRUE(r.has_value());
    }
    // A second cas with the stale id must lose.
    if (v) {
      auto r = co_await c.cas("doc", to_buffer("v2"), v->cas);
      EXPECT_EQ(r.error(), Errc::kBusy);
    }
    auto final_v = co_await c.get("doc");
    EXPECT_TRUE(final_v.has_value());
    if (final_v) { EXPECT_EQ(to_string(final_v->data), "v1"); }

    // Counters.
    (void)co_await c.set("hits", to_buffer("0"));
    for (int i = 0; i < 5; ++i) {
      (void)co_await c.incr("hits", 2);
    }
    auto n = co_await c.decr("hits", 3);
    EXPECT_TRUE(n.has_value());
    if (n) { EXPECT_EQ(*n, 7u); }
  }(client));
  loop.run();
}

}  // namespace
}  // namespace imca::memcache
