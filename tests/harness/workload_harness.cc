#include "harness/workload_harness.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>

#include "common/bytebuf.h"
#include "common/errc.h"
#include "common/rng.h"
#include "harness/shrink.h"

namespace imca::harness {

namespace {

constexpr std::uint32_t kFiles = 4;
// Offsets/lengths sized so files span a handful of 2 KiB IMCa blocks:
// enough to exercise partial hits, stale-EOF purges and multi-daemon
// placement without making every replay expensive.
constexpr std::uint64_t kMaxOffset = 12 * 1024;
constexpr std::uint64_t kMaxIo = 5 * 1024;

std::string path_of(std::uint32_t i) { return "/h/f" + std::to_string(i); }

struct ReplayState {
  // nullopt = file does not exist. The string is the oracle contents.
  std::array<std::optional<std::string>, kFiles> oracle;
  // Kept-open handle per live file. Files stay open across ops (except
  // around unlink and after an explicit kClose) so verification reads do not
  // trigger SMCache's purge-on-open and wipe the cache under test.
  std::array<std::optional<fsapi::OpenFile>, kFiles> handle;
};

void fail(ReplayResult& res, std::string detail) {
  res.ok = false;
  res.detail = std::move(detail);
}

std::string describe_bytes(const std::string& expected,
                           const std::string& got) {
  std::size_t first = 0;
  const std::size_t common = std::min(expected.size(), got.size());
  while (first < common && expected[first] == got[first]) ++first;
  return "expected " + std::to_string(expected.size()) + "B, got " +
         std::to_string(got.size()) + "B, first divergence at byte " +
         std::to_string(first);
}

// Open `file` (keeping the handle) if it exists but has no handle.
sim::Task<void> ensure_open(fsapi::FileSystemClient& fs, ReplayState& st,
                            std::uint32_t file, ReplayResult& res) {
  if (!st.oracle[file] || st.handle[file]) co_return;
  auto h = co_await fs.open(path_of(file));
  if (!h) {
    fail(res, "open(" + path_of(file) + ") failed: " +
                  std::string(errc_name(h.error())));
    co_return;
  }
  st.handle[file] = *h;
}

// The invariant proper: every live file's stat size and full contents, read
// through the CMCache stack, must byte-match the oracle. `losses` (null =
// strict) is the write-back tier's accounted-loss ledger: a file may diverge
// only if an acked extent on that exact path was recorded lost — divergence
// with no matching ledger entry is a correctness bug either way.
sim::Task<void> verify_all(fsapi::FileSystemClient& fs, ReplayState& st,
                           ReplayResult& res,
                           const std::vector<core::WbLostExtent>* losses) {
  for (std::uint32_t f = 0; f < kFiles; ++f) {
    if (!st.oracle[f]) continue;
    const std::string& expect = *st.oracle[f];
    const std::string path = path_of(f);
    const bool lossy =
        losses != nullptr &&
        std::any_of(losses->begin(), losses->end(),
                    [&](const core::WbLostExtent& l) { return l.path == path; });

    auto attr = co_await fs.stat(path);
    if (!attr) {
      fail(res, "stat(" + path + ") failed: " +
                    std::string(errc_name(attr.error())));
      co_return;
    }
    if (attr->size != expect.size() && !lossy) {
      fail(res, "stat(" + path + ") size " +
                    std::to_string(attr->size) + " != oracle " +
                    std::to_string(expect.size()));
      co_return;
    }

    co_await ensure_open(fs, st, f, res);
    if (!res.ok) co_return;
    // Read past the oracle size too: a cached stale block beyond EOF would
    // otherwise go unnoticed until the file grows back over it.
    auto got = co_await fs.read(*st.handle[f], 0, expect.size() + 64);
    if (!got) {
      fail(res, "verify read(" + path + ") failed: " +
                    std::string(errc_name(got.error())));
      co_return;
    }
    const std::string got_s = to_string(*got);
    ++res.reads_checked;
    res.bytes_checked += got_s.size();
    if (got_s != expect) {
      if (lossy) {
        ++res.wb_tolerated_divergences;
        continue;
      }
      fail(res, "verify read(" + path + "): " +
                    describe_bytes(expect, got_s));
      co_return;
    }
  }
}

// A mid-trace divergence may be a genuine, accounted write-back loss whose
// discovery the flusher has not reached yet (losses surface when a flush
// finds every dirty replica gone): drain the tier, then consult the loss
// ledger. true = this exact path has an accounted loss, so the divergence
// is the loss the plan engineered, not a correctness bug.
sim::Task<bool> path_lost(cluster::GlusterTestbed* bed, std::string path) {
  co_await bed->sync_writebacks();
  for (const auto& l : bed->writeback_losses()) {
    if (l.path == path) co_return true;
  }
  co_return false;
}

sim::Task<void> apply_op(cluster::GlusterTestbed& bed,
                         fsapi::FileSystemClient& fs, ReplayState& st, Op op,
                         ReplayResult& res, bool tolerate_wb_loss) {
  const std::uint32_t f = op.file % kFiles;
  switch (op.kind) {
    case Op::Kind::kWrite: {
      if (!st.oracle[f]) {
        auto h = co_await fs.create(path_of(f));
        if (!h) {
          fail(res, "create(" + path_of(f) + ") failed: " +
                        std::string(errc_name(h.error())));
          co_return;
        }
        st.oracle[f] = std::string();
        st.handle[f] = *h;
      }
      co_await ensure_open(fs, st, f, res);
      if (!res.ok) co_return;
      const auto data = payload_bytes(op.payload_seed, op.length);
      auto wrote = co_await fs.write(*st.handle[f], op.offset, data);
      if (!wrote) {
        fail(res, "write(" + path_of(f) + ") failed: " +
                      std::string(errc_name(wrote.error())));
        co_return;
      }
      if (*wrote != op.length) {
        fail(res, "write(" + path_of(f) + ") short: " +
                      std::to_string(*wrote) + " of " +
                      std::to_string(op.length));
        co_return;
      }
      auto& s = *st.oracle[f];
      if (s.size() < op.offset + op.length) {
        s.resize(op.offset + op.length, '\0');  // holes read back as zeros
      }
      s.replace(op.offset, op.length, to_string(data));
      co_return;
    }
    case Op::Kind::kRead: {
      if (!st.oracle[f]) co_return;  // nothing to read; ops adapt to state
      co_await ensure_open(fs, st, f, res);
      if (!res.ok) co_return;
      auto got = co_await fs.read(*st.handle[f], op.offset, op.length);
      if (!got) {
        fail(res, "read(" + path_of(f) + ") failed: " +
                      std::string(errc_name(got.error())));
        co_return;
      }
      const std::string& oracle = *st.oracle[f];
      std::string expect;
      if (op.offset < oracle.size()) {
        expect = oracle.substr(
            op.offset, std::min<std::uint64_t>(op.length,
                                               oracle.size() - op.offset));
      }
      const std::string got_s = to_string(*got);
      ++res.reads_checked;
      res.bytes_checked += got_s.size();
      if (got_s != expect) {
        if (tolerate_wb_loss && co_await path_lost(&bed, path_of(f))) {
          ++res.wb_tolerated_divergences;
          co_return;
        }
        fail(res, "read(" + path_of(f) + " @" + std::to_string(op.offset) +
                      "+" + std::to_string(op.length) + "): " +
                      describe_bytes(expect, got_s));
      }
      co_return;
    }
    case Op::Kind::kStat: {
      if (!st.oracle[f]) co_return;
      auto attr = co_await fs.stat(path_of(f));
      if (!attr) {
        fail(res, "stat(" + path_of(f) + ") failed: " +
                      std::string(errc_name(attr.error())));
      } else if (attr->size != st.oracle[f]->size()) {
        if (tolerate_wb_loss && co_await path_lost(&bed, path_of(f))) {
          ++res.wb_tolerated_divergences;
          co_return;
        }
        fail(res, "stat(" + path_of(f) + ") size " +
                      std::to_string(attr->size) + " != oracle " +
                      std::to_string(st.oracle[f]->size()));
      }
      co_return;
    }
    case Op::Kind::kTruncate: {
      if (!st.oracle[f]) co_return;
      auto r = co_await fs.truncate(path_of(f), op.length);
      if (!r) {
        fail(res, "truncate(" + path_of(f) + ") failed: " +
                      std::string(errc_name(r.error())));
        co_return;
      }
      st.oracle[f]->resize(op.length, '\0');
      co_return;
    }
    case Op::Kind::kUnlink: {
      if (!st.oracle[f]) co_return;
      if (st.handle[f]) {
        (void)co_await fs.close(*st.handle[f]);
        st.handle[f].reset();
      }
      auto r = co_await fs.unlink(path_of(f));
      if (!r) {
        fail(res, "unlink(" + path_of(f) + ") failed: " +
                      std::string(errc_name(r.error())));
        co_return;
      }
      st.oracle[f].reset();
      co_return;
    }
    case Op::Kind::kRename: {
      const std::uint32_t t = op.target % kFiles;
      if (!st.oracle[f] || t == f) co_return;
      if (st.handle[t]) {
        // The replaced target's handle goes stale; drop it first.
        (void)co_await fs.close(*st.handle[t]);
        st.handle[t].reset();
      }
      auto r = co_await fs.rename(path_of(f), path_of(t));
      if (!r) {
        fail(res, "rename(" + path_of(f) + "->" + path_of(t) + ") failed: " +
                      std::string(errc_name(r.error())));
        co_return;
      }
      st.oracle[t] = std::move(st.oracle[f]);
      st.oracle[f].reset();
      st.handle[t] = st.handle[f];  // open handles follow the file
      st.handle[f].reset();
      co_return;
    }
    case Op::Kind::kClose: {
      if (!st.handle[f]) co_return;
      (void)co_await fs.close(*st.handle[f]);
      st.handle[f].reset();
      co_return;
    }
    case Op::Kind::kReopen: {
      co_await ensure_open(fs, st, f, res);
      co_return;
    }
  }
}

// Grid-mode epilogue: drive self-heal to convergence, then prove every
// replica of every file byte-identical to the oracle (and deleted files
// gone from every replica). This is the "kill any brick" guarantee: after
// heal there is no observer — not even one reading a single brick directly —
// that can see a quorum-acked write missing or stale bytes.
sim::Task<void> verify_replicas(cluster::GlusterTestbed& bed, ReplayState& st,
                                ReplayResult& res) {
  gluster::GlusterClient& gc = bed.gluster_client(0);
  res.heal = co_await gc.heal_all();
  if (res.heal.remaining != 0) {
    fail(res, "heal_all left " + std::to_string(res.heal.remaining) +
                  " dirty (child, path) pairs with no reachable fresh source");
    co_return;
  }
  for (std::uint32_t f = 0; f < kFiles; ++f) {
    const std::string path = path_of(f);
    gluster::ReplicateXlator* rep = gc.replica_group(gc.group_of(path));
    if (rep == nullptr) co_return;  // replicas == 1: nothing extra to prove
    for (std::size_t i = 0; i < rep->replica_count(); ++i) {
      auto attr = co_await rep->stat_from(i, path);
      if (!st.oracle[f]) {
        if (attr.has_value() || attr.error() != Errc::kNoEnt) {
          fail(res, "replica " + std::to_string(i) + " still serves deleted " +
                        path);
          co_return;
        }
        continue;
      }
      const std::string& expect = *st.oracle[f];
      if (!attr) {
        fail(res, "replica " + std::to_string(i) + " stat(" + path +
                      ") failed: " + std::string(errc_name(attr.error())));
        co_return;
      }
      if (attr->size != expect.size()) {
        fail(res, "replica " + std::to_string(i) + " stat(" + path +
                      ") size " + std::to_string(attr->size) + " != oracle " +
                      std::to_string(expect.size()));
        co_return;
      }
      auto got = co_await rep->read_from(i, path, 0, expect.size() + 64);
      if (!got) {
        fail(res, "replica " + std::to_string(i) + " read(" + path +
                      ") failed: " + std::string(errc_name(got.error())));
        co_return;
      }
      const std::string got_s = to_string(*got);
      ++res.replica_reads_checked;
      res.bytes_checked += got_s.size();
      if (got_s != expect) {
        fail(res, "replica " + std::to_string(i) + " of " + path +
                      " diverges after heal: " + describe_bytes(expect, got_s));
        co_return;
      }
    }
  }
}

sim::Task<void> replay_body(cluster::GlusterTestbed& bed,
                            std::vector<Op> trace,
                            ReplayConfig cfg, ReplayResult& res) {
  fsapi::FileSystemClient& fs = bed.client(0);
  ReplayState st;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    co_await apply_op(bed, fs, st, trace[i], res, cfg.tolerate_wb_loss);
    if (res.ok && cfg.verify_every_op) {
      // Threaded SMCaches publish asynchronously; settle before checking.
      // Write-back extents deliberately stay dirty: the per-op check reads
      // THROUGH the overlay, proving read-your-writes before any flush.
      co_await bed.quiesce_smcaches();
      co_await verify_all(fs, st, res, nullptr);
    }
    if (!res.ok) {
      res.failed_op = i;
      co_return;
    }
  }
  // Final sweep: drain the write-back tier first — replica verification
  // reads bricks directly, beneath the overlay. Losses recorded during the
  // drain feed the (optionally tolerant) byte-check below.
  co_await bed.sync_writebacks();
  co_await bed.quiesce_smcaches();
  const std::vector<core::WbLostExtent> losses = bed.writeback_losses();
  co_await verify_all(fs, st, res,
                      cfg.tolerate_wb_loss ? &losses : nullptr);
  if (res.ok && cfg.n_replicas > 1) co_await verify_replicas(bed, st, res);
  if (!res.ok) res.failed_op = trace.size();
}

}  // namespace

Buffer payload_bytes(std::uint64_t payload_seed, std::uint64_t n) {
  Rng rng(payload_seed);
  std::vector<std::byte> data;
  data.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    data.push_back(static_cast<std::byte>(rng.below(256)));
  }
  return Buffer::take(std::move(data));
}

std::vector<Op> generate_ops(std::uint64_t seed, std::size_t n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    Op op;
    op.file = static_cast<std::uint32_t>(rng.below(kFiles));
    const std::uint64_t roll = rng.below(100);
    if (roll < 30) {
      op.kind = Op::Kind::kWrite;
      op.offset = rng.below(kMaxOffset);
      op.length = 1 + rng.below(kMaxIo);
      op.payload_seed = rng.next();
    } else if (roll < 60) {
      op.kind = Op::Kind::kRead;
      op.offset = rng.below(kMaxOffset + kMaxIo);
      op.length = 1 + rng.below(kMaxIo);
    } else if (roll < 70) {
      op.kind = Op::Kind::kStat;
    } else if (roll < 77) {
      op.kind = Op::Kind::kTruncate;
      op.length = rng.below(kMaxOffset + kMaxIo);
    } else if (roll < 82) {
      op.kind = Op::Kind::kUnlink;
    } else if (roll < 87) {
      op.kind = Op::Kind::kRename;
      op.target = static_cast<std::uint32_t>(rng.below(kFiles));
    } else if (roll < 92) {
      op.kind = Op::Kind::kClose;
    } else {
      op.kind = Op::Kind::kReopen;
    }
    ops.push_back(op);
  }
  return ops;
}

ReplayResult replay(const std::vector<Op>& trace, const ReplayConfig& cfg) {
  cluster::GlusterTestbedConfig tc;
  tc.n_clients = 1;
  tc.n_mcds = cfg.n_mcds;
  tc.n_bricks = cfg.n_bricks;
  tc.n_replicas = cfg.n_replicas;
  tc.smcache = cfg.smcache;
  tc.imca = cfg.imca;
  tc.faults = cfg.faults;
  tc.server = cfg.server;
  tc.client = cfg.client;
  cluster::GlusterTestbed bed(std::move(tc));

  ReplayResult res;
  bed.run(replay_body(bed, trace, cfg, res));

  res.server = bed.server_totals();
  gluster::GlusterClient& gc = bed.gluster_client(0);
  res.pc = gc.protocol_totals();
  for (std::size_t g = 0; g < gc.n_groups(); ++g) {
    const gluster::ReplicateXlator* rep = gc.replica_group(g);
    if (rep == nullptr) break;
    const auto& s = rep->stats();
    res.replicate.mutations += s.mutations;
    res.replicate.quorum_short_writes += s.quorum_short_writes;
    res.replicate.partial_acks += s.partial_acks;
    res.replicate.reads += s.reads;
    res.replicate.read_child_switches += s.read_child_switches;
    res.replicate.reads_degraded += s.reads_degraded;
    res.replicate.heals_scheduled += s.heals_scheduled;
    res.replicate.heals_completed += s.heals_completed;
    res.replicate.heal_bytes_copied += s.heal_bytes_copied;
  }
  if (gc.distribute() != nullptr) res.distribute = gc.distribute()->stats();
  if (bed.imca_enabled()) {
    res.cm = bed.cmcache(0).stats();
    res.cm_faults = bed.cmcache(0).fault_stats();
    res.cm_client = bed.cmcache(0).mcds().stats();
    if (bed.smcache() != nullptr) {
      res.sm = bed.smcache()->stats();
      res.sm_client = bed.smcache()->mcds().stats();
    }
    res.wb = bed.writeback_totals();
    res.wb_lost = bed.writeback_losses();
  }
  return res;
}

ReplayResult run_seeded(std::uint64_t seed, std::size_t n_ops,
                        const ReplayConfig& cfg) {
  const auto trace = generate_ops(seed, n_ops);
  ReplayResult res = replay(trace, cfg);
  if (res.ok) return res;

  // Reproduce-then-shrink: bound total replays so a pathological failure
  // can't stall the suite.
  std::size_t budget = 200;
  const auto minimized =
      shrink_trace(trace, [&](const std::vector<Op>& candidate) {
        if (budget == 0) return false;
        --budget;
        return !replay(candidate, cfg).ok;
      });

  std::fprintf(stderr,
               "workload harness FAILED: seed=%llu failed_op=%llu: %s\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(res.failed_op),
               res.detail.c_str());
  std::fprintf(stderr, "minimized trace (%llu ops):\n%s\n",
               static_cast<unsigned long long>(minimized.size()),
               format_trace(minimized).c_str());
  return res;
}

std::string format_op(const Op& op) {
  const std::string f = "f" + std::to_string(op.file % kFiles);
  switch (op.kind) {
    case Op::Kind::kWrite:
      return "W " + f + " @" + std::to_string(op.offset) + "+" +
             std::to_string(op.length) + " seed=" +
             std::to_string(op.payload_seed);
    case Op::Kind::kRead:
      return "R " + f + " @" + std::to_string(op.offset) + "+" +
             std::to_string(op.length);
    case Op::Kind::kStat:
      return "S " + f;
    case Op::Kind::kTruncate:
      return "T " + f + " ->" + std::to_string(op.length);
    case Op::Kind::kUnlink:
      return "U " + f;
    case Op::Kind::kRename:
      return "M " + f + "->f" + std::to_string(op.target % kFiles);
    case Op::Kind::kClose:
      return "C " + f;
    case Op::Kind::kReopen:
      return "O " + f;
  }
  return "?";
}

std::string format_trace(const std::vector<Op>& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + format_op(trace[i]) + "\n";
  }
  return out;
}

}  // namespace imca::harness
