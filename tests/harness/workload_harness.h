// Invariant-checking workload harness (the executable form of the paper's
// §4.4 claim: MCD failures never affect correctness).
//
// A harness run generates a randomized open/read/write/truncate/unlink/
// rename workload from a seed, replays it against a fresh GlusterTestbed
// (IMCa translators + MCD array) under a FaultPlan, mirrors every mutation
// into an in-memory oracle, and checks after every op that reads served
// through CMCache byte-match the oracle. Any divergence is a correctness
// bug, not a performance artifact: caches may *lose* data under faults, but
// must never serve wrong bytes.
//
// Every op is interpreted against the state the previous ops produced (a
// write to a missing file creates it; a read of a missing file is a no-op),
// so ANY subsequence of a trace is itself a valid trace — the property the
// ddmin shrinker in shrink.h relies on. On failure, run_seeded() prints the
// seed and a minimized trace as a reproducible one-liner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "imca/cmcache.h"
#include "imca/config.h"
#include "imca/smcache.h"
#include "mcclient/client.h"
#include "net/fault.h"

namespace imca::harness {

struct Op {
  enum class Kind : std::uint8_t {
    kWrite,     // write `length` seeded bytes at `offset` (creates the file)
    kRead,      // read [offset, offset+length) and byte-check vs the oracle
    kStat,      // stat and check the size vs the oracle
    kTruncate,  // truncate to `length`
    kUnlink,    // remove the file
    kRename,    // rename file -> target (replacing target)
    kClose,     // close the kept-open handle
    kReopen,    // reopen a file whose handle was closed
  };
  Kind kind = Kind::kWrite;
  std::uint32_t file = 0;    // index into the harness's fixed path set
  std::uint32_t target = 0;  // rename destination index
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t payload_seed = 0;  // deterministic write contents
};

struct ReplayConfig {
  std::size_t n_mcds = 3;
  // Brick grid: n_bricks distribute groups of n_replicas AFR replicas. The
  // 1x1 default is the seed's single-server testbed. With n_replicas > 1 the
  // final sweep additionally drives self-heal to convergence and byte-checks
  // EVERY replica of every file against the oracle (deleted files must be
  // kNoEnt on every replica) — so grid fault plans must restart what they
  // crash, or the sweep rightly fails.
  std::size_t n_bricks = 1;
  std::size_t n_replicas = 1;
  bool smcache = true;
  core::ImcaConfig imca;
  net::FaultPlan faults;
  // Brick-side knobs (crash/restart drills set write_behind +
  // flush_before_ack so an acked byte is always durable — the mode under
  // which "acked mutations survive any crash schedule" is provable).
  gluster::GlusterServerParams server;
  // Mount-side knobs (protocol/client deadline + retry/replay policy).
  gluster::GlusterClientParams client;
  // Byte-check every live file after every op (the invariant proper). Off =
  // only the read ops and the final sweep check.
  bool verify_every_op = true;
  // Write-back loss tolerance (DESIGN.md §5j): when a fault plan kills every
  // replica of a dirty extent, the bytes are genuinely gone and the final
  // sweep would rightly diverge from the oracle. With this set, a file's
  // divergence is tolerated if — and only if — the write-back tier recorded
  // an accounted loss on that exact path; divergence anywhere else still
  // fails. Leave false (the default) to prove the zero-loss invariant.
  bool tolerate_wb_loss = false;
};

struct ReplayResult {
  bool ok = true;
  std::size_t failed_op = 0;  // index into the trace (== trace size for the
                              // final sweep)
  std::string detail;         // human-readable mismatch description
  std::uint64_t reads_checked = 0;
  std::uint64_t bytes_checked = 0;
  // Post-run counter snapshots for accounting assertions.
  core::CmCacheStats cm;
  core::FaultStats cm_faults;
  mcclient::ClientStats cm_client;
  core::SmCacheStats sm;
  mcclient::ClientStats sm_client;
  // Grid-wide aggregates (server and pc sum over every brick / connection).
  gluster::GlusterServerStats server;
  gluster::ProtocolClientStats pc;
  gluster::ReplicateStats replicate;    // summed over replicate groups
  gluster::DistributeStats distribute;  // zero on single-group mounts
  gluster::HealReport heal;             // final heal_all sweep (grid mode)
  std::uint64_t replica_reads_checked = 0;  // per-replica byte checks
  // Write-back tier aggregates (all clients; zero when write-back is off).
  core::WritebackStats wb;
  std::vector<core::WbLostExtent> wb_lost;  // accounted losses, per path
  std::uint64_t wb_tolerated_divergences = 0;  // files excused by a loss
};

// Deterministic payload for a write op: `n` bytes drawn from `payload_seed`.
Buffer payload_bytes(std::uint64_t payload_seed, std::uint64_t n);

// Draw `n_ops` ops from `seed`.
std::vector<Op> generate_ops(std::uint64_t seed, std::size_t n_ops);

// Replay `trace` on a fresh testbed under `cfg`. Deterministic: same trace +
// same config => same result, bit for bit.
ReplayResult replay(const std::vector<Op>& trace, const ReplayConfig& cfg);

// generate + replay; on failure, shrink the trace (bounded replay budget)
// and print `seed`, the failing op and the minimized trace to stderr.
ReplayResult run_seeded(std::uint64_t seed, std::size_t n_ops,
                        const ReplayConfig& cfg);

std::string format_op(const Op& op);
std::string format_trace(const std::vector<Op>& trace);

}  // namespace imca::harness
