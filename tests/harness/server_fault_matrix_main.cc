// Server-fault-matrix driver: the invariant harness run against the five
// brick-failure plans the acceptance criteria name — no-fault,
// crash-during-write, crash-during-flush, slow-server and crash-both-tiers
// — for one seed (--seed=N).
//
// Exit 0 iff every plan replays with zero oracle mismatches AND:
//   * no mutation was ever applied twice (server duplicate_applies == 0 —
//     the exactly-once contract of the (client_id, op_seq) replay window);
//   * no op overran its deadline by more than one backoff step
//     (max_op_elapsed <= op_deadline + backoff_cap);
//   * the crash plans actually crashed and restarted the brick and forced
//     client retries (no vacuous passes);
//   * the slow plan forced attempt timeouts;
//   * across the whole matrix at least one replayed mutation was answered
//     from the replay window (the dedup machinery demonstrably ran).
//
// The crash-during-flush plan runs the brick with write-behind in
// flush_before_ack mode: every acked byte is on the child before the ack,
// so the harness oracle ("acked mutations survive any crash schedule") is
// provable. The unsafe mode's loss is measured by a unit test instead
// (server_fault_test.cc), where "acked" and "lost" can be told apart.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/units.h"
#include "harness/workload_harness.h"
#include "sim/event_loop.h"

namespace {

using imca::kMilli;

struct PlanCase {
  const char* name;
  imca::net::FaultPlan plan;
  bool server_write_behind = false;
  bool expect_crash = false;    // crashes>=1, restarts>=1, client retried
  bool expect_timeouts = false; // attempt timeouts observed
  imca::SimDuration op_deadline = 0;  // per-case override (0 = base config)
};

imca::harness::ReplayConfig base_config(std::uint64_t seed) {
  imca::harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.smcache = true;
  // MCD-tier failover, as in the MCD fault matrix.
  cfg.imca.mcd_op_timeout = 2 * kMilli;
  cfg.imca.mcd_retry_dead_interval = 10 * kMilli;
  // File-server-tier failover: deadline + retry + replay. A cold disk
  // access costs ~12 ms in this model, so the attempt timeout sits above
  // one access and the deadline above a worst-case burst of them.
  cfg.client.protocol.op_deadline = 400 * kMilli;
  cfg.client.protocol.attempt_timeout = 40 * kMilli;
  cfg.client.protocol.backoff_base = 1 * kMilli;
  cfg.client.protocol.backoff_cap = 8 * kMilli;
  cfg.client.protocol.eject_after = 3;
  cfg.client.protocol.probe_interval = 5 * kMilli;
  cfg.faults.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--legacy-queue") == 0) {
      // Determinism oracle hook: run the whole matrix on the legacy
      // priority-queue EventLoop. tests/cmake/compare_queue_impls.cmake
      // diffs this output byte-for-byte against the timer-wheel default.
      imca::sim::set_legacy_event_queue(true);
    } else if (std::strncmp(argv[i], "--shake=", 8) == 0) {
      // Schedule-shake validator hook (DESIGN.md Â§5k): deterministically
      // permute equal-timestamp resume order for every EventLoop this
      // matrix builds. 0 is bit-for-bit the plain FIFO run (pinned by the
      // *_shake_zero_diff ctests); non-zero seeds are the interleaving
      // search the imca_shake_matrix suite sweeps.
      imca::sim::set_default_tie_shake(
          std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--legacy-queue] [--shake=N]\n",
                   argv[0]);
      return 2;
    }
  }

  constexpr std::size_t kOps = 120;

  PlanCase cases[5];
  cases[0].name = "no-fault";

  // The brick dies mid-workload and comes back 25 ms later; clients must
  // ride it out on retries + the replay window.
  cases[1].name = "crash-during-write";
  cases[1].plan.server_crashes.push_back({5 * kMilli, {30 * kMilli}});
  cases[1].plan.server_crashes.push_back({80 * kMilli, {105 * kMilli}});
  cases[1].expect_crash = true;

  // Same crash schedule, but the brick buffers writes in write-behind
  // (flush_before_ack mode): the crash lands on the flush machinery too.
  cases[2].name = "crash-during-flush";
  cases[2].plan.server_crashes.push_back({5 * kMilli, {30 * kMilli}});
  cases[2].plan.server_crashes.push_back({80 * kMilli, {105 * kMilli}});
  cases[2].server_write_behind = true;
  cases[2].expect_crash = true;

  // A third of the brick's replies crawl in after the attempt timeout:
  // every such fop was APPLIED but looks failed — the replay window's home
  // turf. The deadline is widened so an unlucky all-slow streak (p^k per
  // op) cannot exhaust it on any fixed seed.
  cases[3].name = "slow-server";
  cases[3].plan.server_spec.slow_reply = 0.35;
  cases[3].plan.server_spec.slow_delay = 60 * kMilli;
  cases[3].expect_timeouts = true;
  cases[3].op_deadline = 800 * kMilli;

  // Both tiers fail at once: MCDs crash while the brick crashes.
  cases[4].name = "crash-both-tiers";
  cases[4].plan.server_crashes.push_back({5 * kMilli, {30 * kMilli}});
  cases[4].plan.crashes.push_back({0, 4 * kMilli, {40 * kMilli}});
  cases[4].plan.crashes.push_back({2, 6 * kMilli, std::nullopt});
  cases[4].expect_crash = true;

  int failures = 0;
  unsigned long long total_deduped = 0;
  for (auto& c : cases) {
    imca::harness::ReplayConfig cfg = base_config(seed);
    cfg.faults.spec = c.plan.spec;
    cfg.faults.crashes = c.plan.crashes;
    cfg.faults.server_spec = c.plan.server_spec;
    cfg.faults.server_crashes = c.plan.server_crashes;
    if (c.server_write_behind) {
      cfg.server.write_behind = true;
      cfg.server.wb.flush_before_ack = true;
      cfg.server.wb.flush_deadline = 1 * kMilli;
    }
    if (c.op_deadline > 0) cfg.client.protocol.op_deadline = c.op_deadline;

    const auto res = imca::harness::run_seeded(seed, kOps, cfg);
    total_deduped += res.server.replays_deduped;

    bool ok = res.ok;
    std::string why = res.detail;
    if (ok && res.server.duplicate_applies != 0) {
      ok = false;
      why = "duplicate_applies = " +
            std::to_string(res.server.duplicate_applies) +
            " (a replayed mutation ran through the stack twice)";
    }
    const imca::SimDuration bound =
        cfg.client.protocol.op_deadline + cfg.client.protocol.backoff_cap;
    if (ok && res.pc.max_op_elapsed > bound) {
      ok = false;
      why = "max_op_elapsed " + std::to_string(res.pc.max_op_elapsed) +
            " ns exceeds op_deadline + one backoff step (" +
            std::to_string(bound) + " ns)";
    }
    if (ok && c.expect_crash) {
      if (res.server.crashes == 0 || res.server.restarts == 0) {
        ok = false;
        why = "plan expected the brick to crash and restart";
      } else if (res.pc.retries == 0) {
        ok = false;
        why = "brick crashed but the client never retried (vacuous pass)";
      }
    }
    if (ok && c.expect_timeouts && res.pc.timeouts == 0) {
      ok = false;
      why = "slow plan produced no attempt timeouts (vacuous pass)";
    }

    std::printf(
        "%-20s seed=%llu %s  reads_checked=%llu bytes=%llu crashes=%llu "
        "restarts=%llu retries=%llu replays=%llu deduped=%llu dup_applies=%llu "
        "timeouts=%llu sheds=%llu brownout=%llu max_op_ms=%.2f\n",
        c.name, static_cast<unsigned long long>(seed), ok ? "PASS" : "FAIL",
        static_cast<unsigned long long>(res.reads_checked),
        static_cast<unsigned long long>(res.bytes_checked),
        static_cast<unsigned long long>(res.server.crashes),
        static_cast<unsigned long long>(res.server.restarts),
        static_cast<unsigned long long>(res.pc.retries),
        static_cast<unsigned long long>(res.pc.replays),
        static_cast<unsigned long long>(res.server.replays_deduped),
        static_cast<unsigned long long>(res.server.duplicate_applies),
        static_cast<unsigned long long>(res.pc.timeouts),
        static_cast<unsigned long long>(res.server.sheds_admission +
                                        res.server.sheds_expired +
                                        res.server.sheds_io),
        static_cast<unsigned long long>(res.cm_faults.brownout_serves),
        static_cast<double>(res.pc.max_op_elapsed) / kMilli);
    if (!ok) {
      std::fprintf(stderr, "  %s: %s\n", c.name, why.c_str());
      ++failures;
    }
  }

  if (failures == 0 && total_deduped == 0) {
    std::fprintf(stderr,
                 "matrix-wide: no replayed mutation was ever answered from "
                 "the replay window — the dedup machinery never ran\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
