// Seeded-shrink support for the randomized harnesses: given a failing op
// trace and a predicate that replays a candidate trace, find a (locally)
// minimal failing subsequence.
//
// This is ddmin-lite: repeatedly try deleting chunks of the trace, halving
// the chunk size whenever a full pass removes nothing. It requires only that
// the predicate accept *any* subsequence of the original trace — which the
// workload harness guarantees by interpreting every op against the state the
// previous ops actually produced (an op that no longer applies becomes a
// no-op instead of an error).
#pragma once

#include <cstddef>
#include <vector>

namespace imca::harness {

// Returns a subsequence of `trace` on which `still_fails` returns true, no
// longer than the input (and usually far shorter). `still_fails(trace)` is
// assumed true on entry. `max_rounds` bounds the halving passes; the caller
// typically also bounds total replays inside the predicate.
template <typename T, typename Pred>
std::vector<T> shrink_trace(std::vector<T> trace, Pred&& still_fails,
                            std::size_t max_rounds = 8) {
  std::size_t chunk = trace.size() / 2;
  for (std::size_t round = 0; round < max_rounds && chunk > 0; ++round) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < trace.size()) {
      const std::size_t end = std::min(trace.size(), start + chunk);
      std::vector<T> candidate;
      candidate.reserve(trace.size() - (end - start));
      candidate.insert(candidate.end(), trace.begin(),
                       trace.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       trace.begin() + static_cast<std::ptrdiff_t>(end),
                       trace.end());
      if (!candidate.empty() && still_fails(candidate)) {
        trace = std::move(candidate);
        removed_any = true;
        // Same `start` now points at the next chunk of the shrunk trace.
      } else {
        start = end;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return trace;
}

}  // namespace imca::harness
