// Fault-matrix driver: the invariant harness run against the four fault
// plans the acceptance criteria name — no-fault, crash-one-MCD,
// crash-all-MCDs and flaky-50%-timeouts — for one seed (--seed=N).
//
// Exit 0 iff every plan replays with zero oracle mismatches AND the
// crash-all plan demonstrably degraded reads to the server path (proving
// the workload actually exercised the failure machinery rather than
// passing vacuously). Built both plain and under -DIMCA_SANITIZE to make
// the coroutine-heavy failover paths ASan/UBSan-clean.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/units.h"
#include "harness/workload_harness.h"
#include "sim/event_loop.h"

namespace {

using imca::kMilli;

struct PlanCase {
  const char* name;
  imca::net::FaultPlan plan;
  bool expect_degraded = false;
};

imca::harness::ReplayConfig base_config(std::uint64_t seed) {
  imca::harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.smcache = true;
  // Arm the failover machinery: per-op deadlines, retries, ejection and
  // periodic probe/rejoin. Without these the client would ride out every
  // black-holed call on the transport's 200 ms give-up.
  cfg.imca.mcd_op_timeout = 2 * kMilli;
  cfg.imca.mcd_retry_dead_interval = 10 * kMilli;
  cfg.faults.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--legacy-queue") == 0) {
      // Determinism oracle hook: run the whole matrix on the legacy
      // priority-queue EventLoop. tests/cmake/compare_queue_impls.cmake
      // diffs this output byte-for-byte against the timer-wheel default.
      imca::sim::set_legacy_event_queue(true);
    } else if (std::strncmp(argv[i], "--shake=", 8) == 0) {
      // Schedule-shake validator hook (DESIGN.md Â§5k): deterministically
      // permute equal-timestamp resume order for every EventLoop this
      // matrix builds. 0 is bit-for-bit the plain FIFO run (pinned by the
      // *_shake_zero_diff ctests); non-zero seeds are the interleaving
      // search the imca_shake_matrix suite sweeps.
      imca::sim::set_default_tie_shake(
          std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--legacy-queue] [--shake=N]\n",
                   argv[0]);
      return 2;
    }
  }

  constexpr std::size_t kOps = 160;

  PlanCase cases[4];
  cases[0].name = "no-fault";

  cases[1].name = "crash-one-mcd";
  cases[1].plan.crashes.push_back({0, 2 * kMilli, 20 * kMilli});

  cases[2].name = "crash-all-mcds";
  cases[2].plan.crashes.push_back({0, 2 * kMilli, std::nullopt});
  cases[2].plan.crashes.push_back({1, 2 * kMilli + kMilli / 2, std::nullopt});
  cases[2].plan.crashes.push_back({2, 3 * kMilli, std::nullopt});
  cases[2].expect_degraded = true;

  cases[3].name = "flaky-50pct-timeouts";
  cases[3].plan.spec.drop_reply = 0.5;

  int failures = 0;
  for (auto& c : cases) {
    imca::harness::ReplayConfig cfg = base_config(seed);
    cfg.faults.spec = c.plan.spec;
    cfg.faults.crashes = c.plan.crashes;

    const auto res = imca::harness::run_seeded(seed, kOps, cfg);
    bool ok = res.ok;
    std::string why = res.detail;
    if (ok && c.expect_degraded && res.cm_faults.degraded_reads == 0) {
      ok = false;
      why = "expected degraded_reads > 0 (plan should have forced the "
            "server path)";
    }
    std::printf(
        "%-22s seed=%llu %s  reads_checked=%llu bytes=%llu "
        "degraded_reads=%llu repairs_dropped=%llu timeouts=%llu "
        "ejections=%llu rejoins=%llu\n",
        c.name, static_cast<unsigned long long>(seed), ok ? "PASS" : "FAIL",
        static_cast<unsigned long long>(res.reads_checked),
        static_cast<unsigned long long>(res.bytes_checked),
        static_cast<unsigned long long>(res.cm_faults.degraded_reads),
        static_cast<unsigned long long>(res.cm_faults.repairs_dropped),
        static_cast<unsigned long long>(res.cm_client.timeouts +
                                        res.sm_client.timeouts),
        static_cast<unsigned long long>(res.cm_client.ejections +
                                        res.sm_client.ejections),
        static_cast<unsigned long long>(res.cm_client.rejoins +
                                        res.sm_client.rejoins));
    if (!ok) {
      std::fprintf(stderr, "  %s: %s\n", c.name, why.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
