// Brick-fault-matrix driver: the invariant harness run against a 2x3 brick
// grid (two distribute groups of three AFR replicas) under the five
// kill-any-brick plans the acceptance criteria name — no-fault,
// crash-one-replica, crash-quorum-minority, crash-during-heal and
// rolling-restart — for one seed (--seed=N).
//
// Exit 0 iff every plan replays with zero oracle mismatches AND:
//   * no mutation was ever applied twice on any brick (grid-wide
//     duplicate_applies == 0 — the exactly-once replay window holds per
//     brick);
//   * no mutation ever failed quorum (quorum_short_writes == 0): every
//     crash plan keeps a majority of each replica group alive, so a write
//     that fails quorum would mean the client gave up on a reachable
//     majority;
//   * after the final heal sweep every replica of every live file is
//     byte-identical to the oracle and deleted files are gone from every
//     replica (the harness's grid-mode epilogue, run inside replay());
//   * the crash plans actually crashed and restarted bricks and forced
//     client retries, and the heal plans actually healed something (no
//     vacuous passes);
//   * across the whole matrix self-heal demonstrably ran
//     (heals_completed > 0) and read-child failover demonstrably ran
//     (read_child_switches >= 1).
//
// Bricks run with write-behind off (the seed default): an acked byte is on
// the brick's ObjectStore before the ack, so "quorum-acked mutations survive
// any minority crash schedule" is provable byte-for-byte.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/units.h"
#include "harness/workload_harness.h"
#include "sim/event_loop.h"

namespace {

using imca::kMilli;

struct PlanCase {
  const char* name;
  imca::net::FaultPlan plan;
  bool expect_crash = false;  // crashes>=1, restarts>=1, client retried
  bool expect_heals = false;  // heals_completed >= 1 after the run
};

imca::harness::ReplayConfig base_config(std::uint64_t seed) {
  imca::harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.smcache = true;
  cfg.n_bricks = 2;    // distribute groups
  cfg.n_replicas = 3;  // AFR replicas per group: quorum = 2
  cfg.imca.mcd_op_timeout = 2 * kMilli;
  cfg.imca.mcd_retry_dead_interval = 10 * kMilli;
  // Unlike the single-brick server matrix (which must ride out every crash
  // window on retries alone, so it runs a 400 ms deadline), a replicated
  // mount is SUPPOSED to give up on a dead minority quickly and commit on
  // the survivors. The deadline is deliberately shorter than every crash
  // window below: the leg to the dead brick fails, the write commits 2/3,
  // the dirty copy is what self-heal exists for. A cold disk access costs
  // ~12 ms, so the attempt timeout stays above one access.
  cfg.client.protocol.op_deadline = 60 * kMilli;
  cfg.client.protocol.attempt_timeout = 20 * kMilli;
  cfg.client.protocol.backoff_base = 1 * kMilli;
  cfg.client.protocol.backoff_cap = 4 * kMilli;
  cfg.client.protocol.eject_after = 3;
  cfg.client.protocol.probe_interval = 5 * kMilli;
  cfg.faults.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--legacy-queue") == 0) {
      // Determinism oracle hook: tests/cmake/compare_queue_impls.cmake
      // diffs this output byte-for-byte against the timer-wheel default.
      imca::sim::set_legacy_event_queue(true);
    } else if (std::strncmp(argv[i], "--shake=", 8) == 0) {
      // Schedule-shake validator hook (DESIGN.md Â§5k): deterministically
      // permute equal-timestamp resume order for every EventLoop this
      // matrix builds. 0 is bit-for-bit the plain FIFO run (pinned by the
      // *_shake_zero_diff ctests); non-zero seeds are the interleaving
      // search the imca_shake_matrix suite sweeps.
      imca::sim::set_default_tie_shake(
          std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--legacy-queue] [--shake=N]\n",
                   argv[0]);
      return 2;
    }
  }

  constexpr std::size_t kOps = 120;
  // Grid layout is row-major: group g, replica r is brick g*3 + r.

  PlanCase cases[5];
  cases[0].name = "no-fault";

  // One replica of group 0 dies twice mid-workload; its two siblings keep
  // quorum, and each window (longer than op_deadline) leaves dirt for
  // self-heal to copy back.
  cases[1].name = "crash-one-replica";
  cases[1].plan.server_crashes.push_back({5 * kMilli, {75 * kMilli}, 1});
  cases[1].plan.server_crashes.push_back({120 * kMilli, {190 * kMilli}, 1});
  cases[1].expect_crash = true;
  cases[1].expect_heals = true;

  // A quorum minority dies in EVERY group at once (one of three replicas
  // each). Both groups stay writable throughout.
  cases[2].name = "crash-quorum-minority";
  cases[2].plan.server_crashes.push_back({5 * kMilli, {75 * kMilli}, 1});
  cases[2].plan.server_crashes.push_back({5 * kMilli, {75 * kMilli}, 4});
  cases[2].expect_crash = true;
  cases[2].expect_heals = true;

  // Brick 0 dies and rejoins; while its heal is (potentially) in flight,
  // brick 1 of the same group dies too. Heal sources must fail over and the
  // epoch check must discard copies that a concurrent write raced past.
  cases[3].name = "crash-during-heal";
  cases[3].plan.server_crashes.push_back({5 * kMilli, {75 * kMilli}, 0});
  cases[3].plan.server_crashes.push_back({90 * kMilli, {160 * kMilli}, 1});
  cases[3].expect_crash = true;
  cases[3].expect_heals = true;

  // Every brick in the grid restarts once, staggered so no two windows
  // overlap: at every instant each group has at most one replica down.
  cases[4].name = "rolling-restart";
  for (std::size_t b = 0; b < 6; ++b) {
    const imca::SimTime at = (5 + 75 * b) * kMilli;
    cases[4].plan.server_crashes.push_back({at, {at + 70 * kMilli}, b});
  }
  cases[4].expect_crash = true;
  cases[4].expect_heals = true;

  int failures = 0;
  unsigned long long total_heals = 0;
  unsigned long long total_switches = 0;
  for (auto& c : cases) {
    imca::harness::ReplayConfig cfg = base_config(seed);
    cfg.faults.server_crashes = c.plan.server_crashes;

    const auto res = imca::harness::run_seeded(seed, kOps, cfg);
    total_heals += res.replicate.heals_completed;
    total_switches += res.replicate.read_child_switches;

    bool ok = res.ok;
    std::string why = res.detail;
    if (ok && res.server.duplicate_applies != 0) {
      ok = false;
      why = "duplicate_applies = " +
            std::to_string(res.server.duplicate_applies) +
            " (a replayed mutation ran through some brick's stack twice)";
    }
    if (ok && res.replicate.quorum_short_writes != 0) {
      ok = false;
      why = "quorum_short_writes = " +
            std::to_string(res.replicate.quorum_short_writes) +
            " (a mutation failed quorum although a majority stayed up)";
    }
    if (ok && c.expect_crash) {
      if (res.server.crashes == 0 || res.server.restarts == 0) {
        ok = false;
        why = "plan expected bricks to crash and restart";
      } else if (res.pc.retries == 0 && res.pc.fast_fails == 0) {
        ok = false;
        why = "bricks crashed but no client connection ever noticed "
              "(vacuous pass)";
      }
    }
    if (ok && c.expect_heals && res.replicate.heals_completed == 0) {
      ok = false;
      why = "crash plan left nothing for self-heal (vacuous pass)";
    }

    std::printf(
        "%-22s seed=%llu %s  reads_checked=%llu replica_reads=%llu "
        "bytes=%llu crashes=%llu restarts=%llu retries=%llu "
        "short_writes=%llu partial_acks=%llu heals=%llu heal_bytes=%llu "
        "switches=%llu degraded=%llu deduped=%llu dup_applies=%llu\n",
        c.name, static_cast<unsigned long long>(seed), ok ? "PASS" : "FAIL",
        static_cast<unsigned long long>(res.reads_checked),
        static_cast<unsigned long long>(res.replica_reads_checked),
        static_cast<unsigned long long>(res.bytes_checked),
        static_cast<unsigned long long>(res.server.crashes),
        static_cast<unsigned long long>(res.server.restarts),
        static_cast<unsigned long long>(res.pc.retries),
        static_cast<unsigned long long>(res.replicate.quorum_short_writes),
        static_cast<unsigned long long>(res.replicate.partial_acks),
        static_cast<unsigned long long>(res.replicate.heals_completed),
        static_cast<unsigned long long>(res.replicate.heal_bytes_copied),
        static_cast<unsigned long long>(res.replicate.read_child_switches),
        static_cast<unsigned long long>(res.replicate.reads_degraded),
        static_cast<unsigned long long>(res.server.replays_deduped),
        static_cast<unsigned long long>(res.server.duplicate_applies));
    if (!ok) {
      std::fprintf(stderr, "  %s: %s\n", c.name, why.c_str());
      ++failures;
    }
  }

  if (failures == 0 && total_heals == 0) {
    std::fprintf(stderr,
                 "matrix-wide: self-heal never completed a single "
                 "(child, path) pair — the heal machinery never ran\n");
    ++failures;
  }
  if (failures == 0 && total_switches == 0) {
    std::fprintf(stderr,
                 "matrix-wide: the read child never switched — read "
                 "failover never ran\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
