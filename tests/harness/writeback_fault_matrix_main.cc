// Write-back fault-matrix driver (DESIGN.md §5j): the invariant harness run
// in durable write-back mode against four fault plans for one seed
// (--seed=N) — no-fault, crash-one-MCD-mid-flush, simultaneous MCD + brick
// crash mid-flush, and dirty-quorum-loss (every daemon holding a dirty
// extent dies before the flush).
//
// Exit 0 iff every plan replays with zero UNACCOUNTED oracle mismatches AND:
//   * no mutation was ever applied twice (server duplicate_applies == 0 —
//     flushes travel the ordinary stack, so the (client_id, op_seq) replay
//     window covers them like any write);
//   * the zero-loss plans lose nothing: while >= 1 dirty replica survives,
//     every acked byte reaches the brick (lost_extents == 0);
//   * the loss plan loses something, and ACCOUNTS it: lost_extents > 0 with
//     matching ledger entries, degraded writes counted while the quorum was
//     down — never a silent divergence;
//   * writes were demonstrably absorbed and flushed in every plan, and
//     reads demonstrably crossed the dirty overlay (no vacuous passes);
//   * the crash plans actually disturbed the write-back tier (failed
//     replica stores, degraded writes or rollbacks observed).
//
// The dirty-quorum-loss plan runs 2 daemons with K = 2 and crashes BOTH
// mid-workload: every extent dirty at that instant loses all replicas. The
// harness tolerates divergence on exactly the paths the loss ledger names
// (tolerate_wb_loss) — divergence anywhere else still fails the run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/units.h"
#include "harness/workload_harness.h"
#include "sim/event_loop.h"

namespace {

using imca::kMilli;

struct PlanCase {
  const char* name;
  imca::net::FaultPlan plan;
  std::size_t n_mcds = 3;
  bool tolerate_loss = false;   // loss plan: per-op + sweep checks consult
                                // the loss ledger (and verify_every_op off —
                                // whole-tree sweeps would thrash the drain)
  bool expect_loss = false;     // lost_extents > 0, ledger non-empty
  bool expect_disturbed = false;  // replica_drops + degraded + rollbacks > 0
  bool expect_server_crash = false;  // brick crashed, restarted, was retried
  imca::SimDuration flush_delay = 0;  // wb_flush_delay override
};

// Hand-built trace for the dirty-quorum-loss plan. Generated traces drain
// almost every extent within microseconds (barrier ops are frequent and
// brick writes are cheap), so no fixed crash instant reliably catches dirty
// state across seeds. This trace pins the timeline instead: f0/f1/f2 go
// dirty at t ~ 0 and see NO barrier, while write+close+read rounds on f3
// advance the clock ~12 ms per round (each read is a cold brick read —
// SMCache is off and every write invalidates the read cache), carrying the
// run far past the crash instant with the three files provably dirty.
std::vector<imca::harness::Op> loss_trace(std::uint64_t seed) {
  using imca::harness::Op;
  std::vector<Op> t;
  const auto push = [&t, seed](Op::Kind kind, std::uint32_t file,
                               std::uint64_t offset, std::uint64_t length) {
    Op op;
    op.kind = kind;
    op.file = file;
    op.offset = offset;
    op.length = length;
    op.payload_seed = seed * 1000003 + t.size();
    t.push_back(op);
  };
  push(Op::Kind::kWrite, 0, 0, 8192);
  push(Op::Kind::kWrite, 1, 0, 8192);
  push(Op::Kind::kWrite, 2, 0, 4096);
  push(Op::Kind::kRead, 0, 0, 8192);  // read-your-writes through the overlay
  for (std::uint64_t i = 0; i < 14; ++i) {  // ~14 x 12 ms of clock
    push(Op::Kind::kWrite, 3, i * 4096, 4096);
    push(Op::Kind::kClose, 3, 0, 0);  // barrier: flushes f3 only
    push(Op::Kind::kRead, 3, i * 4096, 4096);
  }
  // Past the daemon restarts: absorption resumes, and the reads hit the
  // engineered divergence (tolerated iff the ledger names the path).
  push(Op::Kind::kWrite, 0, 0, 4096);
  push(Op::Kind::kRead, 1, 0, 8192);
  push(Op::Kind::kRead, 0, 0, 4096);
  return t;
}

imca::harness::ReplayConfig base_config(std::uint64_t seed) {
  imca::harness::ReplayConfig cfg;
  cfg.n_mcds = 3;
  cfg.smcache = true;
  // Durable write-back: K = 2 dirty replicas, ack at 2 (the default closes
  // the K > K_dirty index-visibility window; see writeback.h).
  cfg.imca.writeback = true;
  cfg.imca.wb_replicas = 2;
  cfg.imca.wb_quorum = 2;
  // MCD-tier failover, as in the MCD fault matrix.
  cfg.imca.mcd_op_timeout = 2 * kMilli;
  cfg.imca.mcd_retry_dead_interval = 10 * kMilli;
  // File-server-tier failover: deadline + retry + replay. A cold disk
  // access costs ~12 ms in this model, so the attempt timeout sits above
  // one access and the deadline above a worst-case burst of them.
  cfg.client.protocol.op_deadline = 400 * kMilli;
  cfg.client.protocol.attempt_timeout = 40 * kMilli;
  cfg.client.protocol.backoff_base = 1 * kMilli;
  cfg.client.protocol.backoff_cap = 8 * kMilli;
  cfg.client.protocol.eject_after = 3;
  cfg.client.protocol.probe_interval = 5 * kMilli;
  cfg.faults.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--legacy-queue") == 0) {
      // Determinism oracle hook: run the whole matrix on the legacy
      // priority-queue EventLoop. tests/cmake/compare_queue_impls.cmake
      // diffs this output byte-for-byte against the timer-wheel default.
      imca::sim::set_legacy_event_queue(true);
    } else if (std::strncmp(argv[i], "--shake=", 8) == 0) {
      // Schedule-shake validator hook (DESIGN.md Â§5k): deterministically
      // permute equal-timestamp resume order for every EventLoop this
      // matrix builds. 0 is bit-for-bit the plain FIFO run (pinned by the
      // *_shake_zero_diff ctests); non-zero seeds are the interleaving
      // search the imca_shake_matrix suite sweeps.
      imca::sim::set_default_tie_shake(
          std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--legacy-queue] [--shake=N]\n",
                   argv[0]);
      return 2;
    }
  }

  constexpr std::size_t kOps = 120;

  PlanCase cases[4];
  // Healthy baseline: every write absorbs, every extent flushes, nothing
  // degrades and nothing is lost.
  cases[0].name = "no-fault-writeback";

  // One daemon of the K = 2 replica pairs dies at a time (windows far
  // enough apart that the flusher drains between them): every dirty extent
  // keeps >= 1 replica, so the zero-loss invariant must hold exactly.
  cases[1].name = "crash-one-mcd-mid-flush";
  cases[1].plan.crashes.push_back({0, 5 * kMilli, {25 * kMilli}});
  cases[1].plan.crashes.push_back({1, 80 * kMilli, {100 * kMilli}});
  cases[1].expect_disturbed = true;

  // Both tiers at once: the brick dies while an MCD holding dirty replicas
  // dies, flushes in flight on both sides. Still >= 1 dirty replica at
  // every instant, so still zero loss.
  cases[2].name = "crash-mcd-and-brick-mid-flush";
  cases[2].plan.server_crashes.push_back({5 * kMilli, {30 * kMilli}});
  cases[2].plan.server_crashes.push_back({80 * kMilli, {105 * kMilli}});
  cases[2].plan.crashes.push_back({0, 4 * kMilli, {40 * kMilli}});
  cases[2].plan.crashes.push_back({2, 85 * kMilli, {110 * kMilli}});
  cases[2].expect_disturbed = true;
  cases[2].expect_server_crash = true;

  // Dirty-quorum loss: 2 daemons, K = 2, a coalescing window longer than
  // the run (only barriers drain), and the loss_trace() timeline above —
  // f0/f1/f2 dirty from t ~ 0 with no barrier, the clock carried forward
  // by cold reads. BOTH daemons crash at 50/51 ms: every dirty extent
  // loses all its replicas. The bytes are gone by design; the contract is
  // that the loss is COUNTED and the ledger names each path, and that
  // writes during the daemon outage degrade to write-through (accounted),
  // never silently vanish.
  cases[3].name = "dirty-quorum-loss";
  cases[3].n_mcds = 2;
  cases[3].flush_delay = 10000 * kMilli;
  cases[3].plan.crashes.push_back({0, 50 * kMilli, {120 * kMilli}});
  cases[3].plan.crashes.push_back({1, 51 * kMilli, {121 * kMilli}});
  cases[3].tolerate_loss = true;
  cases[3].expect_loss = true;
  cases[3].expect_disturbed = true;

  int failures = 0;
  unsigned long long total_overlay_reads = 0;
  for (auto& c : cases) {
    imca::harness::ReplayConfig cfg = base_config(seed);
    cfg.n_mcds = c.n_mcds;
    cfg.faults.spec = c.plan.spec;
    cfg.faults.crashes = c.plan.crashes;
    cfg.faults.server_spec = c.plan.server_spec;
    cfg.faults.server_crashes = c.plan.server_crashes;
    if (c.flush_delay > 0) cfg.imca.wb_flush_delay = c.flush_delay;
    if (c.tolerate_loss) {
      cfg.tolerate_wb_loss = true;
      cfg.verify_every_op = false;
      // loss_trace() paces itself with cold brick reads; SMCache would
      // pre-warm the bank on every flush and erase that clock.
      cfg.smcache = false;
    }

    const auto res = c.tolerate_loss
                         ? imca::harness::replay(loss_trace(seed), cfg)
                         : imca::harness::run_seeded(seed, kOps, cfg);
    total_overlay_reads += res.wb.overlay_reads;

    bool ok = res.ok;
    std::string why = res.detail;
    if (ok && res.server.duplicate_applies != 0) {
      ok = false;
      why = "duplicate_applies = " +
            std::to_string(res.server.duplicate_applies) +
            " (a flushed extent ran through the stack twice)";
    }
    if (ok && res.wb.absorbed == 0) {
      ok = false;
      why = "no write was ever absorbed (vacuous pass)";
    }
    if (ok && res.wb.flushed_extents == 0) {
      ok = false;
      why = "no dirty extent ever reached the brick (vacuous pass)";
    }
    if (ok && !c.expect_loss &&
        (res.wb.lost_extents != 0 || !res.wb_lost.empty())) {
      ok = false;
      why = "lost " + std::to_string(res.wb.lost_extents) +
            " extents with >= 1 dirty replica alive at every instant";
    }
    if (ok && c.expect_loss) {
      if (res.wb.lost_extents == 0 || res.wb.lost_bytes == 0) {
        ok = false;
        why = "quorum-loss plan lost nothing (vacuous pass)";
      } else if (res.wb_lost.empty()) {
        // (The ledger can hold FEWER entries than lost_extents: a rename
        // that replaces a lossy target prunes entries no reader can
        // observe any more. Empty with losses counted is the bug.)
        ok = false;
        why = "losses counted but the ledger names no path";
      } else if (res.wb.degraded_writes == 0) {
        ok = false;
        why = "no write degraded while the dirty quorum was down";
      }
    }
    if (ok && c.expect_disturbed &&
        res.wb.replica_drops + res.wb.degraded_writes + res.wb.rollbacks ==
            0) {
      ok = false;
      why = "crash plan never disturbed the write-back tier (vacuous pass)";
    }
    if (ok && c.expect_server_crash) {
      if (res.server.crashes == 0 || res.server.restarts == 0) {
        ok = false;
        why = "plan expected the brick to crash and restart";
      } else if (res.pc.retries == 0) {
        ok = false;
        why = "brick crashed but the client never retried (vacuous pass)";
      }
    }

    std::printf(
        "%-28s seed=%llu %s  absorbed=%llu flushed=%llu lost=%llu "
        "degraded=%llu drops=%llu rollbacks=%llu requeues=%llu retries=%llu "
        "overlay_reads=%llu tolerated=%llu dup_applies=%llu\n",
        c.name, static_cast<unsigned long long>(seed), ok ? "PASS" : "FAIL",
        static_cast<unsigned long long>(res.wb.absorbed),
        static_cast<unsigned long long>(res.wb.flushed_extents),
        static_cast<unsigned long long>(res.wb.lost_extents),
        static_cast<unsigned long long>(res.wb.degraded_writes),
        static_cast<unsigned long long>(res.wb.replica_drops),
        static_cast<unsigned long long>(res.wb.rollbacks),
        static_cast<unsigned long long>(res.wb.flush_requeues),
        static_cast<unsigned long long>(res.wb.flush_retries),
        static_cast<unsigned long long>(res.wb.overlay_reads),
        static_cast<unsigned long long>(res.wb_tolerated_divergences),
        static_cast<unsigned long long>(res.server.duplicate_applies));
    if (!ok) {
      std::fprintf(stderr, "  %s: %s\n", c.name, why.c_str());
      ++failures;
    }
  }

  if (failures == 0 && total_overlay_reads == 0) {
    std::fprintf(stderr,
                 "matrix-wide: no read ever crossed the dirty overlay — "
                 "read-your-writes never ran\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
