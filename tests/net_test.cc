// Unit tests for the network model: transport presets, fabric transfers,
// contention at a shared receiver, and the RPC layer including failures.
#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/rpc.h"
#include "net/transport.h"
#include "sim/sync.h"

namespace imca::net {
namespace {

using sim::EventLoop;
using sim::Task;

TEST(Transport, PresetsOrderedSensibly) {
  const auto rdma = ib_rdma();
  const auto ipoib = ipoib_rc();
  const auto eth = gige();
  // RDMA has the lowest latency and CPU cost; GigE the least bandwidth.
  EXPECT_LT(rdma.wire_latency, ipoib.wire_latency);
  EXPECT_LT(ipoib.wire_latency, eth.wire_latency);
  EXPECT_LT(rdma.send_cpu_per_msg, ipoib.send_cpu_per_msg);
  EXPECT_GT(ipoib.bandwidth_bps, eth.bandwidth_bps);
  EXPECT_GT(rdma.bandwidth_bps, ipoib.bandwidth_bps);
}

TEST(Transport, UncontendedTimeGrowsWithPayload) {
  const auto t = ipoib_rc();
  EXPECT_LT(t.uncontended_time(1), t.uncontended_time(1 * kMiB));
  // Small messages are latency-bound: 1B vs 64B barely differ.
  const auto t1 = t.uncontended_time(1);
  const auto t64 = t.uncontended_time(64);
  EXPECT_LT(static_cast<double>(t64 - t1), 0.05 * static_cast<double>(t1));
}

TEST(Fabric, TransferTakesUncontendedTime) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("a");
  fab.add_node("b");
  SimTime done = 0;
  loop.spawn([](Fabric& f, EventLoop& l, SimTime& out) -> Task<void> {
    co_await f.transfer(0, 1, 4096);
    out = l.now();
  }(fab, loop, done));
  loop.run();
  EXPECT_EQ(done, ipoib_rc().uncontended_time(4096));
  EXPECT_EQ(fab.messages_sent(), 1u);
  EXPECT_EQ(fab.bytes_sent(), 4096u);
}

TEST(Fabric, LoopbackIsCheap) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("a");
  SimTime done = 0;
  loop.spawn([](Fabric& f, EventLoop& l, SimTime& out) -> Task<void> {
    co_await f.transfer(0, 0, 1 * kMiB);
    out = l.now();
  }(fab, loop, done));
  loop.run();
  EXPECT_LT(done, ipoib_rc().uncontended_time(1 * kMiB) / 10);
}

TEST(Fabric, ManySendersQueueAtReceiverNic) {
  // N senders pushing a large message each to one receiver must take ~N times
  // the serialization time of one message (receiver rx NIC serializes).
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("server");
  for (int i = 0; i < 8; ++i) fab.add_node("client" + std::to_string(i));
  const std::uint64_t payload = 1 * kMiB;
  SimTime last_done = 0;
  for (NodeId c = 1; c <= 8; ++c) {
    loop.spawn([](Fabric& f, EventLoop& l, NodeId src, std::uint64_t bytes,
                  SimTime& out) -> Task<void> {
      co_await f.transfer(src, 0, bytes);
      out = std::max(out, l.now());
    }(fab, loop, c, payload, last_done));
  }
  loop.run();
  const SimDuration serialize =
      transfer_time(payload + ipoib_rc().header_bytes, ipoib_rc().bandwidth_bps);
  // All 8 serialize through the single rx NIC: total >= 8 * serialize.
  EXPECT_GE(last_done, 8 * serialize);
}

TEST(Fabric, SeparateReceiversDontContend) {
  // Same aggregate traffic, but spread over 4 receivers: finishes ~4x sooner.
  auto run = [](std::size_t receivers) {
    EventLoop loop;
    Fabric fab(loop, ipoib_rc());
    for (std::size_t r = 0; r < receivers; ++r)
      fab.add_node("recv" + std::to_string(r));
    for (int c = 0; c < 8; ++c) fab.add_node("client" + std::to_string(c));
    for (std::uint32_t i = 0; i < 8; ++i) {
      loop.spawn([](Fabric& f, NodeId src, NodeId dst) -> Task<void> {
        co_await f.transfer(src, dst, 1 * kMiB);
      }(fab, static_cast<NodeId>(receivers + i),
        static_cast<NodeId>(i % receivers)));
    }
    loop.run();
    return loop.now();
  };
  const SimTime one = run(1);
  const SimTime four = run(4);
  EXPECT_LT(static_cast<double>(four), 0.5 * static_cast<double>(one));
}

TEST(Fabric, TransferViaOverridesTransport) {
  // An RDMA side-channel on an IPoIB fabric: same nodes, different constants.
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("a");
  fab.add_node("b");
  SimDuration tcp_t = 0, rdma_t = 0;
  loop.spawn([](Fabric& f, EventLoop& l, SimDuration& tcp,
                SimDuration& rdma) -> Task<void> {
    SimTime t0 = l.now();
    co_await f.transfer(0, 1, 256);
    tcp = l.now() - t0;
    t0 = l.now();
    const auto verbs = ib_rdma();
    co_await f.transfer_via(verbs, 0, 1, 256);
    rdma = l.now() - t0;
  }(fab, loop, tcp_t, rdma_t));
  loop.run();
  EXPECT_EQ(tcp_t, ipoib_rc().uncontended_time(256));
  EXPECT_EQ(rdma_t, ib_rdma().uncontended_time(256));
  EXPECT_LT(rdma_t, tcp_t / 2);
}

// --- RPC ---

ByteBuf make_req(std::uint32_t x) {
  ByteBuf b;
  b.put_u32(x);
  return b;
}

TEST(Rpc, EchoRoundTrip) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("server");
  fab.add_node("client");
  RpcSystem rpc(fab);
  rpc.listen(0, kPortGluster, [](ByteBuf req, NodeId) -> Task<ByteBuf> {
    ByteBuf resp;
    resp.put_u32(req.get_u32().value() + 1);
    co_return resp;
  });
  std::uint32_t got = 0;
  loop.spawn([](RpcSystem& r, std::uint32_t& out) -> Task<void> {
    auto resp = co_await r.call(1, 0, kPortGluster, make_req(41));
    EXPECT_TRUE(resp.has_value());
    if (resp) out = resp->get_u32().value();
  }(rpc, got));
  loop.run();
  EXPECT_EQ(got, 42u);
  EXPECT_EQ(rpc.calls_made(), 1u);
}

TEST(Rpc, CallToDeadPortRefused) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("a");
  fab.add_node("b");
  RpcSystem rpc(fab);
  Errc err = Errc::kOk;
  SimTime when = 0;
  loop.spawn([](RpcSystem& r, EventLoop& l, Errc& e, SimTime& t) -> Task<void> {
    auto resp = co_await r.call(0, 1, kPortMemcached, ByteBuf{});
    e = resp.error();
    t = l.now();
  }(rpc, loop, err, when));
  loop.run();
  EXPECT_EQ(err, Errc::kConnRefused);
  EXPECT_EQ(when, 2 * ipoib_rc().wire_latency);  // SYN + RST round trip
}

TEST(Rpc, ShutdownMidFlightResets) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("server");
  fab.add_node("client");
  RpcSystem rpc(fab);
  rpc.listen(0, kPortMemcached,
             // Handler is stored in RpcSystem and outlives every frame.
             // NOLINTNEXTLINE(imca-coro-lambda): captures are test locals.
             [&rpc, &loop](ByteBuf, NodeId) -> Task<ByteBuf> {
               co_await loop.sleep(100 * kMicro);
               rpc.shutdown(0, kPortMemcached);  // daemon dies mid-request
               co_return ByteBuf{};
             });
  Errc err = Errc::kOk;
  loop.spawn([](RpcSystem& r, Errc& e) -> Task<void> {
    auto resp = co_await r.call(1, 0, kPortMemcached, ByteBuf{});
    e = resp.error();
  }(rpc, err));
  loop.run();
  EXPECT_EQ(err, Errc::kConnReset);
}

TEST(Rpc, HandlerRunsConcurrentlyForDifferentCallers) {
  // Two calls whose handlers each sleep 1ms should overlap, not serialize
  // (the handler body is per-call; serialization only comes from resources).
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("server");
  fab.add_node("c1");
  fab.add_node("c2");
  RpcSystem rpc(fab);
  // Handler is stored in RpcSystem and outlives every frame.
  // NOLINTNEXTLINE(imca-coro-lambda): the captured loop is a test local.
  rpc.listen(0, kPortGluster, [&loop](ByteBuf, NodeId) -> Task<ByteBuf> {
    co_await loop.sleep(1 * kMilli);
    co_return ByteBuf{};
  });
  int done = 0;
  for (NodeId c = 1; c <= 2; ++c) {
    loop.spawn([](RpcSystem& r, NodeId src, int& d) -> Task<void> {
      (void)co_await r.call(src, 0, kPortGluster, ByteBuf{});
      ++d;
    }(rpc, c, done));
  }
  loop.run();
  EXPECT_EQ(done, 2);
  // Overlap: total well under 2x (1ms handler + transfer costs).
  EXPECT_LT(loop.now(), 2 * kMilli);
}

TEST(Rpc, CallHonoursTransportOverride) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("server");
  fab.add_node("client");
  RpcSystem rpc(fab);
  rpc.listen(0, kPortMemcached, [](ByteBuf, NodeId) -> Task<ByteBuf> {
    co_return ByteBuf{};  // instant handler: only transport time remains
  });
  SimDuration tcp_t = 0, rdma_t = 0;
  loop.spawn([](RpcSystem& r, EventLoop& l, SimDuration& tcp,
                SimDuration& rdma) -> Task<void> {
    SimTime t0 = l.now();
    (void)co_await r.call(1, 0, kPortMemcached, ByteBuf{});
    tcp = l.now() - t0;
    const auto verbs = ib_rdma();
    t0 = l.now();
    (void)co_await r.call(1, 0, kPortMemcached, ByteBuf{}, &verbs);
    rdma = l.now() - t0;
  }(rpc, loop, tcp_t, rdma_t));
  loop.run();
  EXPECT_LT(rdma_t, tcp_t / 2);
}

TEST(Rpc, ListenReplaceAndShutdown) {
  EventLoop loop;
  Fabric fab(loop, ipoib_rc());
  fab.add_node("n");
  RpcSystem rpc(fab);
  EXPECT_FALSE(rpc.listening(0, kPortNfs));
  rpc.listen(0, kPortNfs, [](ByteBuf, NodeId) -> Task<ByteBuf> {
    co_return ByteBuf{};
  });
  EXPECT_TRUE(rpc.listening(0, kPortNfs));
  rpc.shutdown(0, kPortNfs);
  EXPECT_FALSE(rpc.listening(0, kPortNfs));
}

}  // namespace
}  // namespace imca::net
