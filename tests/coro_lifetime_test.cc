// Regression pin for the IMCA-CORO-REF sweep (DESIGN.md §5g): every fop on
// the data path takes its path argument *by value*, so a lazy Task built
// from a temporary string stays correct when the temporary dies before the
// task is ever started. Under the old `const std::string&` signatures the
// frames below held dangling references — exactly the class of UAF the
// analyzer now fails the build for.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "fsapi/filesystem.h"
#include "gluster/client.h"
#include "gluster/server.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "net/transport.h"

namespace imca {
namespace {

TEST(CoroLifetime, DeferredFopOutlivesCallersTemporaries) {
  sim::EventLoop loop;
  net::Fabric fabric(loop, net::ipoib_rc());
  const net::NodeId server_node = fabric.add_node("server").id();
  const net::NodeId client_node = fabric.add_node("client").id();
  net::RpcSystem rpc(fabric);
  gluster::GlusterServer server(rpc, server_node);
  server.start();
  gluster::GlusterClient client(rpc, client_node, server_node);

  // Long enough to defeat SSO: the temporary's bytes live on the heap, so
  // a dangling reference would read a freed (and below, scribbled) block.
  const std::string kPath = "/deferred/" + std::string(48, 'a');

  bool created = false;
  std::optional<sim::Task<void>> deferred;
  {
    // The call expression's temporary argument dies at the closing brace —
    // long before the lazy task starts. Each fop must have copied the path
    // into its frame at call time.
    std::string doomed = "/deferred/" + std::string(48, 'a');
    deferred.emplace(
        [](sim::Task<Expected<fsapi::OpenFile>> t, bool& ok) -> sim::Task<void> {
          auto f = co_await std::move(t);
          ok = f.has_value();
        }(client.create(doomed + ""), created));
  }
  // Encourage reuse of the freed allocation so a stale reference reads
  // garbage rather than happening to see the old bytes.
  const std::string scribble(128, 'Z');
  (void)scribble;

  loop.spawn(std::move(*deferred));
  loop.run();
  EXPECT_TRUE(created);

  // The file must exist under the exact intended name, not under whatever
  // the dead temporary's storage decayed into.
  bool visible = false;
  loop.spawn([](gluster::GlusterClient& fs, std::string path,
                bool& ok) -> sim::Task<void> {
    ok = (co_await fs.stat(path)).has_value();
  }(client, kPath, visible));
  loop.run();
  EXPECT_TRUE(visible);
}

}  // namespace
}  // namespace imca
