// Schedule-shake validator pins (DESIGN.md §5k). set_tie_shake(seed)
// deterministically permutes equal-timestamp FIFO resume order — the
// executable half of the imca-lint suspension-atomicity checks: every
// static finding about state assumed stable across a suspension gets an
// interleaving search that can actually reorder the racing resumes.
//
// Pinned here:
//   * set_tie_shake(0) is byte-identical to today's FIFO order (trace
//     equality, tie_shaken == 0) — shake off means bit-for-bit off.
//   * A shaken run permutes ONLY ties: the timestamp sequence is
//     unchanged and each timestamp resumes the same event set, but the
//     within-timestamp order differs (tie_shaken > 0, anti-vacuity).
//   * Wheel and legacy heap produce identical traces under the same shake
//     seed — the shaken schedule is still a deterministic contract, not an
//     implementation accident.
//   * Same seed reproduces, different seeds explore different orders.
//   * A SimMutex-guarded read-modify-write stays exact under shake: the
//     schedules shake explores are legal, so guarded code must not care.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace imca::sim {
namespace {

using Trace = std::vector<std::pair<SimTime, std::uint64_t>>;

// Tie-heavy workload: every client sleeps the same fixed tick, so all of
// them collide on every timestamp and each resume is a FIFO tie the shake
// can permute.
Task<void> lockstep_client(EventLoop& loop, std::size_t iters) {
  for (std::size_t i = 0; i < iters; ++i) {
    co_await loop.sleep(10);
  }
}

Trace run_lockstep(QueueImpl impl, std::uint64_t shake, std::size_t n_clients,
                   std::size_t iters, EventLoopStats* stats = nullptr) {
  EventLoop loop(impl);
  loop.set_tie_shake(shake);
  Trace trace;
  loop.set_trace(&trace);
  for (std::size_t id = 0; id < n_clients; ++id) {
    loop.spawn(lockstep_client(loop, iters));
  }
  loop.run();
  if (stats != nullptr) *stats = loop.stats();
  return trace;
}

// Group a trace into per-timestamp resume sets (order within a timestamp
// deliberately dropped): shake may permute inside a group, never across.
std::map<SimTime, std::multiset<std::uint64_t>> by_time(const Trace& t) {
  std::map<SimTime, std::multiset<std::uint64_t>> out;
  for (const auto& [at, seq] : t) out[at].insert(seq);
  return out;
}

TEST(ScheduleShake, ZeroSeedIsByteIdenticalToFifo) {
  EventLoopStats plain_stats, zero_stats;
  const Trace plain =
      run_lockstep(QueueImpl::kTimerWheel, 0, 32, 50, &plain_stats);
  const Trace zero =
      run_lockstep(QueueImpl::kTimerWheel, 0, 32, 50, &zero_stats);
  ASSERT_EQ(plain, zero);
  EXPECT_EQ(plain_stats.tie_shaken, 0u);
  EXPECT_EQ(zero_stats.tie_shaken, 0u);
}

TEST(ScheduleShake, ShakenRunPermutesTiesOnly) {
  const Trace fifo = run_lockstep(QueueImpl::kTimerWheel, 0, 32, 50);
  EventLoopStats shaken_stats;
  const Trace shaken =
      run_lockstep(QueueImpl::kTimerWheel, 7, 32, 50, &shaken_stats);

  ASSERT_EQ(fifo.size(), shaken.size());
  // Same timestamps in the same order; same event multiset per timestamp.
  EXPECT_EQ(by_time(fifo), by_time(shaken));
  // ... but not the same within-timestamp order, and the kernel counted
  // the reorders (anti-vacuity: the shake actually did something).
  EXPECT_NE(fifo, shaken);
  EXPECT_GT(shaken_stats.tie_shaken, 0u);
}

TEST(ScheduleShake, WheelAndLegacyHeapAgreeUnderShake) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const Trace wheel = run_lockstep(QueueImpl::kTimerWheel, seed, 24, 40);
    const Trace heap = run_lockstep(QueueImpl::kLegacyHeap, seed, 24, 40);
    ASSERT_EQ(wheel, heap) << "impls diverged under shake seed " << seed;
  }
}

TEST(ScheduleShake, SameSeedReproducesDifferentSeedsDiffer) {
  const Trace a1 = run_lockstep(QueueImpl::kTimerWheel, 9, 32, 50);
  const Trace a2 = run_lockstep(QueueImpl::kTimerWheel, 9, 32, 50);
  const Trace b = run_lockstep(QueueImpl::kTimerWheel, 10, 32, 50);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(by_time(a1), by_time(b));  // still the same legal schedule space
}

// The process-wide default (what the fault-matrix --shake flag sets) must
// reach loops constructed with the plain default constructor, and reset
// cleanly.
TEST(ScheduleShake, DefaultSeedReachesDefaultConstructedLoops) {
  set_default_tie_shake(21);
  EventLoop shaken_loop;
  EXPECT_EQ(shaken_loop.tie_shake(), 21u);
  set_default_tie_shake(0);
  EventLoop plain_loop;
  EXPECT_EQ(plain_loop.tie_shake(), 0u);
}

// Oracle correctness under shake: a guarded read-modify-write that parks
// inside its critical section (forcing other workers to pile up on the
// mutex at the same timestamps) must still count exactly. This is the
// dynamic twin of IMCA-LOCK-AWAIT's good pattern: protected state may not
// care which legal interleaving runs.
Task<void> guarded_rmw(EventLoop& loop, SimMutex& mu, std::uint64_t& total,
                       std::size_t iters) {
  for (std::size_t i = 0; i < iters; ++i) {
    auto guard = co_await ScopedLock::acquire(mu);
    const std::uint64_t snapshot = total;
    co_await loop.sleep(1);  // suspension inside the critical section
    total = snapshot + 1;
  }
}

TEST(ScheduleShake, GuardedRmwStaysExactUnderShake) {
  for (const std::uint64_t seed : {0ull, 3ull, 99ull}) {
    EventLoop loop;
    loop.set_tie_shake(seed);
    SimMutex mu(loop);
    std::uint64_t total = 0;
    constexpr std::size_t kWorkers = 16;
    constexpr std::size_t kIters = 25;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      loop.spawn(guarded_rmw(loop, mu, total, kIters));
    }
    loop.run();
    ASSERT_EQ(total, kWorkers * kIters) << "lost updates at shake " << seed;
  }
}

}  // namespace
}  // namespace imca::sim
