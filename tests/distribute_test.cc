// cluster/distribute unit drills (DESIGN.md §5i): consistent-hash ring
// stability under add_brick (~1/(N+1) of the namespace moves, not the ~N/(N+1)
// a `hash % N` ring would), remove_brick migrating exactly the removed
// subvolume's files, and the cross-brick rename crash window — the legacy
// unlink-before-create sequence destroys the replace target when the
// destination brick dies mid-rename, while the staged atomic-swap sequence
// leaves it intact.
//
// Note: gtest ASSERT_* macros use `return` and cannot appear inside a
// coroutine body, so the tests guard with EXPECT_* + early co_return.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "gluster/distribute.h"
#include "gluster/protocol_client.h"
#include "gluster/server.h"
#include "net/rpc.h"
#include "net/transport.h"

namespace imca {
namespace {

using sim::EventLoop;
using sim::Task;

constexpr std::size_t kBricks = 4;    // initial ring
constexpr std::size_t kSpare = 1;     // extra brick node for add_brick
constexpr std::size_t kClientNode = kBricks + kSpare;
constexpr std::size_t kFiles = 120;

std::string file_path(std::size_t i) {
  return "/d/f" + std::to_string(i);
}
std::string file_body(std::size_t i) {
  return "data-" + std::to_string(i);
}

// Crash `victim` the moment `watch`'s durable store changes shape — the
// first mutation a cross-brick rename lands on the destination brick. Sim
// time only advances at awaits, and every subsequent rename step costs at
// least one RPC roundtrip, so a 1 us poll observes the very first change.
Task<void> crash_on_first_mutation(EventLoop* loop,
                                   gluster::GlusterServer* watch,
                                   gluster::GlusterServer* victim,
                                   std::string sentinel) {
  const std::size_t n0 = watch->object_store().file_count();
  while (watch->object_store().file_count() == n0 &&
         watch->object_store().exists(sentinel)) {
    co_await loop->sleep(1);
  }
  victim->crash();
}

class DistributeTest : public ::testing::Test {
 public:  // coroutine lambdas reach in by reference
  DistributeTest() : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    for (std::size_t i = 0; i < kBricks + kSpare; ++i) {
      fabric_.add_node("brick" + std::to_string(i));
    }
    fabric_.add_node("client");
    for (std::size_t i = 0; i < kBricks + kSpare; ++i) {
      servers_.push_back(std::make_unique<gluster::GlusterServer>(
          rpc_, i, gluster::GlusterServerParams{}));
      servers_.back()->start();
    }
  }

  void build(gluster::DistributeParams dp = {}) {
    std::vector<std::unique_ptr<gluster::ProtocolClient>> subvols;
    for (std::size_t i = 0; i < kBricks; ++i) {
      subvols.push_back(std::make_unique<gluster::ProtocolClient>(
          rpc_, kClientNode, i));
    }
    dht_ = std::make_unique<gluster::DistributeXlator>(std::move(subvols), dp);
  }

  std::unique_ptr<gluster::ProtocolClient> spare_conn() {
    return std::make_unique<gluster::ProtocolClient>(rpc_, kClientNode,
                                                     kBricks);
  }

  // Create the fixed file population and return each file's ring owner.
  Task<void> populate(std::map<std::size_t, std::size_t>* owners) {
    for (std::size_t i = 0; i < kFiles; ++i) {
      const std::string p = file_path(i);
      auto c = co_await dht_->create(p, 0644);
      EXPECT_TRUE(c.has_value());
      auto w = co_await dht_->write(p, 0, to_buffer(file_body(i)));
      EXPECT_TRUE(w.has_value());
      (*owners)[i] = dht_->subvol_of(p);
    }
  }

  Task<void> verify_all_readable() {
    for (std::size_t i = 0; i < kFiles; ++i) {
      const std::string body = file_body(i);
      auto r = co_await dht_->read(file_path(i), 0, body.size());
      EXPECT_TRUE(r.has_value());
      if (r) { EXPECT_EQ(to_string(*r), body); }
    }
  }

  void run(Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::vector<std::unique_ptr<gluster::GlusterServer>> servers_;
  std::unique_ptr<gluster::DistributeXlator> dht_;
};

TEST_F(DistributeTest, AddBrickMovesRingFractionNotEverything) {
  build();
  std::map<std::size_t, std::size_t> owners;
  run([](DistributeTest& t, std::map<std::size_t, std::size_t>* owned)
          -> Task<void> {
    co_await t.populate(owned);
    // Every subvolume should own a share of a 120-file namespace.
    std::map<std::size_t, std::size_t> per_subvol;
    for (const auto& [i, s] : *owned) ++per_subvol[s];
    EXPECT_EQ(per_subvol.size(), kBricks);

    auto report = co_await t.dht_->add_brick(t.spare_conn());
    EXPECT_TRUE(report.has_value());
    if (!report) co_return;
    EXPECT_EQ(t.dht_->subvol_count(), kBricks + 1);

    // Consistent hashing: the newcomer takes ~1/(N+1) of the namespace
    // (24 of 120 in expectation). `hash % N` placement would reshuffle
    // ~N/(N+1) (~96). The midpoint separates the two regimes with a wide
    // margin for ring variance at 128 vnodes.
    std::size_t moved = 0;
    for (const auto& [i, s] : *owned) {
      if (t.dht_->subvol_of(file_path(i)) != s) ++moved;
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, kFiles / 2);
    EXPECT_EQ(report->moved, moved);
    EXPECT_EQ(t.dht_->stats().rebalanced_paths, moved);
    EXPECT_GT(report->bytes, 0u);

    co_await t.verify_all_readable();
  }(*this, &owners));
}

TEST_F(DistributeTest, RemoveBrickMigratesExactlyItsFiles) {
  build();
  std::map<std::size_t, std::size_t> owners;
  run([](DistributeTest& t, std::map<std::size_t, std::size_t>* owned)
          -> Task<void> {
    co_await t.populate(owned);
    std::size_t owned_by_0 = 0;
    for (const auto& [i, s] : *owned) {
      if (s == 0) ++owned_by_0;
    }
    EXPECT_GT(owned_by_0, 0u);

    auto report = co_await t.dht_->remove_brick(0);
    EXPECT_TRUE(report.has_value());
    if (!report) co_return;
    EXPECT_EQ(t.dht_->subvol_count(), kBricks - 1);
    EXPECT_EQ(report->moved, owned_by_0);

    co_await t.verify_all_readable();
  }(*this, &owners));
}

// The crash-window regression pair. Both runs kill the destination brick at
// its first rename-driven mutation and both renames fail — the invariant
// under test is what the failure leaves behind. A rename that reports
// failure must leave the replace target either old or new, never destroyed.

TEST_F(DistributeTest, LegacyRenameCrashWindowDestroysReplaceTarget) {
  gluster::DistributeParams dp;
  dp.legacy_rename = true;
  build(dp);
  run([](DistributeTest& t) -> Task<void> {
    auto& dht = *t.dht_;
    const std::string from = "/r/src";
    std::string to;
    for (std::size_t i = 0;; ++i) {
      to = "/r/dst" + std::to_string(i);
      if (dht.subvol_of(to) != dht.subvol_of(from)) break;
    }
    EXPECT_TRUE((co_await dht.create(from, 0644)).has_value());
    EXPECT_TRUE((co_await dht.write(from, 0, to_buffer("payload"))).has_value());
    EXPECT_TRUE((co_await dht.create(to, 0644)).has_value());
    EXPECT_TRUE((co_await dht.write(to, 0, to_buffer("precious"))).has_value());

    gluster::GlusterServer* dst = t.servers_[dht.subvol_of(to)].get();
    t.loop_.spawn(crash_on_first_mutation(&t.loop_, dst, dst, to));
    auto r = co_await dht.rename(from, to);
    EXPECT_FALSE(r.has_value());  // destination died mid-sequence

    dst->restart();
    // The pre-fix sequence unlinked `to` before staging anything: the
    // replace target is simply gone although the rename reported failure.
    auto st = co_await dht.stat(to);
    EXPECT_FALSE(st.has_value());
    if (!st) { EXPECT_EQ(st.error(), Errc::kNoEnt); }
    // The source survives — the window it exercises is target-side.
    auto src = co_await dht.read(from, 0, 7);
    EXPECT_TRUE(src.has_value());
    if (src) { EXPECT_EQ(to_string(*src), "payload"); }
  }(*this));
  EXPECT_EQ(dht_->stats().cross_renames, 1u);
  EXPECT_EQ(dht_->stats().stage_commits, 0u);
}

TEST_F(DistributeTest, StagedRenameCrashWindowLeavesTargetIntact) {
  build();  // default: crash-safe staged rename
  run([](DistributeTest& t) -> Task<void> {
    auto& dht = *t.dht_;
    const std::string from = "/r/src";
    std::string to;
    for (std::size_t i = 0;; ++i) {
      to = "/r/dst" + std::to_string(i);
      if (dht.subvol_of(to) != dht.subvol_of(from)) break;
    }
    EXPECT_TRUE((co_await dht.create(from, 0644)).has_value());
    EXPECT_TRUE((co_await dht.write(from, 0, to_buffer("payload"))).has_value());
    EXPECT_TRUE((co_await dht.create(to, 0644)).has_value());
    EXPECT_TRUE((co_await dht.write(to, 0, to_buffer("precious"))).has_value());

    gluster::GlusterServer* dst = t.servers_[dht.subvol_of(to)].get();
    t.loop_.spawn(crash_on_first_mutation(&t.loop_, dst, dst, to));
    auto r = co_await dht.rename(from, to);
    EXPECT_FALSE(r.has_value());  // destination died mid-sequence

    dst->restart();
    // The staged sequence only touched a private stage name before the
    // crash; the failed rename left both names exactly as they were.
    auto kept = co_await dht.read(to, 0, 8);
    EXPECT_TRUE(kept.has_value());
    if (kept) { EXPECT_EQ(to_string(*kept), "precious"); }
    auto src = co_await dht.read(from, 0, 7);
    EXPECT_TRUE(src.has_value());
    if (src) { EXPECT_EQ(to_string(*src), "payload"); }
  }(*this));
  EXPECT_EQ(dht_->stats().cross_renames, 1u);
}

}  // namespace
}  // namespace imca
