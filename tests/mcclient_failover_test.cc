// Failover unit tests for the libmemcache-style client: the per-op deadline
// and backoff schedule (exact under the sim clock), ejection (a dead daemon
// takes zero traffic), rejoin with mandatory purge, the delete bypass, and
// multi-get behaviour when a daemon dies mid-batch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mcclient/client.h"
#include "mcclient/selector.h"
#include "memcache/server.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "net/rpc.h"

namespace imca::mcclient {
namespace {

using memcache::McServer;

// Members are public: tests drive the fixture from captureless lambda
// coroutines (the coroutine frame must not refer into a dead closure).
class FailoverTest : public ::testing::Test {
 public:
  static constexpr std::size_t kServers = 3;

  FailoverTest() : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    for (std::size_t i = 0; i < kServers; ++i) {
      fabric_.add_node("mcd" + std::to_string(i));
      servers_.push_back(std::make_unique<McServer>(
          rpc_, static_cast<net::NodeId>(i), 64 * kMiB));
      servers_.back()->start();
      server_ids_.push_back(static_cast<net::NodeId>(i));
    }
    client_node_ = fabric_.add_node("client").id();
    rpc_.set_fault_injector(&injector_);
  }

  // Black-hole every reply from `server` (requests still execute).
  void drop_replies_from(std::size_t server, double p = 1.0) {
    net::FaultSpec spec;
    spec.drop_reply = p;
    injector_.set_spec(server_ids_[server], net::kPortMemcached, spec);
  }

  // A key the crc32 selector routes to `server`.
  static std::string key_for(const McClient& c, std::size_t server) {
    for (int i = 0;; ++i) {
      std::string key = "probe" + std::to_string(i);
      if (c.selector().pick(key, std::nullopt, kServers) == server) return key;
    }
  }

  void run(sim::Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  sim::EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  net::FaultInjector injector_{1};
  std::vector<std::unique_ptr<McServer>> servers_;
  std::vector<net::NodeId> server_ids_;
  net::NodeId client_node_ = 0;
};

// With every reply dropped, one get must cost exactly the deadline/backoff
// schedule: 3 attempts x 2 ms deadline, plus backoffs of 1 ms (base << 0)
// and 2 ms (base << 1) between them = 9 ms, plus a few us of client CPU.
TEST_F(FailoverTest, TimeoutBackoffScheduleExact) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.get_attempts = 3;
  p.backoff_base = 1 * kMilli;
  p.backoff_cap = 5 * kMilli;
  p.eject_after = 0;  // isolate the schedule from ejection
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);
  for (std::size_t s = 0; s < kServers; ++s) drop_replies_from(s);

  SimDuration elapsed = 0;
  run([](FailoverTest& t, McClient& cl,
         SimDuration& out) -> sim::Task<void> {
    const SimTime t0 = t.loop_.now();
    auto v = co_await cl.get("k");
    out = t.loop_.now() - t0;
    EXPECT_EQ(v.error(), Errc::kNoEnt);  // degraded to a miss, not an error
  }(*this, c, elapsed));

  EXPECT_GE(elapsed, 9 * kMilli);
  EXPECT_LT(elapsed, 9 * kMilli + 50 * kMicro);  // only per-key CPU on top
  EXPECT_EQ(c.stats().timeouts, 3u);
  EXPECT_EQ(c.stats().retries, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_FALSE(c.server_dead(c.selector().pick("k", std::nullopt, kServers)));
}

// After `eject_after` consecutive unclean failures the daemon is ejected,
// and an ejected daemon takes ZERO wire traffic (with probing disabled).
TEST_F(FailoverTest, EjectedServerTakesZeroTraffic) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.get_attempts = 1;
  p.eject_after = 2;
  p.retry_dead_interval = 0;  // never probe: dead stays dead
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);
  drop_replies_from(1);

  run([](FailoverTest& t, McClient& cl) -> sim::Task<void> {
    const std::string key = key_for(cl, 1);
    EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);  // streak 1
    EXPECT_FALSE(cl.server_dead(1));
    EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);  // streak 2
    EXPECT_TRUE(cl.server_dead(1));

    const auto calls_frozen =
        t.rpc_.calls_to(t.server_ids_[1], net::kPortMemcached);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);
    }
    EXPECT_EQ(t.rpc_.calls_to(t.server_ids_[1], net::kPortMemcached),
              calls_frozen);
  }(*this, c));

  EXPECT_EQ(c.stats().ejections, 1u);
  EXPECT_EQ(c.stats().dead_server_ops, 10u);
}

// A daemon that comes back is only readmitted through a purge: the rejoin
// probe flushes it first, so an item that survived into the new incarnation
// can never be served.
TEST_F(FailoverTest, RejoinTriggersPurge) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.get_attempts = 1;
  p.retry_dead_interval = 5 * kMilli;
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);

  run([](FailoverTest& t, McClient& cl) -> sim::Task<void> {
    const std::string key = key_for(cl, 2);
    t.servers_[2]->stop();
    EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);  // refused
    EXPECT_TRUE(cl.server_dead(2));

    // Daemon restarts behind the client's back, holding a stale item.
    t.servers_[2]->start();
    EXPECT_TRUE(t.servers_[2]
                    ->cache()
                    .set(key, 0, 0, to_buffer("stale"), t.loop_.now())
                    .has_value());

    // Before the probe interval elapses the daemon stays ejected.
    EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);
    EXPECT_TRUE(cl.server_dead(2));

    co_await t.loop_.sleep(6 * kMilli);
    // The next op probes, flushes the daemon, readmits it — and therefore
    // misses instead of serving the stale item.
    EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);
    EXPECT_FALSE(cl.server_dead(2));
    EXPECT_EQ(t.servers_[2]->cache().item_count(), 0u);

    // Fully back in service.
    EXPECT_TRUE((co_await cl.set(key, to_buffer("fresh"))).has_value());
    auto v = co_await cl.get(key);
    EXPECT_TRUE(v.has_value());
    if (v) { EXPECT_EQ(to_string(v->data), "fresh"); }
  }(*this, c));

  EXPECT_EQ(c.stats().rejoins, 1u);
  EXPECT_EQ(c.stats().rejoin_purges, 1u);
}

// flush_all must not hang on (or wait out deadlines for) a daemon already
// marked dead, and must still flush the live ones.
TEST_F(FailoverTest, FlushAllToleratesDeadServer) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.get_attempts = 1;
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);

  SimDuration elapsed = 0;
  run([](FailoverTest& t, McClient& cl,
         SimDuration& out) -> sim::Task<void> {
    for (int i = 0; i < 30; ++i) {
      (void)co_await cl.set("k" + std::to_string(i), to_buffer("v"));
    }
    t.servers_[0]->stop();
    (void)co_await cl.get(key_for(cl, 0));  // refused: marks daemon 0 dead
    EXPECT_TRUE(cl.server_dead(0));

    const SimTime t0 = t.loop_.now();
    co_await cl.flush_all();
    out = t.loop_.now() - t0;
  }(*this, c, elapsed));

  EXPECT_LT(elapsed, 2 * kMilli);  // no deadline was even consumed
  EXPECT_EQ(servers_[1]->cache().item_count(), 0u);
  EXPECT_EQ(servers_[2]->cache().item_count(), 0u);
}

// A daemon dying mid-batch: every outstanding per-daemon get carries the
// per-op deadline, so a multi-get spanning a live and a black-holed daemon
// returns the live daemon's values after the deadline schedule — it does
// not ride the transport's 200 ms give-up.
TEST_F(FailoverTest, MultiGetMidBatchDeathIsBounded) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.get_attempts = 2;
  p.backoff_base = 1 * kMilli;
  McClient c(rpc_, client_node_, {server_ids_[0], server_ids_[1]},
             std::make_unique<ModuloSelector>(), p);

  SimDuration elapsed = 0;
  run([](FailoverTest& t, McClient& cl,
         SimDuration& out) -> sim::Task<void> {
    (void)co_await cl.set("a", to_buffer("A"), 0);  // hint 0 -> daemon 0
    (void)co_await cl.set("b", to_buffer("B"), 1);  // hint 1 -> daemon 1
    t.drop_replies_from(1);

    const SimTime t0 = t.loop_.now();
    const std::vector<std::string> keys{"a", "b"};
    const std::vector<std::uint64_t> hints{0, 1};
    auto got = co_await cl.multi_get(keys, hints);
    out = t.loop_.now() - t0;

    EXPECT_TRUE(got.contains("a"));
    if (got.contains("a")) { EXPECT_EQ(to_string(got.at("a").data), "A"); }
    EXPECT_FALSE(got.contains("b"));
  }(*this, c, elapsed));

  // Two attempts x 2 ms + 1 ms backoff on the dead group; well under the
  // 200 ms transport give-up the old code would have waited.
  EXPECT_GE(elapsed, 5 * kMilli);
  EXPECT_LT(elapsed, 6 * kMilli);
  EXPECT_GE(c.stats().timeouts, 2u);
}

// A torn (short-read) reply is caught by the framing check, retried, and —
// when the fault persists — degraded to a miss instead of a protocol error.
TEST_F(FailoverTest, ShortReadDegradesToMiss) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.get_attempts = 2;
  p.eject_after = 0;
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);

  run([](FailoverTest& t, McClient& cl) -> sim::Task<void> {
    const std::string key = key_for(cl, 0);
    EXPECT_TRUE((co_await cl.set(key, to_buffer("v"))).has_value());

    net::FaultSpec spec;
    spec.short_read = 1.0;
    t.injector_.set_spec(t.server_ids_[0], net::kPortMemcached, spec);

    EXPECT_EQ((co_await cl.get(key)).error(), Errc::kNoEnt);
  }(*this, c));

  EXPECT_GE(c.stats().truncated_replies, 1u);
  EXPECT_EQ(c.stats().retries, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

// Writer mode: a mutation keeps retrying through dropped replies until it
// observes a clean outcome, and unclean streaks never eject the daemon.
// Deterministic setup: replies are dropped with probability 1 and the fault
// is lifted by a timer 5 ms in — the first clean attempt after that wins.
TEST_F(FailoverTest, ReliableMutationRetriesUntilClean) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.mutation_attempts = 64;
  p.backoff_base = 200 * kMicro;
  p.eject_after = 2;  // would fire quickly if reliable mode didn't suppress it
  p.reliable_mutations = true;
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);

  run([](FailoverTest& t, McClient& cl) -> sim::Task<void> {
    const std::string key = key_for(cl, 0);
    t.drop_replies_from(0);
    t.loop_.spawn([](FailoverTest* tt) -> sim::Task<void> {
      co_await tt->loop_.sleep(5 * kMilli);
      tt->injector_.clear_spec(tt->server_ids_[0], net::kPortMemcached);
    }(&t));

    EXPECT_TRUE((co_await cl.set(key, to_buffer("durable"))).has_value());
    auto v = co_await cl.get(key);
    EXPECT_TRUE(v.has_value());
    if (v) { EXPECT_EQ(to_string(v->data), "durable"); }
  }(*this, c));

  EXPECT_GE(c.stats().retries, 2u);
  EXPECT_GE(c.stats().timeouts, 2u);
  EXPECT_EQ(c.stats().ejections, 0u);
  EXPECT_FALSE(c.server_dead(0));
}

// Writer mode: deletes bypass the ejection list, so a daemon that restarted
// behind the writer's back can't keep a stale copy of an invalidated block —
// and a bypass delete that lands doubles as a rejoin (with purge).
TEST_F(FailoverTest, DeleteBypassesEjectionAndRejoins) {
  McClientParams p;
  p.op_timeout = 2 * kMilli;
  p.mutation_attempts = 8;
  p.reliable_mutations = true;
  p.delete_bypasses_ejection = true;
  p.retry_dead_interval = 0;  // isolate the bypass from timed probes
  McClient c(rpc_, client_node_, server_ids_,
             std::make_unique<Crc32Selector>(), p);

  run([](FailoverTest& t, McClient& cl) -> sim::Task<void> {
    const std::string key = key_for(cl, 1);
    t.servers_[1]->stop();
    (void)co_await cl.set(key, to_buffer("x"));  // refused: marks daemon dead
    EXPECT_TRUE(cl.server_dead(1));

    // Silent restart with a stale item the writer wants gone.
    t.servers_[1]->start();
    EXPECT_TRUE(t.servers_[1]
                    ->cache()
                    .set(key, 0, 0, to_buffer("stale"), t.loop_.now())
                    .has_value());

    EXPECT_TRUE((co_await cl.del(key)).has_value());
  }(*this, c));

  EXPECT_GE(c.stats().bypass_deletes, 1u);
  EXPECT_EQ(c.stats().rejoins, 1u);
  EXPECT_EQ(c.stats().rejoin_purges, 1u);
  EXPECT_FALSE(c.server_dead(1));
  EXPECT_EQ(servers_[1]->cache().item_count(), 0u);
}

}  // namespace
}  // namespace imca::mcclient
