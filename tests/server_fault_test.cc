// Brick failure model (DESIGN.md §5f), unit level: crash/restart drops
// volatile state but never durable state; the (client_id, op_seq) replay
// window turns client at-least-once retries into exactly-once application;
// admission/io-queue/deadline shedding answers kBusy instead of queueing
// without bound; CMCache brownout serves bounded-staleness cache hits while
// the brick is ejected; and the write-behind durability contract's two modes
// lose / keep acked bytes across a crash exactly as advertised.
//
// Note: gtest ASSERT_* macros use `return` and cannot appear inside a
// coroutine body, so the tests guard with EXPECT_* + early co_return.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "gluster/client.h"
#include "gluster/protocol.h"
#include "gluster/server.h"
#include "net/rpc.h"
#include "net/transport.h"
#include "sim/sync.h"

namespace imca {
namespace {

using gluster::FopReply;
using gluster::FopRequest;
using gluster::FopType;
using sim::EventLoop;
using sim::Task;

// One raw wire exchange from node 1 to the brick on node 0 — the envelope
// fields (client_id/op_seq/retry/ttl) exactly as given, no client policy.
Task<FopReply> send_raw(net::RpcSystem& rpc, FopRequest req) {
  ByteBuf wire = req.encode();
  auto raw = co_await rpc.call(1, 0, net::kPortGluster, std::move(wire));
  FopReply rep;
  if (!raw) {
    rep.errc = raw.error();
    co_return rep;
  }
  auto decoded = FopReply::decode(*raw);
  if (!decoded) {
    rep.errc = Errc::kProto;
    co_return rep;
  }
  co_return *decoded;
}

class ServerFaultTest : public ::testing::Test {
 public:  // coroutine lambdas reach in by reference
  ServerFaultTest() : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    fabric_.add_node("server");
    fabric_.add_node("client");
  }

  void build(gluster::GlusterServerParams sp = {},
             gluster::GlusterClientParams cp = {}) {
    server_ = std::make_unique<gluster::GlusterServer>(rpc_, 0, sp);
    server_->start();
    client_ = std::make_unique<gluster::GlusterClient>(rpc_, 1, 0, cp);
  }

  void run(Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  std::unique_ptr<gluster::GlusterServer> server_;
  std::unique_ptr<gluster::GlusterClient> client_;
};

TEST_F(ServerFaultTest, CrashDropsVolatileStateRestartServesDurable) {
  build();
  run([](ServerFaultTest& t) -> Task<void> {
    auto& fs = *t.client_;
    auto f = co_await fs.create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    EXPECT_TRUE((co_await fs.write(*f, 0, to_buffer("hello world"))).has_value());
    EXPECT_GT(t.server_->device().cache().resident_pages(), 0u);

    t.server_->crash();
    EXPECT_FALSE(t.server_->up());
    // The page cache was process memory; the ObjectStore is the disk.
    EXPECT_EQ(t.server_->device().cache().resident_pages(), 0u);
    EXPECT_EQ(t.server_->object_store().file_count(), 1u);
    // Seed client policy: one attempt, and the dead brick refuses it.
    auto refused = co_await fs.stat("/f");
    EXPECT_FALSE(refused.has_value());
    if (!refused) { EXPECT_EQ(refused.error(), Errc::kConnRefused); }

    t.server_->restart();
    auto st = co_await fs.stat("/f");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 11u); }
    auto r = co_await fs.read(*f, 0, 11);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "hello world"); }
  }(*this));
  const auto s = server_->stats();
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.restarts, 1u);
}

TEST_F(ServerFaultTest, ScheduledCrashWindowRiddenOutByRetries) {
  gluster::GlusterClientParams cp;
  cp.protocol.op_deadline = 400 * kMilli;
  cp.protocol.attempt_timeout = 40 * kMilli;
  cp.protocol.backoff_base = 1 * kMilli;
  cp.protocol.backoff_cap = 8 * kMilli;
  cp.protocol.eject_after = 3;
  cp.protocol.probe_interval = 5 * kMilli;
  build({}, cp);
  server_->schedule_crash(5 * kMilli, 25 * kMilli);

  run([](ServerFaultTest& t) -> Task<void> {
    auto& fs = *t.client_;
    auto f = co_await fs.create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    // Ten 1 KiB writes straddling the crash window [5ms, 25ms); the ones
    // landing in it must ride through on retries, exactly once each.
    for (std::uint64_t i = 0; i < 10; ++i) {
      const std::string chunk(1024, static_cast<char>('a' + i));
      auto w = co_await fs.write(*f, i * 1024, to_buffer(chunk));
      EXPECT_TRUE(w.has_value()) << "write " << i;
      if (w) { EXPECT_EQ(*w, 1024u); }
      co_await t.loop_.sleep(3 * kMilli);
    }
    auto r = co_await fs.read(*f, 0, 10 * 1024);
    EXPECT_TRUE(r.has_value());
    if (!r) co_return;
    const std::string got = to_string(*r);
    EXPECT_EQ(got.size(), 10u * 1024u);
    if (got.size() != 10u * 1024u) co_return;
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(got[i * 1024], static_cast<char>('a' + i)) << "chunk " << i;
      EXPECT_EQ(got[i * 1024 + 1023], static_cast<char>('a' + i));
    }
  }(*this));

  const auto s = server_->stats();
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.restarts, 1u);
  EXPECT_EQ(s.duplicate_applies, 0u);
  const auto& pc = client_->protocol().stats();
  EXPECT_GT(pc.retries, 0u);  // the window really forced the retry machinery
}

TEST_F(ServerFaultTest, ReplayWindowAnswersWithoutReapplying) {
  build();
  run([](ServerFaultTest& t) -> Task<void> {
    FopRequest req;
    req.type = FopType::kCreate;
    req.path = "/dup";
    req.client_id = 7;
    req.op_seq = 1;
    auto first = co_await send_raw(t.rpc_, req);
    EXPECT_EQ(first.errc, Errc::kOk);

    // The retry re-sends the same (client_id, op_seq): the window answers
    // with the recorded kOk instead of re-running create (which would say
    // kExist — the classic non-idempotent-retry lie).
    req.retry = 1;
    auto replay = co_await send_raw(t.rpc_, req);
    EXPECT_EQ(replay.errc, Errc::kOk);

    // A genuinely new mutation against the same path sees the truth.
    req.op_seq = 2;
    req.retry = 0;
    auto fresh = co_await send_raw(t.rpc_, req);
    EXPECT_EQ(fresh.errc, Errc::kExist);
  }(*this));
  const auto s = server_->stats();
  EXPECT_EQ(s.replays_seen, 1u);
  EXPECT_EQ(s.replays_deduped, 1u);
  EXPECT_EQ(s.duplicate_applies, 0u);
}

// Sheds the first `shed_first` writes with kBusy after holding them for
// `hold` — the "slow original that finishes with kBusy" shape (a long
// write-behind flush that then hits a shed io-threads queue). Nothing is
// applied on the shed path, so a later retry is NOT a duplicate.
class SlowShedXlator final : public gluster::Xlator {
 public:
  SlowShedXlator(EventLoop& loop, int shed_first, SimDuration hold)
      : loop_(loop), shed_left_(shed_first), hold_(hold) {}
  std::string_view name() const override { return "slow-shed"; }
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override {
    if (shed_left_ > 0) {
      --shed_left_;
      co_await loop_.sleep(hold_);
      co_return Errc::kBusy;
    }
    ++applies_;
    co_return co_await child_->write(path, offset, std::move(data));
  }
  int applies() const noexcept { return applies_; }

 private:
  EventLoop& loop_;
  int shed_left_;
  SimDuration hold_;
  int applies_ = 0;
};

TEST_F(ServerFaultTest, ParkedReplaysNeverDoubleApplyAfterShedOriginal) {
  // Two replays of the same mutation park on an original that is slow and
  // then sheds with kBusy (nothing applied, nothing recorded). Both wake on
  // the same event; only ONE of them may become the new original — the
  // other must park again on (or be answered by) that new original, never
  // dispatch concurrently with it.
  server_ = std::make_unique<gluster::GlusterServer>(rpc_, 0,
                                                     gluster::GlusterServerParams{});
  auto shed = std::make_unique<SlowShedXlator>(loop_, 1, 2 * kMilli);
  auto* shed_raw = shed.get();
  server_->push_translator(std::move(shed));
  server_->start();

  run([](ServerFaultTest& t) -> Task<void> {
    FopRequest create;
    create.type = FopType::kCreate;
    create.path = "/f";
    EXPECT_EQ((co_await send_raw(t.rpc_, create)).errc, Errc::kOk);

    std::vector<Errc> replay_errcs;
    std::vector<Task<void>> batch;
    // The original: held 2 ms inside dispatch, then shed with kBusy.
    batch.push_back([](ServerFaultTest& tt) -> Task<void> {
      FopRequest w;
      w.type = FopType::kWrite;
      w.path = "/f";
      w.client_id = 7;
      w.op_seq = 1;
      w.data = to_buffer("abcd");
      auto rep = co_await send_raw(tt.rpc_, w);
      EXPECT_EQ(rep.errc, Errc::kBusy);  // shed before applying anything
    }(t));
    // Two replays overtaking it; both park on the in-flight original.
    for (int i = 1; i <= 2; ++i) {
      batch.push_back([](ServerFaultTest& tt, int retry,
                         std::vector<Errc>& out) -> Task<void> {
        co_await tt.loop_.sleep(static_cast<SimDuration>(retry) * 500 * kMicro);
        FopRequest w;
        w.type = FopType::kWrite;
        w.path = "/f";
        w.client_id = 7;
        w.op_seq = 1;
        w.retry = static_cast<std::uint8_t>(retry);
        w.data = to_buffer("abcd");
        auto rep = co_await send_raw(tt.rpc_, w);
        out.push_back(rep.errc);
        EXPECT_EQ(rep.errc, Errc::kOk);
        EXPECT_EQ(rep.count, 4u);
      }(t, i, replay_errcs));
    }
    co_await sim::when_all(t.loop_, std::move(batch));
    EXPECT_EQ(replay_errcs.size(), 2u);
  }(*this));

  // The mutation ran through the stack exactly once, by whichever replay
  // became the new original after the shed.
  EXPECT_EQ(shed_raw->applies(), 1);
  const auto s = server_->stats();
  EXPECT_EQ(s.duplicate_applies, 0u);
  EXPECT_GE(s.replays_parked, 2u);
  EXPECT_GE(s.replays_deduped, 1u);
}

TEST_F(ServerFaultTest, AdmissionBoundShedsInsteadOfQueueing) {
  gluster::GlusterServerParams sp;
  sp.admission_limit = 1;
  build(sp);
  run([](ServerFaultTest& t) -> Task<void> {
    FopRequest req;
    req.type = FopType::kCreate;
    req.path = "/a";
    (void)co_await send_raw(t.rpc_, req);
    // Cold metadata: the next stat occupies dispatch for a ~12 ms disk
    // access, so its concurrent twin finds the admission slot taken.
    t.server_->device().drop_caches();
    std::vector<Errc> out;
    std::vector<Task<void>> batch;
    for (int i = 0; i < 2; ++i) {
      batch.push_back(
          [](ServerFaultTest& tt, std::vector<Errc>& o) -> Task<void> {
            FopRequest s;
            s.type = FopType::kStat;
            s.path = "/a";
            o.push_back((co_await send_raw(tt.rpc_, s)).errc);
          }(t, out));
    }
    co_await sim::when_all(t.loop_, std::move(batch));
    EXPECT_EQ(out.size(), 2u);
    int ok = 0, busy = 0;
    for (Errc e : out) (e == Errc::kOk ? ok : busy)++;
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(busy, 1);
  }(*this));
  EXPECT_EQ(server_->stats().sheds_admission, 1u);
}

TEST_F(ServerFaultTest, IoQueueBoundShedsTheOverflow) {
  gluster::GlusterServerParams sp;
  sp.io_threads = 1;
  sp.io_queue_limit = 1;
  build(sp);
  run([](ServerFaultTest& t) -> Task<void> {
    FopRequest req;
    req.type = FopType::kCreate;
    req.path = "/a";
    (void)co_await send_raw(t.rpc_, req);
    t.server_->device().drop_caches();
    // One io thread, one queue slot, three cold stats: serve one, queue
    // one, shed one.
    std::vector<Errc> out;
    std::vector<Task<void>> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back(
          [](ServerFaultTest& tt, std::vector<Errc>& o) -> Task<void> {
            FopRequest s;
            s.type = FopType::kStat;
            s.path = "/a";
            o.push_back((co_await send_raw(tt.rpc_, s)).errc);
          }(t, out));
    }
    co_await sim::when_all(t.loop_, std::move(batch));
    EXPECT_EQ(out.size(), 3u);
    int ok = 0, busy = 0;
    for (Errc e : out) (e == Errc::kOk ? ok : busy)++;
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(busy, 1);
  }(*this));
  EXPECT_EQ(server_->stats().sheds_io, 1u);
}

TEST_F(ServerFaultTest, ExpiredDeadlineBudgetIsShedBeforeDispatch) {
  build();
  run([](ServerFaultTest& t) -> Task<void> {
    FopRequest req;
    req.type = FopType::kStat;
    req.path = "/whatever";
    req.ttl = 1;  // 1 ns of budget: gone before dispatch CPU finishes
    auto rep = co_await send_raw(t.rpc_, req);
    EXPECT_EQ(rep.errc, Errc::kBusy);
  }(*this));
  EXPECT_EQ(server_->stats().sheds_expired, 1u);
}

TEST_F(ServerFaultTest, UnsafeWriteBehindLosesAckedBytesInCrash) {
  gluster::GlusterServerParams sp;
  sp.write_behind = true;  // classic mode: ack from brick memory
  build(sp);
  run([](ServerFaultTest& t) -> Task<void> {
    auto& fs = *t.client_;
    auto f = co_await fs.create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    auto w = co_await fs.write(*f, 0, to_buffer("precious"));
    EXPECT_TRUE(w.has_value());  // acked...
    EXPECT_EQ(t.server_->write_behind()->buffered_bytes(), 8u);  // ...volatile

    t.server_->crash();
    t.server_->restart();
    auto st = co_await fs.stat("/f");
    EXPECT_TRUE(st.has_value());
    // The acked bytes died with the process.
    if (st) { EXPECT_EQ(st->size, 0u); }
  }(*this));
  EXPECT_EQ(server_->stats().wb_dropped_bytes, 8u);
}

TEST_F(ServerFaultTest, FlushBeforeAckSurvivesTheSameCrash) {
  gluster::GlusterServerParams sp;
  sp.write_behind = true;
  sp.wb.flush_before_ack = true;  // the matrix's durable-ack mode
  build(sp);
  run([](ServerFaultTest& t) -> Task<void> {
    auto& fs = *t.client_;
    auto f = co_await fs.create("/f");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    auto w = co_await fs.write(*f, 0, to_buffer("precious"));
    EXPECT_TRUE(w.has_value());
    EXPECT_EQ(t.server_->write_behind()->buffered_bytes(), 0u);  // already down

    t.server_->crash();
    t.server_->restart();
    auto st = co_await fs.stat("/f");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 8u); }
    auto r = co_await fs.read(*f, 0, 8);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "precious"); }
  }(*this));
  EXPECT_EQ(server_->stats().wb_dropped_bytes, 0u);
}

// --- CMCache brownout: the full testbed, because it needs a warm MCD ---

TEST(ServerBrownout, CacheServesWithinBoundThenStepsAside) {
  cluster::GlusterTestbedConfig cfg;
  cfg.n_mcds = 1;
  cfg.smcache = true;
  cfg.imca.brownout = true;
  cfg.imca.brownout_max_staleness = 100 * kMilli;
  // The attempt timeout must clear a ~12 ms cold-disk access or the healthy
  // warm-up ops would spuriously time out; the refusal probes after the
  // crash are wire-latency fast, so the dead stat still fails within one
  // deadline of probing.
  cfg.client.protocol.op_deadline = 60 * kMilli;
  cfg.client.protocol.attempt_timeout = 40 * kMilli;
  cfg.client.protocol.backoff_base = 1 * kMilli;
  cfg.client.protocol.backoff_cap = 4 * kMilli;
  cfg.client.protocol.eject_after = 1;
  cfg.client.protocol.probe_interval = 5 * kMilli;
  cluster::GlusterTestbed bed(cfg);

  bed.run([](cluster::GlusterTestbed& b) -> Task<void> {
    auto& fs = b.client(0);
    auto f = co_await fs.create("/warm");
    EXPECT_TRUE(f.has_value());
    if (!f) co_return;
    EXPECT_TRUE((co_await fs.write(*f, 0, to_buffer("cached bytes"))).has_value());
    EXPECT_TRUE((co_await fs.close(*f)).has_value());
    // First stat misses and SMCache publishes the attr to the MCD; the
    // second confirms the cache can answer on its own.
    EXPECT_TRUE((co_await fs.stat("/warm")).has_value());
    EXPECT_TRUE((co_await fs.stat("/warm")).has_value());

    b.server().crash();
    // Trip ejection with an op the cache cannot answer for us.
    auto dead = co_await fs.stat("/missing");
    EXPECT_FALSE(dead.has_value());
    EXPECT_TRUE(b.gluster_client(0).protocol().server_down());

    // Within the staleness bound: the MCD array answers for the dead brick.
    auto st = co_await fs.stat("/warm");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 12u); }
    EXPECT_GE(b.cmcache(0).fault_stats().brownout_serves, 1u);

    // Past the bound: the cache steps aside and the outage is visible.
    co_await b.loop().sleep(200 * kMilli);
    auto stale = co_await fs.stat("/warm");
    EXPECT_FALSE(stale.has_value());
    EXPECT_GE(b.cmcache(0).fault_stats().brownout_stale_bypass, 1u);
  }(bed));
}

}  // namespace
}  // namespace imca
