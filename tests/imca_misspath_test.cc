// Tests for the rebuilt CMCache miss path: partial-hit assembly, client-side
// read-repair, and single-flight coalescing (DESIGN.md "Miss-path handling").
//
// The rig mirrors imca_test.cc's Deployment but lets each test drop SMCache
// from the server stack (with_smcache=false), isolating the client-side
// machinery: nothing repopulates the MCD bank except the clients themselves.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gluster/client.h"
#include "gluster/server.h"
#include "imca/cmcache.h"
#include "imca/config.h"
#include "imca/keys.h"
#include "imca/smcache.h"
#include "memcache/server.h"
#include "net/transport.h"
#include "sim/sync.h"

namespace imca::core {
namespace {

using sim::EventLoop;
using sim::Task;

constexpr std::uint64_t kBs = 2 * kKiB;  // the default IMCa block size

struct Rig {
  explicit Rig(std::size_t n_mcds, ImcaConfig cfg = {},
               bool with_smcache = true)
      : fabric(loop, net::ipoib_rc()), rpc(fabric) {
    server_node = fabric.add_node("gluster-server").id();
    for (std::size_t i = 0; i < n_mcds; ++i) {
      mcd_nodes.push_back(fabric.add_node("mcd" + std::to_string(i)).id());
    }
    client_node = fabric.add_node("client0").id();

    for (auto n : mcd_nodes) {
      mcds.push_back(std::make_unique<memcache::McServer>(rpc, n, 6 * kGiB));
      mcds.back()->start();
    }

    server = std::make_unique<gluster::GlusterServer>(rpc, server_node);
    if (with_smcache) {
      server->push_translator(std::make_unique<SmCacheXlator>(
          loop,
          std::make_unique<mcclient::McClient>(rpc, server_node, mcd_nodes,
                                               make_selector(cfg)),
          cfg));
    }
    server->start();

    client = std::make_unique<gluster::GlusterClient>(rpc, client_node,
                                                      server_node);
    auto cm = std::make_unique<CmCacheXlator>(
        std::make_unique<mcclient::McClient>(rpc, client_node, mcd_nodes,
                                             make_selector(cfg)),
        cfg);
    cmcache = cm.get();
    client->push_translator(std::move(cm));
  }

  // Drop one block of `path` from every daemon, directly (models eviction;
  // no simulated time passes).
  void evict(const std::string& path, std::uint64_t block) {
    const std::string key = data_key(path, block * kBs);
    for (auto& m : mcds) (void)m->cache().del(key);
  }

  // Patterned payload so splices are position-checkable.
  static Buffer pattern(std::size_t n) {
    std::vector<std::byte> p(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = static_cast<std::byte>((i * 13 + 7) & 0xFF);
    }
    return Buffer::take(std::move(p));
  }

  void run(Task<void> t) {
    loop.spawn(std::move(t));
    loop.run();
  }

  EventLoop loop;
  net::Fabric fabric;
  net::RpcSystem rpc;
  net::NodeId server_node = 0;
  net::NodeId client_node = 0;
  std::vector<net::NodeId> mcd_nodes;
  std::vector<std::unique_ptr<memcache::McServer>> mcds;
  std::unique_ptr<gluster::GlusterServer> server;
  std::unique_ptr<gluster::GlusterClient> client;
  CmCacheXlator* cmcache = nullptr;
};

// --- partial-hit assembly ---

TEST(MissPath, PartialHitSplicesUnalignedRead) {
  Rig d(2);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/p");
    const auto payload = Rig::pattern(8 * kBs);
    (void)co_await dd.client->write(*f, 0, payload);
    // Punch holes in the middle: blocks 2 and 5 (non-contiguous -> two
    // separate coalesced range fetches).
    dd.evict("/p", 2);
    dd.evict("/p", 5);

    // Unaligned read straddling blocks 1..6: cached 1,3,4,6; missing 2,5.
    const std::uint64_t off = kBs + 700;
    const std::uint64_t len = 5 * kBs + 11;
    auto r = co_await dd.client->read(*f, off, len);
    EXPECT_TRUE(r.has_value());
    if (r) {
      EXPECT_EQ(*r, payload.slice(off, len));
    }
  }(d));
  EXPECT_EQ(d.cmcache->stats().reads_partial, 1u);
  EXPECT_EQ(d.cmcache->stats().reads_forwarded, 0u);
  EXPECT_EQ(d.cmcache->stats().range_fetches, 2u);  // one per missing run
}

TEST(MissPath, PartialHitAcrossEofShortBlock) {
  Rig d(2);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/eof");
    // 2 full blocks + 5 trailing bytes: block 2 is short (EOF marker).
    const auto payload = Rig::pattern(2 * kBs + 5);
    (void)co_await dd.client->write(*f, 0, payload);
    dd.evict("/eof", 1);  // hole in the middle, short block stays cached

    // Ask for far more than the file holds: covering blocks 0..7. The
    // cached short block 2 must prune blocks 3..7 to EOF-empty without any
    // server traffic; only block 1 needs a range fetch.
    auto r = co_await dd.client->read(*f, 0, 8 * kBs);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(*r, payload); }
    // An unaligned tail read ending inside the short block still works.
    auto r2 = co_await dd.client->read(*f, kBs + 100, kBs + 5000);
    EXPECT_TRUE(r2.has_value());
    if (r2) {
      EXPECT_EQ(*r2, payload.slice(kBs + 100));
    }
  }(d));
  EXPECT_GE(d.cmcache->stats().reads_partial, 1u);
  // Exactly one range fetch (block 1, first read); blocks 3..7 were pruned,
  // and the second read found block 1 repopulated.
  EXPECT_EQ(d.cmcache->stats().range_fetches, 1u);
}

// --- client-side read-repair ---

TEST(MissPath, ReadRepairWarmsBankWithoutSmcache) {
  Rig d(2, {}, /*with_smcache=*/false);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/rr");
    const auto payload = Rig::pattern(4 * kBs);
    (void)co_await dd.client->write(*f, 0, payload);
    // No SMCache: the bank is stone cold. First read misses everything.
    auto r1 = co_await dd.client->read(*f, 0, 4 * kBs);
    EXPECT_TRUE(r1.has_value());
    EXPECT_EQ(dd.cmcache->stats().range_fetches, 1u);

    // Let the fire-and-forget repair sets land.
    co_await dd.loop.sleep(1 * kMilli);
    EXPECT_EQ(dd.cmcache->stats().blocks_repaired, 4u);

    // Second read: full cache hit — the client, not the server, warmed it.
    const auto fops_before = dd.server->fops_served();
    auto r2 = co_await dd.client->read(*f, 0, 4 * kBs);
    EXPECT_TRUE(r2.has_value());
    if (r2) { EXPECT_EQ(*r2, payload); }
    EXPECT_EQ(dd.server->fops_served(), fops_before);
  }(d));
  EXPECT_EQ(d.cmcache->stats().reads_from_cache, 1u);
  EXPECT_EQ(d.cmcache->stats().range_fetches, 1u);
}

TEST(MissPath, ReadRepairOffLeavesBankCold) {
  ImcaConfig cfg;
  cfg.client_read_repair = false;
  Rig d(2, cfg, /*with_smcache=*/false);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/norr");
    (void)co_await dd.client->write(*f, 0, Rig::pattern(4 * kBs));
    (void)co_await dd.client->read(*f, 0, 4 * kBs);
    co_await dd.loop.sleep(1 * kMilli);
    (void)co_await dd.client->read(*f, 0, 4 * kBs);
  }(d));
  // Without repair (and without SMCache) every read re-fetches.
  EXPECT_EQ(d.cmcache->stats().blocks_repaired, 0u);
  EXPECT_EQ(d.cmcache->stats().range_fetches, 2u);
  EXPECT_EQ(d.cmcache->stats().reads_from_cache, 0u);
}

// --- degraded bank ---

TEST(MissPath, DeadDaemonMidReadDegradesToRangeFetch) {
  Rig d(2);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/dead");
    const auto payload = Rig::pattern(6 * kBs);
    (void)co_await dd.client->write(*f, 0, payload);
    // One of the two daemons dies with its blocks. Reads must degrade to
    // fetching the lost ranges, never error.
    dd.mcds[1]->stop();
    auto r = co_await dd.client->read(*f, 0, 6 * kBs);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(*r, payload); }
  }(d));
  // The surviving daemon's blocks still count as hits (crc32 spreads 6
  // blocks over 2 daemons, so both classes are non-empty in practice).
  const auto& s = d.cmcache->stats();
  EXPECT_EQ(s.reads_partial + s.reads_forwarded, 1u);
  EXPECT_GE(s.range_fetches, 1u);
}

// --- single-flight coalescing ---

TEST(MissPath, SingleFlightSharesOneFetchAmongWaiters) {
  Rig d(2);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/sf");
    const auto payload = Rig::pattern(2 * kBs);
    (void)co_await dd.client->write(*f, 0, payload);
    for (auto& m : dd.mcds) m->cache().flush_all();  // everyone misses

    // Four concurrent readers of the same cold blocks: one leader does the
    // MCD fetch + range fetch, three piggyback and splice the same bytes.
    std::vector<Task<void>> readers;
    for (int i = 0; i < 4; ++i) {
      readers.push_back([](Rig& rr, fsapi::OpenFile fd,
                           Buffer want) -> Task<void> {
        auto r = co_await rr.client->read(fd, 0, 2 * kBs);
        EXPECT_TRUE(r.has_value());
        if (r) { EXPECT_EQ(*r, want); }
      }(dd, *f, payload));
    }
    co_await sim::when_all(dd.loop, std::move(readers));
  }(d));
  const auto& s = d.cmcache->stats();
  EXPECT_EQ(s.range_fetches, 1u);           // one server read for all four
  EXPECT_EQ(s.coalesced_waiters, 3u * 2u);  // 3 late readers x 2 blocks
}

TEST(MissPath, CoalesceOffFetchesIndependently) {
  ImcaConfig cfg;
  cfg.coalesce_reads = false;
  Rig d(2, cfg);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/nosf");
    const auto payload = Rig::pattern(2 * kBs);
    (void)co_await dd.client->write(*f, 0, payload);
    for (auto& m : dd.mcds) m->cache().flush_all();
    std::vector<Task<void>> readers;
    for (int i = 0; i < 3; ++i) {
      readers.push_back([](Rig& rr, fsapi::OpenFile fd,
                           Buffer want) -> Task<void> {
        auto r = co_await rr.client->read(fd, 0, 2 * kBs);
        EXPECT_TRUE(r.has_value());
        if (r) { EXPECT_EQ(*r, want); }
      }(dd, *f, payload));
    }
    co_await sim::when_all(dd.loop, std::move(readers));
  }(d));
  EXPECT_EQ(d.cmcache->stats().coalesced_waiters, 0u);
  EXPECT_EQ(d.cmcache->stats().range_fetches, 3u);
}

// --- the paper baseline knob ---

TEST(MissPath, PartialHitOffRestoresForwardOnAnyMiss) {
  ImcaConfig cfg;
  cfg.partial_hit_reads = false;
  Rig d(2, cfg);
  d.run([](Rig& dd) -> Task<void> {
    auto f = co_await dd.client->create("/base");
    (void)co_await dd.client->write(*f, 0, Rig::pattern(4 * kBs));
    dd.evict("/base", 2);
    auto r = co_await dd.client->read(*f, 0, 4 * kBs);
    EXPECT_TRUE(r.has_value());
  }(d));
  // The paper's path: one miss discards three hits, no splicing happens.
  EXPECT_EQ(d.cmcache->stats().reads_forwarded, 1u);
  EXPECT_EQ(d.cmcache->stats().reads_partial, 0u);
  EXPECT_EQ(d.cmcache->stats().range_fetches, 0u);
}

}  // namespace
}  // namespace imca::core
