// Unit tests for src/common: error codes, Expected, CRC32, byte codecs, RNG,
// stats and the table printer.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/bytebuf.h"
#include "common/crc32.h"
#include "common/errc.h"
#include "common/expected.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace imca {
namespace {

// --- errc ---

TEST(Errc, NamesAreStable) {
  EXPECT_EQ(errc_name(Errc::kOk), "OK");
  EXPECT_EQ(errc_name(Errc::kNoEnt), "NOENT");
  EXPECT_EQ(errc_name(Errc::kTooBig), "TOOBIG");
  EXPECT_EQ(errc_name(Errc::kConnRefused), "CONNREFUSED");
}

TEST(Errc, OkPredicate) {
  EXPECT_TRUE(ok(Errc::kOk));
  EXPECT_FALSE(ok(Errc::kIo));
}

// --- Expected ---

TEST(Expected, HoldsValue) {
  Expected<int> e = 42;
  ASSERT_TRUE(e);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.error(), Errc::kOk);
}

TEST(Expected, HoldsError) {
  Expected<int> e = Errc::kNoEnt;
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error(), Errc::kNoEnt);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, VoidSpecialisation) {
  Expected<void> good;
  EXPECT_TRUE(good);
  Expected<void> bad = Errc::kIo;
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.error(), Errc::kIo);
}

TEST(Expected, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> e = std::make_unique<int>(7);
  ASSERT_TRUE(e);
  auto p = std::move(e).value();
  EXPECT_EQ(*p, 7);
}

// --- CRC32 ---

TEST(Crc32, KnownVectors) {
  // Reference values from zlib's crc32().
  EXPECT_EQ(crc32(std::string_view("")), 0x00000000u);
  EXPECT_EQ(crc32(std::string_view("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(std::string_view("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, ByteSpanMatchesStringView) {
  const std::string s = "/data/file42:stat";
  EXPECT_EQ(crc32(std::string_view(s)), crc32(std::span<const std::byte>(to_bytes(s))));
}

TEST(Crc32, LibmemcacheReduction) {
  // (crc >> 16) & 0x7fff must stay within 15 bits and match the formula.
  for (const char* key : {"a", "foo", "/some/path:0", "/some/path:stat"}) {
    const std::uint32_t h = libmemcache_hash(key);
    EXPECT_EQ(h, (crc32(std::string_view(key)) >> 16) & 0x7FFFu);
    EXPECT_LT(h, 0x8000u);
  }
}

TEST(Crc32, ReductionSpreadsKeys) {
  // Keys of the IMCa form path:offset should spread over server counts used
  // in the paper (1..6) without collapsing onto one daemon.
  for (std::size_t nservers : {2u, 4u, 6u}) {
    std::set<std::uint32_t> hit;
    for (int block = 0; block < 64; ++block) {
      std::string key = "/work/file7:" + std::to_string(block * 2048);
      hit.insert(static_cast<std::uint32_t>(libmemcache_hash(key) % nservers));
    }
    EXPECT_EQ(hit.size(), nservers) << "nservers=" << nservers;
  }
}

// --- ByteBuf ---

TEST(ByteBuf, RoundTripScalars) {
  ByteBuf b;
  b.put_u8(0xAB);
  b.put_u16(0xBEEF);
  b.put_u32(0xDEADBEEFu);
  b.put_u64(0x0123456789ABCDEFull);
  b.put_i64(-42);
  EXPECT_EQ(b.get_u8().value(), 0xAB);
  EXPECT_EQ(b.get_u16().value(), 0xBEEF);
  EXPECT_EQ(b.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(b.get_u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(b.get_i64().value(), -42);
  EXPECT_TRUE(b.exhausted());
}

TEST(ByteBuf, RoundTripStringsAndBytes) {
  ByteBuf b;
  b.put_string("hello");
  b.put_bytes(to_buffer("world"));
  b.put_raw("raw");
  EXPECT_EQ(b.get_string().value(), "hello");
  EXPECT_EQ(to_string(b.get_bytes().value()), "world");
  EXPECT_EQ(to_string(b.get_view(3).value()), "raw");
}

TEST(ByteBuf, PayloadViewsShareStorage) {
  // A payload spliced in and read back must be the same segment, not a copy.
  Buffer payload = to_buffer("payload-bytes");
  ByteBuf b;
  b.put_u32(7);
  b.put_buffer(payload);
  EXPECT_EQ(b.get_u32().value(), 7u);
  const auto& st = buffer_stats();
  const std::uint64_t copied_before = st.bytes_copied;
  Buffer view = b.get_view(payload.size()).value();
  EXPECT_EQ(st.bytes_copied, copied_before);  // slicing copies nothing
  EXPECT_TRUE(view.content_equals(payload));
  ASSERT_EQ(view.views().size(), 1u);
  EXPECT_EQ(view.views()[0].segment().bytes().data(),
            payload.views()[0].segment().bytes().data());
}

TEST(ByteBuf, UnderflowIsProtocolError) {
  ByteBuf b;
  b.put_u8(1);
  EXPECT_TRUE(b.get_u8());
  EXPECT_EQ(b.get_u32().error(), Errc::kProto);
  EXPECT_EQ(b.get_string().error(), Errc::kProto);
}

TEST(ByteBuf, TruncatedStringIsProtocolError) {
  ByteBuf b;
  b.put_u32(100);  // claims 100 bytes follow, but none do
  EXPECT_EQ(b.get_string().error(), Errc::kProto);
}

TEST(ByteBuf, SizeTracksEncodedBytes) {
  ByteBuf b;
  b.put_string("abcd");
  EXPECT_EQ(b.size(), 4u + 4u);  // u32 length prefix + payload
  b.put_u64(1);
  EXPECT_EQ(b.size(), 16u);
}

TEST(ByteBuf, RewindReplays) {
  ByteBuf b;
  b.put_u32(7);
  EXPECT_EQ(b.get_u32().value(), 7u);
  b.rewind();
  EXPECT_EQ(b.get_u32().value(), 7u);
}

// --- units ---

TEST(Units, TransferTimeExact) {
  // 1 MiB at 1 MiB/s is exactly one second.
  EXPECT_EQ(transfer_time(kMiB, kMiB), kSecond);
  // Zero bandwidth means "free" (used to disable a charge).
  EXPECT_EQ(transfer_time(12345, 0), 0u);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1 byte at 3 bytes/s: 333333333.33..ns must round up.
  EXPECT_EQ(transfer_time(1, 3), 333333334u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_micros(kMilli), 1000.0);
  EXPECT_DOUBLE_EQ(to_mib(5 * kMiB), 5.0);
}

// --- rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng r(9);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    lo_hit |= (v == 3);
    hi_hit |= (v == 6);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng base(5);
  Rng a = base.fork();
  Rng b = base.fork();
  EXPECT_NE(a.next(), b.next());
}

// --- hash ---

TEST(Hash, Fnv1aKnownValue) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Hash, SplitmixAvalanche) {
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(1) & 0xFFFF, splitmix64(2) & 0xFFFF);
}

// --- stats ---

TEST(Stats, CounterAccumulates) {
  Counter c;
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, MeanAccum) {
  MeanAccum m;
  m.add(1.0);
  m.add(3.0);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
}

TEST(Stats, HistogramMeanAndMax) {
  LatencyHistogram h;
  h.add(1000);
  h.add(3000);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 2000.0);
  EXPECT_EQ(h.max_ns(), 3000u);
}

TEST(Stats, HistogramPercentilesOrdered) {
  LatencyHistogram h;
  for (SimDuration v = 1; v <= 100000; v += 13) h.add(v);
  const double p50 = h.percentile_ns(0.50);
  const double p90 = h.percentile_ns(0.90);
  const double p99 = h.percentile_ns(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max_ns()) * 2.0);
}

TEST(Stats, FormatDurationUnits) {
  EXPECT_EQ(format_duration(500), "500ns");
  EXPECT_EQ(format_duration(1500), "1.50us");
  EXPECT_EQ(format_duration(2.5e6), "2.50ms");
  EXPECT_EQ(format_duration(3e9), "3.000s");
}

// --- table ---

TEST(Table, AlignsAndPrints) {
  Table t({"clients", "latency"});
  t.add_row({"1", Table::cell(12.345)});
  t.add_row({"64", Table::cell(std::uint64_t{99})});
  // Smoke: render into a memstream and check content.
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* f = open_memstream(&buf, &len);
  t.print(f);
  std::fclose(f);
  std::string s(buf, len);
  free(buf);
  EXPECT_NE(s.find("clients"), std::string::npos);
  EXPECT_NE(s.find("12.35"), std::string::npos);
  EXPECT_NE(s.find("99"), std::string::npos);
}

TEST(Table, CsvMode) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* f = open_memstream(&buf, &len);
  t.print_csv(f);
  std::fclose(f);
  std::string s(buf, len);
  free(buf);
  EXPECT_EQ(s, "a,b\n1,2\n");
}

}  // namespace
}  // namespace imca
