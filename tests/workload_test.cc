// Integration tests: testbed builders plus the three workload generators,
// exercising the same code paths the figure benches use — including the
// headline directional claims (IMCa stat scaling, cache-hit read latency).
#include <gtest/gtest.h>

#include "cluster/testbed.h"
#include "workload/iozone.h"
#include "workload/latency_bench.h"
#include "workload/stat_bench.h"

namespace imca::cluster {
namespace {

using workload::IozoneOptions;
using workload::LatencyOptions;
using workload::StatOptions;

std::vector<fsapi::FileSystemClient*> all_clients(GlusterTestbed& tb) {
  std::vector<fsapi::FileSystemClient*> out;
  for (std::size_t i = 0; i < tb.n_clients(); ++i) out.push_back(&tb.client(i));
  return out;
}

std::vector<fsapi::FileSystemClient*> all_clients(LustreTestbed& tb) {
  std::vector<fsapi::FileSystemClient*> out;
  for (std::size_t i = 0; i < tb.n_clients(); ++i) out.push_back(&tb.client(i));
  return out;
}

std::vector<fsapi::FileSystemClient*> all_clients(NfsTestbed& tb) {
  std::vector<fsapi::FileSystemClient*> out;
  for (std::size_t i = 0; i < tb.n_clients(); ++i) out.push_back(&tb.client(i));
  return out;
}

TEST(Testbed, NoCacheConfigHasNoImca) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 2;
  cfg.n_mcds = 0;
  GlusterTestbed tb(cfg);
  EXPECT_FALSE(tb.imca_enabled());
  EXPECT_EQ(tb.smcache(), nullptr);
}

TEST(Testbed, ImcaConfigWiresTranslators) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 3;
  cfg.n_mcds = 2;
  GlusterTestbed tb(cfg);
  EXPECT_TRUE(tb.imca_enabled());
  EXPECT_NE(tb.smcache(), nullptr);
  EXPECT_EQ(tb.n_mcds(), 2u);
  // Smoke: a file written by one client is readable by another via the bank.
  tb.run([](GlusterTestbed& t) -> sim::Task<void> {
    auto f = co_await t.client(0).create("/x");
    (void)co_await t.client(0).write(*f, 0, to_buffer("cross-client"));
    auto f2 = co_await t.client(1).open("/x");
    auto r = co_await t.client(1).read(*f2, 0, 12);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "cross-client"); }
  }(tb));
}

TEST(Latency, SmallReadsFasterWithImca) {
  auto read_1b = [](std::size_t n_mcds) {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 1;
    cfg.n_mcds = n_mcds;
    GlusterTestbed tb(cfg);
    LatencyOptions opt;
    opt.max_record = 4 * kKiB;
    opt.records_per_size = 64;
    const auto series =
        workload::run_latency_benchmark(tb.loop(), all_clients(tb), opt);
    return series.read_ns.at(1);
  };
  const double nocache = read_1b(0);
  const double imca = read_1b(1);
  EXPECT_LT(imca, nocache);  // Fig 6(a)'s direction
  EXPECT_GT(imca, 0.0);
}

TEST(Latency, SyncImcaWritesSlowerThanNoCache) {
  auto write_2k = [](std::size_t n_mcds, bool threaded) {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 1;
    cfg.n_mcds = n_mcds;
    cfg.imca.threaded_updates = threaded;
    GlusterTestbed tb(cfg);
    LatencyOptions opt;
    opt.max_record = 2 * kKiB;
    opt.records_per_size = 64;
    const auto series =
        workload::run_latency_benchmark(tb.loop(), all_clients(tb), opt);
    return series.write_ns.at(2 * kKiB);
  };
  const double nocache = write_2k(0, false);
  const double imca_sync = write_2k(1, false);
  const double imca_threaded = write_2k(1, true);
  // Fig 6(c): sync IMCa writes pay the read-back; the worker removes most
  // of that extra cost.
  EXPECT_GT(imca_sync, nocache);
  EXPECT_LT(imca_threaded, imca_sync);
}

TEST(Latency, SharedFileModeOnlyRootWrites) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 4;
  cfg.n_mcds = 1;
  GlusterTestbed tb(cfg);
  LatencyOptions opt;
  opt.max_record = 1 * kKiB;
  opt.records_per_size = 32;
  opt.shared_file = true;
  const auto series =
      workload::run_latency_benchmark(tb.loop(), all_clients(tb), opt);
  EXPECT_FALSE(series.read_ns.empty());
  // Only one file exists on the server.
  EXPECT_EQ(tb.server().object_store().file_count(), 1u);
}

TEST(Stat, ImcaCutsStatTimeWithManyClients) {
  auto run = [](std::size_t n_mcds) {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 8;
    cfg.n_mcds = n_mcds;
    GlusterTestbed tb(cfg);
    StatOptions opt;
    opt.n_files = 400;
    return workload::run_stat_benchmark(tb.loop(), all_clients(tb), opt)
        .max_node_seconds;
  };
  const double nocache = run(0);
  const double with_cache = run(2);
  EXPECT_LT(with_cache, nocache);  // Fig 5's direction
}

TEST(Stat, ReportsAllStatsIssued) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 3;
  cfg.n_mcds = 1;
  GlusterTestbed tb(cfg);
  StatOptions opt;
  opt.n_files = 100;
  const auto r = workload::run_stat_benchmark(tb.loop(), all_clients(tb), opt);
  EXPECT_EQ(r.total_stats, 300u);
  EXPECT_GT(r.max_node_seconds, 0.0);
}

TEST(Iozone, RunsOnAllThreeSystems) {
  IozoneOptions opt;
  opt.file_bytes = 4 * kMiB;
  opt.request_size = 256 * kKiB;

  GlusterTestbedConfig gcfg;
  gcfg.n_clients = 2;
  GlusterTestbed gtb(gcfg);
  const auto g = workload::run_iozone(gtb.loop(), all_clients(gtb), opt);
  EXPECT_GT(g.aggregate_read_mbps, 0.0);
  EXPECT_EQ(g.bytes_read, 2 * opt.file_bytes);

  LustreTestbedConfig lcfg;
  lcfg.n_clients = 2;
  lcfg.n_ds = 2;
  LustreTestbed ltb(lcfg);
  const auto l = workload::run_iozone(ltb.loop(), all_clients(ltb), opt);
  EXPECT_GT(l.aggregate_read_mbps, 0.0);

  NfsTestbedConfig ncfg;
  ncfg.n_clients = 2;
  NfsTestbed ntb(ncfg);
  const auto n = workload::run_iozone(ntb.loop(), all_clients(ntb), opt);
  EXPECT_GT(n.aggregate_read_mbps, 0.0);
}

TEST(Iozone, ModuloHashSpreadsBlocksOverMcds) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = 4;
  cfg.imca.hash = core::HashScheme::kModulo;
  GlusterTestbed tb(cfg);
  IozoneOptions opt;
  opt.file_bytes = 2 * kMiB;
  opt.request_size = 64 * kKiB;
  (void)workload::run_iozone(tb.loop(), all_clients(tb), opt);
  // Every daemon holds a share of the blocks (round-robin placement).
  for (std::size_t i = 0; i < tb.n_mcds(); ++i) {
    EXPECT_GT(tb.mcd(i).cache().item_count(), 100u) << "mcd " << i;
  }
}

TEST(Determinism, WholeWorkloadIsReproducible) {
  auto run = [] {
    GlusterTestbedConfig cfg;
    cfg.n_clients = 4;
    cfg.n_mcds = 2;
    GlusterTestbed tb(cfg);
    LatencyOptions opt;
    opt.max_record = 2 * kKiB;
    opt.records_per_size = 32;
    const auto series =
        workload::run_latency_benchmark(tb.loop(), all_clients(tb), opt);
    return std::pair{series.read_ns, tb.loop().now()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(McdTotals, AggregateCounters) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = 3;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& t) -> sim::Task<void> {
    auto f = co_await t.client(0).create("/agg");
    (void)co_await t.client(0).write(*f, 0, Buffer::zeros(32 * kKiB));
    (void)co_await t.client(0).read(*f, 0, 32 * kKiB);
  }(tb));
  const auto totals = tb.mcd_totals();
  EXPECT_GT(totals.cmd_set, 0u);
  EXPECT_GT(totals.get_hits, 0u);
  EXPECT_GT(totals.curr_items, 0u);
}

}  // namespace
}  // namespace imca::cluster
