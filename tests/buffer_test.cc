// Tests for the refcounted scatter-gather buffer layer (common/buffer.h):
// slice/concat semantics, segment-refcount lifetime, iterator behaviour,
// degenerate segment sizes, the copy ledger, and end-to-end copy-count
// regression budgets for the CMCache read path.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "common/buffer.h"
#include "common/bytebuf.h"
#include "imca/keys.h"

namespace imca {
namespace {

std::vector<std::byte> pattern_vec(std::size_t n, unsigned salt = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 7 + salt) & 0xFF);
  }
  return v;
}

// --- slice / concat ---

TEST(Buffer, SliceSharesSegmentsAndClamps) {
  const Buffer b = Buffer::of_string("hello, buffer world");
  const Buffer mid = b.slice(7, 6);
  EXPECT_EQ(to_string(mid), "buffer");
  // Same underlying segment, no new allocation.
  ASSERT_EQ(mid.views().size(), 1u);
  EXPECT_EQ(mid.views()[0].segment().bytes().data(),
            b.views()[0].segment().bytes().data());
  // Clamping: off past the end -> empty; length past the end -> truncated.
  EXPECT_TRUE(b.slice(100, 5).empty());
  EXPECT_EQ(to_string(b.slice(14, 100)), "world");
  EXPECT_EQ(to_string(b.slice(7)), "buffer world");  // npos default
}

TEST(Buffer, ConcatSplicesWithoutCopy) {
  const auto copied_before = buffer_stats().bytes_copied;
  Buffer a = Buffer::of_string("left|");   // of_string copies (the source)
  Buffer b = Buffer::of_string("right");
  const auto source_copies = buffer_stats().bytes_copied - copied_before;
  EXPECT_EQ(source_copies, 10u);  // only the two string materializations

  Buffer joined;
  joined.append(a);
  joined.append(std::move(b));
  EXPECT_EQ(joined.size(), 10u);
  EXPECT_EQ(joined.segment_count(), 2u);
  // The concatenation itself copied nothing (to_string below gathers, so
  // check the ledger first).
  EXPECT_EQ(buffer_stats().bytes_copied - copied_before, source_copies);
  EXPECT_EQ(to_string(joined), "left|right");
}

TEST(Buffer, SliceAcrossSegmentBoundary) {
  Buffer b;
  b.append(Buffer::of_string("aaaa"));
  b.append(Buffer::of_string("bbbb"));
  b.append(Buffer::of_string("cccc"));
  const Buffer cut = b.slice(2, 8);
  EXPECT_EQ(to_string(cut), "aabbbbcc");
  EXPECT_EQ(cut.segment_count(), 3u);
}

TEST(Buffer, SelfAppendDoublesContent) {
  Buffer b = Buffer::of_string("ab");
  b.append(b);
  EXPECT_EQ(to_string(b), "abab");
  // NOLINTNEXTLINE(imca-moved-buf): self-append; this test pins exactly
  // the guarantee that b stays valid through its own move.
  b.append(std::move(b));  // move-form self-append must also be safe
  // NOLINTNEXTLINE(imca-moved-buf): b is valid again after self-append.
  EXPECT_EQ(to_string(b), "abababab");
}

// --- refcount lifetime ---

TEST(Buffer, SliceOutlivesSourceBuffer) {
  Buffer view;
  const std::byte* storage = nullptr;
  {
    Buffer owner = Buffer::take(pattern_vec(4096));
    storage = owner.views()[0].segment().bytes().data();
    view = owner.slice(1000, 2000);
  }  // owner destroyed; the segment must survive via view's refcount
  ASSERT_EQ(view.size(), 2000u);
  EXPECT_EQ(view.views()[0].segment().bytes().data(), storage);
  const auto expect = pattern_vec(4096);
  EXPECT_TRUE(view.content_equals(
      std::span<const std::byte>(expect).subspan(1000, 2000)));
}

TEST(Buffer, UseCountTracksHandles) {
  Buffer a = Buffer::take(pattern_vec(64));
  EXPECT_EQ(a.views()[0].segment().use_count(), 1);
  Buffer b = a.slice(0, 32);
  EXPECT_EQ(a.views()[0].segment().use_count(), 2);
  b = Buffer{};
  EXPECT_EQ(a.views()[0].segment().use_count(), 1);
}

// --- iterators ---

TEST(Buffer, IteratorWalksAcrossSegmentsSkippingNone) {
  Buffer b;
  b.append(Buffer::of_string("xy"));
  b.append(Buffer::of_string("z"));
  std::string out;
  for (const std::byte byte : b) out.push_back(static_cast<char>(byte));
  EXPECT_EQ(out, "xyz");
}

TEST(Buffer, IteratorValidWhileOtherHandlesDie) {
  // Iterators hold the buffer they came from; dropping *other* handles to
  // the same segments must not invalidate them.
  Buffer b;
  {
    Buffer tmp = Buffer::of_string("shared");
    b.append(tmp);
  }  // tmp gone; b's views keep the segment alive
  std::string out;
  for (auto it = b.begin(); it != b.end(); ++it) {
    out.push_back(static_cast<char>(*it));
  }
  EXPECT_EQ(out, "shared");
}

TEST(Buffer, AppendInvalidatesIteratorsBySpec) {
  // Not a UB probe — just pin the documented rule: take iterators *after*
  // the last append. end() taken before an append no longer terminates the
  // same range, so the idiom below (fresh begin/end) is the supported one.
  Buffer b = Buffer::of_string("ab");
  b.append(Buffer::of_string("cd"));
  std::string out;
  for (const std::byte byte : b) out.push_back(static_cast<char>(byte));
  EXPECT_EQ(out, "abcd");
}

// --- degenerate segment sizes ---

TEST(Buffer, EmptyAppendIsNoOp) {
  Buffer b;
  b.append(Buffer{});
  b.append(BufView{});
  b.append(Buffer::of_string(""));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.segment_count(), 0u);
  EXPECT_EQ(b.begin(), b.end());
  EXPECT_TRUE(b.slice(0, 10).empty());
  EXPECT_TRUE(b.content_equals(Buffer{}));
}

TEST(Buffer, OneByteSegments) {
  Buffer b;
  for (char c : std::string("byte")) {
    b.append(Buffer::of_string(std::string(1, c)));
  }
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.segment_count(), 4u);
  EXPECT_EQ(to_string(b), "byte");
  EXPECT_EQ(b.at(2), static_cast<std::byte>('t'));
  EXPECT_EQ(b.find("te"), 2u);       // match spans two 1-byte segments
  EXPECT_TRUE(b.ends_with("yte"));
}

TEST(Buffer, MegabyteBoundarySegments) {
  // Two 1-MiB segments; operations straddling the exact boundary.
  Buffer b;
  b.append(Buffer::take(pattern_vec(1 * kMiB, 1)));
  b.append(Buffer::take(pattern_vec(1 * kMiB, 2)));
  ASSERT_EQ(b.size(), 2 * kMiB);

  const Buffer straddle = b.slice(kMiB - 1, 2);
  EXPECT_EQ(straddle.size(), 2u);
  EXPECT_EQ(straddle.at(0), static_cast<std::byte>(((kMiB - 1) * 7 + 1) & 0xFF));
  EXPECT_EQ(straddle.at(1), static_cast<std::byte>(2 & 0xFF));

  // contiguous() can serve within one segment but not across the boundary.
  EXPECT_EQ(b.contiguous(0, kMiB).size(), kMiB);
  EXPECT_EQ(b.contiguous(kMiB, 16).size(), 16u);
  EXPECT_TRUE(b.contiguous(kMiB - 8, 16).empty());

  std::vector<std::byte> mid(16);
  EXPECT_EQ(b.copy_to(kMiB - 8, mid), 16u);
  EXPECT_EQ(mid[7], static_cast<std::byte>(((kMiB - 1) * 7 + 1) & 0xFF));
  EXPECT_EQ(mid[8], static_cast<std::byte>(2 & 0xFF));
}

// --- the ledger and the ablation switch ---

TEST(Buffer, GatherIsTheCountedMaterialization) {
  const Buffer b = Buffer::take(pattern_vec(4096));
  const auto gathers_before = buffer_stats().gather_calls;
  const auto copied_before = buffer_stats().bytes_copied;
  const auto out = b.gather();
  EXPECT_EQ(buffer_stats().gather_calls, gathers_before + 1);
  EXPECT_EQ(buffer_stats().bytes_copied, copied_before + 4096);
  EXPECT_TRUE(b.content_equals(out));
}

TEST(Buffer, LegacyCopyPathRestoresCopyPerHop) {
  const Buffer src = Buffer::take(pattern_vec(1024));
  set_legacy_copy_path(true);
  const auto copied_before = buffer_stats().bytes_copied;
  Buffer hop1;
  hop1.append(Buffer::of_string("hdr)"));
  hop1.append(src);                      // copy 1 (append to non-empty)
  const Buffer hop2 = hop1.slice(4, 1024);  // copy 2 (slice)
  set_legacy_copy_path(false);
  EXPECT_GE(buffer_stats().bytes_copied - copied_before, 2 * 1024u);
  EXPECT_TRUE(hop2.content_equals(src));  // behaviour identical, cost not
  // And the segments are genuinely distinct storage.
  EXPECT_NE(hop2.views()[0].segment().bytes().data(),
            src.views()[0].segment().bytes().data());
}

// --- end-to-end copy budgets (the acceptance regression) ---

constexpr std::uint64_t kBlock = 2 * kKiB;
constexpr std::size_t kBlocks = 8;
constexpr const char* kPath = "/budget/file";

struct ReadLedger {
  std::uint64_t bytes_copied = 0;
  std::uint64_t gather_calls = 0;
};

// Seed an 8-block file through the write path (SMCache publishes every
// block), optionally evict some blocks, then measure the ledger across one
// whole-file read.
ReadLedger measure_read(std::size_t evict_from) {
  cluster::GlusterTestbedConfig cfg;
  cfg.n_clients = 1;
  cfg.n_mcds = 2;
  cfg.imca.block_size = kBlock;
  cluster::GlusterTestbed tb(cfg);
  ReadLedger out;
  tb.run([](cluster::GlusterTestbed& t, std::size_t first,
            ReadLedger& led) -> sim::Task<void> {
    auto f = co_await t.client(0).create(kPath);
    (void)co_await t.client(0).write(*f, 0,
                                     Buffer::take(pattern_vec(kBlocks * kBlock)));
    for (std::size_t b = first; b < kBlocks; ++b) {
      const std::string key = core::data_key(kPath, b * kBlock);
      for (std::size_t m = 0; m < t.n_mcds(); ++m) {
        (void)t.mcd(m).cache().del(key);
      }
    }
    const auto before = buffer_stats();
    auto r = co_await t.client(0).read(*f, 0, kBlocks * kBlock);
    // Let fire-and-forget read-repair sets land inside the window too: the
    // budget covers the whole read, not just the foreground path.
    co_await t.loop().sleep(1 * kMilli);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(r->size(), kBlocks * kBlock); }
    led.bytes_copied = buffer_stats().bytes_copied - before.bytes_copied;
    led.gather_calls = buffer_stats().gather_calls - before.gather_calls;
  }(tb, evict_from, out));
  return out;
}

TEST(CopyBudget, FullyCachedReadCopiesAtMostOnePayload) {
  // Acceptance: a fully-cached CMCache read moves each payload byte at most
  // once (and here the caller never gathers, so the data path itself copies
  // only protocol header text — far under one payload).
  const ReadLedger led = measure_read(kBlocks);  // evict nothing
  const std::uint64_t payload = kBlocks * kBlock;
  EXPECT_LE(led.bytes_copied, payload) << "copied " << led.bytes_copied;
  // Header-only traffic: well under half a payload.
  EXPECT_LT(led.bytes_copied, payload / 2) << "copied " << led.bytes_copied;
  EXPECT_EQ(led.gather_calls, 0u);
}

TEST(CopyBudget, ColdPartialHitReadStaysUnderBudget) {
  // 4 of 8 blocks evicted: the server materializes the missing range once
  // (ObjectStore read = one counted source copy of 8 KiB); everything else
  // — cached blocks, wire payloads, assembly, repair — is spliced views.
  // Budget: the fetched bytes once, plus one block of header slack.
  const ReadLedger led = measure_read(kBlocks / 2);
  const std::uint64_t fetched = (kBlocks / 2) * kBlock;
  EXPECT_LE(led.bytes_copied, fetched + kBlock)
      << "copied " << led.bytes_copied << " fetched " << fetched;
  EXPECT_EQ(led.gather_calls, 0u);
}

}  // namespace
}  // namespace imca
