// cluster/replicate unit drills (DESIGN.md §5i): quorum commit with a dead
// minority, clean failure when the majority is gone, dirty children excluded
// from reads until self-heal copies them back to byte-equality, heal
// propagating unlinks, and unanimous definite rejection surfacing as the
// child error instead of a quorum failure.
//
// Note: gtest ASSERT_* macros use `return` and cannot appear inside a
// coroutine body, so the tests guard with EXPECT_* + early co_return.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gluster/protocol_client.h"
#include "gluster/replicate.h"
#include "gluster/server.h"
#include "net/rpc.h"
#include "net/transport.h"

namespace imca {
namespace {

using sim::EventLoop;
using sim::Task;

constexpr std::size_t kReplicas = 3;

class ReplicateTest : public ::testing::Test {
 public:  // coroutine lambdas reach in by reference
  ReplicateTest() : fabric_(loop_, net::ipoib_rc()), rpc_(fabric_) {
    for (std::size_t i = 0; i < kReplicas; ++i) {
      fabric_.add_node("brick" + std::to_string(i));
    }
    fabric_.add_node("client");
  }

  void build() {
    std::vector<std::unique_ptr<gluster::ProtocolClient>> conns;
    for (std::size_t i = 0; i < kReplicas; ++i) {
      servers_.push_back(
          std::make_unique<gluster::GlusterServer>(rpc_, i, server_params_));
      servers_.back()->start();
      conns.push_back(std::make_unique<gluster::ProtocolClient>(
          rpc_, kReplicas, i));  // client rides the last node
    }
    afr_ = std::make_unique<gluster::ReplicateXlator>(loop_, std::move(conns));
  }

  void run(Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  EventLoop loop_;
  net::Fabric fabric_;
  net::RpcSystem rpc_;
  gluster::GlusterServerParams server_params_;
  std::vector<std::unique_ptr<gluster::GlusterServer>> servers_;
  std::unique_ptr<gluster::ReplicateXlator> afr_;
};

TEST_F(ReplicateTest, QuorumCommitsWithOneReplicaDown) {
  build();
  run([](ReplicateTest& t) -> Task<void> {
    auto& afr = *t.afr_;
    EXPECT_TRUE((co_await afr.create("/f", 0644)).has_value());
    EXPECT_TRUE((co_await afr.write("/f", 0, to_buffer("v1"))).has_value());

    t.servers_[2]->crash();
    auto w = co_await afr.write("/f", 0, to_buffer("v2"));
    EXPECT_TRUE(w.has_value());  // 2-of-3 is quorum

    EXPECT_TRUE(afr.fresh(0, "/f"));
    EXPECT_TRUE(afr.fresh(1, "/f"));
    EXPECT_FALSE(afr.fresh(2, "/f"));  // missed the committed write

    auto r = co_await afr.read("/f", 0, 2);
    EXPECT_TRUE(r.has_value());
    if (r) { EXPECT_EQ(to_string(*r), "v2"); }
  }(*this));
  EXPECT_GE(afr_->stats().partial_acks, 1u);
  EXPECT_EQ(afr_->stats().quorum_short_writes, 0u);
}

TEST_F(ReplicateTest, QuorumLostWithMajorityDownThenHealConverges) {
  build();
  run([](ReplicateTest& t) -> Task<void> {
    auto& afr = *t.afr_;
    EXPECT_TRUE((co_await afr.create("/f", 0644)).has_value());
    EXPECT_TRUE((co_await afr.write("/f", 0, to_buffer("old!"))).has_value());

    t.servers_[1]->crash();
    t.servers_[2]->crash();
    auto w = co_await afr.write("/f", 0, to_buffer("new!"));
    EXPECT_FALSE(w.has_value());  // 1-of-3 cannot commit
    EXPECT_EQ(afr.stats().quorum_short_writes, 1u);

    // The failed mutation still touched child 0; once the majority is back,
    // heal must converge all three copies to byte-equality again.
    t.servers_[1]->restart();
    t.servers_[2]->restart();
    const auto report = co_await afr.heal_all();
    EXPECT_EQ(report.remaining, 0u);
    std::string first;
    for (std::size_t i = 0; i < kReplicas; ++i) {
      EXPECT_TRUE(afr.fresh(i, "/f"));
      auto r = co_await afr.read_from(i, "/f", 0, 4);
      EXPECT_TRUE(r.has_value());
      if (!r) co_return;
      if (i == 0) {
        first = to_string(*r);
      } else {
        EXPECT_EQ(to_string(*r), first);
      }
    }
  }(*this));
}

TEST_F(ReplicateTest, DirtyChildExcludedUntilHealedByteIdentical) {
  build();
  run([](ReplicateTest& t) -> Task<void> {
    auto& afr = *t.afr_;
    EXPECT_TRUE((co_await afr.create("/f", 0644)).has_value());
    EXPECT_TRUE((co_await afr.write("/f", 0, to_buffer("aaaa"))).has_value());

    t.servers_[2]->crash();
    EXPECT_TRUE((co_await afr.write("/f", 0, to_buffer("bbbb"))).has_value());
    t.servers_[2]->restart();

    // The rejoined child still holds the stale bytes on disk...
    auto stale = co_await afr.read_from(2, "/f", 0, 4);
    EXPECT_TRUE(stale.has_value());
    if (stale) { EXPECT_EQ(to_string(*stale), "aaaa"); }
    // ...so reads must not touch it: every read serves the committed bytes.
    for (int i = 0; i < 8; ++i) {
      auto r = co_await afr.read("/f", 0, 4);
      EXPECT_TRUE(r.has_value());
      if (r) { EXPECT_EQ(to_string(*r), "bbbb"); }
    }

    const auto report = co_await afr.heal_all();
    EXPECT_GE(report.healed, 1u);
    EXPECT_EQ(report.remaining, 0u);
    EXPECT_TRUE(afr.fresh(2, "/f"));
    auto healed = co_await afr.read_from(2, "/f", 0, 4);
    EXPECT_TRUE(healed.has_value());
    if (healed) { EXPECT_EQ(to_string(*healed), "bbbb"); }
    auto st = co_await afr.stat_from(2, "/f");
    EXPECT_TRUE(st.has_value());
    if (st) { EXPECT_EQ(st->size, 4u); }
  }(*this));
  EXPECT_GE(afr_->stats().heals_completed, 1u);
  EXPECT_GT(afr_->stats().heal_bytes_copied, 0u);
}

TEST_F(ReplicateTest, HealPropagatesUnlinkToRejoinedChild) {
  build();
  run([](ReplicateTest& t) -> Task<void> {
    auto& afr = *t.afr_;
    EXPECT_TRUE((co_await afr.create("/g", 0644)).has_value());
    EXPECT_TRUE((co_await afr.write("/g", 0, to_buffer("doomed"))).has_value());

    t.servers_[2]->crash();
    EXPECT_TRUE((co_await afr.unlink("/g")).has_value());
    t.servers_[2]->restart();

    // The rejoined child still has the file; heal must delete, not copy.
    EXPECT_TRUE(t.servers_[2]->object_store().exists("/g"));
    const auto report = co_await afr.heal_all();
    EXPECT_GE(report.healed, 1u);
    EXPECT_EQ(report.remaining, 0u);
    auto st = co_await afr.stat_from(2, "/g");
    EXPECT_FALSE(st.has_value());
    if (!st) { EXPECT_EQ(st.error(), Errc::kNoEnt); }
  }(*this));
}

TEST_F(ReplicateTest, UnanimousRejectionIsChildErrorNotQuorumFailure) {
  build();
  run([](ReplicateTest& t) -> Task<void> {
    auto& afr = *t.afr_;
    auto u = co_await afr.unlink("/never-created");
    EXPECT_FALSE(u.has_value());
    if (!u) { EXPECT_EQ(u.error(), Errc::kNoEnt); }
  }(*this));
  // All three children definitively rejected: that is the answer, not a
  // replication failure, and no child was marked dirty by it.
  EXPECT_EQ(afr_->stats().quorum_short_writes, 0u);
  for (std::size_t i = 0; i < kReplicas; ++i) {
    EXPECT_EQ(afr_->dirty_paths(i), 0u);
  }
}

}  // namespace
}  // namespace imca
