// Property tests for the storage substrate:
//  * PageCache behaves exactly like a reference LRU over (file,page) keys
//    under random op sequences;
//  * SlabAllocator accounting invariants hold under random alloc/free churn.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "common/rng.h"
#include "memcache/slab.h"
#include "store/page_cache.h"

namespace imca {
namespace {

// Minimal, obviously-correct LRU used as the oracle.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  bool contains(std::uint64_t key) const { return map_.contains(key); }

  void touch(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) return;
    while (map_.size() >= capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(key);
    map_[key] = order_.begin();
  }

  void erase_if(const std::function<bool(std::uint64_t)>& pred) {
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(*it)) {
        map_.erase(*it);
        it = order_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

std::uint64_t key_of(std::uint64_t file, std::uint64_t page) {
  return file * 1000003 + page;
}

class PageCacheVsLru : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageCacheVsLru, RandomOpsMatchReferenceModel) {
  const std::size_t cap_pages = GetParam();
  store::PageCache cache(cap_pages * store::PageCache::kPageSize);
  ReferenceLru oracle(cap_pages);
  Rng rng(0xCAFE + cap_pages);

  constexpr std::uint64_t kFiles = 4;
  constexpr std::uint64_t kPages = 24;
  constexpr std::uint64_t kPage = store::PageCache::kPageSize;

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t file = rng.below(kFiles);
    const std::uint64_t page = rng.below(kPages);
    switch (rng.below(4)) {
      case 0: {  // access one page: promotes into both
        const bool oracle_hit = oracle.contains(key_of(file, page));
        const auto missed = cache.access(file, page * kPage, kPage);
        ASSERT_EQ(missed == 0, oracle_hit)
            << "step " << step << " f" << file << " p" << page;
        oracle.touch(key_of(file, page));
        break;
      }
      case 1: {  // access a multi-page run
        const std::uint64_t n = 1 + rng.below(4);
        std::uint64_t expect_missing = 0;
        for (std::uint64_t p = page; p < page + n; ++p) {
          if (!oracle.contains(key_of(file, p))) ++expect_missing;
          oracle.touch(key_of(file, p));
        }
        const auto missed = cache.access(file, page * kPage, n * kPage);
        ASSERT_EQ(missed, expect_missing * kPage) << "step " << step;
        break;
      }
      case 2: {  // covered() must agree and not perturb LRU order
        const bool covered = cache.covered(file, page * kPage, kPage);
        ASSERT_EQ(covered, oracle.contains(key_of(file, page)))
            << "step " << step;
        break;
      }
      case 3: {  // invalidate a whole file
        if (rng.below(8) != 0) break;  // rare, like real unlinks
        cache.invalidate(file);
        oracle.erase_if([&](std::uint64_t k) {
          return k / 1000003 == file;
        });
        break;
      }
    }
    ASSERT_EQ(cache.resident_pages(), oracle.size()) << "step " << step;
    ASSERT_LE(cache.resident_pages(), cap_pages);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, PageCacheVsLru,
                         ::testing::Values(1, 4, 16, 64));

TEST(SlabProperty, AccountingInvariantsUnderChurn) {
  memcache::SlabAllocator slabs(8 * kMiB);
  Rng rng(77);
  // used chunks we hold per class
  std::unordered_map<std::uint32_t, std::uint64_t> held;
  std::uint64_t total_held = 0;

  for (int step = 0; step < 20000; ++step) {
    if (rng.chance(0.6) || total_held == 0) {
      const std::uint64_t size = 64 + rng.below(200 * 1024);
      auto cls = slabs.class_for(size);
      ASSERT_TRUE(cls.has_value());
      ASSERT_GE(slabs.chunk_size(*cls), size);
      if (slabs.alloc(*cls)) {
        ++held[*cls];
        ++total_held;
      } else {
        // Full: committed memory must actually be at the limit.
        ASSERT_GT(slabs.committed() + kMiB, slabs.memory_limit());
      }
    } else {
      // Free a random held chunk.
      auto it = held.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(held.size())));
      slabs.free(it->first);
      --total_held;
      if (--it->second == 0) held.erase(it);
    }

    // Invariants: per-class used matches what we hold; committed pages never
    // exceed the memory limit; used+free chunks fit in committed pages.
    ASSERT_LE(slabs.committed(), slabs.memory_limit());
    std::uint64_t used_total = 0;
    for (std::uint32_t c = 0; c < slabs.num_classes(); ++c) {
      used_total += slabs.used_chunks(c);
      const auto chunk = slabs.chunk_size(c);
      ASSERT_LE((slabs.used_chunks(c) + slabs.free_chunks(c)) * chunk,
                slabs.committed());
    }
    ASSERT_EQ(used_total, total_held);
  }
}

}  // namespace
}  // namespace imca
