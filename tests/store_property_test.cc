// Property tests for the storage substrate:
//  * PageCache behaves exactly like a reference LRU over (file,page) keys
//    under random op sequences — trace-based, so a failure is shrunk to a
//    minimal op sequence (tests/harness/shrink.h) and printed with its seed;
//  * SlabAllocator accounting invariants hold under random alloc/free churn.
#include <gtest/gtest.h>

#include <cstdio>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "harness/shrink.h"
#include "memcache/slab.h"
#include "store/page_cache.h"

namespace imca {
namespace {

// Minimal, obviously-correct LRU used as the oracle.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  bool contains(std::uint64_t key) const { return map_.contains(key); }

  void touch(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) return;
    while (map_.size() >= capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(key);
    map_[key] = order_.begin();
  }

  void erase_if(const std::function<bool(std::uint64_t)>& pred) {
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(*it)) {
        map_.erase(*it);
        it = order_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

std::uint64_t key_of(std::uint64_t file, std::uint64_t page) {
  return file * 1000003 + page;
}

// --- trace-based PageCache-vs-LRU property ---
//
// Ops are plain data so a failing sequence can be shrunk: any subsequence of
// a trace is itself a valid trace (every op is self-contained).

struct LruOp {
  enum class Kind : std::uint8_t {
    kAccess,      // access one page: promotes into both cache and oracle
    kAccessRun,   // access an `n`-page run
    kCovered,     // covered() must agree and not perturb LRU order
    kInvalidate,  // drop a whole file
  };
  Kind kind = Kind::kAccess;
  std::uint64_t file = 0;
  std::uint64_t page = 0;
  std::uint64_t n = 1;
};

std::string format_lru_op(const LruOp& op) {
  switch (op.kind) {
    case LruOp::Kind::kAccess:
      return "A f" + std::to_string(op.file) + " p" + std::to_string(op.page);
    case LruOp::Kind::kAccessRun:
      return "R f" + std::to_string(op.file) + " p" +
             std::to_string(op.page) + " n" + std::to_string(op.n);
    case LruOp::Kind::kCovered:
      return "C f" + std::to_string(op.file) + " p" + std::to_string(op.page);
    case LruOp::Kind::kInvalidate:
      return "I f" + std::to_string(op.file);
  }
  return "?";
}

// Same op mix the pre-trace version of this test used.
std::vector<LruOp> generate_lru_ops(std::uint64_t seed, std::size_t n_ops) {
  Rng rng(seed);
  constexpr std::uint64_t kFiles = 4;
  constexpr std::uint64_t kPages = 24;
  std::vector<LruOp> ops;
  ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    LruOp op;
    op.file = rng.below(kFiles);
    op.page = rng.below(kPages);
    switch (rng.below(4)) {
      case 0:
        op.kind = LruOp::Kind::kAccess;
        break;
      case 1:
        op.kind = LruOp::Kind::kAccessRun;
        op.n = 1 + rng.below(4);
        break;
      case 2:
        op.kind = LruOp::Kind::kCovered;
        break;
      case 3:
        if (rng.below(8) != 0) {  // rare, like real unlinks
          op.kind = LruOp::Kind::kAccess;
        } else {
          op.kind = LruOp::Kind::kInvalidate;
        }
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

// Replay `trace` against a fresh cache + oracle pair; nullopt = all
// invariants held, otherwise the index and a description of the first
// divergence.
struct LruFailure {
  std::size_t op_index = 0;
  std::string detail;
};

std::optional<LruFailure> replay_lru(const std::vector<LruOp>& trace,
                                     std::size_t cap_pages) {
  constexpr std::uint64_t kPage = store::PageCache::kPageSize;
  store::PageCache cache(cap_pages * kPage);
  ReferenceLru oracle(cap_pages);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LruOp& op = trace[i];
    switch (op.kind) {
      case LruOp::Kind::kAccess: {
        const bool oracle_hit = oracle.contains(key_of(op.file, op.page));
        const auto missed = cache.access(op.file, op.page * kPage, kPage);
        if ((missed == 0) != oracle_hit) {
          return LruFailure{i, "access hit/miss disagrees with oracle"};
        }
        oracle.touch(key_of(op.file, op.page));
        break;
      }
      case LruOp::Kind::kAccessRun: {
        std::uint64_t expect_missing = 0;
        for (std::uint64_t p = op.page; p < op.page + op.n; ++p) {
          if (!oracle.contains(key_of(op.file, p))) ++expect_missing;
          oracle.touch(key_of(op.file, p));
        }
        const auto missed = cache.access(op.file, op.page * kPage,
                                         op.n * kPage);
        if (missed != expect_missing * kPage) {
          return LruFailure{i, "run missed " + std::to_string(missed) +
                                   " bytes, oracle expected " +
                                   std::to_string(expect_missing * kPage)};
        }
        break;
      }
      case LruOp::Kind::kCovered: {
        const bool covered = cache.covered(op.file, op.page * kPage, kPage);
        if (covered != oracle.contains(key_of(op.file, op.page))) {
          return LruFailure{i, "covered() disagrees with oracle"};
        }
        break;
      }
      case LruOp::Kind::kInvalidate: {
        cache.invalidate(op.file);
        oracle.erase_if(
            [&](std::uint64_t k) { return k / 1000003 == op.file; });
        break;
      }
    }
    if (cache.resident_pages() != oracle.size()) {
      return LruFailure{i, "resident_pages " +
                               std::to_string(cache.resident_pages()) +
                               " != oracle size " +
                               std::to_string(oracle.size())};
    }
    if (cache.resident_pages() > cap_pages) {
      return LruFailure{i, "capacity exceeded"};
    }
  }
  return std::nullopt;
}

class PageCacheVsLru : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageCacheVsLru, RandomOpsMatchReferenceModel) {
  const std::size_t cap_pages = GetParam();
  const std::uint64_t seed = 0xCAFE + cap_pages;
  const auto trace = generate_lru_ops(seed, 4000);

  const auto failure = replay_lru(trace, cap_pages);
  if (!failure) return;

  // Shrink to a minimal failing subsequence and print a reproducible trace.
  const auto minimized =
      harness::shrink_trace(trace, [&](const std::vector<LruOp>& candidate) {
        return replay_lru(candidate, cap_pages).has_value();
      });
  std::string dump;
  for (std::size_t i = 0; i < minimized.size(); ++i) {
    dump += "  [" + std::to_string(i) + "] " + format_lru_op(minimized[i]) +
            "\n";
  }
  std::fprintf(stderr,
               "PageCacheVsLru FAILED: seed=%llu cap=%llu op %llu: %s\n"
               "minimized trace (%llu ops):\n%s",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(cap_pages),
               static_cast<unsigned long long>(failure->op_index),
               failure->detail.c_str(),
               static_cast<unsigned long long>(minimized.size()),
               dump.c_str());
  FAIL() << "op " << failure->op_index << ": " << failure->detail
         << " (seed " << seed << ", minimized to " << minimized.size()
         << " ops above)";
}

INSTANTIATE_TEST_SUITE_P(Capacities, PageCacheVsLru,
                         ::testing::Values(1, 4, 16, 64));

TEST(SlabProperty, AccountingInvariantsUnderChurn) {
  memcache::SlabAllocator slabs(8 * kMiB);
  Rng rng(77);
  // used chunks we hold per class
  std::unordered_map<std::uint32_t, std::uint64_t> held;
  std::uint64_t total_held = 0;

  for (int step = 0; step < 20000; ++step) {
    if (rng.chance(0.6) || total_held == 0) {
      const std::uint64_t size = 64 + rng.below(200 * 1024);
      auto cls = slabs.class_for(size);
      ASSERT_TRUE(cls.has_value());
      ASSERT_GE(slabs.chunk_size(*cls), size);
      if (slabs.alloc(*cls)) {
        ++held[*cls];
        ++total_held;
      } else {
        // Full: committed memory must actually be at the limit.
        ASSERT_GT(slabs.committed() + kMiB, slabs.memory_limit());
      }
    } else {
      // Free a random held chunk.
      auto it = held.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(held.size())));
      slabs.free(it->first);
      --total_held;
      if (--it->second == 0) held.erase(it);
    }

    // Invariants: per-class used matches what we hold; committed pages never
    // exceed the memory limit; used+free chunks fit in committed pages.
    ASSERT_LE(slabs.committed(), slabs.memory_limit());
    std::uint64_t used_total = 0;
    for (std::uint32_t c = 0; c < slabs.num_classes(); ++c) {
      used_total += slabs.used_chunks(c);
      const auto chunk = slabs.chunk_size(c);
      ASSERT_LE((slabs.used_chunks(c) + slabs.free_chunks(c)) * chunk,
                slabs.committed());
    }
    ASSERT_EQ(used_total, total_held);
  }
}

}  // namespace
}  // namespace imca
