// Edge-case tests for the DES kernel and primitives that the main sim suite
// does not cover: exception propagation through tasks, deadline semantics,
// waiter ordering under mixed primitives, resource stat resets, and deep
// spawn fan-out.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/event_loop.h"
#include "sim/resource.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace imca::sim {
namespace {

Task<int> thrower() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable; establishes the coroutine body
}

TEST(TaskEdge, ExceptionPropagatesThroughAwait) {
  EventLoop loop;
  bool caught = false;
  loop.spawn([](bool& c) -> Task<void> {
    try {
      (void)co_await thrower();
    } catch (const std::runtime_error& e) {
      c = std::string(e.what()) == "boom";
    }
  }(caught));
  loop.run();
  EXPECT_TRUE(caught);
}

TEST(TaskEdge, ExceptionCrossesTwoAwaitLevels) {
  EventLoop loop;
  bool caught = false;
  auto middle = []() -> Task<int> { co_return co_await thrower() + 1; };
  loop.spawn([](bool& c, decltype(middle)& mid) -> Task<void> {
    try {
      (void)co_await mid();
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(caught, middle));
  loop.run();
  EXPECT_TRUE(caught);
}

TEST(TaskEdge, UnawaitedTaskNeverRuns) {
  // Tasks are lazy: constructing one without awaiting it must not execute
  // the body (and must not leak — ASAN-clean by frame destruction).
  bool ran = false;
  {
    auto t = [](bool& r) -> Task<void> {
      r = true;
      co_return;
    }(ran);
    EXPECT_TRUE(t.valid());
  }  // destroyed unstarted
  EXPECT_FALSE(ran);
}

TEST(EventLoopEdge, RunUntilProcessesEventsAtExactDeadline) {
  EventLoop loop;
  bool at_deadline = false, after = false;
  loop.spawn([](EventLoop& l, bool& a) -> Task<void> {
    co_await l.sleep(100);
    a = true;
  }(loop, at_deadline));
  loop.spawn([](EventLoop& l, bool& b) -> Task<void> {
    co_await l.sleep(101);
    b = true;
  }(loop, after));
  loop.run_until(100);
  EXPECT_TRUE(at_deadline);   // inclusive
  EXPECT_FALSE(after);        // exclusive beyond
  loop.run();
  EXPECT_TRUE(after);
}

TEST(EventLoopEdge, SleepUntilPastTimeFiresNow) {
  EventLoop loop;
  SimTime woke = 1234;
  loop.spawn([](EventLoop& l, SimTime& t) -> Task<void> {
    co_await l.sleep(500);
    co_await l.sleep_until(100);  // already in the past: no travel back
    t = l.now();
  }(loop, woke));
  loop.run();
  EXPECT_EQ(woke, 500u);
}

TEST(EventLoopEdge, MassiveSpawnFanOut) {
  EventLoop loop;
  int done = 0;
  for (int i = 0; i < 20000; ++i) {
    loop.spawn([](EventLoop& l, int& d, int id) -> Task<void> {
      co_await l.sleep(static_cast<SimDuration>(id % 97));
      ++d;
    }(loop, done, i));
  }
  loop.run();
  EXPECT_EQ(done, 20000);
  EXPECT_EQ(loop.live_tasks(), 0u);
}

TEST(SyncEdge, MutexUnderChurn) {
  // Heavy lock/unlock interleaving with varied hold times keeps exclusivity.
  EventLoop loop;
  SimMutex mu(loop);
  int inside = 0;
  bool violated = false;
  for (int i = 0; i < 200; ++i) {
    loop.spawn([](EventLoop& l, SimMutex& m, int& in, bool& bad,
                  int id) -> Task<void> {
      co_await l.sleep(static_cast<SimDuration>((id * 7) % 50));
      auto g = co_await ScopedLock::acquire(m);
      if (++in != 1) bad = true;
      co_await l.sleep(static_cast<SimDuration>(id % 5));
      --in;
    }(loop, mu, inside, violated, i));
  }
  loop.run();
  EXPECT_FALSE(violated);
  EXPECT_FALSE(mu.locked());
}

TEST(SyncEdge, SemaphoreZeroInitialBlocksUntilRelease) {
  EventLoop loop;
  Semaphore sem(loop, 0);
  SimTime acquired_at = 0;
  loop.spawn([](EventLoop& l, Semaphore& s, SimTime& t) -> Task<void> {
    co_await s.acquire();
    t = l.now();
  }(loop, sem, acquired_at));
  loop.spawn([](EventLoop& l, Semaphore& s) -> Task<void> {
    co_await l.sleep(777);
    s.release();
  }(loop, sem));
  loop.run();
  EXPECT_EQ(acquired_at, 777u);
}

TEST(SyncEdge, ChannelMoveOnlyPayload) {
  EventLoop loop;
  Channel<std::unique_ptr<int>> ch(loop);
  int got = 0;
  loop.spawn([](Channel<std::unique_ptr<int>>& c, int& out) -> Task<void> {
    auto p = co_await c.recv();
    out = *p;
  }(ch, got));
  ch.send(std::make_unique<int>(41));
  loop.run();
  EXPECT_EQ(got, 41);
}

TEST(SyncEdge, BarrierSingleParty) {
  // A one-party barrier never suspends — phases tick through instantly.
  EventLoop loop;
  Barrier bar(loop, 1);
  int phases = 0;
  loop.spawn([](Barrier& b, int& p) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await b.arrive_and_wait();
      ++p;
    }
  }(bar, phases));
  loop.run();
  EXPECT_EQ(phases, 5);
}

TEST(ResourceEdge, StatsResetClearsCounters) {
  EventLoop loop;
  FifoResource r(loop, 1, "r");
  loop.spawn([](FifoResource& res) -> Task<void> {
    co_await res.use(100);
    co_await res.use(100);
  }(r));
  loop.run();
  EXPECT_EQ(r.requests(), 2u);
  r.reset_stats();
  EXPECT_EQ(r.requests(), 0u);
  EXPECT_EQ(r.total_busy(), 0u);
  EXPECT_EQ(r.mean_queue_wait_ns(), 0.0);
}

TEST(ResourceEdge, NextFreeReflectsBookings) {
  EventLoop loop;
  FifoResource r(loop, 1);
  loop.spawn([](EventLoop& l, FifoResource& res) -> Task<void> {
    EXPECT_EQ(res.next_free(), 0u);
    (void)res.reserve(250);
    EXPECT_EQ(res.next_free(), 250u);
    co_await l.sleep(300);
    EXPECT_EQ(res.next_free(), 300u);  // idle again; clamped to now
  }(loop, r));
  loop.run();
}

// Direct schedule_at with an explicit (possibly bogus) timestamp — the
// public sleep/sleep_until awaiters always clamp, so reaching the kernel's
// past-time guard needs a raw awaiter.
struct ScheduleAtAwaiter {
  EventLoop& loop;
  SimTime at;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    loop.schedule_at(at, h);
  }
  void await_resume() const noexcept {}
};

// Regression for schedule_at(at < now): debug builds assert; release builds
// (the default RelWithDebInfo tier-1 tree defines NDEBUG) clamp to now(),
// count the clamp in stats().past_clamps, and keep FIFO order behind events
// already queued at the current timestamp.
TEST(EventLoopEdge, ScheduleIntoPastAssertsOrClamps) {
#ifdef NDEBUG
  EventLoop loop;
  SimTime resumed_at = 0;
  loop.spawn([](EventLoop& l, SimTime& r) -> Task<void> {
    co_await l.sleep(1000);
    co_await ScheduleAtAwaiter{l, 250};  // 750 ns into the past
    r = l.now();
  }(loop, resumed_at));
  loop.run();
  EXPECT_EQ(resumed_at, 1000u);  // clamped to now, clock never rewound
  EXPECT_EQ(loop.stats().past_clamps, 1u);
#else
  EXPECT_DEATH(
      {
        EventLoop loop;
        loop.spawn([](EventLoop& l) -> Task<void> {
          co_await l.sleep(1000);
          co_await ScheduleAtAwaiter{l, 250};
        }(loop));
        loop.run();
      },
      "simulated past");
#endif
}

TEST(ResourceEdge, ZeroServiceTimeStillFifo) {
  EventLoop loop;
  FifoResource r(loop, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    loop.spawn([](FifoResource& res, std::vector<int>& ord,
                  int id) -> Task<void> {
      co_await res.use(0);
      ord.push_back(id);
    }(r, order, i));
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace imca::sim
