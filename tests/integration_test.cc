// Cross-module integration and robustness tests:
//  * the same byte stream written through all three file systems reads back
//    identically (the comparison methodology is only valid if they agree);
//  * protocol parsers survive random garbage (fuzz-ish determinstic sweep);
//  * IMCa composed with namespace distribution and stock translators;
//  * multi-client sharing through the bank (one writer, many readers);
//  * threaded SMCache staleness window closes by quiesce time.
#include <gtest/gtest.h>

#include "cluster/testbed.h"
#include "common/rng.h"
#include "gluster/distribute.h"
#include "gluster/protocol.h"
#include "gluster/read_ahead.h"
#include "memcache/protocol.h"

namespace imca {
namespace {

using cluster::GlusterTestbed;
using cluster::GlusterTestbedConfig;
using cluster::LustreTestbed;
using cluster::LustreTestbedConfig;
using cluster::NfsTestbed;
using cluster::NfsTestbedConfig;
using sim::Task;

// The same scripted op sequence applied to any FileSystemClient; returns the
// final read-back of the whole file.
sim::Task<Buffer> scripted_ops(fsapi::FileSystemClient& fs) {
  auto f = co_await fs.create("/x/script");
  (void)co_await fs.write(*f, 0, to_buffer("The quick brown fox"));
  (void)co_await fs.write(*f, 4, to_buffer("QUICK"));
  (void)co_await fs.write(*f, 40, to_buffer("jumps at offset forty"));
  auto st = co_await fs.stat("/x/script");
  EXPECT_TRUE(st.has_value());
  if (st) { EXPECT_EQ(st->size, 61u); }
  auto data = co_await fs.read(*f, 0, 100);
  co_return data ? *data : Buffer{};
}

TEST(CrossSystem, AllThreeFileSystemsAgree) {
  Buffer results[3];

  GlusterTestbedConfig g;
  g.n_mcds = 2;
  GlusterTestbed gtb(g);
  gtb.run([](GlusterTestbed& t, Buffer& out) -> Task<void> {
    out = co_await scripted_ops(t.client(0));
  }(gtb, results[0]));

  LustreTestbedConfig l;
  l.n_ds = 3;
  LustreTestbed ltb(l);
  ltb.run([](LustreTestbed& t, Buffer& out) -> Task<void> {
    out = co_await scripted_ops(t.client(0));
  }(ltb, results[1]));

  NfsTestbedConfig n;
  NfsTestbed ntb(n);
  ntb.run([](NfsTestbed& t, Buffer& out) -> Task<void> {
    out = co_await scripted_ops(t.client(0));
  }(ntb, results[2]));

  ASSERT_FALSE(results[0].empty());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(to_string(results[0].slice(0, 19)), "The QUICK brown fox");
}

TEST(Robustness, MemcachedParserSurvivesGarbage) {
  memcache::McCache cache(16 * kMiB);
  Rng rng(0xFAFF);
  for (int trial = 0; trial < 2000; ++trial) {
    ByteBuf junk;
    const std::size_t n = rng.below(64);
    for (std::size_t i = 0; i < n; ++i) {
      junk.put_u8(static_cast<std::uint8_t>(rng.below(256)));
    }
    // Occasionally make it look almost like a command.
    if (rng.chance(0.3)) {
      ByteBuf prefixed;
      const char* prefixes[] = {"get ", "set ", "delete ", "stats", "\r\n"};
      prefixed.put_raw(prefixes[rng.below(5)]);
      prefixed.put_buffer(junk.buffer());
      junk = std::move(prefixed);
    }
    auto resp = memcache::handle_request(cache, std::move(junk),
                                         static_cast<SimTime>(trial));
    EXPECT_GT(resp.size(), 0u);  // always answers, never crashes
  }
}

TEST(Robustness, MemcachedClientParsersSurviveGarbage) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    ByteBuf junk;
    const std::size_t n = rng.below(96);
    for (std::size_t i = 0; i < n; ++i) {
      junk.put_u8(static_cast<std::uint8_t>(rng.below(256)));
    }
    ByteBuf j1 = junk, j2 = junk, j3 = junk;
    junk.rewind();
    (void)memcache::parse_get_response(junk);
    (void)memcache::parse_store_response(j1);
    (void)memcache::parse_delete_response(j2);
    (void)memcache::parse_stats_response(j3);
    // No assertion needed: not crashing (and no UB under -fsanitize in dev
    // builds) is the property.
  }
}

TEST(Robustness, FopDecoderSurvivesGarbage) {
  Rng rng(0xD00D);
  for (int trial = 0; trial < 2000; ++trial) {
    ByteBuf junk;
    const std::size_t n = rng.below(80);
    for (std::size_t i = 0; i < n; ++i) {
      junk.put_u8(static_cast<std::uint8_t>(rng.below(256)));
    }
    auto req = gluster::FopRequest::decode(junk);
    junk.rewind();
    auto rep = gluster::FopReply::decode(junk);
    (void)req;
    (void)rep;
  }
}

TEST(Robustness, TruncatedValidMessagesRejected) {
  // Encode a valid request, then replay every truncation of it: the decoder
  // must reject each without crashing.
  gluster::FopRequest req;
  req.type = gluster::FopType::kWrite;
  req.path = "/some/long/path/name";
  req.offset = 123456;
  req.data = to_buffer("payload bytes here");
  const ByteBuf whole = req.encode();
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    ByteBuf truncated(whole.buffer().slice(0, cut));
    EXPECT_FALSE(gluster::FopRequest::decode(truncated).has_value())
        << "cut=" << cut;
  }
}

TEST(Composition, ImcaOverDistributedNamespace) {
  // IMCa's client translator stacked over cluster/distribute with three
  // bricks: the cache tier must work regardless of which brick owns a path.
  // (The SMCache side lives per-brick, as it would in a real deployment.)
  sim::EventLoop loop;
  net::Fabric fabric(loop, net::ipoib_rc());
  net::RpcSystem rpc(fabric);

  std::vector<net::NodeId> mcd_nodes;
  std::vector<std::unique_ptr<memcache::McServer>> mcds;
  for (int i = 0; i < 2; ++i) {
    const auto n = fabric.add_node("mcd" + std::to_string(i)).id();
    mcd_nodes.push_back(n);
    mcds.push_back(std::make_unique<memcache::McServer>(rpc, n, 1 * kGiB));
    mcds.back()->start();
  }

  core::ImcaConfig icfg;
  std::vector<std::unique_ptr<gluster::GlusterServer>> bricks;
  for (int b = 0; b < 3; ++b) {
    const auto n = fabric.add_node("brick" + std::to_string(b)).id();
    bricks.push_back(std::make_unique<gluster::GlusterServer>(rpc, n));
    bricks.back()->push_translator(std::make_unique<core::SmCacheXlator>(
        loop,
        std::make_unique<mcclient::McClient>(
            rpc, n, mcd_nodes, core::make_selector(icfg)),
        icfg));
    bricks.back()->start();
  }

  const auto cnode = fabric.add_node("client").id();
  gluster::GlusterClient client(rpc, cnode, bricks[0]->node());
  std::vector<std::unique_ptr<gluster::ProtocolClient>> conns;
  for (const auto& b : bricks) {
    conns.push_back(
        std::make_unique<gluster::ProtocolClient>(rpc, cnode, b->node()));
  }
  client.push_translator(
      std::make_unique<gluster::DistributeXlator>(std::move(conns)));
  client.push_translator(std::make_unique<core::CmCacheXlator>(
      std::make_unique<mcclient::McClient>(rpc, cnode, mcd_nodes,
                                           core::make_selector(icfg)),
      icfg));

  loop.spawn([](gluster::GlusterClient& fs) -> Task<void> {
    for (int i = 0; i < 12; ++i) {
      const std::string path = "/dist/f" + std::to_string(i);
      auto f = co_await fs.create(path);
      EXPECT_TRUE(f.has_value());
      (void)co_await fs.write(*f, 0, to_buffer("file " + std::to_string(i)));
      auto back = co_await fs.read(*f, 0, 10);
      EXPECT_TRUE(back.has_value());
      if (back) {
        EXPECT_EQ(to_string(*back), "file " + std::to_string(i));
      }
      auto st = co_await fs.stat(path);
      EXPECT_TRUE(st.has_value());
    }
  }(client));
  loop.run();

  // The namespace really spread over the bricks.
  int bricks_with_files = 0;
  for (const auto& b : bricks) {
    bricks_with_files += b->object_store().file_count() > 0;
  }
  EXPECT_GE(bricks_with_files, 2);
}

TEST(Composition, ReadAheadBelowCmCache) {
  // Stock translators compose with the IMCa client translator: read-ahead
  // sits below CMCache and only sees the reads CMCache forwards (misses).
  GlusterTestbedConfig cfg;
  cfg.n_mcds = 1;
  GlusterTestbed tb(cfg);
  // (The testbed stacks CMCache last; push read-ahead first by rebuilding a
  // plain client here.)
  sim::EventLoop& loop = tb.loop();
  (void)loop;
  tb.run([](GlusterTestbed& t) -> Task<void> {
    auto& fs = t.client(0);
    auto f = co_await fs.create("/ra/file");
    (void)co_await fs.write(*f, 0, Buffer::zeros(64 * kKiB));
    for (std::uint64_t off = 0; off < 64 * kKiB; off += 2 * kKiB) {
      auto r = co_await fs.read(*f, off, 2 * kKiB);
      EXPECT_TRUE(r.has_value());
    }
    EXPECT_EQ(t.cmcache(0).stats().reads_forwarded, 0u);
  }(tb));
}

TEST(Sharing, OneWriterManyReadersThroughBank) {
  GlusterTestbedConfig cfg;
  cfg.n_clients = 9;  // writer + 8 readers
  cfg.n_mcds = 2;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& t) -> Task<void> {
    auto& writer = t.client(0);
    auto wf = co_await writer.create("/shared/board");
    (void)co_await writer.write(*wf, 0, to_buffer("revision-1"));

    // Every reader opens FIRST: each open purges the file's cached blocks
    // (paper §4.2), so opening between reads would defeat the sharing.
    std::vector<fsapi::OpenFile> handles;
    for (std::size_t r = 1; r <= 8; ++r) {
      auto rf = co_await t.client(r).open("/shared/board");
      EXPECT_TRUE(rf.has_value());
      handles.push_back(*rf);
    }

    const auto fops_before = t.server().fops_served();
    for (std::size_t r = 1; r <= 8; ++r) {
      auto data = co_await t.client(r).read(handles[r - 1], 0, 10);
      EXPECT_TRUE(data.has_value());
      if (data) { EXPECT_EQ(to_string(*data), "revision-1"); }
    }
    // The opens purged the bank, so exactly one read (the first) misses to
    // the server and republishes; the other seven come from the MCDs.
    EXPECT_EQ(t.server().fops_served() - fops_before, 1u);

    // After a write, SMCache republishes: every reader sees the new bytes
    // without any further purge/miss cycle.
    (void)co_await writer.write(*wf, 9, to_buffer("2"));
    const auto fops_mid = t.server().fops_served();
    for (std::size_t r = 1; r <= 8; ++r) {
      auto data = co_await t.client(r).read(handles[r - 1], 0, 10);
      EXPECT_TRUE(data.has_value());
      if (data) { EXPECT_EQ(to_string(*data), "revision-2"); }
    }
    EXPECT_EQ(t.server().fops_served(), fops_mid);
  }(tb));
}

TEST(Threaded, StalenessWindowClosesAfterQuiesce) {
  // In threaded mode a read racing the worker may see the pre-write block
  // (the paper's "updates ... being delayed", §4.4) — but after quiesce()
  // every reader sees the new bytes.
  GlusterTestbedConfig cfg;
  cfg.n_clients = 2;
  cfg.n_mcds = 1;
  cfg.imca.threaded_updates = true;
  GlusterTestbed tb(cfg);
  tb.run([](GlusterTestbed& t) -> Task<void> {
    auto& writer = t.client(0);
    auto& reader = t.client(1);
    auto wf = co_await writer.create("/async/file");
    (void)co_await writer.write(*wf, 0, to_buffer("AAAA"));
    co_await t.smcache()->quiesce();

    auto rf = co_await reader.open("/async/file");
    (void)co_await reader.read(*rf, 0, 4);  // warm: "AAAA" cached

    (void)co_await writer.write(*wf, 0, to_buffer("BBBB"));
    // No quiesce: the racing read may be stale or fresh — but must be one of
    // the two legal values, never garbage.
    auto racing = co_await reader.read(*rf, 0, 4);
    EXPECT_TRUE(racing.has_value());
    if (racing) {
      const std::string got = to_string(*racing);
      EXPECT_TRUE(got == "AAAA" || got == "BBBB") << got;
    }

    co_await t.smcache()->quiesce();
    auto settled = co_await reader.read(*rf, 0, 4);
    EXPECT_TRUE(settled.has_value());
    if (settled) { EXPECT_EQ(to_string(*settled), "BBBB"); }
  }(tb));
}

}  // namespace
}  // namespace imca
