// Timer-wheel specific kernel tests (DESIGN.md §5h): the determinism pin
// (wheel and legacy-heap queues must produce identical (time, seq) resume
// traces), wheel-cascade edge cases at slot/window boundaries, the
// far-future overflow list, run_until parked before a far event (the cursor
// trap), and arena recycling across drains.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace imca::sim {
namespace {

using Trace = std::vector<std::pair<SimTime, std::uint64_t>>;

// Small deterministic stream, independent from the bench's generator.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 0x9E3779B97F4A7C15ull + 1) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
};

// Sleeps spanning every wheel level: sub-slot ticks, exact slot-boundary
// values, level-2/3 waits and rare overflow-list excursions (> 2^32 ns).
SimDuration mixed_duration(Rng& rng) {
  const std::uint64_t r = rng.next();
  if (r % 499 == 0) return 6 * kSecond;  // beyond the 2^32 ns wheel span
  switch ((r >> 8) % 8) {
    case 0: return 1 + r % 250;
    case 1: return 256;                     // exactly one level-0 window
    case 2: return 255 + r % 3;             // straddle the level-0 boundary
    case 3: return 65536;                   // exactly one level-1 window
    case 4: return 65535 + r % 3;           // straddle the level-1 boundary
    case 5: return (SimDuration{1} << 24) + r % 3;  // level-2 boundary
    case 6: return 1 + r % 60000;
    default: return 1 + r % 5000000;        // deep level-2 waits
  }
}

Task<void> mixed_client(EventLoop& loop, std::uint64_t seed, std::size_t id,
                        std::size_t iters) {
  Rng rng(seed ^ (0xD1B54A32D192ED03ull * (id + 1)));
  for (std::size_t i = 0; i < iters; ++i) {
    co_await loop.sleep(mixed_duration(rng));
  }
}

struct RunOut {
  Trace trace;
  std::uint64_t events = 0;
  SimTime final_now = 0;
  EventLoopStats stats;
};

RunOut run_mixed(QueueImpl impl, std::size_t n_clients, std::size_t iters) {
  EventLoop loop(impl);
  RunOut out;
  loop.set_trace(&out.trace);
  for (std::size_t id = 0; id < n_clients; ++id) {
    loop.spawn(mixed_client(loop, 42, id, iters));
  }
  out.events = loop.run();
  out.final_now = loop.now();
  out.stats = loop.stats();
  return out;
}

// The determinism pin: the wheel must resume events in exactly the order
// the legacy priority queue does — same timestamps, same sequence numbers,
// element for element — on a workload that exercises every level and the
// overflow list. ISSUE acceptance asks for at least the first 10k pairs;
// we compare all of them.
TEST(TimerWheel, ResumeTraceMatchesLegacyHeap) {
  const RunOut wheel = run_mixed(QueueImpl::kTimerWheel, 200, 60);
  const RunOut legacy = run_mixed(QueueImpl::kLegacyHeap, 200, 60);

  ASSERT_GE(wheel.trace.size(), 10000u);
  ASSERT_EQ(wheel.trace.size(), legacy.trace.size());
  for (std::size_t i = 0; i < wheel.trace.size(); ++i) {
    ASSERT_EQ(wheel.trace[i], legacy.trace[i]) << "first divergence at " << i;
  }
  EXPECT_EQ(wheel.events, legacy.events);
  EXPECT_EQ(wheel.final_now, legacy.final_now);
  // The mix reaches past the wheel span, so cascades must have happened.
  EXPECT_GT(wheel.stats.cascades, 0u);
  EXPECT_EQ(wheel.stats.past_clamps, 0u);
  EXPECT_EQ(legacy.stats.cascades, 0u);  // the heap never cascades
}

Task<void> stamp_at(EventLoop& loop, SimTime at, int id,
                    std::vector<int>& order) {
  co_await loop.sleep_until(at);
  order.push_back(id);
}

// Events parked exactly on slot boundaries of every level (256^l multiples)
// must come back in timestamp order, and equal timestamps in spawn (seq)
// order — boundary values are where an off-by-one in window math would
// misfile an event one slot early or late.
TEST(TimerWheel, SlotBoundaryTimestampsResumeInOrder) {
  const SimTime k2_32 = SimTime{1} << 32;
  const std::vector<SimTime> ats = {
      255,        256,        257,         65535,       65536,
      65537,      1u << 24,   (1u << 24) + 1,           k2_32 - 1,
      k2_32,      k2_32 + 5,  3 * k2_32 + 7};
  for (const QueueImpl impl :
       {QueueImpl::kTimerWheel, QueueImpl::kLegacyHeap}) {
    EventLoop loop(impl);
    std::vector<int> order;
    // Spawn in reverse so timestamp order != spawn order globally...
    for (std::size_t i = ats.size(); i > 0; --i) {
      loop.spawn(stamp_at(loop, ats[i - 1], static_cast<int>(i - 1), order));
    }
    // ...and duplicate one boundary timestamp to pin the FIFO tie-break:
    // spawned later => resumes later among equals.
    loop.spawn(stamp_at(loop, 65536, 100, order));
    loop.run();
    ASSERT_EQ(order.size(), ats.size() + 1);
    for (std::size_t i = 0; i < ats.size(); ++i) {
      EXPECT_EQ(order[i + (i > 4 ? 1 : 0)], static_cast<int>(i))
          << "impl=" << static_cast<int>(impl) << " position " << i;
    }
    // The duplicate of ats[4]==65536 was spawned after every other event,
    // so it resumes directly after the original.
    EXPECT_EQ(order[5], 100);
    EXPECT_EQ(loop.now(), 3 * k2_32 + 7);
  }
}

// run_until parked before a far-future (overflow-list) event must leave the
// wheel able to accept and run nearer events scheduled afterwards: the
// cursor may not advance past the parked deadline just because the only
// queued event lives seconds ahead.
TEST(TimerWheel, RunUntilParkedBeforeFarEventAcceptsNearerWork) {
  EventLoop loop(QueueImpl::kTimerWheel);
  std::vector<int> order;
  loop.spawn(stamp_at(loop, 10 * kSecond, 99, order));  // overflow list

  // Park the clock at t=1000 — far earlier than the queued event.
  EXPECT_EQ(loop.run_until(1000), 1u);  // the spawn bootstrap event
  EXPECT_EQ(loop.now(), 1000u);
  EXPECT_TRUE(order.empty());

  // New work between the parked clock and the far event must run on time.
  loop.spawn(stamp_at(loop, 1500, 1, order));
  loop.spawn(stamp_at(loop, 1500, 2, order));  // same-timestamp FIFO
  EXPECT_EQ(loop.run_until(2000), 4u);  // 2 bootstraps + 2 stamps
  EXPECT_EQ(loop.now(), 2000u);
  ASSERT_EQ(order, (std::vector<int>{1, 2}));

  // Drain: the far event fires at exactly its timestamp.
  loop.run();
  ASSERT_EQ(order, (std::vector<int>{1, 2, 99}));
  EXPECT_EQ(loop.now(), 10 * kSecond);
}

// Repeated run_until slices across a cascade-heavy workload must see the
// same trace as one uninterrupted run() — deadlines may split the stream
// anywhere, including mid-window between cascades.
TEST(TimerWheel, RunUntilSlicingMatchesFullRun) {
  const RunOut full = run_mixed(QueueImpl::kTimerWheel, 50, 40);

  EventLoop loop(QueueImpl::kTimerWheel);
  Trace sliced;
  loop.set_trace(&sliced);
  for (std::size_t id = 0; id < 50; ++id) {
    loop.spawn(mixed_client(loop, 42, id, 40));
  }
  std::uint64_t events = 0;
  // Uneven slice widths, deliberately not aligned to any wheel level.
  SimTime deadline = 0;
  std::uint64_t step = 777;
  while (!loop.idle()) {
    deadline += step;
    step = step * 3 + 1;
    events += loop.run_until(deadline);
  }
  EXPECT_EQ(events, full.events);
  ASSERT_EQ(sliced.size(), full.trace.size());
  for (std::size_t i = 0; i < sliced.size(); ++i) {
    ASSERT_EQ(sliced[i], full.trace[i]) << "first divergence at " << i;
  }
}

// Arena discipline: a second wave of work through the same loop must be
// served from recycled nodes — the chunk footprint plateaus and the reuse
// counter keeps climbing.
TEST(TimerWheel, ArenaRecyclesNodesAcrossDrains) {
  EventLoop loop(QueueImpl::kTimerWheel);
  for (std::size_t id = 0; id < 100; ++id) {
    loop.spawn(mixed_client(loop, 7, id, 30));
  }
  loop.run();
  const EventLoopStats first = loop.stats();
  EXPECT_GT(first.arena_bytes, 0u);
  EXPECT_GT(first.arena_reuse, 0u);  // free-list hits already during wave 1

  for (std::size_t id = 0; id < 100; ++id) {
    loop.spawn(mixed_client(loop, 8, id, 30));
  }
  loop.run();
  const EventLoopStats second = loop.stats();
  // Wave 2 needs no new chunks: every node comes off the free list.
  EXPECT_EQ(second.arena_bytes, first.arena_bytes);
  EXPECT_GT(second.arena_reuse, first.arena_reuse);
  EXPECT_EQ(second.past_clamps, 0u);
  // Scheduled events strictly grew and every one of them resumed.
  EXPECT_GT(second.events_scheduled, first.events_scheduled);
  EXPECT_EQ(loop.events_processed(), second.events_scheduled);
}

// The process-wide default switch (the --legacy-queue ablation hook) must
// steer default-constructed loops, and explicit constructors must ignore it.
TEST(TimerWheel, LegacyQueueSwitchSelectsDefaultImpl) {
  ASSERT_FALSE(legacy_event_queue());
  EXPECT_EQ(EventLoop().queue_impl(), QueueImpl::kTimerWheel);
  set_legacy_event_queue(true);
  EXPECT_EQ(EventLoop().queue_impl(), QueueImpl::kLegacyHeap);
  EXPECT_EQ(EventLoop(QueueImpl::kTimerWheel).queue_impl(),
            QueueImpl::kTimerWheel);
  set_legacy_event_queue(false);
  EXPECT_EQ(EventLoop().queue_impl(), QueueImpl::kTimerWheel);
}

}  // namespace
}  // namespace imca::sim
