// IMCA-CORO-LAMBDA corpus — the PR 1 bug class, reduced. A lambda
// coroutine's captures live in the *lambda object*, not the coroutine
// frame. Spawning the coroutine and letting the temporary lambda die (end
// of the spawn statement) leaves the frame dereferencing a dead closure on
// its first resume.
#include <string>

#include "sim/task.h"

namespace corpus {

void spawn_leaky(sim::EventLoop& loop, std::string path) {
  loop.spawn([&path]() -> sim::Task<void> {  // EXPECT: IMCA-CORO-LAMBDA
    co_await suspend();
    (void)path.size();  // reads through the destroyed lambda object
  }());
}

void spawn_leaky_value_capture(sim::EventLoop& loop, int n) {
  loop.spawn([n]() -> sim::Task<void> {  // EXPECT: IMCA-CORO-LAMBDA
    co_await suspend();
    (void)n;  // value captures dangle identically: they live in the closure
  }());
}

}  // namespace corpus
