// IMCA-NODE-FREED corpus — the PR 6 wheel/arena lifetime bug, reduced: an
// EventNode released back to the arena is live free-list storage (release()
// overwrites n->next with the free-list link, and the very next alloc()
// recycles the node for a different event), so reading it afterwards resumes
// the wrong coroutine or walks the free list as if it were a slot list.
#include "sim/event_arena.h"

namespace corpus {

using imca::sim::EventArena;
using imca::sim::EventNode;

void resume_after_release(EventArena& arena, EventNode* n) {
  arena.release(n);
  n->handle.resume();  // EXPECT: IMCA-NODE-FREED
}

void read_seq_after_release(EventArena& arena, EventNode* n) {
  arena.release(n);
  (void)n->seq;  // EXPECT: IMCA-NODE-FREED
}

void double_release(EventArena& arena, EventNode* n) {
  arena.release(n);
  arena.release(n);  // EXPECT: IMCA-NODE-FREED
}

}  // namespace corpus
