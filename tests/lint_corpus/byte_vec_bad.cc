// IMCA-BYTE-VEC corpus: payloads cross fop/protocol/cache signatures as
// Buffer (refcounted iovec), never as std::vector<std::byte>. This check is
// the old `lint-no-byte-vectors` grep gate folded into the analyzer; it is
// path-scoped to src/ in normal runs and applies everywhere in --verify.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/task.h"

namespace corpus {

sim::Task<void> write_block(std::uint64_t off,
                            std::vector<std::byte> data);  // EXPECT: IMCA-BYTE-VEC

sim::Task<std::vector<std::byte>>  // EXPECT: IMCA-BYTE-VEC
read_block(std::uint64_t off, std::uint64_t len);

}  // namespace corpus
