// Interprocedural IMCA-CORO-THIS good twin: the same shape as
// transitive_bad.cc, but the forwarder bottoms out in an awaitable whose
// await_ready() is constant-true — awaiting it can never actually suspend,
// so the member call after the co_await is not a use-after-suspension and
// the index (known_ready fixpoint) proves it.
#include <cstdint>

#include "sim/task.h"

namespace corpus {

struct Poller {
  std::uint64_t pending_ = 0;

  struct Ready {
    bool await_ready() { return true; }
    void await_suspend() {}
    void await_resume() {}
  };

  void tally() { this->pending_ += 1; }

  Ready poll();                     // always-ready awaitable
  auto bridge() { return poll(); }  // forwarder to a proven-ready chain

  sim::Task<void> sweep() {
    co_await bridge();  // proven non-suspending: Ready::await_ready is true
    tally();            // safe — the frame never actually suspended
    co_return;
  }
};

}  // namespace corpus
