// IMCA-STAT-RMW corpus — the PR 8 flush-accounting drift, reduced: a stats
// counter is read into a local, the frame suspends, and the counter is
// written back from the stale local. Every update another coroutine made
// during the suspension is silently erased; under shaken resume order
// (EventLoop::set_tie_shake) the final count changes run to run.
#include <cstdint>

#include "sim/task.h"

namespace corpus {

struct FlushStats {
  std::uint64_t flushed_total_ = 0;

  sim::Task<std::uint64_t> fetch();  // real coroutine: may suspend

  sim::Task<void> record_flush() {
    const std::uint64_t seen = flushed_total_;
    const std::uint64_t n = co_await fetch();
    flushed_total_ = seen + n;  // EXPECT: IMCA-STAT-RMW
  }
};

}  // namespace corpus
