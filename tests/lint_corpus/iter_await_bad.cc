// IMCA-ITER-AWAIT corpus — the PR 4 handler-map class, reduced: a
// coroutine iterates a member container and suspends inside the loop body,
// while another method of the same class can mutate that container. Any
// interleaved coroutine that lands on the mutator invalidates the iterator
// mid-loop (heap-use-after-free on the next ++it).
#include <vector>

#include "sim/task.h"

namespace corpus {

struct Handler;

struct Registry {
  std::vector<Handler*> handlers_;

  void clear_all() { handlers_.clear(); }  // the interleavable mutator

  sim::Task<void> broadcast() {
    for (Handler* h : handlers_) {  // EXPECT: IMCA-ITER-AWAIT
      co_await h->notify();
    }
  }
};

}  // namespace corpus
