// IMCA-DETACH good twin: every Task is awaited, stored, or handed to the
// loop — the three ways a lazy task actually runs.
#include <utility>
#include <vector>

#include "sim/task.h"

namespace corpus {

sim::Task<void> flush_all();

sim::Task<void> await_it() { co_await flush_all(); }

void spawn_it(sim::EventLoop& loop) { loop.spawn(flush_all()); }

void store_it(std::vector<sim::Task<void>>& pending) {
  pending.push_back(flush_all());
  auto t = flush_all();
  pending.push_back(std::move(t));
}

}  // namespace corpus
