// Interprocedural IMCA-CORO-THIS corpus: the suspension AND the `this`
// touch are both indirect. `relay()` is a plain forwarder whose call chain
// bottoms out in a real coroutine two calls deep, so `co_await relay()` is
// a genuine suspension; `account()` never spells `this` at the call site,
// but its body does. The per-function summaries (index.cc) carry both facts
// to the call sites.
#include <cstdint>

#include "sim/task.h"

namespace corpus {

struct Drainer {
  std::uint64_t pending_ = 0;

  void account() { this->pending_ += 1; }

  sim::Task<void> leaf();          // real coroutine: may suspend
  auto relay() { return leaf(); }  // forwarder, not a coroutine itself

  sim::Task<void> drain() {
    co_await relay();  // suspends: relay forwards to a suspending Task
    account();         // EXPECT: IMCA-CORO-THIS
  }
};

}  // namespace corpus
