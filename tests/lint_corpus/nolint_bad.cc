// IMCA-NOLINT-BARE corpus: the escape hatch demands a reason. A bare
// imca suppression still silences its target (policy: one finding for the
// missing justification, not two), but is itself a finding.
#include <string>

#include "sim/task.h"

namespace corpus {

sim::Task<int> f(const std::string& p) {  // NOLINT(imca-coro-ref) EXPECT: IMCA-NOLINT-BARE
  co_await suspend();
  co_return static_cast<int>(p.size());
}

}  // namespace corpus
