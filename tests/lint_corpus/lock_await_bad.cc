// IMCA-LOCK-AWAIT corpus: sim::Mutex is NOT reentrant — a frame that
// suspends on lock() while already holding the mutex parks forever (the
// unlock that would wake it is below the await that never returns). Both
// shapes: a literal double lock, and re-entry hidden behind a callee whose
// lock summary (index.cc fn_locks fixpoint) includes the held mutex.
#include <cstdint>

#include "sim/sync.h"
#include "sim/task.h"

namespace corpus {

struct Ledger {
  sim::SimMutex mu_;
  std::uint64_t balance_ = 0;

  sim::Task<void> add(std::uint64_t n) {
    co_await mu_.lock();
    balance_ += n;
    mu_.unlock();
  }

  sim::Task<void> add_twice(std::uint64_t n) {
    co_await mu_.lock();
    co_await add(n);  // EXPECT: IMCA-LOCK-AWAIT
    mu_.unlock();
  }

  sim::Task<void> double_lock() {
    co_await mu_.lock();
    co_await mu_.lock();  // EXPECT: IMCA-LOCK-AWAIT
  }
};

}  // namespace corpus
