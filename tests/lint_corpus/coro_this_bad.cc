// IMCA-CORO-THIS corpus — the PR 4 write-behind flusher, reduced. A
// detached member coroutine suspends, the owning object is destroyed, and
// the resume touches freed members. (The analyzer keys on the explicit
// `this` token; the codebase convention is to spell lifetime-relevant
// member access after a suspension as this->.) The fix (good twin) checks a liveness
// token after every suspension.
#include <cstdint>

#include "sim/task.h"

namespace corpus {

struct Flusher {
  std::uint64_t dirty_ = 0;

  sim::Task<void> flush_loop() {
    co_await suspend();
    this->dirty_ = 0;  // EXPECT: IMCA-CORO-THIS
  }
};

}  // namespace corpus
