// IMCA-CORO-LAMBDA good twin: a capture-free lambda coroutine takes its
// state as explicit parameters (copied into the frame, nothing to dangle),
// and a capturing lambda that merely *forwards* to a named member coroutine
// is not itself a coroutine — the frame that suspends owns its own copies.
#include <string>

#include "sim/task.h"

namespace corpus {

void spawn_safe(sim::EventLoop& loop, std::string path) {
  loop.spawn([](std::string p) -> sim::Task<void> {
    co_await suspend();
    (void)p.size();
  }(std::move(path)));
}

struct Client {
  sim::Task<void> on_revoke(std::string path);
  void hook() {
    set_hook([this](std::string path) { return on_revoke(std::move(path)); });
  }
};

}  // namespace corpus
