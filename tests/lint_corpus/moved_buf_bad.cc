// IMCA-MOVED-BUF corpus — the PR 4 replay double-move, reduced: a Buffer
// moved into the first send is empty by the time the retry path reads it,
// so the replayed write silently persists zero bytes.
#include <utility>

#include "common/buffer.h"

namespace corpus {

void send(Buffer b);

void replay_after_move(Buffer data) {
  send(std::move(data));
  send(std::move(data));  // EXPECT: IMCA-MOVED-BUF
}

void size_after_move(Buffer data) {
  send(std::move(data));
  (void)data.size();  // EXPECT: IMCA-MOVED-BUF
}

}  // namespace corpus
