// IMCA-LOCK-AWAIT good twin: the sanctioned shapes. A `_locked` helper that
// expects the caller's mutex (its own summary acquires nothing, so awaiting
// it under the guard is re-entry-free), and a read-modify-write whose whole
// window — capture, suspension, write-back — runs under the held guard, so
// no interleaved writer can slip in.
#include <cstdint>

#include "sim/sync.h"
#include "sim/task.h"

namespace corpus {

struct Vault {
  sim::SimMutex mu_;
  std::uint64_t balance_ = 0;

  sim::Task<void> deposit_locked(std::uint64_t n) {  // caller holds mu_
    balance_ += n;
    co_return;
  }

  sim::Task<void> deposit_twice(std::uint64_t n) {
    co_await mu_.lock();
    co_await deposit_locked(n);  // callee's lock summary is empty: no re-entry
    co_await deposit_locked(n);
    mu_.unlock();
  }

  sim::Task<void> guarded_rmw() {
    co_await mu_.lock();
    const std::uint64_t snap = balance_;
    co_await deposit_locked(0);
    balance_ = snap + 1;  // guard held across the whole window: no lost update
    mu_.unlock();
  }
};

}  // namespace corpus
