// IMCA-NOLINT-BARE good twin: a justified NOLINT suppresses its target and
// is itself silent. Blanket clang-style NOLINT (no imca id) is ignored by
// imca-lint entirely — it neither suppresses nor fires.
#include <string>

#include "sim/task.h"

namespace corpus {

// clang-format off
sim::Task<int> f(const std::string& p) {  // NOLINT(imca-coro-ref): caller guarantees p outlives the frame
  // clang-format on
  co_await suspend();
  co_return static_cast<int>(p.size());
}

}  // namespace corpus
