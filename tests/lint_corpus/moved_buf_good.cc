// IMCA-MOVED-BUF good twin: keep a slice (refcounted, zero-copy) for the
// retry before moving the original away, or reassign the moved-from buffer
// before any further use.
#include <utility>

#include "common/buffer.h"

namespace corpus {

void send(Buffer b);

void replay_with_slice(Buffer data) {
  Buffer retry_copy = data.slice(0, data.size());
  send(std::move(data));
  send(std::move(retry_copy));
}

void reassign_then_use(Buffer data) {
  send(std::move(data));
  data = Buffer::zeros(16);  // moved-from state overwritten: valid again
  send(std::move(data));
}

// Member access through another object is not a use of the moved local.
struct Item {
  Buffer data;
};

void member_is_not_local(Item item, Buffer data) {
  send(std::move(data));
  send(std::move(item.data));
}

}  // namespace corpus
