// IMCA-CORO-THIS good twin: the write_behind.cc pattern — a shared
// liveness token (alive_) captured before the first suspension and checked
// after each one, so a destroyed owner is detected instead of dereferenced.
#include <cstdint>
#include <memory>

#include "sim/task.h"

namespace corpus {

struct Flusher {
  std::uint64_t dirty_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  sim::Task<void> flush_loop() {
    auto alive = alive_;
    co_await suspend();
    if (!*alive) co_return;  // owner died while we were suspended
    dirty_ = 0;
  }

  // No suspension at all: `this` cannot go away mid-coroutine body before
  // the first co_await, so a leading member read is fine.
  sim::Task<std::uint64_t> peek() { co_return dirty_; }
};

}  // namespace corpus
