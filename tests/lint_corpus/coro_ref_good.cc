// IMCA-CORO-REF good twin: by-value parameters are copied into the
// coroutine frame before the first suspension, so the caller's temporaries
// can die freely. Non-const lvalue references are exempt by design: they
// cannot bind temporaries, and the codebase uses them for long-lived
// environment handles (EventLoop&, Fabric&) and for out-parameters.
#include <string>

#include "common/buffer.h"
#include "sim/task.h"

namespace corpus {

sim::Task<int> open_by_value(std::string path) {
  co_await suspend();
  co_return static_cast<int>(path.size());
}

sim::Task<void> publish_by_value(Buffer data) {
  co_await suspend();
  (void)data.size();
}

sim::Task<void> with_environment(sim::EventLoop& loop, SimDuration& out) {
  co_await loop.sleep(1);
  out = 2;
}

// A plain (non-coroutine) function may take const refs all it likes.
int measure(const std::string& path) { return static_cast<int>(path.size()); }

}  // namespace corpus
