// IMCA-STAT-RMW good twin: the two sanctioned counter-update shapes. Apply
// a delta to the LIVE value after resuming (`+=` of something that is not a
// stale snapshot of the counter), or capture an epoch alongside the
// snapshot and bail if it moved while the frame was suspended — the
// writeback flush ledger idiom.
#include <cstdint>

#include "sim/task.h"

namespace corpus {

struct DeltaStats {
  std::uint64_t drained_total_ = 0;
  std::uint64_t drain_epoch_ = 0;

  sim::Task<std::uint64_t> sample();  // real coroutine: may suspend

  sim::Task<void> apply_delta() {
    const std::uint64_t n = co_await sample();
    drained_total_ += n;  // delta onto the live value: nothing is lost
  }

  sim::Task<void> apply_epoch() {
    const std::uint64_t seen = drained_total_;
    const std::uint64_t mark = drain_epoch_;
    const std::uint64_t n = co_await sample();
    if (drain_epoch_ != mark) co_return;  // someone interleaved: drop ours
    drained_total_ = seen + n;
  }
};

}  // namespace corpus
