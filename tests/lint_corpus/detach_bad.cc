// IMCA-DETACH corpus: sim::Task is lazy — a created-and-dropped task never
// runs. Calling a Task-returning function as if it were eager work is
// silently a no-op (the [[nodiscard]] catches the bare statement case; the
// analyzer also catches it in files compiled without warnings).
#include <string>

#include "sim/task.h"

namespace corpus {

sim::Task<void> flush_all();

void forget_to_await() {
  flush_all();  // EXPECT: IMCA-DETACH
}

}  // namespace corpus
