// IMCA-NODE-FREED good twin: the event_loop.cc idiom — copy (handle, seq)
// out of the node and unlink it BEFORE releasing, or reassign the pointer
// to a fresh allocation before any further use.
#include <coroutine>

#include "sim/event_arena.h"

namespace corpus {

using imca::sim::EventArena;
using imca::sim::EventNode;

void copy_out_then_release(EventArena& arena, EventNode* n) {
  const std::coroutine_handle<> h = n->handle;
  arena.release(n);
  h.resume();  // resumes from the copy, not the recycled node
}

void reassign_then_use(EventArena& arena, EventNode* n) {
  arena.release(n);
  n = arena.alloc(0, 0, std::coroutine_handle<>{});  // fresh node: valid again
  arena.release(n);
}

// A release inside a block revives the name at block exit (the analyzer has
// no inter-block flow; the scope boundary is the conservative reset).
void release_in_inner_scope(EventArena& arena, EventNode* n, bool drop) {
  if (drop) {
    arena.release(n);
    return;
  }
  (void)n->seq;
}

// Member access through another object is not a use of the released local.
struct Holder {
  EventNode* n = nullptr;
};

void member_is_not_local(EventArena& arena, Holder& holder, EventNode* n) {
  arena.release(n);
  (void)holder.n;
}

}  // namespace corpus
