// IMCA-ITER-AWAIT good twin: the two sanctioned ways to suspend inside a
// loop over member state — iterate a snapshot (a local copy an interleaved
// mutator cannot invalidate), or iterate fixed-at-construction topology
// that no method ever mutates (the distribute/replicate children_ shape).
#include <vector>

#include "sim/task.h"

namespace corpus {

struct Route;

struct Mux {
  std::vector<Route*> routes_;    // mutable registration table
  std::vector<Route*> children_;  // fixed topology: set in the ctor only

  explicit Mux(std::vector<Route*> kids) { children_ = std::move(kids); }

  void drop_all() { routes_.clear(); }

  sim::Task<void> broadcast_routes() {
    auto snapshot = routes_;  // interleaved drop_all() can't touch the copy
    for (Route* r : snapshot) {
      co_await r->push();
    }
  }

  sim::Task<void> broadcast_children() {
    // Nothing mutates children_ after construction — iterating the member
    // directly across a suspension is fine.
    for (Route* r : children_) {
      co_await r->push();
    }
  }
};

}  // namespace corpus
