// IMCA-BYTE-VEC good twin: Buffer on every payload-bearing signature. A
// vector may still appear as private backing storage (the storage layer
// adopts vectors into segments) — only signatures are policed.
#include <cstdint>

#include "common/buffer.h"
#include "sim/task.h"

namespace corpus {

sim::Task<void> write_block(std::uint64_t off, Buffer data);

sim::Task<Buffer> read_block(std::uint64_t off, std::uint64_t len);

}  // namespace corpus
