// IMCA-CORO-REF corpus: coroutine parameters that can dangle across the
// first suspension. A caller writing `fs.open("/tmp/" + name)` hands the
// coroutine a reference to a temporary that dies at the end of the calling
// full-expression — long before the lazy Task is even started.
#include <string>
#include <string_view>

#include "common/buffer.h"
#include "sim/task.h"

namespace corpus {

sim::Task<int> open_by_ref(const std::string& path) {  // EXPECT: IMCA-CORO-REF
  co_await suspend();
  co_return static_cast<int>(path.size());
}

sim::Task<int> open_by_view(std::string_view path) {  // EXPECT: IMCA-CORO-REF
  co_await suspend();
  co_return static_cast<int>(path.size());
}

sim::Task<void> write_rvalue(std::string&& path) {  // EXPECT: IMCA-CORO-REF
  co_await suspend();
  (void)path;
}

sim::Task<void> publish(const Buffer& data) {  // EXPECT: IMCA-CORO-REF
  co_await suspend();
  (void)data.size();
}

}  // namespace corpus
