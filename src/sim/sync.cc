#include "sim/sync.h"

namespace imca::sim {

namespace {

Task<void> run_child(Task<void> task, std::size_t& remaining, Event& done) {
  co_await std::move(task);
  if (--remaining == 0) done.set();
}

}  // namespace

Task<void> when_all(EventLoop& loop, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  // remaining/done live in this coroutine's frame, which outlives all
  // children because we do not return until done fires.
  std::size_t remaining = tasks.size();
  Event done(loop);
  for (auto& t : tasks) {
    loop.spawn(run_child(std::move(t), remaining, done));
  }
  tasks.clear();
  co_await done.wait();
}

namespace {

Task<void> timeout_body(EventLoop& loop, std::shared_ptr<Event> event,
                        SimDuration delay) {
  co_await loop.sleep(delay);
  event->set();  // idempotent: harmless if the race already resolved
}

}  // namespace

void arm_timeout(EventLoop& loop, std::shared_ptr<Event> event,
                 SimDuration delay) {
  loop.spawn(timeout_body(loop, std::move(event), delay));
}

}  // namespace imca::sim
