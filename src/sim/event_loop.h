// Discrete-event simulation kernel.
//
// The EventLoop owns the simulated clock and a time-ordered queue of ready
// coroutine handles. `run()` repeatedly pops the earliest event, advances the
// clock to its timestamp and resumes the coroutine. Events with equal
// timestamps resume in FIFO order (a monotone sequence number breaks ties),
// which makes every experiment bit-for-bit reproducible.
//
// Two queue implementations share that contract (DESIGN.md §5h):
//
//   * kTimerWheel (default) — a 4-level × 256-slot hierarchical timing wheel
//     (Varghese & Lauck) of intrusive doubly-linked EventNode lists with
//     per-level occupancy bitmaps, arena-allocated nodes (event_arena.h) and
//     an unsorted far-future overflow list for events ≥ 2^32 ns ahead.
//     schedule/pop are O(1) amortized and allocation-free at steady state.
//   * kLegacyHeap — the original std::priority_queue, kept as the perf
//     baseline (`bench/sim_core_bench --legacy-queue`, in the style of the
//     buffer layer's --legacy-copy-path) and as the determinism oracle: both
//     impls must produce identical (time, seq) resume traces, pinned by
//     tests/sim_wheel_test.cc and the fault-matrix --legacy-queue diff.
#pragma once

#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/event_arena.h"
#include "sim/task.h"

namespace imca::sim {

// Kernel counters surfaced next to events_processed(): queue pressure
// (events_scheduled), wheel work (cascades = nodes re-filed when a window
// rolls over), and allocation discipline (arena_bytes should plateau,
// arena_reuse should dominate on any steady workload). past_clamps counts
// release-mode clamps of schedule_at(at < now) — always 0 in a correct
// program (debug builds assert instead).
struct EventLoopStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t cascades = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t arena_reuse = 0;
  std::uint64_t past_clamps = 0;
  // Pops where schedule-shake picked a different event than FIFO would
  // have (timer wheel only): the anti-vacuity signal that a shaken run
  // actually explored a new interleaving. Always 0 with tie_shake == 0.
  std::uint64_t tie_shaken = 0;
};

enum class QueueImpl { kTimerWheel, kLegacyHeap };

// Process-wide default for EventLoop's queue implementation, so ablation
// flags can flip testbeds they never construct directly (exactly how
// set_legacy_copy_path works for the buffer layer).
void set_legacy_event_queue(bool legacy) noexcept;
bool legacy_event_queue() noexcept;

// Process-wide default tie-shake seed, consumed by EventLoop's default
// constructor (same pattern as set_legacy_event_queue): harness drivers set
// it from --shake=SEED before building a testbed they never construct the
// loop of. 0 = plain FIFO tie-break (bit-for-bit today's schedules).
void set_default_tie_shake(std::uint64_t seed) noexcept;
std::uint64_t default_tie_shake() noexcept;

namespace detail {

// Deterministic per-event shake key (splitmix64 over seed ^ seq). Under
// schedule-shake, equal-timestamp events resume in ascending (key, seq)
// order instead of plain seq order: a seeded, reproducible permutation of
// every FIFO tie the kernel would otherwise pin. Both queue implementations
// derive the key from the same (seed, seq) pair, so wheel and legacy heap
// produce identical shaken traces.
inline std::uint64_t shake_key(std::uint64_t seed, std::uint64_t seq) noexcept {
  std::uint64_t x = seed ^ (seq + 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace detail

namespace detail {

// Warm a parked coroutine frame ahead of its resume. Frames span more than
// one cache line (header + promise + locals), and a resume touches the
// front of the frame immediately, so fetch the first two lines.
inline void prefetch_frame(void* frame) noexcept {
  __builtin_prefetch(frame);
  __builtin_prefetch(static_cast<const char*>(frame) + 64);
}

// Hierarchical timing wheel over absolute nanosecond timestamps.
//
// Level l covers the 256^(l+1) ns around the cursor in 256 slots of
// 256^l ns each; windows are ALIGNED to the cursor (an event files into
// level l iff it shares the cursor's level-(l+1) window prefix but not the
// level-l one). Alignment is what preserves the FIFO-per-timestamp
// contract: a level-0 slot can only receive direct inserts after the
// cascade that drains the covering higher-level slot has already run, so
// list append order equals global seq order at every timestamp (the full
// argument is in DESIGN.md §5h). Events ≥ 2^32 ns ahead wait on an
// unsorted overflow list (insertion order = seq order) with a cached exact
// minimum, refiled wholesale when the cursor enters their epoch.
//
// The cursor tracks wheel progress and only ever advances to window bases
// ≤ the next event's timestamp, never past it — run_until() peeks without
// cascading, so a deadline parked before a far-future event cannot strand
// the cursor ahead of the clock.
class TimerWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;  // 256
  static constexpr SimTime kSpan = SimTime{1} << (kSlotBits * kLevels);

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::uint64_t cascades() const noexcept { return cascades_; }
  std::uint64_t tie_shaken() const noexcept { return tie_shaken_; }

  // Schedule-shake (DESIGN.md §5k): non-zero seed makes pop_min pick the
  // minimum (shake_key, seq) node from the slot instead of the list head.
  // Timestamp order is untouched — only FIFO ties are permuted — so every
  // shaken run is still a legal schedule of the same simulation.
  void set_tie_shake(std::uint64_t seed) noexcept { shake_seed_ = seed; }

  // Pre: n->at >= the last popped timestamp (enforced by EventLoop's clamp).
  void insert(EventNode* n) noexcept {
    assert(n->at >= cursor_ && "event filed behind the wheel cursor");
    place(n);
    ++size_;
  }

  // Exact timestamp of the earliest queued event. Pre: !empty(). Does not
  // advance the cursor (see class comment).
  SimTime peek_min_time() const noexcept {
    int s = find_from(0, static_cast<unsigned>(cursor_ & (kSlots - 1)));
    if (s >= 0) {
      return (cursor_ & ~static_cast<SimTime>(kSlots - 1)) |
             static_cast<SimTime>(s);
    }
    for (int l = 1; l < kLevels; ++l) {
      s = find_from(l, level_index(l));
      if (s >= 0) {
        // First occupied slot of the nearest level: scan its list for the
        // earliest timestamp (slots at level ≥ 1 hold a 256^l ns range).
        SimTime min = ~SimTime{0};
        for (const EventNode* n = slots_[l][static_cast<std::size_t>(s)].head;
             n != nullptr; n = n->next) {
          if (n->at < min) min = n->at;
        }
        return min;
      }
    }
    return overflow_min_;
  }

  // Unlink and return the earliest event (FIFO among equal timestamps),
  // cascading windows as needed. Pre: !empty().
  EventNode* pop_min() noexcept {
    for (;;) {
      const int s = find_from(0, static_cast<unsigned>(cursor_ & (kSlots - 1)));
      if (s >= 0) {
        List& slot = slots_[0][static_cast<std::size_t>(s)];
        if (shake_seed_ != 0 && slot.head->next != nullptr) [[unlikely]] {
          return pop_shaken(slot, static_cast<unsigned>(s));
        }
        EventNode* n = slot.head;
        slot.head = n->next;
        if (slot.head != nullptr) {
          slot.head->prev = nullptr;
          // Warm the likely-next resume (same-timestamp FIFO): the frame is
          // read by h.resume() right after the next pop.
          prefetch_frame(slot.head->handle.address());
        } else {
          slot.tail = nullptr;
          clear_bit(0, static_cast<unsigned>(s));
          // This slot drained: the next pop comes from the next occupied
          // level-0 slot (if the window has one) — start its head's line
          // fill now so it lands during the upcoming resume.
          const int ns = find_from(0, static_cast<unsigned>(s) + 1);
          if (ns >= 0) {
            __builtin_prefetch(slots_[0][static_cast<std::size_t>(ns)].head);
          }
        }
        n->next = nullptr;
        cursor_ = n->at;
        --size_;
        return n;
      }
      advance();  // pre-condition (!empty()) guarantees a source exists
    }
  }

 private:
  struct List {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  // Shaken pop: all nodes in a level-0 slot share one exact timestamp (the
  // slot spans 1 ns of the cursor's 256 ns window), so picking the minimum
  // (shake_key, seq) node permutes exactly the FIFO tie and nothing else.
  // Pre: slot has >= 2 nodes and shake_seed_ != 0. O(slot length) — shake
  // mode is a validator, not the perf path.
  EventNode* pop_shaken(List& slot, unsigned s) noexcept {
    EventNode* best = slot.head;
    std::uint64_t best_key = shake_key(shake_seed_, best->seq);
    for (EventNode* n = best->next; n != nullptr; n = n->next) {
      assert(n->at == best->at && "level-0 slot mixes timestamps");
      const std::uint64_t k = shake_key(shake_seed_, n->seq);
      if (k < best_key || (k == best_key && n->seq < best->seq)) {
        best = n;
        best_key = k;
      }
    }
    if (best != slot.head) ++tie_shaken_;
    if (best->prev != nullptr) best->prev->next = best->next;
    else slot.head = best->next;
    if (best->next != nullptr) best->next->prev = best->prev;
    else slot.tail = best->prev;
    if (slot.head == nullptr) {
      clear_bit(0, s);
    } else {
      slot.head->prev = nullptr;
      prefetch_frame(slot.head->handle.address());
    }
    best->next = nullptr;
    best->prev = nullptr;
    cursor_ = best->at;
    --size_;
    return best;
  }

  static void append(List& l, EventNode* n) noexcept {
    n->prev = l.tail;
    n->next = nullptr;
    if (l.tail != nullptr) {
      l.tail->next = n;
    } else {
      l.head = n;
    }
    l.tail = n;
  }

  unsigned level_index(int level) const noexcept {
    return static_cast<unsigned>((cursor_ >> (kSlotBits * level)) &
                                 (kSlots - 1));
  }

  void set_bit(int level, unsigned slot) noexcept {
    bitmap_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void clear_bit(int level, unsigned slot) noexcept {
    bitmap_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }

  // First occupied slot index >= `from` at `level`, or -1.
  int find_from(int level, unsigned from) const noexcept {
    if (from >= kSlots) return -1;
    unsigned w = from >> 6;
    std::uint64_t word =
        bitmap_[level][w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (word != 0) {
        return static_cast<int>((w << 6) +
                                static_cast<unsigned>(std::countr_zero(word)));
      }
      if (++w == kSlots / 64) return -1;
      word = bitmap_[level][w];
    }
  }

  // File `n` into the level/slot its timestamp selects relative to the
  // current cursor (or the overflow list). Does not touch size_. The level
  // is the highest byte in which `at` and the cursor differ — one XOR+clz
  // instead of a per-level window comparison loop.
  void place(EventNode* n) noexcept {
    const SimTime at = n->at;
    const SimTime diff = at ^ cursor_;
    const int level =
        diff == 0 ? 0 : (63 - std::countl_zero(diff)) >> 3;  // kSlotBits==8
    if (level < kLevels) [[likely]] {
      const unsigned slot = static_cast<unsigned>(
          (at >> (kSlotBits * level)) & (kSlots - 1));
      append(slots_[level][slot], n);
      set_bit(level, slot);
      return;
    }
    append(overflow_, n);
    ++overflow_size_;
    if (at < overflow_min_) overflow_min_ = at;
  }

  // Level 0 is exhausted up to its window edge: jump the cursor to the next
  // occupied window base and refile that source one level down. Pre: the
  // wheel holds at least one event somewhere above level 0.
  void advance() noexcept {
    for (int l = 1; l < kLevels; ++l) {
      // The cursor's own slot at every level is empty by construction (it
      // was cascaded when the cursor entered this window), so scanning from
      // it is equivalent to scanning from the next slot.
      const int s = find_from(l, level_index(l));
      if (s >= 0) {
        const int shift = kSlotBits * l;
        cursor_ = ((cursor_ >> (shift + kSlotBits)) << (shift + kSlotBits)) |
                  (static_cast<SimTime>(s) << shift);
        cascade_slot(l, static_cast<unsigned>(s));
        return;
      }
    }
    assert(overflow_size_ > 0 && "advance() on an empty wheel");
    cursor_ = (overflow_min_ >> (kSlotBits * kLevels)) << (kSlotBits * kLevels);
    refill_from_overflow();
  }

  // Detach a slot's whole list and refile each node (in list order, which is
  // seq order — this is what keeps equal-timestamp FIFO across cascades).
  //
  // The refile runs in two phases. The collect phase walks the chain from
  // BOTH ends at once — the list is doubly linked, so head->next and
  // tail->prev are independent dependent-load chains and the memory system
  // overlaps their line fills, halving the cold-walk latency that dominates
  // wheel cost at 100k+ clients. The place phase then refiles from the
  // scratch arrays (now cache-hot) in original list order: fronts forward,
  // backs backward.
  void cascade_slot(int level, unsigned slot) noexcept {
    List moved = slots_[level][slot];
    slots_[level][slot] = List{};
    clear_bit(level, slot);
    casc_front_.clear();
    casc_back_.clear();
    EventNode* f = moved.head;
    EventNode* b = moved.tail;
    if (f != nullptr) {
      for (;;) {
        if (f == b) {  // odd count: the middle node belongs to one side only
          casc_front_.push_back(f);
          break;
        }
        casc_front_.push_back(f);
        casc_back_.push_back(b);
        EventNode* fn = f->next;
        EventNode* bp = b->prev;
        if (fn == b) break;  // even count: the walks met between f and b
        f = fn;
        b = bp;
      }
    }
    // A level-1 slot cascades into level 0: every node here resumes within
    // the next 256 ns of simulated time, so this is the widest useful lead
    // to warm the coroutine frames that went cold while the timers slept.
    const bool imminent = level == 1;
    for (EventNode* n : casc_front_) {
      if (imminent) prefetch_frame(n->handle.address());
      place(n);
      ++cascades_;
    }
    for (std::size_t i = casc_back_.size(); i > 0; --i) {
      EventNode* n = casc_back_[i - 1];
      if (imminent) prefetch_frame(n->handle.address());
      place(n);
      ++cascades_;
    }
  }

  // The cursor just entered a new top-level epoch: pull every overflow event
  // belonging to it into the wheel, keeping the rest (still in seq order).
  void refill_from_overflow() noexcept {
    List keep;
    SimTime keep_min = ~SimTime{0};
    std::size_t kept = 0;
    const int epoch_shift = kSlotBits * kLevels;
    EventNode* n = overflow_.head;
    while (n != nullptr) {
      EventNode* next = n->next;
      if (next != nullptr) __builtin_prefetch(next);
      if ((n->at >> epoch_shift) == (cursor_ >> epoch_shift)) {
        place(n);
        ++cascades_;
      } else {
        append(keep, n);
        if (n->at < keep_min) keep_min = n->at;
        ++kept;
      }
      n = next;
    }
    overflow_ = keep;
    overflow_min_ = keep_min;
    overflow_size_ = kept;
  }

  List slots_[kLevels][kSlots];
  // Reused collect-phase scratch (capacity stabilizes after the first big
  // cascade, so steady state stays allocation-free).
  std::vector<EventNode*> casc_front_;
  std::vector<EventNode*> casc_back_;
  std::uint64_t bitmap_[kLevels][kSlots / 64] = {};
  List overflow_;
  SimTime overflow_min_ = ~SimTime{0};
  std::size_t overflow_size_ = 0;
  SimTime cursor_ = 0;
  std::size_t size_ = 0;
  std::uint64_t cascades_ = 0;
  std::uint64_t shake_seed_ = 0;
  std::uint64_t tie_shaken_ = 0;
};

}  // namespace detail

class EventLoop {
 public:
  EventLoop()
      : EventLoop(legacy_event_queue() ? QueueImpl::kLegacyHeap
                                       : QueueImpl::kTimerWheel) {}
  explicit EventLoop(QueueImpl impl) noexcept : impl_(impl) {
    set_tie_shake(default_tie_shake());
  }
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current simulated time (nanoseconds since simulation start).
  SimTime now() const noexcept { return now_; }

  // Resume `h` once the clock reaches `at`. Scheduling into the simulated
  // past is a bug: debug builds assert, release builds clamp to now() and
  // count it in stats().past_clamps.
  void schedule_at(SimTime at, std::coroutine_handle<> h);

  // Resume `h` at the current simulated time, after already-queued events
  // with the same timestamp.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  // Launch `task` as an independent simulated process. The loop owns the
  // coroutine; its frame is freed when it completes. An exception escaping a
  // spawned task terminates the simulation (they model top-level processes
  // and must handle their own errors).
  void spawn(Task<void> task);

  // Begin running a task the CALLER keeps owning. Scheduled like spawn(),
  // but the frame is not adopted: the caller must keep the Task alive until
  // it completes, and destroying the Task cancels the worker at its current
  // suspension point, freeing the frame. This is how long-lived service
  // workers (SMCache's update thread) shut down without leaking.
  void start(Task<void>& task) { schedule_now(task.handle()); }

  // Awaitable: suspend the current coroutine for `d` simulated time.
  // `co_await loop.sleep(0)` yields to other ready coroutines.
  auto sleep(SimDuration d) noexcept { return SleepAwaiter{*this, now_ + d}; }
  auto sleep_until(SimTime at) noexcept {
    return SleepAwaiter{*this, at < now_ ? now_ : at};
  }

  // Run until the event queue drains. Returns the number of events processed.
  std::uint64_t run();

  // Run until the queue drains or the clock would pass `deadline`; events at
  // exactly `deadline` are processed. Returns events processed.
  std::uint64_t run_until(SimTime deadline);

  bool idle() const noexcept {
    return impl_ == QueueImpl::kTimerWheel ? wheel_.empty() : heap_.empty();
  }
  std::uint64_t events_processed() const noexcept { return processed_; }
  std::size_t live_tasks() const noexcept { return live_tasks_; }
  QueueImpl queue_impl() const noexcept { return impl_; }

  EventLoopStats stats() const noexcept {
    return EventLoopStats{scheduled_, wheel_.cascades(), arena_.bytes(),
                          arena_.reuse(), past_clamps_, wheel_.tie_shaken()};
  }

  // Schedule-shake (DESIGN.md §5k): a non-zero seed deterministically
  // permutes the resume order of equal-timestamp events — every FIFO tie
  // becomes a seeded draw — so code whose correctness silently leans on the
  // kernel's FIFO tie-break fails loudly under an executable interleaving
  // search. 0 restores plain FIFO, bit-for-bit identical to an unshaken
  // run. Call before the first schedule_at: the legacy heap keys entries at
  // push time, the wheel at pop time, so a mid-run change would let the two
  // implementations diverge.
  void set_tie_shake(std::uint64_t seed) noexcept {
    shake_seed_ = seed;
    wheel_.set_tie_shake(seed);
  }
  std::uint64_t tie_shake() const noexcept { return shake_seed_; }

  // Test hook: record every resume as a (time, seq) pair — the determinism
  // pin compares these traces across queue implementations. Null disables.
  void set_trace(
      std::vector<std::pair<SimTime, std::uint64_t>>* sink) noexcept {
    trace_ = sink;
  }

 private:
  struct SleepAwaiter {
    EventLoop& loop;
    SimTime at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      loop.schedule_at(at, h);
    }
    void await_resume() const noexcept {}
  };

  struct HeapEntry {
    SimTime at;
    // Tie-break among equal timestamps: (key, seq). Unshaken runs push
    // key == seq so the pair degenerates to plain FIFO; shaken runs push
    // detail::shake_key(seed, seq), matching the wheel's pop-time draw.
    std::uint64_t key;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const HeapEntry& other) const noexcept {
      if (at != other.at) return at > other.at;
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  // Pop the earliest event, advance the clock, record the trace, and hand
  // back the coroutine to resume. Pre: !idle().
  std::coroutine_handle<> take_next();

  QueueImpl impl_;
  detail::TimerWheel wheel_;
  EventArena arena_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  std::vector<std::pair<SimTime, std::uint64_t>>* trace_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t shake_seed_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t past_clamps_ = 0;
  std::size_t live_tasks_ = 0;
};

}  // namespace imca::sim
