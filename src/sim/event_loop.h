// Discrete-event simulation kernel.
//
// The EventLoop owns the simulated clock and a time-ordered queue of ready
// coroutine handles. `run()` repeatedly pops the earliest event, advances the
// clock to its timestamp and resumes the coroutine. Events with equal
// timestamps resume in FIFO order (a monotone sequence number breaks ties),
// which makes every experiment bit-for-bit reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace imca::sim {

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current simulated time (nanoseconds since simulation start).
  SimTime now() const noexcept { return now_; }

  // Resume `h` once the clock reaches `at`. `at` must not be in the past.
  void schedule_at(SimTime at, std::coroutine_handle<> h);

  // Resume `h` at the current simulated time, after already-queued events
  // with the same timestamp.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  // Launch `task` as an independent simulated process. The loop owns the
  // coroutine; its frame is freed when it completes. An exception escaping a
  // spawned task terminates the simulation (they model top-level processes
  // and must handle their own errors).
  void spawn(Task<void> task);

  // Begin running a task the CALLER keeps owning. Scheduled like spawn(),
  // but the frame is not adopted: the caller must keep the Task alive until
  // it completes, and destroying the Task cancels the worker at its current
  // suspension point, freeing the frame. This is how long-lived service
  // workers (SMCache's update thread) shut down without leaking.
  void start(Task<void>& task) { schedule_now(task.handle()); }

  // Awaitable: suspend the current coroutine for `d` simulated time.
  // `co_await loop.sleep(0)` yields to other ready coroutines.
  auto sleep(SimDuration d) noexcept { return SleepAwaiter{*this, now_ + d}; }
  auto sleep_until(SimTime at) noexcept {
    return SleepAwaiter{*this, at < now_ ? now_ : at};
  }

  // Run until the event queue drains. Returns the number of events processed.
  std::uint64_t run();

  // Run until the queue drains or the clock would pass `deadline`; events at
  // exactly `deadline` are processed. Returns events processed.
  std::uint64_t run_until(SimTime deadline);

  bool idle() const noexcept { return queue_.empty(); }
  std::uint64_t events_processed() const noexcept { return processed_; }
  std::size_t live_tasks() const noexcept { return live_tasks_; }

 private:
  struct SleepAwaiter {
    EventLoop& loop;
    SimTime at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      loop.schedule_at(at, h);
    }
    void await_resume() const noexcept {}
  };

  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Entry& other) const noexcept {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_tasks_ = 0;
};

}  // namespace imca::sim
