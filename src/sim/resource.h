// Queueing resources: the mechanism behind every contention effect in the
// reproduced figures.
//
// A FifoResource models a station with `servers` identical servers and a
// single FIFO queue — a NIC serializing packets (1 server), a disk head
// (1 server), an 8-core CPU running I/O threads (8 servers). A request
// occupies one server for its service time; requests that arrive while all
// servers are busy queue in arrival order.
//
// Because arrivals are processed immediately at call time (each arrival takes
// the earliest-free server), the implementation needs no dedicated server
// process: `use()` computes this request's completion time and sleeps until
// it. This is exact for FIFO service disciplines.
#pragma once

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace imca::sim {

class FifoResource {
 public:
  FifoResource(EventLoop& loop, std::size_t servers, std::string name = {})
      : loop_(loop), free_at_(servers, 0), name_(std::move(name)) {
    assert(servers > 0);
  }

  // Occupy one server for `service` time, after queueing. Returns when the
  // request completes (at start + service on the simulated clock).
  [[nodiscard]] auto use(SimDuration service) {
    const SimTime done = reserve(service);
    return loop_.sleep_until(done);
  }

  // Book `service` time without waiting; returns the completion timestamp.
  // Used for fire-and-forget work (e.g. a NIC continuing to stream after the
  // initiating coroutine has moved on).
  SimTime reserve(SimDuration service) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const SimTime start = std::max(loop_.now(), *it);
    const SimTime done = start + service;
    *it = done;
    busy_ += service;
    queued_ += start - loop_.now();
    ++requests_;
    return done;
  }

  // Earliest time a new zero-length request could start service.
  SimTime next_free() const {
    const SimTime earliest = *std::min_element(free_at_.begin(), free_at_.end());
    return std::max(loop_.now(), earliest);
  }

  std::size_t servers() const noexcept { return free_at_.size(); }
  const std::string& name() const noexcept { return name_; }

  // --- instrumentation ---
  std::uint64_t requests() const noexcept { return requests_; }
  SimDuration total_busy() const noexcept { return busy_; }
  SimDuration total_queued() const noexcept { return queued_; }
  double mean_queue_wait_ns() const noexcept {
    return requests_ ? static_cast<double>(queued_) / static_cast<double>(requests_)
                     : 0.0;
  }
  // Utilization of the station over [0, now], averaged across servers.
  double utilization() const noexcept {
    const SimTime t = loop_.now();
    if (t == 0) return 0.0;
    return static_cast<double>(busy_) /
           (static_cast<double>(t) * static_cast<double>(free_at_.size()));
  }
  void reset_stats() noexcept {
    busy_ = 0;
    queued_ = 0;
    requests_ = 0;
  }

 private:
  EventLoop& loop_;
  std::vector<SimTime> free_at_;
  std::string name_;
  SimDuration busy_ = 0;
  SimDuration queued_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace imca::sim
