#include "sim/event_loop.h"

#include <cassert>

namespace imca::sim {

namespace {

bool g_legacy_event_queue = false;
std::uint64_t g_default_tie_shake = 0;

// Wrapper coroutine that owns a spawned task for its whole lifetime. The
// frame (and the Task parameter captured inside it) self-destroys at
// completion because final_suspend() never suspends.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

Detached detach_and_count(Task<void> task, std::size_t& live) {
  struct Decrement {
    std::size_t& live;
    ~Decrement() { --live; }
  } dec{live};
  co_await std::move(task);
}
}  // namespace

void set_legacy_event_queue(bool legacy) noexcept {
  g_legacy_event_queue = legacy;
}
bool legacy_event_queue() noexcept { return g_legacy_event_queue; }

void set_default_tie_shake(std::uint64_t seed) noexcept {
  g_default_tie_shake = seed;
}
std::uint64_t default_tie_shake() noexcept { return g_default_tie_shake; }

void EventLoop::schedule_at(SimTime at, std::coroutine_handle<> h) {
  if (at < now_) [[unlikely]] {
    assert(at >= now_ && "cannot schedule into the simulated past");
    at = now_;  // release builds clamp; stats().past_clamps records it
    ++past_clamps_;
  }
  ++scheduled_;
  if (impl_ == QueueImpl::kTimerWheel) {
    // A near-term schedule (channel handoffs, schedule_now chains, short
    // device-tick sleeps) resumes soon; its coroutine frame went cold while
    // parked, so start the line fill now — by resume time it has at worst
    // decayed to an outer-cache hit instead of a full memory stall. Longer
    // sleeps are warmed later, by the level-1 cascade that precedes their
    // resume (TimerWheel::cascade_slot).
    constexpr SimTime kFramePrefetchHorizon = 4096;
    if (at - now_ <= kFramePrefetchHorizon) {
      detail::prefetch_frame(h.address());
    }
    wheel_.insert(arena_.alloc(at, seq_++, h));
  } else {
    const std::uint64_t key =
        shake_seed_ != 0 ? detail::shake_key(shake_seed_, seq_) : seq_;
    heap_.push(HeapEntry{at, key, seq_++, h});
  }
}

void EventLoop::spawn(Task<void> task) {
  ++live_tasks_;
  Detached d = detach_and_count(std::move(task), live_tasks_);
  schedule_now(d.handle);
}

std::coroutine_handle<> EventLoop::take_next() {
  if (impl_ == QueueImpl::kTimerWheel) {
    EventNode* e = wheel_.pop_min();
    now_ = e->at;
    if (trace_ != nullptr) trace_->emplace_back(e->at, e->seq);
    const std::coroutine_handle<> h = e->handle;
    // Copy-out complete and the node is unlinked: recycle it before the
    // resume so the steady path's next schedule_at reuses it cache-hot.
    arena_.release(e);
    return h;
  }
  const HeapEntry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  if (trace_ != nullptr) trace_->emplace_back(e.at, e.seq);
  return e.handle;
}

std::uint64_t EventLoop::run() {
  std::uint64_t n = 0;
  if (impl_ == QueueImpl::kTimerWheel) {
    while (!wheel_.empty()) {
      EventNode* e = wheel_.pop_min();
      now_ = e->at;
      if (trace_ != nullptr) [[unlikely]] trace_->emplace_back(e->at, e->seq);
      const std::coroutine_handle<> h = e->handle;
      // Copy-out complete and the node is unlinked: recycle it before the
      // resume so the steady path's next schedule_at reuses it cache-hot.
      arena_.release(e);
      ++n;
      ++processed_;
      h.resume();
    }
  } else {
    while (!heap_.empty()) {
      const std::coroutine_handle<> h = take_next();
      ++n;
      ++processed_;
      h.resume();
    }
  }
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (!idle()) {
    const SimTime next = impl_ == QueueImpl::kTimerWheel
                             ? wheel_.peek_min_time()
                             : heap_.top().at;
    if (next > deadline) break;
    const std::coroutine_handle<> h = take_next();
    ++n;
    ++processed_;
    h.resume();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace imca::sim
