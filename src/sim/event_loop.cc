#include "sim/event_loop.h"

#include <cassert>

namespace imca::sim {

namespace {

// Wrapper coroutine that owns a spawned task for its whole lifetime. The
// frame (and the Task parameter captured inside it) self-destroys at
// completion because final_suspend() never suspends.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

Detached detach_and_count(Task<void> task, std::size_t& live) {
  struct Decrement {
    std::size_t& live;
    ~Decrement() { --live; }
  } dec{live};
  co_await std::move(task);
}
}  // namespace

void EventLoop::schedule_at(SimTime at, std::coroutine_handle<> h) {
  assert(at >= now_ && "cannot schedule into the simulated past");
  queue_.push(Entry{at, seq_++, h});
}

void EventLoop::spawn(Task<void> task) {
  ++live_tasks_;
  Detached d = detach_and_count(std::move(task), live_tasks_);
  schedule_now(d.handle);
}

std::uint64_t EventLoop::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.at;
    ++n;
    ++processed_;
    e.handle.resume();
  }
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.at;
    ++n;
    ++processed_;
    e.handle.resume();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace imca::sim
