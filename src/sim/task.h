// Lazy coroutine task type for simulated processes.
//
// Every activity in the simulator — a client issuing a read, the GlusterFS
// server translator stack, a memcached daemon servicing a request — is a
// `Task<T>` coroutine. Tasks are *lazy*: creating one does nothing until it
// is either `co_await`ed (which chains it to the awaiting coroutine via
// symmetric transfer) or handed to `EventLoop::spawn` (which runs it as an
// independent simulated process).
//
// The kernel is strictly single-threaded: "parallelism" between simulated
// nodes is interleaving on the simulated clock, so no atomics or locks are
// needed and every run is deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

namespace imca::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
class TaskPromise;

// Final awaiter: when a task finishes, control transfers directly to the
// coroutine that awaited it (or parks if it was spawned detached).
template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto continuation = h.promise().continuation();
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
class TaskPromiseBase {
 public:
  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter<TaskPromise<T>> final_suspend() const noexcept { return {}; }

  void set_continuation(std::coroutine_handle<> c) noexcept {
    continuation_ = c;
  }
  std::coroutine_handle<> continuation() const noexcept {
    return continuation_;
  }

 private:
  std::coroutine_handle<> continuation_;
};

template <typename T>
class TaskPromise final : public TaskPromiseBase<T> {
 public:
  Task<T> get_return_object() noexcept;

  template <typename U>
  void return_value(U&& value) {
    result_.template emplace<1>(std::forward<U>(value));
  }
  void unhandled_exception() noexcept {
    result_.template emplace<2>(std::current_exception());
  }

  T take_result() {
    if (result_.index() == 2) {
      std::rethrow_exception(std::get<2>(std::move(result_)));
    }
    assert(result_.index() == 1 && "task awaited before completion");
    return std::get<1>(std::move(result_));
  }

 private:
  std::variant<std::monostate, T, std::exception_ptr> result_;
};

template <>
class TaskPromise<void> final : public TaskPromiseBase<void> {
 public:
  Task<void> get_return_object() noexcept;

  void return_void() const noexcept {}
  void unhandled_exception() noexcept { error_ = std::current_exception(); }

  void take_result() {
    if (error_) std::rethrow_exception(std::move(error_));
  }

 private:
  std::exception_ptr error_;
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  // Awaiting a task starts it; the awaiting coroutine resumes when the task
  // completes, receiving its result (or rethrowing its exception).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().set_continuation(awaiting);
        return handle;  // symmetric transfer: run the task body now
      }
      T await_resume() { return handle.promise().take_result(); }
    };
    return Awaiter{handle_};
  }

  // Used by EventLoop::spawn, which takes over lifetime management.
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

  // Non-owning view of the frame, for EventLoop::start (caller-owned
  // background tasks). The Task keeps ownership; destroying it destroys the
  // frame at its current suspension point.
  std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace imca::sim
