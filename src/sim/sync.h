// Coroutine synchronization primitives for simulated processes.
//
//  * Event     — one-shot level-triggered gate (multiple waiters).
//  * Channel<T>— unbounded FIFO message queue (the spine of mailboxes and
//                daemon request queues).
//  * SimMutex  — FIFO mutual exclusion on simulated time.
//  * Semaphore — counting semaphore, FIFO wakeup.
//  * Barrier   — reusable N-party barrier (the multi-client benchmarks in the
//                paper separate phases and record sizes with barriers).
//  * when_all  — run a batch of tasks concurrently, resume when all finish.
//
// All primitives wake waiters *through the event queue* (never by resuming
// inline), so wakeup order is governed by the loop's deterministic FIFO
// tie-break and no primitive re-enters user code from inside set()/send().
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/task.h"

namespace imca::sim {

class Event {
 public:
  explicit Event(EventLoop& loop) noexcept : loop_(loop) {}

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) loop_.schedule_now(h);
    waiters_.clear();
  }
  bool is_set() const noexcept { return set_; }

  auto wait() noexcept {
    struct Awaiter {
      Event& event;
      bool await_ready() const noexcept { return event.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  EventLoop& loop_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool set_ = false;
};

template <typename T>
class Channel {
 public:
  explicit Channel(EventLoop& loop) noexcept : loop_(loop) {}

  // Deliver a value. If a receiver is parked, the value is handed to it
  // directly (bypassing the queue) and it is scheduled at the current time.
  void send(T value) {
    if (!receivers_.empty()) {
      Receiver* r = receivers_.front();
      receivers_.pop_front();
      r->slot.emplace(std::move(value));
      loop_.schedule_now(r->handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  // Awaitable receive; suspends until a value is available.
  auto recv() noexcept {
    struct Awaiter : Receiver {
      Channel& ch;
      explicit Awaiter(Channel& c) noexcept : ch(c) {}
      bool await_ready() {
        if (ch.items_.empty()) return false;
        this->slot.emplace(std::move(ch.items_.front()));
        ch.items_.pop_front();
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        ch.receivers_.push_back(this);
      }
      T await_resume() {
        assert(this->slot.has_value());
        return std::move(*this->slot);
      }
    };
    return Awaiter{*this};
  }

  std::size_t pending() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

 private:
  struct Receiver {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };

  EventLoop& loop_;
  std::deque<T> items_;
  std::deque<Receiver*> receivers_;
};

class SimMutex {
 public:
  explicit SimMutex(EventLoop& loop) noexcept : loop_(loop) {}

  auto lock() noexcept {
    struct Awaiter {
      SimMutex& m;
      bool await_ready() {
        if (m.locked_) return false;
        m.locked_ = true;
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        m.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void unlock() {
    assert(locked_);
    if (!waiters_.empty()) {
      // Ownership transfers to the first waiter; locked_ stays true.
      auto h = waiters_.front();
      waiters_.pop_front();
      loop_.schedule_now(h);
    } else {
      locked_ = false;
    }
  }

  bool locked() const noexcept { return locked_; }

 private:
  EventLoop& loop_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool locked_ = false;
};

// RAII guard: `auto g = co_await ScopedLock::acquire(mutex);`
class ScopedLock {
 public:
  static Task<ScopedLock> acquire(SimMutex& m) {
    co_await m.lock();
    co_return ScopedLock(m);
  }
  ScopedLock(ScopedLock&& other) noexcept
      : mutex_(std::exchange(other.mutex_, nullptr)) {}
  ScopedLock& operator=(ScopedLock&&) = delete;
  ScopedLock(const ScopedLock&) = delete;
  ~ScopedLock() {
    if (mutex_) mutex_->unlock();
  }

 private:
  explicit ScopedLock(SimMutex& m) noexcept : mutex_(&m) {}
  SimMutex* mutex_;
};

class Semaphore {
 public:
  Semaphore(EventLoop& loop, std::uint64_t initial) noexcept
      : loop_(loop), count_(initial) {}

  auto acquire() noexcept {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() {
        if (s.count_ == 0) return false;
        --s.count_;
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      // The released unit passes straight to the first waiter.
      auto h = waiters_.front();
      waiters_.pop_front();
      loop_.schedule_now(h);
    } else {
      ++count_;
    }
  }

  std::uint64_t available() const noexcept { return count_; }

 private:
  EventLoop& loop_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::uint64_t count_;
};

class Barrier {
 public:
  Barrier(EventLoop& loop, std::size_t parties) noexcept
      : loop_(loop), parties_(parties) {
    assert(parties > 0);
  }

  // Awaitable: the first parties-1 arrivers suspend; the last arriver
  // releases everyone and continues without suspending. The barrier then
  // resets for reuse (phase after phase, as in the paper's benchmarks).
  auto arrive_and_wait() noexcept {
    struct Awaiter {
      Barrier& b;
      bool await_ready() {
        if (b.arrived_ + 1 == b.parties_) {
          b.arrived_ = 0;
          for (auto h : b.waiters_) b.loop_.schedule_now(h);
          b.waiters_.clear();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++b.arrived_;
        b.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  EventLoop& loop_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Run `tasks` concurrently on `loop`; the returned task completes when every
// child has completed. Children run as spawned processes, so they interleave
// on the simulated clock like independent nodes.
Task<void> when_all(EventLoop& loop, std::vector<Task<void>> tasks);

// Set `event` after `delay`, from a detached process. The shared_ptr keeps
// the event alive even if every waiter has long since raced past it — the
// building block for deadline-vs-completion races (McClient per-op timeouts).
void arm_timeout(EventLoop& loop, std::shared_ptr<Event> event,
                 SimDuration delay);

}  // namespace imca::sim
