// Slab arena for event-queue nodes.
//
// The timer wheel (event_loop.h) links one `EventNode` per scheduled resume
// into intrusive per-slot lists. At "millions of simulated users" scale the
// kernel schedules hundreds of millions of events per run, so nodes must not
// cost a malloc each: the arena carves them out of fixed-size chunks and
// recycles popped nodes through a free list. On the steady path (sleep ->
// resume -> sleep) every allocation is served from the free list — the node
// released by the resume that is currently executing — so `schedule_at` and
// `SleepAwaiter` never touch the system allocator after warm-up.
//
// Ownership rules (DESIGN.md §5h):
//   * The EventLoop is the only owner. Nodes are handed out by `alloc()`,
//     threaded into exactly one wheel/overflow list, and returned by
//     `release()` the moment they are popped.
//   * A node must be released only AFTER its fields (`handle`, `at`, `seq`)
//     have been copied out, and never while it is still linked into a slot
//     list — a released node's `next` is repurposed as the free-list link,
//     so releasing a queued node corrupts the wheel (the bug class encoded
//     in tests/lint_corpus/node_freed_bad.cc).
//   * Chunks are never returned to the OS while the arena lives; peak event
//     concurrency bounds memory, and a drained loop reuses its chunks for
//     the next run (tested by ArenaReuseAfterDrain).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"

namespace imca::sim {

// One scheduled resume: timestamp, global FIFO tie-break, coroutine handle,
// and the intrusive links for the wheel slot (or free) list it lives on.
struct EventNode {
  SimTime at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> handle;
  EventNode* prev = nullptr;
  EventNode* next = nullptr;
};

class EventArena {
 public:
  static constexpr std::size_t kChunkNodes = 4096;

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  EventNode* alloc(SimTime at, std::uint64_t seq,
                   std::coroutine_handle<> handle) {
    EventNode* n = free_;
    if (n != nullptr) {
      free_ = n->next;
      ++reuse_;
    } else {
      if (next_in_chunk_ == kChunkNodes) {
        chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
        next_in_chunk_ = 0;
      }
      n = &chunks_.back()[next_in_chunk_++];
    }
    n->at = at;
    n->seq = seq;
    n->handle = handle;
    n->prev = nullptr;
    n->next = nullptr;
    return n;
  }

  // Return a node to the free list. The caller must already have unlinked it
  // from any slot list and copied out every field it still needs.
  void release(EventNode* n) noexcept {
    n->next = free_;
    free_ = n;
  }

  // Total bytes held in chunks (monotone; recycling never grows this).
  std::uint64_t bytes() const noexcept {
    return static_cast<std::uint64_t>(chunks_.size()) * kChunkNodes *
           sizeof(EventNode);
  }

  // Allocations served from the free list instead of a fresh chunk slot.
  std::uint64_t reuse() const noexcept { return reuse_; }

 private:
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::size_t next_in_chunk_ = kChunkNodes;  // forces the first chunk
  EventNode* free_ = nullptr;
  std::uint64_t reuse_ = 0;
};

}  // namespace imca::sim
