// Minimal std::expected replacement (the toolchain is C++20; std::expected is
// C++23). Carries either a value or an `Errc`.
//
// Usage:
//   Expected<Stat> r = client.stat(path);
//   if (!r) return r.error();
//   use(r.value());
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/errc.h"

namespace imca {

template <typename T>
class [[nodiscard]] Expected {
 public:
  // Intentionally implicit: lets `co_return value;` and `return Errc::kNoEnt;`
  // both work at call sites, mirroring std::expected.
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Errc error) : state_(std::in_place_index<1>, error) {
    assert(error != Errc::kOk && "an error Expected must carry a real error");
  }

  bool has_value() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<0>(state_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<0>(state_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Error accessor; kOk when a value is present so callers can always log it.
  Errc error() const noexcept {
    return has_value() ? Errc::kOk : std::get<1>(state_);
  }

  T value_or(T fallback) const& {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Errc> state_;
};

// void specialisation: success/failure with no payload.
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() : error_(Errc::kOk) {}
  Expected(Errc error) : error_(error) {}

  bool has_value() const noexcept { return error_ == Errc::kOk; }
  explicit operator bool() const noexcept { return has_value(); }
  Errc error() const noexcept { return error_; }

 private:
  Errc error_;
};

}  // namespace imca
