// Measurement primitives for the benchmarks.
//
//  * Counter    — monotonically increasing event count.
//  * MeanAccum  — streaming mean/min/max (no allocation).
//  * LatencyHistogram — log2-bucketed latency histogram with percentile
//    estimation; buckets cover 1ns .. ~18s which spans everything the
//    simulator produces.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/units.h"

namespace imca {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class MeanAccum {
 public:
  void add(double x) noexcept {
    sum_ += x;
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  void reset() noexcept { *this = MeanAccum(); }

 private:
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t n_ = 0;
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(SimDuration ns) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  double mean_ns() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  // Percentile in nanoseconds via bucket interpolation. q in [0, 1].
  double percentile_ns(double q) const noexcept;
  SimDuration max_ns() const noexcept { return max_; }
  void reset() noexcept { *this = LatencyHistogram(); }

  // "mean=12.3us p50=... p99=... max=... n=..."
  std::string summary() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  SimDuration max_ = 0;
};

// Pretty-print a nanosecond quantity with an adaptive unit (ns/us/ms/s).
std::string format_duration(double ns);

}  // namespace imca
