// Aligned-column table printer for the figure benches.
//
// Every bench prints its figure as a plain-text table ("the same rows/series
// the paper reports"). Columns auto-size to their widest cell; a CSV mode is
// provided so results can be re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace imca {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  // Formatting helpers for common cell types.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::uint64_t v);

  // Render with aligned columns to `out` (default stdout).
  void print(std::FILE* out = stdout) const;
  // Render as CSV.
  void print_csv(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace imca
