// POSIX-flavoured error codes shared by every layer of the stack.
//
// The simulated file systems, the memcached daemon and the RPC layer all
// report failures through this single enum so that errors can cross module
// boundaries (client xlator -> RPC -> server xlator -> store) without
// translation tables.
#pragma once

#include <string_view>

namespace imca {

enum class Errc : int {
  kOk = 0,
  kNoEnt,          // no such file, directory or cache item
  kExist,          // file already exists
  kIsDir,          // operation on a directory where a file was required
  kNotDir,         // path component is not a directory
  kInval,          // invalid argument (bad offset, bad key, bad record)
  kIo,             // underlying device error
  kNoSpc,          // store or cache out of space
  kTooBig,         // object exceeds a size ceiling (e.g. memcached 1MB item)
  kKeyTooLong,     // memcached 250-byte key ceiling
  kNotStored,      // memcached: storage condition not met (add/replace)
  kTimedOut,       // RPC or cache operation deadline exceeded
  kConnRefused,    // peer not listening (daemon down)
  kConnReset,      // peer died mid-operation
  kBadF,           // bad file descriptor
  kStale,          // handle refers to a deleted object
  kProto,          // malformed protocol message
  kBusy,           // resource temporarily unavailable
  kNotSupported,   // operation not implemented by this xlator/server
};

// Human-readable name, stable for logs and test assertions.
std::string_view errc_name(Errc e) noexcept;

// True when `e` signals success.
constexpr bool ok(Errc e) noexcept { return e == Errc::kOk; }

}  // namespace imca
