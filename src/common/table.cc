#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>

namespace imca {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(width[c]),
                   row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c ? "," : "", row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace imca
