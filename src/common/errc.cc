#include "common/errc.h"

namespace imca {

std::string_view errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::kOk: return "OK";
    case Errc::kNoEnt: return "NOENT";
    case Errc::kExist: return "EXIST";
    case Errc::kIsDir: return "ISDIR";
    case Errc::kNotDir: return "NOTDIR";
    case Errc::kInval: return "INVAL";
    case Errc::kIo: return "IO";
    case Errc::kNoSpc: return "NOSPC";
    case Errc::kTooBig: return "TOOBIG";
    case Errc::kKeyTooLong: return "KEYTOOLONG";
    case Errc::kNotStored: return "NOTSTORED";
    case Errc::kTimedOut: return "TIMEDOUT";
    case Errc::kConnRefused: return "CONNREFUSED";
    case Errc::kConnReset: return "CONNRESET";
    case Errc::kBadF: return "BADF";
    case Errc::kStale: return "STALE";
    case Errc::kProto: return "PROTO";
    case Errc::kBusy: return "BUSY";
    case Errc::kNotSupported: return "NOTSUPPORTED";
  }
  return "UNKNOWN";
}

}  // namespace imca
