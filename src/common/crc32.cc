#include "common/crc32.h"

#include <array>

namespace imca {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

std::uint32_t update(std::uint32_t crc, const unsigned char* p,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  return ~update(0xFFFFFFFFu, p, data.size());
}

std::uint32_t crc32(std::string_view data) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  return ~update(0xFFFFFFFFu, p, data.size());
}

std::uint32_t libmemcache_hash(std::string_view key) noexcept {
  return (crc32(key) >> 16) & 0x7FFFu;
}

}  // namespace imca
