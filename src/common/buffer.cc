#include "common/buffer.h"

#include <algorithm>
#include <cstring>

namespace imca {

namespace {
BufferStats g_stats;
bool g_legacy_copy_path = false;
}  // namespace

BufferStats& buffer_stats() noexcept { return g_stats; }
void reset_buffer_stats() noexcept { g_stats = BufferStats{}; }

bool legacy_copy_path() noexcept { return g_legacy_copy_path; }
void set_legacy_copy_path(bool on) noexcept { g_legacy_copy_path = on; }

// --- Segment ---

Segment Segment::take(std::vector<std::byte>&& data) {
  ++g_stats.segments_allocated;
  g_stats.segment_bytes += data.size();
  return Segment(
      std::make_shared<const std::vector<std::byte>>(std::move(data)));
}

Segment Segment::copy_of(std::span<const std::byte> src) {
  g_stats.bytes_copied += src.size();
  return take(std::vector<std::byte>(src.begin(), src.end()));
}

Segment Segment::zeros(std::size_t n) {
  return take(std::vector<std::byte>(n, std::byte{0}));
}

// --- BufView ---

BufView::BufView(Segment seg, std::size_t offset, std::size_t length)
    : seg_(std::move(seg)) {
  const std::size_t n = seg_.size();
  off_ = std::min(offset, n);
  len_ = std::min(length, n - off_);
}

BufView BufView::sub(std::size_t offset, std::size_t length) const {
  const std::size_t off = std::min(offset, len_);
  const std::size_t len = std::min(length, len_ - off);
  return BufView(seg_, off_ + off, len);
}

// --- Buffer ---

Buffer Buffer::take(std::vector<std::byte>&& data) {
  Buffer b;
  b.append(BufView(Segment::take(std::move(data))));
  return b;
}

Buffer Buffer::copy_of(std::span<const std::byte> src) {
  Buffer b;
  b.append(BufView(Segment::copy_of(src)));
  return b;
}

Buffer Buffer::of_string(std::string_view s) {
  return copy_of({reinterpret_cast<const std::byte*>(s.data()), s.size()});
}

Buffer Buffer::zeros(std::size_t n) {
  Buffer b;
  b.append(BufView(Segment::zeros(n)));
  return b;
}

void Buffer::append(BufView v) {
  if (v.empty()) return;
  if (g_legacy_copy_path && !views_.empty()) {
    // Old regime: growing a buffer re-copies the incoming bytes.
    v = BufView(Segment::copy_of(v.bytes()));
  }
  size_ += v.size();
  views_.push_back(std::move(v));
}

void Buffer::append(const Buffer& other) {
  if (&other == this) {
    Buffer copy = other;
    append(std::move(copy));
    return;
  }
  for (const BufView& v : other.views_) append(v);
}

void Buffer::append(Buffer&& other) {
  if (&other == this) {
    // Self-append: duplicate the view list (segments are shared either way).
    const std::size_t n = views_.size();
    views_.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) append(views_[i]);
    return;
  }
  if (views_.empty() && !g_legacy_copy_path) {
    views_ = std::move(other.views_);
    size_ = other.size_;
  } else {
    for (BufView& v : other.views_) append(std::move(v));
  }
  other.views_.clear();
  other.size_ = 0;
}

std::pair<std::size_t, std::size_t> Buffer::locate(std::size_t offset) const {
  std::size_t i = 0;
  for (; i < views_.size(); ++i) {
    if (offset < views_[i].size()) return {i, offset};
    offset -= views_[i].size();
  }
  return {views_.size(), 0};
}

Buffer Buffer::slice(std::size_t offset, std::size_t length) const {
  ++g_stats.view_slices;
  const std::size_t off = std::min(offset, size_);
  const std::size_t len = std::min(length, size_ - off);
  if (g_legacy_copy_path) {
    // Old regime: a sub-range is its own freshly copied vector.
    std::vector<std::byte> out(len);
    std::size_t copied = 0;
    auto [vi, vo] = locate(off);
    while (copied < len) {
      const auto src = views_[vi].bytes().subspan(vo);
      const std::size_t n = std::min(len - copied, src.size());
      std::memcpy(out.data() + copied, src.data(), n);
      copied += n;
      ++vi;
      vo = 0;
    }
    g_stats.bytes_copied += len;
    return Buffer::take(std::move(out));
  }
  Buffer b;
  auto [vi, vo] = locate(off);
  std::size_t left = len;
  while (left > 0) {
    BufView part = views_[vi].sub(vo, left);
    left -= part.size();
    b.size_ += part.size();
    b.views_.push_back(std::move(part));
    ++vi;
    vo = 0;
  }
  return b;
}

std::size_t Buffer::copy_to(std::size_t offset,
                            std::span<std::byte> out) const {
  if (offset >= size_ || out.empty()) return 0;
  const std::size_t len = std::min(out.size(), size_ - offset);
  std::size_t copied = 0;
  auto [vi, vo] = locate(offset);
  while (copied < len) {
    const auto src = views_[vi].bytes().subspan(vo);
    const std::size_t n = std::min(len - copied, src.size());
    std::memcpy(out.data() + copied, src.data(), n);
    copied += n;
    ++vi;
    vo = 0;
  }
  g_stats.bytes_copied += len;
  return len;
}

std::vector<std::byte> Buffer::gather() const {
  ++g_stats.gather_calls;
  std::vector<std::byte> out(size_);
  copy_to(0, out);
  return out;
}

std::string Buffer::gather_string() const {
  ++g_stats.gather_calls;
  std::string out(size_, '\0');
  copy_to(0, {reinterpret_cast<std::byte*>(out.data()), out.size()});
  return out;
}

std::span<const std::byte> Buffer::contiguous(
    std::size_t offset, std::size_t length) const noexcept {
  if (offset + length > size_ || length == 0) return {};
  auto [vi, vo] = locate(offset);
  const auto v = views_[vi].bytes();
  if (vo + length > v.size()) return {};
  return v.subspan(vo, length);
}

std::byte Buffer::at(std::size_t i) const {
  auto [vi, vo] = locate(i);
  return views_[vi].bytes()[vo];
}

std::size_t Buffer::find(std::string_view needle, std::size_t from) const {
  if (needle.empty()) return from <= size_ ? from : npos;
  if (size_ < needle.size()) return npos;
  const std::size_t last_start = size_ - needle.size();
  const auto first = static_cast<std::byte>(needle.front());
  std::size_t base = 0;
  for (std::size_t vi = 0; vi < views_.size(); ++vi) {
    const auto v = views_[vi].bytes();
    std::size_t i = from > base ? from - base : 0;
    for (; i < v.size(); ++i) {
      const std::size_t pos = base + i;
      if (pos > last_start) return npos;
      if (v[i] != first) continue;
      // Tail comparison, walking segments from (vi, i).
      std::size_t wvi = vi, wvo = i, matched = 0;
      while (matched < needle.size()) {
        const auto w = views_[wvi].bytes();
        const std::size_t n =
            std::min(needle.size() - matched, w.size() - wvo);
        if (std::memcmp(w.data() + wvo, needle.data() + matched, n) != 0) {
          break;
        }
        matched += n;
        ++wvi;
        wvo = 0;
      }
      if (matched == needle.size()) return pos;
    }
    base += v.size();
  }
  return npos;
}

bool Buffer::ends_with(std::string_view tail) const {
  if (tail.size() > size_) return false;
  return find(tail, size_ - tail.size()) == size_ - tail.size();
}

bool Buffer::content_equals(std::span<const std::byte> bytes) const {
  if (bytes.size() != size_) return false;
  std::size_t off = 0;
  for (const BufView& v : views_) {
    const auto s = v.bytes();
    if (std::memcmp(s.data(), bytes.data() + off, s.size()) != 0) return false;
    off += s.size();
  }
  return true;
}

bool Buffer::content_equals(const Buffer& other) const {
  if (other.size_ != size_) return false;
  auto a = begin(), b = other.begin();
  for (; a != end(); ++a, ++b) {
    if (*a != *b) return false;
  }
  return true;
}

// --- iterator ---

void Buffer::const_iterator::skip_empty() {
  while (view_ < buf_->views().size() &&
         pos_ >= buf_->views()[view_].size()) {
    ++view_;
    pos_ = 0;
  }
}

Buffer::const_iterator& Buffer::const_iterator::operator++() {
  ++pos_;
  skip_empty();
  return *this;
}

Buffer::const_iterator Buffer::begin() const {
  const_iterator it(this, 0, 0);
  it.skip_empty();
  return it;
}

Buffer::const_iterator Buffer::end() const {
  return const_iterator(this, views_.size(), 0);
}

}  // namespace imca
