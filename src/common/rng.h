// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every stochastic choice in the simulator — workload record contents, file
// name shuffles, failure injection points — draws from an Rng seeded from the
// experiment seed, so a run is reproducible bit-for-bit. std::mt19937_64
// would also work but its state is bulky and its distributions are not
// portable across standard libraries; xoshiro + explicit helpers are.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/hash.h"

namespace imca {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 seed expansion, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x = splitmix64(x);
      word = x;
    }
  }

  // Uniform over [0, 2^64).
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform over [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // Rejection sampling to remove modulo bias; the retry loop is rarely
    // taken (probability < bound / 2^64 per draw).
    const std::uint64_t threshold = (0ull - bound) % bound;  // 2^64 mod bound
    while (true) {
      const std::uint64_t x = next();
      if (x >= threshold) return x % bound;
    }
  }

  // Uniform over [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform() < p; }

  // Derive an independent stream (e.g. one per simulated client).
  Rng fork() noexcept { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace imca
