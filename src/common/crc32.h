// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) plus the key->server
// selector used by libmemcache.
//
// The paper (Section 4.2, 5.1) locates the MCD holding a key with "the
// default CRC32 hashing function in libmemcache". libmemcache reduces the
// 32-bit CRC to a 15-bit value before taking it modulo the server count:
//
//     hash = (crc32(key) >> 16) & 0x7fff;   server = hash % nservers;
//
// We reproduce that exactly so block placement matches the original system.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace imca {

// Plain CRC-32 over a byte range. Matches zlib's crc32() for the same input.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;
std::uint32_t crc32(std::string_view data) noexcept;

// libmemcache's reduction of the CRC to the value used for server selection.
std::uint32_t libmemcache_hash(std::string_view key) noexcept;

}  // namespace imca
