// Minimal leveled logger.
//
// Logging is off by default (benches must print clean tables); tests and
// debugging sessions enable it with set_log_level. The simulated clock is not
// accessible from here, so callers that care about simulated timestamps
// include them in the message.
#pragma once

#include <cstdio>
#include <string_view>

namespace imca {

enum class LogLevel : int { kNone = 0, kError, kWarn, kInfo, kDebug };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define IMCA_LOG_ERROR(...) ::imca::detail::vlog(::imca::LogLevel::kError, __VA_ARGS__)
#define IMCA_LOG_WARN(...) ::imca::detail::vlog(::imca::LogLevel::kWarn, __VA_ARGS__)
#define IMCA_LOG_INFO(...) ::imca::detail::vlog(::imca::LogLevel::kInfo, __VA_ARGS__)
#define IMCA_LOG_DEBUG(...) ::imca::detail::vlog(::imca::LogLevel::kDebug, __VA_ARGS__)

}  // namespace imca
