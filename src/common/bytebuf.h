// Byte buffer with separate write (append) and read (cursor) views.
//
// Used as the wire representation everywhere bytes cross the simulated
// network: RPC argument marshalling and the memcached text protocol both
// build and parse real byte sequences, so message sizes charged to the links
// are the sizes of actual encodings, not estimates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/errc.h"
#include "common/expected.h"

namespace imca {

class ByteBuf {
 public:
  ByteBuf() = default;
  explicit ByteBuf(std::vector<std::byte> data) : data_(std::move(data)) {}

  // --- writing (appends at the end) ---
  void put_u8(std::uint8_t v) { append(&v, 1); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  // Length-prefixed string (u32 length + bytes).
  void put_string(std::string_view s);
  // Length-prefixed blob.
  void put_bytes(std::span<const std::byte> b);
  // Raw bytes, no length prefix (protocol text, payload bodies).
  void put_raw(std::string_view s);
  void put_raw(std::span<const std::byte> b);

  // --- reading (advances the cursor) ---
  Expected<std::uint8_t> get_u8();
  Expected<std::uint16_t> get_u16();
  Expected<std::uint32_t> get_u32();
  Expected<std::uint64_t> get_u64();
  Expected<std::int64_t> get_i64();
  Expected<std::string> get_string();
  Expected<std::vector<std::byte>> get_bytes();
  // Raw bytes of an exact size (no prefix).
  Expected<std::vector<std::byte>> get_raw(std::size_t n);

  // --- inspection ---
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - cursor_; }
  bool exhausted() const noexcept { return remaining() == 0; }
  std::span<const std::byte> bytes() const noexcept { return data_; }
  void rewind() noexcept { cursor_ = 0; }

 private:
  void append(const void* p, std::size_t n);
  Expected<void> need(std::size_t n) const;

  std::vector<std::byte> data_;
  std::size_t cursor_ = 0;
};

// Convenience conversions between strings and byte vectors (workload data and
// memcached values are real bytes end to end).
std::vector<std::byte> to_bytes(std::string_view s);
std::string to_string(std::span<const std::byte> b);

}  // namespace imca
