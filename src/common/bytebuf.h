// Byte buffer with separate write (append) and read (cursor) views.
//
// Used as the wire representation everywhere bytes cross the simulated
// network: RPC argument marshalling and the memcached text protocol both
// build and parse real byte sequences, so message sizes charged to the links
// are the sizes of actual encodings, not estimates.
//
// Storage is a Buffer (refcounted segment chain) plus a small mutable append
// tail. Headers and protocol text are encoded into the tail; payloads enter
// through put_buffer()/put_bytes(Buffer), which splice the caller's segments
// in without copying, and leave through get_view()/get_bytes(), which hand
// back zero-copy slices of the receive buffer. The payload bytes of a reply
// are therefore the same storage the cache or disk produced — only the few
// header bytes around them are ever re-encoded per hop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/errc.h"
#include "common/expected.h"

namespace imca {

class ByteBuf {
 public:
  ByteBuf() = default;
  explicit ByteBuf(std::vector<std::byte> data)
      : chain_(Buffer::take(std::move(data))) {}
  explicit ByteBuf(Buffer data) : chain_(std::move(data)) {}

  // Copying seals the source's append tail first: the copy must not alias a
  // vector the original keeps appending to (retry paths copy the request).
  ByteBuf(const ByteBuf& other);
  ByteBuf& operator=(const ByteBuf& other);
  ByteBuf(ByteBuf&&) = default;
  ByteBuf& operator=(ByteBuf&&) = default;

  // --- writing (appends at the end) ---
  void put_u8(std::uint8_t v) { append(&v, 1); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  // Length-prefixed string (u32 length + bytes).
  void put_string(std::string_view s);
  // Length-prefixed blob (copies: the bytes come from mutable memory).
  void put_bytes(std::span<const std::byte> b);
  // Length-prefixed blob, spliced in without copying.
  void put_bytes(const Buffer& b);
  // Raw bytes, no length prefix (protocol text, small headers; copies).
  void put_raw(std::string_view s);
  void put_raw(std::span<const std::byte> b);
  // Raw payload, spliced in without copying.
  void put_buffer(const Buffer& b);

  // --- reading (advances the cursor) ---
  Expected<std::uint8_t> get_u8();
  Expected<std::uint16_t> get_u16();
  Expected<std::uint32_t> get_u32();
  Expected<std::uint64_t> get_u64();
  Expected<std::int64_t> get_i64();
  Expected<std::string> get_string();
  // Length-prefixed blob as a zero-copy slice of this buffer's storage.
  Expected<Buffer> get_bytes();
  // Raw bytes of an exact size (no prefix), zero-copy.
  Expected<Buffer> get_view(std::size_t n);

  // --- inspection ---
  std::size_t size() const noexcept {
    return chain_.size() + (tail_ ? tail_->size() : 0);
  }
  std::size_t remaining() const noexcept { return size() - cursor_; }
  bool exhausted() const noexcept { return remaining() == 0; }
  // The full contents as a segment chain (seals the append tail).
  const Buffer& buffer() const;
  bool ends_with(std::string_view tail) const { return buffer().ends_with(tail); }
  void rewind() noexcept { cursor_ = 0; }

 private:
  void append(const void* p, std::size_t n);
  // Freeze the append tail into a refcounted segment so reads and copies see
  // one immutable chain. Further appends start a fresh tail.
  void seal() const;
  Expected<void> need(std::size_t n) const;

  mutable Buffer chain_;
  mutable std::shared_ptr<std::vector<std::byte>> tail_;
  std::size_t cursor_ = 0;
};

// Convenience conversions between strings and payload bytes. These are the
// explicit workload-edge materialization points: to_buffer allocates a fresh
// segment holding the string's bytes; to_string(Buffer) gathers (counted in
// the copy ledger). Layers between the edges pass Buffer views instead.
std::vector<std::byte> to_bytes(std::string_view s);
Buffer to_buffer(std::string_view s);
std::string to_string(std::span<const std::byte> b);
std::string to_string(const Buffer& b);

}  // namespace imca
