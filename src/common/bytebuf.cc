#include "common/bytebuf.h"

namespace imca {

void ByteBuf::append(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  data_.insert(data_.end(), b, b + n);
}

Expected<void> ByteBuf::need(std::size_t n) const {
  if (remaining() < n) return Errc::kProto;
  return {};
}

void ByteBuf::put_u16(std::uint16_t v) {
  std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                       static_cast<std::uint8_t>(v >> 8)};
  append(b, sizeof b);
}

void ByteBuf::put_u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(b, sizeof b);
}

void ByteBuf::put_u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(b, sizeof b);
}

void ByteBuf::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_raw(s);
}

void ByteBuf::put_bytes(std::span<const std::byte> b) {
  put_u32(static_cast<std::uint32_t>(b.size()));
  put_raw(b);
}

void ByteBuf::put_raw(std::string_view s) { append(s.data(), s.size()); }

void ByteBuf::put_raw(std::span<const std::byte> b) {
  append(b.data(), b.size());
}

Expected<std::uint8_t> ByteBuf::get_u8() {
  if (auto r = need(1); !r) return r.error();
  return static_cast<std::uint8_t>(data_[cursor_++]);
}

Expected<std::uint16_t> ByteBuf::get_u16() {
  if (auto r = need(2); !r) return r.error();
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | (static_cast<std::uint16_t>(data_[cursor_ + static_cast<std::size_t>(i)]) << (8 * i)));
  }
  cursor_ += 2;
  return v;
}

Expected<std::uint32_t> ByteBuf::get_u32() {
  if (auto r = need(4); !r) return r.error();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[cursor_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  cursor_ += 4;
  return v;
}

Expected<std::uint64_t> ByteBuf::get_u64() {
  if (auto r = need(8); !r) return r.error();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[cursor_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  cursor_ += 8;
  return v;
}

Expected<std::int64_t> ByteBuf::get_i64() {
  auto v = get_u64();
  if (!v) return v.error();
  return static_cast<std::int64_t>(*v);
}

Expected<std::string> ByteBuf::get_string() {
  auto len = get_u32();
  if (!len) return len.error();
  if (auto r = need(*len); !r) return r.error();
  std::string s(reinterpret_cast<const char*>(data_.data() + cursor_), *len);
  cursor_ += *len;
  return s;
}

Expected<std::vector<std::byte>> ByteBuf::get_bytes() {
  auto len = get_u32();
  if (!len) return len.error();
  return get_raw(*len);
}

Expected<std::vector<std::byte>> ByteBuf::get_raw(std::size_t n) {
  if (auto r = need(n); !r) return r.error();
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                             data_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return out;
}

std::vector<std::byte> to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string to_string(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace imca
