#include "common/bytebuf.h"

namespace imca {

ByteBuf::ByteBuf(const ByteBuf& other) {
  other.seal();
  chain_ = other.chain_;
  cursor_ = other.cursor_;
}

ByteBuf& ByteBuf::operator=(const ByteBuf& other) {
  if (this != &other) {
    other.seal();
    chain_ = other.chain_;
    tail_.reset();
    cursor_ = other.cursor_;
  }
  return *this;
}

void ByteBuf::seal() const {
  if (!tail_ || tail_->empty()) return;
  auto& st = buffer_stats();
  ++st.segments_allocated;
  st.segment_bytes += tail_->size();
  // Hand the tail's storage to an immutable Segment without copying; the
  // local shared_ptr is dropped so no mutable alias survives.
  chain_.append(BufView(Segment(
      std::shared_ptr<const std::vector<std::byte>>(std::move(tail_)))));
  tail_.reset();
}

void ByteBuf::append(const void* p, std::size_t n) {
  if (n == 0) return;
  if (!tail_) tail_ = std::make_shared<std::vector<std::byte>>();
  const auto* b = static_cast<const std::byte*>(p);
  tail_->insert(tail_->end(), b, b + n);
  buffer_stats().bytes_copied += n;
}

Expected<void> ByteBuf::need(std::size_t n) const {
  if (remaining() < n) return Errc::kProto;
  return {};
}

void ByteBuf::put_u16(std::uint16_t v) {
  std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                       static_cast<std::uint8_t>(v >> 8)};
  append(b, sizeof b);
}

void ByteBuf::put_u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(b, sizeof b);
}

void ByteBuf::put_u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(b, sizeof b);
}

void ByteBuf::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_raw(s);
}

void ByteBuf::put_bytes(std::span<const std::byte> b) {
  put_u32(static_cast<std::uint32_t>(b.size()));
  put_raw(b);
}

void ByteBuf::put_bytes(const Buffer& b) {
  put_u32(static_cast<std::uint32_t>(b.size()));
  put_buffer(b);
}

void ByteBuf::put_raw(std::string_view s) { append(s.data(), s.size()); }

void ByteBuf::put_raw(std::span<const std::byte> b) {
  append(b.data(), b.size());
}

void ByteBuf::put_buffer(const Buffer& b) {
  if (b.empty()) return;
  seal();
  chain_.append(b);
}

const Buffer& ByteBuf::buffer() const {
  seal();
  return chain_;
}

Expected<std::uint8_t> ByteBuf::get_u8() {
  if (auto r = need(1); !r) return r.error();
  return static_cast<std::uint8_t>(buffer().at(cursor_++));
}

Expected<std::uint16_t> ByteBuf::get_u16() {
  if (auto r = need(2); !r) return r.error();
  std::byte b[2];
  buffer().copy_to(cursor_, b);
  cursor_ += 2;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | (static_cast<std::uint16_t>(b[i]) << (8 * i)));
  }
  return v;
}

Expected<std::uint32_t> ByteBuf::get_u32() {
  if (auto r = need(4); !r) return r.error();
  std::byte b[4];
  buffer().copy_to(cursor_, b);
  cursor_ += 4;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  }
  return v;
}

Expected<std::uint64_t> ByteBuf::get_u64() {
  if (auto r = need(8); !r) return r.error();
  std::byte b[8];
  buffer().copy_to(cursor_, b);
  cursor_ += 8;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

Expected<std::int64_t> ByteBuf::get_i64() {
  auto v = get_u64();
  if (!v) return v.error();
  return static_cast<std::int64_t>(*v);
}

Expected<std::string> ByteBuf::get_string() {
  auto len = get_u32();
  if (!len) return len.error();
  if (auto r = need(*len); !r) return r.error();
  std::string s(*len, '\0');
  buffer().copy_to(cursor_, {reinterpret_cast<std::byte*>(s.data()), s.size()});
  cursor_ += *len;
  return s;
}

Expected<Buffer> ByteBuf::get_bytes() {
  auto len = get_u32();
  if (!len) return len.error();
  return get_view(*len);
}

Expected<Buffer> ByteBuf::get_view(std::size_t n) {
  if (auto r = need(n); !r) return r.error();
  Buffer b = buffer().slice(cursor_, n);
  cursor_ += n;
  return b;
}

std::vector<std::byte> to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

Buffer to_buffer(std::string_view s) { return Buffer::of_string(s); }

std::string to_string(const Buffer& b) { return b.gather_string(); }

std::string to_string(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace imca
