#include "common/stats.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace imca {
namespace {

int bucket_of(SimDuration ns) noexcept {
  if (ns == 0) return 0;
  return static_cast<int>(std::bit_width(ns)) - 1;  // floor(log2)
}

}  // namespace

void LatencyHistogram::add(SimDuration ns) noexcept {
  int b = bucket_of(ns);
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[static_cast<std::size_t>(b)];
  ++count_;
  sum_ += ns;
  if (ns > max_) max_ = ns;
}

double LatencyHistogram::percentile_ns(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const auto n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (seen + static_cast<double>(n) >= target) {
      // Interpolate inside the bucket [2^b, 2^(b+1)).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b);
      const double hi = std::ldexp(1.0, b + 1);
      const double frac = n ? (target - seen) / static_cast<double>(n) : 0.0;
      return lo + frac * (hi - lo);
    }
    seen += static_cast<double>(n);
  }
  return static_cast<double>(max_);
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "mean=%s p50=%s p99=%s max=%s n=%llu",
                format_duration(mean_ns()).c_str(),
                format_duration(percentile_ns(0.50)).c_str(),
                format_duration(percentile_ns(0.99)).c_str(),
                format_duration(static_cast<double>(max_)).c_str(),
                static_cast<unsigned long long>(count_));
  return buf;
}

std::string format_duration(double ns) {
  char buf[48];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", ns / 1e9);
  }
  return buf;
}

}  // namespace imca
