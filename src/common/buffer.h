// Refcounted scatter-gather buffers — the one payload type on the data path.
//
// GlusterFS moves payloads as iobuf/iobref chains: a read's bytes are
// allocated once (at the disk or the wire) and every layer above passes
// *views* of those refcounted segments, concatenating and slicing in O(1)
// instead of memcpy'ing at each hop. This header is our rendering:
//
//   Segment  — refcounted, immutable byte storage (an iobuf arena chunk);
//   BufView  — a [offset, offset+len) window into one Segment (an iobuf);
//   Buffer   — an ordered list of views (an iobref): the payload type every
//              fop, protocol and cache signature traffics in.
//
// Copies only happen at true materialization points — gather() into a
// caller's contiguous buffer, Segment::copy_of at a byte source (disk read,
// wire receive) — and every one is recorded in the process-wide BufferStats
// ledger, so "how many times was this byte moved" is a measured quantity
// (`bytes_copied_per_byte_read` in the bench JSON), not a belief.
//
// The `legacy_copy_path` switch restores the pre-refactor regime for
// ablation: every append/slice deep-copies, reproducing the old
// copy-per-hop ledger (the simulated clock is unaffected either way; the
// ledger is what the ablation compares).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace imca {

// Process-wide copy ledger. The simulation is single-threaded per process,
// so plain counters suffice.
struct BufferStats {
  std::uint64_t segments_allocated = 0;  // Segments brought into existence
  std::uint64_t segment_bytes = 0;       // bytes those segments hold
  std::uint64_t bytes_copied = 0;        // bytes memcpy'd by the buffer layer
  std::uint64_t gather_calls = 0;        // full materializations
  std::uint64_t view_slices = 0;         // zero-copy slices handed out
};

BufferStats& buffer_stats() noexcept;
void reset_buffer_stats() noexcept;

// Ablation: when true, Buffer::append and Buffer::slice deep-copy instead of
// sharing segments — the pre-refactor copy-per-hop behaviour.
bool legacy_copy_path() noexcept;
void set_legacy_copy_path(bool on) noexcept;

// Refcounted immutable byte storage. Copying a Segment copies a pointer.
class Segment {
 public:
  Segment() = default;

  // Adopt `data` without copying (the vector is moved into shared storage).
  static Segment take(std::vector<std::byte>&& data);
  // Allocate new storage holding a copy of `src` (counted in the ledger) —
  // the one legal way bytes enter the buffer layer from mutable memory.
  static Segment copy_of(std::span<const std::byte> src);
  // Allocate `n` zero bytes (hole fill; an allocation, not a copy).
  static Segment zeros(std::size_t n);

  std::span<const std::byte> bytes() const noexcept {
    return data_ ? std::span<const std::byte>(*data_)
                 : std::span<const std::byte>{};
  }
  std::size_t size() const noexcept { return data_ ? data_->size() : 0; }
  bool valid() const noexcept { return data_ != nullptr; }
  long use_count() const noexcept { return data_.use_count(); }

 private:
  explicit Segment(std::shared_ptr<const std::vector<std::byte>> data)
      : data_(std::move(data)) {}
  friend class ByteBuf;  // seals its append tail into a Segment, no copy

  std::shared_ptr<const std::vector<std::byte>> data_;
};

// A window into one Segment. Value type; keeps its segment alive.
class BufView {
 public:
  BufView() = default;
  BufView(Segment seg, std::size_t offset, std::size_t length);
  // Whole-segment view.
  explicit BufView(Segment seg) : BufView(seg, 0, seg.size()) {}

  std::span<const std::byte> bytes() const noexcept {
    return seg_.bytes().subspan(off_, len_);
  }
  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }
  const Segment& segment() const noexcept { return seg_; }

  // Sub-window relative to this view; clamped to its extent.
  BufView sub(std::size_t offset, std::size_t length) const;

 private:
  Segment seg_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

// Ordered list of segment views. Slice/concat are O(#views) pointer work;
// bytes are shared, never moved, until a materialization point.
class Buffer {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Buffer() = default;
  Buffer(const Buffer&) = default;
  Buffer& operator=(const Buffer&) = default;
  // Moves must leave the source genuinely empty: a defaulted move would
  // copy size_, and a moved-from buffer reporting a stale nonzero size is
  // how absorb-into-moved-from corruption starts (write_behind flushes).
  Buffer(Buffer&& other) noexcept
      : views_(std::move(other.views_)), size_(other.size_) {
    other.views_.clear();
    other.size_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      views_ = std::move(other.views_);
      size_ = other.size_;
      other.views_.clear();
      other.size_ = 0;
    }
    return *this;
  }

  // Adopt a vector as one segment (no copy).
  static Buffer take(std::vector<std::byte>&& data);
  // New storage holding a copy of `src` (counted).
  static Buffer copy_of(std::span<const std::byte> src);
  // New storage holding a copy of `s` (counted) — the workload edge's
  // explicit string -> payload conversion.
  static Buffer of_string(std::string_view s);
  // `n` zero bytes (allocation, not a copy).
  static Buffer zeros(std::size_t n);

  void append(BufView v);
  void append(const Buffer& other);
  void append(Buffer&& other);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::vector<BufView>& views() const noexcept { return views_; }
  std::size_t segment_count() const noexcept { return views_.size(); }

  // Zero-copy sub-range (deep copy under legacy_copy_path). Clamped to the
  // buffer's extent: slice(off, npos) is "everything from off".
  Buffer slice(std::size_t offset, std::size_t length = npos) const;

  // Copy up to out.size() bytes starting at `offset` into `out`; returns the
  // number copied. A materialization point (counted).
  std::size_t copy_to(std::size_t offset, std::span<std::byte> out) const;

  // Materialize the whole buffer contiguously. The canonical (and ideally
  // only) full-payload copy of a read. Counted as one gather.
  std::vector<std::byte> gather() const;
  std::string gather_string() const;

  // The bytes of [offset, offset+length) if they lie within one segment;
  // empty span otherwise. Lets parsers borrow text without copying.
  std::span<const std::byte> contiguous(std::size_t offset,
                                        std::size_t length) const noexcept;

  std::byte at(std::size_t i) const;

  // First occurrence of `needle` at or after `from`; npos if absent.
  // Matches across segment boundaries.
  std::size_t find(std::string_view needle, std::size_t from = 0) const;
  bool ends_with(std::string_view tail) const;

  bool content_equals(std::span<const std::byte> bytes) const;
  bool content_equals(const Buffer& other) const;
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.content_equals(b);
  }

  // Forward iterator over the logical byte sequence. Iterators are
  // invalidated by append() on the buffer they came from, but remain valid
  // when *other* handles to the same segments go away (refcounts hold the
  // storage).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::byte;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::byte*;
    using reference = const std::byte&;

    const_iterator() = default;
    reference operator*() const { return buf_->views()[view_].bytes()[pos_]; }
    const_iterator& operator++();
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.buf_ == b.buf_ && a.view_ == b.view_ && a.pos_ == b.pos_;
    }

   private:
    friend class Buffer;
    const_iterator(const Buffer* buf, std::size_t view, std::size_t pos)
        : buf_(buf), view_(view), pos_(pos) {}
    void skip_empty();

    const Buffer* buf_ = nullptr;
    std::size_t view_ = 0;
    std::size_t pos_ = 0;
  };

  const_iterator begin() const;
  const_iterator end() const;

 private:
  // (view index, offset within that view) for a logical offset.
  std::pair<std::size_t, std::size_t> locate(std::size_t offset) const;

  std::vector<BufView> views_;
  std::size_t size_ = 0;
};

}  // namespace imca
