// Size and time unit helpers.
//
// Simulated time is a plain count of nanoseconds (`SimTime`). We deliberately
// avoid std::chrono in the hot simulation path: the event loop compares and
// adds billions of timestamps and a raw integer keeps that transparent, while
// the helpers below keep call sites readable (`5 * kMilli`, `bytes / kMiB`).
#pragma once

#include <cstdint>

namespace imca {

// --- time (nanoseconds) ---
using SimTime = std::uint64_t;      // absolute simulated time since boot
using SimDuration = std::uint64_t;  // simulated interval

inline constexpr SimDuration kNano = 1;
inline constexpr SimDuration kMicro = 1000;
inline constexpr SimDuration kMilli = 1000 * kMicro;
inline constexpr SimDuration kSecond = 1000 * kMilli;

constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_millis(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMilli);
}
constexpr double to_micros(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMicro);
}

// --- sizes (bytes) ---
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

constexpr double to_mib(std::uint64_t bytes) noexcept {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

// Time to move `bytes` at `bytes_per_second`, rounded up to whole nanoseconds
// so that back-to-back transfers never under-charge the link.
constexpr SimDuration transfer_time(std::uint64_t bytes,
                                    std::uint64_t bytes_per_second) noexcept {
  if (bytes_per_second == 0) return 0;
  // Split to avoid overflow of bytes * 1e9: whole seconds, then remainder.
  const std::uint64_t whole = bytes / bytes_per_second;
  const std::uint64_t rem = bytes % bytes_per_second;
  const std::uint64_t rem_ns =
      (rem * kSecond + bytes_per_second - 1) / bytes_per_second;
  return whole * kSecond + rem_ns;
}

}  // namespace imca
