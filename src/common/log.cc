#include "common/log.h"

#include <cstdarg>

namespace imca {
namespace {
LogLevel g_level = LogLevel::kNone;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kNone: return "-";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace imca
