// Non-cryptographic hash functions used across the stack.
//
//  * fnv1a64   — hash-table bucketing inside the memcached item table.
//  * splitmix64 — seed expansion for the deterministic RNG.
#pragma once

#include <cstdint>
#include <string_view>

namespace imca {

constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace imca
