#include "workload/iozone.h"

#include <algorithm>
#include <cassert>

#include "sim/sync.h"

namespace imca::workload {
namespace {

struct Shared {
  SimTime write_start = 0;
  SimTime write_end = 0;
  SimTime read_start = 0;
  SimTime read_end = 0;
  std::uint64_t bytes_read = 0;
};

sim::Task<void> iozone_client(sim::EventLoop& loop,
                              fsapi::FileSystemClient& fs, std::size_t index,
                              IozoneOptions opt, sim::Barrier& barrier,
                              Shared& sh) {
  const std::string path = opt.file_prefix + std::to_string(index);
  auto f = co_await fs.create(path);
  assert(f.has_value());

  // Workload edge: generate the record bytes once and adopt them into one
  // refcounted segment; every write passes views of it.
  std::vector<std::byte> pattern(opt.request_size);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::byte>((index * 101 + i) & 0xFF);
  }
  const Buffer buffer = Buffer::take(std::move(pattern));

  co_await barrier.arrive_and_wait();
  sh.write_start = loop.now();
  for (std::uint64_t off = 0; off < opt.file_bytes; off += opt.request_size) {
    auto w = co_await fs.write(*f, off, buffer);
    assert(w.has_value());
    (void)w;
  }
  co_await barrier.arrive_and_wait();
  sh.write_end = std::max(sh.write_end, loop.now());
  if (opt.before_read_phase) opt.before_read_phase(index);

  co_await barrier.arrive_and_wait();
  sh.read_start = loop.now();
  for (std::size_t pass = 0; pass < opt.read_passes; ++pass) {
    for (std::uint64_t off = 0; off < opt.file_bytes;
         off += opt.request_size) {
      auto data = co_await fs.read(*f, off, opt.request_size);
      assert(data.has_value());
      assert(data->size() == opt.request_size);
      sh.bytes_read += data->size();
    }
  }
  sh.read_end = std::max(sh.read_end, loop.now());
  co_await barrier.arrive_and_wait();
}

}  // namespace

IozoneResult run_iozone(sim::EventLoop& loop,
                        const std::vector<fsapi::FileSystemClient*>& clients,
                        const IozoneOptions& options) {
  assert(!clients.empty());
  Shared sh;
  sim::Barrier barrier(loop, clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    loop.spawn(iozone_client(loop, *clients[c], c, options, barrier, sh));
  }
  loop.run();

  IozoneResult result;
  result.bytes_read = sh.bytes_read;
  const double write_bytes = static_cast<double>(options.file_bytes) *
                             static_cast<double>(clients.size());
  if (sh.write_end > sh.write_start) {
    result.aggregate_write_mbps =
        write_bytes / static_cast<double>(kMiB) /
        to_seconds(sh.write_end - sh.write_start);
  }
  if (sh.read_end > sh.read_start) {
    result.aggregate_read_mbps =
        static_cast<double>(sh.bytes_read) / static_cast<double>(kMiB) /
        to_seconds(sh.read_end - sh.read_start);
  }
  return result;
}

}  // namespace imca::workload
