#include "workload/stat_bench.h"

#include <algorithm>
#include <cassert>

#include "sim/sync.h"

namespace imca::workload {
namespace {

sim::Task<void> stat_client(sim::EventLoop& loop,
                            fsapi::FileSystemClient& fs,
                            std::size_t client_index, std::size_t n_clients,
                            StatOptions opt, sim::Barrier& barrier,
                            double& max_seconds, std::uint64_t& total) {
  // Stage one (untimed): the first client materializes the file set.
  if (client_index == 0) {
    for (std::size_t i = 0; i < opt.n_files; ++i) {
      auto f = co_await fs.create(opt.file_prefix + std::to_string(i));
      assert(f.has_value());
      (void)co_await fs.close(*f);
    }
  }
  co_await barrier.arrive_and_wait();

  // Stage two (timed): stat every file; report the slowest node. Each node
  // starts its sweep at a different point of the file set and wraps, so the
  // nodes do not stat the same file at the same instant — in the paper the
  // 64 physical nodes drift apart naturally; a deterministic simulation
  // needs the stagger made explicit.
  const std::size_t start = client_index * opt.n_files / n_clients;
  const SimTime t0 = loop.now();
  for (std::size_t k = 0; k < opt.n_files; ++k) {
    const std::size_t i = (start + k) % opt.n_files;
    auto st = co_await fs.stat(opt.file_prefix + std::to_string(i));
    assert(st.has_value());
    (void)st;
    ++total;
  }
  max_seconds = std::max(max_seconds, to_seconds(loop.now() - t0));
  co_await barrier.arrive_and_wait();
}

}  // namespace

StatResult run_stat_benchmark(
    sim::EventLoop& loop, const std::vector<fsapi::FileSystemClient*>& clients,
    const StatOptions& options) {
  assert(!clients.empty());
  StatResult result;
  sim::Barrier barrier(loop, clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    loop.spawn(stat_client(loop, *clients[c], c, clients.size(), options,
                           barrier, result.max_node_seconds,
                           result.total_stats));
  }
  loop.run();
  return result;
}

}  // namespace imca::workload
