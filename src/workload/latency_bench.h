// The paper's latency benchmark (§5.3, §5.4, §5.6).
//
// Write phase: for each record size r (1 byte .. max, powers of two), every
// client writes `records_per_size` records of size r sequentially to its
// file, and the write time for r is the average over those records. Read
// phase: back to offset 0, same sweep with reads. With multiple clients the
// phases and every record size are separated by barriers, and each client
// uses its own file (§5.4) — except in shared mode (§5.6), where only the
// root client writes and every client reads the same file.
//
// Files stay open across phases: IMCa purges a file's cache entries on
// close, and the paper's read phase runs against the state the write phase
// left in the MCDs ("no Read at the client results in a miss").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "fsapi/filesystem.h"
#include "sim/event_loop.h"

namespace imca::workload {

struct LatencyOptions {
  std::uint64_t min_record = 1;
  std::uint64_t max_record = 64 * kKiB;
  // Successive record sizes multiply by this (the paper uses 2; benches that
  // only need a few points per decade use larger steps).
  std::uint64_t record_multiplier = 2;
  std::size_t records_per_size = 256;  // scaled from the paper's 1024
  bool shared_file = false;            // §5.6 read/write sharing mode
  bool measure_writes = true;
  std::string file_prefix = "/bench/lat";
  // Invoked once per client between the write and read phases — the hook
  // the Lustre cold-cache runs use to unmount/remount (drop client caches).
  std::function<void(std::size_t client_index)> before_read_phase;
};

struct LatencySeries {
  // record size (bytes) -> mean per-op latency (ns), averaged over every
  // client's per-node average, as the paper reports.
  std::map<std::uint64_t, double> write_ns;
  std::map<std::uint64_t, double> read_ns;
};

// Drives all `clients` through the benchmark on `loop`; returns the series.
LatencySeries run_latency_benchmark(
    sim::EventLoop& loop, const std::vector<fsapi::FileSystemClient*>& clients,
    const LatencyOptions& options);

}  // namespace imca::workload
