#include "workload/latency_bench.h"

#include <cassert>

#include "sim/sync.h"

namespace imca::workload {
namespace {

// Accumulates per-record-size sums across clients; single-threaded
// simulation, so plain members suffice.
struct Accumulator {
  std::map<std::uint64_t, MeanAccum> write;
  std::map<std::uint64_t, MeanAccum> read;
};

Buffer make_record(std::uint64_t size, std::uint64_t salt) {
  std::vector<std::byte> data(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((salt * 131 + i * 7 + 3) & 0xFF);
  }
  // Workload edge: one segment per record size; writes pass shared views.
  return Buffer::take(std::move(data));
}

sim::Task<void> client_body(sim::EventLoop& loop,
                            fsapi::FileSystemClient& fs,
                            std::size_t client_index,
                            LatencyOptions opt, sim::Barrier& barrier,
                            Accumulator& acc) {
  const bool is_root = client_index == 0;
  const std::string path =
      opt.shared_file ? opt.file_prefix + "/shared"
                      : opt.file_prefix + "/c" + std::to_string(client_index);

  // --- setup: root creates the shared file; everyone else opens it.
  fsapi::OpenFile file{};
  if (!opt.shared_file || is_root) {
    auto f = co_await fs.create(path);
    assert(f.has_value());
    file = *f;
  }
  co_await barrier.arrive_and_wait();
  if (opt.shared_file && !is_root) {
    auto f = co_await fs.open(path);
    assert(f.has_value());
    file = *f;
  }
  co_await barrier.arrive_and_wait();

  // --- write phase ---
  for (std::uint64_t r = opt.min_record; r <= opt.max_record;
       r *= opt.record_multiplier) {
    co_await barrier.arrive_and_wait();
    if (!opt.shared_file || is_root) {
      const auto record = make_record(r, client_index);
      MeanAccum local;
      for (std::size_t i = 0; i < opt.records_per_size; ++i) {
        const SimTime t0 = loop.now();
        auto w = co_await fs.write(file, static_cast<std::uint64_t>(i) * r,
                                   record);
        assert(w.has_value());
        (void)w;
        local.add(static_cast<double>(loop.now() - t0));
      }
      if (opt.measure_writes) acc.write[r].add(local.mean());
    }
  }
  co_await barrier.arrive_and_wait();
  if (opt.before_read_phase) opt.before_read_phase(client_index);
  co_await barrier.arrive_and_wait();

  // --- read phase: back to the beginning of the file ---
  for (std::uint64_t r = opt.min_record; r <= opt.max_record;
       r *= opt.record_multiplier) {
    co_await barrier.arrive_and_wait();
    MeanAccum local;
    for (std::size_t i = 0; i < opt.records_per_size; ++i) {
      const SimTime t0 = loop.now();
      auto data = co_await fs.read(file, static_cast<std::uint64_t>(i) * r, r);
      assert(data.has_value());
      assert(data->size() == r);
      (void)data;
      local.add(static_cast<double>(loop.now() - t0));
    }
    acc.read[r].add(local.mean());
  }
  co_await barrier.arrive_and_wait();
}

}  // namespace

LatencySeries run_latency_benchmark(
    sim::EventLoop& loop, const std::vector<fsapi::FileSystemClient*>& clients,
    const LatencyOptions& options) {
  assert(!clients.empty());
  Accumulator acc;
  sim::Barrier barrier(loop, clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    loop.spawn(client_body(loop, *clients[c], c, options, barrier, acc));
  }
  loop.run();

  LatencySeries out;
  for (const auto& [r, m] : acc.write) out.write_ns[r] = m.mean();
  for (const auto& [r, m] : acc.read) out.read_ns[r] = m.mean();
  return out;
}

}  // namespace imca::workload
