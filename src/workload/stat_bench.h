// The paper's stat benchmark (§5.2).
//
// Stage one (untimed): a set of files is created. Stage two (timed): every
// client stats every file; the benchmark reports the *maximum* completion
// time across nodes. With IMCa, the first client to stat a file misses and
// the server-side hook publishes the stat structure; every later stat of
// that file is served by the MCD array.
//
// The paper uses 262144 files on 64 real nodes; the default here is scaled
// down (the EXPERIMENTS.md entry records the scaling) and adjustable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsapi/filesystem.h"
#include "sim/event_loop.h"

namespace imca::workload {

struct StatOptions {
  std::size_t n_files = 16384;  // scaled from the paper's 262144
  std::string file_prefix = "/bench/statfiles/f";
};

struct StatResult {
  double max_node_seconds = 0;  // the paper's reported metric
  std::uint64_t total_stats = 0;
};

StatResult run_stat_benchmark(
    sim::EventLoop& loop, const std::vector<fsapi::FileSystemClient*>& clients,
    const StatOptions& options);

}  // namespace imca::workload
