// IOzone-like sequential throughput workload (§3/Fig 1 and §5.5/Fig 9).
//
// Each client ("IOzone thread" on its own node) writes its own file
// sequentially, then — after a barrier — reads it back sequentially. The
// reported metric is aggregate read bandwidth: total bytes read divided by
// the wall time of the slowest reader, which is how multi-stream IOzone
// numbers aggregate.
//
// The file size is scaled down from the paper's 1 GB (recorded per bench in
// EXPERIMENTS.md together with the equally scaled server-memory and
// MCD-memory limits, preserving the working-set : cache ratios).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fsapi/filesystem.h"
#include "sim/event_loop.h"

namespace imca::workload {

struct IozoneOptions {
  std::uint64_t file_bytes = 128 * kMiB;    // scaled from the paper's 1 GB
  std::uint64_t request_size = 256 * kKiB;  // IOzone transfer size
  std::string file_prefix = "/bench/iozone/f";
  std::size_t read_passes = 1;
  // Invoked once per client between the write and read phases (Lustre cold
  // runs drop the client caches here).
  std::function<void(std::size_t client_index)> before_read_phase;
};

struct IozoneResult {
  double aggregate_read_mbps = 0;
  double aggregate_write_mbps = 0;
  std::uint64_t bytes_read = 0;
};

IozoneResult run_iozone(sim::EventLoop& loop,
                        const std::vector<fsapi::FileSystemClient*>& clients,
                        const IozoneOptions& options);

}  // namespace imca::workload
