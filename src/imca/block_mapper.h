// Fixed-block geometry for the cache tier (paper §4.3.1).
//
// IMCa stores file data in fixed-size blocks: a read of (offset, len) maps
// to the aligned run of blocks covering it, which may be larger than the
// request on both ends (Fig 3 — the "additional data transfers" trade-off).
// Block size must stay below memcached's 1 MB item ceiling.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "memcache/slab.h"

namespace imca::core {

class BlockMapper {
 public:
  explicit BlockMapper(std::uint64_t block_size) : block_size_(block_size) {
    assert(block_size > 0);
    assert(block_size + memcache::kItemOverhead + 300 <=
               memcache::kMaxItemTotal &&
           "block + key + overhead must fit a memcached item");
  }

  std::uint64_t block_size() const noexcept { return block_size_; }

  std::uint64_t index_of(std::uint64_t offset) const noexcept {
    return offset / block_size_;
  }
  std::uint64_t start_of(std::uint64_t index) const noexcept {
    return index * block_size_;
  }
  std::uint64_t align_down(std::uint64_t offset) const noexcept {
    return offset - offset % block_size_;
  }
  std::uint64_t align_up(std::uint64_t offset) const noexcept {
    const std::uint64_t rem = offset % block_size_;
    return rem == 0 ? offset : offset + block_size_ - rem;
  }

  // Indices of the blocks covering [offset, offset+len). Empty for len==0.
  std::vector<std::uint64_t> covering(std::uint64_t offset,
                                      std::uint64_t len) const {
    std::vector<std::uint64_t> out;
    if (len == 0) return out;
    const std::uint64_t first = index_of(offset);
    const std::uint64_t last = index_of(offset + len - 1);
    out.reserve(last - first + 1);
    for (std::uint64_t i = first; i <= last; ++i) out.push_back(i);
    return out;
  }

  // Size of the aligned region covering [offset, offset+len).
  std::uint64_t aligned_length(std::uint64_t offset,
                               std::uint64_t len) const noexcept {
    if (len == 0) return 0;
    return align_up(offset + len) - align_down(offset);
  }

  bool operator==(const BlockMapper&) const = default;

 private:
  std::uint64_t block_size_;
};

}  // namespace imca::core
