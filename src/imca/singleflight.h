// Single-flight request coalescing (thundering-herd protection).
//
// When N readers race for the same cold cache block — the shared-file
// workload of Fig 10 — each would otherwise issue its own MCD fetch and its
// own server range-read. A SingleFlight table keyed on "<path>:<block>"
// collapses them: the first arrival becomes the *leader* and performs the
// fetch; everyone who joins while it is in flight parks on the flight's
// event and receives the leader's result. The key leaves the table before
// waiters wake, so a request arriving after completion starts a fresh flight
// (coalescing never serves stale results — it only deduplicates work that is
// literally concurrent).
//
// MIDAS-style proxy deduplication, applied at the client: one MCD fetch and
// one server range-read per cold hot-block, no matter how many readers pile
// on.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/sync.h"

namespace imca::core {

template <typename V>
class SingleFlight {
 public:
  struct Flight {
    explicit Flight(sim::EventLoop& loop) : done(loop) {}
    sim::Event done;
    std::optional<V> value;  // set by the leader before done fires
  };
  using FlightPtr = std::shared_ptr<Flight>;

  explicit SingleFlight(sim::EventLoop& loop) noexcept : loop_(loop) {}

  // Join the flight for `key`. Returns (flight, true) when this caller is
  // the leader — it MUST eventually call complete() on every path, or
  // waiters hang. Returns (flight, false) when an earlier caller is already
  // fetching: `co_await flight->done.wait()`, then read `flight->value`.
  std::pair<FlightPtr, bool> join(const std::string& key) {
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      return {it->second, false};
    }
    auto flight = std::make_shared<Flight>(loop_);
    inflight_.emplace(key, flight);
    return {flight, true};
  }

  // Leader: publish the result and wake every waiter. The key is removed
  // first so requests arriving after completion start a fresh flight.
  void complete(const std::string& key, const FlightPtr& flight, V value) {
    inflight_.erase(key);
    flight->value.emplace(std::move(value));
    flight->done.set();
  }

  std::size_t in_flight() const noexcept { return inflight_.size(); }

 private:
  sim::EventLoop& loop_;
  std::unordered_map<std::string, FlightPtr> inflight_;
};

}  // namespace imca::core
