// CMCache — the Client Memory Cache translator (paper §4.1, §4.2, §4.3.2).
//
// Sits in the GlusterFS *client* stack and intercepts:
//   * stat  — fetch "<path>:stat" from the MCD array; on a miss the stat
//             propagates to the server unchanged.
//   * read  — map the request to IMCa blocks, multi-get them from the MCDs
//             (batched per daemon, hints carry the block index for the
//             modulo selector) and assemble locally.
//   * write/create/delete/open/close — pass through untouched; the server
//     side (SMCache) owns authoritative cache updates and purges.
//
// Miss-path handling (see DESIGN.md "Miss-path handling"): the paper's
// CMCache discards every hit as soon as one covering block misses and
// forwards the whole read, which is why a cold read costs *more* than plain
// GlusterFS (§4.4). This implementation instead:
//   1. assembles partial hits — only the missing byte ranges are fetched
//      from the server (one coalesced range-read per contiguous run of
//      missing blocks, issued concurrently) and spliced with cached blocks;
//   2. read-repairs — server-fetched blocks are pushed back into the MCD
//      array fire-and-forget, so one miss warms the cache without waiting
//      for SMCache's server-side publish (cfg.client_read_repair);
//   3. single-flights — concurrent fetches of the same <path>:<block>
//      collapse into one MCD fetch + one server range-read
//      (cfg.coalesce_reads).
// cfg.partial_hit_reads = false restores the paper's forward-on-any-miss
// behaviour (the ablation baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gluster/xlator.h"
#include "imca/block_mapper.h"
#include "imca/config.h"
#include "imca/keys.h"
#include "imca/singleflight.h"
#include "imca/writeback.h"
#include "mcclient/client.h"

namespace imca::core {

struct CmCacheStats {
  std::uint64_t stat_hits = 0;
  std::uint64_t stat_misses = 0;
  std::uint64_t reads_from_cache = 0;   // fully served by the MCD array
  std::uint64_t reads_partial = 0;      // cached blocks spliced with server ranges
  std::uint64_t reads_forwarded = 0;    // no cached block helped; all from server
  std::uint64_t blocks_requested = 0;
  std::uint64_t blocks_hit = 0;
  std::uint64_t range_fetches = 0;      // coalesced server range-reads issued
  std::uint64_t blocks_repaired = 0;    // read-repair adds that left the block cached
  std::uint64_t coalesced_waiters = 0;  // block fetches piggybacked on a flight
};

// How MCD faults bent this client's traffic (DESIGN.md §5d). A "degraded"
// op is one whose MCD exchange was disturbed by a fault (timeout, torn
// reply, dead daemon) and that therefore leaned on the server for bytes it
// might otherwise have had cached — the op still *succeeds*, it just pays
// the uncached price. The invariant harness checks these counters account
// for every op a fault plan touched.
struct FaultStats {
  std::uint64_t degraded_reads = 0;          // reads that hit a faulted MCD path
  std::uint64_t degraded_stats = 0;          // stat lookups likewise
  std::uint64_t repairs_dropped = 0;         // read-repair adds lost to faults
  std::uint64_t repairs_skipped_stale = 0;   // repairs withheld: path changed
  // --- file-server brownout (DESIGN.md §5f) ---
  std::uint64_t brownout_serves = 0;        // cache answers given while the
                                            // server was down, within bound
  std::uint64_t brownout_stale_bypass = 0;  // ops sent to the dead server
                                            // because the bound had passed
};

class CmCacheXlator final : public gluster::Xlator {
 public:
  // `mcds` is the client's own connection set to the cache bank.
  CmCacheXlator(std::unique_ptr<mcclient::McClient> mcds, ImcaConfig cfg)
      : mcds_(std::move(mcds)),
        mapper_(cfg.block_size),
        cfg_(cfg),
        inflight_(mcds_->loop()) {}

  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;

  // Mutations pass through to the server, but each bumps the path's write
  // epoch *before* forwarding so an in-flight read-repair captured under the
  // old contents can never land after the change (see repair_blocks). In
  // write-back mode (set_writeback) a write is absorbed into the MCD tier
  // instead, and the structural mutations barrier on the path's dirty
  // extents first — flush-before-dependent-op, lifted to the shared tier.
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override;
  // Durability barriers: drain the path's dirty write-back extents (ours by
  // flushing, foreign by waiting for their owner) before forwarding.
  sim::Task<Expected<void>> fsync(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;

  std::string_view name() const override { return "cmcache"; }

  // Wire the file server's health view (ProtocolClient). Enables brownout:
  // while the server is ejected, stats and fully-cached reads are served
  // from the MCD array within cfg.brownout_max_staleness of the outage
  // start; beyond that the cache is bypassed so callers see the outage.
  void set_server_health(const gluster::ServerHealth* health) noexcept {
    health_ = health;
  }

  // Wire the durable write-back tier (DESIGN.md §5j). Must precede the first
  // fop; the tier flushes through whatever ends up below this translator, so
  // it binds to the child *slot*, which set_child may still retarget.
  void set_writeback(std::unique_ptr<WritebackTier> wb) {
    wb_ = std::move(wb);
    if (wb_) wb_->attach(&child_);
  }
  WritebackTier* writeback() noexcept { return wb_.get(); }

  const CmCacheStats& stats() const noexcept { return stats_; }
  const FaultStats& fault_stats() const noexcept { return fault_stats_; }
  const mcclient::McClient& mcds() const noexcept { return *mcds_; }
  const BlockMapper& mapper() const noexcept { return mapper_; }

 private:
  // A resolved block's bytes: full block, short (EOF inside the block) or
  // empty (at/after EOF). Buffers share segments, so single-flight waiters
  // splice the same storage the leader produced, without copies.
  using BlockResult = Expected<Buffer>;

  struct Repair {
    std::string key;
    std::uint64_t block = 0;  // routing hint for the modulo selector
    Buffer bytes;
  };

  // stat() minus the dirty-size floor: the cache/brownout/server pipeline.
  sim::Task<Expected<store::Attr>> stat_base(std::string path);
  // The paper's path: any miss discards the hits and forwards the whole read.
  sim::Task<Expected<Buffer>> read_forward_on_miss(std::string path,
                                                   std::uint64_t offset,
                                                   std::uint64_t len);
  // The rebuilt path: partial-hit assembly + read-repair + single-flight.
  sim::Task<Expected<Buffer>> read_partial_hit(std::string path,
                                               std::uint64_t offset,
                                               std::uint64_t len);
  // Fire-and-forget: push server-fetched blocks into the MCD array. `epoch`
  // is the path's write epoch captured when the read began; a repair is
  // withheld if the path has been mutated since.
  sim::Task<void> repair_blocks(std::string path, std::uint64_t epoch,
                                std::vector<Repair> repairs);

  std::uint64_t epoch_of(const std::string& path) const {
    const auto it = write_epoch_.find(path);
    return it == write_epoch_.end() ? 0 : it->second;
  }
  void bump_epoch(const std::string& path) { ++write_epoch_[path]; }

  // True when the MCD client reported any fault signal since `before` — the
  // exchange the caller just made was disturbed.
  bool faulted_since(std::uint64_t before) const {
    return mcds_->stats().fault_signals() != before;
  }

  // How this op should treat the cache given the file server's health.
  enum class Brownout {
    kOff,     // server up (or no health view / knob off): normal behaviour
    kServe,   // server down, within the staleness bound: cache may answer
    kBypass,  // server down too long: skip the cache, surface the outage
  };
  Brownout brownout_state() const;

  std::unique_ptr<mcclient::McClient> mcds_;
  std::unique_ptr<WritebackTier> wb_;  // null = write-through (the paper)
  BlockMapper mapper_;
  ImcaConfig cfg_;
  const gluster::ServerHealth* health_ = nullptr;
  CmCacheStats stats_;
  FaultStats fault_stats_;
  SingleFlight<BlockResult> inflight_;
  // Per-path mutation counter; monotone over the client's lifetime.
  std::unordered_map<std::string, std::uint64_t> write_epoch_;
};

}  // namespace imca::core
