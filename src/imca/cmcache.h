// CMCache — the Client Memory Cache translator (paper §4.1, §4.2, §4.3.2).
//
// Sits in the GlusterFS *client* stack and intercepts:
//   * stat  — fetch "<path>:stat" from the MCD array; on a miss the stat
//             propagates to the server unchanged.
//   * read  — map the request to IMCa blocks, multi-get them from the MCDs
//             (batched per daemon, hints carry the block index for the
//             modulo selector). If EVERY needed block is present, assemble
//             and return locally; if ANY misses, forward the whole read to
//             the server — which is why cold misses cost more than in plain
//             GlusterFS (§4.4).
//   * write/create/delete/open/close — pass through untouched; the server
//     side (SMCache) owns all cache updates and purges, keeping the client
//     completely lockless.
#pragma once

#include <cstdint>
#include <memory>

#include "gluster/xlator.h"
#include "imca/block_mapper.h"
#include "imca/config.h"
#include "imca/keys.h"
#include "mcclient/client.h"

namespace imca::core {

struct CmCacheStats {
  std::uint64_t stat_hits = 0;
  std::uint64_t stat_misses = 0;
  std::uint64_t reads_from_cache = 0;   // fully served by the MCD array
  std::uint64_t reads_forwarded = 0;    // at least one block missed
  std::uint64_t blocks_requested = 0;
  std::uint64_t blocks_hit = 0;
};

class CmCacheXlator final : public gluster::Xlator {
 public:
  // `mcds` is the client's own connection set to the cache bank.
  CmCacheXlator(std::unique_ptr<mcclient::McClient> mcds, ImcaConfig cfg)
      : mcds_(std::move(mcds)), mapper_(cfg.block_size), cfg_(cfg) {}

  sim::Task<Expected<store::Attr>> stat(const std::string& path) override;
  sim::Task<Expected<std::vector<std::byte>>> read(const std::string& path,
                                                   std::uint64_t offset,
                                                   std::uint64_t len) override;

  std::string_view name() const override { return "cmcache"; }

  const CmCacheStats& stats() const noexcept { return stats_; }
  const mcclient::McClient& mcds() const noexcept { return *mcds_; }
  const BlockMapper& mapper() const noexcept { return mapper_; }

 private:
  std::unique_ptr<mcclient::McClient> mcds_;
  BlockMapper mapper_;
  ImcaConfig cfg_;
  CmCacheStats stats_;
};

}  // namespace imca::core
