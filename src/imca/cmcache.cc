#include "imca/cmcache.h"

#include <algorithm>

namespace imca::core {

sim::Task<Expected<store::Attr>> CmCacheXlator::stat(const std::string& path) {
  auto cached = co_await mcds_->get(stat_key(path));
  if (cached) {
    ByteBuf buf(std::move(cached->data));
    auto attr = store::Attr::decode(buf);
    if (attr) {
      ++stats_.stat_hits;
      co_return *attr;
    }
    // Undecodable item (shouldn't happen): fall through to the server.
  }
  ++stats_.stat_misses;
  co_return co_await child_->stat(path);
}

sim::Task<Expected<std::vector<std::byte>>> CmCacheXlator::read(
    const std::string& path, std::uint64_t offset, std::uint64_t len) {
  if (len == 0) co_return std::vector<std::byte>{};

  const auto blocks = mapper_.covering(offset, len);
  std::vector<std::string> keys;
  std::vector<std::uint64_t> hints;
  keys.reserve(blocks.size());
  hints.reserve(blocks.size());
  for (const auto b : blocks) {
    keys.push_back(data_key(path, mapper_.start_of(b)));
    hints.push_back(b);
  }
  stats_.blocks_requested += blocks.size();

  auto got = co_await mcds_->multi_get(keys, hints);
  stats_.blocks_hit += got.size();

  // A block may legitimately be absent because it lies at/after EOF; those
  // blocks only matter if an *earlier* block was full (data continues). We
  // require: every block present up to the first short block; everything
  // after a short block is EOF territory.
  std::vector<std::byte> assembled;
  assembled.reserve(mapper_.aligned_length(offset, len));
  bool complete = true;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = got.find(keys[i]);
    if (it == got.end()) {
      // Missing block: only acceptable as EOF, i.e. the previous block was
      // short. For the first block a miss is always a real miss.
      if (i == 0 || assembled.size() == i * mapper_.block_size()) {
        complete = false;  // data should exist here but the cache lacks it
      }
      break;
    }
    const auto& data = it->second.data;
    assembled.insert(assembled.end(), data.begin(), data.end());
    if (data.size() < mapper_.block_size()) break;  // short block = EOF
  }

  if (!complete) {
    // At least one needed block missed: the whole read goes to the server
    // (and SMCache will repopulate the daemons on the way back).
    ++stats_.reads_forwarded;
    co_return co_await child_->read(path, offset, len);
  }

  ++stats_.reads_from_cache;
  const std::uint64_t skip = offset - mapper_.align_down(offset);
  if (assembled.size() <= skip) co_return std::vector<std::byte>{};  // EOF
  const std::uint64_t avail = assembled.size() - skip;
  const std::uint64_t take = std::min(len, avail);
  co_return std::vector<std::byte>(
      assembled.begin() + static_cast<std::ptrdiff_t>(skip),
      assembled.begin() + static_cast<std::ptrdiff_t>(skip + take));
}

}  // namespace imca::core
