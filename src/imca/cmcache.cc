#include "imca/cmcache.h"

#include <algorithm>
#include <cassert>

#include "sim/sync.h"

namespace imca::core {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

CmCacheXlator::Brownout CmCacheXlator::brownout_state() const {
  if (health_ == nullptr || !health_->server_down() || !cfg_.brownout) {
    return Brownout::kOff;
  }
  const SimTime now = mcds_->loop().now();
  const SimDuration stale = now - health_->server_down_since();
  return stale <= cfg_.brownout_max_staleness ? Brownout::kServe
                                              : Brownout::kBypass;
}

sim::Task<Expected<store::Attr>> CmCacheXlator::stat(std::string path) {
  auto attr = co_await stat_base(path);
  if (attr && wb_ && wb_->enabled()) {
    // Absorbed-but-unflushed extents may extend the file past what the brick
    // (or the cached stat item) reports: raise the size to the dirty floor
    // so pollers observe acked growth (read-your-writes for stat).
    auto floor = co_await wb_->dirty_size_floor(path);
    if (floor && attr->size < *floor) attr->size = *floor;
  }
  co_return attr;
}

sim::Task<Expected<store::Attr>> CmCacheXlator::stat_base(std::string path) {
  const Brownout bo = brownout_state();
  if (bo == Brownout::kBypass) {
    // The outage outlived the staleness bound: a cached answer could be
    // arbitrarily old, so surface the outage instead of serving it.
    ++fault_stats_.brownout_stale_bypass;
    co_return co_await child_->stat(path);
  }
  const std::uint64_t signals = mcds_->stats().fault_signals();
  auto cached = co_await mcds_->get(stat_key(path));
  if (cached) {
    ByteBuf buf(std::move(cached->data));
    auto attr = store::Attr::decode(buf);
    if (attr) {
      ++stats_.stat_hits;
      if (bo == Brownout::kServe) ++fault_stats_.brownout_serves;
      co_return *attr;
    }
    // Undecodable item (shouldn't happen): fall through to the server.
  }
  ++stats_.stat_misses;
  if (faulted_since(signals)) ++fault_stats_.degraded_stats;
  co_return co_await child_->stat(path);
}

sim::Task<Expected<Buffer>> CmCacheXlator::read(std::string path,
                                                std::uint64_t offset,
                                                std::uint64_t len) {
  if (len == 0) co_return Buffer{};

  if (wb_ && wb_->enabled()) {
    // Read-your-writes across clients: the shared dirty index is consulted
    // before any cache block or brick byte. Engaged = some dirty extent
    // overlaps the range and the overlay is the complete answer.
    auto overlaid = co_await wb_->overlay_read(path, offset, len);
    if (overlaid) co_return std::move(*overlaid);
  }

  const Brownout bo = brownout_state();
  if (bo == Brownout::kBypass) {
    // Too stale to trust the cache (see stat); the read meets the outage.
    ++fault_stats_.brownout_stale_bypass;
    co_return co_await child_->read(path, offset, len);
  }

  // Degraded-read detection: if the MCD client reported any fault signal
  // during this read *and* the read leaned on the server (forwarded or
  // partial), a fault cost it cached bytes. Detached repairs can also move
  // the signal counter, so this is aggregate-accurate, not per-op-exact.
  const std::uint64_t signals = mcds_->stats().fault_signals();
  const std::uint64_t server_reads =
      stats_.reads_forwarded + stats_.reads_partial;
  const std::uint64_t cache_reads = stats_.reads_from_cache;

  std::optional<Expected<Buffer>> result;
  if (!cfg_.partial_hit_reads) {
    result.emplace(co_await read_forward_on_miss(path, offset, len));
  } else {
    result.emplace(co_await read_partial_hit(path, offset, len));
  }
  if (faulted_since(signals) &&
      stats_.reads_forwarded + stats_.reads_partial != server_reads) {
    ++fault_stats_.degraded_reads;
  }
  if (bo == Brownout::kServe && stats_.reads_from_cache != cache_reads) {
    // Fully answered by the MCD array while the file server was down.
    ++fault_stats_.brownout_serves;
  }
  co_return std::move(*result);
}

sim::Task<Expected<std::uint64_t>> CmCacheXlator::write(
    std::string path, std::uint64_t offset, Buffer data) {
  bump_epoch(path);  // before forwarding: no repair captured earlier may land
  if (wb_ && wb_->enabled()) {
    const std::uint64_t n = data.size();
    // absorb() acks from the MCD tier (payload + index on >= wb_quorum
    // daemons) or returns false after draining the path, in which case the
    // write-through below lands after every older dirty epoch.
    if (co_await wb_->absorb(path, offset, data)) co_return n;
  }
  co_return co_await child_->write(path, offset, std::move(data));
}

sim::Task<Expected<void>> CmCacheXlator::unlink(std::string path) {
  bump_epoch(path);
  // Dependent-op barrier (write-behind's flush-before-unlink contract,
  // lifted to the shared tier): dirty extents must reach the brick before
  // the name disappears, or a flush could recreate the file. A barrier
  // timeout fails the op — never silently reordered.
  if (wb_ && wb_->enabled()) {
    auto drained = co_await wb_->sync_path(path);
    if (!drained) co_return drained.error();
  }
  co_return co_await child_->unlink(path);
}

sim::Task<Expected<void>> CmCacheXlator::truncate(std::string path,
                                                  std::uint64_t size) {
  bump_epoch(path);
  if (wb_ && wb_->enabled()) {
    // Same barrier as unlink: a dirty extent flushing after the truncate
    // would resurrect truncated bytes.
    auto drained = co_await wb_->sync_path(path);
    if (!drained) co_return drained.error();
  }
  co_return co_await child_->truncate(path, size);
}

sim::Task<Expected<void>> CmCacheXlator::rename(std::string from,
                                                std::string to) {
  bump_epoch(from);
  bump_epoch(to);
  if (wb_ && wb_->enabled()) {
    // Extents are keyed by path: they must land under the old name before
    // it moves (and the target's before it is replaced).
    auto drained = co_await wb_->sync_path(from);
    if (!drained) co_return drained.error();
    drained = co_await wb_->sync_path(to);
    if (!drained) co_return drained.error();
  }
  auto renamed = co_await child_->rename(from, to);
  if (renamed && wb_ && wb_->enabled()) wb_->note_rename(from, to);
  co_return renamed;
}

sim::Task<Expected<void>> CmCacheXlator::fsync(std::string path) {
  if (wb_ && wb_->enabled()) {
    auto drained = co_await wb_->sync_path(path);
    if (!drained) co_return drained.error();
  }
  co_return co_await child_->fsync(path);
}

sim::Task<Expected<void>> CmCacheXlator::close(std::string path) {
  // close-to-open consistency: the writer's dirty extents are on the brick
  // before close returns, so the next open anywhere reads them back.
  if (wb_ && wb_->enabled()) {
    auto drained = co_await wb_->sync_path(path);
    if (!drained) co_return drained.error();
  }
  co_return co_await child_->close(path);
}

sim::Task<Expected<Buffer>> CmCacheXlator::read_forward_on_miss(
    std::string path, std::uint64_t offset, std::uint64_t len) {
  const auto blocks = mapper_.covering(offset, len);
  std::vector<std::string> keys;
  std::vector<std::uint64_t> hints;
  keys.reserve(blocks.size());
  hints.reserve(blocks.size());
  for (const auto b : blocks) {
    keys.push_back(data_key(path, mapper_.start_of(b)));
    hints.push_back(b);
  }
  stats_.blocks_requested += blocks.size();

  auto got = co_await mcds_->multi_get(keys, hints);
  stats_.blocks_hit += got.size();

  // A block may legitimately be absent because it lies at/after EOF; those
  // blocks only matter if an *earlier* block was full (data continues). We
  // require: every block present up to the first short block; everything
  // after a short block is EOF territory.
  Buffer assembled;
  bool complete = true;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = got.find(keys[i]);
    if (it == got.end()) {
      // Missing block: only acceptable as EOF, i.e. the previous block was
      // short. For the first block a miss is always a real miss.
      if (i == 0 || assembled.size() == i * mapper_.block_size()) {
        complete = false;  // data should exist here but the cache lacks it
      }
      break;
    }
    const std::size_t block_len = it->second.data.size();
    assembled.append(std::move(it->second.data));  // splice, no copy
    if (block_len < mapper_.block_size()) break;  // short block = EOF
  }

  if (!complete) {
    // At least one needed block missed: the whole read goes to the server
    // (and SMCache will repopulate the daemons on the way back).
    ++stats_.reads_forwarded;
    co_return co_await child_->read(path, offset, len);
  }

  ++stats_.reads_from_cache;
  const std::uint64_t skip = offset - mapper_.align_down(offset);
  if (assembled.size() <= skip) co_return Buffer{};  // EOF
  co_return assembled.slice(skip, len);  // view of the cached segments
}

sim::Task<Expected<Buffer>> CmCacheXlator::read_partial_hit(
    std::string path, std::uint64_t offset, std::uint64_t len) {
  const std::uint64_t bs = mapper_.block_size();
  const auto blocks = mapper_.covering(offset, len);
  stats_.blocks_requested += blocks.size();
  // Captured before any fetch: bytes read under this epoch may only be
  // repaired into the MCDs while the path is still at this epoch.
  const std::uint64_t read_epoch = epoch_of(path);

  // One slot per covering block, in ascending block order. Every slot ends
  // the pipeline below holding `bytes` (possibly short or empty = EOF) or
  // `failed`.
  struct Slot {
    std::uint64_t block = 0;
    std::string key;
    std::optional<Buffer> bytes;  // unset until resolved
    bool from_server = false;     // resolved by this read's own range fetch
    bool failed = false;
    SingleFlight<BlockResult>::FlightPtr waiting;  // someone else is fetching
    SingleFlight<BlockResult>::FlightPtr leading;  // we must complete this
  };
  std::vector<Slot> slots(blocks.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].block = blocks[i];
    slots[i].key = data_key(path, mapper_.start_of(blocks[i]));
  }

  // 1. Join the per-block single-flights. Blocks another read is already
  //    resolving are awaited (step 5), not re-fetched; all other blocks are
  //    owned by this read, which must publish their results.
  if (cfg_.coalesce_reads) {
    for (auto& s : slots) {
      auto [flight, leader] = inflight_.join(s.key);
      if (leader) {
        s.leading = std::move(flight);
      } else {
        s.waiting = std::move(flight);
        ++stats_.coalesced_waiters;
      }
    }
  }

  // 2. One batched multi-get for the owned blocks.
  std::vector<std::string> get_keys;
  std::vector<std::uint64_t> get_hints;
  std::vector<std::size_t> get_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].waiting) continue;
    get_keys.push_back(slots[i].key);
    get_hints.push_back(slots[i].block);
    get_slots.push_back(i);
  }
  std::size_t cached_hits = 0;
  if (!get_keys.empty()) {
    auto got = co_await mcds_->multi_get_ordered(std::move(get_keys), get_hints);
    for (std::size_t j = 0; j < got.size(); ++j) {
      if (!got[j]) continue;
      auto& s = slots[get_slots[j]];
      s.bytes = std::move(got[j]->data);
      ++cached_hits;
      if (s.leading) inflight_.complete(s.key, s.leading, BlockResult{*s.bytes});
    }
  }
  stats_.blocks_hit += cached_hits;

  // 3. A short cached block marks EOF: owned blocks after it cannot hold
  //    data, so resolve them to empty instead of asking the server.
  std::size_t eof_slot = kNone;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].bytes && slots[i].bytes->size() < bs) {
      eof_slot = i;
      break;
    }
  }
  if (eof_slot != kNone) {
    for (std::size_t i = eof_slot + 1; i < slots.size(); ++i) {
      auto& s = slots[i];
      if (s.bytes || s.waiting) continue;
      s.bytes.emplace();  // empty = at/after EOF
      if (s.leading) inflight_.complete(s.key, s.leading, BlockResult{*s.bytes});
    }
  }

  // 4. Fetch each contiguous run of still-unresolved owned blocks as one
  //    server range-read, all runs issued concurrently.
  struct Run {
    std::size_t first = 0;  // slot index
    std::size_t count = 0;
    Buffer data;
    Errc error = Errc::kOk;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < slots.size();) {
    if (slots[i].bytes || slots[i].waiting) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < slots.size() && !slots[j].bytes && !slots[j].waiting) ++j;
    runs.push_back(Run{i, j - i, {}, Errc::kOk});
    i = j;
  }
  if (!runs.empty()) {
    stats_.range_fetches += runs.size();
    std::vector<sim::Task<void>> fetches;
    fetches.reserve(runs.size());
    for (auto& run : runs) {
      const std::uint64_t start = mapper_.start_of(slots[run.first].block);
      const std::uint64_t length = static_cast<std::uint64_t>(run.count) * bs;
      fetches.push_back([](gluster::Xlator& child, std::string p,
                           std::uint64_t s, std::uint64_t l,
                           Run& out) -> sim::Task<void> {
        auto data = co_await child.read(p, s, l);
        if (data) {
          out.data = std::move(*data);
        } else {
          out.error = data.error();
        }
      }(*child_, path, start, length, run));
    }
    co_await sim::when_all(mcds_->loop(), std::move(fetches));
  }

  // 5. Distribute each run's bytes back to its slots as zero-copy slices of
  //    the range-read's segments (a slice past the end of the returned data
  //    is an empty block = at/after EOF). A failed run fails its slots;
  //    either way every led flight is completed so waiters never hang.
  for (const auto& run : runs) {
    for (std::size_t k = 0; k < run.count; ++k) {
      auto& s = slots[run.first + k];
      if (run.error != Errc::kOk) {
        s.failed = true;
        if (s.leading) inflight_.complete(s.key, s.leading, BlockResult{run.error});
        continue;
      }
      s.bytes = run.data.slice(static_cast<std::size_t>(k * bs),
                               static_cast<std::size_t>(bs));
      s.from_server = true;
      if (s.leading) inflight_.complete(s.key, s.leading, BlockResult{*s.bytes});
    }
  }

  // 6. Read-repair: push the server-fetched blocks into the MCD array,
  //    fire-and-forget, so the next reader hits. Empty blocks are skipped —
  //    mirroring SMCache's publish rule — so a block at/after EOF never
  //    becomes a cached false EOF marker. The repair carries the path's
  //    write epoch from before the server fetch: if the file is mutated
  //    while the repair is parked, the stale bytes are withheld.
  if (cfg_.client_read_repair) {
    std::vector<Repair> repairs;
    for (const auto& s : slots) {
      if (s.from_server && s.bytes && !s.bytes->empty()) {
        repairs.push_back(Repair{s.key, s.block, *s.bytes});  // shared views
      }
    }
    if (!repairs.empty()) {
      mcds_->loop().spawn(repair_blocks(path, read_epoch, std::move(repairs)));
    }
  }

  // 7. Collect blocks other reads were already fetching.
  bool any_waited = false;
  for (auto& s : slots) {
    if (!s.waiting) continue;
    any_waited = true;
    co_await s.waiting->done.wait();
    const BlockResult& r = *s.waiting->value;
    if (r) {
      s.bytes = *r;  // share the leader's segments
    } else {
      s.failed = true;
    }
  }

  // 8. Any failed slot (server range-read error, here or in the flight we
  //    joined): fall back to forwarding the whole original read, which
  //    yields the server's own answer/error for exactly the bytes asked.
  //    All led flights were completed above, so nobody is left hanging.
  if (std::any_of(slots.begin(), slots.end(),
                  [](const Slot& s) { return s.failed; })) {
    ++stats_.reads_forwarded;
    co_return co_await child_->read(path, offset, len);
  }

  // 9. Assemble in block order by splicing the resolved buffers — cached
  //    segments, server range segments and flight-shared segments end up
  //    side by side in one view chain; a short block ends the file.
  Buffer assembled;
  bool hit_server = false;
  for (auto& s : slots) {
    const std::size_t block_len = s.bytes->size();
    assembled.append(std::move(*s.bytes));
    hit_server = hit_server || s.from_server;
    if (block_len < bs) break;  // short block = EOF
  }

  if (!hit_server) {
    // Every block came from the MCD array or from a flight another read was
    // already resolving — either way this read issued no server I/O.
    ++stats_.reads_from_cache;
  } else if (cached_hits > 0 || any_waited) {
    ++stats_.reads_partial;
  } else {
    ++stats_.reads_forwarded;  // nothing cached helped; all bytes from server
  }

  const std::uint64_t skip = offset - mapper_.align_down(offset);
  if (assembled.size() <= skip) co_return Buffer{};  // EOF
  co_return assembled.slice(skip, len);  // views; no payload copy
}

sim::Task<void> CmCacheXlator::repair_blocks(std::string path,
                                             std::uint64_t epoch,
                                             std::vector<Repair> repairs) {
  for (std::size_t i = 0; i < repairs.size(); ++i) {
    if (epoch_of(path) != epoch) {
      // The path was written/truncated/renamed/unlinked since these bytes
      // left the server: they may describe a file that no longer exists.
      // Withhold the rest — SMCache's purge bookkeeping can't reach blocks
      // it never knew were cached.
      fault_stats_.repairs_skipped_stale += repairs.size() - i;
      co_return;
    }
    auto& r = repairs[i];
    // `add`, not `set`: a repair must never clobber a fresher publish or
    // another reader's repair. NOT_STORED means the cache already holds the
    // block — the warm-cache outcome the repair wanted.
    auto stored = co_await mcds_->add(r.key, std::move(r.bytes), r.block);
    if (stored || stored.error() == Errc::kNotStored) {
      ++stats_.blocks_repaired;
    } else {
      ++fault_stats_.repairs_dropped;  // daemon dead or exchange faulted
    }
  }
}

}  // namespace imca::core
