// Deployment knobs for the IMCa layer — the ablation axes of DESIGN.md §5.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "mcclient/client.h"
#include "mcclient/selector.h"
#include "net/transport.h"

namespace imca::core {

enum class HashScheme {
  kCrc32,       // libmemcache default (every experiment except Fig 9)
  kModulo,      // static modulo / round-robin over block index (Fig 9)
  kConsistent,  // the paper's future-work hashing direction
};

struct ImcaConfig {
  // Fixed cache block size (paper evaluates 256 B, 2 KB, 8 KB; 2 KB is the
  // default used for "the remaining experiments", §5.3).
  std::uint64_t block_size = 2 * kKiB;

  // Key -> MCD placement.
  HashScheme hash = HashScheme::kCrc32;

  // SMCache update mode: false = updates (and the write read-back) happen in
  // the fop path; true = a worker offloads them ("Using an additional
  // thread ... can reduce the cost", §4.3.2).
  bool threaded_updates = false;

  // The brick running this SMCache is one replica of an AFR-style group
  // (DESIGN.md §5i). A replica may be stale — it can miss committed writes
  // while down — so its write hook must not publish anything derived from
  // its local disk. Instead it publishes only the blocks fully covered by
  // the write's own payload (byte-identical on every replica that applied
  // the write) and *invalidates* edge blocks and the stat item, leaving a
  // read through a fresh replica to repopulate them. false = the paper's
  // single-brick protocol: read the aligned region back and republish it
  // wholesale (§4.3.2), which is only safe when this brick is the sole
  // authority for the file.
  bool replica_bricks = false;

  // Upper bound on MCD daemons a deployment may use (sizes the consistent
  // hash ring).
  std::size_t max_mcds = 16;

  // --- miss-path handling (DESIGN.md "Miss-path handling") ---

  // Assemble partial hits: when some covering blocks hit and some miss,
  // fetch only the missing byte ranges from the server and splice them with
  // the cached blocks. false = the paper's behaviour, where any miss
  // discards the hits and forwards the whole read — the §4.4 penalty that
  // makes a cold read cost more than plain GlusterFS.
  bool partial_hit_reads = true;

  // Client-side read-repair: push server-fetched blocks back into the MCD
  // array from the client (fire-and-forget sets), so a single miss warms the
  // cache without waiting for SMCache's server-side publish.
  bool client_read_repair = true;

  // Single-flight coalescing: concurrent fetches of the same <path>:<block>
  // collapse into one MCD fetch + one server range-read; late arrivals wait
  // for the in-flight result instead of repeating the work.
  bool coalesce_reads = true;

  // Reach the cache bank over native IB verbs/RDMA instead of TCP over
  // IPoIB — the paper's future work: "how network mechanisms like Remote
  // Direct Memory Access (RDMA) in InfiniBand can help reduce the overhead
  // of the cache bank" (§7). Only the client<->MCD and server<->MCD paths
  // change; GlusterFS traffic stays on the fabric default.
  bool rdma_cache_path = false;

  // --- MCD failover (DESIGN.md §5d "Failure model") ---

  // Per-attempt MCD deadline. 0 disables the whole failover machinery (no
  // deadline race, no retries, no rejoin probes) — the seed behaviour, where
  // only clean refusals mark a daemon dead.
  SimDuration mcd_op_timeout = 0;
  // Attempts per cache read before the key degrades to a miss.
  std::size_t mcd_get_attempts = 2;
  // Attempts per SMCache publish/purge before the writer gives up. 64 with
  // 50%-lossy faults leaves ~2^-64 odds of an unclean give-up.
  std::size_t mcd_mutation_attempts = 64;
  SimDuration mcd_backoff_base = 200 * kMicro;
  SimDuration mcd_backoff_cap = 5 * kMilli;
  // Eject an MCD after this many consecutive unclean failures.
  std::size_t mcd_eject_after = 3;
  // Probe ejected MCDs for rejoin (flush-first) this often.
  SimDuration mcd_retry_dead_interval = 50 * kMilli;

  // --- file-server brownout (DESIGN.md §5f "Server failure model") ---

  // While the GlusterFS server is ejected (ProtocolClient's ServerHealth
  // view says down), serve stats and fully-cached reads from the MCD array
  // instead of failing — but only within the staleness bound below. Takes
  // effect only when a ServerHealth is wired (CmCacheXlator::
  // set_server_health); without one, behaviour is unchanged.
  bool brownout = true;
  // How long after the server went down cached answers may still be served.
  // Beyond this, CMCache bypasses the cache so the caller sees the outage
  // instead of unboundedly stale data.
  SimDuration brownout_max_staleness = 2000 * kMilli;

  // --- durable write-back into the MCD tier (DESIGN.md §5j) ---

  // Absorb writes into the shared MCD bank instead of forwarding them:
  // payload + dirty-index entry are stored on wb_replicas distinct daemons,
  // the write acks once wb_quorum replicas confirmed, and a background
  // flusher drains dirty epochs to the brick. false = the paper's strictly
  // write-through behaviour (every other knob below is then ignored).
  bool writeback = false;
  // K: distinct daemons each dirty payload/index entry is replicated to
  // (clamped to the deployment's daemon count).
  std::size_t wb_replicas = 2;
  // K_dirty: replicas that must confirm before the write acks. Fewer healthy
  // replicas than this degrades the write to write-through (accounted, never
  // silent).
  std::size_t wb_quorum = 2;
  // Per-client bound on absorbed-but-unflushed bytes; beyond it writes shed
  // to write-through (backpressure, accounted).
  std::uint64_t wb_dirty_limit = 8 * kMiB;
  // Flusher retry schedule for brick writes and index/payload cleanup. The
  // per-pass attempts ride out transient kBusy/crash windows; a pass that
  // still fails re-queues the path.
  std::size_t wb_flush_attempts = 6;
  SimDuration wb_flush_backoff = 1 * kMilli;
  // Coalescing window: how long the background flusher lets a path's dirty
  // extents settle before its first brick pass (0 = flush immediately).
  // Barriers (fsync/close/unlink/...) drain inline and ignore it.
  SimDuration wb_flush_delay = 0;
  // Barrier patience: how many poll rounds (with wb_flush_backoff spacing,
  // doubling up to 16x) an fsync/close/dependent-op waits for *other*
  // writers' dirty extents on the path to drain before giving up with
  // kTimedOut. Bounded so a wedged peer cannot hang a barrier forever.
  std::size_t wb_barrier_rounds = 4000;
};

// Which side of the IMCa protocol a client serves. The reader (CMCache)
// degrades to the server on any MCD trouble; the writer (SMCache) must make
// every publish/purge reach a clean outcome, or stale blocks could survive
// an invalidation (DESIGN.md §5d).
enum class McRole { kReader, kWriter };

inline mcclient::McClientParams make_mcclient_params(
    const ImcaConfig& cfg, McRole role = McRole::kReader) {
  mcclient::McClientParams params;
  if (cfg.rdma_cache_path) {
    params.transport = net::ib_rdma();
    // Verbs bypass the socket layer: the per-key build/parse cost shrinks
    // to descriptor handling.
    params.per_key_cpu = 1 * kMicro;
  }
  params.op_timeout = cfg.mcd_op_timeout;
  if (cfg.mcd_op_timeout > 0) {
    params.get_attempts = cfg.mcd_get_attempts;
    params.mutation_attempts = cfg.mcd_mutation_attempts;
    params.backoff_base = cfg.mcd_backoff_base;
    params.backoff_cap = cfg.mcd_backoff_cap;
    params.eject_after = cfg.mcd_eject_after;
    params.retry_dead_interval = cfg.mcd_retry_dead_interval;
    if (role == McRole::kWriter) {
      params.reliable_mutations = true;
      params.delete_bypasses_ejection = true;
    }
  } else {
    // Seed behaviour: single attempt, no ejection-by-streak, dead stays dead.
    params.get_attempts = 1;
    params.mutation_attempts = 1;
    params.eject_after = 0;
    params.retry_dead_interval = 0;
  }
  return params;
}

inline std::unique_ptr<mcclient::ServerSelector> make_selector(
    const ImcaConfig& cfg) {
  switch (cfg.hash) {
    case HashScheme::kCrc32:
      return std::make_unique<mcclient::Crc32Selector>();
    case HashScheme::kModulo:
      return std::make_unique<mcclient::ModuloSelector>();
    case HashScheme::kConsistent:
      return std::make_unique<mcclient::ConsistentSelector>(cfg.max_mcds);
  }
  return std::make_unique<mcclient::Crc32Selector>();
}

}  // namespace imca::core
