#include "imca/smcache.h"

#include <algorithm>

namespace imca::core {

SmCacheXlator::SmCacheXlator(sim::EventLoop& loop,
                             std::unique_ptr<mcclient::McClient> mcds,
                             ImcaConfig cfg)
    : loop_(loop),
      mcds_(std::move(mcds)),
      mapper_(cfg.block_size),
      cfg_(cfg),
      jobs_(loop) {
  if (cfg_.threaded_updates) {
    worker_ = worker_loop();
    loop_.start(worker_);
  }
}

// ~worker_ (member destruction) cancels the worker at its suspension point
// and reclaims the frame — parked in recv(), mid-job or completed — so
// shutdown never leaks it. No poison message: scheduling a wakeup for a
// frame that is about to be destroyed would leave a dangling handle in the
// loop's queue.
SmCacheXlator::~SmCacheXlator() = default;

sim::Task<void> SmCacheXlator::worker_loop() {
  // Runs until cancelled by ~SmCacheXlator (the owner destroys the frame).
  while (true) {
    Job job = co_await jobs_.recv();
    if (job.epoch != boot_epoch_) {
      // Queued before a crash: the job died with the process. Executing it
      // now would read the brick's post-crash disk — possibly behind its
      // replica siblings — and publish stale bytes over their fresh ones.
      ++stats_.jobs_dropped_in_crash;
    } else if (job.from_payload) {
      ++stats_.worker_jobs;
      co_await publish_write_covered(std::move(job.path), job.write_offset,
                                     std::move(job.payload));
    } else {
      ++stats_.worker_jobs;
      co_await readback_and_publish(std::move(job.path), job.offset,
                                    job.length, job.epoch);
    }
    if (--jobs_pending_ == 0 && drained_ != nullptr) {
      drained_->set();
      drained_ = nullptr;
    }
  }
}

void SmCacheXlator::on_server_crash() {
  down_ = true;
  ++boot_epoch_;  // queued jobs carry the old epoch; the worker drops them
  // Memoized sizes are process memory. The disk they described survives, so
  // keeping them would be consistent — but a restarted daemon re-derives
  // them from stats, and so do we. published_extent_ is deliberately KEPT:
  // it only bounds purges, and an over-wide purge is harmless while an
  // under-wide one could strand a stale block published before the crash.
  known_size_.clear();
}

void SmCacheXlator::on_server_restart() { down_ = false; }

sim::Task<void> SmCacheXlator::quiesce() {
  if (!cfg_.threaded_updates || jobs_pending_ == 0) co_return;
  sim::Event done(loop_);
  drained_ = &done;
  co_await done.wait();
}

sim::Task<void> SmCacheXlator::publish_stat(std::string path,
                                            store::Attr attr) {
  if (down_) {
    ++stats_.publishes_suppressed;
    co_return;
  }
  ByteBuf buf;
  attr.encode(buf);
  auto stored = co_await mcds_->set(stat_key(path), buf.buffer());
  if (stored) {
    ++stats_.stats_published;
  } else {
    ++stats_.publish_drops;  // daemon down: readers will miss and stat the server
  }
}

sim::Task<void> SmCacheXlator::publish_blocks(std::string path,
                                              std::uint64_t region_start,
                                              Buffer data) {
  if (down_) {
    ++stats_.publishes_suppressed;
    co_return;
  }
  const std::uint64_t bs = mapper_.block_size();
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t block_offset = region_start + pos;
    const std::uint64_t n = std::min<std::uint64_t>(bs, data.size() - pos);
    Buffer block = data.slice(pos, n);  // view of the read-back's segments
    auto stored = co_await mcds_->set(data_key(path, block_offset),
                                      std::move(block),
                                      mapper_.index_of(block_offset));
    if (stored) {
      ++stats_.blocks_published;
    } else {
      ++stats_.publish_drops;  // lost copy, not lost truth: the server has it
    }
    pos += n;
  }
  if (!data.empty()) {
    // Extent bookkeeping grows even for dropped publishes: an over-wide
    // purge later issues harmless extra deletes, an under-wide one could
    // leave a stale block behind.
    auto& extent = published_extent_[path];
    extent = std::max(extent, region_start + data.size());
  }
}

sim::Task<void> SmCacheXlator::purge_range(std::string path,
                                           std::uint64_t from_byte,
                                           std::uint64_t to_byte) {
  const std::uint64_t bs = mapper_.block_size();
  for (std::uint64_t off = mapper_.align_down(from_byte); off < to_byte;
       off += bs) {
    auto purged = co_await mcds_->del(data_key(path, off), mapper_.index_of(off));
    if (purged || purged.error() == Errc::kNoEnt) {
      // Clean outcome: deleted, absent, or the daemon is down and therefore
      // empty — either way no stale copy survives.
      ++stats_.blocks_purged;
    } else {
      ++stats_.purge_drops;  // unclean give-up: outside the failure model
    }
  }
}

sim::Task<void> SmCacheXlator::purge(std::string path,
                                     std::uint64_t highest_byte) {
  ++stats_.purges;
  (void)co_await mcds_->del(stat_key(path));
  co_await purge_range(path, 0, highest_byte);
  published_extent_.erase(path);
}

sim::Task<void> SmCacheXlator::readback_and_publish(std::string path,
                                                    std::uint64_t start,
                                                    std::uint64_t length,
                                                    std::uint64_t epoch) {
  ++stats_.readbacks;
  auto data = co_await child_->read(path, start, length);
  if (epoch != boot_epoch_) {
    // The brick crashed while the readback was in flight: these bytes belong
    // to a dead process and may already be behind the committed state.
    ++stats_.publishes_suppressed;
    co_return;
  }
  if (!data) co_return;  // file vanished meanwhile; nothing to publish
  co_await publish_blocks(path, start, *data);
  // The write changed size/mtime: refresh the cached stat so pollers see it.
  auto attr = co_await child_->stat(path);
  if (attr && epoch == boot_epoch_) {
    co_await publish_stat(path, *attr);
  }
}

sim::Task<void> SmCacheXlator::publish_write_covered(std::string path,
                                                     std::uint64_t write_offset,
                                                     Buffer payload) {
  if (down_) {
    ++stats_.publishes_suppressed;
    co_return;
  }
  const std::uint64_t bs = mapper_.block_size();
  const std::uint64_t end = write_offset + payload.size();
  const std::uint64_t first_full = mapper_.align_up(write_offset);
  const std::uint64_t last_full = mapper_.align_down(end);
  // Full blocks inside [write_offset, end): the payload itself, applied
  // byte-identically by every replica that acked — safe from any of them.
  for (std::uint64_t off = first_full; off + bs <= last_full; off += bs) {
    Buffer block = payload.slice(off - write_offset, bs);
    auto stored = co_await mcds_->set(data_key(path, off), std::move(block),
                                      mapper_.index_of(off));
    if (stored) {
      ++stats_.blocks_published;
    } else {
      ++stats_.publish_drops;
    }
  }
  if (last_full > first_full) {
    auto& extent = published_extent_[path];
    extent = std::max(extent, last_full);
  }
  // Partially-covered edge blocks would need completing from the local
  // disk, which on a stale replica is behind the committed state: delete
  // them (and the stat item) and let a read through a fresh replica — or
  // the client's read-repair — put the true bytes back.
  for (std::uint64_t off = mapper_.align_down(write_offset); off < end;
       off += bs) {
    if (off >= first_full && off + bs <= last_full) continue;
    (void)co_await mcds_->del(data_key(path, off), mapper_.index_of(off));
    ++stats_.write_invalidations;
  }
  (void)co_await mcds_->del(stat_key(path));
  ++stats_.write_invalidations;
}

sim::Task<Expected<store::Attr>> SmCacheXlator::open(std::string path) {
  auto attr = co_await child_->open(path);
  if (!attr) co_return attr;
  known_size_[path] = attr->size;
  // "the MCDs are purged of any data relating to the file when the Open
  // operation is received", then the stat structure is published (§4.2).
  const auto it = published_extent_.find(path);
  if (it != published_extent_.end()) {
    co_await purge(path, it->second);
  }
  co_await publish_stat(path, *attr);
  co_return attr;
}

sim::Task<Expected<store::Attr>> SmCacheXlator::stat(std::string path) {
  auto attr = co_await child_->stat(path);
  if (attr) {
    known_size_[path] = attr->size;
    co_await publish_stat(path, *attr);
  }
  co_return attr;
}

sim::Task<Expected<Buffer>> SmCacheXlator::read(std::string path,
                                                std::uint64_t offset,
                                                std::uint64_t len) {
  if (len == 0) co_return co_await child_->read(path, offset, len);

  // Widen to block alignment: the server may read more than requested
  // (paper §4.3.2 and Fig 3).
  const std::uint64_t start = mapper_.align_down(offset);
  const std::uint64_t length = mapper_.aligned_length(offset, len);
  auto data = co_await child_->read(path, start, length);
  if (!data) co_return data;

  if (down_) {
    ++stats_.publishes_suppressed;  // a dead daemon has no hooks to run
  } else if (cfg_.threaded_updates) {
    ++jobs_pending_;
    Job job;
    job.path = path;
    job.offset = start;
    job.length = length;
    job.epoch = boot_epoch_;
    jobs_.send(std::move(job));
  } else {
    co_await publish_blocks(path, start, *data);
  }

  // Slice the requested range back out (views of the same segments that
  // were just published).
  const std::uint64_t skip = offset - start;
  if (data->size() <= skip) co_return Buffer{};
  co_return data->slice(skip, len);
}

sim::Task<Expected<std::uint64_t>> SmCacheXlator::write(
    std::string path, std::uint64_t offset, Buffer data) {
  // Old size first: a write far beyond EOF leaves stale short blocks at the
  // old boundary which must be purged for coherence. The size usually comes
  // from our own bookkeeping; only a path we have never seen costs a stat.
  std::uint64_t old_size = 0;
  if (auto it = known_size_.find(path); it != known_size_.end()) {
    old_size = it->second;
  } else {
    auto before = co_await child_->stat(path);
    if (before) old_size = before->size;
  }

  // Persistence first: the write must be on the file system before any MCD
  // sees a byte of it (§4.3.2, §4.4).
  const std::uint64_t data_size = data.size();
  Buffer payload;  // replica bricks publish from the payload, not the disk
  if (cfg_.replica_bricks) payload = data;
  auto written = co_await child_->write(path, offset, std::move(data));
  if (!written) co_return written;
  known_size_[path] = std::max(old_size, offset + data_size);

  const std::uint64_t start = mapper_.align_down(offset);
  const std::uint64_t length = mapper_.aligned_length(offset, data_size);

  if (old_size < start) {
    // The write skipped past the old EOF: blocks in [old EOF, start) were
    // never (re)published and the old boundary block may be cached short.
    co_await purge_range(path, old_size, start);
  }

  if (down_) {
    ++stats_.publishes_suppressed;  // invalidated above; warmth can wait
  } else if (cfg_.replica_bricks) {
    // This brick is one replica of a group and may hold stale bytes a
    // sibling committed while it was down. A local read-back could publish
    // that staleness into the shared array, so publish only the write's own
    // payload (identical on every replica that acked) and invalidate the
    // rest — see ImcaConfig::replica_bricks.
    if (cfg_.threaded_updates) {
      ++jobs_pending_;
      Job job;
      job.path = path;
      job.epoch = boot_epoch_;
      job.from_payload = true;
      job.payload = std::move(payload);
      job.write_offset = offset;
      jobs_.send(std::move(job));
    } else {
      co_await publish_write_covered(path, offset, std::move(payload));
    }
  } else if (cfg_.threaded_updates) {
    ++jobs_pending_;
    Job job;
    job.path = path;
    job.offset = start;
    job.length = length;
    job.epoch = boot_epoch_;
    jobs_.send(std::move(job));
  } else {
    co_await readback_and_publish(path, start, length, boot_epoch_);
  }
  co_return written;
}

sim::Task<Expected<void>> SmCacheXlator::close(std::string path) {
  auto r = co_await child_->close(path);
  // "it will attempt to discard the data for the file from the MCDs" (§4.3.2)
  const auto it = published_extent_.find(path);
  if (it != published_extent_.end()) {
    co_await purge(path, it->second);
  } else {
    (void)co_await mcds_->del(stat_key(path));
  }
  co_return r;
}

sim::Task<Expected<void>> SmCacheXlator::truncate(std::string path,
                                                  std::uint64_t size) {
  // Old size first (usually from our own bookkeeping): the region whose
  // bytes change is [min(old,new), max(old,new)) — a shrink removes data, a
  // grow turns what a cached short block called EOF into zeros.
  std::uint64_t old_size = 0;
  if (auto it = known_size_.find(path); it != known_size_.end()) {
    old_size = it->second;
  } else if (auto before = co_await child_->stat(path); before) {
    old_size = before->size;
  }

  auto r = co_await child_->truncate(path, size);
  if (!r) co_return r;

  const auto it = published_extent_.find(path);
  if (it != published_extent_.end()) {
    const std::uint64_t stale_from =
        mapper_.align_down(std::min(old_size, size));
    const std::uint64_t stale_to =
        std::min(it->second, mapper_.align_up(std::max(old_size, size)));
    if (stale_to > stale_from) {
      co_await purge_range(path, stale_from, stale_to);
    }
    it->second = std::min(it->second, stale_from);
  }
  known_size_[path] = size;
  auto attr = co_await child_->stat(path);
  if (attr) co_await publish_stat(path, *attr);
  co_return r;
}

sim::Task<Expected<void>> SmCacheXlator::rename(std::string from,
                                                std::string to) {
  auto r = co_await child_->rename(from, to);
  if (!r) co_return r;
  // Every cached item keys on the absolute path: both the old name's blocks
  // and any blocks the replaced target had are now wrong. Purge both; reads
  // of the new name repopulate lazily.
  const auto from_it = published_extent_.find(from);
  co_await purge(from, from_it == published_extent_.end() ? 0 : from_it->second);
  const auto to_it = published_extent_.find(to);
  co_await purge(to, to_it == published_extent_.end() ? 0 : to_it->second);
  if (auto sz = known_size_.find(from); sz != known_size_.end()) {
    known_size_[to] = sz->second;
    known_size_.erase(sz);
  }
  // On a replica brick the local stat may be stale (the purge above already
  // removed the cached item; a fresh replica's read path repopulates it).
  if (!cfg_.replica_bricks) {
    auto attr = co_await child_->stat(to);
    if (attr) co_await publish_stat(to, *attr);
  }
  co_return r;
}

sim::Task<Expected<void>> SmCacheXlator::unlink(std::string path) {
  auto r = co_await child_->unlink(path);
  if (!r) co_return r;
  known_size_.erase(path);
  const auto it = published_extent_.find(path);
  const std::uint64_t extent = it == published_extent_.end() ? 0 : it->second;
  co_await purge(path, extent);
  co_return r;
}

}  // namespace imca::core
