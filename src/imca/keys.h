// Cache key scheme (paper §4.2, §4.3.2):
//   data block : "<absolute path>:<block byte offset>"
//   stat       : "<absolute path>:stat"
//
// The key used to locate an MCD is this string; with the CRC32 selector the
// placement therefore follows libmemcache's hash of exactly these bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace imca::core {

inline std::string data_key(std::string_view path, std::uint64_t block_offset) {
  std::string key;
  key.reserve(path.size() + 24);
  key.append(path);
  key.push_back(':');
  key.append(std::to_string(block_offset));
  return key;
}

inline std::string stat_key(std::string_view path) {
  std::string key;
  key.reserve(path.size() + 5);
  key.append(path);
  key.append(":stat");
  return key;
}

// --- write-back tier keys (DESIGN.md §5j) ---
//
// Both collide with nothing above: data keys end in a decimal offset and the
// stat key in ":stat". The *same* key string is stored on K distinct daemons
// (replica r of a key lives at (primary_of(key) + r) % n), so replicas are
// addressed by pinning the server index, not by varying the key.

// Per-path dirty-extent index: a serialized list of {epoch, writer, seq,
// offset, length} entries, CAS-maintained.
inline std::string wb_index_key(std::string_view path) {
  std::string key;
  key.reserve(path.size() + 6);
  key.append(path);
  key.append(":wbidx");
  return key;
}

// One absorbed write's payload, immutable per (writer, seq).
inline std::string wb_payload_key(std::string_view path, std::uint64_t writer,
                                  std::uint64_t seq) {
  std::string key;
  key.reserve(path.size() + 48);
  key.append(path);
  key.append(":wb:");
  key.append(std::to_string(writer));
  key.push_back(':');
  key.append(std::to_string(seq));
  return key;
}

}  // namespace imca::core
