// Cache key scheme (paper §4.2, §4.3.2):
//   data block : "<absolute path>:<block byte offset>"
//   stat       : "<absolute path>:stat"
//
// The key used to locate an MCD is this string; with the CRC32 selector the
// placement therefore follows libmemcache's hash of exactly these bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace imca::core {

inline std::string data_key(std::string_view path, std::uint64_t block_offset) {
  std::string key;
  key.reserve(path.size() + 24);
  key.append(path);
  key.push_back(':');
  key.append(std::to_string(block_offset));
  return key;
}

inline std::string stat_key(std::string_view path) {
  std::string key;
  key.reserve(path.size() + 5);
  key.append(path);
  key.append(":stat");
  return key;
}

}  // namespace imca::core
