#include "imca/writeback.h"

#include <algorithm>
#include <cassert>

#include "memcache/cache.h"
#include "sim/event_loop.h"

namespace imca::core {

namespace {

// CAS attempts per index append/remove. Conflicts come only from the other
// writers of the same path (each client serializes its own ops per path), so
// contention is tiny; the budget rides out a burst plus transient faults.
constexpr unsigned kCasAttempts = 16;

}  // namespace

WritebackTier::WritebackTier(std::unique_ptr<mcclient::McClient> mcds,
                             std::uint64_t writer_id, ImcaConfig cfg)
    : mcds_(std::move(mcds)),
      writer_id_(writer_id),
      cfg_(cfg),
      loop_(mcds_->loop()),
      jobs_(loop_) {
  if (cfg_.writeback) {
    worker_ = worker_loop();
    loop_.start(worker_);
  }
}

// ~worker_ (member destruction) cancels the flusher at its suspension point
// and reclaims the frame — the SMCache worker idiom. jobs_ outlives worker_
// (declaration order), so a recv() parked on the channel dies cleanly.
WritebackTier::~WritebackTier() = default;

sim::SimMutex& WritebackTier::path_lock(const std::string& path) {
  auto it = path_locks_.find(path);
  if (it == path_locks_.end()) {
    it = path_locks_.emplace(path, std::make_unique<sim::SimMutex>(loop_))
             .first;
  }
  return *it->second;
}

WritebackTier::Fanout WritebackTier::fanout(const std::string& path) const {
  Fanout f;
  f.n = mcds_->server_count();
  f.base = mcds_->primary_of(wb_index_key(path));
  f.k = std::min<std::size_t>(cfg_.wb_replicas, f.n);
  return f;
}

ByteBuf WritebackTier::encode_index(const std::vector<WbExtent>& entries) {
  ByteBuf buf;
  buf.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    buf.put_u64(e.epoch);
    buf.put_u64(e.writer);
    buf.put_u64(e.seq);
    buf.put_u64(e.offset);
    buf.put_u64(e.length);
  }
  return buf;
}

std::optional<std::vector<WbExtent>> WritebackTier::decode_index(Buffer data) {
  ByteBuf buf(std::move(data));
  auto count = buf.get_u32();
  if (!count) return std::nullopt;
  std::vector<WbExtent> entries;
  entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    WbExtent e;
    auto epoch = buf.get_u64();
    auto writer = buf.get_u64();
    auto seq = buf.get_u64();
    auto offset = buf.get_u64();
    auto length = buf.get_u64();
    if (!epoch || !writer || !seq || !offset || !length) return std::nullopt;
    e.epoch = *epoch;
    e.writer = *writer;
    e.seq = *seq;
    e.offset = *offset;
    e.length = *length;
    entries.push_back(e);
  }
  return entries;
}

sim::Task<std::vector<WbExtent>> WritebackTier::read_index(std::string path,
                                                            Fanout f) {
  // All K replicas, concurrently: a restarted-empty replica must never mask
  // entries its siblings still hold, so the result is the union.
  auto copies = std::make_shared<
      std::vector<std::optional<std::vector<WbExtent>>>>(f.k);
  std::vector<sim::Task<void>> legs;
  legs.reserve(f.k);
  for (std::size_t r = 0; r < f.k; ++r) {
    legs.push_back(
        [](WritebackTier* self, std::size_t server, std::string key,
           std::shared_ptr<std::vector<std::optional<std::vector<WbExtent>>>>
               out,
           std::size_t slot) -> sim::Task<void> {
          auto got = co_await self->mcds_->get_at(server, std::move(key));
          if (got) (*out)[slot] = decode_index(std::move(got->data));
        }(this, f.at(r), wb_index_key(path), copies, r));
  }
  co_await sim::when_all(loop_, std::move(legs));

  std::vector<WbExtent> merged;
  for (const auto& copy : *copies) {
    if (!copy) continue;
    for (const auto& e : *copy) {
      const bool seen =
          std::any_of(merged.begin(), merged.end(), [&](const WbExtent& m) {
            return m.writer == e.writer && m.seq == e.seq;
          });
      if (!seen) merged.push_back(e);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const WbExtent& a, const WbExtent& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              if (a.writer != b.writer) return a.writer < b.writer;
              return a.seq < b.seq;
            });
  co_return merged;
}

sim::Task<bool> WritebackTier::append_entry(std::size_t server,
                                            std::string path, WbExtent e) {
  const std::string key = wb_index_key(path);
  for (unsigned attempt = 0; attempt < kCasAttempts; ++attempt) {
    auto got = co_await mcds_->gets_at(server, key);
    if (got) {
      auto entries = decode_index(std::move(got->data));
      if (!entries) co_return false;  // corrupt index: outside the model
      const bool present =
          std::any_of(entries->begin(), entries->end(), [&](const WbExtent& m) {
            return m.writer == e.writer && m.seq == e.seq;
          });
      if (present) co_return true;
      entries->push_back(e);
      auto swapped =
          co_await mcds_->cas_at(server, key, encode_index(*entries).buffer(),
                                 got->cas, memcache::kWbDirtyFlag);
      if (swapped) co_return true;
      if (swapped.error() == Errc::kBusy || swapped.error() == Errc::kNoEnt) {
        ++stats_.cas_conflicts;
        continue;
      }
      co_return false;
    }
    if (got.error() == Errc::kNoEnt) {
      const std::vector<WbExtent> only{e};
      auto added = co_await mcds_->add_at(server, key,
                                          encode_index(only).buffer(),
                                          memcache::kWbDirtyFlag);
      if (added) co_return true;
      if (added.error() == Errc::kNotStored) {
        ++stats_.cas_conflicts;  // another writer installed the item first
        continue;
      }
      co_return false;
    }
    co_return false;  // replica unreachable
  }
  co_return false;
}

sim::Task<bool> WritebackTier::remove_entry(std::size_t server,
                                            std::string path,
                                            std::uint64_t writer,
                                            std::uint64_t seq) {
  const std::string key = wb_index_key(path);
  for (unsigned attempt = 0; attempt < kCasAttempts; ++attempt) {
    auto got = co_await mcds_->gets_at(server, key);
    if (!got) co_return got.error() == Errc::kNoEnt;
    auto entries = decode_index(std::move(got->data));
    if (!entries) co_return false;
    const auto it =
        std::find_if(entries->begin(), entries->end(), [&](const WbExtent& m) {
          return m.writer == writer && m.seq == seq;
        });
    if (it == entries->end()) co_return true;
    entries->erase(it);
    // CAS to the shrunken list, never delete the item: a raw delete would
    // race a concurrent CAS-append and destroy the appender's entry.
    auto swapped =
        co_await mcds_->cas_at(server, key, encode_index(*entries).buffer(),
                               got->cas, memcache::kWbDirtyFlag);
    if (swapped) co_return true;
    if (swapped.error() == Errc::kBusy || swapped.error() == Errc::kNoEnt) {
      ++stats_.cas_conflicts;
      continue;
    }
    co_return false;
  }
  co_return false;
}

sim::Task<void> WritebackTier::retire_entry(std::string path, Fanout f,
                                            WbExtent e) {
  // Index entries first, payload second: a reader that saw the entry before
  // removal must still find either the payload or (removal happens-after the
  // brick write) the flushed bytes under its later base read.
  for (std::size_t r = 0; r < f.k; ++r) {
    (void)co_await remove_entry(f.at(r), path, e.writer, e.seq);
  }
  const std::string pkey = wb_payload_key(path, e.writer, e.seq);
  for (std::size_t r = 0; r < f.k; ++r) {
    (void)co_await mcds_->del_at(f.at(r), pkey);
  }
}

sim::Task<std::optional<Buffer>> WritebackTier::fetch_payload(std::string path,
                                                              Fanout f,
                                                              WbExtent e) {
  const std::string key = wb_payload_key(path, e.writer, e.seq);
  for (std::size_t r = 0; r < f.k; ++r) {
    auto got = co_await mcds_->get_at(f.at(r), key);
    if (got && got->data.size() == e.length) co_return std::move(got->data);
  }
  co_return std::nullopt;
}

sim::Task<bool> WritebackTier::absorb(std::string path, std::uint64_t offset,
                                      Buffer data) {
  if (!cfg_.writeback || child_ == nullptr || data.empty()) co_return false;
  const Fanout f = fanout(path);
  if (f.k < cfg_.wb_quorum) {
    // Deployment smaller than the ack rule: permanent write-through.
    ++stats_.degraded_writes;
    co_await ordered_fallback(path);
    co_return false;
  }
  if (dirty_bytes_ + data.size() > cfg_.wb_dirty_limit) {
    ++stats_.backpressure_sheds;
    // absorb() is awaited by the front-end request path, which owns the
    // tier — no destruction mid-suspension.
    // NOLINTNEXTLINE(imca-coro-this): frame awaited by the tier's owner
    co_await ordered_fallback(path);
    co_return false;
  }
  std::size_t healthy = 0;
  for (std::size_t r = 0; r < f.k; ++r) {
    if (!mcds_->server_dead(f.at(r))) ++healthy;
  }
  if (healthy < cfg_.wb_quorum) {
    ++stats_.degraded_writes;  // brownout: fewer than K_dirty healthy MCDs
    co_await ordered_fallback(path);
    co_return false;
  }

  sim::SimMutex& mu = path_lock(path);
  co_await mu.lock();

  // Epoch above everything visible anywhere and everything we ever issued:
  // merged-max + 1, floored by our local counter so a wiped index (every
  // replica crashed) cannot reissue an epoch.
  auto merged = co_await read_index(path, f);
  std::uint64_t top = epoch_floor_[path];
  for (const auto& e : merged) top = std::max(top, e.epoch);
  WbExtent ext;
  ext.epoch = top + 1;
  ext.writer = writer_id_;
  ext.seq = ++next_seq_;
  ext.offset = offset;
  ext.length = data.size();
  epoch_floor_[path] = ext.epoch;

  // Payload to the K pinned replicas, concurrently, dirty-flagged so a
  // rejoin purge ("flush_all clean") spares it.
  const std::string pkey = wb_payload_key(path, ext.writer, ext.seq);
  auto acks = std::make_shared<std::vector<bool>>(f.k, false);
  {
    std::vector<sim::Task<void>> legs;
    legs.reserve(f.k);
    for (std::size_t r = 0; r < f.k; ++r) {
      legs.push_back([](mcclient::McClient* mc, std::size_t server,
                        std::string key, Buffer bytes,
                        std::shared_ptr<std::vector<bool>> out,
                        std::size_t slot) -> sim::Task<void> {
        auto stored = co_await mc->set_at(server, std::move(key),
                                          std::move(bytes),
                                          memcache::kWbDirtyFlag);
        (*out)[slot] = stored.has_value();
      }(mcds_.get(), f.at(r), pkey, data, acks, r));
    }
    co_await sim::when_all(loop_, std::move(legs));
    stats_.replica_drops += static_cast<std::uint64_t>(
        std::count(acks->begin(), acks->end(), false));
  }
  if (static_cast<std::size_t>(std::count(acks->begin(), acks->end(), true)) <
      cfg_.wb_quorum) {
    for (std::size_t r = 0; r < f.k; ++r) {
      if ((*acks)[r]) (void)co_await mcds_->del_at(f.at(r), pkey);
    }
    ++stats_.degraded_writes;
    mu.unlock();
    co_await ordered_fallback(path);
    co_return false;
  }

  // Index entry to the same K replicas. Payload-first ordering: an entry is
  // never visible without its bytes having reached quorum.
  auto iacks = std::make_shared<std::vector<bool>>(f.k, false);
  {
    std::vector<sim::Task<void>> legs;
    legs.reserve(f.k);
    for (std::size_t r = 0; r < f.k; ++r) {
      legs.push_back([](WritebackTier* self, std::size_t server,
                        std::string p, WbExtent e,
                        std::shared_ptr<std::vector<bool>> out,
                        std::size_t slot) -> sim::Task<void> {
        (*out)[slot] = co_await self->append_entry(server, p, e);
        // NOLINTNEXTLINE(imca-coro-this): when_all joins every leg below.
      }(this, f.at(r), path, ext, iacks, r));
    }
    co_await sim::when_all(loop_, std::move(legs));
    stats_.replica_drops += static_cast<std::uint64_t>(
        std::count(iacks->begin(), iacks->end(), false));
  }
  if (static_cast<std::size_t>(std::count(iacks->begin(), iacks->end(), true)) <
      cfg_.wb_quorum) {
    // Roll back the partial install: the write is about to be re-issued
    // through the brick, so no reader (or future flush) may keep seeing it
    // as a dirty extent.
    ++stats_.rollbacks;
    for (std::size_t r = 0; r < f.k; ++r) {
      if ((*iacks)[r]) {
        (void)co_await remove_entry(f.at(r), path, ext.writer, ext.seq);
      }
    }
    for (std::size_t r = 0; r < f.k; ++r) {
      (void)co_await mcds_->del_at(f.at(r), pkey);
    }
    ++stats_.degraded_writes;
    mu.unlock();
    co_await ordered_fallback(path);
    co_return false;
  }

  ++stats_.absorbed;
  stats_.absorbed_bytes += ext.length;
  dirty_bytes_ += ext.length;
  pending_[path].push_back(ext);  // ascending epoch by construction
  mu.unlock();
  jobs_.send(path);
  co_return true;
}

sim::Task<void> WritebackTier::ordered_fallback(std::string path) {
  // A degraded write is about to go through the brick directly; drain older
  // dirty epochs first so a late flush cannot clobber it. A barrier timeout
  // is already accounted and the write proceeds regardless — a wedged peer
  // must not hang the caller's op.
  (void)co_await sync_path(path);
}

sim::Task<bool> WritebackTier::flush_path_locked(std::string path) {
  if (child_ == nullptr) co_return true;
  const Fanout f = fanout(path);
  std::deque<WbExtent>& dq = pending_[path];
  while (!dq.empty()) {
    const WbExtent ext = dq.front();
    auto merged = co_await read_index(path, f);

    bool ours_indexed = false;
    bool blocked = false;
    std::vector<WbExtent> leftovers;
    for (const auto& m : merged) {
      if (m.writer == writer_id_) {
        if (m.seq == ext.seq) {
          ours_indexed = true;
        } else if (std::none_of(dq.begin(), dq.end(), [&](const WbExtent& p) {
                     return p.seq == m.seq;
                   })) {
          leftovers.push_back(m);  // incomplete removal from an earlier flush
        }
      } else if (m.epoch < ext.epoch) {
        blocked = true;  // an older foreign epoch must reach the brick first
      }
    }
    for (const auto& l : leftovers) co_await retire_entry(path, f, l);
    if (blocked) co_return false;  // not our turn; requeue and poll

    auto payload = co_await fetch_payload(path, f, ext);
    if (!payload) {
      // Every dirty replica died before the flush: the acked bytes are gone.
      // Account the loss — never silently — and retire the extent so
      // barriers and the peers behind it unblock.
      ++stats_.lost_extents;
      stats_.lost_bytes += ext.length;
      lost_.push_back(WbLostExtent{path, ext.offset, ext.length});
      co_await retire_entry(path, f, ext);
      dirty_bytes_ -= ext.length;
      dq.pop_front();
      continue;
    }
    if (!ours_indexed) {
      // The index copies died but a payload survives: re-install the entry
      // from local metadata so readers and barriers see the extent again.
      ++stats_.index_reinstalls;
      for (std::size_t r = 0; r < f.k; ++r) {
        (void)co_await append_entry(f.at(r), path, ext);
      }
    }

    // The brick write travels the ordinary stack: ProtocolClient numbers it
    // and the replay window applies it exactly once across retries.
    Errc err = Errc::kOk;
    bool written = false;
    const std::size_t attempts = std::max<std::size_t>(1, cfg_.wb_flush_attempts);
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++stats_.flush_retries;
        const SimDuration backoff = std::min<SimDuration>(
            cfg_.wb_flush_backoff << std::min<std::size_t>(attempt - 1, 4),
            cfg_.wb_flush_backoff * 16);
        co_await loop_.sleep(backoff);
      }
      auto wrote = co_await (*child_)->write(path, ext.offset, *payload);
      if (wrote) {
        written = true;
        break;
      }
      err = wrote.error();
      if (err == Errc::kNoEnt) break;  // unlinked underneath: nothing to keep
    }
    if (!written && err != Errc::kNoEnt) co_return false;  // stays dirty

    // Retire only after the brick write completed (happens-after): the next
    // epoch's owner proceeds only once it observes the removal.
    co_await retire_entry(path, f, ext);
    ++stats_.flushed_extents;
    stats_.flushed_bytes += ext.length;
    dirty_bytes_ -= ext.length;
    dq.pop_front();
  }
  pending_.erase(path);
  co_return true;
}

sim::Task<void> WritebackTier::worker_loop() {
  // Runs until cancelled by ~WritebackTier (the owner destroys the frame).
  while (true) {
    std::string path = co_await jobs_.recv();
    if (cfg_.wb_flush_delay > 0) {
      // Coalescing window: let back-to-back writes settle in the MCD tier
      // before the first brick pass (barriers bypass the worker, so sync
      // latency is unaffected). This is also what makes dirty lifetime a
      // testable quantity — the quorum-loss plan relies on extents staying
      // dirty across its crash instant.
      co_await loop_.sleep(cfg_.wb_flush_delay);
    }
    sim::SimMutex& mu = path_lock(path);
    co_await mu.lock();
    // ~WritebackTier destroys this worker frame while suspended — it
    // never resumes on a dead object.
    // NOLINTNEXTLINE(imca-coro-this): frame owned and destroyed by the tier
    const bool done = co_await flush_path_locked(path);
    mu.unlock();
    if (done) {
      requeue_streak_.erase(path);
      continue;
    }
    // Blocked on a foreign epoch or an unreachable brick: requeue with a
    // doubling backoff so a long outage doesn't hot-loop the worker.
    ++stats_.flush_requeues;
    std::size_t& streak = requeue_streak_[path];
    const SimDuration backoff = std::min<SimDuration>(
        cfg_.wb_flush_backoff << std::min<std::size_t>(streak, 4),
        cfg_.wb_flush_backoff * 16);
    ++streak;
    co_await loop_.sleep(backoff);
    jobs_.send(std::move(path));
  }
}

void WritebackTier::note_rename(const std::string& from,
                                const std::string& to) {
  std::erase_if(lost_,
                [&](const WbLostExtent& l) { return l.path == to; });
  for (auto& l : lost_) {
    if (l.path == from) l.path = to;
  }
}

sim::Task<Expected<void>> WritebackTier::sync_path(std::string path) {
  if (!cfg_.writeback) co_return Expected<void>{};
  const Fanout f = fanout(path);
  SimDuration backoff = cfg_.wb_flush_backoff;
  const std::size_t rounds = std::max<std::size_t>(1, cfg_.wb_barrier_rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    sim::SimMutex& mu = path_lock(path);
    co_await mu.lock();
    // sync_path() is awaited by the barrier caller, which owns the tier —
    // no destruction mid-suspension.
    // NOLINTNEXTLINE(imca-coro-this): frame awaited by the tier's owner
    const bool own_clear = co_await flush_path_locked(path);
    mu.unlock();
    if (own_clear) {
      auto merged = co_await read_index(path, f);
      bool waiting = false;
      for (const auto& m : merged) {
        if (m.writer == writer_id_) {
          // Ours but no longer pending: leftover of an incomplete removal.
          co_await retire_entry(path, f, m);
          continue;
        }
        auto payload = co_await fetch_payload(path, f, m);
        if (!payload) {
          // Flushed-or-lost: either way no surviving byte can reach the
          // brick through this entry, so retiring it cannot unorder a write.
          co_await retire_entry(path, f, m);
          continue;
        }
        waiting = true;  // genuinely dirty foreign extent: its owner drains it
      }
      if (!waiting) co_return Expected<void>{};
    }
    co_await loop_.sleep(backoff);
    backoff = std::min<SimDuration>(backoff * 2, cfg_.wb_flush_backoff * 16);
  }
  ++stats_.barrier_timeouts;
  co_return Errc::kTimedOut;
}

sim::Task<Expected<void>> WritebackTier::sync_all() {
  if (!cfg_.writeback) co_return Expected<void>{};
  std::vector<std::string> paths;
  paths.reserve(pending_.size());
  for (const auto& [path, dq] : pending_) {
    if (!dq.empty()) paths.push_back(path);
  }
  Errc err = Errc::kOk;
  for (const auto& path : paths) {
    auto r = co_await sync_path(path);
    if (!r) err = r.error();
  }
  if (err != Errc::kOk) co_return err;
  co_return Expected<void>{};
}

sim::Task<std::optional<Expected<Buffer>>> WritebackTier::overlay_read(
    std::string path, std::uint64_t offset, std::uint64_t len) {
  if (!cfg_.writeback || len == 0 || child_ == nullptr) co_return std::nullopt;
  const Fanout f = fanout(path);
  auto merged = co_await read_index(path, f);
  const std::uint64_t end = offset + len;
  std::vector<WbExtent> overlapping;  // keeps read_index's ascending epoch
  std::uint64_t floor = 0;  // dirty size floor: max end over ALL entries
  for (const auto& e : merged) {
    floor = std::max(floor, e.offset + e.length);
    if (e.offset < end && e.offset + e.length > offset) {
      overlapping.push_back(e);
    }
  }
  // Even with no extent under the range the overlay may still own the read:
  // a dirty extent past the range extends the file (stat already advertises
  // `floor`), so a read in the hole below it must see zeros — the brick,
  // not yet flushed to, would report a too-short file instead.
  if (overlapping.empty() && floor <= offset) co_return std::nullopt;
  ++stats_.overlay_reads;

  // Payloads BEFORE the base read: an extent whose payload is gone by now
  // was either flushed (removal happens-after the brick write, so the later
  // base read observes its bytes) or lost (accounted by its owner) — either
  // way skipping it is correct *because* the base read comes after.
  std::vector<std::optional<Buffer>> payloads(overlapping.size());
  for (std::size_t i = 0; i < overlapping.size(); ++i) {
    payloads[i] = co_await fetch_payload(path, f, overlapping[i]);
  }

  auto base = co_await (*child_)->read(path, offset, len);
  std::uint64_t base_len = 0;
  if (base) {
    base_len = base->size();
  } else if (base.error() != Errc::kNoEnt) {
    co_return Expected<Buffer>{base.error()};
  }
  // (kNoEnt with dirty extents: overlay over an empty base — defensive, the
  // create always went through the brick before any absorb.)

  std::uint64_t view_end =
      std::max(offset + base_len, std::min(end, floor));
  for (std::size_t i = 0; i < overlapping.size(); ++i) {
    if (!payloads[i]) continue;
    const auto& e = overlapping[i];
    view_end = std::max(view_end, std::min(end, e.offset + e.length));
  }
  if (view_end <= offset) co_return Expected<Buffer>{Buffer{}};  // at/after EOF

  // Materialize: base bytes, then dirty extents ascending epoch on top.
  // Gaps past the base EOF stay zero — exactly what the brick's zero-fill
  // produces once the extents flush.
  std::vector<std::byte> bytes(static_cast<std::size_t>(view_end - offset),
                               std::byte{0});
  if (base && base_len > 0) {
    base->copy_to(0, std::span<std::byte>(bytes.data(),
                                          static_cast<std::size_t>(base_len)));
  }
  for (std::size_t i = 0; i < overlapping.size(); ++i) {
    if (!payloads[i]) continue;
    const WbExtent& e = overlapping[i];
    const std::uint64_t from = std::max(e.offset, offset);
    const std::uint64_t to = std::min(e.offset + e.length, view_end);
    if (to <= from) continue;
    payloads[i]->copy_to(
        static_cast<std::size_t>(from - e.offset),
        std::span<std::byte>(bytes.data() + (from - offset),
                             static_cast<std::size_t>(to - from)));
  }
  co_return Expected<Buffer>{Buffer::take(std::move(bytes))};
}

sim::Task<std::optional<std::uint64_t>> WritebackTier::dirty_size_floor(
    std::string path) {
  if (!cfg_.writeback) co_return std::nullopt;
  const Fanout f = fanout(path);
  auto merged = co_await read_index(path, f);
  std::uint64_t floor = 0;
  for (const auto& e : merged) floor = std::max(floor, e.offset + e.length);
  if (floor == 0) co_return std::nullopt;
  ++stats_.overlay_stats;
  co_return floor;
}

}  // namespace imca::core
