// SMCache — the Server Memory Cache translator (paper §4.1, §4.3.2).
//
// Sits at the top of the GlusterFS *server* stack. On the way down it may
// transform operations (reads are widened to IMCa block alignment); on the
// way back up — the paper's "hooks in the callback handler" — it feeds
// results to the MCD array:
//
//   open   : purge the file's blocks from the MCDs, then publish its stat.
//   stat   : republish the stat structure.
//   read   : read the aligned covering region from the file system, publish
//            every full block, return the requested slice.
//   write  : write to the file system FIRST (writes are always persistent),
//            then read back the aligned covering region and publish it; in
//            threaded mode the read-back + publish leave the fop path.
//   close  : discard the file's data from the MCDs.
//   unlink : remove, then purge (no false positives, §4.2).
//
// Because only this one server-side component ever writes the cache, and it
// does so after the file system accepted the data, MCD failures can lose
// cached copies but never truth — the property the failure-injection tests
// verify.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gluster/xlator.h"
#include "imca/block_mapper.h"
#include "imca/config.h"
#include "imca/keys.h"
#include "mcclient/client.h"
#include "sim/sync.h"

namespace imca::core {

struct SmCacheStats {
  std::uint64_t blocks_published = 0;  // block sets that reached a daemon
  std::uint64_t stats_published = 0;   // stat sets that reached a daemon
  std::uint64_t purges = 0;            // whole-file purges
  std::uint64_t blocks_purged = 0;     // block deletes with a clean outcome
  std::uint64_t readbacks = 0;         // write-path read-backs
  std::uint64_t worker_jobs = 0;       // jobs taken off the fop path
  // Publishes lost to a dead/faulted daemon: the bytes stay server-only
  // (safe — readers miss and degrade).
  std::uint64_t publish_drops = 0;
  // Purges the writer gave up on uncleanly after exhausting its retry
  // budget. Nonzero only under sustained blackhole faults, which exceed the
  // failure model (DESIGN.md §5d) — tests assert this stays zero.
  std::uint64_t purge_drops = 0;
  // Publishes skipped because the brick process was down: a dead daemon
  // cannot push data, and a crashed brick's disk may be behind its replica
  // siblings — publishing it would poison the shared MCD array.
  std::uint64_t publishes_suppressed = 0;
  // Queued update jobs that died with the process at crash().
  std::uint64_t jobs_dropped_in_crash = 0;
  // Replica-brick write path (ImcaConfig::replica_bricks): edge blocks and
  // stat items deleted instead of republished, because their value would
  // depend on this brick's possibly-stale local disk.
  std::uint64_t write_invalidations = 0;
};

class SmCacheXlator final : public gluster::Xlator {
 public:
  SmCacheXlator(sim::EventLoop& loop,
                std::unique_ptr<mcclient::McClient> mcds, ImcaConfig cfg);
  ~SmCacheXlator() override;

  sim::Task<Expected<store::Attr>> open(std::string path) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override;

  std::string_view name() const override { return "smcache"; }

  // Process death: queued publish jobs and memoized sizes die with the
  // brick. Invalidations are NOT affected — purges stay coupled to the
  // mutation itself (the same journal-entry modeling as the replay window),
  // which is the correctness half; publishes are only warmth.
  void on_server_crash() override;
  void on_server_restart() override;

  const SmCacheStats& stats() const noexcept { return stats_; }
  mcclient::McClient& mcds() noexcept { return *mcds_; }
  const BlockMapper& mapper() const noexcept { return mapper_; }

  // Wait until the update worker has drained (threaded mode); used by tests
  // and benches that must observe a settled cache.
  sim::Task<void> quiesce();

 private:
  struct Job {
    std::string path;
    std::uint64_t offset = 0;  // aligned region start
    std::uint64_t length = 0;  // aligned region length
    std::uint64_t epoch = 0;   // boot epoch at enqueue; stale jobs are dropped
    // Replica-brick write jobs publish from the write's own payload instead
    // of a local read-back (see ImcaConfig::replica_bricks).
    bool from_payload = false;
    Buffer payload;                  // views of the write's segments
    std::uint64_t write_offset = 0;  // absolute offset of payload[0]
  };

  // Publish every block of `data` (which starts at aligned `region_start`)
  // as zero-copy slices of its segments. Blocks shorter than the block size
  // mark EOF; empty blocks are skipped.
  sim::Task<void> publish_blocks(std::string path,
                                 std::uint64_t region_start, Buffer data);
  sim::Task<void> publish_stat(std::string path,
                               store::Attr attr);
  // Delete the stat item and every block up to `highest_byte`.
  sim::Task<void> purge(std::string path, std::uint64_t highest_byte);
  // Delete blocks covering [from_byte, to_byte) — stale-EOF cleanup.
  sim::Task<void> purge_range(std::string path, std::uint64_t from_byte,
                              std::uint64_t to_byte);
  // Read the aligned region back from the file system and publish it —
  // unless the brick crashed since `epoch` (the readback may span a crash).
  sim::Task<void> readback_and_publish(std::string path, std::uint64_t start,
                                       std::uint64_t length,
                                       std::uint64_t epoch);
  // Replica-safe write publish: set every block fully covered by the
  // write's payload, delete the partially-covered edge blocks and the stat
  // item (their completion would come from possibly-stale local disk).
  sim::Task<void> publish_write_covered(std::string path,
                                        std::uint64_t write_offset,
                                        Buffer payload);
  sim::Task<void> worker_loop();

  sim::EventLoop& loop_;
  std::unique_ptr<mcclient::McClient> mcds_;
  BlockMapper mapper_;
  ImcaConfig cfg_;
  SmCacheStats stats_;

  // Highest byte ever published per path — bounds purges.
  std::unordered_map<std::string, std::uint64_t> published_extent_;
  // File sizes as last observed from fop results. Lets the write hook detect
  // hole-creating writes (stale short block at the old EOF) without paying a
  // server stat on every write.
  std::unordered_map<std::string, std::uint64_t> known_size_;

  // Brick process state, driven by on_server_crash()/on_server_restart().
  // While down, every publish is suppressed: the daemon is dead, and after
  // a restart the local disk may be stale until self-heal catches it up.
  bool down_ = false;
  std::uint64_t boot_epoch_ = 0;  // bumped at every crash

  sim::Channel<Job> jobs_;
  std::uint64_t jobs_pending_ = 0;
  sim::Event* drained_ = nullptr;  // armed by quiesce()
  // Caller-owned worker frame (threaded mode): declared after jobs_ so it is
  // destroyed first, cancelling a worker still parked in jobs_.recv() while
  // the channel is alive. No detached frame survives shutdown.
  sim::Task<void> worker_;
};

}  // namespace imca::core
