// Durable write-back into the shared MCD tier (DESIGN.md §5j).
//
// In write-back mode CMCache absorbs a write instead of forwarding it: the
// payload is stored byte-identically on K distinct daemons (replica r of a
// key lives at (primary_of + r) % n, pinned — key hashing cannot guarantee
// distinctness), a {epoch, writer, seq, offset, length} entry is CAS-appended
// to the path's dirty-extent index on the same K daemons, and the write acks
// once >= K_dirty (wb_quorum) replicas confirmed both. A background flusher
// drains dirty extents to the brick tier in global epoch order; the brick
// write travels the ordinary translator stack, so the PR 4 replay window
// gives it exactly-once application and SMCache's payload-covered publish
// keeps the block cache coherent.
//
// Contract highlights (the write-back fault matrix tests each):
//   * Ack rule — an acked byte lives on >= K_dirty daemons, flagged
//     kWbDirtyFlag so rejoin purges ("flush_all clean") spare it.
//   * Epoch order — per path, extents flush in ascending epoch across every
//     client: an owner flushes its minimum-epoch extent only when no foreign
//     entry with a smaller epoch remains in the merged index, and removes
//     the entry only after the brick write completed (happens-after).
//   * Read-your-writes — every client's read/stat consults the merged dirty
//     index first (union of all K replicas, deduped by (writer, seq)), then
//     payloads, then the brick, and overlays ascending-epoch — so a payload
//     that vanished mid-read was either flushed (the later base read sees
//     its bytes) or lost (accounted by its owner).
//   * Graceful degradation — fewer than K_dirty healthy daemons, or the
//     dirty-memory bound, degrade the write to write-through after draining
//     the path (ordering), counted in degraded_writes / backpressure_sheds,
//     never silent.
//   * Loss accounting — the owner keeps local *metadata* (never payload
//     bytes) for its unflushed extents; when a flush finds no payload copy
//     on any of the K daemons the extent is lost, counted and recorded, and
//     its index entries are retired. While >= 1 dirty replica survives, no
//     acked byte is lost — the matrix's tested-zero-loss invariant.
//
// Known window (documented in DESIGN.md §5j): with K > K_dirty the index
// and payload quorums may be disjoint subsets, so crashing the index's
// holders can briefly hide a surviving payload from barrier polls; the
// flusher self-heals by re-installing missing index entries from its local
// metadata. K == K_dirty (the default) closes the window entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gluster/xlator.h"
#include "imca/config.h"
#include "imca/keys.h"
#include "mcclient/client.h"
#include "sim/sync.h"

namespace imca::core {

// One absorbed write, as recorded in the shared dirty index.
struct WbExtent {
  std::uint64_t epoch = 0;   // per-path global order (merged-max + 1)
  std::uint64_t writer = 0;  // owning client's id; only the owner flushes
  std::uint64_t seq = 0;     // owner-local; (writer, seq) dedups the union
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

// An acked extent whose every dirty replica died before the flush.
struct WbLostExtent {
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

struct WritebackStats {
  std::uint64_t absorbed = 0;        // writes acked from the MCD tier
  std::uint64_t absorbed_bytes = 0;
  std::uint64_t degraded_writes = 0;     // quorum unavailable -> write-through
  std::uint64_t backpressure_sheds = 0;  // dirty bound hit -> write-through
  std::uint64_t rollbacks = 0;       // partial installs undone before degrade
  std::uint64_t flushed_extents = 0;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t flush_retries = 0;   // brick write attempts after the first
  std::uint64_t flush_requeues = 0;  // worker passes that left work behind
  std::uint64_t lost_extents = 0;    // all K dirty replicas died pre-flush
  std::uint64_t lost_bytes = 0;
  std::uint64_t cas_conflicts = 0;   // index CAS races (retried)
  std::uint64_t index_reinstalls = 0;  // entries re-installed from metadata
  std::uint64_t barrier_timeouts = 0;  // sync gave up after barrier rounds
  std::uint64_t overlay_reads = 0;   // reads that consulted dirty payloads
  std::uint64_t overlay_stats = 0;   // stats whose size took the dirty floor
  std::uint64_t replica_drops = 0;   // per-replica stores that failed
};

class WritebackTier {
 public:
  // `mcds` must be a writer-role client (reliable mutations + delete
  // bypass); `writer_id` must be unique per client in the deployment.
  WritebackTier(std::unique_ptr<mcclient::McClient> mcds,
                std::uint64_t writer_id, ImcaConfig cfg);
  ~WritebackTier();

  WritebackTier(const WritebackTier&) = delete;
  WritebackTier& operator=(const WritebackTier&) = delete;

  // Wire the brick-path slot (the owning xlator's child_ pointer — stable
  // for the xlator's lifetime, set by the stack builder after construction).
  void attach(gluster::Xlator* const* child_slot) noexcept {
    child_ = child_slot;
  }

  bool enabled() const noexcept { return cfg_.writeback; }

  // Try to absorb the write as a dirty extent. true = acked from the cache
  // tier (data is on >= wb_quorum daemons and queued for flush). false =
  // the caller must write through; the path was already drained here so the
  // write-through lands after every older dirty epoch.
  sim::Task<bool> absorb(std::string path, std::uint64_t offset, Buffer data);

  // Barrier: drain every dirty extent on `path` — flush our own, wait for
  // foreign owners — before a dependent op proceeds. kTimedOut after
  // wb_barrier_rounds polls (a wedged peer cannot hang the barrier forever).
  sim::Task<Expected<void>> sync_path(std::string path);
  // Barrier over every path this client has pending extents on.
  sim::Task<Expected<void>> sync_all();

  // Read-your-writes overlay. nullopt = no dirty extent overlaps the range
  // and the caller should run its normal read path. Otherwise the complete
  // result: merged index first, payloads second, base read third, overlay
  // ascending-epoch last.
  sim::Task<std::optional<Expected<Buffer>>> overlay_read(std::string path,
                                                          std::uint64_t offset,
                                                          std::uint64_t len);

  // Lower bound on the path's size implied by dirty extents (nullopt when
  // none): stat results are raised to it so pollers see absorbed growth.
  sim::Task<std::optional<std::uint64_t>> dirty_size_floor(std::string path);

  // A successful rename moved the observable bytes: losses recorded on
  // `from` are observable at `to` now, and `to`'s prior losses were
  // replaced away with its old content. Keeps the ledger aligned with what
  // a reader can actually see (it is consulted per-path by the crash
  // matrix's tolerant verifier).
  void note_rename(const std::string& from, const std::string& to);

  std::uint64_t dirty_bytes() const noexcept { return dirty_bytes_; }
  const WritebackStats& stats() const noexcept { return stats_; }
  const std::vector<WbLostExtent>& lost() const noexcept { return lost_; }
  const mcclient::McClient& mcds() const noexcept { return *mcds_; }

 private:
  // Replica fan-out for `path`: all write-back items of a path (index and
  // every payload) pin to the same K daemons, derived from the index key.
  struct Fanout {
    std::size_t base = 0;   // primary_of(wb_index_key(path))
    std::size_t k = 0;      // min(wb_replicas, server_count)
    std::size_t n = 0;      // server_count
    std::size_t at(std::size_t r) const noexcept { return (base + r) % n; }
  };
  Fanout fanout(const std::string& path) const;

  static ByteBuf encode_index(const std::vector<WbExtent>& entries);
  static std::optional<std::vector<WbExtent>> decode_index(Buffer data);

  // Union of the index entries on every reachable replica, deduped by
  // (writer, seq), sorted ascending epoch. (Coroutines take their inputs by
  // value throughout — IMCA-CORO-REF: a reference can dangle across the
  // suspensions these helpers are made of.)
  sim::Task<std::vector<WbExtent>> read_index(std::string path, Fanout f);
  // CAS-append `e` to replica r's index (installs the item if absent).
  sim::Task<bool> append_entry(std::size_t server, std::string path,
                               WbExtent e);
  // CAS-remove the (writer, seq) entry from replica r's index.
  sim::Task<bool> remove_entry(std::size_t server, std::string path,
                               std::uint64_t writer, std::uint64_t seq);
  sim::Task<void> retire_entry(std::string path, Fanout f, WbExtent e);
  // First surviving payload copy among the K replicas; nullopt = every
  // dirty replica is gone (dead daemon or clean miss).
  sim::Task<std::optional<Buffer>> fetch_payload(std::string path, Fanout f,
                                                 WbExtent e);

  // Flush own pending extents for `path` in epoch order, respecting the
  // global-min gate. true = nothing of ours left pending on the path.
  // Callers must hold the path lock.
  sim::Task<bool> flush_path_locked(std::string path);
  sim::Task<void> worker_loop();
  // Drain the path (ignore the outcome) so a degraded write-through cannot
  // be clobbered by an older dirty epoch flushing later.
  sim::Task<void> ordered_fallback(std::string path);

  sim::SimMutex& path_lock(const std::string& path);

  std::unique_ptr<mcclient::McClient> mcds_;
  std::uint64_t writer_id_;
  ImcaConfig cfg_;
  gluster::Xlator* const* child_ = nullptr;
  sim::EventLoop& loop_;

  std::uint64_t next_seq_ = 0;
  std::uint64_t dirty_bytes_ = 0;
  // Own unflushed extents per path, ascending epoch. Metadata only — the
  // bytes live exclusively in the MCD tier (that is what makes total loss
  // possible, and accounted, rather than silently masked).
  std::map<std::string, std::deque<WbExtent>> pending_;
  // Epoch floor per path: the next absorb allocates above both this and the
  // merged index max, so a wiped index cannot reissue an epoch.
  std::map<std::string, std::uint64_t> epoch_floor_;
  std::map<std::string, std::unique_ptr<sim::SimMutex>> path_locks_;
  std::map<std::string, std::size_t> requeue_streak_;
  std::vector<WbLostExtent> lost_;
  WritebackStats stats_;

  sim::Channel<std::string> jobs_;
  // Caller-owned worker frame (same idiom as SMCache): declared after
  // jobs_ so destruction cancels a recv() parked on a live channel.
  sim::Task<void> worker_;
};

}  // namespace imca::core
