#include "gluster/distribute.h"

#include <cassert>
#include <string_view>

namespace imca::gluster {

namespace {
// fnv1a64's final multiply only carries a trailing-character delta into the
// low ~45 bits, so sibling paths ("/d/f0", "/d/f1", ...) share their top
// bits and would pile onto one arc of the ring. The splitmix64 finalizer
// gives full avalanche; both ring points and lookups go through it.
std::uint64_t ring_point(std::string_view s) noexcept {
  return splitmix64(fnv1a64(s));
}
}  // namespace

void DistributeXlator::attach(std::unique_ptr<Xlator> xl) {
  Subvol sv;
  sv.id = next_id_++;
  sv.health = dynamic_cast<ServerHealth*>(xl.get());
  sv.xl = std::move(xl);
  const std::string base = "dht-" + std::to_string(sv.id) + "#";
  for (std::size_t j = 0; j < params_.vnodes; ++j) {
    ring_[ring_point(base + std::to_string(j))] = sv.id;
  }
  subvols_.push_back(std::move(sv));
}

std::size_t DistributeXlator::index_of_id(std::uint32_t id) const {
  for (std::size_t i = 0; i < subvols_.size(); ++i) {
    if (subvols_[i].id == id) return i;
  }
  return subvols_.size();
}

std::size_t DistributeXlator::owner_index(std::uint64_t point) const {
  assert(!ring_.empty());
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return index_of_id(it->second);
}

std::size_t DistributeXlator::subvol_of(const std::string& path) const {
  return owner_index(ring_point(path));
}

// Brownout health (see ReplicateXlator::server_down for the contract): the
// backend is down only when EVERY subvolume is down — that is the only
// state in which no write anywhere can commit, which is what makes serving
// cached data safe. One dead group with others live must NOT brown out: a
// write to a live group would commit behind the cache's back.
bool DistributeXlator::server_down() const {
  for (const auto& sv : subvols_) {
    if (sv.health == nullptr || !sv.health->server_down()) return false;
  }
  return !subvols_.empty();
}

SimTime DistributeXlator::server_down_since() const {
  if (!server_down()) return 0;
  SimTime t = 0;
  for (const auto& sv : subvols_) {
    t = std::max(t, sv.health->server_down_since());
  }
  return t;
}

sim::Task<bool> DistributeXlator::sweep_pending(std::string path) {
  auto it = pending_unlinks_.find(path);
  if (it == pending_unlinks_.end()) co_return true;
  const std::size_t idx = index_of_id(it->second);
  if (idx == subvols_.size()) {
    // The owing subvolume left the ring; the stale file went with it.
    pending_unlinks_.erase(path);
    ++stats_.pending_unlink_replays;
    co_return true;
  }
  auto r = co_await subvols_[idx].xl->unlink(path);
  if (r || r.error() == Errc::kNoEnt) {
    pending_unlinks_.erase(path);
    ++stats_.pending_unlink_replays;
    co_return true;
  }
  co_return false;
}

// --- plain fops ------------------------------------------------------------

sim::Task<Expected<store::Attr>> DistributeXlator::create(std::string path,
                                                          std::uint32_t mode) {
  if (pending_unlinks_.count(path) != 0) {
    // The name is logically free but a stale file may still sit on the old
    // owner; it must be reaped before the name can be reused.
    if (!co_await sweep_pending(path)) co_return Errc::kBusy;
  }
  auto r = co_await owner(path).create(path, mode);
  if (r) live_paths_.insert(path);
  co_return r;
}

sim::Task<Expected<store::Attr>> DistributeXlator::open(std::string path) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;
  }
  auto r = co_await owner(path).open(path);
  if (r) live_paths_.insert(path);
  co_return r;
}

sim::Task<Expected<void>> DistributeXlator::close(std::string path) {
  if (pending_unlinks_.count(path) != 0) co_return Errc::kNoEnt;
  co_return co_await owner(path).close(path);
}

sim::Task<Expected<store::Attr>> DistributeXlator::stat(std::string path) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;
  }
  co_return co_await owner(path).stat(path);
}

sim::Task<Expected<Buffer>> DistributeXlator::read(std::string path,
                                                   std::uint64_t offset,
                                                   std::uint64_t len) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;
  }
  co_return co_await owner(path).read(path, offset, len);
}

sim::Task<Expected<std::uint64_t>> DistributeXlator::write(std::string path,
                                                           std::uint64_t offset,
                                                           Buffer data) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;
  }
  co_return co_await owner(path).write(path, offset, std::move(data));
}

sim::Task<Expected<void>> DistributeXlator::unlink(std::string path) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;  // logically gone already
  }
  auto r = co_await owner(path).unlink(path);
  if (r) live_paths_.erase(path);
  co_return r;
}

sim::Task<Expected<void>> DistributeXlator::truncate(std::string path,
                                                     std::uint64_t size) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;
  }
  co_return co_await owner(path).truncate(path, size);
}

sim::Task<Expected<void>> DistributeXlator::fsync(std::string path) {
  if (pending_unlinks_.count(path) != 0) {
    (void)co_await sweep_pending(path);
    co_return Errc::kNoEnt;
  }
  co_return co_await owner(path).fsync(path);
}

// --- rename ----------------------------------------------------------------

sim::Task<Expected<void>> DistributeXlator::stage_commit(Xlator* dst,
                                                         std::string path,
                                                         std::uint32_t mode,
                                                         Buffer data) {
  const std::string stage = stage_of(path);
  // A crashed earlier attempt may have left an orphan stage file behind.
  (void)co_await dst->unlink(stage);
  auto c = co_await dst->create(stage, mode);
  if (!c) co_return c.error();
  if (!data.empty()) {
    auto w = co_await dst->write(stage, 0, std::move(data));
    if (!w) co_return w.error();
  }
  // The commit point: one brick-local atomic swap. `path` either keeps its
  // old contents or has the complete new ones — never a torn in-between.
  auto r = co_await dst->rename(stage, path);
  if (!r) co_return r.error();
  ++stats_.stage_commits;
  co_return Expected<void>{};
}

sim::Task<Expected<void>> DistributeXlator::rename(std::string from,
                                                   std::string to) {
  if (pending_unlinks_.count(from) != 0) {
    (void)co_await sweep_pending(from);
    co_return Errc::kNoEnt;
  }
  if (pending_unlinks_.count(to) != 0) {
    if (!co_await sweep_pending(to)) co_return Errc::kBusy;
  }
  const std::size_t src = subvol_of(from);
  const std::size_t dst = subvol_of(to);
  if (src == dst) {
    auto r = co_await subvols_[src].xl->rename(from, to);
    if (r) {
      live_paths_.erase(from);
      live_paths_.insert(to);
    }
    co_return r;
  }

  ++stats_.cross_renames;
  if (params_.legacy_rename) {
    // The pre-fix sequence, kept for the crash-window regression test: a
    // crash between unlink(to) and create(to) loses the target; a crash
    // between write(to) and unlink(from) leaves the file under both names.
    auto attr = co_await subvols_[src].xl->stat(from);
    if (!attr) co_return attr.error();
    auto data = co_await subvols_[src].xl->read(from, 0, attr->size);
    if (!data) co_return data.error();
    (void)co_await subvols_[dst].xl->unlink(to);
    auto created = co_await subvols_[dst].xl->create(to, attr->mode);
    if (!created) co_return created.error();
    if (!data->empty()) {
      auto w = co_await subvols_[dst].xl->write(to, 0, std::move(*data));
      if (!w) co_return w.error();
    }
    auto u = co_await subvols_[src].xl->unlink(from);
    if (u) {
      live_paths_.erase(from);
      live_paths_.insert(to);
    }
    co_return u;
  }

  // Crash-safe order: read source, stage + atomically commit the target,
  // and only then retire the source name.
  auto attr = co_await subvols_[src].xl->stat(from);
  if (!attr) co_return attr.error();
  Buffer data;
  if (attr->size > 0) {
    auto r = co_await subvols_[src].xl->read(from, 0, attr->size);
    if (!r) co_return r.error();
    data = std::move(*r);
  }
  auto commit =
      co_await stage_commit(subvols_[dst].xl.get(), to, attr->mode,
                            std::move(data));
  if (!commit) co_return commit.error();
  live_paths_.insert(to);
  auto u = co_await subvols_[src].xl->unlink(from);
  live_paths_.erase(from);
  if (!u && u.error() != Errc::kNoEnt) {
    // The rename IS committed (`to` swapped in atomically); only the old
    // name's cleanup is owed. Hide it and reap it on the next touch.
    pending_unlinks_[from] = subvols_[src].id;
    ++stats_.pending_unlinks;
  }
  co_return Expected<void>{};
}

// --- rebalance -------------------------------------------------------------

sim::Task<Expected<std::uint64_t>> DistributeXlator::migrate_path(
    Xlator* src, Xlator* dst, std::string path) {
  auto attr = co_await src->stat(path);
  if (!attr) {
    if (attr.error() == Errc::kNoEnt) co_return 0;  // nothing to move
    co_return attr.error();
  }
  Buffer data;
  if (attr->size > 0) {
    auto r = co_await src->read(path, 0, attr->size);
    if (!r) co_return r.error();
    data = std::move(*r);
  }
  auto commit = co_await stage_commit(dst, path, attr->mode, std::move(data));
  if (!commit) co_return commit.error();
  auto u = co_await src->unlink(path);
  if (!u && u.error() != Errc::kNoEnt) co_return u.error();
  co_return attr->size;
}

sim::Task<Expected<RebalanceReport>> DistributeXlator::add_brick(
    std::unique_ptr<Xlator> sv) {
  // Owners under the old ring, before the new points land.
  std::map<std::string, std::size_t> old_owner;
  for (const auto& p : live_paths_) old_owner[p] = subvol_of(p);
  attach(std::move(sv));

  RebalanceReport rep;
  for (const auto& [path, was] : old_owner) {
    const std::size_t now = subvol_of(path);
    if (now == was) continue;
    auto moved = co_await migrate_path(subvols_[was].xl.get(),
                                       subvols_[now].xl.get(), path);
    if (!moved) co_return moved.error();
    ++rep.moved;
    rep.bytes += *moved;
    ++stats_.rebalanced_paths;
    stats_.rebalance_bytes += *moved;
  }
  co_return rep;
}

sim::Task<Expected<RebalanceReport>> DistributeXlator::remove_brick(
    std::size_t index) {
  assert(index < subvols_.size() && subvols_.size() > 1);
  const std::uint32_t victim = subvols_[index].id;
  std::vector<std::string> owned;
  for (const auto& p : live_paths_) {
    if (subvol_of(p) == index) owned.push_back(p);
  }
  // Retire the victim's ring points; every owned path now hashes elsewhere.
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == victim ? ring_.erase(it) : std::next(it);
  }

  RebalanceReport rep;
  for (const auto& path : owned) {
    const std::size_t now = subvol_of(path);
    auto moved = co_await migrate_path(subvols_[index].xl.get(),
                                       subvols_[now].xl.get(), path);
    if (!moved) co_return moved.error();
    ++rep.moved;
    rep.bytes += *moved;
    ++stats_.rebalanced_paths;
    stats_.rebalance_bytes += *moved;
  }
  subvols_.erase(subvols_.begin() + static_cast<std::ptrdiff_t>(index));
  co_return rep;
}

}  // namespace imca::gluster
