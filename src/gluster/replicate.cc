#include "gluster/replicate.h"

#include <algorithm>
#include <cassert>

namespace imca::gluster {

namespace {

// Per-child fan-out legs. Free coroutines with every input by value: the
// frames outlive the caller's loop iteration, so nothing is borrowed.
sim::Task<void> leg_create(ProtocolClient* child,
                           std::shared_ptr<std::vector<Errc>> errs,
                           std::shared_ptr<std::vector<Expected<store::Attr>>> vals,
                           std::size_t i, std::string path,
                           std::uint32_t mode) {
  auto r = co_await child->create(std::move(path), mode);
  (*errs)[i] = r ? Errc::kOk : r.error();
  (*vals)[i] = std::move(r);
}

sim::Task<void> leg_write(ProtocolClient* child,
                          std::shared_ptr<std::vector<Errc>> errs,
                          std::shared_ptr<std::vector<Expected<std::uint64_t>>> vals,
                          std::size_t i, std::string path,
                          std::uint64_t offset, Buffer data) {
  auto r = co_await child->write(std::move(path), offset, std::move(data));
  (*errs)[i] = r ? Errc::kOk : r.error();
  (*vals)[i] = std::move(r);
}

sim::Task<void> leg_unlink(ProtocolClient* child,
                           std::shared_ptr<std::vector<Errc>> errs,
                           std::size_t i, std::string path) {
  auto r = co_await child->unlink(std::move(path));
  (*errs)[i] = r ? Errc::kOk : r.error();
}

sim::Task<void> leg_truncate(ProtocolClient* child,
                             std::shared_ptr<std::vector<Errc>> errs,
                             std::size_t i, std::string path,
                             std::uint64_t size) {
  auto r = co_await child->truncate(std::move(path), size);
  (*errs)[i] = r ? Errc::kOk : r.error();
}

sim::Task<void> leg_fsync(ProtocolClient* child,
                          std::shared_ptr<std::vector<Errc>> errs,
                          std::size_t i, std::string path) {
  auto r = co_await child->fsync(std::move(path));
  (*errs)[i] = r ? Errc::kOk : r.error();
}

sim::Task<void> leg_rename(ProtocolClient* child,
                           std::shared_ptr<std::vector<Errc>> errs,
                           std::size_t i, std::string from, std::string to) {
  auto r = co_await child->rename(std::move(from), std::move(to));
  (*errs)[i] = r ? Errc::kOk : r.error();
}

}  // namespace

ReplicateXlator::ReplicateXlator(
    sim::EventLoop& loop, std::vector<std::unique_ptr<ProtocolClient>> replicas,
    ReplicateParams params)
    : loop_(loop), replicas_(std::move(replicas)), params_(params) {
  assert(!replicas_.empty());
  quorum_ = params_.quorum != 0 ? params_.quorum : replicas_.size() / 2 + 1;
  assert(quorum_ <= replicas_.size());
  dirty_.resize(replicas_.size());
  was_down_.assign(replicas_.size(), false);
  healing_.assign(replicas_.size(), false);
}

ReplicateXlator::~ReplicateXlator() = default;

// --- quorum bookkeeping ----------------------------------------------------

ReplicateXlator::Quorum ReplicateXlator::commit(
    const std::vector<std::string>& paths, const std::vector<Errc>& child_err) {
  ++stats_.mutations;
  const std::size_t k = replicas_.size();
  std::vector<bool> was_fresh(k, true);
  std::size_t acks = 0;
  std::size_t fresh_acks = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& p : paths) was_fresh[i] = was_fresh[i] && fresh(i, p);
    if (child_err[i] == Errc::kOk) {
      ++acks;
      if (was_fresh[i]) ++fresh_acks;
    }
  }

  Quorum q;
  if (acks >= quorum_ && fresh_acks > 0) {
    q.committed = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (child_err[i] == Errc::kOk && was_fresh[i]) {
        q.winner = i;
        break;
      }
    }
    for (const auto& p : paths) {
      ++epochs_[p];
      for (std::size_t i = 0; i < k; ++i) {
        if (child_err[i] == Errc::kOk && was_fresh[i]) {
          dirty_[i].erase(p);
        } else {
          mark_dirty(i, p);
        }
      }
    }
    if (acks < k) ++stats_.partial_acks;
    return q;
  }

  // Unanimous definite rejection (every child refused with the same
  // non-infrastructure error, e.g. unlink of a name nobody holds): the
  // replica set is still in agreement and nothing was applied anywhere.
  // That is a correct answer, not a quorum failure — report it untainted.
  bool unanimous = acks == 0 && !retryable(child_err[0]);
  for (std::size_t i = 1; unanimous && i < k; ++i) {
    unanimous = child_err[i] == child_err[0];
  }
  if (unanimous) {
    q.err = child_err[0];
    return q;
  }

  // Quorum failed: nothing commits, but children that DID apply the op now
  // diverge from the committed state — taint them so heal rolls them back.
  ++stats_.quorum_short_writes;
  for (const auto& p : paths) {
    for (std::size_t i = 0; i < k; ++i) {
      if (child_err[i] == Errc::kOk) mark_dirty(i, p);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (was_fresh[i] && child_err[i] != Errc::kOk) {
      q.err = child_err[i];
      return q;
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (child_err[i] != Errc::kOk) {
      q.err = child_err[i];
      return q;
    }
  }
  return q;
}

void ReplicateXlator::maybe_forget(const std::string& path) {
  for (const auto& d : dirty_) {
    if (d.count(path) != 0) return;
  }
  epochs_.erase(path);
  last_read_child_.erase(path);
}

// --- read-child selection --------------------------------------------------

std::size_t ReplicateXlator::pick_read_child(const std::string& path) {
  const std::size_t k = replicas_.size();
  const std::size_t aff = fnv1a64(path) % k;
  for (std::size_t d = 0; d < k; ++d) {
    const std::size_t i = (aff + d) % k;
    if (fresh(i, path) && !replicas_[i]->server_down()) return i;
  }
  // Every fresh copy is behind a down server: ride the probe machinery of
  // the first fresh child — its deadline/retry loop will catch a restart.
  for (std::size_t d = 0; d < k; ++d) {
    const std::size_t i = (aff + d) % k;
    if (fresh(i, path)) {
      ++stats_.reads_degraded;
      return i;
    }
  }
  // No fresh copy anywhere (only possible after a failed-quorum mutation).
  ++stats_.reads_degraded;
  return aff;
}

void ReplicateXlator::note_read_child(const std::string& path,
                                      std::size_t child) {
  auto it = last_read_child_.find(path);
  if (it != last_read_child_.end() && it->second != child) {
    ++stats_.read_child_switches;
  }
  last_read_child_[path] = child;
}

// --- health ----------------------------------------------------------------

// Health here answers CMCache's brownout question — "may cached data be
// served in place of the backend?" — whose safety argument is: while the
// backend is down, nothing can commit, so the cache still equals the last
// committed state. With replication that argument only holds when EVERY
// child is unreachable (one live child short of quorum still can't commit).
// Below-quorum-but-reachable is NOT down: reads fail over to any live
// child, and write unavailability surfaces per-op as a quorum error.
bool ReplicateXlator::server_down() const {
  for (const auto& r : replicas_) {
    if (!r->server_down()) return false;
  }
  return true;
}

SimTime ReplicateXlator::server_down_since() const {
  // The instant the backend became fully unreachable = when the last
  // still-up child went down.
  SimTime t = 0;
  for (const auto& r : replicas_) {
    if (!r->server_down()) return 0;
    t = std::max(t, r->server_down_since());
  }
  return t;
}

sim::SimMutex& ReplicateXlator::path_lock(const std::string& path) {
  auto it = path_locks_.find(path);
  if (it == path_locks_.end()) {
    it = path_locks_.emplace(path, std::make_unique<sim::SimMutex>(loop_))
             .first;
  }
  return *it->second;
}

// --- self-heal -------------------------------------------------------------

void ReplicateXlator::poll_rejoins() {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const bool down = replicas_[i]->server_down();
    if (was_down_[i] && !down && !dirty_[i].empty()) spawn_heal(i);
    was_down_[i] = down;
  }
}

void ReplicateXlator::spawn_heal(std::size_t child) {
  if (healing_[child]) return;
  healing_[child] = true;
  ++stats_.heals_scheduled;
  loop_.spawn(
      heal_worker(this, std::weak_ptr<const bool>(alive_), child));
}

sim::Task<void> ReplicateXlator::heal_worker(ReplicateXlator* self,
                                             std::weak_ptr<const bool> alive,
                                             std::size_t child) {
  // Drain the child's dirty set; each heal_path call suspends, so re-check
  // the liveness token before touching members again (write-behind idiom).
  for (;;) {
    if (alive.expired()) co_return;
    if (self->replicas_[child]->server_down()) break;
    auto it = self->dirty_[child].begin();
    if (it == self->dirty_[child].end()) break;
    const std::string path = *it;
    const bool healed = co_await self->heal_path(child, path);
    if (alive.expired()) co_return;
    // No reachable fresh source (or a write raced the copy): stop; the next
    // rejoin edge, open() or heal_all() picks the path up again.
    if (!healed) break;
  }
  if (!alive.expired()) self->healing_[child] = false;
}

sim::Task<bool> ReplicateXlator::heal_path(std::size_t child,
                                           std::string path) {
  sim::SimMutex& mu = path_lock(path);
  co_await mu.lock();
  const bool healed = co_await heal_path_locked(child, path);
  mu.unlock();
  if (healed) maybe_forget(path);
  co_return healed;
}

sim::Task<bool> ReplicateXlator::heal_path_locked(std::size_t child,
                                                  std::string path) {
  if (fresh(child, path)) co_return true;  // healed while we waited
  const std::size_t k = replicas_.size();
  std::size_t src = k;
  for (std::size_t i = 0; i < k; ++i) {
    if (i != child && fresh(i, path) && !replicas_[i]->server_down()) {
      src = i;
      break;
    }
  }
  if (src == k) {
    for (std::size_t i = 0; i < k; ++i) {
      if (i != child && fresh(i, path)) {
        src = i;
        break;
      }
    }
  }
  if (src == k) co_return false;  // no fresh copy to heal from

  const std::uint64_t e0 = epoch_of(path);
  auto attr = co_await replicas_[src]->stat(path);
  if (!attr) {
    if (attr.error() != Errc::kNoEnt) co_return false;
    // The fresh side deleted the file: heal = delete the stale copy.
    auto u = co_await replicas_[child]->unlink(path);
    if (!u && u.error() != Errc::kNoEnt) co_return false;
  } else {
    Buffer data;
    if (attr->size > 0) {
      auto r = co_await replicas_[src]->read(path, 0, attr->size);
      if (!r) co_return false;
      data = std::move(*r);
    }
    // Blind create, tolerating kExist — deliberately NOT a stat probe. Every
    // fop sent to the stale child runs through its full server stack, and a
    // stat would make its SMCache hook publish the stale local size into the
    // shared MCD array, poisoning the cached stat for every mount. create
    // has no publish hook, so it is the one safe existence check.
    auto c = co_await replicas_[child]->create(path, attr->mode);
    if (!c && c.error() != Errc::kExist) co_return false;
    auto t = co_await replicas_[child]->truncate(path, attr->size);
    if (!t) co_return false;
    if (!data.empty()) {
      const std::uint64_t n = data.size();
      auto w = co_await replicas_[child]->write(path, 0, std::move(data));
      if (!w) co_return false;
      stats_.heal_bytes_copied += n;
    }
  }
  // Commit freshness only if no mutation landed while we were copying (the
  // per-path lock keeps client mutations out, but a failed-quorum taint or
  // an unlocked direct sibling op would show up as an epoch move).
  if (epoch_of(path) != e0 || !fresh(src, path)) co_return false;
  dirty_[child].erase(path);
  ++stats_.heals_completed;
  co_return true;
}

sim::Task<HealReport> ReplicateXlator::heal_all() {
  HealReport rep;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const std::vector<std::string> todo(dirty_[i].begin(),
                                          dirty_[i].end());
      for (const auto& p : todo) {
        if (fresh(i, p)) continue;
        if (co_await heal_path(i, p)) {
          ++rep.healed;
          progress = true;
        }
      }
    }
  }
  for (const auto& d : dirty_) rep.remaining += d.size();
  co_return rep;
}

// --- fops ------------------------------------------------------------------

sim::Task<Expected<store::Attr>> ReplicateXlator::create(std::string path,
                                                         std::uint32_t mode) {
  poll_rejoins();
  sim::SimMutex& mu = path_lock(path);
  co_await mu.lock();
  const std::size_t k = replicas_.size();
  auto errs = std::make_shared<std::vector<Errc>>(k, Errc::kTimedOut);
  auto vals = std::make_shared<std::vector<Expected<store::Attr>>>(
      k, Expected<store::Attr>(Errc::kTimedOut));
  std::vector<sim::Task<void>> legs;
  legs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    legs.push_back(leg_create(replicas_[i].get(), errs, vals, i, path, mode));
  }
  co_await sim::when_all(loop_, std::move(legs));
  const Quorum q = commit({path}, *errs);
  mu.unlock();
  if (!q.committed) co_return q.err;
  co_return (*vals)[q.winner];
}

sim::Task<Expected<store::Attr>> ReplicateXlator::open(std::string path) {
  poll_rejoins();
  // Lookup-triggered heal, as in AFR: bring reachable stale copies of this
  // path back to byte-equality before handing out the handle.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!fresh(i, path) && !replicas_[i]->server_down()) {
      (void)co_await heal_path(i, path);
    }
  }
  const std::size_t first = pick_read_child(path);
  auto r = co_await replicas_[first]->open(path);
  if (r || !retryable(r.error())) {
    note_read_child(path, first);
    co_return r;
  }
  for (std::size_t d = 1; d < replicas_.size(); ++d) {
    const std::size_t i = (first + d) % replicas_.size();
    if (!fresh(i, path)) continue;
    auto r2 = co_await replicas_[i]->open(path);
    if (r2 || !retryable(r2.error())) {
      note_read_child(path, i);
      co_return r2;
    }
  }
  co_return r;
}

sim::Task<Expected<void>> ReplicateXlator::close(std::string path) {
  poll_rejoins();
  co_return co_await replicas_[pick_read_child(path)]->close(path);
}

sim::Task<Expected<store::Attr>> ReplicateXlator::stat(std::string path) {
  poll_rejoins();
  const std::size_t first = pick_read_child(path);
  auto r = co_await replicas_[first]->stat(path);
  if (r || !retryable(r.error())) {
    note_read_child(path, first);
    co_return r;
  }
  for (std::size_t d = 1; d < replicas_.size(); ++d) {
    const std::size_t i = (first + d) % replicas_.size();
    if (!fresh(i, path)) continue;
    auto r2 = co_await replicas_[i]->stat(path);
    if (r2 || !retryable(r2.error())) {
      note_read_child(path, i);
      co_return r2;
    }
  }
  co_return r;
}

sim::Task<Expected<Buffer>> ReplicateXlator::read(std::string path,
                                                  std::uint64_t offset,
                                                  std::uint64_t len) {
  poll_rejoins();
  ++stats_.reads;
  const std::size_t first = pick_read_child(path);
  auto r = co_await replicas_[first]->read(path, offset, len);
  if (r || !retryable(r.error())) {
    note_read_child(path, first);
    co_return r;
  }
  for (std::size_t d = 1; d < replicas_.size(); ++d) {
    const std::size_t i = (first + d) % replicas_.size();
    if (!fresh(i, path)) continue;
    auto r2 = co_await replicas_[i]->read(path, offset, len);
    if (r2 || !retryable(r2.error())) {
      note_read_child(path, i);
      co_return r2;
    }
  }
  co_return r;
}

sim::Task<Expected<std::uint64_t>> ReplicateXlator::write(std::string path,
                                                          std::uint64_t offset,
                                                          Buffer data) {
  poll_rejoins();
  sim::SimMutex& mu = path_lock(path);
  co_await mu.lock();
  const std::size_t k = replicas_.size();
  auto errs = std::make_shared<std::vector<Errc>>(k, Errc::kTimedOut);
  auto vals = std::make_shared<std::vector<Expected<std::uint64_t>>>(
      k, Expected<std::uint64_t>(Errc::kTimedOut));
  std::vector<sim::Task<void>> legs;
  legs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    legs.push_back(
        leg_write(replicas_[i].get(), errs, vals, i, path, offset, data));
  }
  co_await sim::when_all(loop_, std::move(legs));
  const Quorum q = commit({path}, *errs);
  mu.unlock();
  if (!q.committed) co_return q.err;
  co_return (*vals)[q.winner];
}

sim::Task<Expected<void>> ReplicateXlator::unlink(std::string path) {
  poll_rejoins();
  sim::SimMutex& mu = path_lock(path);
  co_await mu.lock();
  const std::size_t k = replicas_.size();
  auto errs = std::make_shared<std::vector<Errc>>(k, Errc::kTimedOut);
  std::vector<sim::Task<void>> legs;
  legs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    legs.push_back(leg_unlink(replicas_[i].get(), errs, i, path));
  }
  co_await sim::when_all(loop_, std::move(legs));
  const Quorum q = commit({path}, *errs);
  mu.unlock();
  if (!q.committed) co_return q.err;
  maybe_forget(path);
  co_return Expected<void>{};
}

sim::Task<Expected<void>> ReplicateXlator::truncate(std::string path,
                                                    std::uint64_t size) {
  poll_rejoins();
  sim::SimMutex& mu = path_lock(path);
  co_await mu.lock();
  const std::size_t k = replicas_.size();
  auto errs = std::make_shared<std::vector<Errc>>(k, Errc::kTimedOut);
  std::vector<sim::Task<void>> legs;
  legs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    legs.push_back(leg_truncate(replicas_[i].get(), errs, i, path, size));
  }
  co_await sim::when_all(loop_, std::move(legs));
  const Quorum q = commit({path}, *errs);
  mu.unlock();
  if (!q.committed) co_return q.err;
  co_return Expected<void>{};
}

sim::Task<Expected<void>> ReplicateXlator::fsync(std::string path) {
  poll_rejoins();
  // Barrier, not a mutation: fan out to every child, succeed on a quorum of
  // acks. No commit() — fsync changes no replica state, so a child that
  // missed it is not dirty and no epoch moves.
  const std::size_t k = replicas_.size();
  auto errs = std::make_shared<std::vector<Errc>>(k, Errc::kTimedOut);
  std::vector<sim::Task<void>> legs;
  legs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    legs.push_back(leg_fsync(replicas_[i].get(), errs, i, path));
  }
  co_await sim::when_all(loop_, std::move(legs));
  std::size_t acks = 0;
  Errc err = Errc::kTimedOut;
  for (const Errc e : *errs) {
    if (e == Errc::kOk) {
      ++acks;
    } else if (!retryable(e)) {
      err = e;  // a definite answer (e.g. kNoEnt) beats a transport guess
    } else if (err == Errc::kTimedOut) {
      err = e;
    }
  }
  if (acks >= quorum_) co_return Expected<void>{};
  co_return err;
}

sim::Task<Expected<void>> ReplicateXlator::rename(std::string from,
                                                  std::string to) {
  poll_rejoins();
  // Two-path mutation: take both path locks in lexicographic order so two
  // concurrent renames (a->b, b->a) cannot deadlock.
  sim::SimMutex& first = path_lock(std::min(from, to));
  sim::SimMutex& second = path_lock(std::max(from, to));
  co_await first.lock();
  if (&second != &first) co_await second.lock();
  const std::size_t k = replicas_.size();
  auto errs = std::make_shared<std::vector<Errc>>(k, Errc::kTimedOut);
  std::vector<sim::Task<void>> legs;
  legs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    legs.push_back(leg_rename(replicas_[i].get(), errs, i, from, to));
  }
  co_await sim::when_all(loop_, std::move(legs));
  const Quorum q = commit({from, to}, *errs);
  if (&second != &first) second.unlock();
  first.unlock();
  if (!q.committed) co_return q.err;
  maybe_forget(from);
  co_return Expected<void>{};
}

sim::Task<Expected<Buffer>> ReplicateXlator::read_from(std::size_t i,
                                                       std::string path,
                                                       std::uint64_t offset,
                                                       std::uint64_t len) {
  co_return co_await replicas_.at(i)->read(std::move(path), offset, len);
}

sim::Task<Expected<store::Attr>> ReplicateXlator::stat_from(std::size_t i,
                                                            std::string path) {
  co_return co_await replicas_.at(i)->stat(std::move(path));
}

}  // namespace imca::gluster
