#include "gluster/read_ahead.h"

#include <algorithm>

namespace imca::gluster {

sim::Task<Expected<Buffer>> ReadAheadXlator::read(std::string path,
                                                  std::uint64_t offset,
                                                  std::uint64_t len) {
  // Serve from the prefetch buffer when it fully covers the request: the
  // result shares the prefetched segments, no bytes move.
  if (path == buf_path_ && offset >= buf_offset_ &&
      offset + len <= buf_offset_ + buf_.size()) {
    ++hits_;
    co_return buf_.slice(offset - buf_offset_, len);
  }

  // Sequential continuation of the buffered stream? Prefetch a full window.
  const bool sequential =
      path == buf_path_ && offset == buf_offset_ + buf_.size();
  const std::uint64_t fetch_len = std::max(len, sequential ? window_ : len);
  auto data = co_await child_->read(path, offset, fetch_len);
  if (!data) co_return data;
  if (fetch_len > len) ++prefetches_;

  Buffer result = data->slice(0, len);
  // Stash the whole fetched extent for the next sequential read.
  buf_path_ = path;
  buf_offset_ = offset;
  buf_ = std::move(*data);
  co_return result;
}

sim::Task<Expected<std::uint64_t>> ReadAheadXlator::write(
    std::string path, std::uint64_t offset, Buffer data) {
  drop(path);  // never serve stale prefetched bytes
  co_return co_await child_->write(path, offset, std::move(data));
}

sim::Task<Expected<store::Attr>> ReadAheadXlator::open(
    std::string path) {
  drop(path);
  co_return co_await child_->open(path);
}

sim::Task<Expected<void>> ReadAheadXlator::unlink(std::string path) {
  drop(path);
  co_return co_await child_->unlink(path);
}

sim::Task<Expected<void>> ReadAheadXlator::close(std::string path) {
  drop(path);
  co_return co_await child_->close(path);
}

sim::Task<Expected<void>> ReadAheadXlator::truncate(std::string path,
                                                    std::uint64_t size) {
  drop(path);
  co_return co_await child_->truncate(path, size);
}

sim::Task<Expected<void>> ReadAheadXlator::rename(std::string from,
                                                  std::string to) {
  drop(from);
  drop(to);
  co_return co_await child_->rename(from, to);
}

}  // namespace imca::gluster
