#include "gluster/server.h"

#include <cassert>

namespace imca::gluster {

GlusterServer::GlusterServer(net::RpcSystem& rpc, net::NodeId node,
                             GlusterServerParams params)
    : rpc_(rpc),
      node_(node),
      params_(params),
      dev_(rpc.fabric().loop(), params.raid_members, params.disk,
           params.page_cache_bytes, "brick" + std::to_string(node)) {
  stack_.push_back(std::make_unique<PosixXlator>(
      rpc_.fabric().loop(), rpc_.fabric().node(node_), os_, dev_,
      params_.posix));
  auto io = std::make_unique<IoThreadsXlator>(
      rpc_.fabric().loop(), params_.io_threads, params_.io_queue_limit);
  io->set_child(stack_.back().get());
  io_ = io.get();
  stack_.push_back(std::move(io));
  if (params_.write_behind) {
    auto wb = std::make_unique<WriteBehindXlator>(rpc_.fabric().loop(),
                                                  params_.wb);
    wb->set_child(stack_.back().get());
    wb_ = wb.get();
    stack_.push_back(std::move(wb));
  }
}

void GlusterServer::push_translator(std::unique_ptr<Xlator> xlator) {
  assert(!started_ && "translators must be pushed before start()");
  xlator->set_child(stack_.back().get());
  stack_.push_back(std::move(xlator));
}

void GlusterServer::start() {
  started_ = true;
  up_ = true;
  rpc_.listen(node_, net::kPortGluster,
              [this](ByteBuf req, net::NodeId from) -> sim::Task<ByteBuf> {
                return handle(std::move(req), from);
              });
}

void GlusterServer::stop() {
  up_ = false;
  rpc_.shutdown(node_, net::kPortGluster);
}

void GlusterServer::crash() {
  if (!up_) return;
  up_ = false;
  rpc_.shutdown(node_, net::kPortGluster);
  ++boot_epoch_;  // invalidates every in-flight reply (see handle())
  ++stats_.crashes;
  // Volatile state dies with the process; the ObjectStore is the disk.
  dev_.drop_caches();
  if (wb_) stats_.wb_dropped_bytes += wb_->drop_volatile();
  for (auto& x : stack_) x->on_server_crash();
}

void GlusterServer::restart() {
  if (up_) return;
  ++stats_.restarts;
  for (auto& x : stack_) x->on_server_restart();
  start();
}

void GlusterServer::schedule_crash(SimTime at,
                                   std::optional<SimTime> restart_at) {
  sim::EventLoop& loop = rpc_.fabric().loop();
  loop.spawn([](GlusterServer* self, sim::EventLoop* lp, SimTime when,
                std::optional<SimTime> revive) -> sim::Task<void> {
    co_await lp->sleep_until(when);
    self->crash();
    if (revive) {
      co_await lp->sleep_until(*revive);
      self->restart();
    }
  }(this, &loop, at, restart_at));
}

const FopReply* GlusterServer::window_lookup(std::uint64_t client_id,
                                             std::uint64_t seq) const {
  const auto it = windows_.find(client_id);
  if (it == windows_.end()) return nullptr;
  for (const auto& slot : it->second.slots) {
    if (slot.seq == seq) return &slot.reply;
  }
  return nullptr;
}

void GlusterServer::window_record(std::uint64_t client_id, std::uint64_t seq,
                                  const FopReply& reply) {
  ClientWindow& w = windows_[client_id];
  for (const auto& slot : w.slots) {
    if (slot.seq == seq) {
      // The same mutation ran through the stack twice — the dedup lookup in
      // process() exists to make this impossible. Counted, never expected.
      ++stats_.duplicate_applies;
      return;
    }
  }
  w.slots.push_back(ReplaySlot{seq, reply});
  if (w.slots.size() > kReplayWindow) w.slots.pop_front();
}

sim::Task<ByteBuf> GlusterServer::handle(ByteBuf request, net::NodeId) {
  ++stats_.fops;
  const std::uint64_t epoch = boot_epoch_;
  const SimTime arrival = rpc_.fabric().loop().now();
  co_await rpc_.fabric().node(node_).cpu().use(params_.fop_dispatch_cpu);
  auto req = FopRequest::decode(request);
  FopReply reply;
  if (!req) {
    reply.errc = Errc::kProto;
  } else {
    reply = co_await process(std::move(*req), arrival);
  }
  if (epoch != boot_epoch_) {
    // The brick crashed while this fop was in flight. Whatever the stack
    // did may be on disk, but the connection died with the process — the
    // client sees a reset and cannot tell, hence the replay machinery.
    ++stats_.replies_lost_in_crash;
    reply = FopReply{};
    reply.errc = Errc::kConnReset;
  }
  co_return reply.encode();
}

sim::Task<FopReply> GlusterServer::process(FopRequest req, SimTime arrival) {
  if (req.retry != 0) ++stats_.replays_seen;
  const std::uint64_t client_id = req.client_id;
  const std::uint64_t op_seq = req.op_seq;
  // A replayed mutation the brick already applied is answered from the
  // window, never re-applied: this is the exactly-once half the client's
  // at-least-once retry loop needs.
  if (op_seq > 0) {
    for (;;) {
      if (const FopReply* recorded = window_lookup(client_id, op_seq)) {
        ++stats_.replays_deduped;
        co_return *recorded;
      }
      // A replay can overtake its original: the client's attempt timeout can
      // fire while the first send is still inside dispatch (slow disk, queue
      // pressure), so the retry arrives before anything was recorded.
      // Re-dispatching would apply the mutation twice — park on the original
      // and answer from whatever it records.
      const auto it =
          inflight_mutations_.find(std::make_pair(client_id, op_seq));
      if (it == inflight_mutations_.end()) break;
      const std::shared_ptr<sim::Event> original_done = it->second;
      ++stats_.replays_parked;
      co_await original_done->wait();
      // Nothing may be recorded after the wake (the original was shed with
      // kBusy before applying anything). If several replays of this fop were
      // parked, the first one to resume becomes the new original and inserts
      // a fresh in-flight entry — so loop and re-check BOTH tables: falling
      // through here on a window miss alone would dispatch the mutation
      // concurrently with that new original, applying it twice.
    }
    // Neither recorded nor in flight: running the mutation now is its first
    // application. No suspension point between here and the in-flight
    // insert below, so this claim cannot race with another replay.
  }
  FopReply rep;
  if (params_.admission_limit > 0 && inflight_ >= params_.admission_limit) {
    ++stats_.sheds_admission;
    rep.errc = Errc::kBusy;
    co_return rep;
  }
  if (params_.shed_expired && req.ttl > 0 &&
      rpc_.fabric().loop().now() > arrival + req.ttl) {
    // The client's deadline for this attempt passed while we queued on the
    // CPU; it has already timed out and moved on. kBusy is safe to send for
    // mutations: the op was NOT applied, so the retry is not a duplicate.
    ++stats_.sheds_expired;
    rep.errc = Errc::kBusy;
    co_return rep;
  }
  std::shared_ptr<sim::Event> done;
  if (op_seq > 0) {
    done = std::make_shared<sim::Event>(rpc_.fabric().loop());
    inflight_mutations_[std::make_pair(client_id, op_seq)] = done;
  }
  ++inflight_;
  rep = co_await dispatch(std::move(req));
  --inflight_;
  // Record after the apply, unconditionally — even if the brick "crashed"
  // mid-dispatch. The window models a journal entry committed with the
  // mutation itself: in this simulation the stack always runs to
  // completion, so apply and record are inseparable, and a post-crash
  // replay finds the recorded reply instead of re-applying.
  if (op_seq > 0) {
    if (rep.errc != Errc::kBusy) window_record(client_id, op_seq, rep);
    inflight_mutations_.erase(std::make_pair(client_id, op_seq));
    done->set();  // wake any parked replays; they re-check the window
  }
  co_return rep;
}

sim::Task<FopReply> GlusterServer::dispatch(FopRequest req) {
  Xlator& x = top();
  FopReply rep;
  switch (req.type) {
    case FopType::kCreate: {
      auto r = co_await x.create(req.path, req.mode);
      rep.errc = r.error();
      if (r) rep.attr = *r;
      break;
    }
    case FopType::kOpen: {
      auto r = co_await x.open(req.path);
      rep.errc = r.error();
      if (r) rep.attr = *r;
      break;
    }
    case FopType::kClose: {
      rep.errc = (co_await x.close(req.path)).error();
      break;
    }
    case FopType::kStat: {
      auto r = co_await x.stat(req.path);
      rep.errc = r.error();
      if (r) rep.attr = *r;
      break;
    }
    case FopType::kRead: {
      auto r = co_await x.read(req.path, req.offset, req.length);
      rep.errc = r.error();
      if (r) rep.data = std::move(*r);
      break;
    }
    case FopType::kWrite: {
      auto r = co_await x.write(req.path, req.offset, std::move(req.data));
      rep.errc = r.error();
      if (r) rep.count = *r;
      break;
    }
    case FopType::kUnlink: {
      rep.errc = (co_await x.unlink(req.path)).error();
      break;
    }
    case FopType::kTruncate: {
      rep.errc = (co_await x.truncate(req.path, req.offset)).error();
      break;
    }
    case FopType::kRename: {
      rep.errc = (co_await x.rename(req.path, req.path2)).error();
      break;
    }
    case FopType::kFsync: {
      rep.errc = (co_await x.fsync(req.path)).error();
      break;
    }
  }
  co_return rep;
}

}  // namespace imca::gluster
