#include "gluster/server.h"

#include <cassert>

namespace imca::gluster {

GlusterServer::GlusterServer(net::RpcSystem& rpc, net::NodeId node,
                             GlusterServerParams params)
    : rpc_(rpc),
      node_(node),
      params_(params),
      dev_(rpc.fabric().loop(), params.raid_members, params.disk,
           params.page_cache_bytes, "brick" + std::to_string(node)) {
  stack_.push_back(std::make_unique<PosixXlator>(
      rpc_.fabric().loop(), rpc_.fabric().node(node_), os_, dev_,
      params_.posix));
  auto io = std::make_unique<IoThreadsXlator>(rpc_.fabric().loop(),
                                              params_.io_threads);
  io->set_child(stack_.back().get());
  stack_.push_back(std::move(io));
}

void GlusterServer::push_translator(std::unique_ptr<Xlator> xlator) {
  assert(!started_ && "translators must be pushed before start()");
  xlator->set_child(stack_.back().get());
  stack_.push_back(std::move(xlator));
}

void GlusterServer::start() {
  started_ = true;
  rpc_.listen(node_, net::kPortGluster,
              [this](ByteBuf req, net::NodeId from) -> sim::Task<ByteBuf> {
                return handle(std::move(req), from);
              });
}

void GlusterServer::stop() { rpc_.shutdown(node_, net::kPortGluster); }

sim::Task<ByteBuf> GlusterServer::handle(ByteBuf request, net::NodeId) {
  ++fops_;
  co_await rpc_.fabric().node(node_).cpu().use(params_.fop_dispatch_cpu);
  auto req = FopRequest::decode(request);
  FopReply reply;
  if (!req) {
    reply.errc = Errc::kProto;
  } else {
    reply = co_await dispatch(std::move(*req));
  }
  co_return reply.encode();
}

sim::Task<FopReply> GlusterServer::dispatch(FopRequest req) {
  Xlator& x = top();
  FopReply rep;
  switch (req.type) {
    case FopType::kCreate: {
      auto r = co_await x.create(req.path, req.mode);
      rep.errc = r.error();
      if (r) rep.attr = *r;
      break;
    }
    case FopType::kOpen: {
      auto r = co_await x.open(req.path);
      rep.errc = r.error();
      if (r) rep.attr = *r;
      break;
    }
    case FopType::kClose: {
      rep.errc = (co_await x.close(req.path)).error();
      break;
    }
    case FopType::kStat: {
      auto r = co_await x.stat(req.path);
      rep.errc = r.error();
      if (r) rep.attr = *r;
      break;
    }
    case FopType::kRead: {
      auto r = co_await x.read(req.path, req.offset, req.length);
      rep.errc = r.error();
      if (r) rep.data = std::move(*r);
      break;
    }
    case FopType::kWrite: {
      auto r = co_await x.write(req.path, req.offset, std::move(req.data));
      rep.errc = r.error();
      if (r) rep.count = *r;
      break;
    }
    case FopType::kUnlink: {
      rep.errc = (co_await x.unlink(req.path)).error();
      break;
    }
    case FopType::kTruncate: {
      rep.errc = (co_await x.truncate(req.path, req.offset)).error();
      break;
    }
    case FopType::kRename: {
      rep.errc = (co_await x.rename(req.path, req.path2)).error();
      break;
    }
  }
  co_return rep;
}

}  // namespace imca::gluster
