#include "gluster/protocol.h"

namespace imca::gluster {

ByteBuf FopRequest::encode() const {
  ByteBuf out;
  out.put_u8(static_cast<std::uint8_t>(type));
  out.put_string(path);
  out.put_u64(offset);
  out.put_u64(length);
  out.put_u32(mode);
  out.put_string(path2);
  out.put_bytes(data);
  out.put_u64(client_id);
  out.put_u64(op_seq);
  out.put_u8(retry);
  out.put_u64(ttl);
  return out;
}

Expected<FopRequest> FopRequest::decode(ByteBuf& in) {
  FopRequest req;
  auto type_raw = in.get_u8();
  if (!type_raw) return type_raw.error();
  if (*type_raw < 1 || *type_raw > 10) return Errc::kProto;
  req.type = static_cast<FopType>(*type_raw);
  auto path = in.get_string();
  if (!path) return path.error();
  req.path = std::move(*path);
  auto offset = in.get_u64();
  if (!offset) return offset.error();
  req.offset = *offset;
  auto length = in.get_u64();
  if (!length) return length.error();
  req.length = *length;
  auto mode = in.get_u32();
  if (!mode) return mode.error();
  req.mode = *mode;
  auto path2 = in.get_string();
  if (!path2) return path2.error();
  req.path2 = std::move(*path2);
  auto data = in.get_bytes();
  if (!data) return data.error();
  req.data = std::move(*data);
  auto client_id = in.get_u64();
  if (!client_id) return client_id.error();
  req.client_id = *client_id;
  auto op_seq = in.get_u64();
  if (!op_seq) return op_seq.error();
  req.op_seq = *op_seq;
  auto retry = in.get_u8();
  if (!retry) return retry.error();
  req.retry = *retry;
  auto ttl = in.get_u64();
  if (!ttl) return ttl.error();
  req.ttl = *ttl;
  return req;
}

ByteBuf FopReply::encode() const {
  ByteBuf out;
  out.put_u32(static_cast<std::uint32_t>(errc));
  attr.encode(out);
  out.put_bytes(data);
  out.put_u64(count);
  return out;
}

Expected<FopReply> FopReply::decode(ByteBuf& in) {
  FopReply rep;
  auto errc_raw = in.get_u32();
  if (!errc_raw) return errc_raw.error();
  rep.errc = static_cast<Errc>(*errc_raw);
  auto attr = store::Attr::decode(in);
  if (!attr) return attr.error();
  rep.attr = *attr;
  auto data = in.get_bytes();
  if (!data) return data.error();
  rep.data = std::move(*data);
  auto count = in.get_u64();
  if (!count) return count.error();
  rep.count = *count;
  return rep;
}

}  // namespace imca::gluster
