// performance/read-ahead: detects sequential reads and fetches a window
// ahead, serving subsequent reads from the prefetched buffer (paper §2.1
// lists Read Ahead among GlusterFS's stock translators).
//
// Note this is *not* a client cache: the buffer holds only the tail of the
// current sequential run of one file and is dropped on any write, open or
// non-sequential read — matching the translator's behaviour, and why the
// paper still calls this configuration "no client side cache".
#pragma once

#include <string>

#include "gluster/xlator.h"

namespace imca::gluster {

class ReadAheadXlator final : public Xlator {
 public:
  explicit ReadAheadXlator(std::uint64_t window = 128 * kKiB)
      : window_(window) {}

  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<store::Attr>> open(std::string path) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override;

  std::string_view name() const override { return "read-ahead"; }

  std::uint64_t prefetch_hits() const noexcept { return hits_; }
  std::uint64_t prefetches() const noexcept { return prefetches_; }

 private:
  void drop(const std::string& path) {
    if (path == buf_path_) buf_path_.clear();
  }

  std::uint64_t window_;
  // Single prefetch buffer (one sequential stream at a time, like the
  // translator's per-fd pages with default settings).
  std::string buf_path_;
  std::uint64_t buf_offset_ = 0;
  Buffer buf_;
  std::uint64_t hits_ = 0;
  std::uint64_t prefetches_ = 0;
};

}  // namespace imca::gluster
