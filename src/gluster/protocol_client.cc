#include "gluster/protocol_client.h"

#include <algorithm>
#include <memory>

#include "sim/sync.h"

namespace imca::gluster {

namespace {

// Every one of these is safe to retry: kConnRefused and kBusy mean the op
// was NOT applied; the ambiguous ones (kTimedOut, kConnReset, kProto) are
// made safe for mutations by the brick's replay window.
bool retryable(Errc e) noexcept {
  return e == Errc::kTimedOut || e == Errc::kConnRefused ||
         e == Errc::kConnReset || e == Errc::kBusy || e == Errc::kProto;
}

}  // namespace

void ProtocolClient::mark_alive() {
  fail_streak_ = 0;
  if (down_) {
    down_ = false;
    ++stats_.rejoins;
  }
}

void ProtocolClient::note_failure() {
  ++fail_streak_;
  const SimTime now = loop().now();
  if (!down_ && fail_streak_ >= params_.eject_after) {
    down_ = true;
    down_since_ = now;
    ++stats_.ejections;
  }
  if (down_) next_probe_ = now + params_.probe_interval;
}

void ProtocolClient::note_elapsed(SimTime start) {
  const SimDuration elapsed = loop().now() - start;
  if (elapsed > stats_.max_op_elapsed) stats_.max_op_elapsed = elapsed;
}

sim::Task<Expected<FopReply>> ProtocolClient::attempt(FopRequest req,
                                                      SimDuration timeout) {
  Expected<ByteBuf> wire = Errc::kTimedOut;
  if (timeout == 0) {
    wire = co_await rpc_.call(self_, server_, net::kPortGluster, req.encode());
  } else {
    // Race the RPC against the attempt deadline (the McClient idiom). The
    // RPC wrapper is detached: if the deadline wins, the wrapper keeps
    // running in the background (every fault resolves in bounded sim time,
    // so its frame always completes before the loop drains) and its late
    // result is discarded.
    struct Race {
      explicit Race(sim::EventLoop& l) : done(l) {}
      sim::Event done;
      std::optional<Expected<ByteBuf>> result;
    };
    auto race = std::make_shared<Race>(loop());
    loop().spawn([](ProtocolClient* c, ByteBuf encoded,
                    std::shared_ptr<Race> r) -> sim::Task<void> {
      auto resp = co_await c->rpc_.call(c->self_, c->server_,
                                        net::kPortGluster, std::move(encoded));
      if (!r->done.is_set()) r->result.emplace(std::move(resp));
      r->done.set();
    }(this, req.encode(), race));
    sim::arm_timeout(loop(), std::shared_ptr<sim::Event>(race, &race->done),
                     timeout);
    co_await race->done.wait();
    if (race->result) wire = std::move(*race->result);
  }
  if (!wire) co_return wire.error();
  auto reply = FopReply::decode(*wire);
  if (!reply) co_return reply.error();
  co_return *reply;
}

sim::Task<Expected<FopReply>> ProtocolClient::roundtrip(FopRequest req) {
  ++stats_.fops;
  // Number the mutation ONCE per op: every retry re-sends the same
  // (client_id, op_seq), which is what the brick's dedup window keys on.
  if (mutation_fop(req.type)) {
    req.client_id = self_;
    req.op_seq = ++next_seq_;
  }
  if (params_.op_deadline == 0) {
    co_return co_await attempt(std::move(req), 0);  // seed behaviour
  }

  const SimTime start = loop().now();
  const SimTime deadline = start + params_.op_deadline;
  Expected<FopReply> last = Errc::kTimedOut;
  std::uint32_t attempts = 0;
  for (;;) {
    const SimTime now = loop().now();
    if (now >= deadline) {
      ++stats_.deadline_exhausted;
      break;
    }
    const SimDuration remaining = deadline - now;
    if (down_ && now < next_probe_) {
      // Ejected and no probe due yet: wait (bounded by the budget) instead
      // of hammering a dead brick. Cacheable ops never park here — CMCache
      // consults server_down() and serves brownout hits above us.
      ++stats_.fast_fails;
      co_await loop().sleep(
          std::min<SimDuration>(next_probe_ - now, remaining));
      continue;
    }
    if (attempts > 0) {
      req.retry = 1;
      ++stats_.retries;
      if (req.op_seq > 0) ++stats_.replays;
    }
    SimDuration t = remaining;
    if (params_.attempt_timeout > 0) {
      t = std::min(t, params_.attempt_timeout);
    }
    req.ttl = t;  // the brick sheds us if we pick this up after t
    auto rep = co_await attempt(req, t);
    ++attempts;

    if (rep && rep->errc != Errc::kBusy) {
      mark_alive();
      note_elapsed(start);
      co_return rep;
    }
    Errc e;
    if (rep) {  // decoded kBusy reply: the brick is alive, just shedding
      e = Errc::kBusy;
      ++stats_.sheds_seen;
      mark_alive();
      last = *rep;
    } else {
      e = rep.error();
      switch (e) {
        case Errc::kTimedOut: ++stats_.timeouts; break;
        case Errc::kConnRefused: ++stats_.refusals; break;
        case Errc::kConnReset: ++stats_.resets; break;
        default: ++stats_.torn; break;
      }
      note_failure();
      last = e;
    }
    if (!retryable(e)) break;
    // Capped exponential backoff, never past the deadline: total elapsed
    // stays within op_deadline + one backoff step, the bound the fault
    // matrix asserts.
    const std::uint32_t shift = std::min<std::uint32_t>(attempts - 1, 20);
    const SimDuration backoff = std::min<SimDuration>(
        params_.backoff_base << shift, params_.backoff_cap);
    const SimTime after = loop().now();
    if (after >= deadline) continue;  // loop head records exhaustion
    co_await loop().sleep(std::min<SimDuration>(backoff, deadline - after));
  }
  note_elapsed(start);
  co_return last;
}

sim::Task<Expected<store::Attr>> ProtocolClient::create(
    std::string path, std::uint32_t mode) {
  FopRequest req;
  req.type = FopType::kCreate;
  req.path = path;
  req.mode = mode;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->attr;
}

sim::Task<Expected<store::Attr>> ProtocolClient::open(
    std::string path) {
  FopRequest req;
  req.type = FopType::kOpen;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->attr;
}

sim::Task<Expected<void>> ProtocolClient::close(std::string path) {
  FopRequest req;
  req.type = FopType::kClose;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<store::Attr>> ProtocolClient::stat(
    std::string path) {
  FopRequest req;
  req.type = FopType::kStat;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->attr;
}

sim::Task<Expected<Buffer>> ProtocolClient::read(std::string path,
                                                 std::uint64_t offset,
                                                 std::uint64_t len) {
  FopRequest req;
  req.type = FopType::kRead;
  req.path = path;
  req.offset = offset;
  req.length = len;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return std::move(rep->data);
}

sim::Task<Expected<std::uint64_t>> ProtocolClient::write(
    std::string path, std::uint64_t offset, Buffer data) {
  FopRequest req;
  req.type = FopType::kWrite;
  req.path = path;
  req.offset = offset;
  req.data = std::move(data);
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->count;
}

sim::Task<Expected<void>> ProtocolClient::unlink(std::string path) {
  FopRequest req;
  req.type = FopType::kUnlink;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<void>> ProtocolClient::truncate(std::string path,
                                                   std::uint64_t size) {
  FopRequest req;
  req.type = FopType::kTruncate;
  req.path = path;
  req.offset = size;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<void>> ProtocolClient::fsync(std::string path) {
  FopRequest req;
  req.type = FopType::kFsync;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<void>> ProtocolClient::rename(std::string from,
                                                 std::string to) {
  FopRequest req;
  req.type = FopType::kRename;
  req.path = from;
  req.path2 = to;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

}  // namespace imca::gluster
