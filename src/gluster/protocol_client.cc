#include "gluster/protocol_client.h"

namespace imca::gluster {

sim::Task<Expected<FopReply>> ProtocolClient::roundtrip(FopRequest req) {
  auto wire = co_await rpc_.call(self_, server_, net::kPortGluster,
                                 req.encode());
  if (!wire) co_return wire.error();
  auto reply = FopReply::decode(*wire);
  if (!reply) co_return reply.error();
  co_return *reply;
}

sim::Task<Expected<store::Attr>> ProtocolClient::create(
    const std::string& path, std::uint32_t mode) {
  FopRequest req;
  req.type = FopType::kCreate;
  req.path = path;
  req.mode = mode;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->attr;
}

sim::Task<Expected<store::Attr>> ProtocolClient::open(
    const std::string& path) {
  FopRequest req;
  req.type = FopType::kOpen;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->attr;
}

sim::Task<Expected<void>> ProtocolClient::close(const std::string& path) {
  FopRequest req;
  req.type = FopType::kClose;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<store::Attr>> ProtocolClient::stat(
    const std::string& path) {
  FopRequest req;
  req.type = FopType::kStat;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->attr;
}

sim::Task<Expected<Buffer>> ProtocolClient::read(const std::string& path,
                                                 std::uint64_t offset,
                                                 std::uint64_t len) {
  FopRequest req;
  req.type = FopType::kRead;
  req.path = path;
  req.offset = offset;
  req.length = len;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return std::move(rep->data);
}

sim::Task<Expected<std::uint64_t>> ProtocolClient::write(
    const std::string& path, std::uint64_t offset, Buffer data) {
  FopRequest req;
  req.type = FopType::kWrite;
  req.path = path;
  req.offset = offset;
  req.data = std::move(data);
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  if (!ok(rep->errc)) co_return rep->errc;
  co_return rep->count;
}

sim::Task<Expected<void>> ProtocolClient::unlink(const std::string& path) {
  FopRequest req;
  req.type = FopType::kUnlink;
  req.path = path;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<void>> ProtocolClient::truncate(const std::string& path,
                                                   std::uint64_t size) {
  FopRequest req;
  req.type = FopType::kTruncate;
  req.path = path;
  req.offset = size;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

sim::Task<Expected<void>> ProtocolClient::rename(const std::string& from,
                                                 const std::string& to) {
  FopRequest req;
  req.type = FopType::kRename;
  req.path = from;
  req.path2 = to;
  auto rep = co_await roundtrip(std::move(req));
  if (!rep) co_return rep.error();
  co_return rep->errc == Errc::kOk ? Expected<void>{} : rep->errc;
}

}  // namespace imca::gluster
