// storage/posix: the terminal server translator that talks to the local
// file system.
//
// Real bytes go to the shared ObjectStore; time goes to the node's CPU
// (VFS/syscall path) and to the BlockDevice (page cache + RAID array). The
// cost constants model a 2008 Linux server: a syscall plus dentry/inode work
// per op, a memcpy rate for data movement, and media time only on page-cache
// misses.
#pragma once

#include <cstdint>

#include "gluster/xlator.h"
#include "net/node.h"
#include "store/block_device.h"
#include "store/object_store.h"

namespace imca::gluster {

struct PosixParams {
  SimDuration meta_op_cpu = 120 * kMicro;  // create/stat/unlink dentry+inode
  SimDuration data_op_cpu = 6 * kMicro;   // read/write fixed path cost
  std::uint64_t copy_bps = 2 * kGiB;      // user<->page-cache memcpy rate
};

class PosixXlator final : public Xlator {
 public:
  PosixXlator(sim::EventLoop& loop, net::Node& node, store::ObjectStore& os,
              store::BlockDevice& dev, PosixParams params = {})
      : loop_(loop), node_(node), os_(os), dev_(dev), params_(params) {}

  sim::Task<Expected<store::Attr>> create(std::string path,
                                          std::uint32_t mode) override;
  sim::Task<Expected<store::Attr>> open(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override;
  sim::Task<Expected<void>> fsync(std::string path) override;

  std::string_view name() const override { return "posix"; }

 private:
  sim::EventLoop& loop_;
  net::Node& node_;
  store::ObjectStore& os_;
  store::BlockDevice& dev_;
  PosixParams params_;
};

}  // namespace imca::gluster
