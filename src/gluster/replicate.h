// cluster/replicate: AFR-style synchronous replication across K bricks.
//
// GlusterFS's AFR (automatic file replication) translator writes every
// mutation to all children and requires a quorum of acknowledgements before
// reporting success; a per-path changelog records which children are behind
// so reads avoid them and self-heal can copy a rejoining brick back to
// byte-equality. This translator renders the same contract on the simulated
// stack (DESIGN.md §5i):
//
//   * Mutations fan out to all K children in parallel and commit iff at
//     least `quorum` children acknowledge AND at least one of them held a
//     fresh (up-to-date) copy before the op. A committed mutation bumps the
//     path's write epoch; children that acked from a fresh copy are fresh at
//     the new epoch, everyone else is marked dirty.
//   * Reads and stats are served by one fresh child — the path's affinity
//     child (hash(path) % K) when it is fresh and reachable, otherwise the
//     next fresh child in index order (counted as a read-child switch). A
//     dirty child NEVER serves reads: that is the safety half of self-heal.
//   * Self-heal copies a dirty child's paths back from a fresh sibling
//     (full-file: stat+read source, create/truncate/write target — or
//     unlink, if the fresh side deleted the file) and only then clears the
//     dirty mark. Heals run inline on open() and in the background when a
//     fop notices a child's ProtocolClient transitioned down -> up.
//   * Mutations and heals on the same path serialize on a per-path mutex:
//     without it a slow heal could overwrite a newer client write on the
//     target child (and republish stale bytes through the brick's SMCache).
//
// Every container that influences op order is an ordered std::map/std::set:
// the fault matrices diff the timer-wheel run against --legacy-queue byte
// for byte, and unordered iteration would break that determinism contract.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "gluster/protocol_client.h"
#include "gluster/xlator.h"
#include "sim/sync.h"

namespace imca::gluster {

struct ReplicateParams {
  // Acks required to commit a mutation. 0 = majority (K/2 + 1).
  std::size_t quorum = 0;
};

struct ReplicateStats {
  std::uint64_t mutations = 0;
  std::uint64_t quorum_short_writes = 0;  // mutations that failed quorum
  std::uint64_t partial_acks = 0;   // committed with >= 1 child missing
  std::uint64_t reads = 0;
  std::uint64_t read_child_switches = 0;  // path served by a new child
  std::uint64_t reads_degraded = 0; // no fresh child was reachable; the op
                                    // rode the probe machinery of a down one
  std::uint64_t heals_scheduled = 0;  // background heal workers spawned
  std::uint64_t heals_completed = 0;  // (child, path) pairs made byte-equal
  std::uint64_t heal_bytes_copied = 0;
};

struct HealReport {
  std::uint64_t healed = 0;     // (child, path) pairs brought fresh
  std::uint64_t remaining = 0;  // still dirty (no reachable fresh source)
};

class ReplicateXlator final : public Xlator, public ServerHealth {
 public:
  // Takes ownership of one protocol/client per replica. All children hold
  // the same namespace; `loop` drives the parallel fan-out and heal workers.
  ReplicateXlator(sim::EventLoop& loop,
                  std::vector<std::unique_ptr<ProtocolClient>> replicas,
                  ReplicateParams params = {});
  ~ReplicateXlator() override;

  sim::Task<Expected<store::Attr>> create(std::string path,
                                          std::uint32_t mode) override;
  sim::Task<Expected<store::Attr>> open(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(std::string path, std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from, std::string to) override;
  // Durability barrier: fanned out to every reachable child, succeeds on a
  // quorum of acks. Changes no replica state, so no epoch bump / dirty marks.
  sim::Task<Expected<void>> fsync(std::string path) override;

  std::string_view name() const override { return "replicate"; }

  // --- ServerHealth: down only while EVERY child is unreachable (the
  // brownout-safety contract — see the definition for the argument) ---
  bool server_down() const override;
  SimTime server_down_since() const override;

  std::size_t replica_count() const noexcept { return replicas_.size(); }
  std::size_t quorum() const noexcept { return quorum_; }
  ProtocolClient& replica(std::size_t i) { return *replicas_.at(i); }

  // True when child `i` holds the latest committed state of `path`.
  bool fresh(std::size_t i, const std::string& path) const {
    return dirty_.at(i).count(path) == 0;
  }
  std::size_t dirty_paths(std::size_t i) const { return dirty_.at(i).size(); }

  // Verification backdoors: hit one replica directly, bypassing read-child
  // selection. The fault matrices use these to prove a healed brick is
  // byte-identical to its siblings.
  sim::Task<Expected<Buffer>> read_from(std::size_t i, std::string path,
                                        std::uint64_t offset,
                                        std::uint64_t len);
  sim::Task<Expected<store::Attr>> stat_from(std::size_t i, std::string path);

  // Heal every dirty (child, path) pair that has a reachable fresh source,
  // repeating until no further progress is possible.
  sim::Task<HealReport> heal_all();

  const ReplicateStats& stats() const noexcept { return stats_; }

 private:
  // Outcome of one quorum round over the per-child results of a mutation.
  struct Quorum {
    bool committed = false;
    std::size_t winner = 0;  // first child that acked from a fresh copy
    Errc err = Errc::kTimedOut;  // representative error when not committed
  };

  static bool retryable(Errc e) noexcept {
    return e == Errc::kTimedOut || e == Errc::kConnRefused ||
           e == Errc::kConnReset || e == Errc::kBusy || e == Errc::kProto;
  }

  std::uint64_t epoch_of(const std::string& path) const {
    auto it = epochs_.find(path);
    return it == epochs_.end() ? 0 : it->second;
  }
  void mark_dirty(std::size_t i, const std::string& path) {
    dirty_[i].insert(path);
  }
  // Apply the quorum rule to per-child errors for a mutation over `paths`
  // (one path, or two for rename). Bumps epochs / dirty sets on commit.
  Quorum commit(const std::vector<std::string>& paths,
                const std::vector<Errc>& child_err);
  // Read-child selection (see header comment). Counts switches/degrades.
  std::size_t pick_read_child(const std::string& path);
  void note_read_child(const std::string& path, std::size_t child);
  // Spawn background heal workers for children that just came back up.
  void poll_rejoins();
  void spawn_heal(std::size_t child);
  static sim::Task<void> heal_worker(ReplicateXlator* self,
                                     std::weak_ptr<const bool> alive,
                                     std::size_t child);
  // Copy `path` on `child` back to byte-equality with a fresh sibling.
  // True iff the dirty mark was cleared (false: no source, raced a write).
  sim::Task<bool> heal_path(std::size_t child, std::string path);
  sim::Task<bool> heal_path_locked(std::size_t child, std::string path);
  sim::SimMutex& path_lock(const std::string& path);
  // GC bookkeeping for paths that are gone everywhere.
  void maybe_forget(const std::string& path);

  sim::EventLoop& loop_;
  std::vector<std::unique_ptr<ProtocolClient>> replicas_;
  ReplicateParams params_;
  std::size_t quorum_ = 0;
  // path -> committed write epoch (monotone; heal uses it to detect races).
  std::map<std::string, std::uint64_t> epochs_;
  // Per child: paths whose latest committed mutation it missed.
  std::vector<std::set<std::string>> dirty_;
  // Per child: last observed ProtocolClient health, for rejoin edges.
  std::vector<bool> was_down_;
  std::vector<bool> healing_;  // a heal worker is active for this child
  std::map<std::string, std::size_t> last_read_child_;
  std::map<std::string, std::unique_ptr<sim::SimMutex>> path_locks_;
  // Background heal workers outlive fops; they bail out through this token
  // if the xlator is torn down first (same idiom as write-behind).
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  ReplicateStats stats_;
};

}  // namespace imca::gluster
