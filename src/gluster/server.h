// The GlusterFS brick process: protocol/server dispatch on top of a
// translator stack ending in storage/posix.
//
// Default stack (bottom to top):   posix -> io-threads -> [wb] -> [pushed]
// The paper's SMCache is pushed on top, where it sees client fops on entry
// and their results on return — its "hooks in the callback handler".
//
// Each incoming request charges the brick's CPU a userspace-daemon dispatch
// cost (GlusterFS runs in userspace; this is the overhead RDMA cannot
// remove, paper §3 "Server load problems").
//
// Failure model (DESIGN.md §5f): the brick can crash and restart on the
// simulated clock. A crash drops everything volatile — the page cache and
// any write-behind buffer — while the ObjectStore (the disk) survives, as
// does the replay window (modelled as journalled with the data it
// describes). In-flight fops have their replies replaced with kConnReset:
// the work may or may not have reached disk, and the client cannot tell —
// which is exactly why mutations carry (client_id, op_seq) and the brick
// answers replayed ones from the window instead of re-applying them.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "gluster/io_threads.h"
#include "gluster/posix.h"
#include "gluster/protocol.h"
#include "gluster/write_behind.h"
#include "gluster/xlator.h"
#include "net/rpc.h"
#include "sim/sync.h"
#include "store/block_device.h"
#include "store/object_store.h"

namespace imca::gluster {

struct GlusterServerParams {
  SimDuration fop_dispatch_cpu = 110 * kMicro; // userspace daemon per fop
  std::size_t io_threads = 16;
  std::size_t raid_members = 8;                // the paper's 8-disk array
  store::DiskParams disk = {};
  std::uint64_t page_cache_bytes = 6 * kGiB;   // of the server's 8 GB
  PosixParams posix = {};
  // --- admission control (0 = unbounded, the seed behaviour) ---
  // Fops allowed inside dispatch at once; beyond this the brick sheds kBusy.
  std::size_t admission_limit = 0;
  // Queue bound in front of the io-threads pool (see IoThreadsXlator).
  std::size_t io_queue_limit = 0;
  // Drop requests whose client deadline budget (FopRequest::ttl) already
  // expired while they queued — the client has given up; doing the work
  // anyway only steals time from requests that can still meet theirs.
  bool shed_expired = true;
  // --- server-side write-behind (off in the seed stack) ---
  bool write_behind = false;
  WriteBehindParams wb = {};
};

struct GlusterServerStats {
  std::uint64_t fops = 0;
  std::uint64_t sheds_admission = 0;  // kBusy: dispatch concurrency bound
  std::uint64_t sheds_expired = 0;    // kBusy: client deadline already blown
  std::uint64_t sheds_io = 0;         // kBusy: io-threads queue bound
  std::uint64_t replays_seen = 0;     // requests arriving with retry != 0
  std::uint64_t replays_deduped = 0;  // answered from the replay window
  std::uint64_t replays_parked = 0;   // replays that overtook their original
                                      // and waited for it to finish
  std::uint64_t duplicate_applies = 0;  // invariant counter: must stay 0
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t wb_dropped_bytes = 0;   // acked-but-volatile bytes lost
  std::uint64_t replies_lost_in_crash = 0;  // fops in flight at crash time
};

class GlusterServer {
 public:
  GlusterServer(net::RpcSystem& rpc, net::NodeId node,
                GlusterServerParams params = {});

  GlusterServer(const GlusterServer&) = delete;
  GlusterServer& operator=(const GlusterServer&) = delete;

  // Insert a translator above the current stack top (below dispatch).
  // Must be called before start().
  void push_translator(std::unique_ptr<Xlator> xlator);

  // Register the brick on the fabric (port 24007).
  void start();
  void stop();

  // Kill the brick process now: stop listening, drop the page cache and any
  // write-behind buffer, and invalidate in-flight replies (they become
  // kConnReset — the connection died with the process). The ObjectStore and
  // the replay window survive: they are the disk.
  void crash();
  // Bring the brick back up. Storage state is whatever survived the crash.
  void restart();
  // Crash at `at`; restart at `restart_at` if given. One brick can take
  // several scheduled crashes.
  void schedule_crash(SimTime at,
                      std::optional<SimTime> restart_at = std::nullopt);

  net::NodeId node() const noexcept { return node_; }
  bool up() const noexcept { return up_; }
  store::ObjectStore& object_store() noexcept { return os_; }
  store::BlockDevice& device() noexcept { return dev_; }
  // Stack top — tests drive fops through it directly.
  Xlator& top() noexcept { return *stack_.back(); }
  // Null unless params.write_behind.
  WriteBehindXlator* write_behind() noexcept { return wb_; }

  std::uint64_t fops_served() const noexcept { return stats_.fops; }
  GlusterServerStats stats() const {
    GlusterServerStats s = stats_;
    s.sheds_io = io_->sheds();
    return s;
  }

 private:
  // Last `kReplayWindow` mutation replies per client, keyed by op_seq. The
  // window is journalled with the data (ObjectStore lifetime), so a replay
  // after a crash still finds the recorded reply. 64 is far deeper than any
  // client's in-flight mutation count (one, in this codebase).
  static constexpr std::size_t kReplayWindow = 64;
  struct ReplaySlot {
    std::uint64_t seq = 0;
    FopReply reply;
  };
  struct ClientWindow {
    std::deque<ReplaySlot> slots;  // ascending insertion order
  };

  sim::Task<ByteBuf> handle(ByteBuf request, net::NodeId from);
  sim::Task<FopReply> process(FopRequest req, SimTime arrival);
  sim::Task<FopReply> dispatch(FopRequest req);
  const FopReply* window_lookup(std::uint64_t client_id,
                                std::uint64_t seq) const;
  void window_record(std::uint64_t client_id, std::uint64_t seq,
                     const FopReply& reply);

  net::RpcSystem& rpc_;
  net::NodeId node_;
  GlusterServerParams params_;
  store::ObjectStore os_;
  store::BlockDevice dev_;
  std::vector<std::unique_ptr<Xlator>> stack_;  // [0]=posix .. back()=top
  IoThreadsXlator* io_ = nullptr;
  WriteBehindXlator* wb_ = nullptr;
  std::map<std::uint64_t, ClientWindow> windows_;
  // Mutations currently inside dispatch, keyed (client_id, op_seq). A
  // replay that overtakes its original (client attempt timeout < server
  // work) parks on the event instead of re-applying.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::shared_ptr<sim::Event>>
      inflight_mutations_;
  GlusterServerStats stats_;
  std::uint64_t boot_epoch_ = 0;
  std::size_t inflight_ = 0;
  bool started_ = false;
  bool up_ = false;
};

}  // namespace imca::gluster
