// The GlusterFS brick process: protocol/server dispatch on top of a
// translator stack ending in storage/posix.
//
// Default stack (bottom to top):   posix -> io-threads -> [pushed xlators]
// The paper's SMCache is pushed on top, where it sees client fops on entry
// and their results on return — its "hooks in the callback handler".
//
// Each incoming request charges the brick's CPU a userspace-daemon dispatch
// cost (GlusterFS runs in userspace; this is the overhead RDMA cannot
// remove, paper §3 "Server load problems").
#pragma once

#include <memory>
#include <vector>

#include "gluster/io_threads.h"
#include "gluster/posix.h"
#include "gluster/protocol.h"
#include "gluster/xlator.h"
#include "net/rpc.h"
#include "store/block_device.h"
#include "store/object_store.h"

namespace imca::gluster {

struct GlusterServerParams {
  SimDuration fop_dispatch_cpu = 110 * kMicro; // userspace daemon per fop
  std::size_t io_threads = 16;
  std::size_t raid_members = 8;                // the paper's 8-disk array
  store::DiskParams disk = {};
  std::uint64_t page_cache_bytes = 6 * kGiB;   // of the server's 8 GB
  PosixParams posix = {};
};

class GlusterServer {
 public:
  GlusterServer(net::RpcSystem& rpc, net::NodeId node,
                GlusterServerParams params = {});

  GlusterServer(const GlusterServer&) = delete;
  GlusterServer& operator=(const GlusterServer&) = delete;

  // Insert a translator above the current stack top (below dispatch).
  // Must be called before start().
  void push_translator(std::unique_ptr<Xlator> xlator);

  // Register the brick on the fabric (port 24007).
  void start();
  void stop();

  net::NodeId node() const noexcept { return node_; }
  store::ObjectStore& object_store() noexcept { return os_; }
  store::BlockDevice& device() noexcept { return dev_; }
  // Stack top — tests drive fops through it directly.
  Xlator& top() noexcept { return *stack_.back(); }

  std::uint64_t fops_served() const noexcept { return fops_; }

 private:
  sim::Task<ByteBuf> handle(ByteBuf request, net::NodeId from);
  sim::Task<FopReply> dispatch(FopRequest req);

  net::RpcSystem& rpc_;
  net::NodeId node_;
  GlusterServerParams params_;
  store::ObjectStore os_;
  store::BlockDevice dev_;
  std::vector<std::unique_ptr<Xlator>> stack_;  // [0]=posix .. back()=top
  std::uint64_t fops_ = 0;
  bool started_ = false;
};

}  // namespace imca::gluster
