#include "gluster/posix.h"

namespace imca::gluster {

sim::Task<Expected<store::Attr>> PosixXlator::create(std::string path,
                                                     std::uint32_t mode) {
  co_await node_.cpu().use(params_.meta_op_cpu);
  auto attr = os_.create(path, loop_.now(), mode);
  if (!attr) co_return attr.error();
  // The new inode lands in the buffer cache; the media write is deferred.
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<store::Attr>> PosixXlator::open(std::string path) {
  co_await node_.cpu().use(params_.meta_op_cpu);
  auto attr = os_.stat(path);
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<void>> PosixXlator::close(std::string) {
  co_await node_.cpu().use(params_.meta_op_cpu / 2);
  co_return Expected<void>{};
}

sim::Task<Expected<store::Attr>> PosixXlator::stat(std::string path) {
  co_await node_.cpu().use(params_.meta_op_cpu);
  auto attr = os_.stat(path);
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return *attr;
}

sim::Task<Expected<Buffer>> PosixXlator::read(std::string path,
                                              std::uint64_t offset,
                                              std::uint64_t len) {
  auto attr = os_.stat(path);
  if (!attr) co_return attr.error();
  co_await node_.cpu().use(params_.data_op_cpu +
                           transfer_time(len, params_.copy_bps));
  co_await dev_.read(attr->inode, offset, len);
  auto data = os_.read(path, offset, len);
  if (!data) co_return data.error();
  co_return std::move(*data);
}

sim::Task<Expected<std::uint64_t>> PosixXlator::write(
    std::string path, std::uint64_t offset, Buffer data) {
  auto attr = os_.stat(path);
  if (!attr) co_return attr.error();
  co_await node_.cpu().use(params_.data_op_cpu +
                           transfer_time(data.size(), params_.copy_bps));
  auto size = os_.write(path, offset, data, loop_.now());
  if (!size) co_return size.error();
  co_await dev_.write(attr->inode, offset, data.size());
  co_return data.size();
}

sim::Task<Expected<void>> PosixXlator::unlink(std::string path) {
  co_await node_.cpu().use(params_.meta_op_cpu);
  auto attr = os_.stat(path);
  if (!attr) co_return attr.error();
  auto r = os_.unlink(path);
  if (!r) co_return r;
  dev_.invalidate(attr->inode);
  co_await dev_.meta(attr->inode);
  co_return Expected<void>{};
}

sim::Task<Expected<void>> PosixXlator::truncate(std::string path,
                                                std::uint64_t size) {
  co_await node_.cpu().use(params_.meta_op_cpu);
  auto attr = os_.stat(path);
  auto r = os_.truncate(path, size, loop_.now());
  if (r && attr) {
    // Pages past the new EOF are gone from the buffer cache too.
    if (size < attr->size) dev_.invalidate(attr->inode);
    co_await dev_.meta(attr->inode);
  }
  co_return r;
}

sim::Task<Expected<void>> PosixXlator::fsync(std::string path) {
  // The ObjectStore is already the durable ground truth (posix writes are
  // synchronous in this model); fsync costs a syscall plus a barrier pass
  // over the inode's dirty pages.
  co_await node_.cpu().use(params_.meta_op_cpu / 2);
  auto attr = os_.stat(path);
  if (!attr) co_return attr.error();
  co_await dev_.meta(attr->inode);
  co_return Expected<void>{};
}

sim::Task<Expected<void>> PosixXlator::rename(std::string from,
                                              std::string to) {
  co_await node_.cpu().use(params_.meta_op_cpu);
  auto attr = os_.stat(from);
  auto r = os_.rename(from, to, loop_.now());
  if (r && attr) co_await dev_.meta(attr->inode);  // dirent updates
  co_return r;
}

}  // namespace imca::gluster
