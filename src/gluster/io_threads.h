// performance/io-threads: bounds the number of fops concurrently inside the
// storage stack, like GlusterFS's io-threads translator (a pool of worker
// threads in the original; a counting semaphore on the simulated clock
// here). With many clients this is the server-side queue the paper's
// asynchronous request model drains.
#pragma once

#include "gluster/xlator.h"
#include "sim/sync.h"

namespace imca::gluster {

class IoThreadsXlator final : public Xlator {
 public:
  IoThreadsXlator(sim::EventLoop& loop, std::size_t threads = 16)
      : sem_(loop, threads) {}

  sim::Task<Expected<store::Attr>> create(const std::string& path,
                                          std::uint32_t mode) override {
    co_await sem_.acquire();
    auto r = co_await child_->create(path, mode);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<store::Attr>> open(const std::string& path) override {
    co_await sem_.acquire();
    auto r = co_await child_->open(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> close(const std::string& path) override {
    co_await sem_.acquire();
    auto r = co_await child_->close(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<store::Attr>> stat(const std::string& path) override {
    co_await sem_.acquire();
    auto r = co_await child_->stat(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<Buffer>> read(const std::string& path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override {
    co_await sem_.acquire();
    auto r = co_await child_->read(path, offset, len);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<std::uint64_t>> write(const std::string& path,
                                           std::uint64_t offset,
                                           Buffer data) override {
    co_await sem_.acquire();
    auto r = co_await child_->write(path, offset, std::move(data));
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> unlink(const std::string& path) override {
    co_await sem_.acquire();
    auto r = co_await child_->unlink(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> truncate(const std::string& path,
                                     std::uint64_t size) override {
    co_await sem_.acquire();
    auto r = co_await child_->truncate(path, size);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> rename(const std::string& from,
                                   const std::string& to) override {
    co_await sem_.acquire();
    auto r = co_await child_->rename(from, to);
    sem_.release();
    co_return r;
  }

  std::string_view name() const override { return "io-threads"; }

 private:
  sim::Semaphore sem_;
};

}  // namespace imca::gluster
