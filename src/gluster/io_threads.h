// performance/io-threads: bounds the number of fops concurrently inside the
// storage stack, like GlusterFS's io-threads translator (a pool of worker
// threads in the original; a counting semaphore on the simulated clock
// here). With many clients this is the server-side queue the paper's
// asynchronous request model drains.
//
// The queue in front of the pool is bounded (DESIGN.md §5f): with
// `queue_limit` set, an op arriving while every thread is busy and the
// queue is full is shed with kBusy (EAGAIN) instead of parking without
// limit — backpressure the client retry machinery absorbs, rather than a
// latency cliff nobody can see.
#pragma once

#include "gluster/xlator.h"
#include "sim/sync.h"

namespace imca::gluster {

class IoThreadsXlator final : public Xlator {
  // Semaphore acquire that keeps the parked-op count honest, so shed() has
  // a real queue depth to bound and peak_queue() is observable in tests.
  struct EnterAwaiter {
    IoThreadsXlator& x;
    decltype(std::declval<sim::Semaphore&>().acquire()) inner;
    bool parked = false;
    explicit EnterAwaiter(IoThreadsXlator& xx) noexcept
        : x(xx), inner(xx.sem_.acquire()) {}
    bool await_ready() {
      if (inner.await_ready()) return true;
      parked = true;
      ++x.queued_;
      if (x.queued_ > x.peak_queue_) x.peak_queue_ = x.queued_;
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    void await_resume() noexcept {
      if (parked) --x.queued_;
    }
  };

 public:
  IoThreadsXlator(sim::EventLoop& loop, std::size_t threads = 16,
                  std::size_t queue_limit = 0)
      : sem_(loop, threads), queue_limit_(queue_limit) {}

  sim::Task<Expected<store::Attr>> create(std::string path,
                                          std::uint32_t mode) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->create(path, mode);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<store::Attr>> open(std::string path) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->open(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> close(std::string path) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->close(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<store::Attr>> stat(std::string path) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->stat(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->read(path, offset, len);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->write(path, offset, std::move(data));
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> unlink(std::string path) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->unlink(path);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->truncate(path, size);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->rename(from, to);
    sem_.release();
    co_return r;
  }
  sim::Task<Expected<void>> fsync(std::string path) override {
    if (shed()) co_return Errc::kBusy;
    co_await enter();
    auto r = co_await child_->fsync(path);
    sem_.release();
    co_return r;
  }

  std::string_view name() const override { return "io-threads"; }

  std::uint64_t sheds() const noexcept { return sheds_; }
  std::uint64_t peak_queue() const noexcept { return peak_queue_; }
  std::size_t queued() const noexcept { return queued_; }

 private:
  // Admission check: with a bounded queue, a fop that would park behind
  // queue_limit_ already-parked fops is refused up front.
  bool shed() noexcept {
    if (queue_limit_ > 0 && sem_.available() == 0 && queued_ >= queue_limit_) {
      ++sheds_;
      return true;
    }
    return false;
  }

  EnterAwaiter enter() noexcept { return EnterAwaiter{*this}; }

  sim::Semaphore sem_;
  std::size_t queue_limit_;
  std::size_t queued_ = 0;
  std::uint64_t peak_queue_ = 0;
  std::uint64_t sheds_ = 0;
};

}  // namespace imca::gluster
