#include "gluster/xlator.h"

#include <cassert>

namespace imca::gluster {

// Default behaviour: wind straight to the child. A terminal translator
// (posix, protocol/client) must override every fop; hitting these asserts
// means the stack was mis-assembled.

sim::Task<Expected<store::Attr>> Xlator::create(std::string path,
                                                std::uint32_t mode) {
  assert(child_ != nullptr);
  co_return co_await child_->create(path, mode);
}

sim::Task<Expected<store::Attr>> Xlator::open(std::string path) {
  assert(child_ != nullptr);
  co_return co_await child_->open(path);
}

sim::Task<Expected<void>> Xlator::close(std::string path) {
  assert(child_ != nullptr);
  co_return co_await child_->close(path);
}

sim::Task<Expected<store::Attr>> Xlator::stat(std::string path) {
  assert(child_ != nullptr);
  co_return co_await child_->stat(path);
}

sim::Task<Expected<Buffer>> Xlator::read(std::string path,
                                         std::uint64_t offset,
                                         std::uint64_t len) {
  assert(child_ != nullptr);
  co_return co_await child_->read(path, offset, len);
}

sim::Task<Expected<std::uint64_t>> Xlator::write(std::string path,
                                                 std::uint64_t offset,
                                                 Buffer data) {
  assert(child_ != nullptr);
  co_return co_await child_->write(path, offset, std::move(data));
}

sim::Task<Expected<void>> Xlator::unlink(std::string path) {
  assert(child_ != nullptr);
  co_return co_await child_->unlink(path);
}

sim::Task<Expected<void>> Xlator::fsync(std::string path) {
  assert(child_ != nullptr);
  co_return co_await child_->fsync(path);
}

sim::Task<Expected<void>> Xlator::truncate(std::string path,
                                           std::uint64_t size) {
  assert(child_ != nullptr);
  co_return co_await child_->truncate(path, size);
}

sim::Task<Expected<void>> Xlator::rename(std::string from,
                                         std::string to) {
  assert(child_ != nullptr);
  co_return co_await child_->rename(from, to);
}

}  // namespace imca::gluster
