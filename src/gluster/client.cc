#include "gluster/client.h"

#include <cassert>

namespace imca::gluster {

GlusterClient::GlusterClient(net::RpcSystem& rpc, net::NodeId self,
                             net::NodeId server, GlusterClientParams params)
    : rpc_(rpc), self_(self), params_(params) {
  stack_.push_back(
      std::make_unique<ProtocolClient>(rpc, self, server, params_.protocol));
}

void GlusterClient::push_translator(std::unique_ptr<Xlator> xlator) {
  xlator->set_child(stack_.back().get());
  stack_.push_back(std::move(xlator));
}

sim::Task<void> GlusterClient::fuse_charge() {
  co_await rpc_.fabric().node(self_).cpu().use(2 * params_.fuse_crossing);
}

Expected<std::string> GlusterClient::path_of(fsapi::OpenFile file) const {
  auto it = fd_table_.find(file.fd);
  if (it == fd_table_.end()) return Errc::kBadF;
  return it->second;
}

sim::Task<Expected<fsapi::OpenFile>> GlusterClient::create(std::string path) {
  co_await fuse_charge();
  auto attr = co_await top().create(path, 0644);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<fsapi::OpenFile>> GlusterClient::open(std::string path) {
  co_await fuse_charge();
  auto attr = co_await top().open(path);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<void>> GlusterClient::close(fsapi::OpenFile file) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  fd_table_.erase(file.fd);
  co_return co_await top().close(*path);
}

sim::Task<Expected<store::Attr>> GlusterClient::stat(std::string path) {
  co_await fuse_charge();
  co_return co_await top().stat(path);
}

sim::Task<Expected<Buffer>> GlusterClient::read(fsapi::OpenFile file,
                                                std::uint64_t offset,
                                                std::uint64_t len) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  co_return co_await top().read(*path, offset, len);
}

sim::Task<Expected<std::uint64_t>> GlusterClient::write(fsapi::OpenFile file,
                                                        std::uint64_t offset,
                                                        Buffer data) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  co_return co_await top().write(*path, offset, std::move(data));
}

sim::Task<Expected<void>> GlusterClient::unlink(std::string path) {
  co_await fuse_charge();
  co_return co_await top().unlink(path);
}

sim::Task<Expected<void>> GlusterClient::truncate(std::string path,
                                                  std::uint64_t size) {
  co_await fuse_charge();
  co_return co_await top().truncate(path, size);
}

sim::Task<Expected<void>> GlusterClient::rename(std::string from,
                                                std::string to) {
  co_await fuse_charge();
  auto r = co_await top().rename(from, to);
  if (r) {
    // Open handles follow the file: remap their paths.
    for (auto& [fd, p] : fd_table_) {
      if (p == from) p = to;
    }
  }
  co_return r;
}

}  // namespace imca::gluster
