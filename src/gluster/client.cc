#include "gluster/client.h"

#include <algorithm>
#include <cassert>

namespace imca::gluster {

GlusterClient::GlusterClient(net::RpcSystem& rpc, net::NodeId self,
                             net::NodeId server, GlusterClientParams params)
    : rpc_(rpc), self_(self), params_(params) {
  auto pc =
      std::make_unique<ProtocolClient>(rpc, self, server, params_.protocol);
  pcs_.push_back(pc.get());
  health_ = pc.get();
  stack_.push_back(std::move(pc));
}

GlusterClient::GlusterClient(net::RpcSystem& rpc, net::NodeId self,
                             const GlusterTopology& topology,
                             GlusterClientParams params)
    : rpc_(rpc), self_(self), params_(params) {
  const std::size_t k = topology.replicas == 0 ? 1 : topology.replicas;
  assert(!topology.bricks.empty() && topology.bricks.size() % k == 0);
  const std::size_t n_groups = topology.bricks.size() / k;

  // One subvolume per group: a ReplicateXlator over K protocol/clients, or
  // the bare protocol/client when K == 1.
  std::vector<std::unique_ptr<Xlator>> subvols;
  for (std::size_t g = 0; g < n_groups; ++g) {
    std::vector<std::unique_ptr<ProtocolClient>> conns;
    for (std::size_t r = 0; r < k; ++r) {
      conns.push_back(std::make_unique<ProtocolClient>(
          rpc, self, topology.bricks[g * k + r], params_.protocol));
      pcs_.push_back(conns.back().get());
    }
    if (k == 1) {
      subvols.push_back(std::move(conns.front()));
    } else {
      auto rep = std::make_unique<ReplicateXlator>(
          rpc.fabric().loop(), std::move(conns), params_.replicate);
      groups_.push_back(rep.get());
      subvols.push_back(std::move(rep));
    }
  }

  if (n_groups == 1) {
    health_ = k == 1 ? static_cast<ServerHealth*>(pcs_.front())
                     : static_cast<ServerHealth*>(groups_.front());
    stack_.push_back(std::move(subvols.front()));
  } else {
    auto dht = std::make_unique<DistributeXlator>(std::move(subvols),
                                                  params_.distribute);
    dht_ = dht.get();
    health_ = dht.get();
    stack_.push_back(std::move(dht));
  }
}

ProtocolClientStats GlusterClient::protocol_totals() const {
  ProtocolClientStats total;
  for (const ProtocolClient* pc : pcs_) {
    const auto& s = pc->stats();
    total.fops += s.fops;
    total.retries += s.retries;
    total.replays += s.replays;
    total.timeouts += s.timeouts;
    total.refusals += s.refusals;
    total.resets += s.resets;
    total.torn += s.torn;
    total.sheds_seen += s.sheds_seen;
    total.deadline_exhausted += s.deadline_exhausted;
    total.fast_fails += s.fast_fails;
    total.ejections += s.ejections;
    total.rejoins += s.rejoins;
    total.max_op_elapsed = std::max(total.max_op_elapsed, s.max_op_elapsed);
  }
  return total;
}

sim::Task<HealReport> GlusterClient::heal_all() {
  HealReport total;
  for (ReplicateXlator* g : groups_) {
    const HealReport r = co_await g->heal_all();
    total.healed += r.healed;
    total.remaining += r.remaining;
  }
  co_return total;
}

void GlusterClient::push_translator(std::unique_ptr<Xlator> xlator) {
  xlator->set_child(stack_.back().get());
  stack_.push_back(std::move(xlator));
}

sim::Task<void> GlusterClient::fuse_charge() {
  co_await rpc_.fabric().node(self_).cpu().use(2 * params_.fuse_crossing);
}

Expected<std::string> GlusterClient::path_of(fsapi::OpenFile file) const {
  auto it = fd_table_.find(file.fd);
  if (it == fd_table_.end()) return Errc::kBadF;
  return it->second;
}

sim::Task<Expected<fsapi::OpenFile>> GlusterClient::create(std::string path) {
  co_await fuse_charge();
  auto attr = co_await top().create(path, 0644);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<fsapi::OpenFile>> GlusterClient::open(std::string path) {
  co_await fuse_charge();
  auto attr = co_await top().open(path);
  if (!attr) co_return attr.error();
  const std::uint64_t fd = next_fd_++;
  fd_table_.emplace(fd, std::move(path));
  co_return fsapi::OpenFile{fd};
}

sim::Task<Expected<void>> GlusterClient::close(fsapi::OpenFile file) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  fd_table_.erase(file.fd);
  co_return co_await top().close(*path);
}

sim::Task<Expected<void>> GlusterClient::fsync(fsapi::OpenFile file) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  co_return co_await top().fsync(*path);
}

sim::Task<Expected<store::Attr>> GlusterClient::stat(std::string path) {
  co_await fuse_charge();
  co_return co_await top().stat(path);
}

sim::Task<Expected<Buffer>> GlusterClient::read(fsapi::OpenFile file,
                                                std::uint64_t offset,
                                                std::uint64_t len) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  co_return co_await top().read(*path, offset, len);
}

sim::Task<Expected<std::uint64_t>> GlusterClient::write(fsapi::OpenFile file,
                                                        std::uint64_t offset,
                                                        Buffer data) {
  auto path = path_of(file);
  if (!path) co_return path.error();
  co_await fuse_charge();
  co_return co_await top().write(*path, offset, std::move(data));
}

sim::Task<Expected<void>> GlusterClient::unlink(std::string path) {
  co_await fuse_charge();
  co_return co_await top().unlink(path);
}

sim::Task<Expected<void>> GlusterClient::truncate(std::string path,
                                                  std::uint64_t size) {
  co_await fuse_charge();
  co_return co_await top().truncate(path, size);
}

sim::Task<Expected<void>> GlusterClient::rename(std::string from,
                                                std::string to) {
  co_await fuse_charge();
  auto r = co_await top().rename(from, to);
  if (r) {
    // Open handles follow the file: remap their paths.
    for (auto& [fd, p] : fd_table_) {
      if (p == from) p = to;
    }
  }
  co_return r;
}

}  // namespace imca::gluster
