#include "gluster/write_behind.h"

namespace imca::gluster {

sim::Task<Expected<void>> WriteBehindXlator::flush() {
  if (buf_.empty()) co_return Expected<void>{};
  ++flushes_;
  auto r = co_await child_->write(buf_path_, buf_offset_, std::move(buf_));
  buf_ = Buffer{};
  buf_path_.clear();
  if (!r) co_return r.error();
  co_return Expected<void>{};
}

sim::Task<Expected<std::uint64_t>> WriteBehindXlator::write(
    const std::string& path, std::uint64_t offset, Buffer data) {
  const std::uint64_t written = data.size();
  // Contiguous continuation of the current buffer? Absorb it.
  if (buffering(path) && offset == buf_offset_ + buf_.size()) {
    buf_.append(std::move(data));
    ++absorbed_;
    if (buf_.size() >= threshold_) {
      auto r = co_await flush();
      if (!r) co_return r.error();
    }
    co_return written;
  }

  // Non-contiguous or different file: flush what we hold, start a new run.
  if (auto r = co_await flush(); !r) co_return r.error();
  buf_path_ = path;
  buf_offset_ = offset;
  buf_ = std::move(data);
  if (buf_.size() >= threshold_) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return written;
}

sim::Task<Expected<Buffer>> WriteBehindXlator::read(const std::string& path,
                                                    std::uint64_t offset,
                                                    std::uint64_t len) {
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->read(path, offset, len);
}

sim::Task<Expected<store::Attr>> WriteBehindXlator::stat(
    const std::string& path) {
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->stat(path);
}

sim::Task<Expected<void>> WriteBehindXlator::close(const std::string& path) {
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->close(path);
}

sim::Task<Expected<void>> WriteBehindXlator::unlink(const std::string& path) {
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->unlink(path);
}

sim::Task<Expected<void>> WriteBehindXlator::truncate(const std::string& path,
                                                      std::uint64_t size) {
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->truncate(path, size);
}

sim::Task<Expected<void>> WriteBehindXlator::rename(const std::string& from,
                                                    const std::string& to) {
  if (buffering(from) || buffering(to)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->rename(from, to);
}

}  // namespace imca::gluster
