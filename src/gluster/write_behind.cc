#include "gluster/write_behind.h"

#include <cassert>

namespace imca::gluster {

sim::Task<Expected<void>> WriteBehindXlator::flush() {
  if (buf_.empty()) co_return Expected<void>{};
  ++flushes_;
  ++run_id_;  // the run leaves the buffer now, whatever the outcome
  deadline_armed_ = false;
  // Detach the run BEFORE suspending on the child: while this write is in
  // flight (a disk access is ~12 ms) new client writes must start a fresh
  // run, not absorb into a buffer that is already on its way down — that
  // both corrupts the buffer and silently loses the absorbed bytes when
  // the flush resumes and resets it.
  const std::string path = std::move(buf_path_);
  const std::uint64_t offset = buf_offset_;
  Buffer run = std::move(buf_);
  buf_path_.clear();
  // Hand the child a copy per attempt (Buffer segments are refcounted, so
  // this shares storage, not bytes) and keep the run for a retry: kBusy is
  // a shed admission queue, not a bad disk, and in classic mode the run
  // holds bytes that were already acked to a writer.
  Errc err = Errc::kOk;
  for (unsigned attempt = 0;; ++attempt) {
    auto r = co_await child_->write(path, offset, run);
    if (r) co_return Expected<void>{};
    err = r.error();
    if (err != Errc::kBusy || attempt + 1 >= kFlushAttempts) break;
    ++flush_retries_;
    if (loop_ != nullptr) co_await loop_->sleep(kFlushRetryBackoff);
  }
  ++flush_errors_;
  // Terminal failure: the error goes to the current caller only, and the
  // run dies here (GlusterFS drops the fd's dirty pages the same way). In
  // classic mode those bytes were acked — count the loss so a crash-free
  // run that lost data cannot claim dropped_bytes == 0.
  if (!params_.flush_before_ack) {
    ++dropped_runs_;
    dropped_bytes_ += run.size();
  }
  co_return err;
}

Errc WriteBehindXlator::take_stuck_error(const std::string& path) {
  const auto it = stuck_errors_.find(path);
  if (it == stuck_errors_.end()) return Errc::kOk;
  const Errc e = it->second;
  stuck_errors_.erase(it);
  return e;
}

void WriteBehindXlator::arm_deadline_flush() {
  if (params_.flush_deadline == 0 || deadline_armed_ || buf_.empty()) return;
  assert(loop_ != nullptr && "flush_deadline needs the loop constructor");
  deadline_armed_ = true;
  const std::uint64_t run = run_id_;
  // The loop owns the spawned frame, not this xlator: it can outlive us by
  // up to flush_deadline. Take the loop pointer by value and check the
  // liveness token after every suspension before touching members.
  loop_->spawn([](WriteBehindXlator* wb, sim::EventLoop* loop,
                  SimDuration deadline, std::weak_ptr<const bool> alive,
                  std::uint64_t r) -> sim::Task<void> {
    co_await loop->sleep(deadline);
    if (alive.expired()) co_return;  // xlator torn down while we slept
    if (wb->run_id_ != r || wb->buf_.empty()) co_return;  // already flushed
    ++wb->deadline_flushes_;
    const std::string path = wb->buf_path_;
    auto ok = co_await wb->flush();
    if (alive.expired()) co_return;
    if (!ok) {
      // Off the fop path: nobody to hand the error to right now. Stick it
      // to the path; the next op on it pays (GlusterFS fd-error semantics).
      wb->stuck_errors_[path] = ok.error();
    }
  }(this, loop_, params_.flush_deadline,
    std::weak_ptr<const bool>(alive_), run));
}

std::uint64_t WriteBehindXlator::drop_volatile() {
  const std::uint64_t n = buf_.size();
  if (n > 0) {
    ++dropped_runs_;
    dropped_bytes_ += n;
    ++run_id_;
  }
  buf_ = Buffer{};
  buf_path_.clear();
  deadline_armed_ = false;
  stuck_errors_.clear();  // stuck errors were brick memory too
  return n;
}

sim::Task<Expected<std::uint64_t>> WriteBehindXlator::write(
    std::string path, std::uint64_t offset, Buffer data) {
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  const std::uint64_t written = data.size();
  // Contiguous continuation of the current buffer? Absorb it.
  if (buffering(path) && offset == buf_offset_ + buf_.size()) {
    buf_.append(std::move(data));
    ++absorbed_;
  } else {
    // Non-contiguous or different file: flush what we hold, start a new run.
    // flush() suspends inside the child; a concurrent write can install —
    // and in classic mode already be acked for — a brand-new run while this
    // one is down there. Installing ours over it would silently lose those
    // acked bytes, so re-check after every resume and keep flushing until
    // the buffer is genuinely empty (no suspension between the final check
    // and the install).
    while (!buf_.empty()) {
      if (auto r = co_await flush(); !r) co_return r.error();
    }
    buf_path_ = path;
    buf_offset_ = offset;
    buf_ = std::move(data);
  }
  if (params_.flush_before_ack || buf_.size() >= params_.flush_threshold) {
    if (auto r = co_await flush(); !r) co_return r.error();
  } else {
    // This write() frame is awaited by the client call chain, which owns
    // the xlator stack — no destruction mid-suspension.
    // NOLINTNEXTLINE(imca-coro-this): frame awaited by the stack's owner
    arm_deadline_flush();
  }
  co_return written;
}

sim::Task<Expected<Buffer>> WriteBehindXlator::read(std::string path,
                                                    std::uint64_t offset,
                                                    std::uint64_t len) {
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->read(path, offset, len);
}

sim::Task<Expected<store::Attr>> WriteBehindXlator::stat(
    std::string path) {
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->stat(path);
}

sim::Task<Expected<void>> WriteBehindXlator::close(std::string path) {
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->close(path);
}

sim::Task<Expected<void>> WriteBehindXlator::unlink(std::string path) {
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->unlink(path);
}

sim::Task<Expected<void>> WriteBehindXlator::truncate(std::string path,
                                                      std::uint64_t size) {
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->truncate(path, size);
}

sim::Task<Expected<void>> WriteBehindXlator::fsync(std::string path) {
  // The durability barrier: whatever is buffered for the path must be on the
  // child before fsync returns (flush-before-dependent-op, same as close).
  if (const Errc stuck = take_stuck_error(path); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(path)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->fsync(path);
}

sim::Task<Expected<void>> WriteBehindXlator::rename(std::string from,
                                                    std::string to) {
  if (const Errc stuck = take_stuck_error(from); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (const Errc stuck = take_stuck_error(to); stuck != Errc::kOk) {
    co_return stuck;
  }
  if (buffering(from) || buffering(to)) {
    if (auto r = co_await flush(); !r) co_return r.error();
  }
  co_return co_await child_->rename(from, to);
}

}  // namespace imca::gluster
