// GlusterFS wire protocol: fop requests and replies as real byte encodings.
//
// GlusterFS 1.3 (the version contemporary with the paper) shipped path-based
// fops between its protocol/client and protocol/server translators; we keep
// that shape. Every request is (fop-type, path, args); every reply is
// (errc, payload). Like the memcached protocol, these encodings are what
// actually crosses the simulated wire, so message sizes are honest.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/bytebuf.h"
#include "common/errc.h"
#include "common/expected.h"
#include "store/object_store.h"

namespace imca::gluster {

enum class FopType : std::uint8_t {
  kCreate = 1,
  kOpen = 2,
  kClose = 3,
  kStat = 4,
  kRead = 5,
  kWrite = 6,
  kUnlink = 7,
  kTruncate = 8,
  kRename = 9,
  kFsync = 10,
};

struct FopRequest {
  FopType type = FopType::kStat;
  std::string path;
  std::uint64_t offset = 0;   // read/write/truncate
  std::uint64_t length = 0;   // read
  std::uint32_t mode = 0644;  // create
  std::string path2;          // rename target
  Buffer data;                // write payload (spliced into the encoding)

  // --- reliability envelope (DESIGN.md §5f) ---
  // Issuing mount, keying the server's replay window. One mount per node.
  std::uint64_t client_id = 0;
  // Per-client monotone mutation number; 0 = not a replayable mutation.
  // A retry re-sends the same op_seq, and the server's dedup window makes
  // the pair apply exactly once.
  std::uint64_t op_seq = 0;
  // Nonzero on re-sends (server-side replay accounting).
  std::uint8_t retry = 0;
  // Remaining client deadline budget for this attempt, in sim ns; the
  // server sheds requests it picks up after the budget expired. 0 = none.
  std::uint64_t ttl = 0;

  ByteBuf encode() const;
  static Expected<FopRequest> decode(ByteBuf& in);
};

struct FopReply {
  Errc errc = Errc::kOk;
  store::Attr attr;         // create/open/stat
  Buffer data;              // read payload (views of the receive buffer)
  std::uint64_t count = 0;  // write bytes accepted

  ByteBuf encode() const;
  static Expected<FopReply> decode(ByteBuf& in);
};

}  // namespace imca::gluster
