// protocol/client: the terminal client-side translator. Encodes each fop,
// ships it to the brick over the fabric, and decodes the reply.
#pragma once

#include "gluster/protocol.h"
#include "gluster/xlator.h"
#include "net/rpc.h"

namespace imca::gluster {

class ProtocolClient final : public Xlator {
 public:
  ProtocolClient(net::RpcSystem& rpc, net::NodeId self, net::NodeId server)
      : rpc_(rpc), self_(self), server_(server) {}

  sim::Task<Expected<store::Attr>> create(const std::string& path,
                                          std::uint32_t mode) override;
  sim::Task<Expected<store::Attr>> open(const std::string& path) override;
  sim::Task<Expected<void>> close(const std::string& path) override;
  sim::Task<Expected<store::Attr>> stat(const std::string& path) override;
  sim::Task<Expected<Buffer>> read(const std::string& path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(const std::string& path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(const std::string& path) override;
  sim::Task<Expected<void>> truncate(const std::string& path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(const std::string& from,
                                   const std::string& to) override;

  std::string_view name() const override { return "protocol/client"; }

  net::NodeId server() const noexcept { return server_; }

 private:
  // Ship `req`, return the decoded reply (or the transport error).
  sim::Task<Expected<FopReply>> roundtrip(FopRequest req);

  net::RpcSystem& rpc_;
  net::NodeId self_;
  net::NodeId server_;
};

}  // namespace imca::gluster
