// protocol/client: the terminal client-side translator. Encodes each fop,
// ships it to the brick over the fabric, and decodes the reply.
//
// Reliability (DESIGN.md §5f): with an op deadline configured, each fop is
// raced against a per-attempt timeout and retried with capped exponential
// backoff until the deadline budget runs out. Mutations are numbered
// (client_id, op_seq) once per op — every retry re-sends the same number,
// and the brick's replay window turns the client's at-least-once loop into
// exactly-once application. After `eject_after` consecutive failures the
// server is marked down; retries then wait for the probe interval instead
// of hammering a dead brick, and CMCache can consult the ServerHealth view
// to serve bounded-staleness cache hits meanwhile (brownout).
//
// With op_deadline == 0 (the default) behaviour is the seed's: one attempt,
// no timeout, no retry, no numbering side effects visible on the wire
// beyond the envelope fields.
#pragma once

#include "gluster/protocol.h"
#include "gluster/xlator.h"
#include "net/rpc.h"

namespace imca::gluster {

struct ProtocolClientParams {
  // Total budget per fop. 0 = seed behaviour (single attempt, wait forever).
  SimDuration op_deadline = 0;
  // Budget per attempt; each attempt is raced against min(this, remaining).
  // 0 = attempts get the whole remaining budget.
  SimDuration attempt_timeout = 10 * kMilli;
  SimDuration backoff_base = 1 * kMilli;  // doubles per retry, capped below
  SimDuration backoff_cap = 16 * kMilli;
  // Consecutive failed attempts before the server is considered down.
  std::size_t eject_after = 3;
  // While down, at most one probe attempt per this interval.
  SimDuration probe_interval = 10 * kMilli;
};

struct ProtocolClientStats {
  std::uint64_t fops = 0;      // roundtrip() calls, not attempts
  std::uint64_t retries = 0;   // attempts after the first
  std::uint64_t replays = 0;   // retries carrying a mutation op_seq
  std::uint64_t timeouts = 0;  // attempt outcomes, by class:
  std::uint64_t refusals = 0;
  std::uint64_t resets = 0;
  std::uint64_t torn = 0;       // undecodable / unexpected transport errors
  std::uint64_t sheds_seen = 0; // kBusy replies (brick shed the request)
  std::uint64_t deadline_exhausted = 0;  // ops that ran out of budget
  std::uint64_t fast_fails = 0;  // retry slots parked waiting for a probe
  std::uint64_t ejections = 0;
  std::uint64_t rejoins = 0;
  SimDuration max_op_elapsed = 0;  // worst roundtrip() wall time
};

class ProtocolClient final : public Xlator, public ServerHealth {
 public:
  ProtocolClient(net::RpcSystem& rpc, net::NodeId self, net::NodeId server,
                 ProtocolClientParams params = {})
      : rpc_(rpc), self_(self), server_(server), params_(params) {}

  sim::Task<Expected<store::Attr>> create(std::string path,
                                          std::uint32_t mode) override;
  sim::Task<Expected<store::Attr>> open(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override;
  // Idempotent barrier: not numbered (replaying a completed fsync is
  // harmless), retried like the read-shaped fops.
  sim::Task<Expected<void>> fsync(std::string path) override;

  std::string_view name() const override { return "protocol/client"; }

  // --- ServerHealth ---
  bool server_down() const override { return down_; }
  SimTime server_down_since() const override { return down_since_; }

  net::NodeId server() const noexcept { return server_; }
  const ProtocolClientStats& stats() const noexcept { return stats_; }

 private:
  // True for fops that change durable state and must apply exactly once.
  static bool mutation_fop(FopType t) noexcept {
    return t == FopType::kCreate || t == FopType::kWrite ||
           t == FopType::kUnlink || t == FopType::kTruncate ||
           t == FopType::kRename;
  }

  sim::EventLoop& loop() noexcept { return rpc_.fabric().loop(); }
  // Ship `req`, applying the deadline/retry/replay policy.
  sim::Task<Expected<FopReply>> roundtrip(FopRequest req);
  // One wire attempt, raced against `timeout` (0 = no timeout).
  sim::Task<Expected<FopReply>> attempt(FopRequest req, SimDuration timeout);
  void mark_alive();
  void note_failure();
  void note_elapsed(SimTime start);

  net::RpcSystem& rpc_;
  net::NodeId self_;
  net::NodeId server_;
  ProtocolClientParams params_;
  ProtocolClientStats stats_;
  std::uint64_t next_seq_ = 0;  // mutation numbering (client_id = self_)
  std::size_t fail_streak_ = 0;
  bool down_ = false;
  SimTime down_since_ = 0;
  SimTime next_probe_ = 0;
};

}  // namespace imca::gluster
