// performance/write-behind: aggregates consecutive small writes and flushes
// them to the child as one larger write (paper §2.1 lists Write Behind among
// GlusterFS's stock translators).
//
// Aggregation only: the buffered region is flushed before any operation that
// could observe it (read, stat, close, unlink, non-contiguous write), so the
// translator never changes what a reader sees — only how many wire ops the
// writes cost. Off by default in our experiments (the paper measures
// synchronous write latency); exercised by tests and the ablation bench.
#pragma once

#include <string>

#include "gluster/xlator.h"

namespace imca::gluster {

class WriteBehindXlator final : public Xlator {
 public:
  explicit WriteBehindXlator(std::uint64_t flush_threshold = 128 * kKiB)
      : threshold_(flush_threshold) {}

  sim::Task<Expected<std::uint64_t>> write(const std::string& path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<Buffer>> read(const std::string& path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<store::Attr>> stat(const std::string& path) override;
  sim::Task<Expected<void>> close(const std::string& path) override;
  sim::Task<Expected<void>> unlink(const std::string& path) override;
  sim::Task<Expected<void>> truncate(const std::string& path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(const std::string& from,
                                   const std::string& to) override;

  std::string_view name() const override { return "write-behind"; }

  std::uint64_t flushes() const noexcept { return flushes_; }
  std::uint64_t absorbed_writes() const noexcept { return absorbed_; }

 private:
  sim::Task<Expected<void>> flush();
  bool buffering(const std::string& path) const {
    return !buf_.empty() && path == buf_path_;
  }

  std::uint64_t threshold_;
  std::string buf_path_;
  std::uint64_t buf_offset_ = 0;
  // Absorbed writes are spliced, not re-copied: segments are immutable, so
  // sharing the writer's storage is safe.
  Buffer buf_;
  std::uint64_t flushes_ = 0;
  std::uint64_t absorbed_ = 0;
};

}  // namespace imca::gluster
