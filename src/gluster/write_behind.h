// performance/write-behind: aggregates consecutive small writes and flushes
// them to the child as one larger write (paper §2.1 lists Write Behind among
// GlusterFS's stock translators).
//
// Aggregation only: the buffered region is flushed before any operation that
// could observe it (read, stat, close, unlink, non-contiguous write), so the
// translator never changes what a reader sees — only how many wire ops the
// writes cost.
//
// Durability contract (DESIGN.md §5f): the classic mode acks a write while
// its bytes still sit in process memory — a brick crash loses them, exactly
// like real GlusterFS write-behind. Two policy knobs tighten that:
//
//   * flush_before_ack — the run is flushed to the child before any write
//     returns, so an acked byte is always on the child. This is the mode the
//     server-fault matrix runs in ("no acked byte is ever lost").
//   * flush_deadline   — a background task flushes a run at most this long
//     after its first byte was buffered, bounding the unsafe mode's loss
//     window.
//
// A flush that fails off the fop path (deadline flush) sticks its error to
// the path and the next operation on it returns the error — GlusterFS's
// "stuck to the fd" semantics. A crash drops the buffered run without
// flushing (drop_volatile), which is precisely the loss the matrix measures.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "gluster/xlator.h"
#include "sim/event_loop.h"

namespace imca::gluster {

struct WriteBehindParams {
  std::uint64_t flush_threshold = 128 * kKiB;
  // true = ack only after the buffered run reached the child (durable acks).
  bool flush_before_ack = false;
  // >0 = flush a run at most this long after its first byte was buffered.
  // Requires the loop-taking constructor.
  SimDuration flush_deadline = 0;
};

class WriteBehindXlator final : public Xlator {
 public:
  explicit WriteBehindXlator(std::uint64_t flush_threshold = 128 * kKiB) {
    params_.flush_threshold = flush_threshold;
  }
  WriteBehindXlator(sim::EventLoop& loop, WriteBehindParams params)
      : loop_(&loop), params_(params) {}

  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override;
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override;
  sim::Task<Expected<store::Attr>> stat(std::string path) override;
  sim::Task<Expected<void>> close(std::string path) override;
  sim::Task<Expected<void>> unlink(std::string path) override;
  sim::Task<Expected<void>> fsync(std::string path) override;
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override;
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override;

  std::string_view name() const override { return "write-behind"; }

  // Crash path: discard the buffered run without flushing (those bytes
  // lived in brick memory) and clear any stuck errors. Returns how many
  // bytes died — acked-but-volatile data unless flush_before_ack was on.
  std::uint64_t drop_volatile();

  std::uint64_t flushes() const noexcept { return flushes_; }
  std::uint64_t absorbed_writes() const noexcept { return absorbed_; }
  std::uint64_t deadline_flushes() const noexcept { return deadline_flushes_; }
  std::uint64_t flush_errors() const noexcept { return flush_errors_; }
  std::uint64_t flush_retries() const noexcept { return flush_retries_; }
  std::uint64_t dropped_bytes() const noexcept { return dropped_bytes_; }
  std::uint64_t dropped_runs() const noexcept { return dropped_runs_; }
  std::uint64_t buffered_bytes() const noexcept { return buf_.size(); }

 private:
  // A shed child (kBusy) is retried this many times before the flush gives
  // up: in classic mode the run holds already-acked bytes, so a transient
  // queue-full must not become silent data loss.
  static constexpr unsigned kFlushAttempts = 3;
  static constexpr SimDuration kFlushRetryBackoff = 1 * kMilli;

  sim::Task<Expected<void>> flush();
  // kOk or the error a failed off-path flush stuck to `path` (consumed).
  Errc take_stuck_error(const std::string& path);
  void arm_deadline_flush();
  bool buffering(const std::string& path) const {
    return !buf_.empty() && path == buf_path_;
  }

  sim::EventLoop* loop_ = nullptr;  // null in the legacy constructor
  WriteBehindParams params_;
  // Liveness token for detached deadline tasks: the loop owns their frames,
  // not this xlator, so they hold a weak_ptr and bail out if it expired
  // while they slept (xlator torn down under a pending deadline).
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  std::string buf_path_;
  std::uint64_t buf_offset_ = 0;
  // Absorbed writes are spliced, not re-copied: segments are immutable, so
  // sharing the writer's storage is safe.
  Buffer buf_;
  // Identifies the current run; bumped whenever the buffer empties so a
  // parked deadline flush can tell "my run is gone" from "still pending".
  std::uint64_t run_id_ = 0;
  bool deadline_armed_ = false;
  // Errors from off-path flushes, stuck to the path until the next op.
  std::unordered_map<std::string, Errc> stuck_errors_;
  std::uint64_t flushes_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t deadline_flushes_ = 0;
  std::uint64_t flush_errors_ = 0;
  std::uint64_t flush_retries_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::uint64_t dropped_runs_ = 0;
};

}  // namespace imca::gluster
