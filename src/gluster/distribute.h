// cluster/distribute: namespace distribution across bricks.
//
// "GlusterFS in its default configuration does not stripe the data, but
// instead distributes the namespace across all the servers" (paper §2.1).
// Each path hashes to exactly one brick; all fops for that path go there.
// The paper's testbed ran a single brick, so the figure benches use one
// child — this translator exists for multi-brick deployments and is covered
// by its own tests and an example.
#pragma once

#include <memory>
#include <vector>

#include "common/hash.h"
#include "gluster/protocol_client.h"
#include "gluster/xlator.h"

namespace imca::gluster {

class DistributeXlator final : public Xlator {
 public:
  // Takes ownership of one protocol/client per brick.
  explicit DistributeXlator(
      std::vector<std::unique_ptr<ProtocolClient>> bricks)
      : bricks_(std::move(bricks)) {}

  sim::Task<Expected<store::Attr>> create(std::string path,
                                          std::uint32_t mode) override {
    co_return co_await brick(path).create(path, mode);
  }
  sim::Task<Expected<store::Attr>> open(std::string path) override {
    co_return co_await brick(path).open(path);
  }
  sim::Task<Expected<void>> close(std::string path) override {
    co_return co_await brick(path).close(path);
  }
  sim::Task<Expected<store::Attr>> stat(std::string path) override {
    co_return co_await brick(path).stat(path);
  }
  sim::Task<Expected<Buffer>> read(std::string path,
                                   std::uint64_t offset,
                                   std::uint64_t len) override {
    co_return co_await brick(path).read(path, offset, len);
  }
  sim::Task<Expected<std::uint64_t>> write(std::string path,
                                           std::uint64_t offset,
                                           Buffer data) override {
    co_return co_await brick(path).write(path, offset, std::move(data));
  }
  sim::Task<Expected<void>> unlink(std::string path) override {
    co_return co_await brick(path).unlink(path);
  }
  sim::Task<Expected<void>> truncate(std::string path,
                                     std::uint64_t size) override {
    co_return co_await brick(path).truncate(path, size);
  }
  sim::Task<Expected<void>> rename(std::string from,
                                   std::string to) override {
    if (brick_of(from) == brick_of(to)) {
      co_return co_await brick(from).rename(from, to);
    }
    // Cross-brick rename: the new name hashes elsewhere, so the data must
    // move (GlusterFS's DHT does a link-file dance; we migrate eagerly).
    auto attr = co_await brick(from).stat(from);
    if (!attr) co_return attr.error();
    auto data = co_await brick(from).read(from, 0, attr->size);
    if (!data) co_return data.error();
    (void)co_await brick(to).unlink(to);  // replace any existing target
    auto created = co_await brick(to).create(to, attr->mode);
    if (!created) co_return created.error();
    if (!data->empty()) {
      auto w = co_await brick(to).write(to, 0, std::move(*data));
      if (!w) co_return w.error();
    }
    co_return co_await brick(from).unlink(from);
  }

  std::string_view name() const override { return "distribute"; }

  std::size_t brick_count() const noexcept { return bricks_.size(); }
  std::size_t brick_of(const std::string& path) const {
    return fnv1a64(path) % bricks_.size();
  }

 private:
  ProtocolClient& brick(const std::string& path) {
    return *bricks_[brick_of(path)];
  }

  std::vector<std::unique_ptr<ProtocolClient>> bricks_;
};

}  // namespace imca::gluster
